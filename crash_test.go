package pictdb_test

import (
	"fmt"
	"testing"

	pictdb "repro"
	"repro/internal/pager"
	"repro/internal/storage"
)

// TestCrashPointsDatabase drives the full database stack over a
// snapshotting backend, capturing the byte image at every sync — the
// states a crash can leave under the ordered-commit discipline — and
// reopens the database from each one. The invariant under test is the
// issue's: every crash state either opens and verifies clean with the
// data of some committed checkpoint, opens degraded with verification
// problems reported, or fails to open with a typed corruption error.
// It must never open clean with data that no checkpoint committed.
func TestCrashPointsDatabase(t *testing.T) {
	snap := pager.NewSnapshotBackend()
	p, err := pager.OpenBackend(snap, 64)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pictdb.OpenWithPager(p)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.CreateRelation("pts", pictdb.MustSchema("name:string", "n:int"))
	if err != nil {
		t.Fatal(err)
	}

	// Committed tuple counts: states a recovered database may land in.
	committed := map[int]bool{0: true}
	n := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if _, err := rel.Insert(pictdb.Tuple{pictdb.S(fmt.Sprintf("p%d", n)), pictdb.I(int64(n))}); err != nil {
				t.Fatal(err)
			}
			n++
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		committed[n] = true
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	snaps := snap.Snapshots()
	if len(snaps) < 6 {
		t.Fatalf("expected at least 6 sync snapshots, got %d", len(snaps))
	}
	var clean, degraded, refused int
	for i, img := range snaps {
		p2, err := pager.OpenBackend(pager.NewMemBackend(img), 64)
		if err != nil {
			if !pictdb.IsCorruption(err) {
				t.Fatalf("snapshot %d: pager open failed untyped: %v", i, err)
			}
			refused++
			continue
		}
		db2, err := pictdb.OpenWithPager(p2)
		if err != nil {
			if !pictdb.IsCorruption(err) {
				t.Fatalf("snapshot %d: open failed untyped: %v", i, err)
			}
			refused++
			continue
		}
		report := db2.Check()
		if !report.OK() {
			// Degraded: corruption detected and reported, never silent.
			if !pictdb.IsCorruption(report.Err()) {
				t.Fatalf("snapshot %d: report error not typed: %v", i, report.Err())
			}
			degraded++
			db2.Close()
			continue
		}
		clean++
		// A clean open must expose exactly a committed state.
		if rel2, ok := db2.Relation("pts"); ok {
			if !committed[rel2.Len()] {
				t.Fatalf("snapshot %d: verified clean but %d tuples is not a committed state %v",
					i, rel2.Len(), committed)
			}
			// Every tuple must decode (Scan re-decodes each record).
			got := 0
			if err := rel2.Scan(func(_ storage.TupleID, _ pictdb.Tuple) bool {
				got++
				return true
			}); err != nil {
				t.Fatalf("snapshot %d: scan of verified relation failed: %v", i, err)
			}
			if got != rel2.Len() {
				t.Fatalf("snapshot %d: scan saw %d tuples, Len says %d", i, got, rel2.Len())
			}
		}
		db2.Close()
	}
	if clean == 0 {
		t.Fatal("no snapshot recovered clean; the harness is not exercising recovery")
	}
	t.Logf("snapshots: %d clean, %d degraded, %d refused", clean, degraded, refused)
}
