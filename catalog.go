package pictdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Catalog persistence. A file-backed database reserves its first
// allocated page as the superblock:
//
//	bytes 0..7  magic "PICTCAT1"
//	bytes 8..11 PageID of the current catalog snapshot heap (0 = none)
//
// Checkpoint serializes the catalog — named locations, pictures with
// their objects, and relation definitions (schema, tuple-heap handle,
// indexed columns, picture associations with pack options) — into a
// fresh heap, atomically points the superblock at it, and frees the
// previous snapshot. Open replays the snapshot: heaps are reopened in
// place; B-tree and R-tree indexes are rebuilt from the persisted
// definitions (the paper's databases are static, so a one-time rebuild
// on open mirrors the one-time initial PACK).
var catMagic = [8]byte{'P', 'I', 'C', 'T', 'C', 'A', 'T', '1'}

// superblockID is the well-known page of the superblock: the first
// page ever allocated in a database file.
const superblockID pager.PageID = 1

// Catalog record type tags.
const (
	catLocation = 'L'
	catPicture  = 'P'
	catObject   = 'O'
	catRelation = 'R'
	catSharded  = 'S'
	// catShardedV2 extends catSharded with each shard's Hilbert key
	// range, so rebalanced (non-even) shard layouts survive reopen.
	// Checkpoint always writes V2; the loader accepts both (a V1 record
	// implies the even split every relation starts with).
	catShardedV2 = 'T'
)

// ensureSuperblock creates or validates the superblock page.
func (db *Database) ensureSuperblock() error {
	if db.pager.NumPages() <= int(superblockID) {
		pg, err := db.pager.Allocate()
		if err != nil {
			return err
		}
		if pg.ID != superblockID {
			db.pager.Unpin(pg)
			return fmt.Errorf("pictdb: superblock landed on page %d", pg.ID)
		}
		copy(pg.Data[:8], catMagic[:])
		binary.LittleEndian.PutUint32(pg.Data[8:12], 0)
		pg.MarkDirty()
		db.pager.Unpin(pg)
		return nil
	}
	pg, err := db.pager.Fetch(superblockID)
	if err != nil {
		return err
	}
	defer db.pager.Unpin(pg)
	if [8]byte(pg.Data[:8]) != catMagic {
		return fmt.Errorf("pictdb: page %d is not a catalog superblock", superblockID)
	}
	return nil
}

func (db *Database) readSnapshotPage() (pager.PageID, error) {
	pg, err := db.pager.Fetch(superblockID)
	if err != nil {
		return pager.InvalidPage, err
	}
	defer db.pager.Unpin(pg)
	return pager.PageID(binary.LittleEndian.Uint32(pg.Data[8:12])), nil
}

func (db *Database) writeSnapshotPage(id pager.PageID) error {
	pg, err := db.pager.Fetch(superblockID)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(pg.Data[8:12], uint32(id))
	pg.MarkDirty()
	db.pager.Unpin(pg)
	return db.pager.Flush()
}

// --- encoding helpers -------------------------------------------------

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(rec []byte, pos int) (string, int, error) {
	l, w := binary.Uvarint(rec[pos:])
	if w <= 0 || pos+w+int(l) > len(rec) {
		return "", 0, fmt.Errorf("pictdb: truncated catalog string")
	}
	pos += w
	return string(rec[pos : pos+int(l)]), pos + int(l), nil
}

func appendRect(buf []byte, r geom.Rect) []byte {
	for _, v := range [4]float64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func readRect(rec []byte, pos int) (geom.Rect, int, error) {
	if pos+32 > len(rec) {
		return geom.Rect{}, 0, fmt.Errorf("pictdb: truncated catalog rect")
	}
	var v [4]float64
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[pos:]))
		pos += 8
	}
	return geom.Rect{Min: Pt(v[0], v[1]), Max: Pt(v[2], v[3])}, pos, nil
}

// --- checkpoint -------------------------------------------------------

// Checkpoint persists the catalog to the page file, replacing any
// previous snapshot. Tuple data is already on disk (heaps write
// through the pager); the checkpoint records everything needed to
// rebuild the in-memory structures on Open.
func (db *Database) Checkpoint() error {
	if db.readOnly {
		return fmt.Errorf("pictdb: checkpoint: %w", pager.ErrReadOnly)
	}
	// Shard files first: the snapshot written below names shard heap
	// pages, and the main file's Flush is itself a durable commit in
	// WAL mode — committing every shard now guarantees the catalog
	// never names a shard page that is not yet durable.
	if err := db.commitShards(); err != nil {
		return err
	}
	old, err := db.readSnapshotPage()
	if err != nil {
		return err
	}
	snap, _, err := storage.Create(db.pager)
	if err != nil {
		return err
	}

	// Named locations.
	locNames := make([]string, 0, len(db.locations))
	for name := range db.locations {
		locNames = append(locNames, name)
	}
	sort.Strings(locNames)
	for _, name := range locNames {
		rec := []byte{catLocation}
		rec = appendString(rec, name)
		rec = appendRect(rec, db.locations[name])
		if _, err := snap.Insert(rec); err != nil {
			return err
		}
	}

	// Pictures and their objects.
	picNames := make([]string, 0, len(db.pictures))
	for name := range db.pictures {
		picNames = append(picNames, name)
	}
	sort.Strings(picNames)
	for _, name := range picNames {
		pic := db.pictures[name]
		rec := []byte{catPicture}
		rec = appendString(rec, name)
		rec = appendRect(rec, pic.Extent())
		if _, err := snap.Insert(rec); err != nil {
			return err
		}
		for _, obj := range pic.Objects() {
			orec := []byte{catObject}
			orec = appendString(orec, name)
			orec = append(orec, picture.EncodeObject(obj)...)
			if _, err := snap.Insert(orec); err != nil {
				return err
			}
		}
	}

	// Relations.
	relNames := make([]string, 0, len(db.relations))
	for name := range db.relations {
		relNames = append(relNames, name)
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		rel := db.relations[name]
		var rec []byte
		if rel.Sharded() {
			// Sharded relations persist one heap handle per shard plus
			// each shard's Hilbert key range; the shard count is implied
			// by the handle count. The shard pages themselves become
			// durable at Commit — shards commit before the main file, so
			// this record never names a shard page that is not yet
			// durable.
			rec = []byte{catShardedV2}
			rec = appendString(rec, name)
			firsts := rel.ShardHeapFirstPages()
			rec = binary.AppendUvarint(rec, uint64(len(firsts)))
			for _, f := range firsts {
				rec = binary.LittleEndian.AppendUint32(rec, uint32(f))
			}
			for _, kr := range rel.ShardKeyRanges() {
				rec = binary.LittleEndian.AppendUint64(rec, kr.Lo)
				rec = binary.LittleEndian.AppendUint64(rec, kr.Hi)
			}
		} else {
			rec = []byte{catRelation}
			rec = appendString(rec, name)
			rec = binary.LittleEndian.AppendUint32(rec, uint32(rel.HeapFirstPage()))
		}
		schema := rel.Schema()
		rec = binary.AppendUvarint(rec, uint64(schema.Arity()))
		for _, col := range schema.Columns {
			rec = appendString(rec, col.Name)
			rec = append(rec, byte(col.Type))
		}
		indexed := rel.IndexedColumns()
		sort.Strings(indexed)
		rec = binary.AppendUvarint(rec, uint64(len(indexed)))
		for _, col := range indexed {
			rec = appendString(rec, col)
		}
		pics := rel.Pictures()
		sort.Strings(pics)
		rec = binary.AppendUvarint(rec, uint64(len(pics)))
		for _, pn := range pics {
			// SpatialOpts is the mode-agnostic accessor: a sharded
			// relation has one index per shard (all built with the same
			// options), an unsharded one exactly one.
			opts, _ := rel.SpatialOpts(pn)
			rec = appendString(rec, pn)
			rec = append(rec, byte(opts.Method))
			if opts.TrimToMultiple {
				rec = append(rec, 1)
			} else {
				rec = append(rec, 0)
			}
		}
		if _, err := snap.Insert(rec); err != nil {
			return err
		}
	}

	if err := db.writeSnapshotPage(snap.FirstPage()); err != nil {
		return err
	}
	// Free the superseded snapshot only after the superblock points at
	// the new one.
	if old != pager.InvalidPage {
		oldHeap, err := storage.Open(db.pager, old)
		if err != nil {
			return err
		}
		if err := oldHeap.Free(); err != nil {
			return err
		}
	}
	return db.pager.Flush()
}

// --- load -------------------------------------------------------------

// loadCatalog replays the current snapshot, if any.
func (db *Database) loadCatalog() error {
	snapID, err := db.readSnapshotPage()
	if err != nil {
		return err
	}
	if snapID == pager.InvalidPage {
		return nil
	}
	snap, err := storage.Open(db.pager, snapID)
	if err != nil {
		return err
	}

	var rels []decodedRel

	var scanErr error
	err = snap.Scan(func(_ storage.TupleID, rec []byte) bool {
		if len(rec) == 0 {
			scanErr = fmt.Errorf("pictdb: empty catalog record")
			return false
		}
		switch rec[0] {
		case catLocation:
			name, pos, err := readString(rec, 1)
			if err != nil {
				scanErr = err
				return false
			}
			r, _, err := readRect(rec, pos)
			if err != nil {
				scanErr = err
				return false
			}
			db.locations[name] = r
		case catPicture:
			name, pos, err := readString(rec, 1)
			if err != nil {
				scanErr = err
				return false
			}
			extent, _, err := readRect(rec, pos)
			if err != nil {
				scanErr = err
				return false
			}
			db.pictures[name] = picture.New(name, extent)
		case catObject:
			name, pos, err := readString(rec, 1)
			if err != nil {
				scanErr = err
				return false
			}
			pic := db.pictures[name]
			if pic == nil {
				scanErr = fmt.Errorf("pictdb: object for unknown picture %q", name)
				return false
			}
			obj, err := picture.DecodeObject(rec[pos:])
			if err != nil {
				scanErr = err
				return false
			}
			if err := pic.Restore(obj); err != nil {
				scanErr = err
				return false
			}
		case catRelation, catSharded, catShardedV2:
			def, err := decodeRelDef(rec)
			if err != nil {
				scanErr = err
				return false
			}
			rels = append(rels, def)
		default:
			scanErr = fmt.Errorf("pictdb: unknown catalog record tag %q", rec[0])
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}

	// Relations last: their index rebuilds resolve pictures.
	for _, def := range rels {
		var rel *Relation
		if len(def.shardFirsts) > 0 {
			rel, err = db.openShardedRelation(def.name, def.schema, def.shardFirsts, def.shardRanges)
		} else {
			rel, err = openRelation(db, def.name, def.schema, def.heapFirst)
		}
		if err != nil {
			return err
		}
		for _, col := range def.indexed {
			if err := rel.CreateIndex(col); err != nil {
				return err
			}
		}
		for _, a := range def.assocs {
			pic := db.pictures[a.pic]
			if pic == nil {
				return fmt.Errorf("pictdb: relation %q associated with unknown picture %q", def.name, a.pic)
			}
			if err := rel.AttachPicture(pic, a.opts); err != nil {
				return err
			}
		}
		db.relations[def.name] = rel
	}
	return nil
}

// decodedRel mirrors the persisted relation definition. Exactly one of
// heapFirst (unsharded) and shardFirsts (sharded, one heap handle per
// shard) is meaningful.
type decodedRel struct {
	name        string
	heapFirst   pager.PageID
	shardFirsts []pager.PageID
	// shardRanges is each shard's Hilbert key range (catShardedV2); nil
	// for a V1 record, meaning the even split.
	shardRanges []relation.KeyRange
	schema      Schema
	indexed     []string
	assocs      []struct {
		pic  string
		opts pack.Options
	}
}

func decodeRelDef(rec []byte) (decodedRel, error) {
	var def decodedRel
	name, pos, err := readString(rec, 1)
	if err != nil {
		return def, err
	}
	def.name = name
	if rec[0] == catSharded || rec[0] == catShardedV2 {
		n, w := binary.Uvarint(rec[pos:])
		if w <= 0 || n == 0 || n > 1<<16 {
			return def, fmt.Errorf("pictdb: truncated shard count")
		}
		pos += w
		if pos+4*int(n) > len(rec) {
			return def, fmt.Errorf("pictdb: truncated shard heap pages")
		}
		def.shardFirsts = make([]pager.PageID, n)
		for i := range def.shardFirsts {
			def.shardFirsts[i] = pager.PageID(binary.LittleEndian.Uint32(rec[pos:]))
			pos += 4
		}
		if rec[0] == catShardedV2 {
			if pos+16*int(n) > len(rec) {
				return def, fmt.Errorf("pictdb: truncated shard key ranges")
			}
			def.shardRanges = make([]relation.KeyRange, n)
			for i := range def.shardRanges {
				def.shardRanges[i].Lo = binary.LittleEndian.Uint64(rec[pos:])
				def.shardRanges[i].Hi = binary.LittleEndian.Uint64(rec[pos+8:])
				pos += 16
			}
		}
	} else {
		if pos+4 > len(rec) {
			return def, fmt.Errorf("pictdb: truncated relation heap page")
		}
		def.heapFirst = pager.PageID(binary.LittleEndian.Uint32(rec[pos:]))
		pos += 4
	}

	arity, w := binary.Uvarint(rec[pos:])
	if w <= 0 {
		return def, fmt.Errorf("pictdb: truncated relation arity")
	}
	pos += w
	for i := uint64(0); i < arity; i++ {
		colName, np, err := readString(rec, pos)
		if err != nil {
			return def, err
		}
		pos = np
		if pos >= len(rec) {
			return def, fmt.Errorf("pictdb: truncated column type")
		}
		def.schema.Columns = append(def.schema.Columns, Column{Name: colName, Type: ColumnType(rec[pos])})
		pos++
	}

	nIdx, w := binary.Uvarint(rec[pos:])
	if w <= 0 {
		return def, fmt.Errorf("pictdb: truncated index list")
	}
	pos += w
	for i := uint64(0); i < nIdx; i++ {
		col, np, err := readString(rec, pos)
		if err != nil {
			return def, err
		}
		def.indexed = append(def.indexed, col)
		pos = np
	}

	nAssoc, w := binary.Uvarint(rec[pos:])
	if w <= 0 {
		return def, fmt.Errorf("pictdb: truncated association list")
	}
	pos += w
	for i := uint64(0); i < nAssoc; i++ {
		pn, np, err := readString(rec, pos)
		if err != nil {
			return def, err
		}
		pos = np
		if pos+2 > len(rec) {
			return def, fmt.Errorf("pictdb: truncated association options")
		}
		opts := pack.Options{Method: pack.Method(rec[pos]), TrimToMultiple: rec[pos+1] == 1}
		pos += 2
		def.assocs = append(def.assocs, struct {
			pic  string
			opts pack.Options
		}{pic: pn, opts: opts})
	}
	return def, nil
}
