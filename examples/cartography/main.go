// Cartography: the paper's target workload at scale. A large static
// map database (50,000 point features, clustered like real settlement
// patterns) is indexed once with PACK and once with dynamic INSERT;
// the example compares build time, structure and search cost, then
// demonstrates the §3.4 update problem: dynamic inserts and deletes on
// the packed tree, drift of the quality metrics, and a repack.
package main

import (
	"fmt"
	"math/rand"
	"time"

	pictdb "repro"
)

const n = 50_000

func clusteredItems(seed int64) []pictdb.IndexItem {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]pictdb.Point, 40)
	for i := range centers {
		centers[i] = pictdb.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	items := make([]pictdb.IndexItem, n)
	for i := range items {
		c := centers[rng.Intn(len(centers))]
		x := clamp(c.X+rng.NormFloat64()*35, 0, 1000)
		y := clamp(c.Y+rng.NormFloat64()*35, 0, 1000)
		items[i] = pictdb.IndexItem{Rect: pictdb.Pt(x, y).Rect(), Data: int64(i)}
	}
	return items
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func searchCost(idx *pictdb.Index, seed int64) (visited int, found int) {
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < 1000; q++ {
		w := pictdb.WindowAt(rng.Float64()*1000, 10, rng.Float64()*1000, 10)
		items, v := idx.Query(w)
		visited += v
		found += len(items)
	}
	return visited, found
}

func report(name string, idx *pictdb.Index, build time.Duration) {
	m := idx.ComputeMetrics()
	visited, found := searchCost(idx, 7)
	fmt.Printf("%-14s build=%8s nodes=%6d depth=%d coverage=%11.0f overlap=%12.0f\n",
		name, build.Round(time.Millisecond), m.Nodes, m.Depth, m.Coverage, m.Overlap)
	fmt.Printf("%-14s 1000 window queries: %d nodes visited, %d results\n\n", "", visited, found)
}

func main() {
	// Page-filling branching factor, as §3 prescribes for real use.
	params := pictdb.RTreeParams{Max: 64, Min: 32, Split: pictdb.SplitLinear}
	items := clusteredItems(1985)
	fmt.Printf("static cartographic database: %d clustered point features, fanout %d\n\n", n, params.Max)

	start := time.Now()
	dynamic := pictdb.NewIndex(params)
	for _, it := range items {
		dynamic.InsertItem(it)
	}
	report("INSERT-built", dynamic, time.Since(start))

	start = time.Now()
	packed := pictdb.PackIndex(params, items, pictdb.PackOptions{Method: pictdb.PackNN})
	report("PACK(nn)", packed, time.Since(start))

	start = time.Now()
	packedSTR := pictdb.PackIndex(params, items, pictdb.PackOptions{Method: pictdb.PackSTR})
	report("PACK(str)", packedSTR, time.Since(start))

	// §3.4: the update problem. The packed tree stays dynamic —
	// Guttman's INSERT and DELETE keep working — but quality drifts.
	fmt.Println("§3.4 update problem: 20% churn on the packed tree")
	rng := rand.New(rand.NewSource(99))
	live := map[int64]pictdb.Rect{}
	for _, it := range items {
		live[it.Data] = it.Rect
	}
	next := int64(n)
	churn := n / 5
	start = time.Now()
	for i := 0; i < churn; i++ {
		if i%2 == 0 {
			p := pictdb.Pt(rng.Float64()*1000, rng.Float64()*1000)
			packed.Insert(p.Rect(), next)
			live[next] = p.Rect()
			next++
		} else {
			for id, r := range live {
				packed.Delete(r, id)
				delete(live, id)
				break
			}
		}
	}
	fmt.Printf("applied %d updates in %s\n", churn, time.Since(start).Round(time.Millisecond))
	report("drifted", packed, 0)

	// Repack from the live items: the paper's periodic reorganization.
	liveItems := make([]pictdb.IndexItem, 0, len(live))
	for id, r := range live {
		liveItems = append(liveItems, pictdb.IndexItem{Rect: r, Data: id})
	}
	start = time.Now()
	repacked := pictdb.PackIndex(params, liveItems, pictdb.PackOptions{Method: pictdb.PackNN})
	report("repacked", repacked, time.Since(start))
}
