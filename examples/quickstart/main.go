// Quickstart: build a small pictorial database, pack its spatial
// index, and run the paper's style of direct spatial search — all
// through the public pictdb API.
package main

import (
	"fmt"
	"log"

	pictdb "repro"
)

func main() {
	// 1. A database with one picture (a 100x100 site plan) and one
	// pictorial relation.
	db := pictdb.New()
	defer db.Close()

	plan, err := db.CreatePicture("site-plan", pictdb.R(0, 0, 100, 100))
	if err != nil {
		log.Fatal(err)
	}
	wells, err := db.CreateRelation("wells", pictdb.MustSchema(
		"name:string", "depth:int", "loc:loc"))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Insert tuples whose loc column points at objects on the
	// picture — the paper's backward identifiers.
	for _, w := range []struct {
		name  string
		depth int64
		x, y  float64
	}{
		{"W-1", 120, 10, 15}, {"W-2", 80, 12, 18}, {"W-3", 200, 45, 40},
		{"W-4", 95, 48, 44}, {"W-5", 310, 80, 85}, {"W-6", 150, 83, 82},
		{"W-7", 60, 15, 80}, {"W-8", 170, 50, 90},
	} {
		oid := plan.AddPoint(w.name, pictdb.Pt(w.x, w.y))
		if _, err := wells.Insert(pictdb.Tuple{
			pictdb.S(w.name), pictdb.I(w.depth), pictdb.L("site-plan", oid),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Pack the spatial index (the paper's PACK: the database is
	// static, so pay a one-time build for tight leaves).
	if err := wells.AttachPicture(plan, pictdb.PackOptions{Method: pictdb.PackNN}); err != nil {
		log.Fatal(err)
	}

	// 4. Direct spatial search in PSQL: deep wells in the south-west
	// quadrant, selected on the picture.
	res, err := db.Query(`
		select name, depth, loc
		from   wells
		on     site-plan
		at     loc covered-by {25±25, 25±25}
		where  depth > 100`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deep wells in the SW quadrant:")
	fmt.Print(res.Format())
	fmt.Printf("(%d R-tree nodes visited)\n\n", res.NodesVisited)

	// 5. The analog-form output device: draw the qualifying objects.
	out, err := db.Render(res, "site-plan", pictdb.R(0, 0, 100, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// 6. The same index is available directly (Section 3 without the
	// relational layer): pack points and run a window query.
	items := []pictdb.IndexItem{}
	for i := 0; i < 32; i++ {
		p := pictdb.Pt(float64(i%8)*10, float64(i/8)*10)
		items = append(items, pictdb.IndexItem{Rect: p.Rect(), Data: int64(i)})
	}
	idx := pictdb.PackIndex(pictdb.DefaultRTreeParams(), items, pictdb.PackOptions{})
	found, visited := idx.Query(pictdb.R(0, 0, 25, 25))
	fmt.Printf("packed index: %d items in window, %d of %d nodes visited\n",
		len(found), visited, idx.NodeCount())
	m := idx.ComputeMetrics()
	fmt.Printf("coverage=%.0f overlap=%.0f depth=%d\n", m.Coverage, m.Overlap, m.Depth)
}
