// Spatial join at scale: the paper's juxtaposition primitive —
// simultaneous traversal of two packed R-trees — against the naive
// nested loop, on a synthetic "cities within districts" workload.
// Reports result counts, node-pair visits, and wall-clock time.
package main

import (
	"fmt"
	"math/rand"
	"time"

	pictdb "repro"
)

func main() {
	const nPoints = 20_000
	const nDistricts = 2_000
	rng := rand.New(rand.NewSource(1985))
	params := pictdb.RTreeParams{Max: 32, Min: 16, Split: pictdb.SplitQuadratic}

	// Point features.
	pts := make([]pictdb.IndexItem, nPoints)
	for i := range pts {
		p := pictdb.Pt(rng.Float64()*1000, rng.Float64()*1000)
		pts[i] = pictdb.IndexItem{Rect: p.Rect(), Data: int64(i)}
	}
	// District rectangles.
	dists := make([]pictdb.IndexItem, nDistricts)
	for i := range dists {
		x, y := rng.Float64()*980, rng.Float64()*980
		w, h := 2+rng.Float64()*18, 2+rng.Float64()*18
		dists[i] = pictdb.IndexItem{Rect: pictdb.R(x, y, x+w, y+h), Data: int64(i)}
	}

	cities := pictdb.PackIndex(params, pts, pictdb.PackOptions{Method: pictdb.PackSTR})
	districts := pictdb.PackIndex(params, dists, pictdb.PackOptions{Method: pictdb.PackSTR})

	fmt.Printf("juxtaposition: %d points x %d districts (covered-by)\n\n", nPoints, nDistricts)

	// Simultaneous traversal (the paper's juxtaposition).
	start := time.Now()
	pairs := 0
	visited := pictdb.JoinIndexes(cities, districts,
		func(a, b pictdb.Rect) bool { return b.Contains(a) },
		func(_, _ pictdb.IndexItem) bool { pairs++; return true })
	simTime := time.Since(start)
	fmt.Printf("simultaneous traversal: %8d pairs  %8d node-pair visits  %10s\n",
		pairs, visited, simTime.Round(time.Microsecond))

	// Index nested loop: probe the district tree once per point.
	start = time.Now()
	nlPairs, nlVisits := 0, 0
	for _, it := range pts {
		v := districts.Search(it.Rect, func(d pictdb.IndexItem) bool {
			if d.Rect.Contains(it.Rect) {
				nlPairs++
			}
			return true
		})
		nlVisits += v
	}
	inlTime := time.Since(start)
	fmt.Printf("index nested loop:      %8d pairs  %8d node visits       %10s\n",
		nlPairs, nlVisits, inlTime.Round(time.Microsecond))

	// Full nested loop baseline (no index at all).
	start = time.Now()
	bfPairs := 0
	for _, a := range pts {
		for _, b := range dists {
			if b.Rect.Contains(a.Rect) {
				bfPairs++
			}
		}
	}
	bfTime := time.Since(start)
	fmt.Printf("naive nested loop:      %8d pairs  %8d comparisons       %10s\n",
		bfPairs, nPoints*nDistricts, bfTime.Round(time.Millisecond))

	if pairs != nlPairs || pairs != bfPairs {
		fmt.Printf("\n!! result mismatch: %d vs %d vs %d\n", pairs, nlPairs, bfPairs)
		return
	}
	fmt.Printf("\nall three agree on %d pairs; simultaneous traversal is %.1fx faster than the naive loop\n",
		pairs, float64(bfTime)/float64(simTime))
}
