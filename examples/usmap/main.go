// The paper's Section 2.2 walkthrough on the built-in US map database:
// direct spatial search, juxtaposition of two pictures ("geographic
// join"), a nested mapping, and indirect spatial search — each query
// printed with its alphanumeric table and, where it selects locs, the
// ASCII rendering of the picture.
package main

import (
	"fmt"
	"log"

	pictdb "repro"
)

func run(db *pictdb.Database, title, query string, render string) {
	fmt.Printf("== %s ==\n%s\n", title, query)
	res, err := db.Query(query)
	if err != nil {
		log.Fatalf("%s: %v", title, err)
	}
	fmt.Print(res.Format())
	fmt.Printf("(%d rows, %d R-tree nodes visited)\n", res.Len(), res.NodesVisited)
	if render != "" {
		out, err := db.Render(res, render, pictdb.R(0, 0, 1000, 1000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	fmt.Println()
}

func main() {
	db, err := pictdb.BuildUSDatabase()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Figure 2.1: "select all cities in the Eastern-US area having
	// population greater than 450,000." The paper's window {4±4,11±9}
	// is in its map units; eastern-us is the equivalent on our frame.
	run(db, "direct spatial search (Figure 2.1)", `
	select city, state, population, loc
	from   cities
	on     us-map
	at     loc covered-by eastern-us
	where  population > 450_000`, "us-map")

	// Figure 2.2: juxtaposition of us-map and time-zone-map.
	run(db, "juxtaposition / geographic join (Figure 2.2)", `
	select city, zone
	from   cities, time-zones
	on     us-map, time-zone-map
	at     cities.loc covered-by time-zones.loc`, "")

	// The nested mapping of §2.2: lakes covered by Eastern states,
	// where the inner mapping's result binds the outer window.
	run(db, "nested mapping (lakes within eastern states)", `
	select lake, area, lakes.loc
	from   lakes
	on     lake-map
	at     lakes.loc covered-by
	       select states.loc
	       from   states
	       on     state-map
	       at     states.loc overlapping eastern-us`, "lake-map")

	// Indirect spatial search: locate by alphanumeric attributes, then
	// display on the picture ("Display the city ... if the population
	// exceeds 2 million").
	run(db, "indirect spatial search (population > 2M)", `
	select city, population, loc
	from   cities
	where  population > 2_000_000`, "us-map")

	// Pictorial functions: the paper's area() on region domains plus
	// the northest() aggregate example.
	run(db, "pictorial functions on region domains", `
	select lake, area(loc) as true-area, northest(loc) as north-edge
	from   lakes
	on     lake-map
	where  area(loc) > 5_000`, "")

	// Segments: highway sections crossing the Eastern seaboard window.
	run(db, "segment objects (highways overlapping a window)", `
	select hwy-name, hwy-section, length(loc) as len, loc
	from   highways
	on     highway-map
	at     loc overlapping {850±80, 400±350}`, "highway-map")
}
