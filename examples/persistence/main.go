// Persistence: the paper's static-database lifecycle end to end. A
// pictorial database is built once, its spatial indexes packed, and
// the catalog checkpointed to a page file; a later process reopens the
// file and queries immediately — the one-time PACK investment amortized
// over the database's whole life.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	pictdb "repro"
	"repro/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "pictdb-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "atlas.db")

	build(path)
	reopen(path)
}

// build creates the database file: one picture, one packed relation,
// one checkpoint.
func build(path string) {
	db, err := pictdb.Open(path, 256)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	atlas, err := db.CreatePicture("atlas", pictdb.R(0, 0, 1000, 1000))
	if err != nil {
		log.Fatal(err)
	}
	cities, err := db.CreateRelation("cities", pictdb.MustSchema(
		"city:string", "state:string", "population:int", "loc:loc"))
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range workload.USCities() {
		oid := atlas.AddPoint(c.Name, c.Pos)
		if _, err := cities.Insert(pictdb.Tuple{
			pictdb.S(c.Name), pictdb.S(c.State), pictdb.I(c.Population), pictdb.L("atlas", oid),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := cities.CreateIndex("population"); err != nil {
		log.Fatal(err)
	}
	if err := cities.AttachPicture(atlas, pictdb.PackOptions{Method: pictdb.PackNN}); err != nil {
		log.Fatal(err)
	}
	db.DefineLocation("east", pictdb.R(600, 0, 1000, 1000))

	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("built %s: %d cities, packed index, checkpointed (%d pages, %d KiB)\n\n",
		filepath.Base(path), cities.Len(), db.NumPages(), st.Size()/1024)
}

// reopen loads the file as a fresh process would and queries at once.
func reopen(path string) {
	db, err := pictdb.Open(path, 64)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	res, err := db.Query(`
		select city, population, loc
		from   cities
		on     atlas
		at     loc covered-by east
		where  population > 500_000
		order  by population desc
		limit  8`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reopened; largest eastern cities (direct spatial search on the reloaded index):")
	fmt.Print(res.Format())
	for _, step := range res.Plan {
		fmt.Printf("plan: %s\n", step)
	}
	fmt.Printf("(%d R-tree nodes visited)\n", res.NodesVisited)
}
