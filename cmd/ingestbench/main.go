// Command ingestbench compares write strategies for a spatially
// indexed relation under a mixed insert/delete load:
//
//   - guttman: per-tuple Guttman INSERT/DELETE applied in place to the
//     packed tree — the paper's dynamic baseline (WriteInPlace).
//   - lsm: writes appended to the O(1) L0 buffer, drained into the
//     small delta tree by the background absorber (deletes into the
//     tombstone set), and merged into the packed tree by background
//     repacks when the write side crosses its threshold (WriteDelta,
//     the default policy).
//   - stw: the same delta path but with stop-the-world repacks forced
//     synchronously every threshold writes — what the background
//     repacker would cost if it blocked the writer.
//
// After ingest each strategy answers a warm window-query workload on
// whatever index state the writes left (residual delta included), so
// the report shows both sides of the trade: insert throughput and
// read amplification. A freshly packed reference over the same final
// data ("fresh-pack") anchors the query-latency comparison.
//
// With -shards "1,2,4,8" the strategy comparison is replaced by the
// sharding scaling sweep: the same ingest and warm-query cycle runs
// over an unsharded baseline and then over a Hilbert-range sharded
// relation at each listed shard count. Each shard owns an independent
// page file, write side, and repack schedule, so ingest throughput
// scales with the per-shard repack work reduction while scatter-gather
// keeps clustered-window query latency near the single-tree baseline.
// `make shardbench` records this sweep as BENCH_pr9.json.
//
// Usage:
//
//	ingestbench [-n items] [-inserts n] [-deletes n] [-threshold n]
//	            [-queries n] [-windows n] [-seed s] [-shards list]
//	            [-json] [-out file]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/relation"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/workload"
)

// strategyResult is one strategy's measurements.
type strategyResult struct {
	Strategy      string                  `json:"strategy"`
	IngestOps     int                     `json:"ingest_ops"`
	IngestSeconds float64                 `json:"ingest_seconds"`
	OpsPerSec     float64                 `json:"inserts_per_sec"`
	Repacks       int                     `json:"repacks"`
	SettleSeconds float64                 `json:"settle_seconds"`
	DeltaAtQuery  int                     `json:"delta_items_at_query"`
	TombsAtQuery  int                     `json:"tombstones_at_query"`
	Query         workload.LatencySummary `json:"query_latency"`
	AvgVisited    float64                 `json:"avg_nodes_visited"`
	RowsLast      int                     `json:"rows_last"`
}

// indexResult is one strategy's measurement in the index tier: the
// raw spatial-index write path with heap and catalog costs factored
// out.
type indexResult struct {
	Strategy  string  `json:"strategy"`
	Ops       int     `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"inserts_per_sec"`
	Merges    int     `json:"merges"`
}

type report struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Items     int    `json:"initial_items"`
	Inserts   int    `json:"inserts"`
	Deletes   int    `json:"deletes"`
	Threshold int    `json:"delta_threshold"`
	Queries   int    `json:"queries"`

	// Skew names the insert-point distribution when not uniform.
	Skew string `json:"skew,omitempty"`

	// IndexTier isolates the index write path (rtree only); Strategies
	// is the end-to-end relation tier, heap and picture included. Every
	// tier is omitempty: a report only carries the sections its mode
	// actually ran.
	IndexTier  []indexResult    `json:"index_tier,omitempty"`
	Strategies []strategyResult `json:"relation_tier,omitempty"`

	// The two acceptance ratios: LSM index-write throughput over the
	// per-tuple Guttman baseline (index tier, where the strategies
	// differ), and LSM warm query p50 over the freshly packed
	// reference (read amplification in wall-clock form).
	LSMIngestSpeedup  float64 `json:"lsm_ingest_speedup_vs_guttman,omitempty"`
	LSMWarmQueryRatio float64 `json:"lsm_warm_query_p50_ratio_vs_fresh,omitempty"`

	// Sharding sweep (-shards): the scaling curve plus its two
	// acceptance ratios — aggregate ingest throughput at the highest
	// shard count over one shard, and clustered-window query p50 at the
	// highest shard count over the unsharded baseline.
	ShardTier          []shardResult `json:"shard_tier,omitempty"`
	ShardIngestSpeedup float64       `json:"shard_ingest_speedup_max_vs_1,omitempty"`
	ShardQueryP50Ratio float64       `json:"shard_query_p50_ratio_vs_unsharded,omitempty"`

	// Rebalancing comparison (-rebalance): the same skewed ingest with
	// shard splitting disabled and enabled, plus the throughput ratio —
	// PR 10's first acceptance number.
	RebalanceTier          []rebalanceResult `json:"rebalance_tier,omitempty"`
	RebalanceIngestSpeedup float64           `json:"rebalance_ingest_speedup_vs_static,omitempty"`

	// Cross-shard join restriction (-rebalance): frontier-pruned
	// juxtaposition vs the bounds-overlap pair product vs the unsharded
	// join — PR 10's second acceptance number is PairVisitFraction.
	JoinTier *joinResult `json:"join_tier,omitempty"`
}

type config struct {
	n, inserts, deletes, threshold, queries, nWindows int
	radius                                            float64
	seed                                              int64
	method                                            pack.Method
	skew                                              workload.SkewSpec
}

// shardResult is one point on the sharding scaling curve: the full
// ingest-then-query cycle over a relation split across Shards page
// files (Shards == 0 is the unsharded baseline).
type shardResult struct {
	Shards        int                     `json:"shards"`
	IngestOps     int                     `json:"ingest_ops"`
	IngestSeconds float64                 `json:"ingest_seconds"`
	OpsPerSec     float64                 `json:"inserts_per_sec"`
	Repacks       int                     `json:"repacks"`
	Query         workload.LatencySummary `json:"query_latency"`
	AvgVisited    float64                 `json:"avg_nodes_visited"`
	RowsLast      int                     `json:"rows_last"`
}

// buildShardedFixture builds the cities relation over k shard page
// files (k == 0: the plain single-file relation, packed directly). For
// sharded builds the picture attaches before the load so placement is
// Hilbert routing; the untimed load then collapses into per-shard
// packed trees before the measured ingest begins.
func buildShardedFixture(cfg config, k int) (func(), *relation.Relation, *picture.Picture, error) {
	if k == 0 {
		p, rel, pic, err := buildFixture(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		return func() { p.Close() }, rel, pic, nil
	}
	pagers := make([]*pager.Pager, k)
	for i := range pagers {
		pagers[i] = pager.OpenMem(4096)
	}
	closer := func() {
		for _, p := range pagers {
			p.Close()
		}
	}
	rel, err := relation.NewSharded(pagers, "cities", relation.MustSchema("name:string", "loc:loc"))
	if err != nil {
		closer()
		return nil, nil, nil, err
	}
	pic := picture.New("map", geom.R(0, 0, 1000, 1000))
	if err := rel.AttachPicture(pic, pack.Options{Method: cfg.method}); err != nil {
		closer()
		return nil, nil, nil, err
	}
	// Hold the write sides open for the whole load, then pack once.
	for _, si := range rel.Spatials("map") {
		si.SetDeltaThreshold(cfg.n + cfg.inserts + 1)
	}
	for i, pt := range workload.UniformPoints(cfg.n, cfg.seed) {
		oid := pic.AddPoint(fmt.Sprintf("c%d", i), pt)
		if _, err := rel.Insert(relation.Tuple{relation.S(fmt.Sprintf("c%d", i)), relation.L("map", oid)}); err != nil {
			closer()
			return nil, nil, nil, err
		}
	}
	if err := rel.RepackPicture("map", pack.Options{Method: cfg.method}); err != nil {
		closer()
		return nil, nil, nil, err
	}
	for _, si := range rel.Spatials("map") {
		si.SetDeltaThreshold(cfg.threshold)
	}
	return closer, rel, pic, nil
}

// shardIngest drives the mixed load with the deterministic repack
// discipline: auto-repack off, and any shard whose write side crosses
// the threshold repacks synchronously — the repack cost lands on the
// writer, so throughput directly reflects index-maintenance work. An
// unsharded relation repacks its one O(n) tree every threshold writes;
// a k-sharded relation repacks an O(n/k) tree at the same per-shard
// cadence, which is the aggregate write-bandwidth scaling the sharding
// layer exists to buy.
func shardIngest(rel *relation.Relation, pic *picture.Picture, cfg config) (int, float64, error) {
	sis := rel.Spatials("map")
	for _, si := range sis {
		si.SetAutoRepack(false)
	}
	var ids []storage.TupleID
	if err := rel.Scan(func(id storage.TupleID, _ relation.Tuple) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		return 0, 0, err
	}
	deleteEvery := 0
	if cfg.deletes > 0 {
		deleteEvery = cfg.inserts / cfg.deletes
	}
	pts := cfg.skew.Points(cfg.inserts, cfg.seed+100)
	ops := 0
	start := time.Now()
	for i, pt := range pts {
		oid := pic.AddPoint(fmt.Sprintf("n%d", i), pt)
		id, err := rel.Insert(relation.Tuple{relation.S(fmt.Sprintf("n%d", i)), relation.L("map", oid)})
		if err != nil {
			return 0, 0, err
		}
		ids = append(ids, id)
		ops++
		if deleteEvery > 0 && i%deleteEvery == deleteEvery-1 && len(ids) > 0 {
			if err := rel.Delete(ids[0]); err != nil {
				return 0, 0, err
			}
			ids = ids[1:]
			ops++
		}
		if ops%64 == 0 {
			for _, si := range sis {
				if si.DeltaLen()+si.TombstoneCount() >= cfg.threshold {
					si.RepackNow(true)
				}
			}
		}
	}
	return ops, time.Since(start).Seconds(), nil
}

// runShardSweep measures the ingest-and-query cycle at every shard
// count: the per-shard write sides absorb the same mixed load under the
// synchronous repack discipline, then the write sides collapse and the
// warm clustered-window workload runs through the scatter-gather read
// path.
func runShardSweep(cfg config, counts []int) ([]shardResult, error) {
	var out []shardResult
	for _, k := range append([]int{0}, counts...) {
		closer, rel, pic, err := buildShardedFixture(cfg, k)
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", k, err)
		}
		for _, si := range rel.Spatials("map") {
			si.SetDeltaThreshold(cfg.threshold)
		}
		ops, ingestSec, err := shardIngest(rel, pic, cfg)
		if err != nil {
			closer()
			return nil, fmt.Errorf("shards=%d: %w", k, err)
		}
		repacks := 0
		for _, si := range rel.Spatials("map") {
			repacks += si.Repacks()
		}
		// Collapse residual write sides so every count's query phase
		// reads freshly packed trees — the latency comparison isolates
		// scatter-gather overhead, not leftover delta state.
		for _, si := range rel.Spatials("map") {
			si.RepackNow(true)
		}
		lat, avgVisited, rows, err := queryPhase(rel, cfg)
		if err != nil {
			closer()
			return nil, fmt.Errorf("shards=%d: %w", k, err)
		}
		closer()
		out = append(out, shardResult{
			Shards:        k,
			IngestOps:     ops,
			IngestSeconds: ingestSec,
			OpsPerSec:     float64(ops) / ingestSec,
			Repacks:       repacks,
			Query:         lat,
			AvgVisited:    avgVisited,
			RowsLast:      rows,
		})
	}
	return out, nil
}

// rebalanceResult is one arm of the skew-adaptive rebalancing
// comparison: the same skewed insert stream over k initial shards with
// online shard splitting disabled or enabled. Repacks run
// synchronously on the writer (as in the shard sweep), so throughput
// directly prices index maintenance: the static arm repacks one
// ever-growing hot shard, the rebalancing arm keeps every shard's
// working set near the threshold.
type rebalanceResult struct {
	Rebalance     bool    `json:"rebalance"`
	ShardsStart   int     `json:"shards_start"`
	ShardsEnd     int     `json:"shards_end"`
	Splits        int     `json:"splits"`
	IngestOps     int     `json:"ingest_ops"`
	IngestSeconds float64 `json:"ingest_seconds"`
	OpsPerSec     float64 `json:"inserts_per_sec"`
	Repacks       int     `json:"repacks"`
	Imbalance     float64 `json:"imbalance_factor"`
}

// joinResult measures the cross-shard juxtaposition restriction on
// clustered data: the frontier walk admits PairsJoined of the
// PairProduct bounds-overlapping shard pairs, with output checked
// bit-identical (by resolved tuple) against both the unrestricted
// pair-product scatter and the unsharded join.
type joinResult struct {
	Shards            int     `json:"shards"`
	ItemsPerSide      int     `json:"items_per_side"`
	ResultPairs       int     `json:"result_pairs"`
	PairProduct       int     `json:"pair_product"`
	PairsJoined       int     `json:"pairs_joined"`
	PairVisitFraction float64 `json:"pair_visit_fraction"`
	VisitedPruned     int     `json:"nodes_visited_pruned"`
	VisitedFull       int     `json:"nodes_visited_full"`
	SecondsPruned     float64 `json:"seconds_pruned"`
	SecondsFull       float64 `json:"seconds_full"`
	SecondsUnsharded  float64 `json:"seconds_unsharded"`
	Identical         bool    `json:"identical_to_full_and_unsharded"`
}

// runRebalanceArm drives the skewed insert stream over k initial
// shards. With rebalance set, every 512 ops the most loaded shard (at
// imbalance factor 2 and at least one threshold of tuples) is split at
// its occupancy median into a fresh sidecar — the relation-level
// migration, timed inside the loop so the split cost is amortized into
// the throughput it buys.
func runRebalanceArm(cfg config, k int, rebalance bool) (rebalanceResult, error) {
	closer, rel, pic, err := buildShardedFixture(cfg, k)
	if err != nil {
		return rebalanceResult{}, err
	}
	defer closer()
	var extra []*pager.Pager
	defer func() {
		for _, p := range extra {
			p.Close()
		}
	}()
	for _, si := range rel.Spatials("map") {
		si.SetDeltaThreshold(cfg.threshold)
		si.SetAutoRepack(false)
	}
	pts := cfg.skew.Points(cfg.inserts, cfg.seed+100)
	splits, ops := 0, 0
	start := time.Now()
	for i, pt := range pts {
		oid := pic.AddPoint(fmt.Sprintf("n%d", i), pt)
		if _, err := rel.Insert(relation.Tuple{relation.S(fmt.Sprintf("n%d", i)), relation.L("map", oid)}); err != nil {
			return rebalanceResult{}, err
		}
		ops++
		if ops%64 == 0 {
			for _, si := range rel.Spatials("map") {
				if si.DeltaLen()+si.TombstoneCount() >= cfg.threshold {
					si.RepackNow(true)
				}
			}
		}
		if rebalance && ops%512 == 0 && rel.ShardCount() < 64 {
			if s, ok := rel.MostLoadedShard(2.0, cfg.threshold); ok {
				pgr := pager.OpenMem(4096)
				_, pending, err := rel.SplitShard(s, pgr)
				if err != nil {
					pgr.Close()
					if !errors.Is(err, relation.ErrShardNotSplittable) {
						return rebalanceResult{}, err
					}
					continue
				}
				if err := rel.FinishSplit(pending); err != nil {
					pgr.Close()
					return rebalanceResult{}, err
				}
				extra = append(extra, pgr)
				splits++
			}
		}
	}
	sec := time.Since(start).Seconds()
	repacks := 0
	for _, si := range rel.Spatials("map") {
		repacks += si.Repacks()
	}
	_, imbalance := rel.ShardBalance()
	return rebalanceResult{
		Rebalance:     rebalance,
		ShardsStart:   k,
		ShardsEnd:     rel.ShardCount(),
		Splits:        splits,
		IngestOps:     ops,
		IngestSeconds: sec,
		OpsPerSec:     float64(ops) / sec,
		Repacks:       repacks,
		Imbalance:     imbalance,
	}, nil
}

// joinClustersA and joinClustersB are the two relations' cluster
// sites: two shared (the join's real work) and three private each, so
// most shard pairs overlap only through empty space — the pairs the
// frontier restriction exists to prune.
var (
	joinClustersA = [][2]float64{{120, 150}, {850, 200}, {480, 520}, {200, 840}, {880, 870}, {520, 120}, {80, 650}, {700, 920}}
	joinClustersB = [][2]float64{{120, 150}, {850, 200}, {680, 640}, {350, 320}, {150, 480}, {920, 480}, {380, 880}, {600, 300}}
)

// buildJoinRel loads n small square regions drawn around the cluster
// sites into a k-shard relation (k == 0: unsharded), Hilbert-routed
// (picture attached first), write sides collapsed.
func buildJoinRel(pic *picture.Picture, k int, oids []picture.ObjectID, names []string, method pack.Method) (func(), *relation.Relation, error) {
	var rel *relation.Relation
	var closer func()
	if k == 0 {
		p := pager.OpenMem(4096)
		r, err := relation.New(p, "objs", relation.MustSchema("name:string", "loc:loc"))
		if err != nil {
			p.Close()
			return nil, nil, err
		}
		rel, closer = r, func() { p.Close() }
	} else {
		pagers := make([]*pager.Pager, k)
		for i := range pagers {
			pagers[i] = pager.OpenMem(4096)
		}
		closer = func() {
			for _, p := range pagers {
				p.Close()
			}
		}
		r, err := relation.NewSharded(pagers, "objs", relation.MustSchema("name:string", "loc:loc"))
		if err != nil {
			closer()
			return nil, nil, err
		}
		rel = r
	}
	if err := rel.AttachPicture(pic, pack.Options{Method: method}); err != nil {
		closer()
		return nil, nil, err
	}
	for i, oid := range oids {
		if _, err := rel.Insert(relation.Tuple{relation.S(names[i]), relation.L("map", oid)}); err != nil {
			closer()
			return nil, nil, err
		}
	}
	if err := rel.RepackPicture("map", pack.Options{Method: method}); err != nil {
		closer()
		return nil, nil, err
	}
	return closer, rel, nil
}

// clusterObjects draws n region objects around the cluster sites into
// pic and returns their ids and names.
func clusterObjects(pic *picture.Picture, centers [][2]float64, prefix string, n int, seed int64) ([]picture.ObjectID, []string) {
	rng := rand.New(rand.NewSource(seed))
	clamp := func(v float64) float64 {
		if v < 10 {
			return 10
		}
		if v > 990 {
			return 990
		}
		return v
	}
	oids := make([]picture.ObjectID, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		x := clamp(c[0] + (rng.Float64()*2-1)*30)
		y := clamp(c[1] + (rng.Float64()*2-1)*30)
		names[i] = fmt.Sprintf("%s%05d", prefix, i)
		oids[i] = pic.AddRegion(names[i], geom.Poly(
			geom.Pt(x-6, y-6), geom.Pt(x+6, y-6), geom.Pt(x+6, y+6), geom.Pt(x-6, y+6)))
	}
	return oids, names
}

// runJoinTier measures the frontier restriction: the clustered
// cross-shard join at k shards with pruning on and off, and the
// unsharded reference, all three checked pair-for-pair identical by
// resolved tuple names.
func runJoinTier(cfg config, k, n int) (joinResult, error) {
	pic := picture.New("map", geom.R(0, 0, 1000, 1000))
	aOids, aNames := clusterObjects(pic, joinClustersA, "a", n, cfg.seed+7)
	bOids, bNames := clusterObjects(pic, joinClustersB, "b", n, cfg.seed+13)

	closeA, relA, err := buildJoinRel(pic, k, aOids, aNames, cfg.method)
	if err != nil {
		return joinResult{}, err
	}
	defer closeA()
	closeB, relB, err := buildJoinRel(pic, k, bOids, bNames, cfg.method)
	if err != nil {
		return joinResult{}, err
	}
	defer closeB()
	closeA0, relA0, err := buildJoinRel(pic, 0, aOids, aNames, cfg.method)
	if err != nil {
		return joinResult{}, err
	}
	defer closeA0()
	closeB0, relB0, err := buildJoinRel(pic, 0, bOids, bNames, cfg.method)
	if err != nil {
		return joinResult{}, err
	}
	defer closeB0()

	pred := func(a, b geom.Rect) bool { return a.Intersects(b) }
	workers := runtime.GOMAXPROCS(0)

	t0 := time.Now()
	pruned, stats, visitedPruned, err := relA.JuxtaposeSpatialStats("map", relB, "map", pred, workers, true)
	if err != nil {
		return joinResult{}, err
	}
	secPruned := time.Since(t0).Seconds()
	t0 = time.Now()
	full, _, visitedFull, err := relA.JuxtaposeSpatialStats("map", relB, "map", pred, workers, false)
	if err != nil {
		return joinResult{}, err
	}
	secFull := time.Since(t0).Seconds()
	t0 = time.Now()
	unsharded, _, err := relA0.JuxtaposeSpatial("map", relB0, "map", pred, workers)
	if err != nil {
		return joinResult{}, err
	}
	secUnsharded := time.Since(t0).Seconds()

	pairNames := func(ra, rb *relation.Relation, pairs []relation.SpatialPair) ([]string, error) {
		out := make([]string, len(pairs))
		for i, p := range pairs {
			ta, err := ra.Get(p.A)
			if err != nil {
				return nil, err
			}
			tb, err := rb.Get(p.B)
			if err != nil {
				return nil, err
			}
			out[i] = ta[0].Str + "|" + tb[0].Str
		}
		return out, nil
	}
	np, err := pairNames(relA, relB, pruned)
	if err != nil {
		return joinResult{}, err
	}
	nf, err := pairNames(relA, relB, full)
	if err != nil {
		return joinResult{}, err
	}
	nu, err := pairNames(relA0, relB0, unsharded)
	if err != nil {
		return joinResult{}, err
	}
	identical := len(np) == len(nf) && len(np) == len(nu)
	if identical {
		for i := range np {
			if np[i] != nf[i] || np[i] != nu[i] {
				identical = false
				break
			}
		}
	}
	frac := 0.0
	if stats.PairProduct > 0 {
		frac = float64(stats.PairsJoined) / float64(stats.PairProduct)
	}
	return joinResult{
		Shards:            k,
		ItemsPerSide:      n,
		ResultPairs:       len(pruned),
		PairProduct:       stats.PairProduct,
		PairsJoined:       stats.PairsJoined,
		PairVisitFraction: frac,
		VisitedPruned:     visitedPruned,
		VisitedFull:       visitedFull,
		SecondsPruned:     secPruned,
		SecondsFull:       secFull,
		SecondsUnsharded:  secUnsharded,
		Identical:         identical,
	}, nil
}

// runIndexTier measures the bare index write path — no heap, no
// picture, no tuple encoding — so the strategies' actual difference
// is visible undiluted. guttman applies every insert and delete to
// the packed Max=4 quadratic tree per-tuple; lsm mirrors the real
// SpatialIndex write path: the writer appends to an L0 buffer (plus a
// tombstone set for deletes), a background absorber drains the buffer
// into a small linear delta tree in batches, and a background merge
// folds everything into a fresh pack each time the write side crosses
// the threshold (the writer never blocks on a merge); stw runs the
// same merges inline on the writer.
func runIndexTier(cfg config) []indexResult {
	params := rtree.DefaultParams()
	deltaParams := rtree.Params{Max: 32, Min: 8, Split: rtree.SplitLinear}
	base := workload.PointItems(workload.UniformPoints(cfg.n, cfg.seed))
	ins := workload.UniformPoints(cfg.inserts, cfg.seed+100)
	opts := pack.Options{Method: cfg.method}
	mergeOpts := opts
	mergeOpts.TrimToMultiple = false
	deleteEvery := 0
	if cfg.deletes > 0 {
		deleteEvery = cfg.inserts / cfg.deletes
	}

	guttman := func() indexResult {
		tree := pack.Tree(params, base, opts)
		ops, del := 0, 0
		start := time.Now()
		for i, pt := range ins {
			tree.Insert(geom.R(pt.X, pt.Y, pt.X, pt.Y), int64(cfg.n+i))
			ops++
			if deleteEvery > 0 && i%deleteEvery == deleteEvery-1 && del < len(base) {
				tree.Delete(base[del].Rect, base[del].Data)
				del++
				ops++
			}
		}
		sec := time.Since(start).Seconds()
		return indexResult{Strategy: "guttman", Ops: ops, Seconds: sec, OpsPerSec: float64(ops) / sec}
	}

	delta := func(name string, inline bool) indexResult {
		packed := pack.Tree(params, base, opts)
		var mu sync.Mutex
		dt := rtree.New(deltaParams)
		var l0 []rtree.Item
		tombs := map[int64]struct{}{}
		merges := 0
		var pending chan *rtree.Tree
		merge := func(from *rtree.Tree, frozen []rtree.Item, ts map[int64]struct{}) *rtree.Tree {
			items := make([]rtree.Item, 0, from.Len()+len(frozen))
			for _, it := range from.Items() {
				if _, dead := ts[it.Data]; !dead {
					items = append(items, it)
				}
			}
			items = append(items, frozen...)
			return pack.Tree(params, items, mergeOpts)
		}
		// Background absorber: drain L0 into the delta tree in short
		// batches under the lock, exactly like the real index.
		absorbing := false
		var wg sync.WaitGroup
		absorb := func() {
			defer wg.Done()
			for {
				mu.Lock()
				n := len(l0)
				if n == 0 {
					absorbing = false
					mu.Unlock()
					return
				}
				if n > 128 {
					n = 128
				}
				for _, it := range l0[:n] {
					dt.Insert(it.Rect, it.Data)
				}
				l0 = l0[n:]
				mu.Unlock()
			}
		}
		ops, del := 0, 0
		start := time.Now()
		for i, pt := range ins {
			mu.Lock()
			l0 = append(l0, rtree.Item{Rect: geom.R(pt.X, pt.Y, pt.X, pt.Y), Data: int64(cfg.n + i)})
			ops++
			if deleteEvery > 0 && i%deleteEvery == deleteEvery-1 && del < len(base) {
				tombs[base[del].Data] = struct{}{}
				del++
				ops++
			}
			trigger := !absorbing && len(l0) >= 512
			if trigger {
				absorbing = true
			}
			if pending != nil {
				// Adopt a finished background merge without blocking:
				// like the real index, the writer never waits — the
				// write side keeps absorbing while a repack is in
				// flight.
				select {
				case packed = <-pending:
					pending = nil
				default:
				}
			}
			if pending == nil && dt.Len()+len(l0)+len(tombs) >= cfg.threshold {
				frozen := append(dt.Items(), l0...)
				ts := tombs
				dt = rtree.New(deltaParams)
				l0 = nil
				tombs = map[int64]struct{}{}
				merges++
				if inline {
					packed = merge(packed, frozen, ts)
				} else {
					from := packed
					ch := make(chan *rtree.Tree, 1)
					go func() { ch <- merge(from, frozen, ts) }()
					pending = ch
				}
			}
			mu.Unlock()
			if trigger {
				wg.Add(1)
				go absorb()
			}
		}
		sec := time.Since(start).Seconds()
		wg.Wait()
		if pending != nil {
			packed = <-pending
		}
		_ = packed
		return indexResult{Strategy: name, Ops: ops, Seconds: sec, OpsPerSec: float64(ops) / sec, Merges: merges}
	}

	return []indexResult{guttman(), delta("lsm", false), delta("stw", true)}
}

// buildFixture creates a cities relation over n uniform points with a
// packed spatial index, the common starting state for every strategy.
func buildFixture(cfg config) (*pager.Pager, *relation.Relation, *picture.Picture, error) {
	p := pager.OpenMem(4096)
	rel, err := relation.New(p, "cities", relation.MustSchema("name:string", "loc:loc"))
	if err != nil {
		p.Close()
		return nil, nil, nil, err
	}
	pic := picture.New("map", geom.R(0, 0, 1000, 1000))
	for i, pt := range workload.UniformPoints(cfg.n, cfg.seed) {
		oid := pic.AddPoint(fmt.Sprintf("c%d", i), pt)
		if _, err := rel.Insert(relation.Tuple{relation.S(fmt.Sprintf("c%d", i)), relation.L("map", oid)}); err != nil {
			p.Close()
			return nil, nil, nil, err
		}
	}
	if err := rel.AttachPicture(pic, pack.Options{Method: cfg.method}); err != nil {
		p.Close()
		return nil, nil, nil, err
	}
	return p, rel, pic, nil
}

// ingest drives the mixed insert/delete load. Every deleteEvery-th op
// is a delete of the oldest surviving tuple; for the stw strategy a
// stop-the-world repack runs synchronously every threshold ops.
func ingest(rel *relation.Relation, pic *picture.Picture, cfg config, stw bool) (int, float64, error) {
	si := rel.Spatial("map")
	var ids []storage.TupleID
	if err := rel.Scan(func(id storage.TupleID, _ relation.Tuple) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		return 0, 0, err
	}
	deleteEvery := 0
	if cfg.deletes > 0 {
		deleteEvery = cfg.inserts / cfg.deletes
	}
	pts := cfg.skew.Points(cfg.inserts, cfg.seed+100)
	ops := 0
	start := time.Now()
	for i, pt := range pts {
		oid := pic.AddPoint(fmt.Sprintf("n%d", i), pt)
		id, err := rel.Insert(relation.Tuple{relation.S(fmt.Sprintf("n%d", i)), relation.L("map", oid)})
		if err != nil {
			return 0, 0, err
		}
		ids = append(ids, id)
		ops++
		if deleteEvery > 0 && i%deleteEvery == deleteEvery-1 && len(ids) > 0 {
			if err := rel.Delete(ids[0]); err != nil {
				return 0, 0, err
			}
			ids = ids[1:]
			ops++
		}
		if stw && ops%cfg.threshold == 0 {
			si.RepackNow(true)
		}
	}
	return ops, time.Since(start).Seconds(), nil
}

// queryPhase runs the warm window workload against the index as the
// ingest left it, returning per-op latency and mean visited nodes.
func queryPhase(rel *relation.Relation, cfg config) (workload.LatencySummary, float64, int, error) {
	windows := workload.QueryWindows(cfg.nWindows, cfg.radius, cfg.seed+1)
	always := func(obj, win geom.Rect) bool { return true }
	samples := make([]time.Duration, 0, cfg.queries)
	totalVisited := 0
	rows := 0
	// Collect ingest-phase garbage now so GC pauses don't land inside
	// the timed loop, then warm page and allocator caches untimed.
	runtime.GC()
	for i := 0; i < len(windows) && i < 64; i++ {
		if _, _, err := rel.SearchArea("map", windows[i], always); err != nil {
			return workload.LatencySummary{}, 0, 0, err
		}
	}
	for i := 0; i < cfg.queries; i++ {
		w := windows[i%len(windows)]
		t0 := time.Now()
		ids, visited, err := rel.SearchArea("map", w, always)
		if err != nil {
			return workload.LatencySummary{}, 0, 0, err
		}
		samples = append(samples, time.Since(t0))
		totalVisited += visited
		rows = len(ids)
	}
	return workload.Summarize(samples), float64(totalVisited) / float64(cfg.queries), rows, nil
}

// runStrategy executes one full build-ingest-query cycle. When fresh
// is true the index is collapsed to a freshly packed tree before the
// query phase — the read-side reference the LSM state is compared to.
func runStrategy(name string, cfg config, fresh bool) (strategyResult, error) {
	p, rel, pic, err := buildFixture(cfg)
	if err != nil {
		return strategyResult{}, err
	}
	defer p.Close()
	si := rel.Spatial("map")
	si.SetDeltaThreshold(cfg.threshold)
	stw := false
	switch name {
	case "guttman":
		rel.SetSpatialWritePolicy(relation.WriteInPlace)
	case "lsm", "fresh-pack":
		// Default WriteDelta with background repacks.
	case "stw":
		si.SetAutoRepack(false)
		stw = true
	}

	ops, ingestSec, err := ingest(rel, pic, cfg, stw)
	if err != nil {
		return strategyResult{}, err
	}
	settleStart := time.Now()
	si.WaitAbsorb()
	si.WaitRepack()
	settle := time.Since(settleStart).Seconds()
	if fresh {
		// Collapse delta and tombstones: the query phase below sees a
		// freshly packed tree over the same final data.
		si.RepackNow(true)
	}

	lat, avgVisited, rows, err := queryPhase(rel, cfg)
	if err != nil {
		return strategyResult{}, err
	}
	return strategyResult{
		Strategy:      name,
		IngestOps:     ops,
		IngestSeconds: ingestSec,
		OpsPerSec:     float64(ops) / ingestSec,
		Repacks:       si.Repacks(),
		SettleSeconds: settle,
		DeltaAtQuery:  si.DeltaLen(),
		TombsAtQuery:  si.TombstoneCount(),
		Query:         lat,
		AvgVisited:    avgVisited,
		RowsLast:      rows,
	}, nil
}

// emitReport writes the JSON report to outPath when set, then either
// encodes it on stdout (jsonOut) or renders the human table.
func emitReport(rep report, outPath string, jsonOut bool, table func()) {
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(outPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: -out: %v\n", err)
			os.Exit(1)
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	table()
}

func main() {
	n := flag.Int("n", 100000, "initial packed items")
	inserts := flag.Int("inserts", 20000, "tuples inserted during ingest")
	deletes := flag.Int("deletes", 2000, "tuples deleted during ingest")
	threshold := flag.Int("threshold", 4096, "delta size that triggers a repack")
	queries := flag.Int("queries", 2000, "warm window queries per strategy")
	nWindows := flag.Int("windows", 256, "distinct query windows")
	radius := flag.Float64("radius", 25, "maximum half-extent of the query windows")
	seed := flag.Int64("seed", 1985, "workload seed")
	method := flag.String("method", "str", "packing method for build and repack: str, hilbert, lowx, nn")
	shardsFlag := flag.String("shards", "", "comma-separated shard counts (e.g. 1,2,4,8): run the sharding scaling sweep instead of the strategy comparison")
	skewFlag := flag.String("skew", "", "insert-point distribution: uniform, zipf:<s>, cluster:<k>:<stddev>, hot:<frac>:<range>")
	rebalanceFlag := flag.Bool("rebalance", false, "run the skew-adaptive rebalancing comparison and the cross-shard join restriction measurement (ingest uses -skew; starting shard count is the first -shards entry, default 8)")
	joinN := flag.Int("joinn", 600, "regions per side in the join-restriction measurement")
	jsonOut := flag.Bool("json", false, "emit the JSON report on stdout instead of the table")
	out := flag.String("out", "", "also write the JSON report to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ingestbench: -cpuprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	methods := map[string]pack.Method{
		"str": pack.MethodSTR, "hilbert": pack.MethodHilbert,
		"lowx": pack.MethodLowX, "nn": pack.MethodNN,
	}
	m, ok := methods[*method]
	if !ok {
		fmt.Fprintf(os.Stderr, "ingestbench: unknown method %q\n", *method)
		os.Exit(2)
	}

	skew, err := workload.ParseSkew(*skewFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ingestbench: %v\n", err)
		os.Exit(2)
	}

	cfg := config{
		n: *n, inserts: *inserts, deletes: *deletes, threshold: *threshold,
		queries: *queries, nWindows: *nWindows, radius: *radius, seed: *seed, method: m,
		skew: skew,
	}
	rep := report{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Items: cfg.n, Inserts: cfg.inserts, Deletes: cfg.deletes,
		Threshold: cfg.threshold, Queries: cfg.queries,
		Skew: *skewFlag,
	}

	var counts []int
	if *shardsFlag != "" {
		for _, f := range strings.Split(*shardsFlag, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k < 1 {
				fmt.Fprintf(os.Stderr, "ingestbench: bad -shards entry %q\n", f)
				os.Exit(2)
			}
			counts = append(counts, k)
		}
	}

	if *rebalanceFlag {
		k := 8
		if len(counts) > 0 {
			k = counts[0]
		}
		for _, arm := range []bool{false, true} {
			r, err := runRebalanceArm(cfg, k, arm)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ingestbench: rebalance arm (rebalance=%v): %v\n", arm, err)
				os.Exit(1)
			}
			rep.RebalanceTier = append(rep.RebalanceTier, r)
		}
		if off := rep.RebalanceTier[0]; off.OpsPerSec > 0 {
			rep.RebalanceIngestSpeedup = rep.RebalanceTier[1].OpsPerSec / off.OpsPerSec
		}
		jr, err := runJoinTier(cfg, 6, *joinN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: join tier: %v\n", err)
			os.Exit(1)
		}
		rep.JoinTier = &jr
		emitReport(rep, *out, *jsonOut, func() {
			fmt.Printf("Rebalance: %d packed items + %d skewed inserts (%s), threshold %d, %d initial shards\n\n",
				cfg.n, cfg.inserts, cfg.skew.String(), cfg.threshold, k)
			fmt.Printf("%-10s %12s %8s %8s %8s %10s\n",
				"rebalance", "inserts/sec", "shards", "splits", "repacks", "imbalance")
			for _, r := range rep.RebalanceTier {
				fmt.Printf("%-10v %12.0f %8d %8d %8d %10.2f\n",
					r.Rebalance, r.OpsPerSec, r.ShardsEnd, r.Splits, r.Repacks, r.Imbalance)
			}
			fmt.Printf("\ningest speedup with rebalancing: %.2fx\n", rep.RebalanceIngestSpeedup)
			fmt.Printf("\njoin restriction (%d shards, %d regions/side): %d of %d overlapping pairs joined (%.0f%%), identical=%v\n",
				jr.Shards, jr.ItemsPerSide, jr.PairsJoined, jr.PairProduct, jr.PairVisitFraction*100, jr.Identical)
			fmt.Printf("nodes visited: pruned %d, full scatter %d; result pairs %d\n",
				jr.VisitedPruned, jr.VisitedFull, jr.ResultPairs)
		})
		if !jr.Identical {
			fmt.Fprintln(os.Stderr, "ingestbench: join restriction output diverged from baseline")
			os.Exit(1)
		}
		return
	}

	if *shardsFlag != "" {
		tier, err := runShardSweep(cfg, counts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: %v\n", err)
			os.Exit(1)
		}
		rep.ShardTier = tier
		byShards := map[int]shardResult{}
		maxK := 0
		for _, r := range tier {
			byShards[r.Shards] = r
			if r.Shards > maxK {
				maxK = r.Shards
			}
		}
		if one, ok := byShards[1]; ok && one.OpsPerSec > 0 {
			rep.ShardIngestSpeedup = byShards[maxK].OpsPerSec / one.OpsPerSec
		}
		if un := byShards[0]; un.Query.P50 > 0 {
			rep.ShardQueryP50Ratio = float64(byShards[maxK].Query.P50) / float64(un.Query.P50)
		}
		emitReport(rep, *out, *jsonOut, func() {
			fmt.Printf("Shard sweep: %d packed items + %d inserts / %d deletes, threshold %d per shard, %d warm queries\n\n",
				cfg.n, cfg.inserts, cfg.deletes, cfg.threshold, cfg.queries)
			fmt.Printf("%-8s %12s %8s %10s %10s %10s %10s\n",
				"shards", "inserts/sec", "repacks", "p50", "p95", "p99", "visited")
			for _, r := range rep.ShardTier {
				label := fmt.Sprintf("%d", r.Shards)
				if r.Shards == 0 {
					label = "unshard"
				}
				fmt.Printf("%-8s %12.0f %8d %10s %10s %10s %10.1f\n",
					label, r.OpsPerSec, r.Repacks, r.Query.P50, r.Query.P95, r.Query.P99, r.AvgVisited)
			}
			fmt.Printf("\ningest speedup %d shards vs 1: %.2fx\n", maxK, rep.ShardIngestSpeedup)
			fmt.Printf("query p50 %d shards vs unsharded: %.2fx\n", maxK, rep.ShardQueryP50Ratio)
		})
		return
	}

	rep.IndexTier = runIndexTier(cfg)
	byIdx := map[string]indexResult{}
	for _, r := range rep.IndexTier {
		byIdx[r.Strategy] = r
	}
	if g, l := byIdx["guttman"], byIdx["lsm"]; g.OpsPerSec > 0 {
		rep.LSMIngestSpeedup = l.OpsPerSec / g.OpsPerSec
	}

	byName := map[string]strategyResult{}
	for _, s := range []struct {
		name  string
		fresh bool
	}{
		{"guttman", false},
		{"lsm", false},
		{"stw", false},
		{"fresh-pack", true},
	} {
		r, err := runStrategy(s.name, cfg, s.fresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingestbench: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		rep.Strategies = append(rep.Strategies, r)
		byName[s.name] = r
	}
	if f, l := byName["fresh-pack"], byName["lsm"]; f.Query.P50 > 0 {
		rep.LSMWarmQueryRatio = float64(l.Query.P50) / float64(f.Query.P50)
	}

	emitReport(rep, *out, *jsonOut, func() {
		fmt.Printf("Ingest: %d packed items + %d inserts / %d deletes, threshold %d, %d warm queries\n\n",
			cfg.n, cfg.inserts, cfg.deletes, cfg.threshold, cfg.queries)
		fmt.Printf("index tier (rtree write path only):\n")
		fmt.Printf("%-10s %12s %8s\n", "strategy", "inserts/sec", "merges")
		for _, r := range rep.IndexTier {
			fmt.Printf("%-10s %12.0f %8d\n", r.Strategy, r.OpsPerSec, r.Merges)
		}
		fmt.Printf("\nrelation tier (end to end):\n")
		fmt.Printf("%-10s %12s %8s %10s %10s %10s %10s %8s %8s\n",
			"strategy", "inserts/sec", "repacks", "p50", "p95", "p99", "visited", "delta", "tombs")
		for _, r := range rep.Strategies {
			fmt.Printf("%-10s %12.0f %8d %10s %10s %10s %10.1f %8d %8d\n",
				r.Strategy, r.OpsPerSec, r.Repacks, r.Query.P50, r.Query.P95, r.Query.P99,
				r.AvgVisited, r.DeltaAtQuery, r.TombsAtQuery)
		}
		fmt.Printf("\nlsm ingest speedup vs guttman: %.2fx\n", rep.LSMIngestSpeedup)
		fmt.Printf("lsm warm query p50 vs fresh pack: %.2fx\n", rep.LSMWarmQueryRatio)
	})
}
