// Command pictdblint runs the engine's go/analysis suite (pinlifetime,
// locksync, corruptwrap, benchguard — see DESIGN.md §14) over Go
// packages.
//
// Usage:
//
//	pictdblint ./...          # lint packages (drives go vet -vettool)
//	go vet -vettool=$(which pictdblint) ./...
//
// The binary speaks the x/tools unitchecker protocol, so `go vet
// -vettool=` gives every analyzer full type information from the build
// cache with no extra loader. When invoked with package patterns
// instead of a vet config, it re-executes itself through `go vet` for
// convenience — `make lint` uses exactly that path.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(lint.Analyzers()...) // never returns
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pictdblint: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "pictdblint: %v\n", err)
		os.Exit(2)
	}
}

// vetProtocol reports whether the arguments look like an invocation by
// `go vet` (unitchecker protocol). The vet driver probes the tool with
// flag arguments (-V=full, -flags, per-analyzer flags) and finally
// hands it a *.cfg unit file, so ANY dash-prefixed argument or .cfg
// path must be answered by unitchecker — re-executing `go vet` on one
// would recurse forever. Only bare package patterns (./..., repro/...)
// take the convenience path.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
