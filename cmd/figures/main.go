// Command figures regenerates the paper's figure experiments and
// theorem verifications as text reports:
//
//	figures                 # all of them
//	figures -fig 3.4        # just Figure 3.4
//	figures -fig thm33      # just the Theorem 3.3 counterexample
//	figures -fig update     # the §3.4 update-drift experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure: 3.3, 3.4, 3.7, 3.8, thm32, thm33, update, fanout, all")
	seed := flag.Int64("seed", 1985, "random seed where applicable")
	flag.Parse()

	run := func(name string, f func() experiments.FigureReport) {
		if *fig == "all" || *fig == name {
			fmt.Println(f())
		}
	}
	run("3.3", experiments.Figure33)
	run("3.4", experiments.Figure34)
	run("3.7", experiments.Figure37)
	run("3.8", experiments.Figure38)
	run("thm32", func() experiments.FigureReport { return experiments.Theorem32(128, *seed) })
	run("thm33", experiments.Theorem33)

	if *fig == "all" || *fig == "fanout" {
		fmt.Println("[ablation] branching-factor sweep (10k uniform points, 500 window queries)")
		fmt.Print(experiments.FormatFanout(experiments.RunFanoutSweep(experiments.FanoutConfig{Seed: *seed})))
		fmt.Println()
	}

	if *fig == "all" || *fig == "update" {
		fmt.Println("[§3.4] update drift: packed tree under Guttman INSERT/DELETE vs fresh repack")
		rows := experiments.RunUpdateDrift(experiments.UpdateDriftConfig{Seed: *seed})
		fmt.Print(experiments.FormatUpdateDrift(rows))
	}

	switch *fig {
	case "all", "3.3", "3.4", "3.7", "3.8", "thm32", "thm33", "update", "fanout":
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
