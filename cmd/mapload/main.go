// Command mapload builds a persistent pictorial database from CSV
// point data and checkpoints it, ready for cmd/psql -db:
//
//	mapload -db atlas.db -relation cities -picture map points.csv
//
// The CSV must have a header row; two columns must be named x and y
// (coordinates in the picture frame). Every other column becomes an
// alphanumeric column: integer-parsable columns become int, float-
// parsable become float, the rest string. A loc column is appended
// automatically and the spatial index packed with the selected method.
//
//	name,state,population,x,y
//	Washington,DC,638333,827,596
//
// With -demo, the built-in US datasets are loaded instead of a CSV.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	pictdb "repro"
	"repro/internal/workload"
)

func main() {
	dbPath := flag.String("db", "pictdb.db", "database file to create or extend")
	relName := flag.String("relation", "objects", "relation name")
	picName := flag.String("picture", "map", "picture name")
	method := flag.String("method", "nn", "packing method: nn, lowx, str, hilbert, nn-area")
	labelCol := flag.String("label", "", "column used as the display label (default: first string column)")
	demo := flag.Bool("demo", false, "load the built-in US datasets instead of a CSV")
	frame := flag.Float64("frame", 1000, "picture frame side length")
	flag.Parse()

	db, err := pictdb.Open(*dbPath, 256)
	if err != nil {
		fail("open: %v", err)
	}
	defer db.Close()

	if *demo {
		loadDemo(db)
	} else {
		if flag.NArg() != 1 {
			fail("usage: mapload [flags] points.csv (or -demo)")
		}
		loadCSV(db, flag.Arg(0), *relName, *picName, *labelCol, *method, *frame)
	}

	if err := db.Checkpoint(); err != nil {
		fail("checkpoint: %v", err)
	}
	fmt.Printf("checkpointed %s (%d pages)\n", *dbPath, db.NumPages())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mapload: "+format+"\n", args...)
	os.Exit(1)
}

func packMethod(name string) pictdb.PackMethod {
	switch name {
	case "lowx":
		return pictdb.PackLowX
	case "str":
		return pictdb.PackSTR
	case "hilbert":
		return pictdb.PackHilbert
	case "nn-area":
		return pictdb.PackNNArea
	default:
		return pictdb.PackNN
	}
}

// loadCSV builds one relation + picture from a CSV of point features.
func loadCSV(db *pictdb.Database, path, relName, picName, labelCol, method string, frame float64) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		fail("reading header: %v", err)
	}
	xi, yi := -1, -1
	for i, h := range header {
		switch strings.ToLower(strings.TrimSpace(h)) {
		case "x":
			xi = i
		case "y":
			yi = i
		}
	}
	if xi < 0 || yi < 0 {
		fail("header must contain x and y columns; got %v", header)
	}

	// Read all rows first to infer column types.
	var rows [][]string
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail("reading csv: %v", err)
		}
		rows = append(rows, rec)
	}
	if len(rows) == 0 {
		fail("no data rows in %s", path)
	}

	type colKind int
	const (
		kInt, kFloat, kString colKind = 0, 1, 2
	)
	kinds := make([]colKind, len(header))
	for ci := range header {
		if ci == xi || ci == yi {
			continue
		}
		kind := kInt
		for _, row := range rows {
			v := strings.TrimSpace(row[ci])
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				continue
			}
			if _, err := strconv.ParseFloat(v, 64); err == nil {
				if kind == kInt {
					kind = kFloat
				}
				continue
			}
			kind = kString
			break
		}
		kinds[ci] = kind
	}

	// Build the schema: data columns in header order, then loc.
	var specs []string
	firstString := ""
	for ci, h := range header {
		if ci == xi || ci == yi {
			continue
		}
		name := strings.ToLower(strings.TrimSpace(h))
		switch kinds[ci] {
		case kInt:
			specs = append(specs, name+":int")
		case kFloat:
			specs = append(specs, name+":float")
		default:
			specs = append(specs, name+":string")
			if firstString == "" {
				firstString = name
			}
		}
	}
	specs = append(specs, "loc:loc")
	if labelCol == "" {
		labelCol = firstString
	}

	schema, err := pictdb.NewSchema(specs...)
	if err != nil {
		fail("schema: %v", err)
	}
	pic, err := db.CreatePicture(picName, pictdb.R(0, 0, frame, frame))
	if err != nil {
		fail("%v", err)
	}
	rel, err := db.CreateRelation(relName, schema)
	if err != nil {
		fail("%v", err)
	}

	for ln, row := range rows {
		x, err := strconv.ParseFloat(strings.TrimSpace(row[xi]), 64)
		if err != nil {
			fail("row %d: bad x %q", ln+2, row[xi])
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(row[yi]), 64)
		if err != nil {
			fail("row %d: bad y %q", ln+2, row[yi])
		}
		label := ""
		tuple := make(pictdb.Tuple, 0, len(specs))
		for ci := range header {
			if ci == xi || ci == yi {
				continue
			}
			v := strings.TrimSpace(row[ci])
			switch kinds[ci] {
			case kInt:
				n, _ := strconv.ParseInt(v, 10, 64)
				tuple = append(tuple, pictdb.I(n))
			case kFloat:
				fv, _ := strconv.ParseFloat(v, 64)
				tuple = append(tuple, pictdb.F(fv))
			default:
				tuple = append(tuple, pictdb.S(v))
				if strings.ToLower(strings.TrimSpace(header[ci])) == labelCol {
					label = v
				}
			}
		}
		oid := pic.AddPoint(label, pictdb.Pt(x, y))
		tuple = append(tuple, pictdb.L(picName, oid))
		if _, err := rel.Insert(tuple); err != nil {
			fail("row %d: %v", ln+2, err)
		}
	}
	if err := rel.AttachPicture(pic, pictdb.PackOptions{Method: packMethod(method)}); err != nil {
		fail("%v", err)
	}
	fmt.Printf("loaded %d rows into %s on %s (packed: %s)\n", len(rows), relName, picName, method)
}

// loadDemo reproduces BuildUSDatabase's content into the open file.
func loadDemo(db *pictdb.Database) {
	pic, err := db.CreatePicture("us-map", pictdb.R(0, 0, 1000, 1000))
	if err != nil {
		fail("%v", err)
	}
	rel, err := db.CreateRelation("cities", pictdb.MustSchema(
		"city:string", "state:string", "population:int", "loc:loc"))
	if err != nil {
		fail("%v", err)
	}
	for _, c := range workload.USCities() {
		oid := pic.AddPoint(c.Name, c.Pos)
		if _, err := rel.Insert(pictdb.Tuple{
			pictdb.S(c.Name), pictdb.S(c.State), pictdb.I(c.Population), pictdb.L("us-map", oid),
		}); err != nil {
			fail("%v", err)
		}
	}
	if err := rel.CreateIndex("population"); err != nil {
		fail("%v", err)
	}
	if err := rel.AttachPicture(pic, pictdb.PackOptions{Method: pictdb.PackNN}); err != nil {
		fail("%v", err)
	}
	fmt.Printf("loaded demo: %d cities on us-map\n", rel.Len())
}
