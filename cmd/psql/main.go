// Command psql is an interactive shell for PSQL, the paper's pictorial
// query language, running against the built-in US map database
// (cities, states, time-zones, lakes, highways — §2.1 of the paper).
//
// Queries end with a semicolon or a blank line. The alphanumeric
// result prints as a table; when the result contains loc values, the
// matching objects are also drawn on an ASCII rendering of their
// picture — the paper's two output devices.
//
//	$ psql
//	psql> select city, state, population, loc
//	      from cities on us-map
//	      at loc covered-by {800±200, 500±500}
//	      where population > 450000;
//
// Meta commands: \tables, \pictures, \help, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	pictdb "repro"
)

func main() {
	command := flag.String("c", "", "run a single PSQL query and exit")
	showPlan := flag.Bool("plan", false, "print the executor's access-path plan with each result")
	dbPath := flag.String("db", "", "open a persisted database file (default: the built-in US map demo)")
	flag.Parse()

	var db *pictdb.Database
	var err error
	if *dbPath != "" {
		db, err = pictdb.Open(*dbPath, 256)
	} else {
		db, err = pictdb.BuildUSDatabase()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "psql: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	plan = *showPlan
	if *command != "" {
		if !execute(db, strings.TrimSuffix(strings.TrimSpace(*command), ";")) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("PSQL — pictorial query shell over the US map database.")
	fmt.Println(`Relations: cities, states, time-zones, lakes, highways. Type \help for help.`)

	in := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	prompt := "psql> "
	for {
		fmt.Print(prompt)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		trimmed := strings.TrimSpace(line)

		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			if meta(db, trimmed) {
				return
			}
			continue
		}

		buf.WriteString(line)
		buf.WriteByte('\n')
		done := strings.HasSuffix(trimmed, ";") || (trimmed == "" && buf.Len() > 1)
		if !done {
			prompt = "  ... "
			continue
		}
		prompt = "psql> "
		src := strings.TrimSuffix(strings.TrimSpace(buf.String()), ";")
		buf.Reset()
		if src == "" {
			continue
		}
		execute(db, src)
	}
}

// meta handles backslash commands; it reports whether to exit.
func meta(db *pictdb.Database, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case `\quit`, `\q`:
		return true
	case `\tables`:
		fmt.Println("cities(city, state, population, loc)        on us-map")
		fmt.Println("states(state, population-density, loc)      on state-map")
		fmt.Println("time-zones(zone, hour-diff, loc)            on time-zone-map")
		fmt.Println("lakes(lake, area, loc)                      on lake-map")
		fmt.Println("highways(hwy-name, hwy-section, loc)        on highway-map")
	case `\pictures`:
		fmt.Println("us-map, state-map, time-zone-map, lake-map, highway-map — all on the [0,1000]^2 frame")
		fmt.Println("named locations: eastern-us, western-us")
	case `\help`, `\h`:
		fmt.Println("PSQL mapping:  select <targets> from <relations> [on <pictures>]")
		fmt.Println("               [at <area> <op> <area>] [where <qualification>]")
		fmt.Println("spatial ops:   covering, covered-by, overlapping, disjoined")
		fmt.Println("areas:         {cx±dx, cy±dy} (or +-), a loc column, a named location,")
		fmt.Println("               or a nested select whose result binds the window")
		fmt.Println("functions:     area(loc), length(loc), perimeter(loc), northest(loc),")
		fmt.Println("               centerx/centery(loc), distance(a,b), mbr(loc), label(loc), kind(loc)")
		fmt.Println("end a query with ';' or a blank line.")
		fmt.Println()
		fmt.Println("example:")
		fmt.Println("  select city, zone from cities, time-zones on us-map, time-zone-map")
		fmt.Println("  at cities.loc covered-by time-zones.loc;")
	default:
		fmt.Printf("unknown meta command %s (try \\help)\n", cmd)
	}
	return false
}

// plan toggles access-path output.
var plan bool

// execute runs one query, reporting success.
func execute(db *pictdb.Database, src string) bool {
	res, err := db.Query(src)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return false
	}
	fmt.Print(res.Format())
	fmt.Printf("(%d rows, %d R-tree nodes visited)\n", res.Len(), res.NodesVisited)
	if plan {
		for _, step := range res.Plan {
			fmt.Printf("plan: %s\n", step)
		}
	}

	// Graphical output: group locs by picture and render each.
	byPic := map[string]bool{}
	for _, loc := range res.Locs {
		byPic[loc.Picture] = true
	}
	for pic := range byPic {
		out, err := db.Render(res, pic, pictdb.R(0, 0, 1000, 1000))
		if err == nil && out != "" {
			fmt.Printf("\n%s:\n%s", pic, out)
		}
	}
	return true
}
