// Command psqlbench measures end-to-end PSQL execution on the built-in
// US database: the paper's §2.2 direct search, juxtaposition, and
// nested-mapping queries, plus the repeated point-in-window workload
// the statement cache and prepared-parameter path target. Each query
// runs through the naive reference executor, the planned executor with
// a cold-then-warm statement cache, and (for the window workload) the
// prepared path, so the report shows what planning, caching, and
// batched materialization each buy.
//
// With -latency the throughput table is replaced by a concurrent-load
// latency run: -clients goroutines issue the same queries through the
// planned executor and the per-operation p50/p95/p99 percentiles are
// reported per query, the tail-latency view the LSM write path is
// tuned against.
//
// With -shards N every relation is split across N Hilbert-range shard
// files and the same workloads run through the scatter-gather read
// path; results are row-identical to the unsharded run by construction.
//
// With -skew the repeated point-in-window cycle draws its window
// centers from a skewed distribution (same syntax as ingestbench), so
// a sharded run shows how hot-spot reads concentrate on one shard.
//
// Usage:
//
//	psqlbench [-iters n] [-windows n] [-seed s] [-json]
//	          [-latency] [-clients n] [-shards n] [-skew spec]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	pictdb "repro"
	"repro/internal/workload"
)

type result struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"`
	Iters     int     `json:"iters"`
	NsPerOp   float64 `json:"ns_per_op"`
	QPS       float64 `json:"queries_per_sec"`
	Rows      int     `json:"rows_last"`
	SpeedupVs float64 `json:"speedup_vs_naive,omitempty"`
}

type report struct {
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Iters      int               `json:"iters"`
	Shards     int               `json:"shards,omitempty"`
	Results    []result          `json:"results"`
	CacheStats pictdb.CacheStats `json:"cache_stats"`
}

// CacheStats re-export keeps the JSON shape stable even if the
// internal type moves.

func measure(name, mode string, iters int, run func() (*pictdb.Result, error)) (result, error) {
	// One warm-up execution (fills caches, faults pages in).
	res, err := run()
	if err != nil {
		return result{}, fmt.Errorf("%s/%s: %w", name, mode, err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if res, err = run(); err != nil {
			return result{}, fmt.Errorf("%s/%s: %w", name, mode, err)
		}
	}
	elapsed := time.Since(start)
	return result{
		Name:    name,
		Mode:    mode,
		Iters:   iters,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
		QPS:     float64(iters) / elapsed.Seconds(),
		Rows:    len(res.Rows),
	}, nil
}

// latencyResult is one row of the -latency report: percentile latency
// for a query under concurrent client load.
type latencyResult struct {
	Name    string                  `json:"name"`
	Clients int                     `json:"clients"`
	QPS     float64                 `json:"queries_per_sec"`
	Latency workload.LatencySummary `json:"latency"`
}

// runLatencyMode drives nclients goroutines through the planned
// executor, each issuing its share of iters executions of one query,
// and summarizes the merged per-operation latencies.
func runLatencyMode(db *pictdb.Database, queries []struct{ name, text string }, texts []string, nclients, iters int, jsonOut bool) {
	var out []latencyResult
	run := func(name string, op func(i int) error) {
		perClient := iters / nclients
		if perClient == 0 {
			perClient = 1
		}
		samples := make([][]time.Duration, nclients)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < nclients; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					if err := op(c*perClient + i); err != nil {
						fmt.Fprintf(os.Stderr, "psqlbench: %s: %v\n", name, err)
						os.Exit(1)
					}
					local = append(local, time.Since(t0))
				}
				samples[c] = local
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		var all []time.Duration
		for _, s := range samples {
			all = append(all, s...)
		}
		out = append(out, latencyResult{
			Name:    name,
			Clients: nclients,
			QPS:     float64(len(all)) / elapsed.Seconds(),
			Latency: workload.Summarize(all),
		})
	}

	for _, q := range queries {
		q := q
		// Warm the statement cache before measuring.
		if _, err := db.Query(q.text); err != nil {
			fmt.Fprintf(os.Stderr, "psqlbench: %s: %v\n", q.name, err)
			os.Exit(1)
		}
		run(q.name, func(int) error { _, err := db.Query(q.text); return err })
	}
	run("repeatedWindow", func(i int) error { _, err := db.Query(texts[i%len(texts)]); return err })

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "psqlbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-16s %8s %12s %10s %10s %10s %10s\n", "query", "clients", "queries/sec", "p50", "p95", "p99", "max")
	for _, r := range out {
		fmt.Printf("%-16s %8d %12.0f %10s %10s %10s %10s\n",
			r.Name, r.Clients, r.QPS, r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)
	}
}

func main() {
	iters := flag.Int("iters", 2000, "executions per query and mode")
	nwindows := flag.Int("windows", 64, "distinct windows in the repeated point-in-window cycle")
	seed := flag.Int64("seed", 1985, "window placement seed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the formatted table")
	latency := flag.Bool("latency", false, "measure p50/p95/p99 latency under concurrent client load instead of throughput")
	clients := flag.Int("clients", 4, "concurrent clients in -latency mode")
	shards := flag.Int("shards", 0, "split every relation across N Hilbert-range shards (0 = unsharded)")
	skewFlag := flag.String("skew", "", "window-center distribution for the repeated point-in-window workload: uniform, zipf:<s>, cluster:<k>:<stddev>, hot:<frac>:<range>")
	flag.Parse()

	skew, err := workload.ParseSkew(*skewFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psqlbench: %v\n", err)
		os.Exit(2)
	}

	var db *pictdb.Database
	if *shards > 0 {
		db, err = pictdb.BuildUSDatabaseSharded(*shards)
	} else {
		db, err = pictdb.BuildUSDatabase()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "psqlbench: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	queries := []struct{ name, text string }{
		{"directSearch", `
			select city, state, population, loc from cities on us-map
			at loc covered-by {800±200, 500±500} where population > 450_000`},
		{"juxtaposition", `
			select city, zone from cities, time-zones on us-map, time-zone-map
			at cities.loc covered-by time-zones.loc`},
		{"nestedMapping", `
			select lake, lakes.loc from lakes on lake-map
			at lakes.loc covered-by
			select states.loc from states on state-map
			at states.loc overlapping eastern-us`},
	}

	// Repeated point-in-window: the same mapping over a moving window.
	const tmpl = `
		select city, state, loc from cities on us-map
		at loc covered-by {%g±%g, %g±%g} where population > 450_000`
	type win struct{ cx, dx, cy, dy float64 }
	var wins []win
	var texts []string
	for _, w := range skew.Windows(*nwindows, 180, *seed) {
		c := w.Center()
		v := win{c.X, (w.Max.X - w.Min.X) / 2, c.Y, (w.Max.Y - w.Min.Y) / 2}
		wins = append(wins, v)
		texts = append(texts, fmt.Sprintf(tmpl, v.cx, v.dx, v.cy, v.dy))
	}

	if *latency {
		runLatencyMode(db, queries, texts, *clients, *iters, *jsonOut)
		return
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Iters: *iters, Shards: *shards}
	add := func(r result, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "psqlbench: %v\n", err)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, r)
	}

	for _, q := range queries {
		q := q
		add(measure(q.name, "naive", *iters, func() (*pictdb.Result, error) { return db.QueryNaive(q.text) }))
		add(measure(q.name, "cached", *iters, func() (*pictdb.Result, error) { return db.Query(q.text) }))
	}

	var i int
	add(measure("repeatedWindow", "naive", *iters, func() (*pictdb.Result, error) {
		i++
		return db.QueryNaive(texts[i%len(texts)])
	}))
	i = 0
	add(measure("repeatedWindow", "cached", *iters, func() (*pictdb.Result, error) {
		i++
		return db.Query(texts[i%len(texts)])
	}))
	prep, err := db.Prepare(fmt.Sprintf(tmpl, 800.0, 200.0, 500.0, 500.0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "psqlbench: prepare: %v\n", err)
		os.Exit(1)
	}
	i = 0
	add(measure("repeatedWindow", "prepared", *iters, func() (*pictdb.Result, error) {
		i++
		w := wins[i%len(wins)]
		return prep.ExecWindow(w.cx, w.dx, w.cy, w.dy)
	}))
	rep.CacheStats = db.CacheStats()

	// Fill in speedups against each query's naive mode.
	naive := map[string]float64{}
	for _, r := range rep.Results {
		if r.Mode == "naive" {
			naive[r.Name] = r.NsPerOp
		}
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if base, ok := naive[r.Name]; ok && r.Mode != "naive" && r.NsPerOp > 0 {
			r.SpeedupVs = base / r.NsPerOp
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "psqlbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("%-16s %-9s %10s %12s %8s %9s\n", "query", "mode", "ns/op", "queries/sec", "rows", "speedup")
	for _, r := range rep.Results {
		sp := ""
		if r.SpeedupVs > 0 {
			sp = fmt.Sprintf("%8.2fx", r.SpeedupVs)
		}
		fmt.Printf("%-16s %-9s %10.0f %12.0f %8d %9s\n", r.Name, r.Mode, r.NsPerOp, r.QPS, r.Rows, sp)
	}
	s := rep.CacheStats
	fmt.Printf("cache: %d hits, %d misses, %d entries, %d invalidations\n",
		s.Hits, s.Misses, s.Entries, s.Invalidations)
}
