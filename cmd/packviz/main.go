// Command packviz visualizes how an R-tree organizes space: it builds
// a tree over a workload with either dynamic INSERT or one of the
// packing methods and draws each level's node MBRs as ASCII boxes —
// the pictures behind the paper's Figures 3.3, 3.4, 3.7 and 3.8.
//
//	packviz -n 64 -build pack-nn -level 1
//	packviz -n 200 -build insert -workload clustered -level all
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/rtree"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 64, "number of points")
	seed := flag.Int64("seed", 1985, "random seed")
	build := flag.String("build", "pack-nn", "insert, insert-quadratic, pack-nn, pack-lowx, pack-str, pack-hilbert, pack-rotate")
	wl := flag.String("workload", "uniform", "uniform, clustered, skewed, cities")
	level := flag.String("level", "leaf", "tree level to draw: 0 (root), 1, ..., leaf, all")
	width := flag.Int("width", 78, "drawing width in characters")
	height := flag.Int("height", 32, "drawing height in characters")
	flag.Parse()

	var pts []geom.Point
	switch *wl {
	case "uniform":
		pts = workload.UniformPoints(*n, *seed)
	case "clustered":
		pts = workload.ClusteredPoints(*n, 6, 40, *seed)
	case "skewed":
		pts = workload.SkewedPoints(*n, *seed)
	case "cities":
		for _, c := range workload.USCities() {
			pts = append(pts, c.Pos)
		}
	default:
		fmt.Fprintf(os.Stderr, "packviz: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	items := workload.PointItems(pts)
	params := rtree.Params{Max: 4, Min: 2, Split: rtree.SplitLinear}

	var t *rtree.Tree
	switch *build {
	case "insert":
		t = rtree.New(params)
		for _, it := range items {
			t.InsertItem(it)
		}
	case "insert-quadratic":
		params.Split = rtree.SplitQuadratic
		t = rtree.New(params)
		for _, it := range items {
			t.InsertItem(it)
		}
	case "pack-nn", "pack-lowx", "pack-str", "pack-hilbert", "pack-rotate":
		m := map[string]pack.Method{
			"pack-nn": pack.MethodNN, "pack-lowx": pack.MethodLowX,
			"pack-str": pack.MethodSTR, "pack-hilbert": pack.MethodHilbert,
			"pack-rotate": pack.MethodRotate,
		}[*build]
		t = pack.Tree(params, items, pack.Options{Method: m})
	default:
		fmt.Fprintf(os.Stderr, "packviz: unknown build %q\n", *build)
		os.Exit(2)
	}

	m := t.ComputeMetrics()
	fmt.Printf("%s over %d %s points: depth=%d nodes=%d leaves=%d\n",
		*build, len(items), *wl, m.Depth, m.Nodes, m.Leaves)
	fmt.Printf("coverage=%.0f overlap=%.0f dead-space=%.0f\n\n", m.Coverage, m.Overlap, m.DeadSpace)

	levels := t.LevelRects()
	draw := func(li int) {
		if li < 0 || li >= len(levels) {
			fmt.Fprintf(os.Stderr, "packviz: no level %d (tree has %d)\n", li, len(levels))
			os.Exit(2)
		}
		fmt.Printf("level %d: %d node MBR(s)\n", li, len(levels[li]))
		fmt.Print(drawBoxes(levels[li], pts, *width, *height))
		fmt.Println()
	}
	switch *level {
	case "all":
		for li := range levels {
			draw(li)
		}
	case "leaf":
		draw(len(levels) - 1)
	default:
		var li int
		if _, err := fmt.Sscanf(*level, "%d", &li); err != nil {
			fmt.Fprintf(os.Stderr, "packviz: bad level %q\n", *level)
			os.Exit(2)
		}
		draw(li)
	}
}

// drawBoxes renders rectangles and points on a character grid.
func drawBoxes(rects []geom.Rect, pts []geom.Point, w, h int) string {
	frame := workload.Frame
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	sx := float64(w-1) / math.Max(frame.Width(), 1)
	sy := float64(h-1) / math.Max(frame.Height(), 1)
	cell := func(p geom.Point) (int, int) {
		return int((p.X - frame.Min.X) * sx), h - 1 - int((p.Y-frame.Min.Y)*sy)
	}
	set := func(cx, cy int, ch byte) {
		if cx >= 0 && cx < w && cy >= 0 && cy < h && (grid[cy][cx] == ' ' || ch == '*') {
			grid[cy][cx] = ch
		}
	}
	for _, r := range rects {
		x0, y0 := cell(r.Min)
		x1, y1 := cell(r.Max)
		if y1 > y0 {
			y0, y1 = y1, y0
		}
		for x := x0; x <= x1; x++ {
			set(x, y0, '-')
			set(x, y1, '-')
		}
		for y := y1; y <= y0; y++ {
			set(x0, y, '|')
			set(x1, y, '|')
		}
		set(x0, y0, '+')
		set(x1, y0, '+')
		set(x0, y1, '+')
		set(x1, y1, '+')
	}
	for _, p := range pts {
		cx, cy := cell(p)
		set(cx, cy, '*')
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
