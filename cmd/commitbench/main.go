// Command commitbench measures durable-commit throughput under
// concurrent writers, comparing the two disciplines the pager offers:
//
//   - serial: the ordered-commit baseline — every commit flushes its
//     dirty pages, fsyncs the page file, writes the header slot, and
//     fsyncs again. Commits are fully serialized; N writers queue
//     behind one another and each pays the full sync cost.
//   - group: the write-ahead-log path — concurrent committers enqueue,
//     one leader appends the whole batch's frames to the log and
//     fsyncs once, and every member is acknowledged together. The
//     fsync cost is amortized across the batch.
//
// Each writer owns one page, bumps a counter in it, and commits, so
// the workload is pure commit overhead with no page contention. The
// report gives commits/sec and client-observed commit latency
// percentiles at 1, 4, and 16 writers for both modes, plus the
// headline ratio: group commit at 16 writers over the serial
// single-writer baseline.
//
// Usage:
//
//	commitbench [-commits n] [-pool n] [-dir d] [-json] [-out file]
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/pager"
	"repro/internal/workload"
)

var writerCounts = []int{1, 4, 16}

type result struct {
	Mode          string                  `json:"mode"`
	Writers       int                     `json:"writers"`
	Commits       int                     `json:"commits"`
	Seconds       float64                 `json:"seconds"`
	CommitsPerSec float64                 `json:"commits_per_sec"`
	Batches       uint64                  `json:"wal_batches,omitempty"`
	Syncs         uint64                  `json:"wal_syncs,omitempty"`
	Latency       workload.LatencySummary `json:"commit_latency"`
}

type report struct {
	GOOS             string   `json:"goos"`
	GOARCH           string   `json:"goarch"`
	CommitsPerWriter int      `json:"commits_per_writer"`
	Pool             int      `json:"pool_pages"`
	Serial           []result `json:"serial"`
	Group            []result `json:"group"`
	// SpeedupAt16 is group commit at 16 writers over the serial
	// single-writer baseline — the issue's headline number.
	SpeedupAt16 float64 `json:"group16_over_serial1"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("commitbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	commits := fs.Int("commits", 300, "commits per writer per configuration")
	pool := fs.Int("pool", 256, "buffer pool size in pages")
	dir := fs.String("dir", "", "directory for the benchmark files (default: a temp dir)")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON on stdout")
	outPath := fs.String("out", "", "also write the JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	workDir := *dir
	if workDir == "" {
		td, err := os.MkdirTemp("", "commitbench")
		if err != nil {
			fmt.Fprintf(stderr, "commitbench: %v\n", err)
			return 1
		}
		defer os.RemoveAll(td)
		workDir = td
	}

	rep := report{
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		CommitsPerWriter: *commits,
		Pool:             *pool,
	}
	for _, mode := range []string{"serial", "group"} {
		for _, writers := range writerCounts {
			path := filepath.Join(workDir, fmt.Sprintf("%s-%d.db", mode, writers))
			res, err := runConfig(mode, writers, *commits, *pool, path)
			if err != nil {
				fmt.Fprintf(stderr, "commitbench: %s/%d writers: %v\n", mode, writers, err)
				return 1
			}
			if mode == "serial" {
				rep.Serial = append(rep.Serial, res)
			} else {
				rep.Group = append(rep.Group, res)
			}
			if !*jsonOut {
				fmt.Fprintf(stdout, "%-6s %2d writer(s): %9.0f commits/sec  p50 %8s  p99 %8s",
					mode, writers, res.CommitsPerSec, res.Latency.P50, res.Latency.P99)
				if mode == "group" {
					fmt.Fprintf(stdout, "  (%d commits in %d batches, %d syncs)",
						res.Commits, res.Batches, res.Syncs)
				}
				fmt.Fprintln(stdout)
			}
		}
	}
	rep.SpeedupAt16 = rep.Group[len(rep.Group)-1].CommitsPerSec / rep.Serial[0].CommitsPerSec
	if !*jsonOut {
		fmt.Fprintf(stdout, "group@16 over serial@1: %.2fx\n", rep.SpeedupAt16)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "commitbench: %v\n", err)
		return 1
	}
	if *jsonOut {
		fmt.Fprintln(stdout, string(blob))
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "commitbench: %v\n", err)
			return 1
		}
	}
	return 0
}

// runConfig measures one (mode, writers) cell on a fresh file-backed
// pager. Every writer owns a distinct page; a commit is one counter
// bump made durable.
func runConfig(mode string, writers, commits, pool int, path string) (result, error) {
	p, err := pager.Open(path, pool)
	if err != nil {
		return result{}, err
	}
	defer p.Close()
	if mode == "group" {
		if err := p.EnableWAL(); err != nil {
			return result{}, err
		}
	}

	// One page per writer, committed before timing starts.
	pages := make([]pager.PageID, writers)
	for i := range pages {
		pg, err := p.Allocate()
		if err != nil {
			return result{}, err
		}
		pages[i] = pg.ID
		pg.MarkDirty()
		p.Unpin(pg)
	}
	if err := p.Commit(); err != nil {
		return result{}, err
	}
	statsBefore := p.WALStats()

	// In serial mode commits are mutually exclusive by discipline: the
	// ordered-commit protocol flushes ALL dirty pages, so overlapping
	// mutations from other writers must not be in flight. The bench
	// serializes mutate+commit with one lock, which is exactly the
	// schedule the baseline forces on clients.
	var serialMu sync.Mutex

	latencies := make([][]time.Duration, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samples := make([]time.Duration, 0, commits)
			id := pages[w]
			for i := 0; i < commits; i++ {
				t0 := time.Now()
				var err error
				if mode == "serial" {
					serialMu.Lock()
					err = bumpAndCommit(p, id, uint64(i+1))
					serialMu.Unlock()
				} else {
					p.BeginWrite()
					err = bump(p, id, uint64(i+1))
					p.EndWrite()
					if err == nil {
						err = p.Commit()
					}
				}
				if err != nil {
					errs[w] = err
					return
				}
				samples = append(samples, time.Since(t0))
			}
			latencies[w] = samples
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return result{}, err
		}
	}
	statsAfter := p.WALStats()

	all := make([]time.Duration, 0, writers*commits)
	for _, s := range latencies {
		all = append(all, s...)
	}
	total := writers * commits
	res := result{
		Mode:          mode,
		Writers:       writers,
		Commits:       total,
		Seconds:       elapsed.Seconds(),
		CommitsPerSec: float64(total) / elapsed.Seconds(),
		Latency:       workload.Summarize(all),
	}
	if mode == "group" {
		res.Batches = statsAfter.Batches - statsBefore.Batches
		res.Syncs = statsAfter.Syncs - statsBefore.Syncs
	}
	return res, nil
}

func bump(p *pager.Pager, id pager.PageID, v uint64) error {
	pg, err := p.Fetch(id)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(pg.Data[0:8], v)
	pg.MarkDirty()
	p.Unpin(pg)
	return nil
}

func bumpAndCommit(p *pager.Pager, id pager.PageID, v uint64) error {
	if err := bump(p, id, v); err != nil {
		return err
	}
	return p.Commit()
}
