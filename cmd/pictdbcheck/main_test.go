package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pictdb "repro"
	"repro/internal/pager"
)

// buildDB creates a small persisted database and returns its path.
func buildDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "check.db")
	db, err := pictdb.Open(path, 64)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rel, err := db.CreateRelation("cities", pictdb.MustSchema("city:string", "pop:int"))
	if err != nil {
		t.Fatalf("CreateRelation: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, err := rel.Insert(pictdb.Tuple{pictdb.S("c"), pictdb.I(int64(i))}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Checkpoint twice: the second frees the first snapshot page, so
	// the file has at least one free-list page.
	for i := 0; i < 2; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// corruptPage XORs one payload byte of page id so its CRC-32C trailer
// no longer matches.
func corruptPage(t *testing.T, path string, id pager.PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	off := int64(id)*pager.PageSize + 100
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func TestCheckHealthy(t *testing.T) {
	path := buildDB(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on healthy file; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("expected OK summary, got %q", out.String())
	}
}

// TestCheckCorruptHeapPage corrupts a live heap page. The catalog load
// walks every heap page, so Open itself fails with a typed checksum
// error — the checker exits non-zero and says why.
func TestCheckCorruptHeapPage(t *testing.T) {
	path := buildDB(t)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	corruptPage(t, path, pager.PageID(st.Size()/pager.PageSize-1))

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on corrupt file (want 1); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "checksum") {
		t.Fatalf("expected checksum error on stderr, got %q", errb.String())
	}
}

// TestCheckCorruptFreePage corrupts a free-list page — one the catalog
// load never fetches, so the database opens and the verification pass
// produces the per-page problem listing and degrades to read-only.
func TestCheckCorruptFreePage(t *testing.T) {
	path := buildDB(t)
	p, err := pager.Open(path, 16)
	if err != nil {
		t.Fatalf("pager.Open: %v", err)
	}
	free, err := p.FreePages()
	if err != nil {
		t.Fatalf("FreePages: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("pager.Close: %v", err)
	}
	if len(free) == 0 {
		t.Fatal("expected at least one free page after double checkpoint")
	}
	corruptPage(t, path, free[0])

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on corrupt file (want 1); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "problem") {
		t.Fatalf("expected problem listing, got %q", out.String())
	}
	if !strings.Contains(out.String(), fmt.Sprintf("page %d", free[0])) {
		t.Fatalf("expected problem anchored to page %d, got %q", free[0], out.String())
	}
}

func TestCheckMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "absent.db")}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on missing file (want 1)", code)
	}
}

func TestCheckUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d with no args (want 2)", code)
	}
}

// snapshotLiveDB builds a database and copies both halves — page file
// and WAL sidecar — while it is still open, after two checkpoints.
// Group commit syncs the log before acknowledging, so the copied pair
// is a crash-consistent image whose WAL still holds committed frames.
func snapshotLiveDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	orig := filepath.Join(dir, "live.db")
	db, err := pictdb.Open(orig, 64)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rel, err := db.CreateRelation("cities", pictdb.MustSchema("city:string", "pop:int"))
	if err != nil {
		t.Fatalf("CreateRelation: %v", err)
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 50; i++ {
			if _, err := rel.Insert(pictdb.Tuple{pictdb.S("c"), pictdb.I(int64(i))}); err != nil {
				t.Fatalf("Insert: %v", err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	mainBytes, err := os.ReadFile(orig)
	if err != nil {
		t.Fatalf("ReadFile main: %v", err)
	}
	walBytes, err := os.ReadFile(pager.WALPath(orig))
	if err != nil {
		t.Fatalf("ReadFile wal: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cp := filepath.Join(dir, "copy.db")
	if err := os.WriteFile(cp, mainBytes, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := os.WriteFile(pager.WALPath(cp), walBytes, 0o644); err != nil {
		t.Fatalf("WriteFile wal: %v", err)
	}
	return cp
}

// TestCheckReportsWALState: a healthy file with a populated log gets a
// wal summary line — record count, commits, last durable generation.
func TestCheckReportsWALState(t *testing.T) {
	path := snapshotLiveDB(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on healthy pair; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "wal:") || !strings.Contains(out.String(), "commit(s)") {
		t.Fatalf("expected wal summary line, got %q", out.String())
	}
	if !strings.Contains(out.String(), "last durable generation") {
		t.Fatalf("expected durable generation in wal line, got %q", out.String())
	}
}

// TestCheckToleratesTornWALTail: garbage after the last commit is a
// crash artifact recovery discards — the checker reports it and still
// exits 0.
func TestCheckToleratesTornWALTail(t *testing.T) {
	path := snapshotLiveDB(t)
	f, err := os.OpenFile(pager.WALPath(path), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0xAB}, 100)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f.Close()

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on torn tail (want 0); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "torn tail") {
		t.Fatalf("expected torn-tail note, got %q", out.String())
	}
}

// TestCheckRejectsCorruptWALRecord: a damaged record BEFORE a later
// valid commit means acknowledged data is unrecoverable — the checker
// must refuse before opening (opening would replay a silent prefix).
func TestCheckRejectsCorruptWALRecord(t *testing.T) {
	path := snapshotLiveDB(t)
	f, err := os.OpenFile(pager.WALPath(path), os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	// One byte inside the first frame's page payload (frames start
	// after the 16-byte file header and a 24-byte frame header).
	off := int64(16 + 24 + 10)
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	f.Close()

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on corrupt wal record (want 1); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "CORRUPT") {
		t.Fatalf("expected CORRUPT wal line, got %q", out.String())
	}
	if !strings.Contains(errb.String(), "write-ahead log is corrupt") {
		t.Fatalf("expected refusal on stderr, got %q", errb.String())
	}
}

// buildShardedDB persists a database whose relation is sharded across
// three sidecar page files and returns the main path.
func buildShardedDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "check.db")
	db, err := pictdb.Open(path, 64)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rel, err := db.CreateShardedRelation("cities", pictdb.MustSchema("city:string", "pop:int"), 3)
	if err != nil {
		t.Fatalf("CreateShardedRelation: %v", err)
	}
	for i := 0; i < 300; i++ {
		if _, err := rel.Insert(pictdb.Tuple{pictdb.S("c"), pictdb.I(int64(i))}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// TestCheckShardedParallel verifies a healthy sharded database checks
// clean with the per-shard verification fanned out over workers, and
// that the shard page files were actually found on disk.
func TestCheckShardedParallel(t *testing.T) {
	path := buildShardedDB(t)
	for s := 0; s < 3; s++ {
		if _, err := os.Stat(pictdb.ShardPath(path, "cities", s)); err != nil {
			t.Fatalf("shard file missing: %v", err)
		}
	}
	for _, par := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-parallel", par, path}, &out, &errb); code != 0 {
			t.Fatalf("-parallel %s: exit %d; stdout=%q stderr=%q", par, code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "OK") {
			t.Fatalf("-parallel %s: expected OK summary, got %q", par, out.String())
		}
	}
}

// TestCheckShardBalanceReport: a sharded database gets one balance
// line per sharded relation, with per-shard tuple counts and key
// ranges under -v.
func TestCheckShardBalanceReport(t *testing.T) {
	path := buildShardedDB(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "cities: 3 shard(s), imbalance") {
		t.Fatalf("expected shard balance line, got %q", out.String())
	}
	if strings.Contains(out.String(), "hilbert keys") {
		t.Fatalf("per-shard detail should need -v, got %q", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-v", path}, &out, &errb); code != 0 {
		t.Fatalf("-v: exit %d; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	for s := 0; s < 3; s++ {
		if !strings.Contains(out.String(), fmt.Sprintf("s%d:", s)) {
			t.Fatalf("-v: expected shard %d detail, got %q", s, out.String())
		}
	}
	if !strings.Contains(out.String(), "hilbert keys") {
		t.Fatalf("-v: expected key ranges, got %q", out.String())
	}
}

// TestCheckFlagsOrphanShardFile: a shard page file no catalog relation
// references — the abandoned target of an interrupted split — is
// flagged, and the database still checks clean.
func TestCheckFlagsOrphanShardFile(t *testing.T) {
	path := buildShardedDB(t)
	orphan := pictdb.ShardPath(path, "cities", 9)
	src, err := os.ReadFile(pictdb.ShardPath(path, "cities", 0))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(orphan, src, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d with orphan (want 0); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), orphan) || !strings.Contains(out.String(), "orphan shard file") {
		t.Fatalf("expected orphan flag for %s, got %q", orphan, out.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("expected OK summary alongside orphan note, got %q", out.String())
	}
}

// TestCheckShardedCorruptShard flips a byte in one shard's page file:
// the checker must exit non-zero and name a checksum failure, at any
// parallelism.
func TestCheckShardedCorruptShard(t *testing.T) {
	path := buildShardedDB(t)
	sp := pictdb.ShardPath(path, "cities", 1)
	st, err := os.Stat(sp)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	corruptPage(t, sp, pager.PageID(st.Size()/pager.PageSize-1))

	for _, par := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-parallel", par, path}, &out, &errb); code != 1 {
			t.Fatalf("-parallel %s: exit %d on corrupt shard (want 1); stdout=%q stderr=%q",
				par, code, out.String(), errb.String())
		}
		combined := out.String() + errb.String()
		if !strings.Contains(combined, "checksum") {
			t.Fatalf("-parallel %s: expected checksum failure, got %q", par, combined)
		}
	}
}
