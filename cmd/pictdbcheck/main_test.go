package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	pictdb "repro"
	"repro/internal/pager"
)

// buildDB creates a small persisted database and returns its path.
func buildDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "check.db")
	db, err := pictdb.Open(path, 64)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rel, err := db.CreateRelation("cities", pictdb.MustSchema("city:string", "pop:int"))
	if err != nil {
		t.Fatalf("CreateRelation: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, err := rel.Insert(pictdb.Tuple{pictdb.S("c"), pictdb.I(int64(i))}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	// Checkpoint twice: the second frees the first snapshot page, so
	// the file has at least one free-list page.
	for i := 0; i < 2; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// corruptPage XORs one payload byte of page id so its CRC-32C trailer
// no longer matches.
func corruptPage(t *testing.T, path string, id pager.PageID) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	off := int64(id)*pager.PageSize + 100
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
}

func TestCheckHealthy(t *testing.T) {
	path := buildDB(t)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on healthy file; stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "OK") {
		t.Fatalf("expected OK summary, got %q", out.String())
	}
}

// TestCheckCorruptHeapPage corrupts a live heap page. The catalog load
// walks every heap page, so Open itself fails with a typed checksum
// error — the checker exits non-zero and says why.
func TestCheckCorruptHeapPage(t *testing.T) {
	path := buildDB(t)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	corruptPage(t, path, pager.PageID(st.Size()/pager.PageSize-1))

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on corrupt file (want 1); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "checksum") {
		t.Fatalf("expected checksum error on stderr, got %q", errb.String())
	}
}

// TestCheckCorruptFreePage corrupts a free-list page — one the catalog
// load never fetches, so the database opens and the verification pass
// produces the per-page problem listing and degrades to read-only.
func TestCheckCorruptFreePage(t *testing.T) {
	path := buildDB(t)
	p, err := pager.Open(path, 16)
	if err != nil {
		t.Fatalf("pager.Open: %v", err)
	}
	free, err := p.FreePages()
	if err != nil {
		t.Fatalf("FreePages: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("pager.Close: %v", err)
	}
	if len(free) == 0 {
		t.Fatal("expected at least one free page after double checkpoint")
	}
	corruptPage(t, path, free[0])

	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on corrupt file (want 1); stdout=%q stderr=%q", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "problem") {
		t.Fatalf("expected problem listing, got %q", out.String())
	}
	if !strings.Contains(out.String(), fmt.Sprintf("page %d", free[0])) {
		t.Fatalf("expected problem anchored to page %d, got %q", free[0], out.String())
	}
}

func TestCheckMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "absent.db")}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on missing file (want 1)", code)
	}
}

func TestCheckUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit %d with no args (want 2)", code)
	}
}
