// Command pictdbcheck verifies a pictdb page file: page checksums,
// free-list structure, catalog superblock, and every relation heap,
// B-tree, and spatial index. It is the operator-facing front end of
// Database.Check.
//
//	$ pictdbcheck us.db
//	us.db: 412 pages, 3 free, 5 relations, 0 leaked: OK
//
// Sharded relations keep their tuples in sidecar page files
// (file.db.<relation>.s<N>), each with its own write-ahead log; the
// checker inspects every shard WAL before opening and verifies every
// shard file. With -parallel N the per-shard verification fans out over
// N workers — the report is identical at any parallelism. Each sharded
// relation gets a balance line (shard count and imbalance factor, with
// per-shard tuple counts and Hilbert key ranges under -v), and shard
// page files no catalog relation references — the abandoned target of
// an interrupted split — are flagged as orphans.
//
// Exit status is 0 for a healthy file, 1 when verification finds
// problems or the file cannot be opened, 2 for usage errors. Each
// problem prints as one line with the implicated page, the component
// that failed, and the underlying typed error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	pictdb "repro"
	"repro/internal/pager"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pictdbcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pool := fs.Int("pool", 256, "buffer pool size in pages")
	parallel := fs.Int("parallel", 1, "verification workers (shard files are checked concurrently)")
	verbose := fs.Bool("v", false, "print per-component summary even when healthy")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pictdbcheck [-pool N] [-parallel N] [-v] file.db")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)
	if *parallel < 1 {
		fmt.Fprintln(stderr, "pictdbcheck: -parallel must be at least 1")
		return 2
	}

	// Opening a pictdb file creates it when absent; a checker must not.
	if _, err := os.Stat(path); err != nil {
		fmt.Fprintf(stderr, "pictdbcheck: %v\n", err)
		return 1
	}

	// Inspect every write-ahead log sidecar before opening: opening runs
	// recovery, which replays and truncates the logs, destroying the
	// evidence a checker should report. A torn tail after the last
	// commit is a tolerated crash artifact; a corrupt record BEFORE a
	// later commit means acknowledged data is damaged, and the file
	// must not be opened (recovery would silently replay a prefix).
	// Sharded relations add one WAL per shard file, each independent.
	for _, wf := range append([]string{path}, shardFiles(path)...) {
		wal, err := pager.InspectWALFile(pager.WALPath(wf))
		if err != nil {
			fmt.Fprintf(stderr, "pictdbcheck: %s: %v\n", pager.WALPath(wf), err)
			return 1
		}
		walLine := describeWAL(wal)
		if !wal.OK() {
			fmt.Fprintf(stdout, "%s: wal: %s\n", wf, walLine)
			for _, p := range wal.Problems {
				fmt.Fprintf(stdout, "  %s\n", p)
			}
			fmt.Fprintln(stderr, "pictdbcheck: write-ahead log is corrupt before its last commit; committed data would be lost on recovery")
			return 1
		}
		if *verbose || !wal.Empty {
			fmt.Fprintf(stdout, "%s: wal: %s\n", wf, walLine)
		}
	}

	db, report, err := pictdb.OpenCheckedParallel(path, *pool, *parallel)
	if err != nil {
		fmt.Fprintf(stderr, "pictdbcheck: %v\n", err)
		return 1
	}
	defer db.Close()

	for _, f := range shardReport(db, path, *verbose, stdout) {
		fmt.Fprintf(stdout, "%s: orphan shard file (no catalog reference; safe to remove)\n", f)
	}

	summary := fmt.Sprintf("%s: %d pages, %d free, %d relations, %d leaked",
		path, report.Pages, report.FreePages, report.Relations, report.Leaked)
	if report.OK() {
		fmt.Fprintf(stdout, "%s: OK\n", summary)
		if *verbose {
			fmt.Fprintln(stdout, "all page checksums, free-list links, and index invariants verified")
		}
		return 0
	}
	fmt.Fprintf(stdout, "%s: %d problem(s)\n", summary, len(report.Problems))
	for _, p := range report.Problems {
		fmt.Fprintf(stdout, "  %s\n", p)
	}
	fmt.Fprintln(stderr, "pictdbcheck: database is corrupt; it was opened in read-only degraded mode")
	return 1
}

// shardReport prints one balance line per sharded relation — shard
// count and imbalance factor (largest shard over the mean), with the
// per-shard tuple counts and Hilbert key ranges under -v — and returns
// any orphan sidecar files: shard page files on disk that no catalog
// relation references. Orphans are typically the abandoned target of
// an interrupted split (recovery keeps the source authoritative);
// they hold no committed data and are safe to remove.
func shardReport(db *pictdb.Database, path string, verbose bool, stdout io.Writer) []string {
	known := map[string]bool{}
	for _, name := range db.RelationNames() {
		rel, ok := db.Relation(name)
		if !ok || !rel.Sharded() {
			continue
		}
		infos, imbalance := rel.ShardBalance()
		for s := range infos {
			known[pictdb.ShardPath(path, name, s)] = true
		}
		fmt.Fprintf(stdout, "%s: %s: %d shard(s), imbalance %.2f\n", path, name, len(infos), imbalance)
		if verbose {
			for _, in := range infos {
				fmt.Fprintf(stdout, "  s%d: %d tuple(s), hilbert keys [%d, %d)\n",
					in.Shard, in.Items, in.KeyLo, in.KeyHi)
			}
		}
	}
	var orphans []string
	for _, f := range shardFiles(path) {
		if !known[f] {
			orphans = append(orphans, f)
		}
	}
	return orphans
}

// shardFiles lists the shard page files next to path
// (path.<relation>.s<N>), excluding their WAL sidecars, in
// deterministic order.
func shardFiles(path string) []string {
	matches, err := filepath.Glob(path + ".*.s*")
	if err != nil {
		return nil
	}
	var out []string
	for _, m := range matches {
		if strings.HasSuffix(m, ".wal") {
			continue
		}
		// Require a numeric shard suffix: <anything>.sN
		i := strings.LastIndex(m, ".s")
		if i < 0 || !allDigits(m[i+2:]) {
			continue
		}
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// describeWAL renders one operator-facing line about the sidecar log's
// pre-recovery state: how many CRC-validated records and commits it
// holds, the last durable generation, and whether a torn tail (from a
// crash mid-append) will be discarded on the next open.
func describeWAL(r *pager.WALReport) string {
	if r.Empty && !r.TornTail {
		return "empty (fresh or fully checkpointed)"
	}
	s := fmt.Sprintf("%d record(s), %d commit(s), last durable generation %d, checksums OK",
		r.Records, r.Commits, r.LastGen)
	if r.CorruptBefore {
		s = fmt.Sprintf("%d record(s), %d commit(s), CORRUPT record at offset %d before the last commit",
			r.Records, r.Commits, r.TornAt)
	} else if r.TornTail {
		s += fmt.Sprintf("; torn tail at offset %d will be discarded by recovery", r.TornAt)
	}
	return s
}
