// Command pictdbcheck verifies a pictdb page file: page checksums,
// free-list structure, catalog superblock, and every relation heap,
// B-tree, and spatial index. It is the operator-facing front end of
// Database.Check.
//
//	$ pictdbcheck us.db
//	us.db: 412 pages, 3 free, 5 relations, 0 leaked: OK
//
// Exit status is 0 for a healthy file, 1 when verification finds
// problems or the file cannot be opened, 2 for usage errors. Each
// problem prints as one line with the implicated page, the component
// that failed, and the underlying typed error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	pictdb "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pictdbcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	pool := fs.Int("pool", 256, "buffer pool size in pages")
	verbose := fs.Bool("v", false, "print per-component summary even when healthy")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pictdbcheck [-pool N] [-v] file.db")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)

	// Opening a pictdb file creates it when absent; a checker must not.
	if _, err := os.Stat(path); err != nil {
		fmt.Fprintf(stderr, "pictdbcheck: %v\n", err)
		return 1
	}

	db, report, err := pictdb.OpenChecked(path, *pool)
	if err != nil {
		fmt.Fprintf(stderr, "pictdbcheck: %v\n", err)
		return 1
	}
	defer db.Close()

	summary := fmt.Sprintf("%s: %d pages, %d free, %d relations, %d leaked",
		path, report.Pages, report.FreePages, report.Relations, report.Leaked)
	if report.OK() {
		fmt.Fprintf(stdout, "%s: OK\n", summary)
		if *verbose {
			fmt.Fprintln(stdout, "all page checksums, free-list links, and index invariants verified")
		}
		return 0
	}
	fmt.Fprintf(stdout, "%s: %d problem(s)\n", summary, len(report.Problems))
	for _, p := range report.Problems {
		fmt.Fprintf(stdout, "  %s\n", p)
	}
	fmt.Fprintln(stderr, "pictdbcheck: database is corrupt; it was opened in read-only degraded mode")
	return 1
}
