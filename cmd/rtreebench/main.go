// Command rtreebench regenerates the paper's Table 1: Guttman's
// dynamic INSERT versus the PACK algorithm over uniform random points,
// reporting coverage (C), overlap (O), depth (D), node count (N) and
// average nodes visited per random point query (A) for each J.
//
// Usage:
//
//	rtreebench [-queries n] [-seed s] [-split linear|quadratic|exhaustive]
//	           [-method nn|lowx|str|hilbert|rotate] [-trim] [-js 10,25,...]
//
// With -trim (the paper's "multiple of four" assumption) the PACK N
// and D columns reproduce Table 1 exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/pack"
	"repro/internal/rtree"
)

func main() {
	queries := flag.Int("queries", 1000, "random point queries per row")
	seed := flag.Int64("seed", 1985, "random seed")
	split := flag.String("split", "linear", "INSERT split algorithm: linear, quadratic, exhaustive")
	method := flag.String("method", "nn", "packing method: nn, lowx, str, hilbert, rotate, nn-area")
	trim := flag.Bool("trim", true, "trim J to a multiple of the branching factor (paper's assumption)")
	js := flag.String("js", "", "comma-separated J values (default: the paper's row set)")
	wl := flag.String("workload", "uniform", "point distribution: uniform, clustered, skewed")
	flag.Parse()

	cfg := experiments.Table1Config{
		Queries:        *queries,
		Seed:           *seed,
		TrimToMultiple: *trim,
	}
	switch *wl {
	case "uniform":
		cfg.Workload = experiments.WorkloadUniform
	case "clustered":
		cfg.Workload = experiments.WorkloadClustered
	case "skewed":
		cfg.Workload = experiments.WorkloadSkewed
	default:
		fmt.Fprintf(os.Stderr, "rtreebench: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	switch *split {
	case "linear":
		cfg.Split = rtree.SplitLinear
	case "quadratic":
		cfg.Split = rtree.SplitQuadratic
	case "exhaustive":
		cfg.Split = rtree.SplitExhaustive
	default:
		fmt.Fprintf(os.Stderr, "rtreebench: unknown split %q\n", *split)
		os.Exit(2)
	}
	switch *method {
	case "nn":
		cfg.PackMethod = pack.MethodNN
	case "lowx":
		cfg.PackMethod = pack.MethodLowX
	case "str":
		cfg.PackMethod = pack.MethodSTR
	case "hilbert":
		cfg.PackMethod = pack.MethodHilbert
	case "rotate":
		cfg.PackMethod = pack.MethodRotate
	case "nn-area":
		cfg.PackMethod = pack.MethodNNArea
	default:
		fmt.Fprintf(os.Stderr, "rtreebench: unknown method %q\n", *method)
		os.Exit(2)
	}
	if *js != "" {
		for _, part := range strings.Split(*js, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "rtreebench: bad J value %q\n", part)
				os.Exit(2)
			}
			cfg.Js = append(cfg.Js, v)
		}
	}

	fmt.Printf("Table 1 reproduction: INSERT(%s) vs PACK(%s), %s points, %d queries/row, seed %d, trim=%v\n\n",
		*split, *method, cfg.Workload, *queries, *seed, *trim)
	rows := experiments.RunTable1(cfg)
	fmt.Print(experiments.FormatTable1(rows))

	if *trim && cfg.Js == nil && cfg.Workload == experiments.WorkloadUniform {
		// Verify the structurally determined columns against the
		// paper's published values.
		paper := experiments.PaperTable1Pack()
		mismatches := 0
		for _, r := range rows {
			want := paper[r.J]
			if r.Pack.Nodes != want.N || r.Pack.Depth != want.D {
				mismatches++
				fmt.Printf("  !! J=%d: PACK N=%d D=%d, paper N=%d D=%d\n",
					r.J, r.Pack.Nodes, r.Pack.Depth, want.N, want.D)
			}
		}
		if mismatches == 0 {
			fmt.Println("\nPACK N and D columns match the paper's Table 1 exactly for all 17 rows.")
		}
	}
}
