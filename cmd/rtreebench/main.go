// Command rtreebench regenerates the paper's Table 1: Guttman's
// dynamic INSERT versus the PACK algorithm over uniform random points,
// reporting coverage (C), overlap (O), depth (D), node count (N) and
// average nodes visited per random point query (A) for each J.
//
// Usage:
//
//	rtreebench [-queries n] [-seed s] [-split linear|quadratic|exhaustive]
//	           [-method nn|lowx|str|hilbert|rotate] [-trim] [-js 10,25,...]
//	           [-json] [-parbench] [-n items] [-windows n] [-workers 1,2,4,8]
//	           [-latency] [-clients n]
//
// With -trim (the paper's "multiple of four" assumption) the PACK N
// and D columns reproduce Table 1 exactly. -json switches either mode
// to machine-readable output. -parbench replaces the Table 1 run with
// the parallel-scaling benchmark: PACK build time and batched window
// queries at each worker count (identical outputs, only wall-clock
// moves).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/rtree"
	"repro/internal/workload"
)

func main() {
	queries := flag.Int("queries", 1000, "random point queries per row")
	seed := flag.Int64("seed", 1985, "random seed")
	split := flag.String("split", "linear", "INSERT split algorithm: linear, quadratic, exhaustive")
	method := flag.String("method", "nn", "packing method: nn, lowx, str, hilbert, rotate, nn-area")
	trim := flag.Bool("trim", true, "trim J to a multiple of the branching factor (paper's assumption)")
	js := flag.String("js", "", "comma-separated J values (default: the paper's row set)")
	wl := flag.String("workload", "uniform", "point distribution: uniform, clustered, skewed")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of the formatted table")
	parbench := flag.Bool("parbench", false, "run the parallel build / batched query scaling benchmark")
	parN := flag.Int("n", 200000, "parbench/joinbench: number of items")
	parWindows := flag.Int("windows", 256, "parbench: windows per query batch")
	workers := flag.String("workers", "1,2,4,8", "parbench/joinbench: comma-separated worker counts")
	joinbench := flag.Bool("joinbench", false, "run the parallel juxtaposition scaling benchmark")
	latency := flag.Bool("latency", false, "run the concurrent-load window-query latency benchmark (p50/p95/p99)")
	clients := flag.Int("clients", 4, "concurrent clients in -latency mode")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	flag.Parse()

	cfg := experiments.Table1Config{
		Queries:        *queries,
		Seed:           *seed,
		TrimToMultiple: *trim,
	}
	switch *wl {
	case "uniform":
		cfg.Workload = experiments.WorkloadUniform
	case "clustered":
		cfg.Workload = experiments.WorkloadClustered
	case "skewed":
		cfg.Workload = experiments.WorkloadSkewed
	default:
		fmt.Fprintf(os.Stderr, "rtreebench: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	switch *split {
	case "linear":
		cfg.Split = rtree.SplitLinear
	case "quadratic":
		cfg.Split = rtree.SplitQuadratic
	case "exhaustive":
		cfg.Split = rtree.SplitExhaustive
	default:
		fmt.Fprintf(os.Stderr, "rtreebench: unknown split %q\n", *split)
		os.Exit(2)
	}
	switch *method {
	case "nn":
		cfg.PackMethod = pack.MethodNN
	case "lowx":
		cfg.PackMethod = pack.MethodLowX
	case "str":
		cfg.PackMethod = pack.MethodSTR
	case "hilbert":
		cfg.PackMethod = pack.MethodHilbert
	case "rotate":
		cfg.PackMethod = pack.MethodRotate
	case "nn-area":
		cfg.PackMethod = pack.MethodNNArea
	default:
		fmt.Fprintf(os.Stderr, "rtreebench: unknown method %q\n", *method)
		os.Exit(2)
	}
	if *js != "" {
		for _, part := range strings.Split(*js, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "rtreebench: bad J value %q\n", part)
				os.Exit(2)
			}
			cfg.Js = append(cfg.Js, v)
		}
	}

	stopCPU := startCPUProfile(*cpuprofile)
	defer stopCPU()
	defer writeHeapProfile(*memprofile)

	if *latency {
		runLatencyBench(cfg.PackMethod, *parN, *queries, *seed, *clients, *jsonOut)
		return
	}

	if *parbench || *joinbench {
		counts, err := parseInts(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rtreebench: bad -workers: %v\n", err)
			os.Exit(2)
		}
		if *joinbench {
			runJoinBench(cfg.PackMethod, *parN, *seed, counts, *jsonOut)
		} else {
			runParBench(cfg.PackMethod, *parN, *parWindows, *seed, counts, *jsonOut)
		}
		return
	}

	rows := experiments.RunTable1(cfg)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "rtreebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Table 1 reproduction: INSERT(%s) vs PACK(%s), %s points, %d queries/row, seed %d, trim=%v\n\n",
		*split, *method, cfg.Workload, *queries, *seed, *trim)
	fmt.Print(experiments.FormatTable1(rows))

	if *trim && cfg.Js == nil && cfg.Workload == experiments.WorkloadUniform {
		// Verify the structurally determined columns against the
		// paper's published values.
		paper := experiments.PaperTable1Pack()
		mismatches := 0
		for _, r := range rows {
			want := paper[r.J]
			if r.Pack.Nodes != want.N || r.Pack.Depth != want.D {
				mismatches++
				fmt.Printf("  !! J=%d: PACK N=%d D=%d, paper N=%d D=%d\n",
					r.J, r.Pack.Nodes, r.Pack.Depth, want.N, want.D)
			}
		}
		if mismatches == 0 {
			fmt.Println("\nPACK N and D columns match the paper's Table 1 exactly for all 17 rows.")
		}
	}
}

// startCPUProfile begins CPU profiling to path (no-op when empty) and
// returns the stop function. Profiles give future perf PRs pprof
// evidence: rtreebench -parbench -cpuprofile cpu.out && go tool pprof.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtreebench: -cpuprofile: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "rtreebench: -cpuprofile: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rtreebench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeHeapProfile dumps a heap profile to path (no-op when empty).
func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtreebench: -memprofile: %v\n", err)
		os.Exit(1)
	}
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "rtreebench: -memprofile: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "rtreebench: -memprofile: %v\n", err)
		os.Exit(1)
	}
}

// latencyRow is the -latency report: per-operation window-query
// percentiles on a packed tree under concurrent client load.
type latencyRow struct {
	Clients int                     `json:"clients"`
	Items   int                     `json:"items"`
	QPS     float64                 `json:"queries_per_sec"`
	Latency workload.LatencySummary `json:"latency"`
}

// runLatencyBench packs n uniform points and has nclients goroutines
// issue single-window queries concurrently (queries per client),
// reporting merged p50/p95/p99 per-operation latency — the read-side
// tail the two-tree write path must not disturb.
func runLatencyBench(m pack.Method, n, queries int, seed int64, nclients int, jsonOut bool) {
	params := rtree.Params{Max: 16, Min: 8}
	tree := pack.Tree(params, workload.PointItems(workload.UniformPoints(n, seed)), pack.Options{Method: m})
	windows := workload.QueryWindows(1024, 25, seed+1)

	samples := make([][]time.Duration, nclients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < nclients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, queries)
			for i := 0; i < queries; i++ {
				w := windows[(c*queries+i)%len(windows)]
				t0 := time.Now()
				tree.Query(w)
				local = append(local, time.Since(t0))
			}
			samples[c] = local
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, s := range samples {
		all = append(all, s...)
	}
	row := latencyRow{
		Clients: nclients,
		Items:   n,
		QPS:     float64(len(all)) / elapsed.Seconds(),
		Latency: workload.Summarize(all),
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(row); err != nil {
			fmt.Fprintf(os.Stderr, "rtreebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Concurrent window-query latency: PACK(%s), %d items, %d clients x %d queries\n\n", m, n, nclients, queries)
	fmt.Printf("  queries/sec %10.0f\n  p50  %v\n  p95  %v\n  p99  %v\n  max  %v\n",
		row.QPS, row.Latency.P50, row.Latency.P95, row.Latency.P99, row.Latency.Max)
}

// parseInts parses a comma-separated list of positive ints.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// joinRow is one worker count's measurements in the juxtaposition
// scaling benchmark.
type joinRow struct {
	Workers     int     `json:"workers"`
	JoinSeconds float64 `json:"join_seconds"`
	JoinSpeedup float64 `json:"join_speedup"`
	Pairs       int     `json:"pairs"`
	Visited     int     `json:"visited_node_pairs"`
	Identical   bool    `json:"identical_to_serial"`
}

// runJoinBench measures the parallel juxtaposition at each worker
// count: points joined against region rectangles under INTERSECTS. The
// serial (workers=1) output is the reference; every other worker count
// must reproduce it exactly — same pairs, same order, same visit
// count — which the Identical column asserts.
func runJoinBench(m pack.Method, n int, seed int64, counts []int, jsonOut bool) {
	params := rtree.Params{Max: 16, Min: 8}
	ta := pack.Tree(params, workload.PointItems(workload.UniformPoints(n, seed)), pack.Options{Method: m})
	wins := workload.QueryWindows(n/10, 25, seed+7)
	regions := make([]rtree.Item, len(wins))
	for i, w := range wins {
		regions[i] = rtree.Item{Rect: w, Data: int64(i)}
	}
	tb := pack.Tree(params, regions, pack.Options{Method: m})
	pred := func(a, b geom.Rect) bool { return a.Intersects(b) }

	best := func(f func()) float64 {
		lowest := 0.0
		for r := 0; r < 3; r++ {
			start := time.Now()
			f()
			if d := time.Since(start).Seconds(); r == 0 || d < lowest {
				lowest = d
			}
		}
		return lowest
	}

	refPairs, refVisited := rtree.Juxtapose(ta, tb, pred, 1)
	rows := make([]joinRow, 0, len(counts))
	for _, w := range counts {
		sec := best(func() { rtree.Juxtapose(ta, tb, pred, w) })
		pairs, visited := rtree.Juxtapose(ta, tb, pred, w)
		identical := visited == refVisited && len(pairs) == len(refPairs)
		if identical {
			for i := range pairs {
				if pairs[i] != refPairs[i] {
					identical = false
					break
				}
			}
		}
		rows = append(rows, joinRow{
			Workers:     w,
			JoinSeconds: sec,
			Pairs:       len(pairs),
			Visited:     visited,
			Identical:   identical,
		})
	}
	for i := range rows {
		rows[i].JoinSpeedup = rows[0].JoinSeconds / rows[i].JoinSeconds
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "rtreebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Juxtaposition scaling: PACK(%s), %d points x %d regions, INTERSECTS\n\n", m, n, len(regions))
	fmt.Println("  workers | join (s) | speedup |   pairs | node pairs | identical")
	fmt.Println("  --------+----------+---------+---------+------------+----------")
	for _, r := range rows {
		fmt.Printf("  %7d | %8.4f | %7.2f | %7d | %10d | %v\n",
			r.Workers, r.JoinSeconds, r.JoinSpeedup, r.Pairs, r.Visited, r.Identical)
	}
}

// parRow is one worker count's measurements in the scaling benchmark.
type parRow struct {
	Workers       int     `json:"workers"`
	BuildSeconds  float64 `json:"build_seconds"`
	BuildSpeedup  float64 `json:"build_speedup"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	QuerySpeedup  float64 `json:"query_speedup"`
}

// runParBench measures PACK build time and batched query throughput at
// each worker count. Each measurement is the best of three runs, the
// usual guard against scheduler noise.
func runParBench(m pack.Method, n, nWindows int, seed int64, counts []int, jsonOut bool) {
	items := workload.PointItems(workload.UniformPoints(n, seed))
	params := rtree.Params{Max: 16, Min: 8}
	windows := workload.QueryWindows(nWindows, 25, seed+1)

	best := func(f func()) float64 {
		lowest := 0.0
		for r := 0; r < 3; r++ {
			start := time.Now()
			f()
			if d := time.Since(start).Seconds(); r == 0 || d < lowest {
				lowest = d
			}
		}
		return lowest
	}

	tree := pack.Tree(params, items, pack.Options{Method: m})
	rows := make([]parRow, 0, len(counts))
	for _, w := range counts {
		buildSec := best(func() {
			pack.Tree(params, items, pack.Options{Method: m, Parallelism: w})
		})
		querySec := best(func() {
			tree.QueryBatch(windows, w)
		})
		rows = append(rows, parRow{
			Workers:       w,
			BuildSeconds:  buildSec,
			QueriesPerSec: float64(nWindows) / querySec,
		})
	}
	for i := range rows {
		rows[i].BuildSpeedup = rows[0].BuildSeconds / rows[i].BuildSeconds
		rows[i].QuerySpeedup = rows[i].QueriesPerSec / rows[0].QueriesPerSec
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "rtreebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("Parallel scaling: PACK(%s) build of %d items; %d-window query batches\n\n", m, n, nWindows)
	fmt.Println("  workers | build (s) | speedup | queries/sec | speedup")
	fmt.Println("  --------+-----------+---------+-------------+--------")
	for _, r := range rows {
		fmt.Printf("  %7d | %9.4f | %7.2f | %11.0f | %7.2f\n",
			r.Workers, r.BuildSeconds, r.BuildSpeedup, r.QueriesPerSec, r.QuerySpeedup)
	}
}
