package pictdb_test

import (
	"fmt"
	"testing"

	pictdb "repro"
	"repro/internal/storage"
)

// mutateUS drives live deltas and tombstones into the US database's
// spatial indexes after the packed build: it deletes a slice of the
// packed cities, inserts fresh ones (population straddling the
// 450_000 cut used by the benchmark queries), and adds new time-zone
// regions so juxtaposition sees deltas on both sides. The default
// delta threshold is far above these counts, so every write stays in
// the delta trees until a repack is forced explicitly.
func mutateUS(t *testing.T, db *pictdb.Database) {
	t.Helper()
	cities, _ := db.Relation("cities")
	usMap, _ := db.Picture("us-map")

	var ids []storage.TupleID
	if err := cities.Scan(func(id storage.TupleID, _ pictdb.Tuple) bool {
		ids = append(ids, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ids); i += 7 {
		if err := cities.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		x := float64((i*137 + 11) % 1000)
		y := float64((i*211 + 7) % 1000)
		pop := 100_000 + (i%10)*100_000
		name := fmt.Sprintf("newcity-%02d", i)
		oid := usMap.AddPoint(name, pictdb.Pt(x, y))
		if _, err := cities.Insert(pictdb.Tuple{
			pictdb.S(name), pictdb.S("NX"), pictdb.I(int64(pop)), pictdb.L("us-map", oid),
		}); err != nil {
			t.Fatal(err)
		}
	}

	zones, _ := db.Relation("time-zones")
	tzMap, _ := db.Picture("time-zone-map")
	for i := 0; i < 4; i++ {
		x0, y0 := float64(100+i*200), float64(150+i*150)
		name := fmt.Sprintf("newzone-%d", i)
		oid := tzMap.AddRegion(name, pictdb.Poly(
			pictdb.Pt(x0, y0), pictdb.Pt(x0+180, y0),
			pictdb.Pt(x0+180, y0+220), pictdb.Pt(x0, y0+220)))
		if _, err := zones.Insert(pictdb.Tuple{
			pictdb.S(name), pictdb.F(float64(i)), pictdb.L("time-zone-map", oid),
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// lsmQueries covers every access path the planner can pick: direct
// spatial search (all four operators), juxtaposition, and a nested
// pictorial subquery — each of which must merge packed, frozen, and
// delta trees identically to the naive full-scan reference.
var lsmQueries = map[string]string{
	"direct-covered-by": `
		select city, state, population, loc from cities on us-map
		at loc covered-by {800±200, 500±500} where population > 450_000`,
	"direct-overlapping": `
		select city, loc from cities on us-map
		at loc overlapping {300±150, 400±200}`,
	"direct-disjoined": `
		select city from cities on us-map at loc disjoined {900±99, 500±499}`,
	"juxtaposition": `
		select city, zone from cities, time-zones on us-map, time-zone-map
		at cities.loc covered-by time-zones.loc`,
	"nested": `
		select lake, lakes.loc from lakes on lake-map
		at lakes.loc covered-by
		select states.loc from states on state-map
		at states.loc overlapping eastern-us`,
}

// assertSameResult requires got to be bit-identical to want: same
// columns, same rows in the same order, same loc pointers. Plan and
// NodesVisited legitimately differ between the paths.
func assertSameResult(t *testing.T, label string, got, want *pictdb.Result) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: %d columns, naive %d", label, len(got.Columns), len(want.Columns))
	}
	for i := range got.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("%s: column %d = %q, naive %q", label, i, got.Columns[i], want.Columns[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, naive %d", label, len(got.Rows), len(want.Rows))
	}
	for ri := range got.Rows {
		if len(got.Rows[ri]) != len(want.Rows[ri]) {
			t.Fatalf("%s: row %d width %d, naive %d", label, ri, len(got.Rows[ri]), len(want.Rows[ri]))
		}
		for ci := range got.Rows[ri] {
			if got.Rows[ri][ci].String() != want.Rows[ri][ci].String() {
				t.Fatalf("%s: row %d col %d = %s, naive %s",
					label, ri, ci, got.Rows[ri][ci].String(), want.Rows[ri][ci].String())
			}
		}
	}
	if len(got.Locs) != len(want.Locs) {
		t.Fatalf("%s: %d locs, naive %d", label, len(got.Locs), len(want.Locs))
	}
	for i := range got.Locs {
		if got.Locs[i] != want.Locs[i] {
			t.Fatalf("%s: loc %d = %v, naive %v", label, i, got.Locs[i], want.Locs[i])
		}
	}
}

func runLSMQueries(t *testing.T, db *pictdb.Database, stage string) {
	t.Helper()
	for _, par := range []int{1, 8} {
		db.SetParallelism(par)
		for name, q := range lsmQueries {
			got, err := db.Query(q)
			if err != nil {
				t.Fatalf("%s/%s par=%d: %v", stage, name, par, err)
			}
			want, err := db.QueryNaive(q)
			if err != nil {
				t.Fatalf("%s/%s par=%d naive: %v", stage, name, par, err)
			}
			assertSameResult(t, fmt.Sprintf("%s/%s par=%d", stage, name, par), got, want)
			if name != "direct-disjoined" && got.Len() == 0 {
				t.Fatalf("%s/%s: vacuous — zero rows on both paths", stage, name)
			}
		}
	}
	db.SetParallelism(0)
}

// TestLSMQueryMatchesNaive mutates the US database after its spatial
// indexes are packed, then checks the planned executor against the
// naive full-scan reference at parallelism 1 and 8 — first with the
// writes live in the delta trees and tombstone sets, then again after
// forcing a repack so the merged results come from the swapped root.
func TestLSMQueryMatchesNaive(t *testing.T) {
	db, err := pictdb.BuildUSDatabase()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mutateUS(t, db)

	cities, _ := db.Relation("cities")
	si := cities.Spatial("us-map")
	if si.DeltaLen() == 0 || si.TombstoneCount() == 0 {
		t.Fatalf("mutation left no live delta state: delta=%d tombstones=%d",
			si.DeltaLen(), si.TombstoneCount())
	}
	runLSMQueries(t, db, "delta-live")

	// Collapse the deltas and re-verify against the repacked roots.
	zones, _ := db.Relation("time-zones")
	si.RepackNow(false)
	zones.Spatial("time-zone-map").RepackNow(false)
	if si.DeltaLen() != 0 || si.TombstoneCount() != 0 {
		t.Fatalf("repack left delta state: delta=%d tombstones=%d",
			si.DeltaLen(), si.TombstoneCount())
	}
	if si.Repacks() == 0 {
		t.Fatal("RepackNow recorded no repack")
	}
	runLSMQueries(t, db, "repacked")
}
