GO ?= go

.PHONY: check build test race vet bench table1 parbench clean

# The gate: everything must vet, build, and pass under the race
# detector (the concurrent read path and parallel PACK are exercised
# by dedicated -race stress tests).
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Paper reproduction targets.
table1:
	$(GO) run ./cmd/rtreebench

parbench:
	$(GO) run ./cmd/rtreebench -parbench

clean:
	$(GO) clean ./...
