GO ?= go

.PHONY: check build test race vet bench faults fuzz table1 parbench clean

# The gate: everything must vet, build, pass under the race detector
# (the concurrent read path and parallel PACK are exercised by
# dedicated -race stress tests), and survive the fault-injection and
# crash-point suites.
check: vet build race faults

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Durability suite: injected I/O faults, torn writes, crash-point
# snapshots, checksum and corruption detection, across the pager and
# the full database stack.
faults:
	$(GO) test -race -run 'Fault|Crash|Torn|Checksum|Corrupt|Truncated|Degrad|V1Compat|Check' ./internal/pager/ ./cmd/pictdbcheck/ .

# Short deterministic fuzz pass over the tuple decoder.
fuzz:
	$(GO) test -fuzz FuzzDecodeTuple -fuzztime 30s ./internal/relation/

# Paper reproduction targets.
table1:
	$(GO) run ./cmd/rtreebench

parbench:
	$(GO) run ./cmd/rtreebench -parbench

clean:
	$(GO) clean ./...
