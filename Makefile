GO ?= go

.PHONY: check build test race vet lint bench benchcheck faults walfaults shardfaults fuzz psqlbench ingestbench commitbench shardbench rebalancebench table1 parbench joinbench clean

# The gate: everything must vet, lint clean (the pictdblint analyzer
# suite, DESIGN.md §14), build, pass under the race detector (the
# concurrent read path and parallel PACK are exercised by dedicated
# -race stress tests), and survive the fault-injection and crash-point
# suites, including the WAL crash-recovery matrix.
check: vet lint build race faults walfaults

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The engine's own go/analysis suite: pinlifetime, locksync,
# corruptwrap, benchguard (DESIGN.md §14). The binary drives
# `go vet -vettool=` itself, so analyzer results are cached per package
# by the build cache like any vet run.
lint: bin/pictdblint
	./bin/pictdblint ./...

bin/pictdblint: $(shell find cmd/pictdblint internal/lint -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	$(GO) build -o bin/pictdblint ./cmd/pictdblint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Short benchmark smoke pass (no -race: the detector's overhead makes
# timings meaningless). Catches perf-path regressions that fail to
# run — wrong flags, broken benchmarks, alloc-assertion drift — not
# timing changes; CI runs it as a non-blocking job.
benchcheck:
	$(GO) test -run xxx -bench 'DiskSearch|DiskQueryBatch|Juxtapos' -benchtime 10x -benchmem .
	$(GO) test -run xxx -bench 'PSQL' -benchtime 10x -benchmem .
	$(GO) test -run xxx -bench 'Pin|Fetch' -benchtime 100x -benchmem ./internal/pager/
	$(GO) test -run xxx -bench 'DeltaMergedSearch|PackedOnlySearch' -benchtime 20x -benchmem ./internal/relation/
	$(GO) test -run xxx -bench 'ShardedSearch|UnshardedSearch' -benchtime 20x -benchmem ./internal/relation/
	$(GO) test -run 'ZeroAllocs|PreallocAllocs' ./internal/rtree/
	$(GO) run ./cmd/psqlbench -iters 20 -json > /dev/null
	$(GO) run ./cmd/ingestbench -n 5000 -inserts 2000 -deletes 200 -threshold 512 -queries 200 -windows 64 -json > /dev/null
	$(GO) run ./cmd/ingestbench -rebalance -skew hot:0.9:0.1 -n 2000 -inserts 4000 -threshold 256 -queries 0 -shards 4 -joinn 200 -json > /dev/null

# Durability suite: injected I/O faults, torn writes, crash-point
# snapshots, checksum and corruption detection, across the pager and
# the full database stack.
faults:
	$(GO) test -race -run 'Fault|Crash|Torn|Checksum|Corrupt|Truncated|Degrad|V1Compat|Check' ./internal/pager/ ./cmd/pictdbcheck/ .

# Write-ahead-log durability matrix: group-commit batching, snapshot
# isolation under concurrent writers, append-region fault injection at
# the log tail, and the coordinated (page file, WAL) crash-point sweep
# with recovery verified from every captured image.
walfaults:
	$(GO) test -race -run 'WAL|Snapshot|Append' ./internal/pager/ ./cmd/pictdbcheck/ .

# Shard-split durability: the split crash-point matrix (every fsync
# boundary during an online shard split, recovery verified from each
# captured image), the split query oracle, reopen persistence, and the
# sharded crash/recovery suite.
shardfaults:
	$(GO) test -race -run 'ShardSplit|ShardedCrash|ShardedDuplicate|SplitShard' ./internal/relation/ .

# Short deterministic fuzz pass over the tuple decoder.
fuzz:
	$(GO) test -fuzz FuzzDecodeTuple -fuzztime 30s ./internal/relation/

# PSQL executor benchmark: naive vs cached vs prepared over the US
# database (JSON with -json; see BENCH_pr5.json).
psqlbench:
	$(GO) run ./cmd/psqlbench

# Ingest-vs-read-amplification benchmark: per-tuple Guttman vs the LSM
# delta path vs stop-the-world repacks, index tier and end-to-end.
# Records the acceptance numbers in BENCH_pr6.json.
ingestbench:
	$(GO) run ./cmd/ingestbench -out BENCH_pr6.json

# Durable-commit throughput: serial ordered commit vs WAL group commit
# at 1/4/16 writers. Records the acceptance numbers in BENCH_pr7.json.
commitbench:
	$(GO) run ./cmd/commitbench -out BENCH_pr7.json

# Hilbert-range sharding scaling sweep: the same mixed ingest load and
# warm clustered-window workload at 1/2/4/8 shards against the
# unsharded baseline. Records the acceptance numbers in BENCH_pr9.json.
shardbench:
	$(GO) run ./cmd/ingestbench -n 100000 -inserts 40000 -deletes 4000 \
		-queries 2000 -radius 50 -shards 1,2,4,8 -out BENCH_pr9.json

# Skew-adaptive rebalancing comparison: the 90%-hot ingest with online
# shard splitting on vs off, plus the cross-shard join restriction
# measurement (frontier-pruned scatter vs full pair product, output
# verified bit-identical). Records the acceptance numbers in
# BENCH_pr10.json.
rebalancebench:
	$(GO) run ./cmd/ingestbench -rebalance -skew hot:0.9:0.1 \
		-n 20000 -inserts 80000 -threshold 1024 -queries 0 \
		-shards 8 -joinn 800 -out BENCH_pr10.json

# Paper reproduction targets.
table1:
	$(GO) run ./cmd/rtreebench

parbench:
	$(GO) run ./cmd/rtreebench -parbench

joinbench:
	$(GO) run ./cmd/rtreebench -joinbench

clean:
	$(GO) clean ./...
