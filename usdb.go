package pictdb

import (
	"fmt"

	"repro/internal/pack"
	"repro/internal/workload"
)

// BuildUSDatabase constructs the paper's running-example database: the
// cities, states, time-zones, lakes and highways relations of §2.1,
// each associated with its own picture (us-map, state-map,
// time-zone-map, lake-map, highway-map), spatially indexed with packed
// R-trees, and with B-tree indexes on the alphanumeric key columns.
// The data comes from the built-in 1980-era geographic datasets.
func BuildUSDatabase() (*Database, error) {
	db := New()
	if err := populateUS(db); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// BuildUSDatabaseFile builds the same database persistently at path
// and checkpoints it, so it can be reopened with Open.
func BuildUSDatabaseFile(path string, poolPages int) (*Database, error) {
	db, err := Open(path, poolPages)
	if err != nil {
		return nil, err
	}
	if err := populateUS(db); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.Checkpoint(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// BuildUSDatabaseSharded builds the same in-memory database with every
// relation split across shards Hilbert-range page files. Query results
// are identical to BuildUSDatabase row for row — the shard_oracle tests
// hold the two configurations against each other.
func BuildUSDatabaseSharded(shards int) (*Database, error) {
	db := New()
	create := func(name string, schema Schema) (*Relation, error) {
		return db.CreateShardedRelation(name, schema, shards)
	}
	if err := populateUSWith(db, create); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// populateUS fills db with the §2.1 relations and pictures.
func populateUS(db *Database) error {
	return populateUSWith(db, db.CreateRelation)
}

// populateUSWith is populateUS with the relation constructor abstracted
// so the sharded builder can route every table through
// CreateShardedRelation.
func populateUSWith(db *Database, createRelation func(name string, schema Schema) (*Relation, error)) error {
	frame := workload.Frame

	for _, name := range []string{"us-map", "state-map", "time-zone-map", "lake-map", "highway-map"} {
		if _, err := db.CreatePicture(name, frame); err != nil {
			return err
		}
	}
	usMap, _ := db.Picture("us-map")
	stateMap, _ := db.Picture("state-map")
	tzMap, _ := db.Picture("time-zone-map")
	lakeMap, _ := db.Picture("lake-map")
	hwyMap, _ := db.Picture("highway-map")

	// cities(city, state, population, loc) on us-map.
	cities, err := createRelation("cities", MustSchema(
		"city:string", "state:string", "population:int", "loc:loc"))
	if err != nil {
		return err
	}
	for _, c := range workload.USCities() {
		oid := usMap.AddPoint(c.Name, c.Pos)
		if _, err := cities.Insert(Tuple{S(c.Name), S(c.State), I(c.Population), L("us-map", oid)}); err != nil {
			return fmt.Errorf("cities: %w", err)
		}
	}
	if err := cities.CreateIndex("city"); err != nil {
		return err
	}
	if err := cities.CreateIndex("population"); err != nil {
		return err
	}

	// states(state, population-density, loc) on state-map.
	states, err := createRelation("states", MustSchema(
		"state:string", "population-density:float", "loc:loc"))
	if err != nil {
		return err
	}
	for _, s := range workload.USStates() {
		oid := stateMap.AddRegion(s.Name, s.Poly)
		if _, err := states.Insert(Tuple{S(s.Name), F(s.Attr), L("state-map", oid)}); err != nil {
			return fmt.Errorf("states: %w", err)
		}
	}
	if err := states.CreateIndex("state"); err != nil {
		return err
	}

	// time-zones(zone, hour-diff, loc) on time-zone-map.
	zones, err := createRelation("time-zones", MustSchema(
		"zone:string", "hour-diff:float", "loc:loc"))
	if err != nil {
		return err
	}
	for _, z := range workload.USTimeZones() {
		oid := tzMap.AddRegion(z.Name, z.Poly)
		if _, err := zones.Insert(Tuple{S(z.Name), F(z.Attr), L("time-zone-map", oid)}); err != nil {
			return fmt.Errorf("time-zones: %w", err)
		}
	}

	// lakes(lake, area, loc) on lake-map.
	lakes, err := createRelation("lakes", MustSchema(
		"lake:string", "area:float", "loc:loc"))
	if err != nil {
		return err
	}
	for _, l := range workload.USLakes() {
		oid := lakeMap.AddRegion(l.Name, l.Poly)
		if _, err := lakes.Insert(Tuple{S(l.Name), F(l.Attr), L("lake-map", oid)}); err != nil {
			return fmt.Errorf("lakes: %w", err)
		}
	}

	// highways(hwy-name, hwy-section, loc) on highway-map.
	highways, err := createRelation("highways", MustSchema(
		"hwy-name:string", "hwy-section:string", "loc:loc"))
	if err != nil {
		return err
	}
	for _, h := range workload.USHighways() {
		oid := hwyMap.AddSegment(h.Name, h.Seg)
		if _, err := highways.Insert(Tuple{S(h.Name), S(h.Section), L("highway-map", oid)}); err != nil {
			return fmt.Errorf("highways: %w", err)
		}
	}
	if err := highways.CreateIndex("hwy-name"); err != nil {
		return err
	}

	// Pack every spatial index with the paper's PACK (nearest
	// neighbor); the database is static from here on, the
	// configuration the paper optimizes for.
	packOpts := pack.Options{Method: pack.MethodNN}
	for _, assoc := range []struct {
		rel *Relation
		pic *Picture
	}{
		{cities, usMap},
		{states, stateMap},
		{zones, tzMap},
		{lakes, lakeMap},
		{highways, hwyMap},
	} {
		if err := assoc.rel.AttachPicture(assoc.pic, packOpts); err != nil {
			return err
		}
	}

	// The paper's example predefined location: the Eastern US window
	// used in §2.2 (scaled to the frame).
	db.DefineLocation("eastern-us", R(600, 0, 1000, 1000))
	db.DefineLocation("western-us", R(0, 0, 400, 1000))

	return nil
}
