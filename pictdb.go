// Package pictdb is a pictorial database engine with direct spatial
// search over packed R-trees, reproducing Roussopoulos & Leifker,
// "Direct Spatial Search on Pictorial Databases Using Packed R-trees"
// (SIGMOD 1985).
//
// A Database holds relations (tables over alphanumeric and pictorial
// domains), pictures (named maps of point/segment/region objects), and
// named locations. Relations associate with pictures through loc
// columns; each association is indexed by a packed R-tree built with
// the paper's PACK algorithm (or any of its descendants: lowx, STR,
// Hilbert, rotation packing). Queries are written in PSQL, the paper's
// pictorial query language:
//
//	db := pictdb.New()
//	... define pictures and relations ...
//	res, err := db.Query(`
//	    select city, state, population, loc
//	    from   cities
//	    on     us-map
//	    at     loc covered-by {750±250, 500±500}
//	    where  population > 450000`)
//
// The packages under internal/ expose the individual systems: the
// R-tree and PACK, the B-tree and slotted-page storage substrates, the
// geometry kernel, and the experiment harness that regenerates the
// paper's Table 1 and figures.
package pictdb

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/psql"
	"repro/internal/relation"
	"repro/internal/rtree"
)

// Re-exported geometry aliases so applications can use the public API
// without importing internal packages.
type (
	// Point is a planar location.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (MBR).
	Rect = geom.Rect
	// Segment is a line segment.
	Segment = geom.Segment
	// Polygon is a polygonal region.
	Polygon = geom.Polygon
	// Picture is a named map of spatial objects.
	Picture = picture.Picture
	// ObjectID identifies an object within a picture.
	ObjectID = picture.ObjectID
	// Relation is a table with alphanumeric and spatial indexes.
	Relation = relation.Relation
	// Schema describes relation columns.
	Schema = relation.Schema
	// Tuple is one relation row.
	Tuple = relation.Tuple
	// Value is one column value.
	Value = relation.Value
	// Column is one schema column.
	Column = relation.Column
	// ColumnType enumerates the column domains.
	ColumnType = relation.Type
	// Result is a PSQL query result.
	Result = psql.Result
	// CacheStats reports PSQL statement-cache counters.
	CacheStats = psql.CacheStats
	// Prepared is a PSQL statement with a re-bindable window parameter.
	Prepared = psql.Prepared
	// PackOptions configures spatial index packing.
	PackOptions = pack.Options
	// RTreeParams configures R-tree branching.
	RTreeParams = rtree.Params
	// SpatialWritePolicy selects where spatial-index writes land.
	SpatialWritePolicy = relation.WritePolicy
	// SpatialCostSnapshot is the planner's consistent view of a spatial
	// index.
	SpatialCostSnapshot = relation.CostSnapshot
)

// Spatial write policy re-exports.
const (
	// WriteDelta absorbs writes into each index's in-memory delta
	// R-tree (the default); a background repacker restores packed
	// quality.
	WriteDelta = relation.WriteDelta
	// WriteInPlace is the paper's per-tuple Guttman maintenance,
	// mutating the packed tree directly.
	WriteInPlace = relation.WriteInPlace
)

// Value constructors, re-exported.
var (
	// Pt builds a Point.
	Pt = geom.Pt
	// R builds a Rect from two corners.
	R = geom.R
	// WindowAt builds a Rect from the PSQL {cx±dx, cy±dy} form.
	WindowAt = geom.WindowAt
	// Seg builds a Segment.
	Seg = geom.Seg
	// Poly builds a Polygon.
	Poly = geom.Poly
	// I, F, S, L build int, float, string and loc values.
	I = relation.I
	F = relation.F
	S = relation.S
	L = relation.L
)

// Packing method re-exports.
const (
	// PackNN is the paper's nearest-neighbor PACK.
	PackNN = pack.MethodNN
	// PackLowX is plain ascending-x packing.
	PackLowX = pack.MethodLowX
	// PackSTR is Sort-Tile-Recursive packing.
	PackSTR = pack.MethodSTR
	// PackHilbert is Hilbert-curve packing.
	PackHilbert = pack.MethodHilbert
	// PackRotate is the Theorem 3.2 rotation packing.
	PackRotate = pack.MethodRotate
	// PackNNArea is PACK with greedy least-enlargement grouping.
	PackNNArea = pack.MethodNNArea
)

// MustSchema builds a schema from "name:type" specs, panicking on
// malformed specs.
var MustSchema = relation.MustSchema

// NewSchema builds a schema from "name:type" specs.
var NewSchema = relation.NewSchema

// Database is an integrated pictorial/alphanumeric database: the
// catalog PSQL queries run against.
type Database struct {
	pager     *pager.Pager
	relations map[string]*relation.Relation
	pictures  map[string]*picture.Picture
	locations map[string]geom.Rect
	exec      *psql.Executor
	readOnly  bool

	// Sharding: a sharded relation stores its tuples in dedicated page
	// files (one pager + WAL per shard) beside the main file. path and
	// poolPages parameterize the default shard-file naming/opening;
	// newShardPager is the factory seam fault-injection suites override
	// to put shards on snapshotted or failing backends.
	path          string
	poolPages     int
	shardPagers   map[string][]*pager.Pager
	newShardPager func(rel string, shard int, mustExist bool) (*pager.Pager, error)

	// wmu serializes Write transactions: relation mutation is not
	// internally locked, so concurrent writers take turns applying
	// their changes while the WAL group-commits their durability.
	wmu sync.Mutex
}

// New creates an in-memory database. Sharded relations get in-memory
// shard pagers.
func New() *Database {
	db := &Database{
		pager:       pager.OpenMem(1024),
		relations:   make(map[string]*relation.Relation),
		pictures:    make(map[string]*picture.Picture),
		locations:   make(map[string]geom.Rect),
		shardPagers: make(map[string][]*pager.Pager),
	}
	db.exec = psql.NewExecutor(db)
	if err := db.ensureSuperblock(); err != nil {
		// The in-memory pager cannot fail to allocate its first page.
		panic(err)
	}
	return db
}

// Open creates a database whose tuple heaps persist in a page file at
// path, with a buffer pool of poolPages pages. A write-ahead log at
// path+".wal" is enabled (and recovered, if a previous process crashed
// mid-commit) before any other access: commits group into single
// fsyncs, and Snapshot/SnapshotQuery serve consistent reads that never
// block writers.
func Open(path string, poolPages int) (*Database, error) {
	p, err := pager.Open(path, poolPages)
	if err != nil {
		return nil, err
	}
	// Recover + attach the WAL first so the page file reflects every
	// durable commit before the catalog is read or the file is mapped.
	if err := p.EnableWAL(); err != nil {
		p.Close()
		return nil, err
	}
	// Best-effort zero-copy reads: map the file so clean pages are
	// served straight from the mapping instead of copied into pool
	// frames. Unsupported platforms/builds just keep the pool path.
	_ = p.EnableMmap()
	return openWithPager(p, path, poolPages, nil)
}

// OpenWithPager builds a database over an already-open pager — the
// seam the fault-injection and crash-point suites use to run the full
// stack over torn, failing, or snapshotted backends. The pager is
// closed if the catalog cannot be loaded. Sharded relations cannot be
// reopened through this seam unless their page files sit beside a
// file-backed pager's path; use OpenWithPagerShards to inject shard
// backends explicitly.
func OpenWithPager(p *pager.Pager) (*Database, error) {
	return openWithPager(p, "", 0, nil)
}

// OpenWithPagerShards is OpenWithPager with an explicit shard-pager
// factory: the catalog reload asks it for (relation, shard) pagers
// instead of opening files beside the main path. The crash-point and
// fault-injection suites use it to reopen sharded databases over
// snapshotted or failing shard backends. The factory owns recovery
// (EnableWAL) of whatever it returns; pagers it hands over are closed
// by the Database.
func OpenWithPagerShards(p *pager.Pager, factory func(rel string, shard int, mustExist bool) (*pager.Pager, error)) (*Database, error) {
	return openWithPager(p, "", 0, factory)
}

func openWithPager(p *pager.Pager, path string, poolPages int, factory func(rel string, shard int, mustExist bool) (*pager.Pager, error)) (*Database, error) {
	db := &Database{
		pager:         p,
		relations:     make(map[string]*relation.Relation),
		pictures:      make(map[string]*picture.Picture),
		locations:     make(map[string]geom.Rect),
		path:          path,
		poolPages:     poolPages,
		shardPagers:   make(map[string][]*pager.Pager),
		newShardPager: factory,
	}
	db.exec = psql.NewExecutor(db)
	if err := db.ensureSuperblock(); err != nil {
		p.Close()
		return nil, err
	}
	if err := db.loadCatalog(); err != nil {
		db.closeShardPagers()
		p.Close()
		return nil, fmt.Errorf("pictdb: loading catalog: %w", err)
	}
	return db, nil
}

// ShardPath returns the page file holding shard s of relation rel for
// a database whose main file is at path. Each shard's WAL rides at the
// usual "+.wal" suffix of this path.
func ShardPath(path, rel string, shard int) string {
	return fmt.Sprintf("%s.%s.s%d", path, rel, shard)
}

// openShardPager opens (or creates) the pager for one shard of rel,
// with WAL recovery and best-effort mmap, mirroring Open's main-file
// setup. mustExist guards the reopen path: a catalog that names a
// shard whose file is gone is reported as such, not silently
// re-created empty.
func (db *Database) openShardPager(rel string, shard int, mustExist bool) (*pager.Pager, error) {
	if db.newShardPager != nil {
		return db.newShardPager(rel, shard, mustExist)
	}
	if db.path == "" {
		return pager.OpenMem(1024), nil
	}
	sp := ShardPath(db.path, rel, shard)
	if mustExist {
		if _, err := os.Stat(sp); err != nil {
			return nil, fmt.Errorf("pictdb: relation %q shard %d: missing page file %s: %w", rel, shard, sp, err)
		}
	}
	pool := db.poolPages
	if pool <= 0 {
		pool = 1024
	}
	p, err := pager.Open(sp, pool)
	if err != nil {
		return nil, fmt.Errorf("pictdb: relation %q shard %d: %w", rel, shard, err)
	}
	if err := p.EnableWAL(); err != nil {
		p.Close()
		return nil, fmt.Errorf("pictdb: relation %q shard %d: %w", rel, shard, err)
	}
	_ = p.EnableMmap()
	return p, nil
}

// closeShardPagers closes every shard pager (shards before the main
// file, so the catalog never outlives the pages it names). The first
// error is returned; all pagers are closed regardless.
func (db *Database) closeShardPagers() error {
	names := make([]string, 0, len(db.shardPagers))
	for name := range db.shardPagers {
		names = append(names, name)
	}
	sort.Strings(names)
	var first error
	for _, name := range names {
		for i, sp := range db.shardPagers[name] {
			if err := sp.Close(); err != nil && first == nil {
				first = fmt.Errorf("pictdb: closing relation %q shard %d: %w", name, i, err)
			}
		}
	}
	db.shardPagers = make(map[string][]*pager.Pager)
	return first
}

// forEachShardPager visits every shard pager in deterministic
// (relation name, shard) order.
func (db *Database) forEachShardPager(fn func(rel string, shard int, p *pager.Pager) error) error {
	names := make([]string, 0, len(db.shardPagers))
	for name := range db.shardPagers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for i, sp := range db.shardPagers[name] {
			if err := fn(name, i, sp); err != nil {
				return err
			}
		}
	}
	return nil
}

// OpenChecked opens the database at path and runs a full verification
// pass (Database.Check). When verification finds problems the database
// is degraded to read-only — it keeps serving queries over whatever
// loaded cleanly but refuses writes — and the report says why. The
// error is non-nil only when the file cannot be opened at all (bad
// magic, corrupt header or catalog).
func OpenChecked(path string, poolPages int) (*Database, *CheckReport, error) {
	return OpenCheckedParallel(path, poolPages, 1)
}

// OpenCheckedParallel is OpenChecked with the verification pass fanned
// out over par workers — sharded relations have their shard files
// checked concurrently (the report is identical at any par).
func OpenCheckedParallel(path string, poolPages, par int) (*Database, *CheckReport, error) {
	db, err := Open(path, poolPages)
	if err != nil {
		return nil, nil, err
	}
	report := db.CheckParallel(par)
	if !report.OK() {
		db.SetReadOnly(true)
	}
	return db, report, nil
}

// openRelation reopens a persisted relation (catalog reload path).
func openRelation(db *Database, name string, schema Schema, first pager.PageID) (*Relation, error) {
	return relation.Open(db.pager, name, schema, first)
}

// Close drains in-flight background spatial repacks, then flushes
// (with the ordered commit barrier) and closes the underlying storage:
// shard files first, then the main file, so the surviving catalog only
// ever names shard pages that were durably closed.
func (db *Database) Close() error {
	db.WaitRepacks()
	err := db.closeShardPagers()
	if cerr := db.pager.Close(); err == nil {
		err = cerr
	}
	return err
}

// WaitRepacks blocks until no spatial index in any relation has a
// background repack in flight — the quiesce point tests and
// checkpoints use before inspecting index structure.
func (db *Database) WaitRepacks() {
	for _, rel := range db.relations {
		rel.WaitRepacks()
	}
}

// SetSpatialWritePolicy sets the write policy on every spatial index
// of every relation (and future indexes of existing relations):
// WriteDelta (default) or WriteInPlace.
func (db *Database) SetSpatialWritePolicy(p SpatialWritePolicy) {
	for _, rel := range db.relations {
		rel.SetSpatialWritePolicy(p)
	}
}

// Commit flushes every dirty page, syncs them, and only then writes
// and syncs the file header — the explicit durability barrier. Data
// committed here survives a crash; a crash mid-commit leaves the
// previous header in effect. With the WAL (file-backed databases),
// Commit appends to the log with a single group fsync instead; the
// page file catches up at the next checkpoint. Sharded relations
// commit first — every shard's WAL fsyncs in parallel — and the main
// file (which holds the catalog naming those shard pages) commits
// after them, so a crash between the two phases loses at most the
// not-yet-acknowledged transaction, never an acked one.
func (db *Database) Commit() error {
	if err := db.commitShards(); err != nil {
		return err
	}
	return db.pager.Commit()
}

// commitShards commits every sharded relation's shard pagers, each
// relation's shards in parallel.
func (db *Database) commitShards() error {
	names := make([]string, 0, len(db.relations))
	for name, rel := range db.relations {
		if rel.Sharded() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := db.relations[name].CommitShards(); err != nil {
			return err
		}
	}
	return nil
}

// Write applies fn as one serialized, durably committed transaction:
// writers take turns mutating (relations are not internally locked),
// each mutation is bracketed against the WAL capture so a commit batch
// never contains half of it, and the commit is acknowledged only once
// its log records are fsynced. Concurrent Write calls group-commit —
// their batches share fsyncs — so total commit throughput rises with
// writer count instead of serializing one fsync each. When fn returns
// an error nothing is committed and the error is returned (already
// applied mutations are not rolled back in memory; callers treat a
// failed Write as fatal for the handle, matching Commit's contract).
func (db *Database) Write(fn func() error) error {
	if db.readOnly {
		return fmt.Errorf("pictdb: write: %w", pager.ErrReadOnly)
	}
	db.wmu.Lock()
	db.pager.BeginWrite()
	_ = db.forEachShardPager(func(_ string, _ int, p *pager.Pager) error {
		p.BeginWrite()
		return nil
	})
	err := fn()
	_ = db.forEachShardPager(func(_ string, _ int, p *pager.Pager) error {
		p.EndWrite()
		return nil
	})
	db.pager.EndWrite()
	db.wmu.Unlock()
	if err != nil {
		return err
	}
	return db.Commit()
}

// Snapshot returns a read-only Database pinned to the last durably
// committed generation: queries against it see exactly that
// generation's rows — never a torn root, never an in-progress write —
// and never block writers. The snapshot holds WAL checkpoints back
// while open; Close it promptly. Requires the WAL (file-backed opens)
// and a committed catalog.
func (db *Database) Snapshot() (*Database, error) {
	for name, rel := range db.relations {
		if rel.Sharded() {
			return nil, fmt.Errorf("pictdb: snapshot: relation %q is sharded; snapshots cover only the main page file", name)
		}
	}
	snap, err := db.pager.BeginSnapshot()
	if err != nil {
		return nil, err
	}
	if snap.NumPages() <= int(superblockID) {
		snap.Release()
		return nil, fmt.Errorf("pictdb: snapshot: no committed catalog yet")
	}
	sp, err := pager.OpenBackend(snap.Backend(), 1024)
	if err != nil {
		snap.Release()
		return nil, fmt.Errorf("pictdb: snapshot: %w", err)
	}
	sp.SetReadOnly(true)
	// OpenWithPager rebuilds the in-memory indexes from the snapshot's
	// heaps; on failure it closes sp, whose backend Close releases the
	// snapshot pin.
	sdb, err := OpenWithPager(sp)
	if err != nil {
		return nil, fmt.Errorf("pictdb: snapshot: %w", err)
	}
	sdb.readOnly = true
	return sdb, nil
}

// SnapshotQuery runs one PSQL mapping against a fresh snapshot of the
// last committed generation, releasing the snapshot before returning.
// The result is row-for-row identical to running Query on a quiesced
// database at that generation.
func (db *Database) SnapshotQuery(src string) (*Result, error) {
	sdb, err := db.Snapshot()
	if err != nil {
		return nil, err
	}
	defer sdb.Close()
	return sdb.Query(src)
}

// WALStats reports write-ahead log activity (zero value when no WAL is
// enabled — in-memory databases).
func (db *Database) WALStats() pager.WALStats { return db.pager.WALStats() }

// CheckpointWAL forces the WAL's committed page images into the page
// file and truncates the log — shard files first, then the main file.
// Fails while snapshots are open.
func (db *Database) CheckpointWAL() error {
	if err := db.forEachShardPager(func(rel string, shard int, p *pager.Pager) error {
		if err := p.CheckpointWAL(); err != nil {
			return fmt.Errorf("pictdb: checkpoint relation %q shard %d: %w", rel, shard, err)
		}
		return nil
	}); err != nil {
		return err
	}
	return db.pager.CheckpointWAL()
}

// SetReadOnly degrades the database to read-only: relation and picture
// definition, checkpointing, and all pager writes fail, while queries
// keep running. OpenChecked applies it automatically when verification
// fails.
func (db *Database) SetReadOnly(ro bool) {
	db.readOnly = ro
	db.pager.SetReadOnly(ro)
	_ = db.forEachShardPager(func(_ string, _ int, p *pager.Pager) error {
		p.SetReadOnly(ro)
		return nil
	})
}

// ReadOnly reports whether the database refuses writes.
func (db *Database) ReadOnly() bool { return db.readOnly }

// NumPages reports the size of the underlying page file in pages.
func (db *Database) NumPages() int { return db.pager.NumPages() }

// CreateRelation defines a new relation.
func (db *Database) CreateRelation(name string, schema Schema) (*Relation, error) {
	if db.readOnly {
		return nil, fmt.Errorf("pictdb: create relation %q: %w", name, pager.ErrReadOnly)
	}
	if _, dup := db.relations[name]; dup {
		return nil, fmt.Errorf("pictdb: relation %q already exists", name)
	}
	rel, err := relation.New(db.pager, name, schema)
	if err != nil {
		return nil, err
	}
	db.relations[name] = rel
	return rel, nil
}

// CreateShardedRelation defines a relation sharded across `shards`
// dedicated page files (each with its own pager, WAL, buffer pool, and
// LSM spatial write side), routed by Hilbert key range. The relation
// behaves as one logical table: queries scatter to overlapping shards
// and gather in canonical order, bit-identical to an unsharded
// relation. For a file-backed database shard s lives at
// ShardPath(path, name, s); in-memory databases get in-memory shards.
func (db *Database) CreateShardedRelation(name string, schema Schema, shards int) (*Relation, error) {
	if db.readOnly {
		return nil, fmt.Errorf("pictdb: create relation %q: %w", name, pager.ErrReadOnly)
	}
	if _, dup := db.relations[name]; dup {
		return nil, fmt.Errorf("pictdb: relation %q already exists", name)
	}
	if shards < 1 || shards > relation.MaxShards {
		return nil, fmt.Errorf("pictdb: create relation %q: shard count %d out of range [1, %d]", name, shards, relation.MaxShards)
	}
	pagers := make([]*pager.Pager, 0, shards)
	fail := func(err error) (*Relation, error) {
		for _, sp := range pagers {
			sp.Close()
		}
		return nil, err
	}
	for i := 0; i < shards; i++ {
		sp, err := db.openShardPager(name, i, false)
		if err != nil {
			return fail(err)
		}
		pagers = append(pagers, sp)
	}
	rel, err := relation.NewSharded(pagers, name, schema)
	if err != nil {
		return fail(err)
	}
	db.relations[name] = rel
	db.shardPagers[name] = pagers
	return rel, nil
}

// openShardedRelation reopens a persisted sharded relation (catalog
// reload path). Shard pagers open concurrently, so each shard's WAL
// recovery — replay through the last durable commit, torn-tail
// truncation — proceeds in parallel across shard files.
func (db *Database) openShardedRelation(name string, schema Schema, firsts []pager.PageID, ranges []relation.KeyRange) (*Relation, error) {
	n := len(firsts)
	pagers := make([]*pager.Pager, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range pagers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pagers[i], errs[i] = db.openShardPager(name, i, true)
		}(i)
	}
	wg.Wait()
	fail := func(err error) (*Relation, error) {
		for _, sp := range pagers {
			if sp != nil {
				sp.Close()
			}
		}
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return fail(err)
		}
	}
	rel, err := relation.OpenSharded(pagers, name, schema, firsts, ranges)
	if err != nil {
		return fail(err)
	}
	db.shardPagers[name] = pagers
	return rel, nil
}

// SplitShard splits one shard of a sharded relation at its Hilbert
// occupancy median, migrating the upper half into a new sidecar shard
// file, and returns the new shard's index. The split is crash-safe at
// every fsync boundary:
//
//  1. The relation-level split copies tuples into the new shard and
//     atomically reroutes them; the source's records are NOT yet
//     deleted, so every tuple has at least one durable copy throughout.
//  2. The new shard's pager commits, then Checkpoint persists a catalog
//     naming the new shard file and the narrowed key ranges. A crash
//     before the checkpoint's flush reopens under the old catalog,
//     which never mentions the new shard — clean.
//  3. FinishSplit deletes the migrated records from the source shard
//     and the source's pager commits. A crash before this commit leaves
//     byte-identical duplicates in source and destination, which reopen
//     detects via the rebuilt route table and repairs in favor of the
//     destination copy.
//
// Concurrent reads see bit-identical results throughout; the caller
// must hold off concurrent Write transactions (Database.Write already
// serializes them via wmu when routed through SplitShard's Rebalance
// wrapper).
func (db *Database) SplitShard(name string, shard int) (int, error) {
	if db.readOnly {
		return 0, fmt.Errorf("pictdb: split shard: %w", pager.ErrReadOnly)
	}
	rel := db.relations[name]
	if rel == nil {
		return 0, fmt.Errorf("pictdb: split shard: unknown relation %q", name)
	}
	if !rel.Sharded() {
		return 0, fmt.Errorf("pictdb: split shard: relation %q is not sharded", name)
	}
	pgr, err := db.openShardPager(name, rel.ShardCount(), false)
	if err != nil {
		return 0, err
	}
	dst, pending, err := rel.SplitShard(shard, pgr)
	if err != nil {
		pgr.Close()
		return 0, err
	}
	db.shardPagers[name] = append(db.shardPagers[name], pgr)
	// Destination before catalog before source cleanup — the crash-safety
	// ordering documented above. Checkpoint internally commits every
	// shard (including the new one) before flushing the snapshot.
	if err := db.Checkpoint(); err != nil {
		return 0, err
	}
	if err := rel.FinishSplit(pending); err != nil {
		return 0, err
	}
	if err := rel.ShardPager(shard).Commit(); err != nil {
		return 0, err
	}
	return dst, nil
}

// Rebalance splits the most loaded shard of the named relation while
// its imbalance factor (largest shard over the mean) is at least
// factor and the shard holds at least minTuples tuples, up to
// MaxShards. It returns how many splits were performed. Factor values
// at or below 1 are clamped to 1.5 — a relation can never get below
// 1.0, so lower thresholds would split forever.
func (db *Database) Rebalance(name string, factor float64, minTuples int) (int, error) {
	if factor <= 1 {
		factor = 1.5
	}
	rel := db.relations[name]
	if rel == nil {
		return 0, fmt.Errorf("pictdb: rebalance: unknown relation %q", name)
	}
	splits := 0
	for rel.ShardCount() < relation.MaxShards {
		shard, ok := rel.MostLoadedShard(factor, minTuples)
		if !ok {
			break
		}
		if _, err := db.SplitShard(name, shard); err != nil {
			if errors.Is(err, relation.ErrShardNotSplittable) {
				break
			}
			return splits, err
		}
		splits++
	}
	return splits, nil
}

// CreatePicture defines a new picture covering extent.
func (db *Database) CreatePicture(name string, extent Rect) (*Picture, error) {
	if db.readOnly {
		return nil, fmt.Errorf("pictdb: create picture %q: %w", name, pager.ErrReadOnly)
	}
	if _, dup := db.pictures[name]; dup {
		return nil, fmt.Errorf("pictdb: picture %q already exists", name)
	}
	p := picture.New(name, extent)
	db.pictures[name] = p
	return p, nil
}

// DefineLocation names a constant area usable in at-clauses — the
// paper's locations "predefined outside the retrieve mapping".
func (db *Database) DefineLocation(name string, area Rect) {
	db.locations[name] = area
}

// Relation implements psql.Catalog.
func (db *Database) Relation(name string) (*relation.Relation, bool) {
	r, ok := db.relations[name]
	return r, ok
}

// RelationNames returns every relation name in sorted order — the
// enumeration the checker uses to report per-relation shard balance.
func (db *Database) RelationNames() []string {
	names := make([]string, 0, len(db.relations))
	for n := range db.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Picture implements psql.Catalog.
func (db *Database) Picture(name string) (*picture.Picture, bool) {
	p, ok := db.pictures[name]
	return p, ok
}

// Location implements psql.Catalog.
func (db *Database) Location(name string) (geom.Rect, bool) {
	r, ok := db.locations[name]
	return r, ok
}

// Query parses and executes a PSQL mapping, serving repeated query
// text through the executor's statement cache.
func (db *Database) Query(src string) (*Result, error) {
	return db.exec.Run(src)
}

// QueryNaive executes a PSQL mapping through the naive reference path:
// full scans and nested loops, no planner, cache, or batching. Rows
// are identical to Query's; it exists as the oracle the planned
// executor is tested against.
func (db *Database) QueryNaive(src string) (*Result, error) {
	return db.exec.RunNaive(src)
}

// Prepare parses a PSQL mapping whose single at-clause area literal
// becomes a per-execution window parameter — the fast path for
// repeated point-in-window queries.
func (db *Database) Prepare(src string) (*psql.Prepared, error) {
	return db.exec.Prepare(src)
}

// CacheStats reports the PSQL statement cache's counters.
func (db *Database) CacheStats() psql.CacheStats {
	return db.exec.CacheStats()
}

// SetParallelism caps the worker goroutines the executor uses for
// multi-window direct search and join materialization. Zero or
// negative restores the default, runtime.GOMAXPROCS(0). Results are
// identical at any setting.
func (db *Database) SetParallelism(n int) {
	db.exec.Parallelism = n
}

// RegisterFunc installs an application-defined PSQL function.
func (db *Database) RegisterFunc(name string, f psql.Func) {
	db.exec.RegisterFunc(name, f)
}

// Render draws the objects referenced by the result's loc pointers on
// their picture, clipped to window — the graphical half of the paper's
// two output devices. All locs must reference the same picture; locs
// referencing other pictures are skipped.
func (db *Database) Render(res *Result, pictureName string, window Rect) (string, error) {
	pic, ok := db.pictures[pictureName]
	if !ok {
		return "", fmt.Errorf("pictdb: unknown picture %q", pictureName)
	}
	var objs []picture.Object
	seen := map[picture.ObjectID]bool{}
	for _, loc := range res.Locs {
		if loc.Picture != pictureName || seen[loc.Object] {
			continue
		}
		seen[loc.Object] = true
		if o, ok := pic.Get(loc.Object); ok {
			objs = append(objs, o)
		}
	}
	return picture.DefaultRenderer().Render(window, objs), nil
}
