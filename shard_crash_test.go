package pictdb_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	pictdb "repro"
	"repro/internal/pager"
	"repro/internal/storage"
)

// Crash coverage for Hilbert-range sharding: a sharded commit fans out
// over independent per-shard WALs before the main file (which holds
// the catalog) commits. A CrashCluster captures a globally consistent
// byte image of every member file at every sync barrier — including
// the windows between two shards' commits — and each image must
// recover with every shard replayed independently, no acknowledged
// commit lost, and Database.Check clean.

// openClusterDB opens the full sharded database stack over one
// backend per member: member 0 is the main file, members i+1 the
// shards of the single sharded relation. walFault, when non-nil, wraps
// the given shard's WAL backend (fault injection on one shard's log).
func openClusterDB(t *testing.T, mains, wals []pager.Backend, pool int) (*pictdb.Database, error) {
	t.Helper()
	p, err := pager.OpenBackend(mains[0], pool)
	if err != nil {
		return nil, err
	}
	if err := p.EnableWALBackend(wals[0]); err != nil {
		p.Close()
		return nil, err
	}
	factory := func(rel string, shard int, mustExist bool) (*pager.Pager, error) {
		if shard+1 >= len(mains) {
			return nil, fmt.Errorf("no backend for relation %q shard %d", rel, shard)
		}
		sp, err := pager.OpenBackend(mains[shard+1], pool)
		if err != nil {
			return nil, err
		}
		if err := sp.EnableWALBackend(wals[shard+1]); err != nil {
			sp.Close()
			return nil, err
		}
		return sp, nil
	}
	return pictdb.OpenWithPagerShards(p, factory)
}

func clusterBackends(cluster *pager.CrashCluster) (mains, wals []pager.Backend) {
	for i := 0; i < cluster.Members(); i++ {
		mains = append(mains, cluster.Main(i))
		wals = append(wals, cluster.WAL(i))
	}
	return
}

func imageBackends(img pager.ClusterImage) (mains, wals []pager.Backend) {
	for _, m := range img.Members {
		mains = append(mains, pager.NewMemBackend(m.Main))
		wals = append(wals, pager.NewMemBackend(m.WAL))
	}
	return
}

// TestShardedCrashPointsWithRecovery sweeps every coordinated crash
// image of a sharded workload. Because shards commit independently, a
// crash mid-commit may persist the in-flight transaction on some
// shards and not others — that partial state is legal for un-acked
// rows. The invariants are: (1) recovery succeeds and Check is clean
// from every image, (2) every acknowledged row is present (no acked
// commit lost), (3) recovered rows are a duplicate-free subset of the
// rows ever inserted.
func TestShardedCrashPointsWithRecovery(t *testing.T) {
	const shards = 3
	cluster := pager.NewCrashCluster(1 + shards)
	var ackedRows atomic.Int64
	ackedAt := make(map[int]int64)
	cluster.OnSync = func(i int, _ pager.ClusterImage) {
		ackedAt[i] = ackedRows.Load() // OnSync is serialized by the cluster
	}

	mains, wals := clusterBackends(cluster)
	db, err := openClusterDB(t, mains, wals, 64)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.CreateShardedRelation("pts", pictdb.MustSchema("name:string", "n:int"), shards)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 25; i++ {
			if _, err := rel.Insert(pictdb.Tuple{pictdb.S(fmt.Sprintf("p%d", n)), pictdb.I(int64(n))}); err != nil {
				t.Fatal(err)
			}
			n++
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db.Commit(); err != nil { // shards first, then main
			t.Fatal(err)
		}
		ackedRows.Store(int64(n))
		if round == 2 {
			// Exercise recovery across per-shard WAL checkpoint
			// boundaries too.
			if err := db.CheckpointWAL(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	images := cluster.Images()
	if len(images) < 3*shards {
		t.Fatalf("only %d crash images captured", len(images))
	}
	for i, img := range images {
		mains, wals := imageBackends(img)
		db2, err := openClusterDB(t, mains, wals, 64)
		if err != nil {
			t.Fatalf("image %d: recovery failed: %v", i, err)
		}
		report := db2.Check()
		if !report.OK() {
			t.Fatalf("image %d: not Check-clean after recovery: %v", i, report.Err())
		}
		seen := make(map[int64]bool)
		if rel2, ok := db2.Relation("pts"); ok {
			err := rel2.Scan(func(_ storage.TupleID, tup pictdb.Tuple) bool {
				v := tup[1].Int
				if seen[v] {
					t.Fatalf("image %d: row %d recovered twice", i, v)
				}
				seen[v] = true
				return true
			})
			if err != nil {
				t.Fatalf("image %d: scan: %v", i, err)
			}
		}
		for v := int64(0); v < ackedAt[i]; v++ {
			if !seen[v] {
				t.Fatalf("image %d: acked row %d lost (recovered %d rows, %d acked)", i, v, len(seen), ackedAt[i])
			}
		}
		for v := range seen {
			if v < 0 || v >= int64(n) {
				t.Fatalf("image %d: recovered row %d was never inserted", i, v)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("image %d: close: %v", i, err)
		}
	}
	t.Logf("replayed %d coordinated cluster crash images clean (%d shards)", len(images), shards)
}

// TestShardedCrashTornShardWAL repeats the sweep with a lying medium
// under ONE shard's WAL: its Nth append-region write persists only a
// prefix while reporting success. Damage must stay contained to that
// shard and never be silent: every crash image either recovers
// Check-clean with the subset/no-dup invariants holding, or refuses or
// degrades with a typed corruption error.
func TestShardedCrashTornShardWAL(t *testing.T) {
	const shards = 2
	for _, tornAt := range []int{1, 2, 4, 7} {
		tornAt := tornAt
		t.Run(fmt.Sprintf("tornAppend=%d", tornAt), func(t *testing.T) {
			cluster := pager.NewCrashCluster(1 + shards)
			mains, wals := clusterBackends(cluster)
			// Fault the last shard's WAL.
			wals[shards] = pager.NewFaultBackend(wals[shards], pager.FaultConfig{TornAppend: tornAt})
			db, err := openClusterDB(t, mains, wals, 64)
			if err != nil {
				if !pictdb.IsCorruption(err) {
					t.Fatalf("open failed untyped: %v", err)
				}
				return
			}
			rel, err := db.CreateShardedRelation("pts", pictdb.MustSchema("name:string", "n:int"), shards)
			if err != nil {
				t.Fatal(err)
			}
			n := 0
		workload:
			for round := 0; round < 5; round++ {
				for i := 0; i < 10; i++ {
					if _, err := rel.Insert(pictdb.Tuple{pictdb.S(fmt.Sprintf("p%d", n)), pictdb.I(int64(n))}); err != nil {
						if !pictdb.IsCorruption(err) {
							t.Fatalf("insert failed untyped: %v", err)
						}
						break workload
					}
					n++
				}
				if err := db.Checkpoint(); err != nil {
					if !pictdb.IsCorruption(err) {
						t.Fatalf("checkpoint failed untyped: %v", err)
					}
					break workload
				}
				if err := db.Commit(); err != nil {
					// A torn append surfaces at the commit fsync of the
					// damaged shard; any error here ends the workload.
					break workload
				}
			}
			_ = db.Close() // may fail over the damaged log; the images matter

			for i, img := range cluster.Images() {
				mains, wals := imageBackends(img)
				db2, err := openClusterDB(t, mains, wals, 64)
				if err != nil {
					if !pictdb.IsCorruption(err) {
						t.Fatalf("image %d: recovery failed untyped: %v", i, err)
					}
					continue // refused, typed: detected
				}
				report := db2.Check()
				if !report.OK() {
					if !pictdb.IsCorruption(report.Err()) {
						t.Fatalf("image %d: degraded untyped: %v", i, report.Err())
					}
					db2.Close()
					continue // degraded, typed: detected
				}
				seen := make(map[int64]bool)
				if rel2, ok := db2.Relation("pts"); ok {
					err := rel2.Scan(func(_ storage.TupleID, tup pictdb.Tuple) bool {
						v := tup[1].Int
						if seen[v] {
							t.Fatalf("image %d: row %d recovered twice", i, v)
						}
						seen[v] = true
						return true
					})
					if err != nil && !pictdb.IsCorruption(err) {
						t.Fatalf("image %d: scan failed untyped: %v", i, err)
					}
				}
				for v := range seen {
					if v < 0 || v >= int64(n) {
						t.Fatalf("image %d: recovered row %d was never inserted — silent damage", i, v)
					}
				}
				db2.Close()
			}
		})
	}
}
