package pictdb_test

import (
	"fmt"
	"sort"
	"testing"

	pictdb "repro"
	"repro/internal/pager"
	"repro/internal/storage"
)

// spatialCrashWorkload drives a spatially indexed relation through
// insert/delete bursts sized to keep background repacks in flight
// (delta threshold 32, bursts of ~100), checkpointing after each burst.
// It returns the tuple counts a recovered image may legitimately show:
// every successfully checkpointed state, plus every state a checkpoint
// or close *attempted* — under fault injection a barrier that errors
// may still have landed (fail-stop leaves it indeterminate), and a
// successful Close persists heap pages of the tail state.
func spatialCrashWorkload(t *testing.T, db *pictdb.Database) map[int]bool {
	t.Helper()
	pic, err := db.CreatePicture("map", pictdb.R(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.CreateRelation("cities", pictdb.MustSchema("name:string", "loc:loc"))
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[int]bool{}
	n := 0
	var ids []storage.TupleID
	add := func() error {
		oid := pic.AddPoint(fmt.Sprintf("c%d", n), pictdb.Pt(float64(n%997), float64((n*37)%991)))
		id, err := rel.Insert(pictdb.Tuple{pictdb.S(fmt.Sprintf("c%d", n)), pictdb.L("map", oid)})
		if err != nil {
			return err
		}
		ids = append(ids, id)
		n++
		return nil
	}
	bail := func() map[int]bool {
		// The tail state may still reach disk through Close.
		allowed[rel.Len()] = true
		return allowed
	}
	for i := 0; i < 150; i++ {
		if err := add(); err != nil {
			return bail()
		}
	}
	if err := rel.AttachPicture(pic, pictdb.PackOptions{}); err != nil {
		t.Fatal(err)
	}
	// Small threshold: every burst below crosses it several times, so
	// checkpoints run with repacks in flight or freshly swapped.
	rel.Spatial("map").SetDeltaThreshold(32)
	allowed[rel.Len()] = true // attempted
	if err := db.Checkpoint(); err != nil {
		return allowed
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			if err := add(); err != nil {
				return bail()
			}
		}
		// A few deletes so tombstones cross repacks too.
		for i := 0; i < 10 && len(ids) > 0; i++ {
			id := ids[0]
			ids = ids[1:]
			if err := rel.Delete(id); err != nil {
				return bail()
			}
		}
		allowed[rel.Len()] = true // attempted
		if err := db.Checkpoint(); err != nil {
			return allowed
		}
	}
	return allowed
}

// verifySpatialRecovery opens a crash image and, when it verifies
// clean, requires the rebuilt spatial index to agree exactly with the
// committed heap: a full-window direct search returns every live tuple
// in canonical order — the recovered root is the old or the new tree,
// never a torn one. Returns the recovery outcome.
func verifySpatialRecovery(t *testing.T, img []byte, committed map[int]bool, label string) (clean, degraded, refused bool) {
	t.Helper()
	p, err := pager.OpenBackend(pager.NewMemBackend(img), 128)
	if err != nil {
		if !pictdb.IsCorruption(err) {
			t.Fatalf("%s: pager open failed untyped: %v", label, err)
		}
		return false, false, true
	}
	db, err := pictdb.OpenWithPager(p)
	if err != nil {
		if !pictdb.IsCorruption(err) {
			t.Fatalf("%s: open failed untyped: %v", label, err)
		}
		return false, false, true
	}
	defer db.Close()
	report := db.Check()
	if !report.OK() {
		if !pictdb.IsCorruption(report.Err()) {
			t.Fatalf("%s: report error not typed: %v", label, report.Err())
		}
		return false, true, false
	}
	rel, ok := db.Relation("cities")
	if !ok {
		// Crash before the first catalog checkpoint: an empty database
		// is the committed state 0.
		return true, false, false
	}
	if len(committed) > 0 && !committed[rel.Len()] {
		t.Fatalf("%s: clean open with %d tuples, not a committed state %v", label, rel.Len(), committed)
	}
	if rel.Spatial("map") == nil {
		// Committed before AttachPicture was checkpointed.
		return true, false, false
	}
	gotIDs, _, err := rel.SearchArea("map", pictdb.R(0, 0, 1000, 1000), func(obj, win pictdb.Rect) bool { return true })
	if err != nil {
		t.Fatalf("%s: search on recovered index: %v", label, err)
	}
	var wantIDs []storage.TupleID
	if err := rel.Scan(func(id storage.TupleID, _ pictdb.Tuple) bool {
		wantIDs = append(wantIDs, id)
		return true
	}); err != nil {
		t.Fatalf("%s: scan: %v", label, err)
	}
	// Heap chain order can deviate from (page, slot) order once freed
	// catalog pages are reused; the index contract is canonical id
	// order, so sort the oracle the same way.
	sort.Slice(wantIDs, func(i, j int) bool {
		if wantIDs[i].Page != wantIDs[j].Page {
			return wantIDs[i].Page < wantIDs[j].Page
		}
		return wantIDs[i].Slot < wantIDs[j].Slot
	})
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("%s: recovered index has %d entries, heap %d", label, len(gotIDs), len(wantIDs))
	}
	for i := range gotIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("%s: recovered index order diverges at %d: %v vs %v", label, i, gotIDs[i], wantIDs[i])
		}
	}
	return true, false, false
}

// TestCrashMidRepackRecovers captures the byte image at every sync
// while background repacks churn against the ingest workload, and
// reopens each image. A crash mid-repack must recover to a consistent
// index — the one rebuilt from the committed heap — never a torn tree.
func TestCrashMidRepackRecovers(t *testing.T) {
	snap := pager.NewSnapshotBackend()
	p, err := pager.OpenBackend(snap, 128)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pictdb.OpenWithPager(p)
	if err != nil {
		t.Fatal(err)
	}
	committed := spatialCrashWorkload(t, db)
	if len(committed) < 3 {
		t.Fatalf("workload committed only %d states", len(committed))
	}
	rel, _ := db.Relation("cities")
	rel.WaitRepacks()
	if rel.Spatial("map").Repacks() == 0 {
		t.Fatal("workload triggered no background repacks; crash points miss the repack window")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	var clean, degraded, refused int
	for i, img := range snap.Snapshots() {
		c, d, r := verifySpatialRecovery(t, img, committed, fmt.Sprintf("snapshot %d", i))
		if c {
			clean++
		}
		if d {
			degraded++
		}
		if r {
			refused++
		}
	}
	if clean == 0 {
		t.Fatal("no snapshot recovered clean")
	}
	t.Logf("spatial crash points: %d clean, %d degraded, %d refused", clean, degraded, refused)
}

// TestFaultMidRepackCommit injects write failures at a sweep of
// ordinals across the same repack-heavy workload, then reopens the
// surviving byte image: every outcome must be clean-with-committed-
// state, degraded-with-typed-report, or refused-with-typed-error, and
// clean opens must pass the index/heap agreement check.
func TestFaultMidRepackCommit(t *testing.T) {
	// Dry run to size the ordinal sweep.
	probe := pager.NewFaultBackend(pager.NewMemBackend(nil), pager.FaultConfig{})
	p, err := pager.OpenBackend(probe, 128)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pictdb.OpenWithPager(p)
	if err != nil {
		t.Fatal(err)
	}
	spatialCrashWorkload(t, db)
	db.Close()
	_, writes, _ := probe.Ops()
	if writes < 20 {
		t.Fatalf("dry run performed only %d writes", writes)
	}
	step := writes / 12
	if step == 0 {
		step = 1
	}
	for k := 1; k <= writes; k += step {
		mem := pager.NewMemBackend(nil)
		fb := pager.NewFaultBackend(mem, pager.FaultConfig{FailWrite: k})
		p, err := pager.OpenBackend(fb, 128)
		if err != nil {
			continue // injected before the file header existed
		}
		db, err := pictdb.OpenWithPager(p)
		if err != nil {
			p.Close()
			continue
		}
		committed := spatialCrashWorkload(t, db)
		db.Close() // may fail; the image below is what a crash leaves
		verifySpatialRecovery(t, mem.Bytes(), committed, fmt.Sprintf("fail-write %d", k))
	}
}
