package pictdb_test

import (
	"fmt"

	pictdb "repro"
)

// ExampleDatabase_Query demonstrates the paper's §2.2 direct spatial
// search: select on the picture, qualify on the alphanumeric data.
func ExampleDatabase_Query() {
	db := pictdb.New()
	defer db.Close()

	pic, _ := db.CreatePicture("plan", pictdb.R(0, 0, 100, 100))
	rel, _ := db.CreateRelation("sites", pictdb.MustSchema(
		"name:string", "grade:int", "loc:loc"))
	for _, s := range []struct {
		name  string
		grade int64
		x, y  float64
	}{
		{"north-a", 9, 20, 80},
		{"north-b", 3, 60, 90},
		{"south-a", 8, 30, 20},
		{"south-b", 7, 70, 10},
	} {
		oid := pic.AddPoint(s.name, pictdb.Pt(s.x, s.y))
		rel.Insert(pictdb.Tuple{pictdb.S(s.name), pictdb.I(s.grade), pictdb.L("plan", oid)})
	}
	rel.AttachPicture(pic, pictdb.PackOptions{Method: pictdb.PackNN})

	res, err := db.Query(`
		select name, grade
		from   sites
		on     plan
		at     loc covered-by {50±50, 25±25}
		where  grade > 5
		order  by grade desc`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(res.Format())
	// Output:
	// name     grade
	// -------  -----
	// south-a  8
	// south-b  7
}

// ExamplePackIndex shows the spatial index on its own: the paper's
// Section 3 without the relational layer.
func ExamplePackIndex() {
	items := make([]pictdb.IndexItem, 0, 16)
	for i := 0; i < 16; i++ {
		p := pictdb.Pt(float64(i%4)*10, float64(i/4)*10)
		items = append(items, pictdb.IndexItem{Rect: p.Rect(), Data: int64(i)})
	}
	idx := pictdb.PackIndex(pictdb.DefaultRTreeParams(), items, pictdb.PackOptions{Method: pictdb.PackNN})

	found, _ := idx.Query(pictdb.R(0, 0, 10, 10))
	fmt.Printf("items in window: %d\n", len(found))
	m := idx.ComputeMetrics()
	fmt.Printf("depth %d, %d nodes, overlap %.0f\n", m.Depth, m.Nodes, m.Overlap)
	// Output:
	// items in window: 4
	// depth 1, 5 nodes, overlap 0
}
