package pictdb_test

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	pictdb "repro"
	"repro/internal/pager"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Rebalancing coverage (DESIGN.md §16): a shard split must be invisible
// to queries — bit-identical results before, during (the split hook
// fires mid-migration), and after — and its key-range layout must
// survive checkpoint/reopen. The crash matrix sweeps every fsync
// boundary of a split.

// TestShardSplitQueryOracle forces a split of the cities relation's
// most loaded shard and holds the sharded database against the
// unsharded twin (and its own naive executor) at parallelism 1 and 8,
// pre-split, mid-migration, and post-split.
func TestShardSplitQueryOracle(t *testing.T) {
	sdb, err := pictdb.BuildUSDatabaseSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	udb, err := pictdb.BuildUSDatabase()
	if err != nil {
		t.Fatal(err)
	}
	defer udb.Close()
	// Live write-side state on every shard, so the migration moves
	// L0/delta entries and tombstones too.
	mutateUSOrdered(t, sdb)
	mutateUSOrdered(t, udb)

	cities, _ := sdb.Relation("cities")
	verifyShardedAgainstUnsharded(t, sdb, udb, "pre-split")

	src, ok := cities.MostLoadedShard(1.0, 1)
	if !ok {
		t.Fatal("no splittable shard")
	}
	balBefore, _ := cities.ShardBalance()
	hookRuns := 0
	cities.SetSplitHook(func() {
		hookRuns++
		verifyShardedAgainstUnsharded(t, sdb, udb, "mid-migration")
	})
	dst, err := sdb.SplitShard("cities", src)
	if err != nil {
		t.Fatal(err)
	}
	cities.SetSplitHook(nil)
	if hookRuns != 1 {
		t.Fatalf("split hook ran %d times, want 1", hookRuns)
	}
	if cities.ShardCount() != 3 || dst != 2 {
		t.Fatalf("split produced shard %d of %d, want 2 of 3", dst, cities.ShardCount())
	}

	verifyShardedAgainstUnsharded(t, sdb, udb, "post-split")

	// The split actually moved tuples off the source shard.
	balAfter, _ := cities.ShardBalance()
	if balAfter[dst].Items == 0 {
		t.Fatal("split moved no tuples to the new shard")
	}
	if balAfter[src].Items >= balBefore[src].Items {
		t.Fatalf("source shard did not shrink: %d -> %d", balBefore[src].Items, balAfter[src].Items)
	}
	// The ranges partition: source's upper bound is the new shard's
	// lower bound, and the new shard inherited the old upper bound.
	if balAfter[src].KeyHi != balAfter[dst].KeyLo || balAfter[dst].KeyHi != balBefore[src].KeyHi {
		t.Fatalf("split ranges do not partition: src=[%d,%d) dst=[%d,%d), old src=[%d,%d)",
			balAfter[src].KeyLo, balAfter[src].KeyHi,
			balAfter[dst].KeyLo, balAfter[dst].KeyHi,
			balBefore[src].KeyLo, balBefore[src].KeyHi)
	}
	if report := sdb.Check(); !report.OK() {
		t.Fatalf("post-split Check: %v", report.Err())
	}

	// Inserts keep routing correctly against the rebalanced layout.
	mutateUSOrdered(t, sdb)
	mutateUSOrdered(t, udb)
	verifyShardedAgainstUnsharded(t, sdb, udb, "post-split-mutated")
}

// TestShardSplitPersistsAcrossReopen rebalances a skewed file-backed
// relation and checks the uneven key-range layout, the extra sidecar
// file, and every row survive close/reopen.
func TestShardSplitPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "skewed.pictdb")
	db, err := pictdb.Open(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreatePicture("map", workload.Frame); err != nil {
		t.Fatal(err)
	}
	pic, _ := db.Picture("map")
	rel, err := db.CreateShardedRelation("pts", pictdb.MustSchema("name:string", "loc:loc"), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Attach before inserting so the router sees Hilbert keys (not the
	// spatial-less hash fallback) and the skew actually lands on one
	// shard.
	if err := rel.AttachPicture(pic, pictdb.PackOptions{}); err != nil {
		t.Fatal(err)
	}
	skew, err := workload.ParseSkew("hot:0.9:0.1")
	if err != nil {
		t.Fatal(err)
	}
	pts := skew.Points(300, 77)
	for i, p := range pts {
		name := fmt.Sprintf("p%03d", i)
		oid := pic.AddPoint(name, p)
		if _, err := rel.Insert(pictdb.Tuple{pictdb.S(name), pictdb.L("map", oid)}); err != nil {
			t.Fatal(err)
		}
	}
	_, before := rel.ShardBalance()

	splits, err := db.Rebalance("pts", 1.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if splits == 0 {
		t.Fatal("hot:0.9:0.1 over 2 even shards triggered no split")
	}
	_, after := rel.ShardBalance()
	if after >= before {
		t.Fatalf("rebalancing did not improve imbalance: %.2f -> %.2f", before, after)
	}
	wantShards := rel.ShardCount()
	wantRanges := rel.ShardKeyRanges()
	var wantRows []string
	if err := rel.Scan(func(id storage.TupleID, tu pictdb.Tuple) bool {
		wantRows = append(wantRows, fmt.Sprintf("%v=%s", id, tu[0].Str))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := pictdb.Open(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rel2, ok := re.Relation("pts")
	if !ok {
		t.Fatal("relation lost across reopen")
	}
	if rel2.ShardCount() != wantShards {
		t.Fatalf("reopened with %d shards, want %d", rel2.ShardCount(), wantShards)
	}
	gotRanges := rel2.ShardKeyRanges()
	for i := range wantRanges {
		if gotRanges[i] != wantRanges[i] {
			t.Fatalf("shard %d range %v survived reopen as %v", i, wantRanges[i], gotRanges[i])
		}
	}
	var gotRows []string
	if err := rel2.Scan(func(id storage.TupleID, tu pictdb.Tuple) bool {
		gotRows = append(gotRows, fmt.Sprintf("%v=%s", id, tu[0].Str))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != len(wantRows) {
		t.Fatalf("reopened with %d rows, want %d", len(gotRows), len(wantRows))
	}
	for i := range wantRows {
		if gotRows[i] != wantRows[i] {
			t.Fatalf("row %d diverged across reopen: %s vs %s", i, gotRows[i], wantRows[i])
		}
	}
	if report := re.Check(); !report.OK() {
		t.Fatalf("reopened Check: %v", report.Err())
	}
}

// TestShardSplitCrashMatrix drives a skewed spatial workload through a
// shard split on a CrashCluster and replays every coordinated crash
// image — including the windows between the split's fsyncs (destination
// commit, catalog checkpoint, source cleanup commit). Every image must
// recover Check-clean with every acknowledged row present exactly once.
func TestShardSplitCrashMatrix(t *testing.T) {
	const shards = 2
	// Members: main file, the two initial shards, and the split's new
	// sidecar.
	cluster := pager.NewCrashCluster(1 + shards + 1)
	var ackedRows atomic.Int64
	ackedAt := make(map[int]int64)
	cluster.OnSync = func(i int, _ pager.ClusterImage) {
		ackedAt[i] = ackedRows.Load()
	}

	mains, wals := clusterBackends(cluster)
	db, err := openClusterDB(t, mains, wals, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreatePicture("map", workload.Frame); err != nil {
		t.Fatal(err)
	}
	pic, _ := db.Picture("map")
	rel, err := db.CreateShardedRelation("pts", pictdb.MustSchema("name:string", "n:int", "loc:loc"), shards)
	if err != nil {
		t.Fatal(err)
	}
	skew, err := workload.ParseSkew("hot:0.9:0.1")
	if err != nil {
		t.Fatal(err)
	}
	pts := skew.Points(120, 13)
	n := 0
	insert := func(count int) {
		for i := 0; i < count; i++ {
			p := pts[n%len(pts)]
			oid := pic.AddPoint(fmt.Sprintf("p%d", n), p)
			if _, err := rel.Insert(pictdb.Tuple{
				pictdb.S(fmt.Sprintf("p%d", n)), pictdb.I(int64(n)), pictdb.L("map", oid),
			}); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	insert(60)
	if err := rel.AttachPicture(pic, pictdb.PackOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	ackedRows.Store(int64(n))

	src, ok := rel.MostLoadedShard(1.0, 1)
	if !ok {
		t.Fatal("no splittable shard")
	}
	if _, err := db.SplitShard("pts", src); err != nil {
		t.Fatal(err)
	}
	// SplitShard's internal checkpoint + commits acked everything
	// durable before it returned.
	ackedRows.Store(int64(n))
	insert(30)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	ackedRows.Store(int64(n))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	images := cluster.Images()
	if len(images) < 6 {
		t.Fatalf("only %d crash images captured", len(images))
	}
	for i, img := range images {
		mains, wals := imageBackends(img)
		db2, err := openClusterDB(t, mains, wals, 64)
		if err != nil {
			t.Fatalf("image %d: recovery failed: %v", i, err)
		}
		report := db2.Check()
		if !report.OK() {
			t.Fatalf("image %d: not Check-clean after recovery: %v", i, report.Err())
		}
		seen := make(map[int64]bool)
		if rel2, ok := db2.Relation("pts"); ok {
			err := rel2.Scan(func(_ storage.TupleID, tup pictdb.Tuple) bool {
				v := tup[1].Int
				if seen[v] {
					t.Fatalf("image %d: row %d recovered twice", i, v)
				}
				seen[v] = true
				return true
			})
			if err != nil {
				t.Fatalf("image %d: scan: %v", i, err)
			}
		}
		for v := int64(0); v < ackedAt[i]; v++ {
			if !seen[v] {
				t.Fatalf("image %d: acked row %d lost (recovered %d rows, %d acked)", i, v, len(seen), ackedAt[i])
			}
		}
		for v := range seen {
			if v < 0 || v >= int64(n) {
				t.Fatalf("image %d: recovered row %d was never inserted", i, v)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("image %d: close: %v", i, err)
		}
	}
	t.Logf("replayed %d cluster crash images through a shard split clean", len(images))
}
