package pictdb_test

// The benchmark harness: one benchmark per table and figure of the
// paper, plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks report, beyond time and allocations, the paper's own
// metrics as custom units: nodes/query (the paper's A), coverage and
// overlap, so `go test -bench` regenerates the evaluation numbers.

import (
	"fmt"
	"testing"

	pictdb "repro"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// --- Table 1 ---------------------------------------------------------

// BenchmarkTable1Insert measures Guttman INSERT builds at each paper J
// and reports the paper's structural metrics.
func BenchmarkTable1Insert(b *testing.B) {
	for _, j := range experiments.PaperJs() {
		b.Run(fmt.Sprintf("J=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			items := workload.PointItems(workload.UniformPoints(j, int64(j)))
			params := rtree.Params{Max: 4, Min: 2, Split: rtree.SplitLinear}
			var t *rtree.Tree
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t = rtree.New(params)
				for _, it := range items {
					t.InsertItem(it)
				}
			}
			b.StopTimer()
			reportTreeMetrics(b, t)
		})
	}
}

// BenchmarkTable1Pack measures PACK builds at each paper J.
func BenchmarkTable1Pack(b *testing.B) {
	for _, j := range experiments.PaperJs() {
		b.Run(fmt.Sprintf("J=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			items := workload.PointItems(workload.UniformPoints(j, int64(j)))
			params := rtree.Params{Max: 4, Min: 2}
			var t *rtree.Tree
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t = pack.Tree(params, items, pack.Options{Method: pack.MethodNN})
			}
			b.StopTimer()
			reportTreeMetrics(b, t)
		})
	}
}

// BenchmarkTable1QueryInsert and ...QueryPack measure the paper's A
// column as nodes/query over random point-containment probes.
func BenchmarkTable1QueryInsert(b *testing.B) {
	benchTable1Query(b, func(items []rtree.Item) *rtree.Tree {
		t := rtree.New(rtree.Params{Max: 4, Min: 2, Split: rtree.SplitLinear})
		for _, it := range items {
			t.InsertItem(it)
		}
		return t
	})
}

func BenchmarkTable1QueryPack(b *testing.B) {
	benchTable1Query(b, func(items []rtree.Item) *rtree.Tree {
		return pack.Tree(rtree.Params{Max: 4, Min: 2}, items, pack.Options{Method: pack.MethodNN})
	})
}

func benchTable1Query(b *testing.B, build func([]rtree.Item) *rtree.Tree) {
	for _, j := range []int{100, 300, 900} {
		b.Run(fmt.Sprintf("J=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			t := build(workload.PointItems(workload.UniformPoints(j, int64(j))))
			queries := workload.QueryPoints(1024, int64(j)+7919)
			visited := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, v := t.ContainsPoint(queries[i%len(queries)])
				visited += v
			}
			b.ReportMetric(float64(visited)/float64(b.N), "nodes/query")
		})
	}
}

func reportTreeMetrics(b *testing.B, t *rtree.Tree) {
	b.Helper()
	m := t.ComputeMetrics()
	b.ReportMetric(m.Coverage, "coverage")
	b.ReportMetric(m.Overlap, "overlap")
	b.ReportMetric(float64(m.Nodes), "nodes")
	b.ReportMetric(float64(m.Depth), "depth")
}

// --- Figures ---------------------------------------------------------

// BenchmarkFigure33Pruning measures the center-window query on the
// sliver-leaf pathology versus the packed tree (Figure 3.3's pruning
// failure), reporting nodes visited per query for each.
func BenchmarkFigure33Pruning(b *testing.B) {
	rep := experiments.Figure33()
	if !rep.Holds {
		b.Fatalf("figure 3.3 does not hold: %s", rep)
	}
	b.Run("report", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = experiments.Figure33()
		}
	})
}

// BenchmarkFigure34DeadSpace regenerates the 8-point dead-space demo.
func BenchmarkFigure34DeadSpace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure34()
		if !rep.Holds {
			b.Fatalf("figure 3.4 does not hold: %s", rep)
		}
	}
}

// BenchmarkFigure37Coverage regenerates the coverage-vs-overlap demo.
func BenchmarkFigure37Coverage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure37()
		if !rep.Holds {
			b.Fatalf("figure 3.7 does not hold: %s", rep)
		}
	}
}

// BenchmarkFigure38PackCities packs the US cities (Figure 3.8) per
// iteration.
func BenchmarkFigure38PackCities(b *testing.B) {
	b.ReportAllocs()
	cities := workload.USCities()
	items := make([]rtree.Item, len(cities))
	for i, c := range cities {
		items[i] = rtree.Item{Rect: c.Pos.Rect(), Data: int64(i)}
	}
	for i := 0; i < b.N; i++ {
		pack.Tree(rtree.Params{Max: 4, Min: 2}, items, pack.Options{Method: pack.MethodNN})
	}
}

// BenchmarkTheorem32Rotation measures the Lemma 3.1 separating-angle
// computation plus rotation packing.
func BenchmarkTheorem32Rotation(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			items := workload.PointItems(workload.UniformPoints(n, int64(n)))
			for i := 0; i < b.N; i++ {
				pack.Tree(rtree.Params{Max: 4, Min: 2}, items, pack.Options{Method: pack.MethodRotate})
			}
		})
	}
}

// BenchmarkUpdateDrift measures the §3.4 update regime: mixed
// inserts/deletes on a packed tree.
func BenchmarkUpdateDrift(b *testing.B) {
	b.ReportAllocs()
	items := workload.PointItems(workload.UniformPoints(900, 1))
	t := pack.Tree(rtree.Params{Max: 4, Min: 2, Split: rtree.SplitLinear}, items, pack.Options{})
	extra := workload.UniformPoints(100000, 2)
	next := int64(len(items))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := extra[i%len(extra)]
		t.Insert(p.Rect(), next)
		t.Delete(p.Rect(), next)
		next++
	}
}

// --- Ablations (DESIGN.md §5) ---------------------------------------

// BenchmarkPackMethods compares the packing strategies on build time
// and structure at a fixed size.
func BenchmarkPackMethods(b *testing.B) {
	items := workload.PointItems(workload.UniformPoints(5000, 42))
	params := rtree.Params{Max: 16, Min: 8}
	for _, m := range []pack.Method{pack.MethodNN, pack.MethodNNArea, pack.MethodLowX, pack.MethodSTR, pack.MethodHilbert} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var t *rtree.Tree
			for i := 0; i < b.N; i++ {
				t = pack.Tree(params, items, pack.Options{Method: m})
			}
			b.StopTimer()
			met := t.ComputeMetrics()
			b.ReportMetric(met.Coverage, "coverage")
			b.ReportMetric(met.Overlap, "overlap")
		})
	}
}

// BenchmarkSplitKinds compares Guttman's split heuristics on insert
// throughput and resulting quality.
func BenchmarkSplitKinds(b *testing.B) {
	items := workload.PointItems(workload.UniformPoints(2000, 43))
	for _, s := range []rtree.SplitKind{rtree.SplitLinear, rtree.SplitQuadratic, rtree.SplitExhaustive} {
		b.Run(s.String(), func(b *testing.B) {
			b.ReportAllocs()
			var t *rtree.Tree
			for i := 0; i < b.N; i++ {
				t = rtree.New(rtree.Params{Max: 4, Min: 2, Split: s})
				for _, it := range items {
					t.InsertItem(it)
				}
			}
			b.StopTimer()
			met := t.ComputeMetrics()
			b.ReportMetric(met.Overlap, "overlap")
		})
	}
}

// BenchmarkBranchingFactor sweeps the fanout: the paper's 4 against
// page-filling factors.
func BenchmarkBranchingFactor(b *testing.B) {
	items := workload.PointItems(workload.UniformPoints(10000, 44))
	queries := workload.QueryWindows(512, 40, 45)
	for _, max := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("M=%d", max), func(b *testing.B) {
			b.ReportAllocs()
			t := pack.Tree(rtree.Params{Max: max, Min: max / 2}, items, pack.Options{Method: pack.MethodSTR})
			visited := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, v := t.Query(queries[i%len(queries)])
				visited += v
			}
			b.ReportMetric(float64(visited)/float64(b.N), "nodes/query")
		})
	}
}

// BenchmarkJuxtaposition compares the simultaneous-traversal join with
// the index-nested-loop alternative.
func BenchmarkJuxtaposition(b *testing.B) {
	params := rtree.Params{Max: 16, Min: 8}
	a := pack.Tree(params, workload.PointItems(workload.UniformPoints(5000, 46)), pack.Options{Method: pack.MethodSTR})
	d := pack.Tree(params, workload.RectItems(workload.UniformRects(500, 25, 47)), pack.Options{Method: pack.MethodSTR})

	b.Run("simultaneous", func(b *testing.B) {
		b.ReportAllocs()
		pairs := 0
		for i := 0; i < b.N; i++ {
			pairs = 0
			rtree.JoinPairs(a, d, func(x, y geom.Rect) bool { return y.Contains(x) },
				func(_, _ rtree.Item) bool { pairs++; return true })
		}
		b.ReportMetric(float64(pairs), "pairs")
	})
	b.Run("indexNestedLoop", func(b *testing.B) {
		b.ReportAllocs()
		pairs := 0
		for i := 0; i < b.N; i++ {
			pairs = 0
			for _, it := range a.Items() {
				d.Search(it.Rect, func(dd rtree.Item) bool {
					if dd.Rect.Contains(it.Rect) {
						pairs++
					}
					return true
				})
			}
		}
		b.ReportMetric(float64(pairs), "pairs")
	})
}

// BenchmarkClusteredWorkload runs the PACK vs INSERT comparison on
// clustered (city-like) data, where the paper's magnitude of
// improvement appears.
func BenchmarkClusteredWorkload(b *testing.B) {
	pts := workload.ClusteredPoints(20000, 40, 35, 48)
	items := workload.PointItems(pts)
	params := rtree.Params{Max: 64, Min: 32, Split: rtree.SplitLinear}
	queries := workload.QueryWindows(512, 10, 49)

	run := func(b *testing.B, t *rtree.Tree) {
		visited := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, v := t.Query(queries[i%len(queries)])
			visited += v
		}
		b.ReportMetric(float64(visited)/float64(b.N), "nodes/query")
		m := t.ComputeMetrics()
		b.ReportMetric(m.Coverage, "coverage")
		b.ReportMetric(m.Overlap, "overlap")
	}
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		t := rtree.New(params)
		for _, it := range items {
			t.InsertItem(it)
		}
		run(b, t)
	})
	b.Run("pack", func(b *testing.B) {
		b.ReportAllocs()
		run(b, pack.Tree(params, items, pack.Options{Method: pack.MethodNN}))
	})
}

// BenchmarkPSQLQueries measures end-to-end PSQL execution on the US
// database: the §2.2 direct search and juxtaposition.
func BenchmarkPSQLQueries(b *testing.B) {
	db, err := pictdb.BuildUSDatabase()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	queries := map[string]string{
		"directSearch": `
			select city, state, population, loc from cities on us-map
			at loc covered-by {800±200, 500±500} where population > 450_000`,
		"juxtaposition": `
			select city, zone from cities, time-zones on us-map, time-zone-map
			at cities.loc covered-by time-zones.loc`,
		"nestedMapping": `
			select lake, lakes.loc from lakes on lake-map
			at lakes.loc covered-by
			select states.loc from states on state-map
			at states.loc overlapping eastern-us`,
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDiskSearch measures page-level search cost (pager I/O) for
// a packed disk tree with a cold-ish pool.
func BenchmarkDiskSearch(b *testing.B) {
	b.ReportAllocs()
	p := pager.OpenMem(64) // small pool: queries pay eviction traffic
	defer p.Close()
	items := workload.PointItems(workload.UniformPoints(20000, 50))
	dt, err := rtree.BulkLoadDisk(p, 0, 0, items, pack.Grouper(pack.MethodSTR))
	if err != nil {
		b.Fatal(err)
	}
	queries := workload.QueryWindows(512, 25, 51)
	visited := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, v, err := dt.Query(queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
		visited += v
	}
	b.ReportMetric(float64(visited)/float64(b.N), "pages/query")
}

// --- Parallel execution (DESIGN.md "Parallel execution") -------------

// BenchmarkParallelPackBuild measures PACK build time at worker counts
// 1/2/4/8 — the speedup-vs-cores curve EXPERIMENTS.md describes. The
// output tree is identical at every setting (the parallel sort is
// stable and merges prefer the left run), so only wall-clock moves.
func BenchmarkParallelPackBuild(b *testing.B) {
	items := workload.PointItems(workload.UniformPoints(200000, 52))
	params := rtree.Params{Max: 16, Min: 8}
	for _, m := range []pack.Method{pack.MethodHilbert, pack.MethodSTR} {
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/par=%d", m, par), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					pack.Tree(params, items, pack.Options{Method: m, Parallelism: par})
				}
			})
		}
	}
}

// BenchmarkQueryBatch measures batched window queries on one shared
// in-memory tree at 1/2/4/8 worker goroutines, reporting aggregate
// queries/sec (the concurrent read path's scaling curve).
func BenchmarkQueryBatch(b *testing.B) {
	items := workload.PointItems(workload.UniformPoints(100000, 53))
	t := pack.Tree(rtree.Params{Max: 16, Min: 8}, items, pack.Options{Method: pack.MethodSTR})
	windows := workload.QueryWindows(256, 25, 54)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t.QueryBatch(windows, par)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(windows))*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkJuxtaposeParallel measures the parallel geographic join at
// 1/2/4/8 workers over in-memory trees. The output is identical at
// every worker count (frontier order is serial DFS order), so only
// wall-clock moves.
func BenchmarkJuxtaposeParallel(b *testing.B) {
	params := rtree.Params{Max: 16, Min: 8}
	points := pack.Tree(params, workload.PointItems(workload.UniformPoints(50000, 57)), pack.Options{Method: pack.MethodSTR})
	wins := workload.QueryWindows(5000, 25, 58)
	regionItems := make([]rtree.Item, len(wins))
	for i, w := range wins {
		regionItems[i] = rtree.Item{Rect: w, Data: int64(i)}
	}
	regions := pack.Tree(params, regionItems, pack.Options{Method: pack.MethodSTR})
	pred := func(a, b geom.Rect) bool { return a.Intersects(b) }
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			pairs := 0
			for i := 0; i < b.N; i++ {
				out, _ := rtree.Juxtapose(points, regions, pred, par)
				pairs = len(out)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkDiskJuxtapose is the disk variant of the parallel join:
// both trees live on pager pages and the traversal is zero-copy over
// pinned views.
func BenchmarkDiskJuxtapose(b *testing.B) {
	p := pager.OpenMem(2048)
	defer p.Close()
	points, err := rtree.BulkLoadDisk(p, 0, 0, workload.PointItems(workload.UniformPoints(50000, 57)), pack.Grouper(pack.MethodSTR))
	if err != nil {
		b.Fatal(err)
	}
	wins := workload.QueryWindows(5000, 25, 58)
	regionItems := make([]rtree.Item, len(wins))
	for i, w := range wins {
		regionItems[i] = rtree.Item{Rect: w, Data: int64(i)}
	}
	regions, err := rtree.BulkLoadDisk(p, 0, 0, regionItems, pack.Grouper(pack.MethodSTR))
	if err != nil {
		b.Fatal(err)
	}
	pred := func(a, b geom.Rect) bool { return a.Intersects(b) }
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			pairs := 0
			for i := 0; i < b.N; i++ {
				out, _, err := points.Juxtapose(regions, pred, par)
				if err != nil {
					b.Fatal(err)
				}
				pairs = len(out)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkDiskQueryBatch is the disk variant: workers contend on the
// sharded buffer pool, so this is the pager-scaling benchmark.
func BenchmarkDiskQueryBatch(b *testing.B) {
	p := pager.OpenMem(512)
	defer p.Close()
	items := workload.PointItems(workload.UniformPoints(50000, 55))
	dt, err := rtree.BulkLoadDisk(p, 0, 0, items, pack.Grouper(pack.MethodSTR))
	if err != nil {
		b.Fatal(err)
	}
	windows := workload.QueryWindows(128, 25, 56)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := dt.QueryBatch(windows, par); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(windows))*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		})
	}
}

// BenchmarkPSQLRepeatedWindow measures the repeated point-in-window
// workload the statement cache and prepared-parameter path exist for:
// the same mapping executed over and over with the window moving
// through a fixed cycle of 64 positions. All three modes run the
// identical query sequence; they differ only in how much work repeats.
// "naive" re-parses and executes the reference path every time,
// "cached" formats the text per window and serves it through the
// statement cache (all hits after the first cycle), and "prepared"
// re-binds the window of a statement parsed once.
func BenchmarkPSQLRepeatedWindow(b *testing.B) {
	const tmpl = `
		select city, state, loc from cities on us-map
		at loc covered-by {%g±%g, %g±%g} where population > 450_000`
	type win struct{ cx, dx, cy, dy float64 }
	wins := make([]win, 0, 64)
	texts := make([]string, 0, 64)
	for _, w := range workload.QueryWindows(64, 180, 1985) {
		c := w.Center()
		v := win{c.X, (w.Max.X - w.Min.X) / 2, c.Y, (w.Max.Y - w.Min.Y) / 2}
		wins = append(wins, v)
		texts = append(texts, fmt.Sprintf(tmpl, v.cx, v.dx, v.cy, v.dy))
	}
	b.Run("naive", func(b *testing.B) {
		db, err := pictdb.BuildUSDatabase()
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.QueryNaive(texts[i%len(texts)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		db, err := pictdb.BuildUSDatabase()
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(texts[i%len(texts)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		db, err := pictdb.BuildUSDatabase()
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		p, err := db.Prepare(fmt.Sprintf(tmpl, 800.0, 200.0, 500.0, 500.0))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := wins[i%len(wins)]
			if _, err := p.ExecWindow(w.cx, w.dx, w.cy, w.dy); err != nil {
				b.Fatal(err)
			}
		}
	})
}
