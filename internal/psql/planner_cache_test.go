package psql_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	pictdb "repro"
	"repro/internal/psql"
)

// sameRows fails the test unless a and b agree on Columns, Rows (order
// included), and Locs. NodesVisited is plan-dependent and deliberately
// not compared.
func sameRows(t *testing.T, label string, a, b *pictdb.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Columns, b.Columns) {
		t.Fatalf("%s: columns %v != %v", label, a.Columns, b.Columns)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: %d rows != %d rows", label, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("%s: row %d arity %d != %d", label, i, len(a.Rows[i]), len(b.Rows[i]))
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j].String() != b.Rows[i][j].String() {
				t.Fatalf("%s: row %d col %d: %v != %v", label, i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	if !reflect.DeepEqual(a.Locs, b.Locs) {
		t.Fatalf("%s: locs %v != %v", label, a.Locs, b.Locs)
	}
}

// TestPlannedMatchesNaiveOracle runs a corpus covering every access
// path the planner can choose — direct search under all four spatial
// operators, index-driven at-clauses, juxtaposition, nested mappings,
// B-tree and scan qualifications, ordering, aggregates — and checks
// the planned executor against the naive reference row for row, at
// worker budgets 1 and 8. Both paths emit canonical row order, so any
// divergence is a planner or batching bug.
func TestPlannedMatchesNaiveOracle(t *testing.T) {
	corpus := []string{
		`select city, state, population, loc from cities on us-map
		 at loc covered-by {800±200, 500±500} where population > 450_000`,
		`select city from cities on us-map at loc covering {640±2, 378±2}`,
		`select city from cities on us-map at loc overlapping {500±150, 500±500}`,
		`select city from cities on us-map at loc disjoined {800±200, 500±500}`,
		// Equality conjunct: cheap enough that the planner may drive the
		// at-clause from the B-tree instead of the R-tree.
		`select city from cities on us-map
		 at loc covered-by {800±200, 500±500} where city = 'Boston'`,
		`select city, zone from cities, time-zones on us-map, time-zone-map
		 at cities.loc covered-by time-zones.loc`,
		`select zone, city from cities, time-zones on us-map, time-zone-map
		 at time-zones.loc covering cities.loc`,
		`select lake, area, lakes.loc from lakes on lake-map
		 at lakes.loc covered-by
		   select states.loc from states on state-map
		   at states.loc overlapping {800±200, 500±500}`,
		`select city from cities where population > 1_000_000`,
		`select city from cities where state = 'TX' and population > 400_000`,
		`select city, population from cities
		 order by population desc limit 5`,
		`select count(*), max(population) from cities
		 on us-map at loc covered-by eastern-us`,
		`select city from cities on us-map at loc covered-by eastern-us
		 where distance(loc, {640±0, 378±0}) < 200 and population > 100_000`,
	}
	for _, par := range []int{1, 8} {
		db := usdb(t)
		db.SetParallelism(par)
		for _, q := range corpus {
			planned, err := db.Query(q)
			if err != nil {
				t.Fatalf("par=%d planned %s: %v", par, q, err)
			}
			naive, err := db.QueryNaive(q)
			if err != nil {
				t.Fatalf("par=%d naive %s: %v", par, q, err)
			}
			sameRows(t, fmt.Sprintf("par=%d %s", par, q), planned, naive)
		}
	}
}

// TestPlannedMatchesNaiveRandomized is the randomized half of the
// oracle: planned vs naive over random pictures and windows, all four
// operators, rows compared in order.
func TestPlannedMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	ops := []string{"covered-by", "covering", "overlapping", "disjoined"}
	for trial := 0; trial < 3; trial++ {
		db := pictdb.New()
		pic, err := db.CreatePicture("m", pictdb.R(0, 0, 1000, 1000))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := db.CreateRelation("objs", pictdb.MustSchema("n:int", "loc:loc"))
		if err != nil {
			t.Fatal(err)
		}
		n := 50 + rng.Intn(150)
		for i := 0; i < n; i++ {
			p := pictdb.Pt(rng.Float64()*1000, rng.Float64()*1000)
			oid := pic.AddPoint("", p)
			if _, err := rel.Insert(pictdb.Tuple{pictdb.I(int64(i)), pictdb.L("m", oid)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := rel.AttachPicture(pic, pictdb.PackOptions{}); err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 8; q++ {
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			dx, dy := rng.Float64()*200, rng.Float64()*200
			op := ops[rng.Intn(len(ops))]
			query := fmt.Sprintf(`select n, loc from objs on m at loc %s {%g±%g, %g±%g}`,
				op, cx, dx, cy, dy)
			planned, err := db.Query(query)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, query, err)
			}
			naive, err := db.QueryNaive(query)
			if err != nil {
				t.Fatalf("trial %d naive: %s: %v", trial, query, err)
			}
			sameRows(t, query, planned, naive)
		}
		db.Close()
	}
}

// TestStatementCacheHitIdentical runs the same text twice and demands
// bit-identical results — including Plan and NodesVisited — plus a
// recorded cache hit. A cached statement must be indistinguishable
// from a fresh parse.
func TestStatementCacheHitIdentical(t *testing.T) {
	db := usdb(t)
	q := `select city, state, loc from cities on us-map
	      at loc covered-by {800±200, 500±500} where population > 450_000`
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	second, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Errorf("hits %d -> %d, want one more", before.Hits, after.Hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached execution differs:\nfirst  %+v\nsecond %+v", first, second)
	}
	if after.Entries < 1 {
		t.Errorf("cache entries = %d", after.Entries)
	}
}

// TestRegisterFuncInvalidatesCache is the regression test for stale
// plans: a cached statement that calls a function must be evicted when
// the function is re-registered, so the next run sees the new
// implementation.
func TestRegisterFuncInvalidatesCache(t *testing.T) {
	db := usdb(t)
	db.RegisterFunc("grade", func(c *psql.FuncContext) (psql.Datum, error) {
		return psql.Datum{Kind: psql.KindInt, Int: 1}, nil
	})
	q := `select grade(population) from cities where city = 'Boston'`
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 1 {
		t.Fatalf("first implementation returned %v", res.Rows[0][0])
	}
	// Warm the cache, then swap the implementation.
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	db.RegisterFunc("grade", func(c *psql.FuncContext) (psql.Datum, error) {
		return psql.Datum{Kind: psql.KindInt, Int: 2}, nil
	})
	if got := db.CacheStats(); got.Invalidations < 1 {
		t.Errorf("invalidations = %d, want >= 1", got.Invalidations)
	}
	res, err = db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 2 {
		t.Errorf("cached plan served stale function: got %v, want 2", res.Rows[0][0])
	}
	// A statement that does not call grade must survive the eviction.
	if _, err := db.Query(`select city from cities limit 1`); err != nil {
		t.Fatal(err)
	}
	db.RegisterFunc("grade", func(c *psql.FuncContext) (psql.Datum, error) {
		return psql.Datum{Kind: psql.KindInt, Int: 3}, nil
	})
	if got := db.CacheStats(); got.Entries < 1 {
		t.Errorf("unrelated statement evicted too (entries = %d)", got.Entries)
	}
}

// TestPreparedWindow checks the prepared-parameter path: ExecWindow
// must equal re-parsing the statement with the window spliced into the
// text, both for a top-level window and for one inside a nested
// mapping.
func TestPreparedWindow(t *testing.T) {
	db := usdb(t)
	p, err := db.Prepare(`select city, loc from cities on us-map
	                      at loc covered-by {800±200, 500±500}`)
	if err != nil {
		t.Fatal(err)
	}
	// Original window.
	got, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.QueryNaive(`select city, loc from cities on us-map
	                            at loc covered-by {800±200, 500±500}`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "prepared original window", got, want)
	// Re-bound windows.
	for _, w := range []struct{ cx, dx, cy, dy float64 }{
		{200, 200, 500, 500}, // west coast
		{640, 30, 378, 30},   // around Chicago
		{500, 500, 500, 500}, // everything
	} {
		got, err := p.ExecWindow(w.cx, w.dx, w.cy, w.dy)
		if err != nil {
			t.Fatal(err)
		}
		text := fmt.Sprintf(`select city, loc from cities on us-map
		                     at loc covered-by {%g±%g, %g±%g}`, w.cx, w.dx, w.cy, w.dy)
		want, err := db.QueryNaive(text)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, text, got, want)
	}

	// Window inside a nested mapping.
	nested := `select lake, lakes.loc from lakes on lake-map
	           at lakes.loc covered-by
	             select states.loc from states on state-map
	             at states.loc overlapping {%g±%g, %g±%g}`
	pn, err := db.Prepare(fmt.Sprintf(nested, 800.0, 200.0, 500.0, 500.0))
	if err != nil {
		t.Fatal(err)
	}
	gotN, err := pn.ExecWindow(200, 200, 500, 500)
	if err != nil {
		t.Fatal(err)
	}
	wantN, err := db.QueryNaive(fmt.Sprintf(nested, 200.0, 200.0, 500.0, 500.0))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "prepared nested window", gotN, wantN)

	// Zero or multiple area literals cannot be prepared.
	if _, err := db.Prepare(`select city from cities`); err == nil {
		t.Error("prepare with no area literal should fail")
	}
	if _, err := db.Prepare(`select city from cities on us-map
	                         at {1±1, 1±1} covered-by {2±2, 2±2}`); err == nil {
		t.Error("prepare with two area literals should fail")
	}
}

// TestPlannerAccessPathChoice pins the cost model's decisions on the
// US database: a highly selective equality conjunct flips the
// at-clause to the B-tree, a loose range conjunct keeps the paper's
// direct spatial search, and the plan says which happened.
func TestPlannerAccessPathChoice(t *testing.T) {
	db := usdb(t)
	plan := func(q string) string {
		t.Helper()
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return strings.Join(res.Plan, "; ")
	}
	// city = 'Boston' is indexed and estimated at 5% selectivity: the
	// B-tree should drive the at-clause.
	p := plan(`select city from cities on us-map
	           at loc covered-by {800±200, 500±500} where city = 'Boston'`)
	if !strings.Contains(p, "index lookup") || !strings.Contains(p, "drives the at-clause") {
		t.Errorf("equality conjunct should drive the at-clause from the B-tree; plan: %s", p)
	}
	// population > 450_000 is a loose range: direct search must win
	// (the paper's signature access path, protected by hysteresis).
	p = plan(`select city from cities on us-map
	          at loc covered-by {800±200, 500±500} where population > 450_000`)
	if !strings.Contains(p, "direct spatial search") {
		t.Errorf("range conjunct should keep direct spatial search; plan: %s", p)
	}
	// Juxtaposition reports its driving side.
	p = plan(`select city, zone from cities, time-zones on us-map, time-zone-map
	          at cities.loc covered-by time-zones.loc`)
	if !strings.Contains(p, "juxtaposition") || !strings.Contains(p, "driving") {
		t.Errorf("juxtaposition plan should name the driving side; plan: %s", p)
	}
	// Nested mappings report their own plan, prefixed.
	res, err := db.Query(`select lake from lakes on lake-map
	                      at lakes.loc covered-by
	                        select states.loc from states on state-map
	                        at states.loc overlapping {800±200, 500±500}`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Plan, "; ")
	if !strings.Contains(joined, "nested: ") {
		t.Errorf("nested mapping plan notes missing; plan: %s", joined)
	}
}

// TestConjunctReordering: the executor must evaluate cheap selective
// conjuncts before expensive function calls, without changing the
// answer. The expensive function counts its invocations; with
// reordering it runs only on rows surviving the equality test.
func TestConjunctReordering(t *testing.T) {
	db := usdb(t)
	var calls int
	db.RegisterFunc("expensive", func(c *psql.FuncContext) (psql.Datum, error) {
		calls++
		return psql.Datum{Kind: psql.KindInt, Int: 1}, nil
	})
	// Written with the function first: planner order must still put the
	// equality test first.
	res, err := db.Query(`select city from cities
	                      where expensive(population) = 1 and city = 'Boston'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	if calls != 1 {
		t.Errorf("expensive() called %d times; conjunct reordering should gate it to 1", calls)
	}
}

// TestConcurrentRunStress hammers one shared executor from many
// goroutines mixing cached queries, prepared executions, and function
// re-registration. Run under -race (make check) it verifies the
// statement cache, function registry, and batched read path are safe
// to share; results are also checked against a precomputed answer.
func TestConcurrentRunStress(t *testing.T) {
	db := usdb(t)
	queries := []string{
		`select city from cities on us-map at loc covered-by {800±200, 500±500}`,
		`select city, zone from cities, time-zones on us-map, time-zone-map
		 at cities.loc covered-by time-zones.loc`,
		`select city from cities where population > 1_000_000`,
		`select count(*) from cities on us-map at loc covered-by eastern-us`,
	}
	want := make([]*pictdb.Result, len(queries))
	for i, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	prep, err := db.Prepare(`select city from cities on us-map
	                         at loc covered-by {500±150, 500±500}`)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				qi := (g + i) % len(queries)
				res, err := db.Query(queries[qi])
				if err != nil {
					errs[g] = err
					return
				}
				if len(res.Rows) != len(want[qi].Rows) {
					errs[g] = fmt.Errorf("goroutine %d iter %d: %d rows, want %d",
						g, i, len(res.Rows), len(want[qi].Rows))
					return
				}
				if i%5 == 0 {
					if _, err := prep.ExecWindow(500, 100+float64(i), 500, 500); err != nil {
						errs[g] = err
						return
					}
				}
				if i%7 == 0 {
					name := fmt.Sprintf("f%d", g)
					db.RegisterFunc(name, func(c *psql.FuncContext) (psql.Datum, error) {
						return psql.Datum{Kind: psql.KindInt, Int: int64(i)}, nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	stats := db.CacheStats()
	if stats.Hits == 0 {
		t.Error("concurrent stress recorded no cache hits")
	}
}
