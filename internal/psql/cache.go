package psql

import (
	"container/list"
	"sync"
)

// The statement cache maps exact query text to its parsed AST and
// syntactic analysis, so repeated queries skip lexing, parsing, and
// conjunct ranking. Cached ASTs are read-only: execution never mutates
// a Query, which is what makes one entry safe to share across
// concurrent Run calls. Entries record which functions the statement
// references; RegisterFunc evicts exactly those entries, so a cached
// plan can never call a stale function implementation.

// DefaultStatementCacheSize is the executor's statement-cache capacity
// when none is configured.
const DefaultStatementCacheSize = 128

// CacheStats reports statement-cache effectiveness counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Entries       int
	Invalidations uint64 // entries evicted by RegisterFunc
}

type stmtEntry struct {
	src string
	q   *Query
	an  *analysis
}

// stmtCache is a mutex-guarded LRU over parsed statements. Operations
// are O(1) except invalidateFunc, which walks all entries (bounded by
// the capacity, and only on function registration).
type stmtCache struct {
	mu            sync.Mutex
	cap           int
	ll            *list.List // front = most recently used; values are *stmtEntry
	m             map[string]*list.Element
	hits          uint64
	misses        uint64
	invalidations uint64
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = DefaultStatementCacheSize
	}
	return &stmtCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached parse of src, promoting it to most recent.
func (c *stmtCache) get(src string) (*stmtEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[src]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*stmtEntry), true
}

// put inserts a parsed statement, evicting the least recently used
// entry at capacity. A concurrent insert of the same text wins
// whichever lands last; both hold equivalent parses.
func (c *stmtCache) put(src string, q *Query, an *analysis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[src]; ok {
		el.Value = &stmtEntry{src: src, q: q, an: an}
		c.ll.MoveToFront(el)
		return
	}
	c.m[src] = c.ll.PushFront(&stmtEntry{src: src, q: q, an: an})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*stmtEntry).src)
	}
}

// invalidateFunc evicts every cached statement that calls name.
func (c *stmtCache) invalidateFunc(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*stmtEntry)
		if ent.an.funcs[name] {
			c.ll.Remove(el)
			delete(c.m, ent.src)
			c.invalidations++
		}
		el = next
	}
}

// stats snapshots the counters.
func (c *stmtCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Invalidations: c.invalidations}
}
