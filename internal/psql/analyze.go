package psql

// This file derives the cacheable, purely syntactic half of a query
// plan from a parsed AST: the where-clause split into ranked AND
// conjuncts, the set of functions the statement calls (for cache
// invalidation when RegisterFunc replaces one), the positions of area
// literals (for the prepared-window path), and the analyses of nested
// mappings. Everything here depends only on the query text, so one
// analysis is shared by every execution of a cached statement; the
// cost-based choices that need catalog statistics (scan vs. index vs.
// direct search, juxtaposition driving side) happen per-execution in
// planner.go.

// conjunct is one top-level AND term of the qualification, with its
// static cost rank.
type conjunct struct {
	expr Expr
	// sel estimates the fraction of rows the term keeps: equality on a
	// column is the most selective, a one-sided range keeps about a
	// third, anything else is a coin flip.
	sel float64
	// cost weights per-row evaluation expense: function calls and
	// spatial operators dominate plain comparisons.
	cost float64
}

// analysis is the syntactic plan skeleton for one query (and, via sub,
// its nested mappings).
type analysis struct {
	// conjuncts holds the where-clause's top-level AND terms in planner
	// order: cheapest, most selective first. Empty when there is no
	// qualification; a single entry when the qualification has no
	// top-level AND.
	conjuncts []conjunct
	// reordered reports whether planner order differs from source
	// order (worth a plan note).
	reordered bool
	// funcs names every function the statement calls, including inside
	// nested mappings — the statement cache evicts entries whose funcs
	// set contains a re-registered name.
	funcs map[string]bool
	// areas lists the source positions of every at-clause area literal,
	// outermost query first: the prepared-statement window parameter is
	// resolved against these.
	areas []int
	// sub maps each nested mapping's Query to its own analysis.
	sub map[*Query]*analysis
}

// Conjunct selectivity and cost constants. The selectivities follow
// the classic System R defaults; the cost tiers only need to order
// terms, not predict wall time.
const (
	selEquality = 0.05
	selRange    = 0.33
	selDefault  = 0.5

	costCompare = 1.0  // column/literal comparisons
	costSpatial = 4.0  // spatial predicate over resolved MBRs
	costFunc    = 10.0 // user/pictorial function call
)

// analyze builds the analysis for q and its nested mappings.
func analyze(q *Query) *analysis {
	an := &analysis{funcs: map[string]bool{}, sub: map[*Query]*analysis{}}

	if q.Where != nil {
		var split func(e Expr)
		split = func(e Expr) {
			if be, ok := e.(BinaryExpr); ok && be.Op == "and" {
				split(be.Left)
				split(be.Right)
				return
			}
			an.conjuncts = append(an.conjuncts, rankConjunct(e))
		}
		split(q.Where)
		an.reordered = sortConjuncts(an.conjuncts)
	}

	collect := func(e Expr) { collectFuncs(e, an.funcs) }
	for _, it := range q.Select {
		collect(it.Expr)
	}
	if q.Where != nil {
		collect(q.Where)
	}
	for _, ob := range q.OrderBy {
		collect(ob.Expr)
	}

	if q.At != nil {
		for _, t := range []SpatialTerm{q.At.Left, q.At.Right} {
			switch tt := t.(type) {
			case AreaTerm:
				an.areas = append(an.areas, tt.Pos)
			case SubqueryTerm:
				sub := analyze(tt.Query)
				an.sub[tt.Query] = sub
				for name := range sub.funcs {
					an.funcs[name] = true
				}
				an.areas = append(an.areas, sub.areas...)
			}
		}
	}
	return an
}

// forQuery returns the analysis of a nested mapping's query, falling
// back to a fresh analysis when q was executed outside its parent
// statement.
func (an *analysis) forQuery(q *Query) *analysis {
	if an != nil {
		if sub, ok := an.sub[q]; ok {
			return sub
		}
	}
	return analyze(q)
}

// rankConjunct estimates e's selectivity and evaluation cost.
func rankConjunct(e Expr) conjunct {
	c := conjunct{expr: e, sel: selDefault, cost: costCompare}
	if be, ok := e.(BinaryExpr); ok {
		if _, spatial := spatialOpFromIdent(be.Op); spatial {
			c.cost = costSpatial
		} else if _, _, op, ok := columnVsLiteral(be); ok {
			if op == "=" {
				c.sel = selEquality
			} else {
				c.sel = selRange
			}
		}
	}
	if callsFunc(e) {
		c.cost = costFunc
	}
	return c
}

// sortConjuncts orders conjuncts cheapest first, breaking cost ties by
// selectivity (most selective first). The sort is stable over source
// order, so planner order is deterministic for a given query text. It
// reports whether any term moved.
func sortConjuncts(cs []conjunct) bool {
	moved := false
	// Insertion sort: conjunct lists are short and stability matters.
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && conjunctLess(cs[j], cs[j-1]); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
			moved = true
		}
	}
	return moved
}

func conjunctLess(a, b conjunct) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.sel < b.sel
}

// callsFunc reports whether e contains any function call.
func callsFunc(e Expr) bool {
	switch ex := e.(type) {
	case FuncCall:
		return true
	case BinaryExpr:
		return callsFunc(ex.Left) || callsFunc(ex.Right)
	case UnaryExpr:
		return callsFunc(ex.Expr)
	}
	return false
}

// collectFuncs adds every function name called in e to out.
func collectFuncs(e Expr, out map[string]bool) {
	switch ex := e.(type) {
	case FuncCall:
		out[ex.Name] = true
		for _, a := range ex.Args {
			collectFuncs(a, out)
		}
	case BinaryExpr:
		collectFuncs(ex.Left, out)
		collectFuncs(ex.Right, out)
	case UnaryExpr:
		collectFuncs(ex.Expr, out)
	}
}
