package psql

import (
	"fmt"
	"strings"
)

// Query is one PSQL mapping: select / from / on / at / where.
type Query struct {
	// Select lists the target attributes; empty with Star set means
	// "select *".
	Select []SelectItem
	Star   bool
	From   []TableRef
	// On lists picture names, positionally matched to From (a single
	// picture applies to every relation).
	On []string
	// At is the area specification, nil when absent.
	At *AtClause
	// Where is the qualification, nil when absent.
	Where Expr
	// OrderBy lists result ordering keys (a SQL-inherited extension).
	OrderBy []OrderKey
	// Limit caps the result rows when non-nil.
	Limit *int
}

// OrderKey is one order-by entry.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectItem is one target-list entry.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a relation in the from-clause with an optional alias.
type TableRef struct {
	Relation string
	Alias    string
}

// Binding returns the name the relation is referred to by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Relation
}

// SpatialOp is one of the paper's spatial comparison operators.
type SpatialOp int

const (
	// OpCoveredBy: left is wholly within right.
	OpCoveredBy SpatialOp = iota
	// OpCovering: left wholly contains right.
	OpCovering
	// OpOverlapping: left and right share at least one point.
	OpOverlapping
	// OpDisjoined: left and right share no point.
	OpDisjoined
)

// String names the operator using the paper's spelling.
func (o SpatialOp) String() string {
	switch o {
	case OpCoveredBy:
		return "covered-by"
	case OpCovering:
		return "covering"
	case OpOverlapping:
		return "overlapping"
	case OpDisjoined:
		return "disjoined"
	default:
		return fmt.Sprintf("SpatialOp(%d)", int(o))
	}
}

// AtClause is the area specification: left op right.
type AtClause struct {
	Left  SpatialTerm
	Op    SpatialOp
	Right SpatialTerm
	Pos   int
}

// SpatialTerm is an area specification operand: a loc column
// reference, an area literal, a named location, or a nested mapping.
type SpatialTerm interface {
	spatialTerm()
	String() string
}

// LocTerm references a loc column, optionally qualified:
// "loc" or "cities.loc".
type LocTerm struct {
	Table  string
	Column string
	Pos    int
}

func (LocTerm) spatialTerm() {}

func (t LocTerm) String() string {
	if t.Table != "" {
		return t.Table + "." + t.Column
	}
	return t.Column
}

// AreaTerm is a constant area literal {cx±dx, cy±dy}.
type AreaTerm struct {
	CX, DX, CY, DY float64
	Pos            int
}

func (AreaTerm) spatialTerm() {}

func (t AreaTerm) String() string {
	return fmt.Sprintf("{%g±%g, %g±%g}", t.CX, t.DX, t.CY, t.DY)
}

// NameTerm references a location predefined outside the mapping
// ("The location variable may just be a name of a location predefined
// outside the retrieve mapping").
type NameTerm struct {
	Name string
	Pos  int
}

func (NameTerm) spatialTerm() {}

func (t NameTerm) String() string { return "@" + t.Name }

// SubqueryTerm is a nested mapping whose result locations bind the
// enclosing at-clause.
type SubqueryTerm struct {
	Query *Query
	Pos   int
}

func (SubqueryTerm) spatialTerm() {}

func (t SubqueryTerm) String() string { return "(select ...)" }

// Expr is a where-clause or target-list expression.
type Expr interface {
	exprNode()
	String() string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	IsInt bool
	Int   int64
	Pos   int
}

func (NumberLit) exprNode() {}

func (e NumberLit) String() string {
	if e.IsInt {
		return fmt.Sprintf("%d", e.Int)
	}
	return fmt.Sprintf("%g", e.Value)
}

// StringLit is a string literal.
type StringLit struct {
	Value string
	Pos   int
}

func (StringLit) exprNode() {}

func (e StringLit) String() string { return fmt.Sprintf("%q", e.Value) }

// ColumnRef references a column, optionally table-qualified.
type ColumnRef struct {
	Table  string
	Column string
	Pos    int
}

func (ColumnRef) exprNode() {}

func (e ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

// AreaLit is an area literal usable as an expression (e.g. as a
// function argument).
type AreaLit struct {
	CX, DX, CY, DY float64
	Pos            int
}

func (AreaLit) exprNode() {}

func (e AreaLit) String() string {
	return fmt.Sprintf("{%g±%g, %g±%g}", e.CX, e.DX, e.CY, e.DY)
}

// BinaryExpr is a binary operation: comparison, boolean, arithmetic,
// or an infix spatial operator inside the where-clause.
type BinaryExpr struct {
	Op          string // "and", "or", "=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "covered-by", ...
	Left, Right Expr
	Pos         int
}

func (BinaryExpr) exprNode() {}

func (e BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// UnaryExpr is "not x" or "-x".
type UnaryExpr struct {
	Op   string
	Expr Expr
	Pos  int
}

func (UnaryExpr) exprNode() {}

func (e UnaryExpr) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.Expr) }

// FuncCall invokes a pictorial (or scalar) function.
type FuncCall struct {
	Name string
	Args []Expr
	Pos  int
}

func (FuncCall) exprNode() {}

func (e FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}
