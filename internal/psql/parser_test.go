package psql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`select city, population from cities where population > 450_000`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{
		TokIdent, TokIdent, TokComma, TokIdent, TokIdent, TokIdent,
		TokIdent, TokIdent, TokOp, TokNumber, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexHyphenIdentifiers(t *testing.T) {
	toks, err := Lex(`us-map covered-by time-zones a - b`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.Text)
	}
	want := []string{"us-map", "covered-by", "time-zones", "a", "-", "b"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("texts = %v, want %v", texts, want)
	}
}

func TestLexPlusMinusForms(t *testing.T) {
	for _, src := range []string{"{4±4, 11±9}", "{4+-4, 11+-9}"} {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		pm := 0
		for _, tk := range toks {
			if tk.Kind == TokPlusMinus {
				pm++
			}
		}
		if pm != 2 {
			t.Fatalf("%q: %d plus-minus tokens", src, pm)
		}
	}
}

func TestLexStringsAndComments(t *testing.T) {
	toks, err := Lex("select 'it''s' -- comment\nfrom x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokString || toks[1].Text != "it's" {
		t.Fatalf("string token = %+v", toks[1])
	}
	if toks[2].Text != "from" {
		t.Fatalf("comment not skipped: %+v", toks[2])
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select @ from x"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParsePaperQuery1(t *testing.T) {
	// The paper's first example query (§2.2), modulo number grouping.
	q, err := Parse(`
		select city, state, population, loc
		from   cities
		on     us-map
		at     loc covered-by {4±4, 11±9}
		where  population > 450_000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 4 || q.Star {
		t.Fatalf("select list = %v", q.Select)
	}
	if len(q.From) != 1 || q.From[0].Relation != "cities" {
		t.Fatalf("from = %v", q.From)
	}
	if len(q.On) != 1 || q.On[0] != "us-map" {
		t.Fatalf("on = %v", q.On)
	}
	if q.At == nil || q.At.Op != OpCoveredBy {
		t.Fatalf("at = %+v", q.At)
	}
	lt, ok := q.At.Left.(LocTerm)
	if !ok || lt.Column != "loc" {
		t.Fatalf("at left = %#v", q.At.Left)
	}
	ar, ok := q.At.Right.(AreaTerm)
	if !ok || ar.CX != 4 || ar.DX != 4 || ar.CY != 11 || ar.DY != 9 {
		t.Fatalf("at right = %#v", q.At.Right)
	}
	be, ok := q.Where.(BinaryExpr)
	if !ok || be.Op != ">" {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParsePaperJuxtaposition(t *testing.T) {
	// The paper's §2.2 juxtaposition query.
	q, err := Parse(`
		select city, zone
		from   cities, time-zones
		on     us-map, time-zone-map
		at     cities.loc covered-by time-zones.loc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 2 || q.From[1].Relation != "time-zones" {
		t.Fatalf("from = %v", q.From)
	}
	if len(q.On) != 2 {
		t.Fatalf("on = %v", q.On)
	}
	l, ok := q.At.Left.(LocTerm)
	if !ok || l.Table != "cities" || l.Column != "loc" {
		t.Fatalf("left = %#v", q.At.Left)
	}
	r, ok := q.At.Right.(LocTerm)
	if !ok || r.Table != "time-zones" {
		t.Fatalf("right = %#v", q.At.Right)
	}
}

func TestParseNestedMapping(t *testing.T) {
	// The paper's §2.2 nested mapping, written inline.
	q, err := Parse(`
		select lake, area, lakes.loc
		from   lakes
		on     lake-map
		at     lakes.loc covered-by
		       select states.loc
		       from   states
		       on     state-map
		       at     states.loc covered-by {4±4, 11±9}`)
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := q.At.Right.(SubqueryTerm)
	if !ok {
		t.Fatalf("right = %#v", q.At.Right)
	}
	if sub.Query.At == nil {
		t.Fatal("nested at-clause missing")
	}
	if _, ok := sub.Query.At.Right.(AreaTerm); !ok {
		t.Fatalf("nested right = %#v", sub.Query.At.Right)
	}
}

func TestParseParenthesizedSubquery(t *testing.T) {
	q, err := Parse(`select loc from lakes on lake-map at loc covered-by
		(select loc from states on state-map)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.At.Right.(SubqueryTerm); !ok {
		t.Fatalf("right = %#v", q.At.Right)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse(`select * from cities`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || len(q.Select) != 0 {
		t.Fatalf("star = %v select = %v", q.Star, q.Select)
	}
}

func TestParseAliases(t *testing.T) {
	q, err := Parse(`select c.city as name from cities c where c.population >= 100`)
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "c" || q.From[0].Binding() != "c" {
		t.Fatalf("alias = %v", q.From[0])
	}
	if q.Select[0].Alias != "name" {
		t.Fatalf("select alias = %v", q.Select[0])
	}
	cr, ok := q.Select[0].Expr.(ColumnRef)
	if !ok || cr.Table != "c" || cr.Column != "city" {
		t.Fatalf("column = %#v", q.Select[0].Expr)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q, err := Parse(`select a from r where a + 2 * 3 > 7 and not b = 1 or c < 2`)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ((a + (2*3) > 7 AND NOT (b=1)) OR (c<2)).
	or, ok := q.Where.(BinaryExpr)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %#v", q.Where)
	}
	and, ok := or.Left.(BinaryExpr)
	if !ok || and.Op != "and" {
		t.Fatalf("left = %#v", or.Left)
	}
	gt, ok := and.Left.(BinaryExpr)
	if !ok || gt.Op != ">" {
		t.Fatalf("and.left = %#v", and.Left)
	}
	plus, ok := gt.Left.(BinaryExpr)
	if !ok || plus.Op != "+" {
		t.Fatalf("gt.left = %#v", gt.Left)
	}
	mul, ok := plus.Right.(BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("plus.right = %#v", plus.Right)
	}
	not, ok := and.Right.(UnaryExpr)
	if !ok || not.Op != "not" {
		t.Fatalf("and.right = %#v", and.Right)
	}
}

func TestParseFunctionCalls(t *testing.T) {
	q, err := Parse(`select area(loc), distance(loc, mbr(loc)) from lakes where area(loc) > 100`)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := q.Select[0].Expr.(FuncCall)
	if !ok || f.Name != "area" || len(f.Args) != 1 {
		t.Fatalf("func = %#v", q.Select[0].Expr)
	}
	nested, ok := q.Select[1].Expr.(FuncCall)
	if !ok || len(nested.Args) != 2 {
		t.Fatalf("nested func = %#v", q.Select[1].Expr)
	}
	if _, ok := nested.Args[1].(FuncCall); !ok {
		t.Fatalf("inner func = %#v", nested.Args[1])
	}
}

func TestParseSpatialOperatorInWhere(t *testing.T) {
	q, err := Parse(`select city from cities, states where cities.loc covered-by states.loc`)
	if err != nil {
		t.Fatal(err)
	}
	be, ok := q.Where.(BinaryExpr)
	if !ok || be.Op != "covered-by" {
		t.Fatalf("where = %#v", q.Where)
	}
}

func TestParseNamedLocation(t *testing.T) {
	q, err := Parse(`select city from cities on us-map at loc covered-by eastern-us`)
	if err != nil {
		t.Fatal(err)
	}
	nt, ok := q.At.Right.(NameTerm)
	if !ok || nt.Name != "eastern-us" {
		t.Fatalf("right = %#v", q.At.Right)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select from x",
		"select a",
		"select a from",
		"select a from x at loc covered-by",
		"select a from x at loc covers {1±1, 2±2}", // not a PSQL operator
		"select a from x at loc covered-by {1±1}",  // malformed area
		"select a from x at loc covered-by {1, 2}", // missing ±
		"select a from x where",
		"select a from x where (a > 1",
		"select a from select",
		"select a from x where a >",
		"select a from x alias trailing", // two trailing identifiers: alias then junk
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseNegativeAreaCoordinates(t *testing.T) {
	q, err := Parse(`select a from x at loc overlapping {-10±5, -20±5}`)
	if err != nil {
		t.Fatal(err)
	}
	ar := q.At.Right.(AreaTerm)
	if ar.CX != -10 || ar.CY != -20 {
		t.Fatalf("area = %+v", ar)
	}
}

func TestSpatialOpString(t *testing.T) {
	ops := map[SpatialOp]string{
		OpCoveredBy:   "covered-by",
		OpCovering:    "covering",
		OpOverlapping: "overlapping",
		OpDisjoined:   "disjoined",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q", int(op), op.String())
		}
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q, err := Parse(`select city, population from cities
		where population > 100
		order by population desc, city
		limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 2 {
		t.Fatalf("order by = %v", q.OrderBy)
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("desc flags wrong: %+v", q.OrderBy)
	}
	if q.Limit == nil || *q.Limit != 5 {
		t.Fatalf("limit = %v", q.Limit)
	}
	// asc is accepted and is the default.
	q2, err := Parse(`select a from x order by a asc`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.OrderBy[0].Desc {
		t.Fatal("asc parsed as desc")
	}
	// Errors.
	for _, bad := range []string{
		`select a from x order a`,
		`select a from x limit -3`,
		`select a from x limit 2.5`,
		`select a from x order by`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
