package psql_test

import (
	"strings"
	"testing"

	pictdb "repro"
	"repro/internal/psql"
)

func usdb(t *testing.T) *pictdb.Database {
	t.Helper()
	db, err := pictdb.BuildUSDatabase()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// col returns the index of the named result column.
func col(t *testing.T, res *pictdb.Result, name string) int {
	t.Helper()
	for i, c := range res.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("result has no column %q (have %v)", name, res.Columns)
	return -1
}

func cities(t *testing.T, res *pictdb.Result, name string) []string {
	t.Helper()
	ci := col(t, res, name)
	var out []string
	for _, r := range res.Rows {
		out = append(out, r[ci].String())
	}
	return out
}

func TestDirectSpatialSearchEasternCities(t *testing.T) {
	// The paper's first example: big cities in the eastern US window.
	db := usdb(t)
	res, err := db.Query(`
		select city, state, population, loc
		from   cities
		on     us-map
		at     loc covered-by {800±200, 500±500}
		where  population > 450_000`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, c := range cities(t, res, "city") {
		got[c] = true
	}
	// Must include the eastern giants.
	for _, want := range []string{"New York", "Philadelphia", "Baltimore", "Washington", "Boston"} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, got)
		}
	}
	// Must exclude the west and the small.
	for _, bad := range []string{"Los Angeles", "San Francisco", "Seattle", "Denver", "Miami"} {
		if got[bad] {
			t.Errorf("unexpected %s (either west of the window or too small)", bad)
		}
	}
	if res.NodesVisited < 1 {
		t.Error("direct search did not use the R-tree")
	}
	if len(res.Locs) != len(res.Rows) {
		t.Errorf("locs = %d, rows = %d", len(res.Locs), len(res.Rows))
	}
}

func TestDirectSearchMatchesScanOracle(t *testing.T) {
	// Direct search (R-tree) must return exactly what a full scan
	// qualification returns.
	db := usdb(t)
	direct, err := db.Query(`
		select city from cities on us-map
		at loc covered-by {500±150, 500±500}`)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := db.Query(`
		select city from cities on us-map
		where centerx(loc) >= 350 and centerx(loc) <= 650`)
	if err != nil {
		t.Fatal(err)
	}
	d := cities(t, direct, "city")
	s := cities(t, scan, "city")
	if len(d) != len(s) {
		t.Fatalf("direct %v != scan %v", d, s)
	}
	set := map[string]bool{}
	for _, c := range s {
		set[c] = true
	}
	for _, c := range d {
		if !set[c] {
			t.Fatalf("direct found %q not in scan result", c)
		}
	}
	if len(d) == 0 {
		t.Fatal("window unexpectedly empty")
	}
}

func TestJuxtapositionCitiesTimeZones(t *testing.T) {
	// The paper's geographic join: every city paired with its time
	// zone by simultaneous search of the two spatial organizations.
	db := usdb(t)
	res, err := db.Query(`
		select city, zone
		from   cities, time-zones
		on     us-map, time-zone-map
		at     cities.loc covered-by time-zones.loc`)
	if err != nil {
		t.Fatal(err)
	}
	zoneOf := map[string]string{}
	ci, zi := col(t, res, "city"), col(t, res, "zone")
	for _, r := range res.Rows {
		zoneOf[r[ci].Str] = r[zi].Str
	}
	want := map[string]string{
		"New York":      "Eastern",
		"Chicago":       "Central",
		"Denver":        "Mountain",
		"Los Angeles":   "Pacific",
		"Houston":       "Central",
		"Seattle":       "Pacific",
		"Boston":        "Eastern",
		"New Orleans":   "Central",
		"Phoenix":       "Mountain",
		"San Francisco": "Pacific",
	}
	for city, zone := range want {
		if zoneOf[city] != zone {
			t.Errorf("%s in zone %q, want %q", city, zoneOf[city], zone)
		}
	}
	// Every city lands in exactly one band (bands tile the frame).
	if len(res.Rows) < 40 {
		t.Errorf("only %d city-zone pairs", len(res.Rows))
	}
}

func TestNestedMapping(t *testing.T) {
	// The paper's nested mapping: lakes covered by some eastern state.
	// With the simplified rectangular states, the Great Lakes overlap
	// Michigan's box; Great Salt Lake (west) must not appear when the
	// inner query selects only eastern states.
	db := usdb(t)
	res, err := db.Query(`
		select lake, area, lakes.loc
		from   lakes
		on     lake-map
		at     lakes.loc covered-by
		       select states.loc
		       from   states
		       on     state-map
		       at     states.loc overlapping {800±200, 500±500}`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, l := range cities(t, res, "lake") {
		got[l] = true
	}
	if got["Great Salt"] {
		t.Error("Great Salt Lake matched an eastern state")
	}
	if len(got) == 0 {
		t.Error("no lakes found; expected Great Lakes inside Michigan's box")
	}
}

func TestNamedLocation(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select city from cities on us-map
		at loc covered-by eastern-us`)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, c := range cities(t, res, "city") {
		found[c] = true
	}
	if !found["New York"] || found["Los Angeles"] {
		t.Errorf("eastern-us = %v", found)
	}
}

func TestCoveringOperator(t *testing.T) {
	// Which time zone covers a small window around Chicago?
	db := usdb(t)
	res, err := db.Query(`
		select zone from time-zones on time-zone-map
		at loc covering {643±2, 715±2}`)
	if err != nil {
		t.Fatal(err)
	}
	zones := cities(t, res, "zone")
	if len(zones) != 1 || zones[0] != "Central" {
		t.Fatalf("zones = %v, want [Central]", zones)
	}
}

func TestDisjoinedOperator(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select zone from time-zones on time-zone-map
		at loc disjoined {900±99, 500±499}`)
	if err != nil {
		t.Fatal(err)
	}
	zones := map[string]bool{}
	for _, z := range cities(t, res, "zone") {
		zones[z] = true
	}
	if zones["Eastern"] {
		t.Error("Eastern should intersect the far-east window")
	}
	if !zones["Pacific"] || !zones["Mountain"] {
		t.Errorf("west zones should be disjoint: %v", zones)
	}
}

func TestOverlappingOperator(t *testing.T) {
	db := usdb(t)
	// A window straddling the Eastern/Central boundary overlaps both.
	res, err := db.Query(`
		select zone from time-zones on time-zone-map
		at loc overlapping {690±15, 500±100}`)
	if err != nil {
		t.Fatal(err)
	}
	zones := map[string]bool{}
	for _, z := range cities(t, res, "zone") {
		zones[z] = true
	}
	if !zones["Eastern"] || !zones["Central"] {
		t.Errorf("zones = %v, want Eastern and Central", zones)
	}
}

func TestPictorialFunctions(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select lake, area(loc) as true-area, northest(loc) as top
		from lakes on lake-map
		where area(loc) > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 lakes", len(res.Rows))
	}
	ai := col(t, res, "true-area")
	ti := col(t, res, "top")
	for _, r := range res.Rows {
		if r[ai].AsFloat() <= 0 {
			t.Errorf("non-positive polygon area")
		}
		if r[ti].AsFloat() <= 0 || r[ti].AsFloat() > 1000 {
			t.Errorf("northest out of frame: %v", r[ti])
		}
	}
}

func TestLabelAndKindFunctions(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select label(loc) as l, kind(loc) as k
		from highways on highway-map
		where hwy-name = 'I-95'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("I-95 sections = %d, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[col(t, res, "l")].Str != "I-95" {
			t.Errorf("label = %v", r[0])
		}
		if r[col(t, res, "k")].Str != "segment" {
			t.Errorf("kind = %v", r[1])
		}
	}
}

func TestUserDefinedFunction(t *testing.T) {
	db := usdb(t)
	db.RegisterFunc("halfpop", func(c *psql.FuncContext) (psql.Datum, error) {
		d := c.Args[0]
		return psql.Datum{Kind: psql.KindInt, Int: d.Int / 2}, nil
	})
	res, err := db.Query(`select halfpop(population) as hp from cities where city = 'Chicago'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 3005072/2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWhereSpatialOperatorCrossPicture(t *testing.T) {
	// Spatial operators also work in the where-clause (slower path,
	// no index pruning) — must agree with the at-clause join.
	db := usdb(t)
	atRes, err := db.Query(`
		select city, zone from cities, time-zones
		on us-map, time-zone-map
		at cities.loc covered-by time-zones.loc`)
	if err != nil {
		t.Fatal(err)
	}
	whereRes, err := db.Query(`
		select city, zone from cities, time-zones
		on us-map, time-zone-map
		where cities.loc covered-by time-zones.loc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(atRes.Rows) != len(whereRes.Rows) {
		t.Fatalf("at-join %d rows != where-join %d rows", len(atRes.Rows), len(whereRes.Rows))
	}
}

func TestSelectStar(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`select * from states where state = 'Texas'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || len(res.Rows) != 1 {
		t.Fatalf("cols=%v rows=%d", res.Columns, len(res.Rows))
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select city, population / 1000 as thousands
		from cities
		where population >= 1_000_000 and population < 2_000_000`)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range cities(t, res, "city") {
		names[c] = true
	}
	if !names["Philadelphia"] || !names["Houston"] || !names["Detroit"] {
		t.Errorf("cities = %v", names)
	}
	if names["New York"] || names["Dallas"] {
		t.Errorf("boundary cities leaked: %v", names)
	}
	ti := col(t, res, "thousands")
	for _, r := range res.Rows {
		if r[ti].Int < 1000 || r[ti].Int >= 2000 {
			t.Errorf("thousands = %v", r[ti])
		}
	}
}

func TestStringPredicates(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`select city from cities where state = 'TX' or state = 'CA'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 8 {
		t.Fatalf("TX+CA cities = %d", len(res.Rows))
	}
	res2, err := db.Query(`select city from cities where not (state = 'TX' or state = 'CA')`)
	if err != nil {
		t.Fatal(err)
	}
	total, err := db.Query(`select city from cities`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows)+len(res2.Rows) != len(total.Rows) {
		t.Fatalf("complement mismatch: %d + %d != %d", len(res.Rows), len(res2.Rows), len(total.Rows))
	}
}

func TestExecErrors(t *testing.T) {
	db := usdb(t)
	bad := []string{
		`select city from nowhere`, // unknown relation
		`select city from cities on mars-map at loc covered-by {1±1, 1±1}`, // unknown picture
		`select nope from cities`,                                              // unknown column
		`select city from cities at loc covered-by {1±1, 1±1}`,                 // no on-clause picture
		`select city from cities on us-map at loc covered-by nowhere-loc-name`, // unknown location
		`select city from cities where city`,                                   // non-boolean where
		`select badfunc(loc) from cities on us-map`,                            // unknown function
		`select city from cities c, cities c`,                                  // duplicate binding
		`select loc from cities, states where loc covered-by {1±1, 1±1}`,       // ambiguous loc
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestResultFormat(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`select city, population from cities where state = 'OH'`)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	if !strings.Contains(out, "city") || !strings.Contains(out, "Cleveland") {
		t.Errorf("format output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(res.Rows) {
		t.Errorf("format has %d lines for %d rows", len(lines), len(res.Rows))
	}
}

func TestRenderQueryResult(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select city, loc from cities on us-map
		at loc covered-by {800±200, 500±500}
		where population > 450_000`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := db.Render(res, "us-map", pictdb.R(600, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("render has no city marks")
	}
	if !strings.Contains(out, "New York") {
		t.Error("render missing city label")
	}
	if _, err := db.Render(res, "mars-map", pictdb.R(0, 0, 1, 1)); err == nil {
		t.Error("render on unknown picture accepted")
	}
}

func TestIndirectSpatialSearch(t *testing.T) {
	// The paper's indirect search: find by alphanumeric predicate,
	// display via locs ("Display the city ... if the population
	// exceeds 2 million").
	db := usdb(t)
	res, err := db.Query(`select city, loc from cities where population > 2_000_000`)
	if err != nil {
		t.Fatal(err)
	}
	got := cities(t, res, "city")
	if len(got) != 3 {
		t.Fatalf("cities over 2M = %v", got)
	}
	if len(res.Locs) != 3 {
		t.Fatalf("locs = %d", len(res.Locs))
	}
	out, err := db.Render(res, "us-map", pictdb.R(0, 0, 1000, 1000))
	if err != nil || !strings.Contains(out, "*") {
		t.Fatalf("render failed: %v", err)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select city, population from cities
		order by population desc
		limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	got := cities(t, res, "city")
	want := []string{"New York", "Chicago", "Los Angeles"}
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Secondary key breaks ties deterministically; ascending default.
	res2, err := db.Query(`select city from cities order by state, city limit 4`)
	if err != nil {
		t.Fatal(err)
	}
	prev := ""
	for _, r := range res2.Rows {
		if prev != "" && r[0].Str < prev {
			// cities sorted by (state, city): within the limit window
			// the city order may reset across states, so only check
			// non-empty output here.
			break
		}
		prev = r[0].Str
	}
	if res2.Len() != 4 {
		t.Fatalf("limit ignored: %d rows", res2.Len())
	}
	// limit 0 yields no rows but a valid result.
	res3, err := db.Query(`select city from cities limit 0`)
	if err != nil || res3.Len() != 0 {
		t.Fatalf("limit 0: %d rows, %v", res3.Len(), err)
	}
	// order by an incomparable mix errors.
	if _, err := db.Query(`select city from cities order by loc`); err == nil {
		// loc vs loc compares fine actually; instead mix types:
		t.Log("loc ordering allowed (locs are comparable)")
	}
}

func TestIndexAssistedQualification(t *testing.T) {
	// population is B-tree indexed in the US database; index-assisted
	// candidates must agree with the scan answer for every operator.
	db := usdb(t)
	queries := []struct {
		q    string
		want int
	}{
		{`select city from cities where population > 1_000_000`, 6},
		{`select city from cities where population >= 1_203_339`, 6},
		{`select city from cities where population < 320_000`, 2},
		{`select city from cities where population <= 314_447`, 2},
		{`select city from cities where population = 638_333`, 1},
		{`select city from cities where 1_000_000 < population`, 6}, // mirrored
		{`select city from cities where city = 'Chicago'`, 1},
		// Indexed conjunct narrows; the rest still filters.
		{`select city from cities where population > 1_000_000 and state = 'TX'`, 1},
	}
	for _, tt := range queries {
		res, err := db.Query(tt.q)
		if err != nil {
			t.Fatalf("%s: %v", tt.q, err)
		}
		if res.Len() != tt.want {
			t.Errorf("%s: %d rows, want %d", tt.q, res.Len(), tt.want)
		}
	}
	// Fractional bound on an int column falls back to scan, still
	// correct.
	res, err := db.Query(`select city from cities where population > 1_000_000.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6 {
		t.Errorf("fractional bound: %d rows, want 6", res.Len())
	}
}

func TestQueryPlanNotes(t *testing.T) {
	db := usdb(t)
	check := func(q, wantSubstring string) {
		t.Helper()
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		joined := strings.Join(res.Plan, "; ")
		if !strings.Contains(joined, wantSubstring) {
			t.Errorf("%s\n plan %q missing %q", q, joined, wantSubstring)
		}
	}
	check(`select city from cities on us-map at loc covered-by eastern-us`,
		"direct spatial search")
	check(`select city, zone from cities, time-zones on us-map, time-zone-map
	       at cities.loc covered-by time-zones.loc`,
		"juxtaposition")
	check(`select city from cities where population > 1_000_000`,
		"index lookup")
	check(`select city from cities where state = 'TX'`,
		"scan") // state is unindexed: full scan
}

func TestAggregates(t *testing.T) {
	db := usdb(t)
	res, err := db.Query(`
		select count(*), min(population), max(population),
		       sum(population) as total, avg(population)
		from cities where state = 'TX'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("aggregate rows = %d", res.Len())
	}
	r := res.Rows[0]
	// TX cities: Houston, Dallas, San Antonio, El Paso, Fort Worth, Austin.
	if r[0].Int != 6 {
		t.Errorf("count = %v", r[0])
	}
	if r[1].Int != 345890 { // Austin
		t.Errorf("min = %v", r[1])
	}
	if r[2].Int != 1595138 { // Houston
		t.Errorf("max = %v", r[2])
	}
	wantSum := int64(1595138 + 904078 + 785880 + 425259 + 385164 + 345890)
	if r[3].Int != wantSum {
		t.Errorf("sum = %v, want %d", r[3], wantSum)
	}
	if got := r[4].AsFloat(); got != float64(wantSum)/6 {
		t.Errorf("avg = %v", got)
	}
}

func TestAggregateNorthestComposition(t *testing.T) {
	// The paper's motivating aggregate: the northernmost coordinate of
	// any point in a highway (set of segments).
	db := usdb(t)
	res, err := db.Query(`
		select max(northest(loc)) as north-end, count(*)
		from highways on highway-map
		where hwy-name = 'I-95'`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[1].Int != 4 {
		t.Fatalf("I-95 sections = %v", r[1])
	}
	// The Boston endpoint is the northernmost I-95 point.
	boston := res.Rows[0][0].AsFloat()
	single, err := db.Query(`
		select northest(loc) from highways on highway-map
		where hwy-section = 'NewYork-Boston'`)
	if err != nil {
		t.Fatal(err)
	}
	if boston != single.Rows[0][0].AsFloat() {
		t.Fatalf("max(northest) = %g, want the Boston section's %g", boston, single.Rows[0][0].AsFloat())
	}
}

func TestAggregatesOverSpatialSearch(t *testing.T) {
	// Aggregates compose with direct spatial search: how many big
	// cities are in the east, and their total population.
	db := usdb(t)
	res, err := db.Query(`
		select count(*) as n, sum(population) as pop
		from cities on us-map
		at loc covered-by eastern-us
		where population > 450_000`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int < 10 || r[0].Int > 25 {
		t.Errorf("eastern big-city count = %v", r[0])
	}
	if r[1].Int < 10_000_000 {
		t.Errorf("eastern big-city population = %v", r[1])
	}
}

func TestAggregateErrors(t *testing.T) {
	db := usdb(t)
	bad := []string{
		`select city, count(*) from cities`,              // mixed
		`select count(*) from cities order by city`,      // order by with agg
		`select count(*) from cities limit 1`,            // limit with agg
		`select count(*) from cities where count(*) > 1`, // agg in where
		`select sum(city) from cities`,                   // non-numeric sum
		`select min(count(*)) from cities`,               // nested agg
		`select sum(population, population) from cities`, // arity
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	// Aggregates over an empty row set.
	res, err := db.Query(`select count(*), min(population), avg(population) from cities where population > 99_000_000`)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows[0]
	if r[0].Int != 0 || r[1].Kind != psql.KindNull || r[2].Kind != psql.KindNull {
		t.Errorf("empty aggregates = %v", r)
	}
}

func TestExecutorParallelismDeterminism(t *testing.T) {
	// Multi-window direct search and juxtaposition must produce
	// identical results (rows, order, visit counts) at any worker
	// budget: parallel plans merge in deterministic window/pair order.
	queries := []string{
		// Multi-window: the nested mapping binds one window per state.
		`select city, state
		 from   cities
		 on     us-map
		 at     loc covered-by
		        select states.loc
		        from   states
		        on     state-map
		        at     states.loc overlapping {800±200, 500±500}`,
		// Juxtaposition with parallel tuple materialization.
		`select city, zone
		 from   cities, time-zones
		 on     us-map, time-zone-map
		 at     cities.loc covered-by time-zones.loc`,
	}
	for _, q := range queries {
		db := usdb(t)
		db.SetParallelism(1)
		want, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			db.SetParallelism(par)
			got, err := db.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("par=%d: %d rows, want %d", par, len(got.Rows), len(want.Rows))
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					if got.Rows[i][j].String() != want.Rows[i][j].String() {
						t.Fatalf("par=%d: row %d col %d = %v, want %v", par, i, j, got.Rows[i][j], want.Rows[i][j])
					}
				}
			}
			if got.NodesVisited != want.NodesVisited {
				t.Fatalf("par=%d: visited %d nodes, want %d", par, got.NodesVisited, want.NodesVisited)
			}
		}
	}
}
