// Package psql implements PSQL, the paper's pictorial query language:
// lexer, parser, and executor for the extended mapping
//
//	select <attribute-target-list>
//	from   <relation-list>
//	on     <picture-list>
//	at     <area-specification>
//	where  <qualification>
//
// including the spatial comparison operators (covering, covered-by,
// overlapping, disjoined), area literals {x±dx, y±dy}, pictorial
// functions on loc values, juxtaposition of relations over multiple
// pictures (the "geographic join"), and nested mappings whose inner
// result binds the outer at-clause.
package psql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier; PSQL identifiers may contain hyphens
	// (us-map, covered-by, time-zones), matching the paper's syntax.
	TokIdent
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a quoted string literal.
	TokString
	// TokComma is ','.
	TokComma
	// TokDot is '.'.
	TokDot
	// TokLParen and TokRParen are '(' and ')'.
	TokLParen
	TokRParen
	// TokLBrace and TokRBrace are '{' and '}': area literals.
	TokLBrace
	TokRBrace
	// TokPlusMinus is '±' (or the ASCII form '+-').
	TokPlusMinus
	// TokOp is a comparison or arithmetic operator.
	TokOp
	// TokStar is '*', both the select-all marker and multiplication.
	TokStar
)

// String names the kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokComma:
		return "','"
	case TokDot:
		return "'.'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokPlusMinus:
		return "'±'"
	case TokOp:
		return "operator"
	case TokStar:
		return "'*'"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Error is a PSQL syntax or execution error with a position.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("psql: at offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
