package psql

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/picture"
	"repro/internal/relation"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Catalog resolves names in queries: relations, pictures, and named
// locations ("a name of a location predefined outside the retrieve
// mapping").
type Catalog interface {
	Relation(name string) (*relation.Relation, bool)
	Picture(name string) (*picture.Picture, bool)
	Location(name string) (geom.Rect, bool)
}

// Executor runs PSQL queries against a catalog.
type Executor struct {
	cat   Catalog
	funcs map[string]Func
	// MaxProductRows caps unindexed cartesian products as a safety
	// net; zero means the default of one million.
	MaxProductRows int
	// Parallelism caps the worker goroutines used for multi-window
	// direct search and join materialization; zero or negative means
	// runtime.GOMAXPROCS(0). Query results are identical at any
	// setting — parallel plans merge in deterministic window/pair
	// order.
	Parallelism int
}

// parallelism resolves the executor's worker budget.
func (e *Executor) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// NewExecutor returns an executor with the builtin function registry.
func NewExecutor(cat Catalog) *Executor {
	return &Executor{cat: cat, funcs: builtinFuncs()}
}

// RegisterFunc installs (or replaces) a PSQL-callable function — the
// paper's application-defined extension hook.
func (e *Executor) RegisterFunc(name string, f Func) {
	e.funcs[strings.ToLower(name)] = f
}

// Run parses and executes one PSQL mapping.
func (e *Executor) Run(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Exec(q)
}

// binding is one from-clause entry resolved against the catalog.
type binding struct {
	name    string // alias or relation name
	rel     *relation.Relation
	schema  relation.Schema
	picture string // picture from the on-clause, "" when none
}

// row is one candidate result row: a tuple per binding.
type row struct {
	ids    []storage.TupleID
	tuples []relation.Tuple
}

// execState carries one query execution.
type execState struct {
	e        *Executor
	q        *Query
	bindings []binding
	visited  int
	plan     []string
}

// note records one access-path decision for Result.Plan.
func (st *execState) note(format string, args ...any) {
	st.plan = append(st.plan, fmt.Sprintf(format, args...))
}

// Exec executes a parsed query.
func (e *Executor) Exec(q *Query) (*Result, error) {
	st := &execState{e: e, q: q}
	if err := st.resolveFrom(); err != nil {
		return nil, err
	}
	rows, err := st.candidateRows()
	if err != nil {
		return nil, err
	}
	// Qualification filter.
	if q.Where != nil && hasAggregate(q.Where) {
		return nil, fmt.Errorf("psql: aggregates are not allowed in the where-clause")
	}
	if q.Where != nil {
		kept := rows[:0]
		for _, r := range rows {
			d, err := st.eval(q.Where, &r)
			if err != nil {
				return nil, err
			}
			ok, err := d.Truth()
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, r)
			}
		}
		rows = kept
	}
	// An aggregated target list collapses to one row; order-by and
	// limit are meaningless then.
	for _, it := range q.Select {
		if isAggregate(it.Expr) {
			if len(q.OrderBy) > 0 || q.Limit != nil {
				return nil, fmt.Errorf("psql: order by / limit cannot combine with aggregates")
			}
			return st.projectAggregates(rows)
		}
	}
	if len(q.OrderBy) > 0 {
		if err := st.orderRows(rows); err != nil {
			return nil, err
		}
	}
	if q.Limit != nil && len(rows) > *q.Limit {
		rows = rows[:*q.Limit]
	}
	return st.project(rows)
}

func (st *execState) resolveFrom() error {
	q := st.q
	if len(q.From) == 0 {
		return fmt.Errorf("psql: query has no from-clause")
	}
	seen := map[string]bool{}
	for i, ref := range q.From {
		rel, ok := st.e.cat.Relation(ref.Relation)
		if !ok {
			return fmt.Errorf("psql: unknown relation %q", ref.Relation)
		}
		b := binding{name: ref.Binding(), rel: rel, schema: rel.Schema()}
		if seen[b.name] {
			return fmt.Errorf("psql: duplicate relation binding %q", b.name)
		}
		seen[b.name] = true
		// Positional on-clause match; a single picture applies to all.
		switch {
		case len(q.On) == 0:
		case len(q.On) == 1:
			b.picture = q.On[0]
		case len(q.On) == len(q.From):
			b.picture = q.On[i]
		default:
			return fmt.Errorf("psql: on-clause lists %d pictures for %d relations", len(q.On), len(q.From))
		}
		if b.picture != "" {
			if _, ok := st.e.cat.Picture(b.picture); !ok {
				return fmt.Errorf("psql: unknown picture %q", b.picture)
			}
		}
		st.bindings = append(st.bindings, b)
	}
	return nil
}

// bindingIndex resolves a table name (alias) to its binding index; an
// empty table name matches when there is exactly one binding.
func (st *execState) bindingIndex(table string, pos int) (int, error) {
	if table == "" {
		if len(st.bindings) == 1 {
			return 0, nil
		}
		return 0, errf(pos, "ambiguous unqualified loc with %d relations", len(st.bindings))
	}
	for i, b := range st.bindings {
		if b.name == table {
			return i, nil
		}
	}
	return 0, errf(pos, "unknown relation %q", table)
}

// scanIDs returns every tuple id of binding i.
func (st *execState) scanIDs(i int) ([]storage.TupleID, error) {
	var out []storage.TupleID
	err := st.bindings[i].rel.Scan(func(id storage.TupleID, _ relation.Tuple) bool {
		out = append(out, id)
		return true
	})
	return out, err
}

// spatialPred returns the geometry predicate for op with the object
// MBR as first argument and the window as second.
func spatialPred(op SpatialOp) func(obj, win geom.Rect) bool {
	switch op {
	case OpCovering:
		return geom.Covers
	case OpOverlapping:
		return geom.Overlapping
	case OpDisjoined:
		return geom.Disjoined
	default:
		return geom.CoveredBy
	}
}

// converse returns the operator with its arguments swapped.
func converse(op SpatialOp) SpatialOp {
	switch op {
	case OpCovering:
		return OpCoveredBy
	case OpCoveredBy:
		return OpCovering
	default:
		return op // overlapping and disjoined are symmetric
	}
}

// candidateRows builds the candidate row set, using the at-clause and
// the R-trees for direct spatial search whenever possible; absent an
// at-clause, a single-relation query with an indexable qualification
// conjunct uses the B-tree index instead of a scan — the paper's
// "indexed the usual way" alphanumeric path.
func (st *execState) candidateRows() ([]row, error) {
	at := st.q.At
	if at == nil {
		if len(st.bindings) == 1 {
			if ids, ok := st.indexedCandidates(); ok {
				return st.cartesian(map[int][]storage.TupleID{0: ids})
			}
		}
		st.note("scan: full scan of %d relation(s)", len(st.bindings))
		return st.cartesian(nil)
	}

	// Normalize: if the left side is not a loc term but the right is,
	// flip using the converse operator so the loc ends up on the left.
	left, op, right := at.Left, at.Op, at.Right
	if _, lok := left.(LocTerm); !lok {
		if _, rok := right.(LocTerm); rok {
			left, right = right, left
			op = converse(op)
		}
	}

	switch l := left.(type) {
	case LocTerm:
		bi, err := st.bindingIndex(l.Table, l.Pos)
		if err != nil {
			return nil, err
		}
		switch r := right.(type) {
		case LocTerm:
			// Juxtaposition: simultaneous search of two R-trees.
			bj, err := st.bindingIndex(r.Table, r.Pos)
			if err != nil {
				return nil, err
			}
			if bi == bj {
				return nil, errf(at.Pos, "at-clause relates %q to itself", l.Table)
			}
			st.note("juxtaposition: simultaneous R-tree traversal of %q and %q (%s)",
				st.bindings[bi].name, st.bindings[bj].name, op)
			return st.juxtapose(bi, bj, op)
		default:
			windows, err := st.termWindows(right)
			if err != nil {
				return nil, err
			}
			ids, err := st.directSearch(bi, op, windows)
			if err != nil {
				return nil, err
			}
			st.note("direct spatial search: R-tree of %q on %q, %d window(s), %s",
				st.bindings[bi].name, st.bindings[bi].picture, len(windows), op)
			fixed := map[int][]storage.TupleID{bi: ids}
			return st.cartesian(fixed)
		}
	default:
		// No loc side at all: a constant predicate.
		lw, err := st.termWindows(left)
		if err != nil {
			return nil, err
		}
		rw, err := st.termWindows(right)
		if err != nil {
			return nil, err
		}
		pred := spatialPred(op)
		hold := false
		for _, a := range lw {
			for _, b := range rw {
				if pred(a, b) {
					hold = true
				}
			}
		}
		if !hold {
			return nil, nil
		}
		return st.cartesian(nil)
	}
}

// indexedCandidates inspects the qualification's top-level AND
// conjuncts for the first "column op literal" (or "literal op column")
// predicate over an indexed column of the single bound relation, and
// answers it with a B-tree range lookup. The full qualification is
// still evaluated afterwards, so using the index only narrows the
// candidates. ok is false when no conjunct is indexable.
func (st *execState) indexedCandidates() ([]storage.TupleID, bool) {
	b := st.bindings[0]
	var conjuncts []Expr
	var split func(e Expr)
	split = func(e Expr) {
		if be, isBin := e.(BinaryExpr); isBin && be.Op == "and" {
			split(be.Left)
			split(be.Right)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	if st.q.Where == nil {
		return nil, false
	}
	split(st.q.Where)

	for _, c := range conjuncts {
		be, isBin := c.(BinaryExpr)
		if !isBin {
			continue
		}
		col, lit, op, ok := columnVsLiteral(be)
		if !ok {
			continue
		}
		if col.Table != "" && col.Table != b.name {
			continue
		}
		ci := b.schema.ColumnIndex(col.Column)
		if ci < 0 || b.rel.Index(col.Column) == nil {
			continue
		}
		v, ok := literalAsColumnValue(lit, b.schema.Columns[ci].Type)
		if !ok {
			continue
		}
		var lo, hi *relation.Bound
		switch op {
		case "=":
			lo = &relation.Bound{Value: v, Inclusive: true}
			hi = &relation.Bound{Value: v, Inclusive: true}
		case ">":
			lo = &relation.Bound{Value: v}
		case ">=":
			lo = &relation.Bound{Value: v, Inclusive: true}
		case "<":
			hi = &relation.Bound{Value: v}
		case "<=":
			hi = &relation.Bound{Value: v, Inclusive: true}
		default:
			continue
		}
		if ids, used := b.rel.LookupRange(col.Column, lo, hi); used {
			st.note("index lookup: B-tree on %s.%s (%s)", b.name, col.Column, op)
			return ids, true
		}
	}
	return nil, false
}

// columnVsLiteral matches "col op literal" or its mirror, normalizing
// the operator so the column is on the left.
func columnVsLiteral(be BinaryExpr) (ColumnRef, Expr, string, bool) {
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
	if _, ok := flip[be.Op]; !ok {
		return ColumnRef{}, nil, "", false
	}
	if col, ok := be.Left.(ColumnRef); ok && isLiteralExpr(be.Right) {
		return col, be.Right, be.Op, true
	}
	if col, ok := be.Right.(ColumnRef); ok && isLiteralExpr(be.Left) {
		return col, be.Left, flip[be.Op], true
	}
	return ColumnRef{}, nil, "", false
}

func isLiteralExpr(e Expr) bool {
	switch v := e.(type) {
	case NumberLit, StringLit:
		return true
	case UnaryExpr:
		if v.Op != "-" {
			return false
		}
		_, num := v.Expr.(NumberLit)
		return num
	}
	return false
}

// literalAsColumnValue converts a literal expression to a relation
// value of the column's type, so index keys order correctly.
func literalAsColumnValue(e Expr, t relation.Type) (relation.Value, bool) {
	neg := false
	if u, isU := e.(UnaryExpr); isU {
		neg = true
		e = u.Expr
	}
	switch lit := e.(type) {
	case NumberLit:
		f := lit.Value
		i := lit.Int
		if neg {
			f, i = -f, -i
		}
		switch t {
		case relation.TypeInt:
			if !lit.IsInt {
				// A fractional bound on an int column: fall back to
				// the scan path rather than rounding.
				return relation.Value{}, false
			}
			return relation.I(i), true
		case relation.TypeFloat:
			return relation.F(f), true
		}
	case StringLit:
		if t == relation.TypeString && !neg {
			return relation.S(lit.Value), true
		}
	}
	return relation.Value{}, false
}

// termWindows evaluates a non-loc spatial term to one or more windows.
func (st *execState) termWindows(t SpatialTerm) ([]geom.Rect, error) {
	switch tt := t.(type) {
	case AreaTerm:
		return []geom.Rect{geom.WindowAt(tt.CX, tt.DX, tt.CY, tt.DY)}, nil
	case NameTerm:
		r, ok := st.e.cat.Location(tt.Name)
		if !ok {
			return nil, errf(tt.Pos, "unknown location %q", tt.Name)
		}
		return []geom.Rect{r}, nil
	case SubqueryTerm:
		// Nested mapping: run it, collect the loc/area values of its
		// rows as windows — "The binding of the top level window is
		// dynamically done during the evaluation of the query."
		res, err := st.e.Exec(tt.Query)
		if err != nil {
			return nil, err
		}
		st.visited += res.NodesVisited
		var out []geom.Rect
		for _, r := range res.Rows {
			for _, d := range r {
				if d.Kind == KindLoc || d.Kind == KindRect {
					out = append(out, d.Rect)
				}
			}
		}
		if len(out) == 0 {
			return nil, errf(tt.Pos, "nested mapping produced no locations (select a loc column)")
		}
		return out, nil
	case LocTerm:
		return nil, errf(tt.Pos, "internal: loc term where a window was expected")
	}
	return nil, fmt.Errorf("psql: unhandled spatial term %T", t)
}

// directSearch finds the tuples of binding bi whose loc satisfies op
// against any of the windows, via the R-tree when the operator admits
// intersection pruning.
func (st *execState) directSearch(bi int, op SpatialOp, windows []geom.Rect) ([]storage.TupleID, error) {
	b := st.bindings[bi]
	if b.picture == "" {
		return nil, fmt.Errorf("psql: relation %q has no picture in the on-clause for direct search", b.name)
	}
	si := b.rel.Spatial(b.picture)
	if si == nil {
		return nil, fmt.Errorf("psql: relation %q is not spatially indexed on picture %q", b.name, b.picture)
	}
	pred := spatialPred(op)
	seen := map[storage.TupleID]bool{}
	var out []storage.TupleID
	if op == OpDisjoined {
		// Disjointness cannot be pruned by intersection: scan all
		// leaf entries per window.
		for _, w := range windows {
			st.visited += si.Tree.Search(si.Tree.Bounds(), func(it rtree.Item) bool {
				if pred(it.Rect, w) {
					id := storage.TupleIDFromInt64(it.Data)
					if !seen[id] {
						seen[id] = true
						out = append(out, id)
					}
				}
				return true
			})
		}
		return out, nil
	}
	// Batched direct search: all windows answered through the R-tree's
	// concurrent read path, then merged in window order so the result
	// (and its dedup order) matches the sequential loop exactly.
	batches, visited, err := b.rel.SearchAreaBatch(b.picture, windows, pred, st.e.parallelism())
	if err != nil {
		return nil, err
	}
	st.visited += visited
	for _, ids := range batches {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out, nil
}

// juxtapose performs the paper's geographic join between bindings bi
// and bj via simultaneous R-tree traversal, producing joined rows.
func (st *execState) juxtapose(bi, bj int, op SpatialOp) ([]row, error) {
	if len(st.bindings) != 2 {
		return nil, fmt.Errorf("psql: juxtaposition currently joins exactly two relations, got %d", len(st.bindings))
	}
	a, b := st.bindings[bi], st.bindings[bj]
	if a.picture == "" || b.picture == "" {
		return nil, fmt.Errorf("psql: juxtaposition requires pictures for both relations")
	}
	sa := a.rel.Spatial(a.picture)
	sb := b.rel.Spatial(b.picture)
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("psql: juxtaposition requires spatial indexes on both relations")
	}
	pred := spatialPred(op)
	type pair struct{ x, y storage.TupleID }
	var pairs []pair
	if op == OpDisjoined {
		// Nested loop: disjoint pairs are exactly what tree pruning
		// eliminates.
		for _, ia := range sa.Tree.Items() {
			for _, ib := range sb.Tree.Items() {
				if pred(ia.Rect, ib.Rect) {
					pairs = append(pairs, pair{storage.TupleIDFromInt64(ia.Data), storage.TupleIDFromInt64(ib.Data)})
				}
			}
		}
		st.visited += sa.Tree.NodeCount() + sb.Tree.NodeCount()
	} else {
		// Parallel simultaneous traversal; pair order and visit count
		// are worker-count-independent, so the result rows stay
		// deterministic.
		jp, visited, err := a.rel.JuxtaposeSpatial(a.picture, b.rel, b.picture,
			func(x, y geom.Rect) bool { return pred(x, y) }, st.e.parallelism())
		if err != nil {
			return nil, err
		}
		st.visited += visited
		pairs = make([]pair, len(jp))
		for i, p := range jp {
			pairs[i] = pair{p.A, p.B}
		}
	}
	// Materialize the joined tuples. Heap reads are pure pager fetches
	// (thread-safe through the sharded pool), so fan the Gets out over
	// index ranges; each worker fills only its own row slots, keeping
	// the output in pair order regardless of scheduling.
	rows := make([]row, len(pairs))
	workers := st.e.parallelism()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i, p := range pairs {
			if err := st.materializePair(&rows[i], a, b, bi, bj, p.x, p.y); err != nil {
				return nil, err
			}
		}
		return rows, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := st.materializePair(&rows[i], a, b, bi, bj, pairs[i].x, pairs[i].y); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// materializePair fetches the two tuples of one join pair into r.
func (st *execState) materializePair(r *row, a, b binding, bi, bj int, x, y storage.TupleID) error {
	ta, err := a.rel.Get(x)
	if err != nil {
		return err
	}
	tb, err := b.rel.Get(y)
	if err != nil {
		return err
	}
	r.ids = make([]storage.TupleID, 2)
	r.tuples = make([]relation.Tuple, 2)
	r.ids[bi], r.tuples[bi] = x, ta
	r.ids[bj], r.tuples[bj] = y, tb
	return nil
}

// cartesian builds the product of candidate id lists; fixed overrides
// the candidate list for specific bindings, others are full scans.
func (st *execState) cartesian(fixed map[int][]storage.TupleID) ([]row, error) {
	lists := make([][]storage.TupleID, len(st.bindings))
	product := 1
	limit := st.e.MaxProductRows
	if limit <= 0 {
		limit = 1_000_000
	}
	for i := range st.bindings {
		if ids, ok := fixed[i]; ok {
			lists[i] = ids
		} else {
			ids, err := st.scanIDs(i)
			if err != nil {
				return nil, err
			}
			lists[i] = ids
		}
		product *= len(lists[i])
		if product > limit {
			return nil, fmt.Errorf("psql: cartesian product exceeds %d rows; add an at-clause", limit)
		}
	}
	if product == 0 {
		return nil, nil
	}
	rows := make([]row, 0, product)
	idx := make([]int, len(lists))
	for {
		r := row{ids: make([]storage.TupleID, len(lists)), tuples: make([]relation.Tuple, len(lists))}
		for i, l := range lists {
			id := l[idx[i]]
			t, err := st.bindings[i].rel.Get(id)
			if err != nil {
				return nil, err
			}
			r.ids[i], r.tuples[i] = id, t
		}
		rows = append(rows, r)
		// Odometer increment.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(lists[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return rows, nil
		}
	}
}

// orderRows sorts rows by the order-by keys. Key expressions are
// evaluated per row; evaluation or comparison errors abort the query.
func (st *execState) orderRows(rows []row) error {
	keys := make([][]Datum, len(rows))
	for i := range rows {
		ks := make([]Datum, len(st.q.OrderBy))
		for j, ob := range st.q.OrderBy {
			d, err := st.eval(ob.Expr, &rows[i])
			if err != nil {
				return err
			}
			ks[j] = d
		}
		keys[i] = ks
	}
	// Sort an index permutation (keys and rows must move together).
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j, ob := range st.q.OrderBy {
			c, err := compare(ka[j], kb[j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	sorted := make([]row, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	copy(rows, sorted)
	return nil
}

// project evaluates the target list over the qualifying rows.
func (st *execState) project(rows []row) (*Result, error) {
	res := &Result{NodesVisited: st.visited, Plan: st.plan}

	// Expand the target list.
	var items []SelectItem
	if st.q.Star {
		for bi, b := range st.bindings {
			for _, col := range b.schema.Columns {
				ref := ColumnRef{Column: col.Name}
				if len(st.bindings) > 1 {
					ref.Table = st.bindings[bi].name
				}
				items = append(items, SelectItem{Expr: ref})
			}
		}
	} else {
		items = st.q.Select
	}
	for _, it := range items {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		res.Columns = append(res.Columns, name)
	}

	for _, r := range rows {
		out := make([]Datum, len(items))
		for i, it := range items {
			d, err := st.eval(it.Expr, &r)
			if err != nil {
				return nil, err
			}
			out[i] = d
			if d.Kind == KindLoc {
				res.Locs = append(res.Locs, d.Loc)
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
