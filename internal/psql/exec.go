package psql

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/picture"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Catalog resolves names in queries: relations, pictures, and named
// locations ("a name of a location predefined outside the retrieve
// mapping").
type Catalog interface {
	Relation(name string) (*relation.Relation, bool)
	Picture(name string) (*picture.Picture, bool)
	Location(name string) (geom.Rect, bool)
}

// Executor runs PSQL queries against a catalog. It is safe for
// concurrent use: Run calls may race with each other and with
// RegisterFunc (the statement cache and function registry are locked
// internally); MaxProductRows and Parallelism should be configured
// before the executor is shared.
type Executor struct {
	cat   Catalog
	mu    sync.RWMutex // guards funcs
	funcs map[string]Func
	cache *stmtCache
	// MaxProductRows caps unindexed cartesian products as a safety
	// net; zero means the default of one million.
	MaxProductRows int
	// Parallelism caps the worker goroutines used for multi-window
	// direct search, join materialization, and batched tuple fetch;
	// zero or negative means runtime.GOMAXPROCS(0). Query results are
	// identical at any setting — parallel plans merge in deterministic
	// window/pair order.
	Parallelism int
}

// parallelism resolves the executor's worker budget.
func (e *Executor) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// NewExecutor returns an executor with the builtin function registry
// and a statement cache of DefaultStatementCacheSize entries.
func NewExecutor(cat Catalog) *Executor {
	return &Executor{cat: cat, funcs: builtinFuncs(), cache: newStmtCache(0)}
}

// RegisterFunc installs (or replaces) a PSQL-callable function — the
// paper's application-defined extension hook. Cached statements that
// call name are invalidated, so queries parsed before the registration
// still see the new implementation.
func (e *Executor) RegisterFunc(name string, f Func) {
	name = strings.ToLower(name)
	e.mu.Lock()
	e.funcs[name] = f
	e.mu.Unlock()
	e.cache.invalidateFunc(name)
}

// lookupFunc resolves a registered function under the registry lock.
func (e *Executor) lookupFunc(name string) (Func, bool) {
	e.mu.RLock()
	f, ok := e.funcs[name]
	e.mu.RUnlock()
	return f, ok
}

// CacheStats reports the statement cache's hit/miss/eviction counters.
func (e *Executor) CacheStats() CacheStats { return e.cache.stats() }

// Run parses and executes one PSQL mapping, reusing the cached parse
// and analysis when the exact query text was run before.
func (e *Executor) Run(src string) (*Result, error) {
	if ent, ok := e.cache.get(src); ok {
		return e.exec(ent.q, ent.an, execOpts{})
	}
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	an := analyze(q)
	e.cache.put(src, q, an)
	return e.exec(q, an, execOpts{})
}

// RunNaive parses and executes src through the naive reference path:
// no statement cache, no cost-based planning, no batched
// materialization — full scans, nested loops, and per-id tuple
// fetches. Rows, Columns, and Locs are identical to Run's (both paths
// emit canonical row order); NodesVisited differs because the naive
// path touches no index. It exists as the oracle the planned executor
// is tested against.
func (e *Executor) RunNaive(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.exec(q, analyze(q), execOpts{naive: true})
}

// Prepared is a statement parsed and analyzed once, whose at-clause
// window is supplied per execution — the prepared-parameter path for
// repeated point-in-window queries, including windows inside nested
// mappings.
type Prepared struct {
	e   *Executor
	q   *Query
	an  *analysis
	pos int // source position of the area literal ExecWindow overrides
}

// Prepare parses src and binds its single at-clause area literal as
// the statement's window parameter. The literal may sit in the outer
// query or in a nested mapping; a statement with zero or multiple area
// literals cannot be prepared this way.
func (e *Executor) Prepare(src string) (*Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	an := analyze(q)
	if len(an.areas) != 1 {
		return nil, fmt.Errorf("psql: prepare needs exactly one at-clause area literal, found %d", len(an.areas))
	}
	return &Prepared{e: e, q: q, an: an, pos: an.areas[0]}, nil
}

// Exec runs the prepared statement with its original window.
func (p *Prepared) Exec() (*Result, error) {
	return p.e.exec(p.q, p.an, execOpts{})
}

// ExecWindow runs the prepared statement with the area literal
// replaced by {cx±dx, cy±dy}. The parse, analysis, and plan skeleton
// are reused; only the window changes.
func (p *Prepared) ExecWindow(cx, dx, cy, dy float64) (*Result, error) {
	w := geom.WindowAt(cx, dx, cy, dy)
	return p.e.exec(p.q, p.an, execOpts{window: &w, windowPos: p.pos})
}

// binding is one from-clause entry resolved against the catalog.
type binding struct {
	name    string // alias or relation name
	rel     *relation.Relation
	schema  relation.Schema
	picture string // picture from the on-clause, "" when none
}

// row is one candidate result row: a tuple per binding.
type row struct {
	ids    []storage.TupleID
	tuples []relation.Tuple
}

// execOpts carries per-execution modes threaded through nested
// mappings.
type execOpts struct {
	// naive selects the reference execution path: no planner, no
	// batching, no index shortcuts beyond the spatial semantics
	// themselves.
	naive bool
	// window, when non-nil, replaces the area literal at source
	// position windowPos — the prepared-statement parameter.
	window    *geom.Rect
	windowPos int
}

// execState carries one query execution.
type execState struct {
	e        *Executor
	q        *Query
	an       *analysis
	opts     execOpts
	bindings []binding
	// need[i][ci] marks the columns of binding i the query references;
	// nil means decode every column (naive mode / select *).
	need     [][]bool
	visited  int
	plan     []string
	subnotes []string // plan notes of nested mappings, reported after the outer plan
}

// note records one access-path decision for Result.Plan.
func (st *execState) note(format string, args ...any) {
	st.plan = append(st.plan, fmt.Sprintf(format, args...))
}

// planNotes assembles Result.Plan: the outer query's decisions first,
// then nested mappings'.
func (st *execState) planNotes() []string {
	if len(st.subnotes) == 0 {
		return st.plan
	}
	return append(append([]string(nil), st.plan...), st.subnotes...)
}

// Exec executes a parsed query (analyzing it on the spot; Run serves
// repeated text through the statement cache instead).
func (e *Executor) Exec(q *Query) (*Result, error) {
	return e.exec(q, analyze(q), execOpts{})
}

// exec executes a parsed and analyzed query.
func (e *Executor) exec(q *Query, an *analysis, opts execOpts) (*Result, error) {
	st := &execState{e: e, q: q, an: an, opts: opts}
	if err := st.resolveFrom(); err != nil {
		return nil, err
	}
	st.computeNeed()
	rows, err := st.candidateRows()
	if err != nil {
		return nil, err
	}
	// Qualification filter.
	if q.Where != nil && hasAggregate(q.Where) {
		return nil, fmt.Errorf("psql: aggregates are not allowed in the where-clause")
	}
	if q.Where != nil {
		kept := rows[:0]
		for i := range rows {
			ok, err := st.qualifies(&rows[i])
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, rows[i])
			}
		}
		rows = kept
	}
	// An aggregated target list collapses to one row; order-by and
	// limit are meaningless then.
	for _, it := range q.Select {
		if isAggregate(it.Expr) {
			if len(q.OrderBy) > 0 || q.Limit != nil {
				return nil, fmt.Errorf("psql: order by / limit cannot combine with aggregates")
			}
			return st.projectAggregates(rows)
		}
	}
	if len(q.OrderBy) > 0 {
		if err := st.orderRows(rows); err != nil {
			return nil, err
		}
	}
	if q.Limit != nil && len(rows) > *q.Limit {
		rows = rows[:*q.Limit]
	}
	return st.project(rows)
}

func (st *execState) resolveFrom() error {
	q := st.q
	if len(q.From) == 0 {
		return fmt.Errorf("psql: query has no from-clause")
	}
	seen := map[string]bool{}
	for i, ref := range q.From {
		rel, ok := st.e.cat.Relation(ref.Relation)
		if !ok {
			return fmt.Errorf("psql: unknown relation %q", ref.Relation)
		}
		b := binding{name: ref.Binding(), rel: rel, schema: rel.Schema()}
		if seen[b.name] {
			return fmt.Errorf("psql: duplicate relation binding %q", b.name)
		}
		seen[b.name] = true
		// Positional on-clause match; a single picture applies to all.
		switch {
		case len(q.On) == 0:
		case len(q.On) == 1:
			b.picture = q.On[0]
		case len(q.On) == len(q.From):
			b.picture = q.On[i]
		default:
			return fmt.Errorf("psql: on-clause lists %d pictures for %d relations", len(q.On), len(q.From))
		}
		if b.picture != "" {
			if _, ok := st.e.cat.Picture(b.picture); !ok {
				return fmt.Errorf("psql: unknown picture %q", b.picture)
			}
		}
		st.bindings = append(st.bindings, b)
	}
	return nil
}

// qualifies applies the where-clause to one row. The planned path
// evaluates the analysis's cost-ordered conjuncts with short-circuit
// AND — cheap, selective terms reject rows before expensive function
// calls run; the naive path evaluates the qualification exactly as
// written.
func (st *execState) qualifies(r *row) (bool, error) {
	if st.opts.naive || st.an == nil || len(st.an.conjuncts) <= 1 {
		d, err := st.eval(st.q.Where, r)
		if err != nil {
			return false, err
		}
		return d.Truth()
	}
	for _, c := range st.an.conjuncts {
		d, err := st.eval(c.expr, r)
		if err != nil {
			return false, err
		}
		ok, err := d.Truth()
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// computeNeed marks, per binding, the columns any select, where, or
// order-by expression references, so batch materialization can skip
// decoding the rest (column-lazy). Unqualified references mark every
// binding that has the column — over-marking is safe, under-marking is
// not. Naive mode and select * decode everything (need stays nil /
// all-true).
func (st *execState) computeNeed() {
	if st.opts.naive {
		return
	}
	need := make([][]bool, len(st.bindings))
	for i, b := range st.bindings {
		need[i] = make([]bool, b.schema.Arity())
	}
	if st.q.Star {
		for i := range need {
			for j := range need[i] {
				need[i][j] = true
			}
		}
	}
	mark := func(ref ColumnRef) {
		for i, b := range st.bindings {
			if ref.Table != "" && ref.Table != b.name {
				continue
			}
			if ci := b.schema.ColumnIndex(ref.Column); ci >= 0 {
				need[i][ci] = true
			}
		}
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case ColumnRef:
			mark(ex)
		case UnaryExpr:
			walk(ex.Expr)
		case BinaryExpr:
			walk(ex.Left)
			walk(ex.Right)
		case FuncCall:
			for _, a := range ex.Args {
				walk(a)
			}
		}
	}
	for _, it := range st.q.Select {
		walk(it.Expr)
	}
	if st.q.Where != nil {
		walk(st.q.Where)
	}
	for _, ob := range st.q.OrderBy {
		walk(ob.Expr)
	}
	st.need = need
}

// needLoc additionally marks binding bi's loc column, for plans that
// re-check the at-clause against materialized tuples.
func (st *execState) needLoc(bi int) {
	if st.need == nil {
		return
	}
	if li := st.bindings[bi].schema.LocColumn(); li >= 0 {
		st.need[bi][li] = true
	}
}

// bindingIndex resolves a table name (alias) to its binding index; an
// empty table name matches when there is exactly one binding.
func (st *execState) bindingIndex(table string, pos int) (int, error) {
	if table == "" {
		if len(st.bindings) == 1 {
			return 0, nil
		}
		return 0, errf(pos, "ambiguous unqualified loc with %d relations", len(st.bindings))
	}
	for i, b := range st.bindings {
		if b.name == table {
			return i, nil
		}
	}
	return 0, errf(pos, "unknown relation %q", table)
}

// scanIDs returns every tuple id of binding i.
func (st *execState) scanIDs(i int) ([]storage.TupleID, error) {
	var out []storage.TupleID
	err := st.bindings[i].rel.Scan(func(id storage.TupleID, _ relation.Tuple) bool {
		out = append(out, id)
		return true
	})
	return out, err
}

// spatialPred returns the geometry predicate for op with the object
// MBR as first argument and the window as second.
func spatialPred(op SpatialOp) func(obj, win geom.Rect) bool {
	switch op {
	case OpCovering:
		return geom.Covers
	case OpOverlapping:
		return geom.Overlapping
	case OpDisjoined:
		return geom.Disjoined
	default:
		return geom.CoveredBy
	}
}

// converse returns the operator with its arguments swapped.
func converse(op SpatialOp) SpatialOp {
	switch op {
	case OpCovering:
		return OpCoveredBy
	case OpCoveredBy:
		return OpCovering
	default:
		return op // overlapping and disjoined are symmetric
	}
}

// candidateRows builds the candidate row set, using the at-clause and
// the R-trees for direct spatial search whenever possible; absent an
// at-clause, a single-relation query with an indexable qualification
// conjunct can use the B-tree index instead of a scan — the paper's
// "indexed the usual way" alphanumeric path. Access paths are chosen
// by the cost model in planner.go; the naive reference mode bypasses
// it entirely.
func (st *execState) candidateRows() ([]row, error) {
	if st.opts.naive {
		return st.naiveRows()
	}
	at := st.q.At
	if at == nil {
		if len(st.bindings) == 1 {
			if ids, ok := st.indexedCandidates(); ok {
				sortTupleIDs(ids)
				return st.cartesian(map[int][]storage.TupleID{0: ids})
			}
		}
		st.note("scan: full scan of %d relation(s)", len(st.bindings))
		return st.cartesian(nil)
	}

	// Normalize: if the left side is not a loc term but the right is,
	// flip using the converse operator so the loc ends up on the left.
	left, op, right := at.Left, at.Op, at.Right
	if _, lok := left.(LocTerm); !lok {
		if _, rok := right.(LocTerm); rok {
			left, right = right, left
			op = converse(op)
		}
	}

	switch l := left.(type) {
	case LocTerm:
		bi, err := st.bindingIndex(l.Table, l.Pos)
		if err != nil {
			return nil, err
		}
		switch r := right.(type) {
		case LocTerm:
			// Juxtaposition: simultaneous search of two R-trees.
			bj, err := st.bindingIndex(r.Table, r.Pos)
			if err != nil {
				return nil, err
			}
			if bi == bj {
				return nil, errf(at.Pos, "at-clause relates %q to itself", l.Table)
			}
			return st.juxtapose(bi, bj, op)
		default:
			windows, err := st.termWindows(right)
			if err != nil {
				return nil, err
			}
			ids, err := st.planWindowSearch(bi, op, windows)
			if err != nil {
				return nil, err
			}
			sortTupleIDs(ids)
			fixed := map[int][]storage.TupleID{bi: ids}
			return st.cartesian(fixed)
		}
	default:
		// No loc side at all: a constant predicate.
		lw, err := st.termWindows(left)
		if err != nil {
			return nil, err
		}
		rw, err := st.termWindows(right)
		if err != nil {
			return nil, err
		}
		if !constantAtHolds(lw, rw, op) {
			return nil, nil
		}
		return st.cartesian(nil)
	}
}

// constantAtHolds evaluates a constant at-clause (no loc side): true
// when any left window relates to any right window.
func constantAtHolds(lw, rw []geom.Rect, op SpatialOp) bool {
	pred := spatialPred(op)
	for _, a := range lw {
		for _, b := range rw {
			if pred(a, b) {
				return true
			}
		}
	}
	return false
}

// planWindowSearch chooses the access path for a single-loc at-clause:
// direct spatial search through the R-tree, or — when the cost model
// prices it at under half the direct estimate — a B-tree lookup on the
// most selective indexable where-conjunct with the spatial predicate
// re-checked per candidate tuple.
func (st *execState) planWindowSearch(bi int, op SpatialOp, windows []geom.Rect) ([]storage.TupleID, error) {
	b := st.bindings[bi]
	if b.picture == "" {
		return nil, fmt.Errorf("psql: relation %q has no picture in the on-clause for direct search", b.name)
	}
	snap, ok := b.rel.SpatialCostSnapshot(b.picture, windows)
	if !ok {
		return nil, fmt.Errorf("psql: relation %q is not spatially indexed on picture %q", b.name, b.picture)
	}
	costDirect := directSearchCost(snap, windows, op)
	if ic, ok := st.bestIndexedConjunct(); ok {
		costIdx := btreeCost(b.rel.Len(), ic.sel)
		if costIdx < btreeHysteresis*costDirect {
			ids, used := b.rel.LookupRange(ic.col.Column, ic.lo, ic.hi)
			if used {
				st.note("index lookup: B-tree on %s.%s (%s) drives the at-clause (est %.1f vs direct %.1f)",
					b.name, ic.col.Column, ic.op, costIdx, costDirect)
				return st.filterSpatial(bi, ids, op, windows)
			}
		} else {
			st.note("cost: direct spatial search (est %.1f) kept over B-tree on %s.%s (est %.1f)",
				costDirect, b.name, ic.col.Column, costIdx)
		}
	}
	ids, err := st.directSearch(bi, op, windows)
	if err != nil {
		return nil, err
	}
	st.note("direct spatial search: R-tree of %q on %q, %d window(s), %s",
		b.name, b.picture, len(windows), op)
	return ids, nil
}

// filterSpatial keeps the candidate ids whose loc object satisfies op
// against any window, checked per materialized tuple (the non-R-tree
// half of an index-driven at-clause plan).
func (st *execState) filterSpatial(bi int, ids []storage.TupleID, op SpatialOp, windows []geom.Rect) ([]storage.TupleID, error) {
	b := st.bindings[bi]
	li := b.schema.LocColumn()
	if li < 0 {
		return nil, fmt.Errorf("psql: relation %q has no loc column", b.name)
	}
	pic, ok := st.e.cat.Picture(b.picture)
	if !ok {
		return nil, fmt.Errorf("psql: unknown picture %q", b.picture)
	}
	st.needLoc(bi)
	need := make([]bool, b.schema.Arity())
	need[li] = true
	tuples, err := b.rel.GetBatch(ids, need, st.e.parallelism())
	if err != nil {
		return nil, err
	}
	pred := spatialPred(op)
	kept := ids[:0]
	for i, id := range ids {
		mbr, ok := tupleMBR(tuples[i], li, pic, b.picture)
		if !ok {
			continue
		}
		for _, w := range windows {
			if pred(mbr, w) {
				kept = append(kept, id)
				break
			}
		}
	}
	return kept, nil
}

// tupleMBR resolves the MBR of t's loc column against pic; ok is false
// when the tuple references another picture or a missing object —
// exactly the tuples the spatial index does not carry.
func tupleMBR(t relation.Tuple, li int, pic *picture.Picture, picName string) (geom.Rect, bool) {
	ref := t[li].Loc
	if ref.Picture != picName {
		return geom.Rect{}, false
	}
	obj, ok := pic.Get(ref.Object)
	if !ok {
		return geom.Rect{}, false
	}
	return obj.MBR(), true
}

// indexedCandidates answers a no-at-clause single-relation query from
// the B-tree on its most selective indexable where-conjunct, when the
// cost model prices that below a full scan. The full qualification is
// still evaluated afterwards, so using the index only narrows the
// candidates. ok is false when no conjunct is indexable or the scan is
// cheaper.
func (st *execState) indexedCandidates() ([]storage.TupleID, bool) {
	ic, ok := st.bestIndexedConjunct()
	if !ok {
		return nil, false
	}
	b := st.bindings[0]
	costIdx := btreeCost(b.rel.Len(), ic.sel)
	costScan := scanCost(b.rel.Len())
	if costIdx >= costScan {
		st.note("cost: scan (est %.1f) kept over B-tree on %s.%s (est %.1f)",
			costScan, b.name, ic.col.Column, costIdx)
		return nil, false
	}
	ids, used := b.rel.LookupRange(ic.col.Column, ic.lo, ic.hi)
	if !used {
		return nil, false
	}
	st.note("index lookup: B-tree on %s.%s (%s) (est %.1f vs scan %.1f)",
		b.name, ic.col.Column, ic.op, costIdx, costScan)
	return ids, true
}

// columnVsLiteral matches "col op literal" or its mirror, normalizing
// the operator so the column is on the left.
func columnVsLiteral(be BinaryExpr) (ColumnRef, Expr, string, bool) {
	flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
	if _, ok := flip[be.Op]; !ok {
		return ColumnRef{}, nil, "", false
	}
	if col, ok := be.Left.(ColumnRef); ok && isLiteralExpr(be.Right) {
		return col, be.Right, be.Op, true
	}
	if col, ok := be.Right.(ColumnRef); ok && isLiteralExpr(be.Left) {
		return col, be.Left, flip[be.Op], true
	}
	return ColumnRef{}, nil, "", false
}

func isLiteralExpr(e Expr) bool {
	switch v := e.(type) {
	case NumberLit, StringLit:
		return true
	case UnaryExpr:
		if v.Op != "-" {
			return false
		}
		_, num := v.Expr.(NumberLit)
		return num
	}
	return false
}

// literalAsColumnValue converts a literal expression to a relation
// value of the column's type, so index keys order correctly.
func literalAsColumnValue(e Expr, t relation.Type) (relation.Value, bool) {
	neg := false
	if u, isU := e.(UnaryExpr); isU {
		neg = true
		e = u.Expr
	}
	switch lit := e.(type) {
	case NumberLit:
		f := lit.Value
		i := lit.Int
		if neg {
			f, i = -f, -i
		}
		switch t {
		case relation.TypeInt:
			if !lit.IsInt {
				// A fractional bound on an int column: fall back to
				// the scan path rather than rounding.
				return relation.Value{}, false
			}
			return relation.I(i), true
		case relation.TypeFloat:
			return relation.F(f), true
		}
	case StringLit:
		if t == relation.TypeString && !neg {
			return relation.S(lit.Value), true
		}
	}
	return relation.Value{}, false
}

// termWindows evaluates a non-loc spatial term to one or more windows.
func (st *execState) termWindows(t SpatialTerm) ([]geom.Rect, error) {
	switch tt := t.(type) {
	case AreaTerm:
		if st.opts.window != nil && tt.Pos == st.opts.windowPos {
			// Prepared-statement window parameter replaces this literal.
			return []geom.Rect{*st.opts.window}, nil
		}
		return []geom.Rect{geom.WindowAt(tt.CX, tt.DX, tt.CY, tt.DY)}, nil
	case NameTerm:
		r, ok := st.e.cat.Location(tt.Name)
		if !ok {
			return nil, errf(tt.Pos, "unknown location %q", tt.Name)
		}
		return []geom.Rect{r}, nil
	case SubqueryTerm:
		// Nested mapping: run it, collect the loc/area values of its
		// rows as windows — "The binding of the top level window is
		// dynamically done during the evaluation of the query." The
		// nested execution inherits this statement's mode (naive /
		// prepared window) and cached analysis.
		res, err := st.e.exec(tt.Query, st.an.forQuery(tt.Query), st.opts)
		if err != nil {
			return nil, err
		}
		st.visited += res.NodesVisited
		for _, note := range res.Plan {
			st.subnotes = append(st.subnotes, "nested: "+note)
		}
		var out []geom.Rect
		for _, r := range res.Rows {
			for _, d := range r {
				if d.Kind == KindLoc || d.Kind == KindRect {
					out = append(out, d.Rect)
				}
			}
		}
		if len(out) == 0 {
			return nil, errf(tt.Pos, "nested mapping produced no locations (select a loc column)")
		}
		return out, nil
	case LocTerm:
		return nil, errf(tt.Pos, "internal: loc term where a window was expected")
	}
	return nil, fmt.Errorf("psql: unhandled spatial term %T", t)
}

// directSearch finds the tuples of binding bi whose loc satisfies op
// against any of the windows, via the R-tree when the operator admits
// intersection pruning. The returned ids are unordered (candidateRows
// canonicalizes); duplicates across windows are removed.
func (st *execState) directSearch(bi int, op SpatialOp, windows []geom.Rect) ([]storage.TupleID, error) {
	b := st.bindings[bi]
	if b.picture == "" {
		return nil, fmt.Errorf("psql: relation %q has no picture in the on-clause for direct search", b.name)
	}
	if !b.rel.HasSpatial(b.picture) {
		return nil, fmt.Errorf("psql: relation %q is not spatially indexed on picture %q", b.name, b.picture)
	}
	pred := spatialPred(op)
	var out []storage.TupleID
	if op == OpDisjoined {
		// Disjointness cannot be pruned by intersection: enumerate all
		// live leaf entries (merged across packed and delta trees) and
		// test every window.
		items, visited, err := b.rel.SpatialItems(b.picture)
		if err != nil {
			return nil, err
		}
		st.visited += visited
		for _, w := range windows {
			for _, it := range items {
				if pred(it.Rect, w) {
					out = append(out, storage.TupleIDFromInt64(it.Data))
				}
			}
		}
	} else {
		// Batched direct search: all windows answered through the
		// R-tree's concurrent read path.
		batches, visited, err := b.rel.SearchAreaBatch(b.picture, windows, pred, st.e.parallelism())
		if err != nil {
			return nil, err
		}
		st.visited += visited
		for _, ids := range batches {
			out = append(out, ids...)
		}
	}
	sortTupleIDs(out)
	return dedupSortedIDs(out), nil
}

// juxtapose performs the paper's geographic join between bindings bi
// and bj via simultaneous R-tree traversal, producing joined rows in
// canonical (binding 0 id, binding 1 id) order. The cost model picks
// the driving side: the larger tree goes first so the parallel
// traversal fans out over more subtrees.
func (st *execState) juxtapose(bi, bj int, op SpatialOp) ([]row, error) {
	if len(st.bindings) != 2 {
		return nil, fmt.Errorf("psql: juxtaposition currently joins exactly two relations, got %d", len(st.bindings))
	}
	a, b := st.bindings[bi], st.bindings[bj]
	if a.picture == "" || b.picture == "" {
		return nil, fmt.Errorf("psql: juxtaposition requires pictures for both relations")
	}
	if !a.rel.HasSpatial(a.picture) || !b.rel.HasSpatial(b.picture) {
		return nil, fmt.Errorf("psql: juxtaposition requires spatial indexes on both relations")
	}
	pred := spatialPred(op)
	type pair struct{ x, y storage.TupleID } // x = binding bi, y = binding bj
	var pairs []pair
	if op == OpDisjoined {
		// Nested loop: disjoint pairs are exactly what tree pruning
		// eliminates. Enumeration merges packed and delta trees.
		st.note("juxtaposition: nested loop of %q and %q (%s admits no pruning)",
			a.name, b.name, op)
		itemsA, va, err := a.rel.SpatialItems(a.picture)
		if err != nil {
			return nil, err
		}
		itemsB, vb, err := b.rel.SpatialItems(b.picture)
		if err != nil {
			return nil, err
		}
		for _, ia := range itemsA {
			for _, ib := range itemsB {
				if pred(ia.Rect, ib.Rect) {
					pairs = append(pairs, pair{storage.TupleIDFromInt64(ia.Data), storage.TupleIDFromInt64(ib.Data)})
				}
			}
		}
		st.visited += va + vb
	} else {
		// Parallel simultaneous traversal; visit count is
		// worker-count-independent and pairs are canonically sorted
		// below, so the result rows stay deterministic across worker
		// budgets and driving-side choices. The driving side is the
		// bigger index by live node count (packed plus delta), summed
		// over shards for a sharded relation.
		na, _ := a.rel.SpatialCostSnapshot(a.picture, nil)
		nb, _ := b.rel.SpatialCostSnapshot(b.picture, nil)
		nodesA := na.Stats.Nodes + na.DeltaNodes
		nodesB := nb.Stats.Nodes + nb.DeltaNodes
		if est, err := a.rel.JoinShardPairEstimate(a.picture, b.rel, b.picture); err == nil && est.PairProduct > 1 {
			st.note("juxtaposition estimate: %.0f page touches (%d of %d overlapping shard pairs admitted)",
				juxtaposeCost(nodesA, nodesB, est), est.PairsJoined, est.PairProduct)
		}
		drive := a.name
		var shardStats relation.JoinShardStats
		if nodesB > nodesA {
			drive = b.name
			jp, stats, visited, err := b.rel.JuxtaposeSpatialStats(b.picture, a.rel, a.picture,
				func(y, x geom.Rect) bool { return pred(x, y) }, st.e.parallelism(), true)
			if err != nil {
				return nil, err
			}
			st.visited += visited
			shardStats = stats
			pairs = make([]pair, len(jp))
			for i, p := range jp {
				pairs[i] = pair{p.B, p.A}
			}
		} else {
			jp, stats, visited, err := a.rel.JuxtaposeSpatialStats(a.picture, b.rel, b.picture,
				func(x, y geom.Rect) bool { return pred(x, y) }, st.e.parallelism(), true)
			if err != nil {
				return nil, err
			}
			st.visited += visited
			shardStats = stats
			pairs = make([]pair, len(jp))
			for i, p := range jp {
				pairs[i] = pair{p.A, p.B}
			}
		}
		st.note("juxtaposition: simultaneous R-tree traversal of %q and %q (%s), driving %q (%d vs %d nodes)",
			a.name, b.name, op, drive, nodesA, nodesB)
		if shardStats.PairProduct > 1 || shardStats.PairsJoined > 1 {
			// Cross-shard: report the frontier restriction — the shard
			// pairs actually joined out of the MBR-overlapping product
			// (Gutiérrez-style two-tree restriction, DESIGN.md §16).
			st.note("cross-shard juxtaposition: frontier restriction joined %d of %d overlapping shard pairs",
				shardStats.PairsJoined, shardStats.PairProduct)
		}
	}
	// Canonical row order: ascending by binding 0's id, then binding
	// 1's — independent of traversal order and driving side.
	first := bi == 0
	sort.Slice(pairs, func(i, j int) bool {
		pi, pj := pairs[i], pairs[j]
		if !first {
			pi, pj = pair{pi.y, pi.x}, pair{pj.y, pj.x}
		}
		if pi.x != pj.x {
			return tupleIDLess(pi.x, pj.x)
		}
		return tupleIDLess(pi.y, pj.y)
	})

	// Batch-materialize each side once over the deduplicated ids; rows
	// then share the decoded tuples (read-only from here on).
	xs := make([]storage.TupleID, len(pairs))
	ys := make([]storage.TupleID, len(pairs))
	for i, p := range pairs {
		xs[i], ys[i] = p.x, p.y
	}
	tx, err := st.fetchSide(bi, xs)
	if err != nil {
		return nil, err
	}
	ty, err := st.fetchSide(bj, ys)
	if err != nil {
		return nil, err
	}
	rows := make([]row, len(pairs))
	idsBuf := make([]storage.TupleID, 2*len(pairs))
	tupBuf := make([]relation.Tuple, 2*len(pairs))
	for i, p := range pairs {
		r := &rows[i]
		r.ids = idsBuf[2*i : 2*i+2 : 2*i+2]
		r.tuples = tupBuf[2*i : 2*i+2 : 2*i+2]
		r.ids[bi], r.tuples[bi] = p.x, tx[i]
		r.ids[bj], r.tuples[bj] = p.y, ty[i]
	}
	return rows, nil
}

// fetchSide materializes one join side's tuples for a pair list: each
// distinct id is fetched and decoded once, and the result is expanded
// back to pair positions (join sides repeat ids heavily).
func (st *execState) fetchSide(bi int, ids []storage.TupleID) ([]relation.Tuple, error) {
	uniq := make([]storage.TupleID, 0, len(ids))
	at := make(map[storage.TupleID]int, len(ids))
	for _, id := range ids {
		if _, ok := at[id]; !ok {
			at[id] = len(uniq)
			uniq = append(uniq, id)
		}
	}
	var need []bool
	if st.need != nil {
		need = st.need[bi]
	}
	tuples, err := st.bindings[bi].rel.GetBatch(uniq, need, st.e.parallelism())
	if err != nil {
		return nil, err
	}
	out := make([]relation.Tuple, len(ids))
	for i, id := range ids {
		out[i] = tuples[at[id]]
	}
	return out, nil
}

// cartesian builds the product of candidate id lists; fixed overrides
// the candidate list for specific bindings, others are full scans.
// Each binding's candidates are batch-materialized once — product rows
// share the decoded tuples rather than re-fetching per row.
func (st *execState) cartesian(fixed map[int][]storage.TupleID) ([]row, error) {
	lists := make([][]storage.TupleID, len(st.bindings))
	product := 1
	limit := st.e.MaxProductRows
	if limit <= 0 {
		limit = 1_000_000
	}
	for i := range st.bindings {
		if ids, ok := fixed[i]; ok {
			lists[i] = ids
		} else {
			ids, err := st.scanIDs(i)
			if err != nil {
				return nil, err
			}
			lists[i] = ids
		}
		product *= len(lists[i])
		if product > limit {
			return nil, fmt.Errorf("psql: cartesian product exceeds %d rows; add an at-clause", limit)
		}
	}
	if product == 0 {
		return nil, nil
	}
	tuples := make([][]relation.Tuple, len(lists))
	for i := range lists {
		var need []bool
		if st.need != nil {
			need = st.need[i]
		}
		ts, err := st.bindings[i].rel.GetBatch(lists[i], need, st.e.parallelism())
		if err != nil {
			return nil, err
		}
		tuples[i] = ts
	}
	nb := len(lists)
	rows := make([]row, product)
	idsBuf := make([]storage.TupleID, product*nb)
	tupBuf := make([]relation.Tuple, product*nb)
	idx := make([]int, nb)
	for ri := 0; ri < product; ri++ {
		r := &rows[ri]
		r.ids = idsBuf[ri*nb : (ri+1)*nb : (ri+1)*nb]
		r.tuples = tupBuf[ri*nb : (ri+1)*nb : (ri+1)*nb]
		for i := range lists {
			r.ids[i] = lists[i][idx[i]]
			r.tuples[i] = tuples[i][idx[i]]
		}
		// Odometer increment.
		for k := nb - 1; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(lists[k]) {
				break
			}
			idx[k] = 0
		}
	}
	return rows, nil
}

// orderRows sorts rows by the order-by keys. Key expressions are
// evaluated per row; evaluation or comparison errors abort the query.
func (st *execState) orderRows(rows []row) error {
	keys := make([][]Datum, len(rows))
	for i := range rows {
		ks := make([]Datum, len(st.q.OrderBy))
		for j, ob := range st.q.OrderBy {
			d, err := st.eval(ob.Expr, &rows[i])
			if err != nil {
				return err
			}
			ks[j] = d
		}
		keys[i] = ks
	}
	// Sort an index permutation (keys and rows must move together).
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		ka, kb := keys[idx[a]], keys[idx[b]]
		for j, ob := range st.q.OrderBy {
			c, err := compare(ka[j], kb[j])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	sorted := make([]row, len(rows))
	for i, j := range idx {
		sorted[i] = rows[j]
	}
	copy(rows, sorted)
	return nil
}

// project evaluates the target list over the qualifying rows.
func (st *execState) project(rows []row) (*Result, error) {
	res := &Result{NodesVisited: st.visited, Plan: st.planNotes()}

	// Expand the target list.
	var items []SelectItem
	if st.q.Star {
		for bi, b := range st.bindings {
			for _, col := range b.schema.Columns {
				ref := ColumnRef{Column: col.Name}
				if len(st.bindings) > 1 {
					ref.Table = st.bindings[bi].name
				}
				items = append(items, SelectItem{Expr: ref})
			}
		}
	} else {
		items = st.q.Select
	}
	for _, it := range items {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		res.Columns = append(res.Columns, name)
	}

	for _, r := range rows {
		out := make([]Datum, len(items))
		for i, it := range items {
			d, err := st.eval(it.Expr, &r)
			if err != nil {
				return nil, err
			}
			out[i] = d
			if d.Kind == KindLoc {
				res.Locs = append(res.Locs, d.Loc)
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
