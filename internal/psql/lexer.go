package psql

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer turns PSQL text into tokens. Identifier rules follow the
// paper's examples: letters, digits, underscores, and interior hyphens
// when followed by a letter or digit (us-map, covered-by, hwy-name).
// Subtraction therefore needs surrounding spaces: "a - b".
type lexer struct {
	src string
	pos int
}

// Lex tokenizes src, returning the token stream or a lexical error.
func Lex(src string) ([]Token, error) {
	l := lexer{src: src}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

func (l *lexer) next() (Token, error) {
	// Skip whitespace and comments ("--" to end of line).
	for l.pos < len(l.src) {
		r, w := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.pos += w
		case strings.HasPrefix(l.src[l.pos:], "--"):
			if nl := strings.IndexByte(l.src[l.pos:], '\n'); nl >= 0 {
				l.pos += nl + 1
			} else {
				l.pos = len(l.src)
			}
		default:
			goto scan
		}
	}
scan:
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	r, w := l.peekRune()

	switch {
	case r == '±':
		l.pos += w
		return Token{Kind: TokPlusMinus, Text: "±", Pos: start}, nil
	case r == '+' && strings.HasPrefix(l.src[l.pos:], "+-"):
		l.pos += 2
		return Token{Kind: TokPlusMinus, Text: "+-", Pos: start}, nil
	case unicode.IsLetter(r) || r == '_':
		return l.lexIdent(start), nil
	case unicode.IsDigit(r):
		return l.lexNumber(start), nil
	case r == '\'' || r == '"':
		return l.lexString(start, byte(r))
	}

	l.pos += w
	switch r {
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case '.':
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: start}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: start}, nil
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case '+', '-', '/':
		return Token{Kind: TokOp, Text: string(r), Pos: start}, nil
	case '=':
		return Token{Kind: TokOp, Text: "=", Pos: start}, nil
	case '<':
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return Token{Kind: TokOp, Text: "<=", Pos: start}, nil
			case '>':
				l.pos++
				return Token{Kind: TokOp, Text: "<>", Pos: start}, nil
			}
		}
		return Token{Kind: TokOp, Text: "<", Pos: start}, nil
	case '>':
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return Token{Kind: TokOp, Text: ">=", Pos: start}, nil
		}
		return Token{Kind: TokOp, Text: ">", Pos: start}, nil
	}
	return Token{}, errf(start, "unexpected character %q", r)
}

// lexIdent scans an identifier. A hyphen continues the identifier only
// when the next rune is a letter or digit, so "covered-by" is one
// token but "a - b" is three.
func (l *lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) {
		r, w := l.peekRune()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			l.pos += w
			continue
		}
		if r == '-' && l.pos+w < len(l.src) {
			nr, _ := utf8.DecodeRuneInString(l.src[l.pos+w:])
			if unicode.IsLetter(nr) || unicode.IsDigit(nr) {
				l.pos += w
				continue
			}
		}
		break
	}
	return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}
}

func (l *lexer) lexNumber(start int) Token {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && l.pos+1 < len(l.src) &&
			l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			seenDot = true
			l.pos++
		case c == '_': // digit grouping, e.g. 450_000
			l.pos++
		default:
			return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}
}

func (l *lexer) lexString(start int, quote byte) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote escapes itself, SQL style.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, errf(start, "unterminated string literal")
}
