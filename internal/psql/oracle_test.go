package psql_test

import (
	"fmt"
	"math/rand"
	"testing"

	pictdb "repro"
)

// TestRandomizedSpatialOracle cross-checks every spatial operator's
// PSQL execution path (R-tree direct search) against a brute-force
// scan over randomly generated databases. Any divergence between the
// index-accelerated answer and the scan answer is a bug somewhere in
// the R-tree, packing, executor, or geometry stack.
func TestRandomizedSpatialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1985))
	ops := []string{"covered-by", "covering", "overlapping", "disjoined"}
	methods := []pictdb.PackMethod{pictdb.PackNN, pictdb.PackLowX, pictdb.PackSTR, pictdb.PackHilbert}

	for trial := 0; trial < 8; trial++ {
		db := pictdb.New()
		pic, err := db.CreatePicture("m", pictdb.R(0, 0, 1000, 1000))
		if err != nil {
			t.Fatal(err)
		}
		rel, err := db.CreateRelation("objs", pictdb.MustSchema("n:int", "loc:loc"))
		if err != nil {
			t.Fatal(err)
		}

		// A random mix of points, segments, and small regions; remember
		// each object's MBR for the oracle.
		n := 50 + rng.Intn(250)
		mbrs := make(map[int64]pictdb.Rect, n)
		for i := 0; i < n; i++ {
			var oid pictdb.ObjectID
			switch rng.Intn(3) {
			case 0:
				p := pictdb.Pt(rng.Float64()*1000, rng.Float64()*1000)
				oid = pic.AddPoint("", p)
			case 1:
				a := pictdb.Pt(rng.Float64()*1000, rng.Float64()*1000)
				b := pictdb.Pt(a.X+rng.Float64()*60-30, a.Y+rng.Float64()*60-30)
				oid = pic.AddSegment("", pictdb.Seg(a, b))
			default:
				x, y := rng.Float64()*950, rng.Float64()*950
				oid = pic.AddRegion("", pictdb.Poly(
					pictdb.Pt(x, y), pictdb.Pt(x+rng.Float64()*50, y),
					pictdb.Pt(x+rng.Float64()*50, y+rng.Float64()*50)))
			}
			obj, _ := pic.Get(oid)
			if _, err := rel.Insert(pictdb.Tuple{pictdb.I(int64(i)), pictdb.L("m", oid)}); err != nil {
				t.Fatal(err)
			}
			mbrs[int64(i)] = obj.MBR()
		}
		if err := rel.AttachPicture(pic, pictdb.PackOptions{Method: methods[trial%len(methods)]}); err != nil {
			t.Fatal(err)
		}

		for q := 0; q < 12; q++ {
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			dx, dy := rng.Float64()*200, rng.Float64()*200
			w := pictdb.WindowAt(cx, dx, cy, dy)
			op := ops[rng.Intn(len(ops))]

			query := fmt.Sprintf(`select n from objs on m at loc %s {%g±%g, %g±%g}`,
				op, cx, dx, cy, dy)
			res, err := db.Query(query)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, query, err)
			}
			got := map[int64]bool{}
			for _, r := range res.Rows {
				got[r[0].Int] = true
			}

			want := map[int64]bool{}
			for id, m := range mbrs {
				var hold bool
				switch op {
				case "covered-by":
					hold = w.Contains(m)
				case "covering":
					hold = m.Contains(w)
				case "overlapping":
					hold = m.Intersects(w)
				default:
					hold = !m.Intersects(w)
				}
				if hold {
					want[id] = true
				}
			}

			if len(got) != len(want) {
				t.Fatalf("trial %d %s window %v: got %d, oracle %d", trial, op, w, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("trial %d %s window %v: missing object %d (MBR %v)", trial, op, w, id, mbrs[id])
				}
			}
		}
		db.Close()
	}
}
