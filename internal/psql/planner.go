package psql

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/relation"
	"repro/internal/storage"
)

// The cost model. Costs are in abstract "page touches": one R-tree
// node visit, one B-tree node visit, and one tuple fetch all count 1.
// The direct-search estimate follows the paper's Table 1 reasoning —
// the expected number of nodes visited grows with the fraction of the
// indexed space the window covers, inflated by the leaf-level coverage
// and overlap the pack left behind — so a tightly packed tree (low
// coverage, near-zero overlap) prices direct search low, and a drifted
// or badly packed one prices it high. See DESIGN.md §11.

// btreeHysteresis biases the at-clause plan toward direct spatial
// search: the B-tree alternative must beat it by 2x before the planner
// abandons the R-tree. Spatial estimates are coarse (window-area
// extrapolation), so the bias keeps the paper's signature access path
// unless the index is clearly better.
const btreeHysteresis = 0.5

// directSearchCost estimates the page touches of answering the windows
// through si: expected nodes visited plus expected qualifying-tuple
// fetches.
func directSearchCost(si *relation.SpatialIndex, windows []geom.Rect, op SpatialOp) float64 {
	s := si.Stats
	if s.Items == 0 {
		return 1
	}
	bounds := si.Tree.Bounds()
	boundsArea := bounds.Area()
	if boundsArea <= 0 {
		boundsArea = 1
	}
	avgLeaf := 0.0
	if s.Leaves > 0 {
		avgLeaf = s.Coverage / float64(s.Leaves)
	}
	overlapPenalty := 1.0
	if s.Coverage > 0 {
		overlapPenalty += s.Overlap / s.Coverage
	}
	total := 0.0
	for _, w := range windows {
		// A node is visited when its MBR intersects the window: the
		// classic window-inflated-by-average-extent estimate.
		f := (w.Intersection(bounds).Area() + avgLeaf) / boundsArea * overlapPenalty
		if f > 1 {
			f = 1
		}
		if op == OpDisjoined {
			// Disjointness admits no pruning: every node is visited and
			// the complement of the window qualifies.
			total += float64(s.Nodes) + (1-f)*float64(s.Items)
			continue
		}
		total += 1 + f*float64(s.Nodes-1) + f*float64(s.Items)
	}
	return total
}

// btreeCost estimates the page touches of driving the query from a
// B-tree conjunct with selectivity sel over n tuples: the root-to-leaf
// descent, the qualifying index entries, and a fetch plus spatial test
// per candidate tuple.
func btreeCost(n int, sel float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Log2(float64(n)+1) + 2*sel*float64(n)
}

// scanCost estimates a full scan: every tuple fetched and decoded.
func scanCost(n int) float64 { return float64(n) }

// indexableConjunct is one where-term answerable by a B-tree range
// lookup on the (single) bound relation.
type indexableConjunct struct {
	col    ColumnRef
	op     string
	lo, hi *relation.Bound
	sel    float64
}

// bestIndexedConjunct scans the planner-ordered conjuncts of a
// single-relation query for B-tree-answerable terms and returns the
// most selective one. ok is false when none is indexable.
func (st *execState) bestIndexedConjunct() (indexableConjunct, bool) {
	best := indexableConjunct{sel: math.Inf(1)}
	if len(st.bindings) != 1 || st.an == nil {
		return best, false
	}
	b := st.bindings[0]
	for _, c := range st.an.conjuncts {
		be, isBin := c.expr.(BinaryExpr)
		if !isBin {
			continue
		}
		col, lit, op, ok := columnVsLiteral(be)
		if !ok {
			continue
		}
		if col.Table != "" && col.Table != b.name {
			continue
		}
		ci := b.schema.ColumnIndex(col.Column)
		if ci < 0 || b.rel.Index(col.Column) == nil {
			continue
		}
		v, ok := literalAsColumnValue(lit, b.schema.Columns[ci].Type)
		if !ok {
			continue
		}
		ic := indexableConjunct{col: col, op: op, sel: c.sel}
		switch op {
		case "=":
			ic.lo = &relation.Bound{Value: v, Inclusive: true}
			ic.hi = &relation.Bound{Value: v, Inclusive: true}
		case ">":
			ic.lo = &relation.Bound{Value: v}
		case ">=":
			ic.lo = &relation.Bound{Value: v, Inclusive: true}
		case "<":
			ic.hi = &relation.Bound{Value: v}
		case "<=":
			ic.hi = &relation.Bound{Value: v, Inclusive: true}
		default:
			continue
		}
		if ic.sel < best.sel {
			best = ic
		}
	}
	return best, !math.IsInf(best.sel, 1)
}

// sortTupleIDs puts ids in canonical ascending (page, slot) order —
// the order a heap scan delivers — so the row order of a fixed
// candidate list never depends on which access path produced it.
func sortTupleIDs(ids []storage.TupleID) {
	sort.Slice(ids, func(i, j int) bool { return tupleIDLess(ids[i], ids[j]) })
}

func tupleIDLess(a, b storage.TupleID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}

// dedupSortedIDs removes adjacent duplicates from a sorted id list.
func dedupSortedIDs(ids []storage.TupleID) []storage.TupleID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}
