package psql

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/relation"
	"repro/internal/storage"
)

// The cost model. Costs are in abstract "page touches": one R-tree
// node visit, one B-tree node visit, and one tuple fetch all count 1.
// The direct-search estimate follows the paper's Table 1 reasoning —
// the expected number of nodes visited grows with the fraction of the
// indexed space the window covers, inflated by the leaf-level coverage
// and overlap the pack left behind — so a tightly packed tree (low
// coverage, near-zero overlap) prices direct search low, and a drifted
// or badly packed one prices it high. See DESIGN.md §11.

// btreeHysteresis biases the at-clause plan toward direct spatial
// search: the B-tree alternative must beat it by 2x before the planner
// abandons the R-tree. Spatial estimates are coarse (window-area
// extrapolation), so the bias keeps the paper's signature access path
// unless the index is clearly better.
const btreeHysteresis = 0.5

// directSearchCost estimates the page touches of answering the windows
// through the index described by snap: expected nodes visited plus
// expected qualifying-tuple fetches. The snapshot's live write-side
// counters keep the estimate honest after inserts and deletes: under
// WriteDelta the delta trees add their own visit and fetch terms, and
// under WriteInPlace the pending-write counters scale the stale packed
// stats (more entries, more nodes, worse overlap — drift degrades the
// packing Table 1 measures).
func directSearchCost(snap relation.CostSnapshot, windows []geom.Rect, op SpatialOp) float64 {
	s := snap.Stats
	if s.Items == 0 && snap.DeltaItems == 0 && snap.PendingInserts == 0 {
		return 1
	}
	bounds := snap.Bounds
	boundsArea := bounds.Area()
	if boundsArea <= 0 {
		boundsArea = 1
	}
	avgLeaf := 0.0
	if s.Leaves > 0 {
		avgLeaf = s.Coverage / float64(s.Leaves)
	}
	overlapPenalty := 1.0
	if s.Coverage > 0 {
		overlapPenalty += s.Overlap / s.Coverage
	}
	items, nodes := float64(s.Items), float64(s.Nodes)
	if snap.InPlace && s.Items > 0 {
		// The packed tree was mutated in place since the last pack:
		// Stats are stale. Scale the population by the net pending
		// writes, grow the node count proportionally, and degrade the
		// overlap penalty by the churn fraction — per-tuple Guttman
		// inserts erode coverage/overlap roughly in proportion to the
		// writes applied (Table 1's INSERT rows).
		churn := float64(snap.PendingInserts+snap.PendingDeletes) / float64(s.Items)
		items += float64(snap.PendingInserts - snap.PendingDeletes)
		if items < 1 {
			items = 1
		}
		nodes *= items / float64(s.Items)
		if nodes < 1 {
			nodes = 1
		}
		overlapPenalty *= 1 + churn
	}
	deltaItems := float64(snap.DeltaItems)
	deltaNodes := float64(snap.DeltaNodes)
	total := 0.0
	for _, w := range windows {
		// A node is visited when its MBR intersects the window: the
		// classic window-inflated-by-average-extent estimate.
		f := (w.Intersection(bounds).Area() + avgLeaf) / boundsArea * overlapPenalty
		if f > 1 {
			f = 1
		}
		if op == OpDisjoined {
			// Disjointness admits no pruning: every node is visited and
			// the complement of the window qualifies.
			total += nodes + (1-f)*items + deltaNodes + (1-f)*deltaItems
			continue
		}
		total += 1 + f*(nodes-1) + f*items
		// The unpacked side has poor clustering, so charge every delta
		// node plus the window's share of delta entries; each packed
		// hit also pays a (cheap) tombstone probe.
		total += deltaNodes + f*deltaItems + 0.01*float64(snap.Tombstones)
	}
	return total
}

// juxtaposeCost estimates the page touches of the paper's geographic
// join across two (possibly sharded) indexes: every admitted shard
// pair pays a synchronized two-tree descent over its share of both
// sides' nodes, so the estimate is the combined node count scaled by
// the shard-pair cardinality fraction — the pairs whose subtree
// frontiers intersect over the bounds-overlapping pair product
// (Relation.JoinShardPairEstimate). Unsharded joins have fraction 1
// and degenerate to the plain two-tree estimate.
func juxtaposeCost(nodesA, nodesB int, est relation.JoinShardStats) float64 {
	if est.PairsJoined == 0 {
		// Disjoint frontiers: the join runs no traversals at all.
		return 1
	}
	frac := float64(est.PairsJoined) / float64(est.PairProduct)
	return 1 + frac*float64(nodesA+nodesB)
}

// btreeCost estimates the page touches of driving the query from a
// B-tree conjunct with selectivity sel over n tuples: the root-to-leaf
// descent, the qualifying index entries, and a fetch plus spatial test
// per candidate tuple.
func btreeCost(n int, sel float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Log2(float64(n)+1) + 2*sel*float64(n)
}

// scanCost estimates a full scan: every tuple fetched and decoded.
func scanCost(n int) float64 { return float64(n) }

// indexableConjunct is one where-term answerable by a B-tree range
// lookup on the (single) bound relation.
type indexableConjunct struct {
	col    ColumnRef
	op     string
	lo, hi *relation.Bound
	sel    float64
}

// bestIndexedConjunct scans the planner-ordered conjuncts of a
// single-relation query for B-tree-answerable terms and returns the
// most selective one. ok is false when none is indexable.
func (st *execState) bestIndexedConjunct() (indexableConjunct, bool) {
	best := indexableConjunct{sel: math.Inf(1)}
	if len(st.bindings) != 1 || st.an == nil {
		return best, false
	}
	b := st.bindings[0]
	for _, c := range st.an.conjuncts {
		be, isBin := c.expr.(BinaryExpr)
		if !isBin {
			continue
		}
		col, lit, op, ok := columnVsLiteral(be)
		if !ok {
			continue
		}
		if col.Table != "" && col.Table != b.name {
			continue
		}
		ci := b.schema.ColumnIndex(col.Column)
		if ci < 0 || b.rel.Index(col.Column) == nil {
			continue
		}
		v, ok := literalAsColumnValue(lit, b.schema.Columns[ci].Type)
		if !ok {
			continue
		}
		ic := indexableConjunct{col: col, op: op, sel: c.sel}
		switch op {
		case "=":
			ic.lo = &relation.Bound{Value: v, Inclusive: true}
			ic.hi = &relation.Bound{Value: v, Inclusive: true}
		case ">":
			ic.lo = &relation.Bound{Value: v}
		case ">=":
			ic.lo = &relation.Bound{Value: v, Inclusive: true}
		case "<":
			ic.hi = &relation.Bound{Value: v}
		case "<=":
			ic.hi = &relation.Bound{Value: v, Inclusive: true}
		default:
			continue
		}
		if ic.sel < best.sel {
			best = ic
		}
	}
	return best, !math.IsInf(best.sel, 1)
}

// sortTupleIDs puts ids in canonical ascending (page, slot) order —
// the order a heap scan delivers — so the row order of a fixed
// candidate list never depends on which access path produced it.
func sortTupleIDs(ids []storage.TupleID) {
	sort.Slice(ids, func(i, j int) bool { return tupleIDLess(ids[i], ids[j]) })
}

func tupleIDLess(a, b storage.TupleID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}

// dedupSortedIDs removes adjacent duplicates from a sorted id list.
func dedupSortedIDs(ids []storage.TupleID) []storage.TupleID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}
