package psql_test

import (
	"math"
	"testing"

	pictdb "repro"
)

// one runs a query expected to return a single scalar row and returns
// that datum as float.
func one(t *testing.T, db *pictdb.Database, q string) float64 {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if res.Len() != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: want a single scalar, got %v", q, res.Rows)
	}
	return res.Rows[0][0].AsFloat()
}

func oneStr(t *testing.T, db *pictdb.Database, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	if res.Len() != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: want a single scalar, got %v", q, res.Rows)
	}
	return res.Rows[0][0].Str
}

// fdb builds a tiny database with exactly one object of each kind at
// known coordinates, so function results are exact.
func fdb(t *testing.T) *pictdb.Database {
	t.Helper()
	db := pictdb.New()
	t.Cleanup(func() { db.Close() })
	pic, err := db.CreatePicture("m", pictdb.R(0, 0, 100, 100))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.CreateRelation("objs", pictdb.MustSchema("name:string", "loc:loc"))
	if err != nil {
		t.Fatal(err)
	}
	add := func(name string, id pictdb.ObjectID) {
		if _, err := rel.Insert(pictdb.Tuple{pictdb.S(name), pictdb.L("m", id)}); err != nil {
			t.Fatal(err)
		}
	}
	add("pt", pic.AddPoint("PT", pictdb.Pt(10, 20)))
	add("seg", pic.AddSegment("SEG", pictdb.Seg(pictdb.Pt(0, 0), pictdb.Pt(30, 40))))
	// A right triangle with area 50, perimeter 10+10+~14.14.
	add("tri", pic.AddRegion("TRI", pictdb.Poly(pictdb.Pt(50, 50), pictdb.Pt(60, 50), pictdb.Pt(50, 60))))
	if err := rel.AttachPicture(pic, pictdb.PackOptions{}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFunctionArea(t *testing.T) {
	db := fdb(t)
	if got := one(t, db, `select area(loc) from objs where name = 'tri'`); got != 50 {
		t.Errorf("area(triangle) = %g, want 50", got)
	}
	// Points have zero area (MBR fallback).
	if got := one(t, db, `select area(loc) from objs where name = 'pt'`); got != 0 {
		t.Errorf("area(point) = %g", got)
	}
	// Area of an area literal.
	if got := one(t, db, `select area({10±5, 10±10}) from objs where name = 'pt'`); got != 200 {
		t.Errorf("area(window) = %g, want 200", got)
	}
}

func TestFunctionLength(t *testing.T) {
	db := fdb(t)
	if got := one(t, db, `select length(loc) from objs where name = 'seg'`); got != 50 {
		t.Errorf("length(segment) = %g, want 50", got)
	}
}

func TestFunctionPerimeter(t *testing.T) {
	db := fdb(t)
	want := 20 + math.Hypot(10, 10)
	if got := one(t, db, `select perimeter(loc) from objs where name = 'tri'`); math.Abs(got-want) > 1e-9 {
		t.Errorf("perimeter(triangle) = %g, want %g", got, want)
	}
}

func TestFunctionCompassEdges(t *testing.T) {
	db := fdb(t)
	cases := map[string]float64{
		`select northest(loc) from objs where name = 'seg'`: 40,
		`select southest(loc) from objs where name = 'seg'`: 0,
		`select eastest(loc) from objs where name = 'seg'`:  30,
		`select westest(loc) from objs where name = 'seg'`:  0,
		`select northest(loc) from objs where name = 'pt'`:  20,
	}
	for q, want := range cases {
		if got := one(t, db, q); got != want {
			t.Errorf("%s = %g, want %g", q, got, want)
		}
	}
}

func TestFunctionCenterDistance(t *testing.T) {
	db := fdb(t)
	if got := one(t, db, `select centerx(loc) from objs where name = 'seg'`); got != 15 {
		t.Errorf("centerx = %g, want 15", got)
	}
	if got := one(t, db, `select centery(loc) from objs where name = 'seg'`); got != 20 {
		t.Errorf("centery = %g, want 20", got)
	}
	// distance between point (10,20) and window centered at (10,30).
	if got := one(t, db, `select distance(loc, {10±1, 30±1}) from objs where name = 'pt'`); got != 10 {
		t.Errorf("distance = %g, want 10", got)
	}
}

func TestFunctionMBRWindowLabelKind(t *testing.T) {
	db := fdb(t)
	// mbr() returns an area usable by other functions.
	if got := one(t, db, `select area(mbr(loc)) from objs where name = 'seg'`); got != 1200 {
		t.Errorf("area(mbr(seg)) = %g, want 1200", got)
	}
	// window() is the functional form of the literal.
	if got := one(t, db, `select area(window(10, 5, 10, 10)) from objs where name = 'pt'`); got != 200 {
		t.Errorf("area(window(...)) = %g, want 200", got)
	}
	if got := oneStr(t, db, `select label(loc) from objs where name = 'tri'`); got != "TRI" {
		t.Errorf("label = %q", got)
	}
	if got := oneStr(t, db, `select kind(loc) from objs where name = 'seg'`); got != "segment" {
		t.Errorf("kind = %q", got)
	}
}

func TestFunctionScalars(t *testing.T) {
	db := fdb(t)
	if got := one(t, db, `select abs(0 - 7) from objs where name = 'pt'`); got != 7 {
		t.Errorf("abs = %g", got)
	}
	if got := one(t, db, `select sqrt(49) from objs where name = 'pt'`); got != 7 {
		t.Errorf("sqrt = %g", got)
	}
	if _, err := db.Query(`select sqrt(0 - 1) from objs where name = 'pt'`); err == nil {
		t.Error("sqrt of negative accepted")
	}
}

func TestFunctionArgErrors(t *testing.T) {
	db := fdb(t)
	bad := []string{
		`select area() from objs`,
		`select area(name) from objs`,    // string arg
		`select distance(loc) from objs`, // missing second arg
		`select window(1, 2) from objs`,  // too few args
		`select label(5) from objs`,      // not a loc
		`select sqrt(name) from objs`,    // non-numeric
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}
