package psql

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestFormatAlignment(t *testing.T) {
	r := &Result{
		Columns: []string{"name", "n"},
		Rows: [][]Datum{
			{stringD("a-much-longer-value"), intD(1)},
			{stringD("x"), intD(123456)},
		},
	}
	out := r.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header and separator widths track the widest cell.
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("a-much-longer-value"))) {
		t.Errorf("separator not sized to data:\n%s", out)
	}
	// The numeric column starts right after the widest first-column
	// cell plus the two-space gutter, on every row.
	idx := len("a-much-longer-value") + 2
	for _, ln := range lines[2:] {
		cell := strings.TrimRight(ln[idx:], " ")
		if cell != "1" && cell != "123456" {
			t.Errorf("misaligned cell %q in:\n%s", cell, out)
		}
	}
	// No trailing spaces on any line.
	for i, ln := range lines {
		if strings.HasSuffix(ln, " ") {
			t.Errorf("line %d has trailing spaces", i)
		}
	}
}

func TestFormatNoColumns(t *testing.T) {
	r := &Result{}
	if out := r.Format(); !strings.Contains(out, "no columns") {
		t.Errorf("empty result format = %q", out)
	}
}

func TestFormatLocAndFloatRendering(t *testing.T) {
	r := &Result{
		Columns: []string{"loc", "v"},
		Rows: [][]Datum{
			{locD(relation.LocRef{Picture: "m", Object: 3}), floatD(2.5)},
			{locD(relation.LocRef{Picture: "m", Object: 12}), floatD(3.0)},
		},
	}
	out := r.Format()
	if !strings.Contains(out, "m#3") || !strings.Contains(out, "m#12") {
		t.Errorf("loc rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "\n") {
		t.Errorf("float rendering wrong:\n%s", out)
	}
	// Whole floats render without a trailing dot.
	if strings.Contains(out, "3.\n") {
		t.Errorf("trailing dot in float:\n%s", out)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}
