package psql

import (
	"strings"

	"repro/internal/relation"
)

// Result is the alphanumeric output of a query plus the loc pointers
// of the qualifying rows — the paper routes the former to the standard
// terminal and uses the latter to drive the graphical output device.
type Result struct {
	Columns []string
	Rows    [][]Datum
	// Locs are the pictorial pointers appearing in the projected rows,
	// in row order: the objects the display should highlight.
	Locs []relation.LocRef
	// NodesVisited counts R-tree nodes touched answering the query —
	// the paper's search-cost measure A, per query.
	NodesVisited int
	// Plan lists the access-path decisions the executor made (direct
	// spatial search, juxtaposition, index lookup, or scan), outermost
	// query first.
	Plan []string
}

// Len returns the number of result rows.
func (r *Result) Len() int { return len(r.Rows) }

// Format renders the result as an aligned text table, the "standard
// terminal" output of the paper's Figure 2.1a.
func (r *Result) Format() string {
	if len(r.Columns) == 0 {
		return "(no columns)\n"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, d := range row {
			s := d.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		var line strings.Builder
		for i, v := range vals {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(v)
			line.WriteString(strings.Repeat(" ", widths[i]-len(v)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
