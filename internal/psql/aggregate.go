package psql

import "fmt"

// Aggregate functions over the qualifying row set. The paper motivates
// them directly: "An aggregate function on a set of highway segments
// is northest which finds the northest coordinates of any point in a
// highway" — expressible here as max(northest(loc)). A query whose
// target list contains an aggregate call collapses to a single row;
// mixing aggregated and plain targets is an error (PSQL has no
// group-by).

// aggNames are the aggregate function names, dispatched by the
// executor rather than the scalar registry.
var aggNames = map[string]bool{
	"count": true, "min": true, "max": true, "sum": true, "avg": true,
}

// isAggregate reports whether e is a top-level aggregate call.
func isAggregate(e Expr) bool {
	f, ok := e.(FuncCall)
	return ok && aggNames[f.Name]
}

// hasAggregate reports whether any aggregate call appears anywhere in
// the expression (used to reject aggregates in the qualification).
func hasAggregate(e Expr) bool {
	switch ex := e.(type) {
	case FuncCall:
		if aggNames[ex.Name] {
			return true
		}
		for _, a := range ex.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case BinaryExpr:
		return hasAggregate(ex.Left) || hasAggregate(ex.Right)
	case UnaryExpr:
		return hasAggregate(ex.Expr)
	}
	return false
}

// evalAggregate computes one aggregate call over the row set.
func (st *execState) evalAggregate(f FuncCall, rows []row) (Datum, error) {
	if f.Name == "count" && len(f.Args) == 0 {
		return intD(int64(len(rows))), nil
	}
	if len(f.Args) != 1 {
		return Datum{}, errf(f.Pos, "%s takes exactly one argument", f.Name)
	}
	arg := f.Args[0]
	if hasAggregate(arg) {
		return Datum{}, errf(f.Pos, "nested aggregates are not allowed")
	}

	switch f.Name {
	case "count":
		n := int64(0)
		for i := range rows {
			d, err := st.eval(arg, &rows[i])
			if err != nil {
				return Datum{}, err
			}
			if d.Kind != KindNull {
				n++
			}
		}
		return intD(n), nil
	case "min", "max":
		best := null()
		for i := range rows {
			d, err := st.eval(arg, &rows[i])
			if err != nil {
				return Datum{}, err
			}
			if best.Kind == KindNull {
				best = d
				continue
			}
			c, err := compare(d, best)
			if err != nil {
				return Datum{}, errf(f.Pos, "%s: %v", f.Name, err)
			}
			if (f.Name == "min" && c < 0) || (f.Name == "max" && c > 0) {
				best = d
			}
		}
		return best, nil
	case "sum", "avg":
		sum := 0.0
		allInt := true
		n := 0
		for i := range rows {
			d, err := st.eval(arg, &rows[i])
			if err != nil {
				return Datum{}, err
			}
			if !d.IsNumeric() {
				return Datum{}, errf(f.Pos, "%s over non-numeric %s", f.Name, d.Kind)
			}
			if d.Kind != KindInt {
				allInt = false
			}
			sum += d.AsFloat()
			n++
		}
		if f.Name == "avg" {
			if n == 0 {
				return null(), nil
			}
			return floatD(sum / float64(n)), nil
		}
		if allInt {
			return intD(int64(sum)), nil
		}
		return floatD(sum), nil
	}
	return Datum{}, fmt.Errorf("psql: unknown aggregate %q", f.Name)
}

// projectAggregates evaluates an all-aggregate target list into a
// single result row.
func (st *execState) projectAggregates(rows []row) (*Result, error) {
	res := &Result{NodesVisited: st.visited, Plan: st.planNotes()}
	out := make([]Datum, 0, len(st.q.Select))
	for _, it := range st.q.Select {
		name := it.Alias
		if name == "" {
			name = it.Expr.String()
		}
		res.Columns = append(res.Columns, name)
		f, ok := it.Expr.(FuncCall)
		if !ok || !aggNames[f.Name] {
			return nil, fmt.Errorf("psql: cannot mix %q with aggregates in the target list (no group-by)", it.Expr)
		}
		d, err := st.evalAggregate(f, rows)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	res.Rows = append(res.Rows, out)
	return res, nil
}
