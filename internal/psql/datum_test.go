package psql

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/relation"
)

func TestDatumString(t *testing.T) {
	tests := []struct {
		d    Datum
		want string
	}{
		{null(), "null"},
		{boolD(true), "true"},
		{boolD(false), "false"},
		{intD(-42), "-42"},
		{floatD(3.5), "3.5"},
		{floatD(3.0), "3"},
		{stringD("hi"), "hi"},
		{locD(relation.LocRef{Picture: "m", Object: 7}), "m#7"},
		{rectD(geom.R(1, 2, 3, 4)), "[1,2 3,4]"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.d.Kind, got, tt.want)
		}
	}
}

func TestDatumTruth(t *testing.T) {
	if v, err := boolD(true).Truth(); err != nil || !v {
		t.Errorf("Truth(true) = %v, %v", v, err)
	}
	if _, err := intD(1).Truth(); err == nil {
		t.Error("int used as condition should error")
	}
	if _, err := stringD("x").Truth(); err == nil {
		t.Error("string used as condition should error")
	}
}

func TestDatumCompare(t *testing.T) {
	tests := []struct {
		a, b Datum
		want int
	}{
		{intD(1), intD(2), -1},
		{intD(2), intD(2), 0},
		{intD(3), intD(2), 1},
		{intD(1), floatD(1.5), -1}, // mixed numeric promotes
		{floatD(2.5), intD(2), 1},
		{stringD("a"), stringD("b"), -1},
		{stringD("b"), stringD("b"), 0},
		{locD(relation.LocRef{Picture: "a", Object: 1}), locD(relation.LocRef{Picture: "b", Object: 0}), -1},
		{locD(relation.LocRef{Picture: "a", Object: 1}), locD(relation.LocRef{Picture: "a", Object: 2}), -1},
		{locD(relation.LocRef{Picture: "a", Object: 2}), locD(relation.LocRef{Picture: "a", Object: 2}), 0},
	}
	for _, tt := range tests {
		got, err := compare(tt.a, tt.b)
		if err != nil {
			t.Errorf("compare(%v, %v): %v", tt.a, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if _, err := compare(intD(1), stringD("x")); err == nil {
		t.Error("int vs string comparison should error")
	}
	if _, err := compare(rectD(geom.R(0, 0, 1, 1)), rectD(geom.R(0, 0, 1, 1))); err == nil {
		t.Error("rect ordering should error (no total order)")
	}
}

func TestDatumsEqual(t *testing.T) {
	eq := func(a, b Datum, want bool) {
		t.Helper()
		got, err := datumsEqual(a, b)
		if err != nil {
			t.Errorf("datumsEqual(%v, %v): %v", a, b, err)
			return
		}
		if got != want {
			t.Errorf("datumsEqual(%v, %v) = %v", a, b, got)
		}
	}
	eq(intD(2), floatD(2.0), true)
	eq(intD(2), floatD(2.5), false)
	eq(stringD("x"), stringD("x"), true)
	eq(boolD(true), boolD(true), true)
	eq(null(), null(), true)
	eq(null(), intD(0), false)
	eq(rectD(geom.R(0, 0, 1, 1)), rectD(geom.R(0, 0, 1, 1)), true)
	eq(locD(relation.LocRef{Picture: "m", Object: 1}), locD(relation.LocRef{Picture: "m", Object: 1}), true)
	if _, err := datumsEqual(intD(1), rectD(geom.R(0, 0, 1, 1))); err == nil {
		t.Error("int vs rect equality should error")
	}
}

func TestFromValue(t *testing.T) {
	tests := []struct {
		v    relation.Value
		kind DatumKind
	}{
		{relation.I(5), KindInt},
		{relation.F(2.5), KindFloat},
		{relation.S("s"), KindString},
		{relation.L("m", 3), KindLoc},
	}
	for _, tt := range tests {
		if got := fromValue(tt.v); got.Kind != tt.kind {
			t.Errorf("fromValue(%v).Kind = %v, want %v", tt.v, got.Kind, tt.kind)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindNull; k <= KindRect; k++ {
		if strings.HasPrefix(k.String(), "DatumKind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(DatumKind(99).String(), "DatumKind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}

// TestParserNeverPanics feeds token soup to the parser: malformed
// input must produce errors, never panics.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"select", "from", "on", "at", "where", "order", "by", "limit",
		"covered-by", "covering", "{", "}", "(", ")", ",", ".", "±",
		"loc", "cities", "1", "2.5", "'s'", "*", "+", "-", "=", "<",
		"and", "or", "not", "area",
	}
	// Deterministic pseudo-random combinations.
	state := uint64(12345)
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for trial := 0; trial < 2000; trial++ {
		var b strings.Builder
		n := 1 + next(12)
		for i := 0; i < n; i++ {
			b.WriteString(fragments[next(len(fragments))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}
