package psql

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/picture"
)

// Func is a PSQL-callable function: the paper's pictorial domain
// functions ("functions defined on pictorial domains ... very specific
// to the application") plus ordinary scalar helpers. The executor
// resolves loc arguments to pictures through its catalog before the
// function sees them, so functions receive datums whose Rect field is
// populated for loc/area arguments; the resolved picture object (when
// the argument was a loc) is passed alongside.
type Func func(call *FuncContext) (Datum, error)

// FuncContext carries one invocation's arguments and resolution
// helpers.
type FuncContext struct {
	Name string
	Args []Datum
	// Objects holds, for each argument that was a loc, the resolved
	// picture object; nil entries otherwise.
	Objects []*picture.Object
	Pos     int
}

// arg returns argument i or an error.
func (c *FuncContext) arg(i int) (Datum, error) {
	if i >= len(c.Args) {
		return Datum{}, errf(c.Pos, "%s: missing argument %d", c.Name, i+1)
	}
	return c.Args[i], nil
}

// rectArg returns argument i as an area (the MBR for locs).
func (c *FuncContext) rectArg(i int) (geom.Rect, error) {
	d, err := c.arg(i)
	if err != nil {
		return geom.Rect{}, err
	}
	if d.Kind != KindRect && d.Kind != KindLoc {
		return geom.Rect{}, errf(c.Pos, "%s: argument %d is %s, want a loc or area", c.Name, i+1, d.Kind)
	}
	return d.Rect, nil
}

// objectArg returns the resolved picture object of argument i, if the
// argument was a loc.
func (c *FuncContext) objectArg(i int) *picture.Object {
	if i < len(c.Objects) {
		return c.Objects[i]
	}
	return nil
}

// numArg returns argument i as a float.
func (c *FuncContext) numArg(i int) (float64, error) {
	d, err := c.arg(i)
	if err != nil {
		return 0, err
	}
	if !d.IsNumeric() {
		return 0, errf(c.Pos, "%s: argument %d is %s, want a number", c.Name, i+1, d.Kind)
	}
	return d.AsFloat(), nil
}

// builtinFuncs returns the standard function registry. Executors start
// from this and applications extend it with RegisterFunc — the paper's
// "user-defined (application-defined) extensions that can be invoked
// from the pictorial language".
func builtinFuncs() map[string]Func {
	return map[string]Func{
		// area(loc|area): exact area for region objects, MBR area
		// otherwise — the paper's example function on region domains.
		"area": func(c *FuncContext) (Datum, error) {
			if o := c.objectArg(0); o != nil && o.Kind == picture.KindRegion {
				return floatD(o.Region.Area()), nil
			}
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Area()), nil
		},
		// length(loc): exact length for segment objects, MBR diagonal
		// otherwise.
		"length": func(c *FuncContext) (Datum, error) {
			if o := c.objectArg(0); o != nil && o.Kind == picture.KindSegment {
				return floatD(o.Segment.Length()), nil
			}
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Min.Dist(r.Max)), nil
		},
		// perimeter(loc): exact perimeter for region objects.
		"perimeter": func(c *FuncContext) (Datum, error) {
			if o := c.objectArg(0); o != nil && o.Kind == picture.KindRegion {
				return floatD(o.Region.Perimeter()), nil
			}
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(2 * r.Margin()), nil
		},
		// northest(loc|area): the paper's example aggregate — the
		// northernmost coordinate of the object.
		"northest": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Max.Y), nil
		},
		"southest": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Min.Y), nil
		},
		"eastest": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Max.X), nil
		},
		"westest": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Min.X), nil
		},
		// centerx/centery(loc|area): the object's center coordinates.
		"centerx": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Center().X), nil
		},
		"centery": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(r.Center().Y), nil
		},
		// distance(a, b): distance between the centers of two areas.
		"distance": func(c *FuncContext) (Datum, error) {
			a, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			b, err := c.rectArg(1)
			if err != nil {
				return Datum{}, err
			}
			return floatD(a.Center().Dist(b.Center())), nil
		},
		// mbr(loc): the object's minimal bounding rectangle as an area
		// value.
		"mbr": func(c *FuncContext) (Datum, error) {
			r, err := c.rectArg(0)
			if err != nil {
				return Datum{}, err
			}
			return rectD(r), nil
		},
		// window(cx, dx, cy, dy): an area value, the functional form
		// of the {cx±dx, cy±dy} literal.
		"window": func(c *FuncContext) (Datum, error) {
			var v [4]float64
			for i := range v {
				f, err := c.numArg(i)
				if err != nil {
					return Datum{}, err
				}
				v[i] = f
			}
			return rectD(geom.WindowAt(v[0], v[1], v[2], v[3])), nil
		},
		// label(loc): the display label of the referenced object.
		"label": func(c *FuncContext) (Datum, error) {
			if o := c.objectArg(0); o != nil {
				return stringD(o.Label), nil
			}
			return Datum{}, errf(c.Pos, "label: argument is not a resolvable loc")
		},
		// kind(loc): "point", "segment" or "region".
		"kind": func(c *FuncContext) (Datum, error) {
			if o := c.objectArg(0); o != nil {
				return stringD(o.Kind.String()), nil
			}
			return Datum{}, errf(c.Pos, "kind: argument is not a resolvable loc")
		},
		// abs, sqrt: plain scalar helpers.
		"abs": func(c *FuncContext) (Datum, error) {
			v, err := c.numArg(0)
			if err != nil {
				return Datum{}, err
			}
			return floatD(math.Abs(v)), nil
		},
		"sqrt": func(c *FuncContext) (Datum, error) {
			v, err := c.numArg(0)
			if err != nil {
				return Datum{}, err
			}
			if v < 0 {
				return Datum{}, fmt.Errorf("psql: sqrt of negative %g", v)
			}
			return floatD(math.Sqrt(v)), nil
		},
	}
}
