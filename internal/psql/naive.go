package psql

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/relation"
	"repro/internal/storage"
)

// The naive reference executor: the same PSQL semantics as the planned
// path, expressed as full scans, nested loops, and one Get per tuple —
// no R-tree descent, no B-tree shortcuts, no batched materialization,
// no conjunct reordering. It exists so the planned executor has an
// oracle to be compared against row for row: both paths emit candidate
// rows in canonical ascending TupleID order (the order a heap scan
// delivers), so equal semantics mean equal output.

// naiveRows is candidateRows for naive mode.
func (st *execState) naiveRows() ([]row, error) {
	at := st.q.At
	if at == nil {
		return st.naiveCartesian(nil)
	}

	// Normalize exactly like the planned path: loc on the left.
	left, op, right := at.Left, at.Op, at.Right
	if _, lok := left.(LocTerm); !lok {
		if _, rok := right.(LocTerm); rok {
			left, right = right, left
			op = converse(op)
		}
	}

	switch l := left.(type) {
	case LocTerm:
		bi, err := st.bindingIndex(l.Table, l.Pos)
		if err != nil {
			return nil, err
		}
		switch r := right.(type) {
		case LocTerm:
			bj, err := st.bindingIndex(r.Table, r.Pos)
			if err != nil {
				return nil, err
			}
			if bi == bj {
				return nil, errf(at.Pos, "at-clause relates %q to itself", l.Table)
			}
			return st.naiveJoin(bi, bj, op)
		default:
			windows, err := st.termWindows(right)
			if err != nil {
				return nil, err
			}
			ids, err := st.naiveWindowFilter(bi, op, windows)
			if err != nil {
				return nil, err
			}
			return st.naiveCartesian(map[int][]storage.TupleID{bi: ids})
		}
	default:
		lw, err := st.termWindows(left)
		if err != nil {
			return nil, err
		}
		rw, err := st.termWindows(right)
		if err != nil {
			return nil, err
		}
		if !constantAtHolds(lw, rw, op) {
			return nil, nil
		}
		return st.naiveCartesian(nil)
	}
}

// naiveMBRs scans binding bi and resolves each tuple's loc MBR against
// the on-clause picture. Tuples whose loc points at another picture or
// a missing object are skipped — the same tuples a spatial index does
// not carry. Ids come back in heap-scan (ascending TupleID) order.
func (st *execState) naiveMBRs(bi int) ([]storage.TupleID, []geom.Rect, error) {
	b := st.bindings[bi]
	if b.picture == "" {
		return nil, nil, fmt.Errorf("psql: relation %q has no picture in the on-clause for direct search", b.name)
	}
	li := b.schema.LocColumn()
	if li < 0 {
		return nil, nil, fmt.Errorf("psql: relation %q has no loc column", b.name)
	}
	pic, ok := st.e.cat.Picture(b.picture)
	if !ok {
		return nil, nil, fmt.Errorf("psql: unknown picture %q", b.picture)
	}
	ids, err := st.scanIDs(bi)
	if err != nil {
		return nil, nil, err
	}
	var outIDs []storage.TupleID
	var outMBRs []geom.Rect
	for _, id := range ids {
		t, err := b.rel.Get(id)
		if err != nil {
			return nil, nil, err
		}
		mbr, ok := tupleMBR(t, li, pic, b.picture)
		if !ok {
			continue
		}
		outIDs = append(outIDs, id)
		outMBRs = append(outMBRs, mbr)
	}
	return outIDs, outMBRs, nil
}

// naiveWindowFilter keeps binding bi's tuples whose loc satisfies op
// against any window — a full scan standing in for direct search.
func (st *execState) naiveWindowFilter(bi int, op SpatialOp, windows []geom.Rect) ([]storage.TupleID, error) {
	ids, mbrs, err := st.naiveMBRs(bi)
	if err != nil {
		return nil, err
	}
	pred := spatialPred(op)
	var out []storage.TupleID
	for i, id := range ids {
		for _, w := range windows {
			if pred(mbrs[i], w) {
				out = append(out, id)
				break
			}
		}
	}
	return out, nil
}

// naiveJoin is juxtaposition as a nested loop: binding 0 outer, binding
// 1 inner (canonical pair order), with the spatial predicate applied
// respecting which binding the at-clause names first.
func (st *execState) naiveJoin(bi, bj int, op SpatialOp) ([]row, error) {
	if len(st.bindings) != 2 {
		return nil, fmt.Errorf("psql: juxtaposition currently joins exactly two relations, got %d", len(st.bindings))
	}
	ids0, mbrs0, err := st.naiveMBRs(0)
	if err != nil {
		return nil, err
	}
	ids1, mbrs1, err := st.naiveMBRs(1)
	if err != nil {
		return nil, err
	}
	pred := spatialPred(op)
	var rows []row
	for i0, id0 := range ids0 {
		for i1, id1 := range ids1 {
			a, b := mbrs0[i0], mbrs1[i1]
			if bi == 1 {
				a, b = b, a // at-clause names binding 1's loc first
			}
			if !pred(a, b) {
				continue
			}
			t0, err := st.bindings[0].rel.Get(id0)
			if err != nil {
				return nil, err
			}
			t1, err := st.bindings[1].rel.Get(id1)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row{ids: []storage.TupleID{id0, id1}, tuples: []relation.Tuple{t0, t1}})
		}
	}
	return rows, nil
}

// naiveCartesian is cartesian with per-id Get instead of batch
// materialization.
func (st *execState) naiveCartesian(fixed map[int][]storage.TupleID) ([]row, error) {
	lists := make([][]storage.TupleID, len(st.bindings))
	product := 1
	limit := st.e.MaxProductRows
	if limit <= 0 {
		limit = 1_000_000
	}
	for i := range st.bindings {
		if ids, ok := fixed[i]; ok {
			lists[i] = ids
		} else {
			ids, err := st.scanIDs(i)
			if err != nil {
				return nil, err
			}
			lists[i] = ids
		}
		product *= len(lists[i])
		if product > limit {
			return nil, fmt.Errorf("psql: cartesian product exceeds %d rows; add an at-clause", limit)
		}
	}
	if product == 0 {
		return nil, nil
	}
	rows := make([]row, 0, product)
	idx := make([]int, len(lists))
	for {
		r := row{ids: make([]storage.TupleID, len(lists)), tuples: make([]relation.Tuple, len(lists))}
		for i, l := range lists {
			id := l[idx[i]]
			t, err := st.bindings[i].rel.Get(id)
			if err != nil {
				return nil, err
			}
			r.ids[i], r.tuples[i] = id, t
		}
		rows = append(rows, r)
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(lists[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			return rows, nil
		}
	}
}
