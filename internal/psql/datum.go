package psql

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/relation"
)

// DatumKind classifies runtime values.
type DatumKind int

const (
	// KindNull is the absence of a value.
	KindNull DatumKind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt is a 64-bit integer.
	KindInt
	// KindFloat is a float64.
	KindFloat
	// KindString is a string.
	KindString
	// KindLoc is a pictorial pointer (a relation.LocRef).
	KindLoc
	// KindRect is an area value: an evaluated area literal or the MBR
	// of a loc.
	KindRect
)

// String names the kind.
func (k DatumKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindLoc:
		return "loc"
	case KindRect:
		return "area"
	default:
		return fmt.Sprintf("DatumKind(%d)", int(k))
	}
}

// Datum is one runtime value during query evaluation.
type Datum struct {
	Kind  DatumKind
	Bool  bool
	Int   int64
	Float float64
	Str   string
	Loc   relation.LocRef
	Rect  geom.Rect
}

// Convenience constructors.
func null() Datum             { return Datum{Kind: KindNull} }
func boolD(b bool) Datum      { return Datum{Kind: KindBool, Bool: b} }
func intD(v int64) Datum      { return Datum{Kind: KindInt, Int: v} }
func floatD(v float64) Datum  { return Datum{Kind: KindFloat, Float: v} }
func stringD(s string) Datum  { return Datum{Kind: KindString, Str: s} }
func rectD(r geom.Rect) Datum { return Datum{Kind: KindRect, Rect: r} }
func locD(l relation.LocRef) Datum {
	return Datum{Kind: KindLoc, Loc: l}
}

// fromValue converts a stored relation value to a runtime datum.
func fromValue(v relation.Value) Datum {
	switch v.Type {
	case relation.TypeInt:
		return intD(v.Int)
	case relation.TypeFloat:
		return floatD(v.Float)
	case relation.TypeString:
		return stringD(v.Str)
	case relation.TypeLoc:
		return locD(v.Loc)
	default:
		return null()
	}
}

// IsNumeric reports whether the datum is an int or float.
func (d Datum) IsNumeric() bool { return d.Kind == KindInt || d.Kind == KindFloat }

// AsFloat returns the numeric value as a float64.
func (d Datum) AsFloat() float64 {
	if d.Kind == KindInt {
		return float64(d.Int)
	}
	return d.Float
}

// Truth returns the boolean value of d; non-bools are errors.
func (d Datum) Truth() (bool, error) {
	if d.Kind != KindBool {
		return false, fmt.Errorf("psql: %s value used as a condition", d.Kind)
	}
	return d.Bool, nil
}

// String renders the datum for result display.
func (d Datum) String() string {
	switch d.Kind {
	case KindNull:
		return "null"
	case KindBool:
		if d.Bool {
			return "true"
		}
		return "false"
	case KindInt:
		return fmt.Sprintf("%d", d.Int)
	case KindFloat:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", d.Float), "0"), ".")
	case KindString:
		return d.Str
	case KindLoc:
		return d.Loc.String()
	case KindRect:
		return d.Rect.String()
	default:
		return "?"
	}
}

// compare orders two datums, promoting ints to floats. It returns an
// error for incomparable kinds.
func compare(a, b Datum) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		av, bv := a.AsFloat(), b.AsFloat()
		switch {
		case av < bv:
			return -1, nil
		case av > bv:
			return 1, nil
		}
		return 0, nil
	}
	if a.Kind == KindString && b.Kind == KindString {
		return strings.Compare(a.Str, b.Str), nil
	}
	if a.Kind == KindLoc && b.Kind == KindLoc {
		if c := strings.Compare(a.Loc.Picture, b.Loc.Picture); c != 0 {
			return c, nil
		}
		switch {
		case a.Loc.Object < b.Loc.Object:
			return -1, nil
		case a.Loc.Object > b.Loc.Object:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("psql: cannot compare %s with %s", a.Kind, b.Kind)
}
