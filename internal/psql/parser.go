package psql

import (
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses one PSQL mapping.
func Parse(src string) (*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.Kind != TokEOF {
		return nil, errf(tok.Pos, "unexpected %s after query", tok)
	}
	return q, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

// keyword reports whether the next token is the given keyword
// (case-insensitive) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return errf(p.peek().Pos, "expected %q, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, errf(t.Pos, "expected %s, found %s", kind, t)
	}
	return t, nil
}

// reserved keywords cannot be used as bare column/relation names.
var reserved = map[string]bool{
	"select": true, "from": true, "on": true, "at": true, "where": true,
	"and": true, "or": true, "not": true, "as": true,
	"covering": true, "covered-by": true, "overlapping": true, "disjoined": true,
}

func isReserved(s string) bool { return reserved[strings.ToLower(s)] }

// soft keywords introduce optional trailing clauses; they cannot serve
// as table aliases but remain usable as column names.
var softKeywords = map[string]bool{
	"order": true, "by": true, "asc": true, "desc": true, "limit": true,
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}

	// Target list.
	if p.peek().Kind == TokStar {
		p.next()
		q.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}

	// from-clause.
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if isReserved(t.Text) {
			return nil, errf(t.Pos, "reserved word %q cannot name a relation", t.Text)
		}
		ref := TableRef{Relation: t.Text}
		// Optional alias: a following non-reserved identifier.
		if nt := p.peek(); nt.Kind == TokIdent && !isReserved(nt.Text) && !softKeywords[strings.ToLower(nt.Text)] {
			ref.Alias = p.next().Text
		}
		q.From = append(q.From, ref)
		if p.peek().Kind != TokComma {
			break
		}
		p.next()
	}

	// on-clause.
	if p.keyword("on") {
		for {
			t, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			q.On = append(q.On, t.Text)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}

	// at-clause.
	if p.keyword("at") {
		at, err := p.parseAtClause()
		if err != nil {
			return nil, err
		}
		q.At = at
	}

	// where-clause.
	if p.keyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}

	// order-by clause (an extension beyond the paper, inherited from
	// the SQL base PSQL extends).
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.keyword("desc") {
				key.Desc = true
			} else {
				p.keyword("asc")
			}
			q.OrderBy = append(q.OrderBy, key)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}

	// limit clause.
	if p.keyword("limit") {
		n, err := p.parseSignedNumber()
		if err != nil {
			return nil, err
		}
		if n < 0 || n != float64(int(n)) {
			return nil, errf(p.peek().Pos, "limit must be a non-negative integer")
		}
		lim := int(n)
		q.Limit = &lim
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("as") {
		t, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.Text
	}
	return item, nil
}

func spatialOpFromIdent(s string) (SpatialOp, bool) {
	switch strings.ToLower(s) {
	case "covered-by":
		return OpCoveredBy, true
	case "covering":
		return OpCovering, true
	case "overlapping":
		return OpOverlapping, true
	case "disjoined":
		return OpDisjoined, true
	}
	return 0, false
}

func (p *parser) parseAtClause() (*AtClause, error) {
	pos := p.peek().Pos
	left, err := p.parseSpatialTerm()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.Kind != TokIdent {
		return nil, errf(opTok.Pos, "expected a spatial operator, found %s", opTok)
	}
	op, ok := spatialOpFromIdent(opTok.Text)
	if !ok {
		return nil, errf(opTok.Pos, "unknown spatial operator %q", opTok.Text)
	}
	right, err := p.parseSpatialTerm()
	if err != nil {
		return nil, err
	}
	return &AtClause{Left: left, Op: op, Right: right, Pos: pos}, nil
}

func (p *parser) parseSpatialTerm() (SpatialTerm, error) {
	t := p.peek()
	switch {
	case t.Kind == TokLBrace:
		a, err := p.parseAreaLiteral()
		if err != nil {
			return nil, err
		}
		return AreaTerm{CX: a.CX, DX: a.DX, CY: a.CY, DY: a.DY, Pos: a.Pos}, nil
	case t.Kind == TokLParen:
		p.next()
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return SubqueryTerm{Query: q, Pos: t.Pos}, nil
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "select"):
		// The paper writes nested mappings inline without parentheses.
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return SubqueryTerm{Query: q, Pos: t.Pos}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.peek().Kind == TokDot {
			p.next()
			col, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return LocTerm{Table: t.Text, Column: col.Text, Pos: t.Pos}, nil
		}
		if strings.EqualFold(t.Text, "loc") || strings.HasSuffix(strings.ToLower(t.Text), "loc") {
			return LocTerm{Column: t.Text, Pos: t.Pos}, nil
		}
		return NameTerm{Name: t.Text, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "expected an area specification, found %s", t)
}

// parseAreaLiteral parses {cx±dx, cy±dy}.
func (p *parser) parseAreaLiteral() (AreaLit, error) {
	open, err := p.expect(TokLBrace)
	if err != nil {
		return AreaLit{}, err
	}
	cx, err := p.parseSignedNumber()
	if err != nil {
		return AreaLit{}, err
	}
	if _, err := p.expect(TokPlusMinus); err != nil {
		return AreaLit{}, err
	}
	dx, err := p.parseSignedNumber()
	if err != nil {
		return AreaLit{}, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return AreaLit{}, err
	}
	cy, err := p.parseSignedNumber()
	if err != nil {
		return AreaLit{}, err
	}
	if _, err := p.expect(TokPlusMinus); err != nil {
		return AreaLit{}, err
	}
	dy, err := p.parseSignedNumber()
	if err != nil {
		return AreaLit{}, err
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return AreaLit{}, err
	}
	return AreaLit{CX: cx, DX: dx, CY: cy, DY: dy, Pos: open.Pos}, nil
}

func (p *parser) parseSignedNumber() (float64, error) {
	neg := false
	if t := p.peek(); t.Kind == TokOp && (t.Text == "-" || t.Text == "+") {
		neg = t.Text == "-"
		p.next()
	}
	t, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(strings.ReplaceAll(t.Text, "_", ""), 64)
	if err != nil {
		return 0, errf(t.Pos, "bad number %q", t.Text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= | <> | < | <= | > | >= | spatial-op) addExpr)?
//	addExpr := mulExpr ((+|-) mulExpr)*
//	mulExpr := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := number | string | area | func(args) | column | (expr)
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.peek().Pos
		if !p.keyword("or") {
			return left, nil
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "or", Left: left, Right: right, Pos: pos}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.peek().Pos
		if !p.keyword("and") {
			return left, nil
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: "and", Left: left, Right: right, Pos: pos}
	}
}

func (p *parser) parseNot() (Expr, error) {
	pos := p.peek().Pos
	if p.keyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "not", Expr: e, Pos: pos}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: t.Text, Left: left, Right: right, Pos: t.Pos}, nil
		}
	}
	// Infix spatial operators are allowed in the qualification too:
	// "cities.loc covered-by states.loc".
	if t.Kind == TokIdent {
		if _, ok := spatialOpFromIdent(t.Text); ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinaryExpr{Op: strings.ToLower(t.Text), Left: left, Right: right, Pos: t.Pos}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: t.Text, Left: left, Right: right, Pos: t.Pos}
	}
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		isMul := t.Kind == TokStar || (t.Kind == TokOp && t.Text == "/")
		if !isMul {
			return left, nil
		}
		p.next()
		op := "*"
		if t.Kind == TokOp {
			op = "/"
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = BinaryExpr{Op: op, Left: left, Right: right, Pos: t.Pos}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && t.Text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return UnaryExpr{Op: "-", Expr: e, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		text := strings.ReplaceAll(t.Text, "_", "")
		if !strings.Contains(text, ".") {
			i, err := strconv.ParseInt(text, 10, 64)
			if err == nil {
				return NumberLit{IsInt: true, Int: i, Value: float64(i), Pos: t.Pos}, nil
			}
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad number %q", t.Text)
		}
		return NumberLit{Value: v, Pos: t.Pos}, nil
	case TokString:
		p.next()
		return StringLit{Value: t.Text, Pos: t.Pos}, nil
	case TokLBrace:
		return p.parseAreaLiteral()
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		if isReserved(t.Text) {
			return nil, errf(t.Pos, "unexpected keyword %q in expression", t.Text)
		}
		p.next()
		// Function call?
		if p.peek().Kind == TokLParen {
			p.next()
			// count(*) counts rows.
			if strings.EqualFold(t.Text, "count") && p.peek().Kind == TokStar {
				p.next()
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
				return FuncCall{Name: "count", Pos: t.Pos}, nil
			}
			var args []Expr
			if p.peek().Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().Kind != TokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return FuncCall{Name: strings.ToLower(t.Text), Args: args, Pos: t.Pos}, nil
		}
		// Qualified column?
		if p.peek().Kind == TokDot {
			p.next()
			col, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return ColumnRef{Table: t.Text, Column: col.Text, Pos: t.Pos}, nil
		}
		return ColumnRef{Column: t.Text, Pos: t.Pos}, nil
	}
	return nil, errf(t.Pos, "unexpected %s in expression", t)
}
