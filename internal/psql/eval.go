package psql

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/picture"
	"repro/internal/relation"
)

// This file evaluates where-clause and target-list expressions over
// one candidate row.

// resolveLoc populates a loc datum's Rect from the referenced picture
// object and returns the object for function use.
func (st *execState) resolveLoc(d *Datum) *picture.Object {
	if d.Kind != KindLoc || d.Loc.IsZero() {
		return nil
	}
	pic, ok := st.e.cat.Picture(d.Loc.Picture)
	if !ok {
		return nil
	}
	obj, ok := pic.Get(d.Loc.Object)
	if !ok {
		return nil
	}
	d.Rect = obj.MBR()
	return &obj
}

// lookupColumn finds the value of a column reference in the row.
func (st *execState) lookupColumn(ref ColumnRef, r *row) (Datum, error) {
	resolve := func(bi, ci int) (Datum, error) {
		if r.tuples[bi] == nil {
			return Datum{}, errf(ref.Pos, "internal: binding %q has no tuple", st.bindings[bi].name)
		}
		d := fromValue(r.tuples[bi][ci])
		if d.Kind == KindLoc {
			st.resolveLoc(&d)
		}
		return d, nil
	}
	if ref.Table != "" {
		bi, err := st.bindingIndex(ref.Table, ref.Pos)
		if err != nil {
			return Datum{}, err
		}
		ci := st.bindings[bi].schema.ColumnIndex(ref.Column)
		if ci < 0 {
			return Datum{}, errf(ref.Pos, "relation %q has no column %q", ref.Table, ref.Column)
		}
		return resolve(bi, ci)
	}
	found := -1
	foundCol := -1
	for bi, b := range st.bindings {
		if ci := b.schema.ColumnIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return Datum{}, errf(ref.Pos, "column %q is ambiguous; qualify it", ref.Column)
			}
			found, foundCol = bi, ci
		}
	}
	if found < 0 {
		return Datum{}, errf(ref.Pos, "unknown column %q", ref.Column)
	}
	return resolve(found, foundCol)
}

// eval evaluates an expression over row r.
func (st *execState) eval(e Expr, r *row) (Datum, error) {
	switch ex := e.(type) {
	case NumberLit:
		if ex.IsInt {
			return intD(ex.Int), nil
		}
		return floatD(ex.Value), nil
	case StringLit:
		return stringD(ex.Value), nil
	case AreaLit:
		return rectD(geom.WindowAt(ex.CX, ex.DX, ex.CY, ex.DY)), nil
	case ColumnRef:
		return st.lookupColumn(ex, r)
	case UnaryExpr:
		return st.evalUnary(ex, r)
	case BinaryExpr:
		return st.evalBinary(ex, r)
	case FuncCall:
		return st.evalFunc(ex, r)
	}
	return Datum{}, fmt.Errorf("psql: unhandled expression %T", e)
}

func (st *execState) evalUnary(ex UnaryExpr, r *row) (Datum, error) {
	d, err := st.eval(ex.Expr, r)
	if err != nil {
		return Datum{}, err
	}
	switch ex.Op {
	case "not":
		b, err := d.Truth()
		if err != nil {
			return Datum{}, err
		}
		return boolD(!b), nil
	case "-":
		switch d.Kind {
		case KindInt:
			return intD(-d.Int), nil
		case KindFloat:
			return floatD(-d.Float), nil
		}
		return Datum{}, errf(ex.Pos, "cannot negate %s", d.Kind)
	}
	return Datum{}, errf(ex.Pos, "unknown unary operator %q", ex.Op)
}

func (st *execState) evalBinary(ex BinaryExpr, r *row) (Datum, error) {
	// Short-circuit booleans.
	if ex.Op == "and" || ex.Op == "or" {
		l, err := st.eval(ex.Left, r)
		if err != nil {
			return Datum{}, err
		}
		lb, err := l.Truth()
		if err != nil {
			return Datum{}, err
		}
		if ex.Op == "and" && !lb {
			return boolD(false), nil
		}
		if ex.Op == "or" && lb {
			return boolD(true), nil
		}
		rd, err := st.eval(ex.Right, r)
		if err != nil {
			return Datum{}, err
		}
		rb, err := rd.Truth()
		if err != nil {
			return Datum{}, err
		}
		return boolD(rb), nil
	}

	l, err := st.eval(ex.Left, r)
	if err != nil {
		return Datum{}, err
	}
	rd, err := st.eval(ex.Right, r)
	if err != nil {
		return Datum{}, err
	}

	// Spatial infix operators over loc/area values.
	if op, ok := spatialOpFromIdent(ex.Op); ok {
		if (l.Kind != KindLoc && l.Kind != KindRect) || (rd.Kind != KindLoc && rd.Kind != KindRect) {
			return Datum{}, errf(ex.Pos, "spatial operator %q needs loc or area operands, got %s and %s", ex.Op, l.Kind, rd.Kind)
		}
		return boolD(spatialPred(op)(l.Rect, rd.Rect)), nil
	}

	switch ex.Op {
	case "=", "<>":
		eq, err := datumsEqual(l, rd)
		if err != nil {
			return Datum{}, errf(ex.Pos, "%v", err)
		}
		if ex.Op == "<>" {
			eq = !eq
		}
		return boolD(eq), nil
	case "<", "<=", ">", ">=":
		c, err := compare(l, rd)
		if err != nil {
			return Datum{}, errf(ex.Pos, "%v", err)
		}
		switch ex.Op {
		case "<":
			return boolD(c < 0), nil
		case "<=":
			return boolD(c <= 0), nil
		case ">":
			return boolD(c > 0), nil
		default:
			return boolD(c >= 0), nil
		}
	case "+", "-", "*", "/":
		if !l.IsNumeric() || !rd.IsNumeric() {
			return Datum{}, errf(ex.Pos, "arithmetic on %s and %s", l.Kind, rd.Kind)
		}
		if l.Kind == KindInt && rd.Kind == KindInt {
			switch ex.Op {
			case "+":
				return intD(l.Int + rd.Int), nil
			case "-":
				return intD(l.Int - rd.Int), nil
			case "*":
				return intD(l.Int * rd.Int), nil
			default:
				if rd.Int == 0 {
					return Datum{}, errf(ex.Pos, "division by zero")
				}
				return intD(l.Int / rd.Int), nil
			}
		}
		a, b := l.AsFloat(), rd.AsFloat()
		switch ex.Op {
		case "+":
			return floatD(a + b), nil
		case "-":
			return floatD(a - b), nil
		case "*":
			return floatD(a * b), nil
		default:
			if b == 0 {
				return Datum{}, errf(ex.Pos, "division by zero")
			}
			return floatD(a / b), nil
		}
	}
	return Datum{}, errf(ex.Pos, "unknown operator %q", ex.Op)
}

func datumsEqual(a, b Datum) (bool, error) {
	if a.IsNumeric() && b.IsNumeric() {
		return a.AsFloat() == b.AsFloat(), nil
	}
	switch {
	case a.Kind == KindString && b.Kind == KindString:
		return a.Str == b.Str, nil
	case a.Kind == KindBool && b.Kind == KindBool:
		return a.Bool == b.Bool, nil
	case a.Kind == KindLoc && b.Kind == KindLoc:
		return a.Loc == b.Loc, nil
	case a.Kind == KindRect && b.Kind == KindRect:
		return a.Rect.Eq(b.Rect), nil
	case a.Kind == KindNull || b.Kind == KindNull:
		return a.Kind == b.Kind, nil
	}
	return false, fmt.Errorf("cannot compare %s with %s", a.Kind, b.Kind)
}

func (st *execState) evalFunc(ex FuncCall, r *row) (Datum, error) {
	fn, ok := st.e.lookupFunc(ex.Name)
	if !ok {
		return Datum{}, errf(ex.Pos, "unknown function %q", ex.Name)
	}
	ctx := &FuncContext{Name: ex.Name, Pos: ex.Pos}
	for _, arg := range ex.Args {
		d, err := st.eval(arg, r)
		if err != nil {
			return Datum{}, err
		}
		var obj *picture.Object
		if d.Kind == KindLoc {
			obj = st.resolveLoc(&d)
		}
		ctx.Args = append(ctx.Args, d)
		ctx.Objects = append(ctx.Objects, obj)
	}
	return fn(ctx)
}

// datumToValue converts a datum back to a storable relation value
// where possible (used by tooling that materializes query results).
func datumToValue(d Datum) (relation.Value, bool) {
	switch d.Kind {
	case KindInt:
		return relation.I(d.Int), true
	case KindFloat:
		return relation.F(d.Float), true
	case KindString:
		return relation.S(d.Str), true
	case KindLoc:
		return relation.L(d.Loc.Picture, d.Loc.Object), true
	}
	return relation.Value{}, false
}
