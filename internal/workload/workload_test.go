package workload

import (
	"testing"

	"repro/internal/geom"
)

func TestUniformPointsDeterministicAndInFrame(t *testing.T) {
	a := UniformPoints(500, 42)
	b := UniformPoints(500, 42)
	c := UniformPoints(500, 43)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	diff := false
	for i := range a {
		if !a[i].Eq(b[i]) {
			t.Fatal("same seed produced different points")
		}
		if !a[i].Eq(c[i]) {
			diff = true
		}
		if !Frame.ContainsPoint(a[i]) {
			t.Fatalf("point %v outside frame", a[i])
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical points")
	}
}

func TestClusteredPointsInFrame(t *testing.T) {
	pts := ClusteredPoints(1000, 8, 30, 7)
	if len(pts) != 1000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !Frame.ContainsPoint(p) {
			t.Fatalf("point %v outside frame", p)
		}
	}
	// Clustered data must be measurably more concentrated than
	// uniform: the average nearest-cluster spread is bounded by the
	// construction, so just check the bounding box is the full frame
	// scale but local density varies — count occupied 100x100 cells.
	occupied := map[[2]int]int{}
	for _, p := range pts {
		occupied[[2]int{int(p.X / 100), int(p.Y / 100)}]++
	}
	if len(occupied) >= 95 {
		t.Fatalf("clustered points occupy %d of 100 cells — looks uniform", len(occupied))
	}
}

func TestSkewedPoints(t *testing.T) {
	pts := SkewedPoints(2000, 11)
	low, high := 0, 0
	for _, p := range pts {
		if !Frame.ContainsPoint(p) {
			t.Fatalf("point %v outside frame", p)
		}
		if p.X < 250 {
			low++
		}
		if p.X > 750 {
			high++
		}
	}
	if low <= high*2 {
		t.Fatalf("skew missing: %d low vs %d high", low, high)
	}
}

func TestUniformRects(t *testing.T) {
	rs := UniformRects(300, 50, 13)
	for _, r := range rs {
		if r.Width() > 50 || r.Height() > 50 {
			t.Fatalf("rect %v exceeds max side", r)
		}
		if !Frame.Contains(r) {
			t.Fatalf("rect %v outside frame", r)
		}
	}
}

func TestItemsConversion(t *testing.T) {
	pts := UniformPoints(10, 1)
	items := PointItems(pts)
	for i, it := range items {
		if it.Data != int64(i) || !it.Rect.Min.Eq(pts[i]) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	rects := UniformRects(10, 20, 2)
	ritems := RectItems(rects)
	for i, it := range ritems {
		if it.Data != int64(i) || !it.Rect.Eq(rects[i]) {
			t.Fatalf("rect item %d = %+v", i, it)
		}
	}
}

func TestQueryWindows(t *testing.T) {
	ws := QueryWindows(100, 80, 3)
	for _, w := range ws {
		if w.IsEmpty() {
			t.Fatal("empty window generated")
		}
		if w.Width() > 160 || w.Height() > 160 {
			t.Fatalf("window %v exceeds max extent", w)
		}
	}
}

func TestUSDatasets(t *testing.T) {
	cities := USCities()
	if len(cities) < 40 {
		t.Fatalf("only %d cities", len(cities))
	}
	seen := map[string]bool{}
	for _, c := range cities {
		if seen[c.Name] {
			t.Fatalf("duplicate city %q", c.Name)
		}
		seen[c.Name] = true
		if !Frame.ContainsPoint(c.Pos) {
			t.Fatalf("%s at %v outside frame", c.Name, c.Pos)
		}
		if c.Population <= 0 {
			t.Fatalf("%s has population %d", c.Name, c.Population)
		}
	}
	// NYC must be east of LA, Seattle north of Miami.
	pos := map[string]geom.Point{}
	for _, c := range cities {
		pos[c.Name] = c.Pos
	}
	if pos["New York"].X <= pos["Los Angeles"].X {
		t.Error("geography wrong: NYC not east of LA")
	}
	if pos["Seattle"].Y <= pos["Miami"].Y {
		t.Error("geography wrong: Seattle not north of Miami")
	}

	states := USStates()
	if len(states) < 15 {
		t.Fatalf("only %d states", len(states))
	}
	for _, s := range states {
		if s.Poly.Area() <= 0 {
			t.Fatalf("state %s has no area", s.Name)
		}
	}

	zones := USTimeZones()
	if len(zones) != 4 {
		t.Fatalf("zones = %d", len(zones))
	}
	// Zones must tile the frame horizontally: every x has exactly one
	// zone at mid-height.
	for x := 5.0; x < 1000; x += 10 {
		n := 0
		for _, z := range zones {
			if z.Poly.ContainsPoint(geom.Pt(x, 500)) {
				n++
			}
		}
		if n < 1 || n > 2 { // boundaries may touch
			t.Fatalf("x=%g covered by %d zones", x, n)
		}
	}

	lakes := USLakes()
	if len(lakes) != 6 {
		t.Fatalf("lakes = %d", len(lakes))
	}
	hws := USHighways()
	if len(hws) < 10 {
		t.Fatalf("highways = %d", len(hws))
	}
	for _, h := range hws {
		if h.Seg.Length() <= 0 {
			t.Fatalf("%s %s has zero length", h.Name, h.Section)
		}
	}
}
