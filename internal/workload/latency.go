package workload

import (
	"sort"
	"time"
)

// LatencySummary condenses a set of per-operation latency samples into
// the percentiles the benchmark CLIs report under concurrent load.
type LatencySummary struct {
	Count int           `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
}

// Percentile returns the p-th percentile (0..100) of samples by the
// nearest-rank method. samples need not be sorted; it is not modified.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summarize computes the standard percentile summary from raw
// latency samples. samples is not modified.
func Summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return LatencySummary{
		Count: len(sorted),
		P50:   percentileSorted(sorted, 50),
		P95:   percentileSorted(sorted, 95),
		P99:   percentileSorted(sorted, 99),
		Max:   sorted[len(sorted)-1],
		Mean:  sum / time.Duration(len(sorted)),
	}
}
