// Package workload provides deterministic data and query generators
// for the experiments, plus the built-in geographic datasets (US
// cities, states, time zones, lakes, highways) used by the PSQL
// examples — our stand-in for the paper's digitized us-map,
// time-zone-map and lake-map pictures.
package workload

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Frame is the paper's coordinate frame: points are drawn with
// 0 <= x <= 1000, 0 <= y <= 1000.
var Frame = geom.R(0, 0, 1000, 1000)

// UniformPoints returns n points uniform over Frame — the paper's
// Table 1 workload. The same seed always yields the same points.
func UniformPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return out
}

// ClusteredPoints returns n points grouped into k Gaussian clusters
// with the given standard deviation — the shape of real chartographic
// data (cities cluster along coasts and rivers), where packing shines
// hardest.
func ClusteredPoints(n, k int, stddev float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, k)
	for i := range centers {
		centers[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	out := make([]geom.Point, n)
	for i := range out {
		c := centers[rng.Intn(k)]
		x := clamp(c.X+rng.NormFloat64()*stddev, 0, 1000)
		y := clamp(c.Y+rng.NormFloat64()*stddev, 0, 1000)
		out[i] = geom.Pt(x, y)
	}
	return out
}

// SkewedPoints returns n points with density decaying along x
// (population-like skew): x is drawn as 1000*u^3.
func SkewedPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		u := rng.Float64()
		out[i] = geom.Pt(1000*u*u*u, rng.Float64()*1000)
	}
	return out
}

// UniformRects returns n rectangles with corners uniform in Frame and
// the given maximum side length — region-like data objects.
func UniformRects(n int, maxSide float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		x := rng.Float64() * (1000 - maxSide)
		y := rng.Float64() * (1000 - maxSide)
		w := rng.Float64() * maxSide
		h := rng.Float64() * maxSide
		out[i] = geom.R(x, y, x+w, y+h)
	}
	return out
}

// PointItems converts points to R-tree items with sequential data ids.
func PointItems(pts []geom.Point) []rtree.Item {
	out := make([]rtree.Item, len(pts))
	for i, p := range pts {
		out[i] = rtree.Item{Rect: p.Rect(), Data: int64(i)}
	}
	return out
}

// RectItems converts rectangles to R-tree items with sequential ids.
func RectItems(rs []geom.Rect) []rtree.Item {
	out := make([]rtree.Item, len(rs))
	for i, r := range rs {
		out[i] = rtree.Item{Rect: r, Data: int64(i)}
	}
	return out
}

// QueryPoints returns n random probe points for the Table 1 query
// "Is point (x,y) contained in the database?".
func QueryPoints(n int, seed int64) []geom.Point {
	return UniformPoints(n, seed)
}

// QueryWindows returns n random query windows whose half-extents are
// drawn up to maxHalf, for window-search experiments.
func QueryWindows(n int, maxHalf float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		out[i] = geom.WindowAt(
			rng.Float64()*1000, rng.Float64()*maxHalf,
			rng.Float64()*1000, rng.Float64()*maxHalf,
		)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
