package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Skewed insert traces for the rebalancing experiments. Hilbert-range
// sharding splits the key space evenly at creation, so any insert
// distribution that concentrates on a narrow slice of the Hilbert
// order lands on one hot shard — exactly the realistic pictorial case
// (map objects bunch geographically). The generators here express that
// concentration directly in Hilbert-key order: the frame is cut into a
// grid of cells ranked by the Hilbert key of their centers, and the
// skew modes choose cells non-uniformly along that ranking.

// skewGrid is the per-axis cell count of the Hilbert-ranked grid: 64²
// cells is fine-grained against 256 max shards while keeping setup
// cost trivial.
const skewGrid = 64

// SkewMode selects a skewed point distribution.
type SkewMode int

const (
	// SkewUniform is the unskewed baseline (UniformPoints).
	SkewUniform SkewMode = iota
	// SkewZipf draws the cell rank from a Zipf distribution over the
	// Hilbert ordering: rank 0 (the start of the curve) is hottest and
	// density decays as rank^-s.
	SkewZipf
	// SkewCluster groups points into Gaussian clusters
	// (ClusteredPoints).
	SkewCluster
	// SkewHot sends a fixed fraction of points into a contiguous prefix
	// of the Hilbert ordering — "90% of inserts into 10% of the key
	// space", the acceptance-criteria workload.
	SkewHot
)

// SkewSpec is a parsed skew directive. The zero value is uniform.
type SkewSpec struct {
	Mode SkewMode
	// S is the Zipf exponent (SkewZipf; > 1).
	S float64
	// K and Stddev parameterize SkewCluster.
	K      int
	Stddev float64
	// Frac and Range parameterize SkewHot: Frac of the points land in
	// the first Range fraction of the Hilbert ordering.
	Frac, Range float64
}

// ParseSkew parses a -skew flag value:
//
//	uniform              no skew (the default; empty means uniform too)
//	zipf:<s>             Zipf over the Hilbert ordering, exponent s > 1
//	cluster:<k>:<stddev> k Gaussian clusters with the given deviation
//	hot:<frac>:<range>   frac of points in the first range of the
//	                     Hilbert ordering (hot:0.9:0.1 = 90% in 10%)
func ParseSkew(spec string) (SkewSpec, error) {
	if spec == "" || spec == "uniform" {
		return SkewSpec{}, nil
	}
	parts := strings.Split(spec, ":")
	bad := func() (SkewSpec, error) {
		return SkewSpec{}, fmt.Errorf("workload: bad skew spec %q (want uniform, zipf:<s>, cluster:<k>:<stddev>, or hot:<frac>:<range>)", spec)
	}
	switch parts[0] {
	case "zipf":
		if len(parts) != 2 {
			return bad()
		}
		s, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || s <= 1 {
			return bad()
		}
		return SkewSpec{Mode: SkewZipf, S: s}, nil
	case "cluster":
		if len(parts) != 3 {
			return bad()
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k < 1 {
			return bad()
		}
		sd, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || sd <= 0 {
			return bad()
		}
		return SkewSpec{Mode: SkewCluster, K: k, Stddev: sd}, nil
	case "hot":
		if len(parts) != 3 {
			return bad()
		}
		f, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || f <= 0 || f > 1 {
			return bad()
		}
		r, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || r <= 0 || r > 1 {
			return bad()
		}
		return SkewSpec{Mode: SkewHot, Frac: f, Range: r}, nil
	}
	return bad()
}

// String renders the spec in ParseSkew's syntax.
func (sp SkewSpec) String() string {
	switch sp.Mode {
	case SkewZipf:
		return fmt.Sprintf("zipf:%g", sp.S)
	case SkewCluster:
		return fmt.Sprintf("cluster:%d:%g", sp.K, sp.Stddev)
	case SkewHot:
		return fmt.Sprintf("hot:%g:%g", sp.Frac, sp.Range)
	default:
		return "uniform"
	}
}

// Points draws n points under the spec. Same spec and seed, same
// points.
func (sp SkewSpec) Points(n int, seed int64) []geom.Point {
	switch sp.Mode {
	case SkewZipf:
		return zipfHilbertPoints(n, sp.S, seed)
	case SkewCluster:
		return ClusteredPoints(n, sp.K, sp.Stddev, seed)
	case SkewHot:
		return hotHilbertPoints(n, sp.Frac, sp.Range, seed)
	default:
		return UniformPoints(n, seed)
	}
}

// Windows draws n query windows whose centers follow the spec and
// whose half-extents are uniform up to maxHalf. The uniform spec
// delegates to QueryWindows so existing benchmark traces are
// unchanged when no -skew flag is given.
func (sp SkewSpec) Windows(n int, maxHalf float64, seed int64) []geom.Rect {
	if sp.Mode == SkewUniform {
		return QueryWindows(n, maxHalf, seed)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x51e77))
	pts := sp.Points(n, seed)
	out := make([]geom.Rect, n)
	for i, p := range pts {
		out[i] = geom.WindowAt(p.X, rng.Float64()*maxHalf, p.Y, rng.Float64()*maxHalf)
	}
	return out
}

// hilbertCells returns the grid's cells sorted by the Hilbert key of
// their centers — the curve order the shard router uses.
func hilbertCells() []geom.Rect {
	w := (Frame.Max.X - Frame.Min.X) / skewGrid
	h := (Frame.Max.Y - Frame.Min.Y) / skewGrid
	type ranked struct {
		rect geom.Rect
		key  uint64
	}
	cells := make([]ranked, 0, skewGrid*skewGrid)
	for i := 0; i < skewGrid; i++ {
		for j := 0; j < skewGrid; j++ {
			r := geom.R(
				Frame.Min.X+float64(i)*w, Frame.Min.Y+float64(j)*h,
				Frame.Min.X+float64(i+1)*w, Frame.Min.Y+float64(j+1)*h,
			)
			cells = append(cells, ranked{rect: r, key: geom.HilbertKey(Frame, r.Center())})
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].key < cells[b].key })
	out := make([]geom.Rect, len(cells))
	for i, c := range cells {
		out[i] = c.rect
	}
	return out
}

// pointIn draws a uniform point inside r.
func pointIn(rng *rand.Rand, r geom.Rect) geom.Point {
	return geom.Pt(
		r.Min.X+rng.Float64()*(r.Max.X-r.Min.X),
		r.Min.Y+rng.Float64()*(r.Max.Y-r.Min.Y),
	)
}

// zipfHilbertPoints draws cell ranks from Zipf(s) over the Hilbert
// ordering and a uniform point inside each chosen cell.
func zipfHilbertPoints(n int, s float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	cells := hilbertCells()
	z := rand.NewZipf(rng, s, 1, uint64(len(cells)-1))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = pointIn(rng, cells[z.Uint64()])
	}
	return out
}

// hotHilbertPoints sends frac of the points into the first hotRange
// fraction of the Hilbert ordering, the rest uniform over the frame.
func hotHilbertPoints(n int, frac, hotRange float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	cells := hilbertCells()
	hot := int(hotRange * float64(len(cells)))
	if hot < 1 {
		hot = 1
	}
	out := make([]geom.Point, n)
	for i := range out {
		if rng.Float64() < frac {
			out[i] = pointIn(rng, cells[rng.Intn(hot)])
		} else {
			out[i] = pointIn(rng, cells[rng.Intn(len(cells))])
		}
	}
	return out
}
