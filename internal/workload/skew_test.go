package workload

import (
	"testing"

	"repro/internal/pack"
)

func TestParseSkew(t *testing.T) {
	good := []string{"", "uniform", "zipf:1.2", "cluster:4:25", "hot:0.9:0.1"}
	for _, s := range good {
		if _, err := ParseSkew(s); err != nil {
			t.Errorf("ParseSkew(%q): %v", s, err)
		}
	}
	bad := []string{"zipf", "zipf:0.5", "zipf:x", "cluster:4", "cluster:0:25",
		"cluster:4:0", "hot:0.9", "hot:1.5:0.1", "hot:0.9:0", "nope:1"}
	for _, s := range bad {
		if _, err := ParseSkew(s); err == nil {
			t.Errorf("ParseSkew(%q) accepted", s)
		}
	}
	// Round-trip through String.
	for _, s := range []string{"uniform", "zipf:1.2", "cluster:4:25", "hot:0.9:0.1"} {
		sp, err := ParseSkew(s)
		if err != nil {
			t.Fatal(err)
		}
		if sp.String() != s {
			t.Errorf("ParseSkew(%q).String() = %q", s, sp.String())
		}
	}
}

func TestSkewPointsDeterministicAndInFrame(t *testing.T) {
	for _, spec := range []string{"uniform", "zipf:1.5", "cluster:4:25", "hot:0.9:0.1"} {
		sp, err := ParseSkew(spec)
		if err != nil {
			t.Fatal(err)
		}
		a := sp.Points(400, 11)
		b := sp.Points(400, 11)
		for i := range a {
			if !a[i].Eq(b[i]) {
				t.Fatalf("%s: same seed diverged at %d", spec, i)
			}
			if !Frame.ContainsPoint(a[i]) {
				t.Fatalf("%s: point %v outside frame", spec, a[i])
			}
		}
	}
}

// TestHotSkewConcentratesHilbertKeys checks the acceptance-criteria
// workload really is skewed in the router's terms: with hot:0.9:0.1 at
// least 85% of the points must fall in the first 10% of the Hilbert
// key space (90% aimed there, plus strays from the uniform remainder).
func TestHotSkewConcentratesHilbertKeys(t *testing.T) {
	sp := SkewSpec{Mode: SkewHot, Frac: 0.9, Range: 0.1}
	pts := sp.Points(4000, 3)
	cut := (uint64(1) << pack.HilbertKeyBits) / 10 // 10% of the key space
	in := 0
	for _, p := range pts {
		if pack.HilbertKey(Frame, p) < cut {
			in++
		}
	}
	if frac := float64(in) / float64(len(pts)); frac < 0.85 {
		t.Fatalf("hot:0.9:0.1 put only %.2f of points in the first 10%% of the key space", frac)
	}
}
