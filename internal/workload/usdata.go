package workload

import "repro/internal/geom"

// Built-in geographic datasets standing in for the paper's digitized
// pictures. Coordinates are real latitude/longitude projected onto
// the [0,1000]^2 frame with a plate carrée mapping of the continental
// US: longitude -125..-67 -> x 0..1000, latitude 24..49 -> y 0..1000.
// Populations are 1980-census values, matching the paper's era (its
// example selects cities with population > 450,000).

// City is one row of the cities relation.
type City struct {
	Name       string
	State      string
	Population int64
	Pos        geom.Point
}

// Region is one row of a region relation (states, time zones, lakes).
type Region struct {
	Name string
	// Attr carries the relation-specific attribute: population density
	// for states, hour difference for time zones, area for lakes.
	Attr float64
	Poly geom.Polygon
}

// Highway is one row of the highways relation.
type Highway struct {
	Name    string
	Section string
	Seg     geom.Segment
}

// project maps (lat, lon) to frame coordinates.
func project(lat, lon float64) geom.Point {
	x := (lon + 125) / 58 * 1000
	y := (lat - 24) / 25 * 1000
	return geom.Pt(x, y)
}

// USCities returns the largest US cities (1980 census).
func USCities() []City {
	raw := []struct {
		name, state string
		pop         int64
		lat, lon    float64
	}{
		{"New York", "NY", 7071639, 40.71, -74.01},
		{"Chicago", "IL", 3005072, 41.88, -87.63},
		{"Los Angeles", "CA", 2966850, 34.05, -118.24},
		{"Philadelphia", "PA", 1688210, 39.95, -75.17},
		{"Houston", "TX", 1595138, 29.76, -95.37},
		{"Detroit", "MI", 1203339, 42.33, -83.05},
		{"Dallas", "TX", 904078, 32.78, -96.80},
		{"San Diego", "CA", 875538, 32.72, -117.16},
		{"Phoenix", "AZ", 789704, 33.45, -112.07},
		{"Baltimore", "MD", 786775, 39.29, -76.61},
		{"San Antonio", "TX", 785880, 29.42, -98.49},
		{"Indianapolis", "IN", 700807, 39.77, -86.16},
		{"San Francisco", "CA", 678974, 37.77, -122.42},
		{"Memphis", "TN", 646356, 35.15, -90.05},
		{"Washington", "DC", 638333, 38.91, -77.04},
		{"Milwaukee", "WI", 636212, 43.04, -87.91},
		{"San Jose", "CA", 629442, 37.34, -121.89},
		{"Cleveland", "OH", 573822, 41.50, -81.69},
		{"Columbus", "OH", 564871, 39.96, -83.00},
		{"Boston", "MA", 562994, 42.36, -71.06},
		{"New Orleans", "LA", 557515, 29.95, -90.07},
		{"Jacksonville", "FL", 540920, 30.33, -81.66},
		{"Seattle", "WA", 493846, 47.61, -122.33},
		{"Denver", "CO", 492365, 39.74, -104.99},
		{"Nashville", "TN", 455651, 36.16, -86.78},
		{"St. Louis", "MO", 453085, 38.63, -90.20},
		{"Kansas City", "MO", 448159, 39.10, -94.58},
		{"El Paso", "TX", 425259, 31.76, -106.49},
		{"Atlanta", "GA", 425022, 33.75, -84.39},
		{"Pittsburgh", "PA", 423938, 40.44, -80.00},
		{"Oklahoma City", "OK", 403213, 35.47, -97.52},
		{"Cincinnati", "OH", 385457, 39.10, -84.51},
		{"Fort Worth", "TX", 385164, 32.76, -97.33},
		{"Minneapolis", "MN", 370951, 44.98, -93.27},
		{"Portland", "OR", 366383, 45.52, -122.68},
		{"Honolulu-Stub", "NV", 365048, 36.17, -115.14}, // placed at Las Vegas's site to stay on the continental frame
		{"Long Beach", "CA", 361334, 33.77, -118.19},
		{"Tulsa", "OK", 360919, 36.15, -95.99},
		{"Buffalo", "NY", 357870, 42.89, -78.88},
		{"Toledo", "OH", 354635, 41.65, -83.54},
		{"Miami", "FL", 346865, 25.76, -80.19},
		{"Austin", "TX", 345890, 30.27, -97.74},
		{"Oakland", "CA", 339337, 37.80, -122.27},
		{"Albuquerque", "NM", 331767, 35.08, -106.65},
		{"Tucson", "AZ", 330537, 32.22, -110.97},
		{"Newark", "NJ", 329248, 40.74, -74.17},
		{"Charlotte", "NC", 314447, 35.23, -80.84},
		{"Omaha", "NE", 314255, 41.26, -95.93},
	}
	out := make([]City, len(raw))
	for i, c := range raw {
		out[i] = City{Name: c.name, State: c.state, Population: c.pop, Pos: project(c.lat, c.lon)}
	}
	return out
}

// rectRegion builds a rectangular region polygon from lat/lon bounds.
func rectRegion(name string, attr, latLo, lonLo, latHi, lonHi float64) Region {
	a := project(latLo, lonLo)
	b := project(latHi, lonHi)
	return Region{
		Name: name,
		Attr: attr,
		Poly: geom.RectPoly(geom.R(a.X, a.Y, b.X, b.Y)),
	}
}

// USStates returns simplified rectangular outlines of a selection of
// states; Attr is 1980 population density (people per square mile).
func USStates() []Region {
	return []Region{
		rectRegion("California", 151.4, 32.5, -124.4, 42.0, -114.1),
		rectRegion("Texas", 54.3, 25.8, -106.6, 36.5, -93.5),
		rectRegion("New York", 370.6, 40.5, -79.8, 45.0, -71.9),
		rectRegion("Florida", 180.0, 24.5, -87.6, 31.0, -80.0),
		rectRegion("Ohio", 263.3, 38.4, -84.8, 41.98, -80.5),
		rectRegion("Illinois", 205.3, 37.0, -91.5, 42.5, -87.5),
		rectRegion("Pennsylvania", 264.3, 39.7, -80.5, 42.3, -74.7),
		rectRegion("Michigan", 162.6, 41.7, -90.4, 48.3, -82.4),
		rectRegion("Georgia", 94.1, 30.4, -85.6, 35.0, -80.8),
		rectRegion("Maryland", 428.7, 37.9, -79.5, 39.7, -75.0),
		rectRegion("Virginia", 134.7, 36.5, -83.7, 39.5, -75.2),
		rectRegion("Massachusetts", 733.3, 41.2, -73.5, 42.9, -69.9),
		rectRegion("Washington", 62.1, 45.5, -124.8, 49.0, -116.9),
		rectRegion("Colorado", 27.9, 37.0, -109.1, 41.0, -102.0),
		rectRegion("Arizona", 23.9, 31.3, -114.8, 37.0, -109.0),
		rectRegion("Tennessee", 111.6, 35.0, -90.3, 36.7, -81.6),
		rectRegion("Missouri", 71.3, 36.0, -95.8, 40.6, -89.1),
		rectRegion("Wisconsin", 86.5, 42.5, -92.9, 47.1, -86.8),
		rectRegion("Minnesota", 51.2, 43.5, -97.2, 49.0, -89.5),
		rectRegion("Louisiana", 94.5, 29.0, -94.0, 33.0, -89.0),
	}
}

// USTimeZones returns the four continental time-zone bands; Attr is
// the offset from UTC (standard time).
func USTimeZones() []Region {
	return []Region{
		rectRegion("Eastern", -5, 24, -85, 49, -67),
		rectRegion("Central", -6, 24, -102, 49, -85),
		rectRegion("Mountain", -7, 24, -114, 49, -102),
		rectRegion("Pacific", -8, 24, -125, 49, -114),
	}
}

// USLakes returns simplified outlines of the Great Lakes plus the
// Great Salt Lake; Attr is surface area in square miles.
func USLakes() []Region {
	tri := func(name string, attr float64, pts ...geom.Point) Region {
		return Region{Name: name, Attr: attr, Poly: geom.Poly(pts...)}
	}
	return []Region{
		tri("Superior", 31700,
			project(46.5, -92.1), project(48.8, -89.3), project(47.5, -84.4), project(46.5, -87.0)),
		tri("Michigan", 22300,
			project(41.7, -87.5), project(45.9, -87.1), project(45.9, -84.8), project(41.7, -86.2)),
		tri("Huron", 23000,
			project(43.0, -83.9), project(46.3, -84.1), project(45.9, -81.2), project(43.1, -81.7)),
		tri("Erie", 9910,
			project(41.4, -83.5), project(42.9, -80.0), project(42.6, -78.9), project(41.4, -81.4)),
		tri("Ontario", 7340,
			project(43.2, -79.8), project(44.2, -76.5), project(43.6, -76.2), project(43.2, -78.7)),
		tri("Great Salt", 1700,
			project(40.7, -112.9), project(41.7, -112.9), project(41.7, -112.0), project(40.7, -112.2)),
	}
}

// USHighways returns a few interstate highway sections as segments.
func USHighways() []Highway {
	seg := func(name, section string, lat1, lon1, lat2, lon2 float64) Highway {
		return Highway{Name: name, Section: section, Seg: geom.Seg(project(lat1, lon1), project(lat2, lon2))}
	}
	return []Highway{
		seg("I-95", "Miami-Jacksonville", 25.76, -80.19, 30.33, -81.66),
		seg("I-95", "Jacksonville-DC", 30.33, -81.66, 38.91, -77.04),
		seg("I-95", "DC-NewYork", 38.91, -77.04, 40.71, -74.01),
		seg("I-95", "NewYork-Boston", 40.71, -74.01, 42.36, -71.06),
		seg("I-10", "LA-Phoenix", 34.05, -118.24, 33.45, -112.07),
		seg("I-10", "Phoenix-ElPaso", 33.45, -112.07, 31.76, -106.49),
		seg("I-10", "ElPaso-SanAntonio", 31.76, -106.49, 29.42, -98.49),
		seg("I-10", "SanAntonio-Houston", 29.42, -98.49, 29.76, -95.37),
		seg("I-10", "Houston-NewOrleans", 29.76, -95.37, 29.95, -90.07),
		seg("I-90", "Seattle-Chicago", 47.61, -122.33, 41.88, -87.63),
		seg("I-90", "Chicago-Boston", 41.88, -87.63, 42.36, -71.06),
		seg("I-5", "SanDiego-LA", 32.72, -117.16, 34.05, -118.24),
		seg("I-5", "LA-SanFrancisco", 34.05, -118.24, 37.77, -122.42),
		seg("I-5", "SanFrancisco-Portland", 37.77, -122.42, 45.52, -122.68),
		seg("I-5", "Portland-Seattle", 45.52, -122.68, 47.61, -122.33),
	}
}
