package benchguard_test

import (
	"testing"

	"repro/internal/lint/benchguard"
	"repro/internal/lint/linttest"
)

func TestBenchGuard(t *testing.T) {
	linttest.Run(t, "testdata", benchguard.Analyzer, "cmd/loadbench", "internal/render")
}
