// Package benchguard keeps the benchmark tooling honest. The bench
// CLIs (cmd/rtreebench, cmd/psqlbench, cmd/ingestbench,
// cmd/commitbench) and internal/workload produce the numbers the
// ROADMAP's acceptance criteria are judged by, so they get their own
// discipline, enforced here:
//
//   - No math/rand global state (rand.Intn, rand.Seed, …): workloads
//     must be reproducible run-to-run, so randomness flows from a
//     seeded *rand.Rand (the internal/workload generators all take an
//     explicit seed).
//   - No raw time.Now inside a measured loop outside the established
//     recorder idiom (t0 := time.Now() … time.Since(t0), as used by
//     the -latency percentile mode): stray clock reads inside the hot
//     loop skew exactly the numbers the loop exists to measure.
//   - No dropped errors when persisting results or profiles
//     (os.WriteFile for -out JSON, profile file Close/Sync,
//     json.Encoder.Encode, pprof.WriteHeapProfile): a bench that
//     silently fails to record its numbers poisons the BENCH_*.json
//     trajectory the next PR compares against.
//
// The analyzer applies itself only to packages matching its -pkgs
// regexp (default: the bench CLIs and internal/workload).
package benchguard

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/directive"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "benchguard",
	Doc:      "benchmark code must use seeded randomness, the latency-recorder timing idiom, and check result/profile write errors",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	pkgsPattern  = `(^|/)cmd/[^/]*bench[^/]*$|(^|/)internal/workload$`
	includeTests = false
)

func init() {
	Analyzer.Flags.StringVar(&pkgsPattern, "pkgs", pkgsPattern, "regexp of package paths to check")
	Analyzer.Flags.BoolVar(&includeTests, "tests", false, "also check _test.go files")
}

// seededConstructors are the math/rand entry points that do NOT touch
// global state.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// droppedErrorCallees lists calls whose error result must be checked
// in bench code: the results/profile persistence surface.
type callee struct {
	recvPkg, recvType, method string // method match ("" recvType = package func)
}

var droppedErrorCallees = []callee{
	{"os", "File", "Close"},
	{"os", "File", "Sync"},
	{"os", "", "WriteFile"},
	{"json", "Encoder", "Encode"},
	{"pprof", "", "WriteHeapProfile"},
	{"pprof", "Profile", "WriteTo"},
}

func run(pass *analysis.Pass) (interface{}, error) {
	re, err := regexp.Compile(pkgsPattern)
	if err != nil {
		return nil, err
	}
	if !re.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	pass = directive.Apply(pass, false)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	info := pass.TypesInfo

	skip := func(n ast.Node) bool {
		return !includeTests && lintutil.IsTestFile(pass.Fset.Position(n.Pos()).Filename)
	}

	// Rule 1: math/rand global state.
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		if skip(n) {
			return
		}
		sel := n.(*ast.SelectorExpr)
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return
		}
		path := obj.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" && lintutil.PkgBase(path) != "rand" {
			return
		}
		if _, isFunc := obj.(*types.Func); !isFunc {
			return
		}
		if obj.Pkg().Scope().Lookup(obj.Name()) != obj {
			return // a method (e.g. (*Rand).Intn), not the global-state top-level func
		}
		if seededConstructors[obj.Name()] {
			return
		}
		pass.Reportf(sel.Pos(), "rand.%s uses math/rand global state: benchmarks must be reproducible, use a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", obj.Name())
	})

	// Rules 2 and 3 work per function.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		if skip(n) {
			return
		}
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkTimeNowInLoops(pass, info, fd.Body)
		checkDroppedErrors(pass, info, fd.Body)
	})
	return nil, nil
}

// checkTimeNowInLoops flags time.Now() calls inside for/range bodies
// unless the result feeds the t0/time.Since (or t0/.Sub) recorder
// idiom somewhere in the same function.
func checkTimeNowInLoops(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	// Pass 1a: objects measured with time.Since(x) or y.Sub(x).
	measured := make(map[types.Object]bool)
	// Pass 1b: which time.Now() call each variable is bound to.
	binding := make(map[*ast.CallExpr]types.Object)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i := range x.Rhs {
				if call, ok := lintutil.Unparen(x.Rhs[i]).(*ast.CallExpr); ok && lintutil.PkgFunc(info, call, "time", "Now") {
					if obj := lintutil.ObjOf(info, x.Lhs[i]); obj != nil {
						binding[call] = obj
					}
				}
			}
		case *ast.CallExpr:
			if lintutil.PkgFunc(info, x, "time", "Since") && len(x.Args) == 1 {
				if obj := lintutil.ObjOf(info, x.Args[0]); obj != nil {
					measured[obj] = true
				}
			}
			if _, recvType, ok := lintutil.MethodCall(info, x, "Sub"); ok && lintutil.IsNamed(recvType, "time", "Time") && len(x.Args) == 1 {
				// end.Sub(t0) measures both ends of the interval.
				if obj := lintutil.ObjOf(info, x.Args[0]); obj != nil {
					measured[obj] = true
				}
				if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel {
					if obj := lintutil.ObjOf(info, sel.X); obj != nil {
						measured[obj] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: time.Now() calls lexically inside a loop.
	var inLoop func(n ast.Node, depth int) bool
	inLoop = func(n ast.Node, depth int) bool {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch st := m.(type) {
			case *ast.ForStmt:
				inLoop(st.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(st.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth > 0 && lintutil.PkgFunc(info, st, "time", "Now") {
					obj := binding[st]
					if obj == nil || !measured[obj] {
						pass.Reportf(st.Pos(), "time.Now inside a measured loop outside the t0 := time.Now(); time.Since(t0) recorder idiom: hoist it out of the loop or record latencies via internal/workload helpers")
					}
				}
			}
			return true
		})
		return true
	}
	inLoop(body, 0)
}

// checkDroppedErrors flags discarded error results from the bench
// result/profile persistence surface: expression statements, deferred
// calls, and assignments to blank.
func checkDroppedErrors(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	flag := func(call *ast.CallExpr, how string) {
		name := calleeName(info, call)
		if name == "" {
			return
		}
		pass.Reportf(call.Pos(), "%s error dropped (%s): a bench that fails to persist its results or profile corrupts the BENCH_*.json trajectory; check and propagate it", name, how)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				flag(call, "call result unused")
			}
		case *ast.DeferStmt:
			flag(st.Call, "deferred without checking")
		case *ast.GoStmt:
			flag(st.Call, "goroutine result unused")
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && i < len(st.Rhs) {
					if call, ok := lintutil.Unparen(st.Rhs[i]).(*ast.CallExpr); ok {
						flag(call, "assigned to _")
					}
				}
			}
		}
		return true
	})
}

// calleeName matches a call against droppedErrorCallees, returning a
// human name ("" if not matched or the callee returns no error).
func calleeName(info *types.Info, call *ast.CallExpr) string {
	for _, c := range droppedErrorCallees {
		if c.recvType == "" {
			if lintutil.PkgFunc(info, call, c.recvPkg, c.method) {
				return c.recvPkg + "." + c.method
			}
			continue
		}
		if _, recvType, ok := lintutil.MethodCall(info, call, c.method); ok &&
			lintutil.IsNamed(recvType, c.recvPkg, c.recvType) {
			return "(" + c.recvType + ")." + c.method
		}
	}
	return ""
}
