// Fixture for the benchguard analyzer. The package path
// (cmd/loadbench) matches the default -pkgs gate, so all three rules
// apply here; the sibling internal/render fixture proves the gate
// keeps non-bench code out of scope.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"time"
)

func main() {}

// --- rule 1: seeded randomness -----------------------------------------

// cleanSeeded draws from an explicitly seeded generator.
func cleanSeeded(seed int64, n int) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(1000)
	}
	return out
}

// badGlobalRand uses process-global state: not reproducible.
func badGlobalRand(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rand.Intn(1000) // want `rand.Intn uses math/rand global state`
	}
	return out
}

// badShuffle is global state through another entry point.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses math/rand global state`
}

// --- rule 2: timing idiom ----------------------------------------------

// cleanRecorder is the sanctioned per-op idiom: t0/time.Since.
func cleanRecorder(n int) []time.Duration {
	lat := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		work()
		lat[i] = time.Since(t0)
	}
	return lat
}

// cleanSubIdiom measures with end.Sub(start).
func cleanSubIdiom(n int) time.Duration {
	var total time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		work()
		end := time.Now()
		total += end.Sub(start)
	}
	return total
}

// cleanHoisted reads the clock once, outside the loop.
func cleanHoisted(n int) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		work()
	}
	return time.Since(start)
}

// badStrayClock reads the clock in the loop without measuring.
func badStrayClock(n int) {
	for i := 0; i < n; i++ {
		fmt.Println(time.Now()) // want `time.Now inside a measured loop`
		work()
	}
}

// badBoundUnmeasured binds the stamp but never feeds Since/Sub.
func badBoundUnmeasured(n int) []time.Time {
	stamps := make([]time.Time, 0, n)
	for i := 0; i < n; i++ {
		t := time.Now() // want `time.Now inside a measured loop`
		stamps = append(stamps, t)
		work()
	}
	return stamps
}

// --- rule 3: persistence errors ----------------------------------------

// cleanPersist checks every error on the persistence surface.
func cleanPersist(path string, rep any) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	f, err := os.Create(path + ".prof")
	if err != nil {
		return err
	}
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// badDrops loses errors four different ways.
func badDrops(path string, f *os.File, rep any) {
	defer f.Close()                            // want `\(File\)\.Close error dropped \(deferred without checking\)`
	_ = os.WriteFile(path, []byte("x"), 0o644) // want `os\.WriteFile error dropped \(assigned to _\)`
	enc := json.NewEncoder(os.Stdout)
	enc.Encode(rep)           // want `\(Encoder\)\.Encode error dropped \(call result unused\)`
	pprof.WriteHeapProfile(f) // want `pprof\.WriteHeapProfile error dropped \(call result unused\)`
}

// badStopFunc is the regression shape fixed in rtreebench's
// startCPUProfile: the returned stop closure dropped the Close error.
func badStopFunc(f *os.File) func() {
	return func() {
		pprof.StopCPUProfile()
		f.Close() // want `\(File\)\.Close error dropped \(call result unused\)`
	}
}

// suppressed demonstrates the directive escape hatch.
func suppressed(f *os.File) {
	//lint:ignore benchguard fixture: best-effort close on the crash path
	f.Close()
}

func work() {}
