// Package render is outside the benchguard -pkgs gate: the same
// patterns that are violations in cmd/loadbench produce no
// diagnostics here (and the test fails on any unexpected diagnostic).
package render

import (
	"math/rand"
	"os"
	"time"
)

func Jitter(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rand.Intn(1000)
	}
	return out
}

func Stamp(f *os.File, n int) {
	for i := 0; i < n; i++ {
		_ = time.Now()
	}
	defer f.Close()
}
