// Package lintutil holds the small type-matching helpers the
// pictdblint analyzers share.
//
// The analyzers match the engine's types structurally — by package
// base name, type name, and method/field name — rather than by full
// import path, so the analysistest-style fixture packages (which
// re-declare a minimal pager, storage, …) exercise exactly the same
// matching code as the real tree.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PkgBase returns the last path element of a package path ("repro/internal/pager" -> "pager").
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// NamedType resolves t (through pointers and aliases) to its named
// type, or nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(tt)
		default:
			return nil
		}
	}
}

// IsNamed reports whether t resolves to a named type with the given
// type name declared in a package whose base name matches pkgBase.
func IsNamed(t types.Type, pkgBase, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && PkgBase(pkg.Path()) == pkgBase
}

// MethodCall reports whether call is a method call named name and, if
// so, returns its receiver expression and static receiver type.
func MethodCall(info *types.Info, call *ast.CallExpr, name string) (recv ast.Expr, recvType types.Type, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != name {
		return nil, nil, false
	}
	selInfo, isSelInfo := info.Selections[sel]
	if !isSelInfo || selInfo.Kind() != types.MethodVal {
		return nil, nil, false
	}
	return sel.X, selInfo.Recv(), true
}

// PkgFunc reports whether call invokes the package-level function
// pkg.name (matched by package base name, so both "math/rand" and a
// fixture's "rand" match pkgBase "rand").
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath || PkgBase(fn.Pkg().Path()) == PkgBase(pkgPath)
}

// ObjOf returns the object denoted by an identifier expression, or nil.
func ObjOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// Unparen strips parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The analyzers skip test files by default: the invariants they
// enforce protect the production read/commit paths, and test bodies
// routinely hold pins or clocks in ways the fixtures cover separately.
func IsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
