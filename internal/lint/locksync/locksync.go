// Package locksync machine-checks the pager's locking protocol
// (DESIGN.md §13):
//
//   - No backend I/O that can block on the disk — Sync (fsync),
//     WriteAt, Truncate — while holding a pool shard mutex, the header
//     mutex, or a WAL mutex (qmu/imu). Group commit exists precisely
//     so the single fsync happens outside every hot lock; an fsync
//     smuggled under one serializes all readers behind the disk.
//     Exception: WriteAt under hmu — the dual-slot header write is the
//     one I/O the header mutex exists to serialize.
//   - No blocking channel operation (send, receive, or range over a
//     channel) while holding one of those mutexes: the peer may need
//     the same lock, and the group-commit handshake deadlocks.
//     A select with a default branch is non-blocking and allowed.
//   - Lock ordering inside internal/pager: hmu before any shard.mu,
//     and pager mutexes (hmu, shard.mu) strictly before WAL mutexes
//     (qmu, imu). Acquiring against that order is flagged even if no
//     I/O happens under it.
//   - The sharding layer's locks (DESIGN.md §15): the shard route
//     directory mutex (Relation.smu) and a shard heap mutex
//     (relShard.mu) are never nested in either order — sharded
//     operations resolve the route, release smu, then touch the heap —
//     and neither lock may cover backend I/O or a blocking channel op.
//
// The walk is intraprocedural and syntactic over each function body:
// a Lock/RLock on a recognized mutex marks it held until the matching
// Unlock; defer Unlock keeps it held to function end (which is the
// point — code after the defer still runs under the lock). Helper
// functions documented as "caller holds mu" are the caller's
// responsibility and outside this analyzer's reach; keep them free of
// backend Sync calls by construction.
package locksync

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/directive"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "locksync",
	Doc:      "forbid backend fsync/write and blocking channel ops under pool/WAL mutexes, and check pager lock ordering",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var includeTests = false

func init() {
	Analyzer.Flags.BoolVar(&includeTests, "tests", false, "also check _test.go files")
}

// mutexClass ranks the recognized mutexes. Unknown mutexes are
// tracked for release bookkeeping but trigger no diagnostics: commitMu
// (the designated fsync serializer) and writeGate are *supposed* to be
// held across disk I/O.
type mutexClass int

const (
	classOther     mutexClass = iota
	classHeader               // Pager.hmu
	classPool                 // shard.mu (pager buffer pool)
	classWAL                  // walState.qmu / walState.imu
	classShardDir             // Relation.smu (shard route directory)
	classShardHeap            // relShard.mu (per-shard heap)
)

func (c mutexClass) String() string {
	switch c {
	case classHeader:
		return "header mutex (hmu)"
	case classPool:
		return "pool shard mutex"
	case classWAL:
		return "WAL mutex"
	case classShardDir:
		return "shard directory mutex (smu)"
	case classShardHeap:
		return "shard heap mutex"
	}
	return "mutex"
}

// held is one currently held lock.
type held struct {
	key   string // canonical receiver text, e.g. "sh.mu"
	class mutexClass
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass = directive.Apply(pass, false)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body == nil {
			return
		}
		if !includeTests && lintutil.IsTestFile(pass.Fset.Position(n.Pos()).Filename) {
			return
		}
		w := &walker{pass: pass, info: pass.TypesInfo}
		w.stmts(body.List, nil)
	})
	return nil, nil
}

type walker struct {
	pass *analysis.Pass
	info *types.Info
}

// classify resolves a mutex receiver expression (the X of X.Lock())
// to its class by the owning type and field name.
func (w *walker) classify(recv ast.Expr) (string, mutexClass, bool) {
	t := w.info.TypeOf(recv)
	if t == nil || !isMutexType(t) {
		return "", classOther, false
	}
	key := exprKey(recv)
	sel, ok := lintutil.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return key, classOther, true
	}
	owner := lintutil.NamedType(w.info.TypeOf(sel.X))
	if owner == nil || owner.Obj() == nil {
		return key, classOther, true
	}
	ownerName := owner.Obj().Name()
	field := sel.Sel.Name
	switch {
	case ownerName == "Pager" && field == "hmu":
		return key, classHeader, true
	case ownerName == "shard" && field == "mu":
		return key, classPool, true
	case ownerName == "walState" && (field == "qmu" || field == "imu"):
		return key, classWAL, true
	case ownerName == "Relation" && field == "smu":
		return key, classShardDir, true
	case ownerName == "relShard" && field == "mu":
		return key, classShardHeap, true
	}
	return key, classOther, true
}

func isMutexType(t types.Type) bool {
	return lintutil.IsNamed(t, "sync", "Mutex") || lintutil.IsNamed(t, "sync", "RWMutex")
}

// exprKey renders a stable key for a lock receiver: "p.hmu", "sh.mu".
func exprKey(e ast.Expr) string {
	switch x := lintutil.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprKey(x.X) + "[]"
	case *ast.UnaryExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	}
	return "?"
}

// stmts walks a statement list with the current held set; branches get
// copies so a lock taken in one arm does not poison the other.
func (w *walker) stmts(list []ast.Stmt, locks []held) []held {
	for _, s := range list {
		locks = w.stmt(s, locks)
	}
	return locks
}

func copyLocks(locks []held) []held {
	return append([]held(nil), locks...)
}

func (w *walker) stmt(s ast.Stmt, locks []held) []held {
	switch st := s.(type) {
	case *ast.ExprStmt:
		return w.expr(st.X, locks)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			locks = w.exprValue(r, locks)
		}
		return locks
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held for the remainder of the
		// function — that is its purpose — so it does NOT release here.
		// Any other deferred call is scanned for violations (it runs
		// with whatever is still held at exit; approximate with the
		// current set).
		if w.lockCall(st.Call) == "" {
			w.exprValue(st.Call, locks)
		}
		return locks
	case *ast.GoStmt:
		// The goroutine runs without the caller's locks.
		w.exprValue(st.Call, nil)
		return locks
	case *ast.BlockStmt:
		return w.stmts(st.List, locks)
	case *ast.IfStmt:
		if st.Init != nil {
			locks = w.stmt(st.Init, locks)
		}
		locks = w.exprValue(st.Cond, locks)
		w.stmt(st.Body, copyLocks(locks))
		if st.Else != nil {
			w.stmt(st.Else, copyLocks(locks))
		}
		return locks
	case *ast.ForStmt:
		if st.Init != nil {
			locks = w.stmt(st.Init, locks)
		}
		if st.Cond != nil {
			locks = w.exprValue(st.Cond, locks)
		}
		inner := w.stmts(st.Body.List, copyLocks(locks))
		if st.Post != nil {
			w.stmt(st.Post, inner)
		}
		return locks
	case *ast.RangeStmt:
		// range over a channel is a blocking receive per iteration.
		if t := w.info.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.checkBlockingChan(st.X.Pos(), "range over channel", locks)
			}
		}
		locks = w.exprValue(st.X, locks)
		w.stmts(st.Body.List, copyLocks(locks))
		return locks
	case *ast.SwitchStmt:
		if st.Init != nil {
			locks = w.stmt(st.Init, locks)
		}
		if st.Tag != nil {
			locks = w.exprValue(st.Tag, locks)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyLocks(locks))
			}
		}
		return locks
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			locks = w.stmt(st.Init, locks)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyLocks(locks))
			}
		}
		return locks
	case *ast.SelectStmt:
		// A select with a default branch never blocks; without one it
		// blocks until some case is ready.
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.checkBlockingChan(st.Pos(), "select without default", locks)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, copyLocks(locks))
			}
		}
		return locks
	case *ast.SendStmt:
		w.checkBlockingChan(st.Arrow, "channel send", locks)
		locks = w.exprValue(st.Chan, locks)
		return w.exprValue(st.Value, locks)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			locks = w.exprValue(r, locks)
		}
		return locks
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, locks)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.DeclStmt, *ast.EmptyStmt:
		return locks
	}
	return locks
}

// lockCall recognizes X.Lock/RLock/Unlock/RUnlock on a mutex and
// returns the method name ("" otherwise).
func (w *walker) lockCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	if t := w.info.TypeOf(sel.X); t == nil || !isMutexType(t) {
		return ""
	}
	return sel.Sel.Name
}

// expr handles an expression statement: lock transitions and nested
// violations.
func (w *walker) expr(e ast.Expr, locks []held) []held {
	if call, ok := lintutil.Unparen(e).(*ast.CallExpr); ok {
		switch w.lockCall(call) {
		case "Lock", "RLock":
			sel := call.Fun.(*ast.SelectorExpr)
			key, class, ok := w.classify(sel.X)
			if !ok {
				return locks
			}
			w.checkOrder(call, key, class, locks)
			return append(copyLocks(locks), held{key: key, class: class})
		case "Unlock", "RUnlock":
			sel := call.Fun.(*ast.SelectorExpr)
			key := exprKey(sel.X)
			out := make([]held, 0, len(locks))
			removed := false
			// Release the most recent matching acquisition.
			for i := len(locks) - 1; i >= 0; i-- {
				if !removed && locks[i].key == key {
					removed = true
					continue
				}
				out = append(out, locks[i])
			}
			// out is reversed; restore order.
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
			return out
		}
	}
	return w.exprValue(e, locks)
}

// exprValue scans an arbitrary expression for violations under the
// current held set (calls that fsync, channel ops are statements and
// handled elsewhere).
func (w *walker) exprValue(e ast.Expr, locks []held) []held {
	if e == nil {
		return locks
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs when called, not here; if it is
			// immediately invoked the surrounding CallExpr still gets
			// scanned. Approximate by scanning it with the same held
			// set only when directly invoked.
			return false
		case *ast.CallExpr:
			w.checkCall(x, locks)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.checkBlockingChan(x.Pos(), "channel receive", locks)
			}
		}
		return true
	})
	return locks
}

// worstHeld returns the most protocol-critical lock currently held
// (pool/WAL/header), or nil.
func worstHeld(locks []held) *held {
	for i := len(locks) - 1; i >= 0; i-- {
		if locks[i].class != classOther {
			return &locks[i]
		}
	}
	return nil
}

// checkCall flags blocking backend I/O under a protocol mutex. One
// exemption: a buffered WriteAt under the header mutex IS the designed
// dual-slot header protocol — hmu exists to make the slot flip atomic
// with the write, and it is never on the read path. Sync and Truncate
// stay banned there (writeHeader deliberately leaves fsync ordering to
// its callers).
func (w *walker) checkCall(call *ast.CallExpr, locks []held) {
	h := worstHeld(locks)
	if h == nil {
		return
	}
	for _, m := range [...]string{"Sync", "WriteAt", "Truncate"} {
		_, recvType, ok := lintutil.MethodCall(w.info, call, m)
		if !ok {
			continue
		}
		if !isBackendLike(recvType) {
			continue
		}
		if m == "WriteAt" && h.class == classHeader {
			continue
		}
		w.pass.Reportf(call.Pos(), "backend %s while holding %s %q: disk I/O under a hot lock serializes the read path (see DESIGN.md §13; move it outside the critical section)",
			m, h.class, h.key)
	}
}

// checkOrder enforces the pager's lock hierarchy — hmu before any
// shard.mu, and both before the WAL's qmu/imu — plus the sharding
// layer's discipline: the route directory mutex (Relation.smu) and a
// shard heap mutex (relShard.mu) are NEVER nested, in either order.
// Every sharded operation resolves the route, releases smu, then
// touches the heap under the shard lock (and re-acquires smu afterwards
// if it must publish); holding both would couple the routing hot path
// to heap page I/O and, with per-shard writers running concurrently,
// hand two lock orders to deadlock against each other.
func (w *walker) checkOrder(call *ast.CallExpr, key string, class mutexClass, locks []held) {
	for _, h := range locks {
		switch {
		case class == classHeader && h.class == classPool:
			w.pass.Reportf(call.Pos(), "lock order violation: acquiring header mutex %q while holding pool shard mutex %q (hmu must be taken before any shard.mu)", key, h.key)
		case (class == classHeader || class == classPool) && h.class == classWAL:
			w.pass.Reportf(call.Pos(), "lock order violation: acquiring pager mutex %q while holding WAL mutex %q (pager mutexes come before WAL mutexes)", key, h.key)
		case class == classShardDir && h.class == classShardHeap:
			w.pass.Reportf(call.Pos(), "lock order violation: acquiring shard directory mutex %q while holding shard heap mutex %q (smu and a shard's heap lock are never nested; see DESIGN.md §15)", key, h.key)
		case class == classShardHeap && h.class == classShardDir:
			w.pass.Reportf(call.Pos(), "lock order violation: acquiring shard heap mutex %q while holding shard directory mutex %q (resolve the route, release smu, then touch the heap; see DESIGN.md §15)", key, h.key)
		}
	}
}

// isBackendLike matches the pager's Backend interface, anything that
// implements it, and *os.File.
func isBackendLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if lintutil.IsNamed(t, "pager", "Backend") || lintutil.IsNamed(t, "os", "File") {
		return true
	}
	// Structural check: has WriteAt+Sync+Truncate, i.e. can be a page
	// or WAL store.
	return hasMethod(t, "Sync") && hasMethod(t, "WriteAt") && hasMethod(t, "Truncate")
}

func hasMethod(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		ms = types.NewMethodSet(types.NewPointer(t))
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// checkBlockingChan flags a potentially blocking channel operation
// under a protocol mutex.
func (w *walker) checkBlockingChan(pos token.Pos, what string, locks []held) {
	h := worstHeld(locks)
	if h == nil {
		return
	}
	w.pass.Reportf(pos, "blocking %s while holding %s %q: the peer may need the same lock (group-commit handshake deadlock; see DESIGN.md §13)",
		what, h.class, h.key)
}
