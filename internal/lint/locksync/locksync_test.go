package locksync_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/locksync"
)

func TestLockSync(t *testing.T) {
	linttest.Run(t, "testdata", locksync.Analyzer, "lockfixture")
}
