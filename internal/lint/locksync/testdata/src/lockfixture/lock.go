// Fixture for the locksync analyzer: backend I/O and blocking channel
// ops under pool/WAL/header mutexes, plus the pager lock hierarchy.
//
// locksync recognizes mutexes by owning-type name + field name
// (Pager.hmu, shard.mu, walState.qmu/imu) and backends structurally
// (Sync+WriteAt+Truncate), so this package declares the same shapes
// the real internal/pager has.
package lockfixture

import "sync"

type backend interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Truncate(size int64) error
}

type shard struct {
	mu sync.Mutex
}

type walState struct {
	qmu      sync.Mutex
	imu      sync.RWMutex
	commitMu sync.Mutex // designated fsync serializer: I/O under it is the design
	backend  backend
}

type Pager struct {
	hmu     sync.Mutex
	backend backend
}

// relShard / Relation mirror the sharding layer in internal/relation:
// smu guards the route directory, each relShard.mu guards one shard's
// heap, and the two are never held together.
type relShard struct {
	mu sync.RWMutex
}

type Relation struct {
	smu    sync.RWMutex
	shards []*relShard
}

// --- clean idioms ------------------------------------------------------

// cleanFlushOutside stages under the lock and writes after release.
func cleanFlushOutside(p *Pager, sh *shard, buf []byte) error {
	sh.mu.Lock()
	data := append([]byte(nil), buf...)
	sh.mu.Unlock()
	_, err := p.backend.WriteAt(data, 0)
	return err
}

// cleanSyncUnderCommitMu: commitMu is the designated fsync serializer,
// not a recognized hot lock; I/O under it is the design.
func cleanSyncUnderCommitMu(w *walState) error {
	w.commitMu.Lock()
	defer w.commitMu.Unlock()
	return w.backend.Sync()
}

// cleanHeaderWrite: the dual-slot header WriteAt under hmu IS the
// protocol hmu exists for.
func cleanHeaderWrite(p *Pager, buf []byte) error {
	p.hmu.Lock()
	defer p.hmu.Unlock()
	_, err := p.backend.WriteAt(buf, 0)
	return err
}

// cleanOrder takes hmu before shard.mu before qmu.
func cleanOrder(p *Pager, sh *shard, w *walState) {
	p.hmu.Lock()
	sh.mu.Lock()
	w.qmu.Lock()
	w.qmu.Unlock()
	sh.mu.Unlock()
	p.hmu.Unlock()
}

// cleanSelectDefault never blocks: default makes the select a poll.
func cleanSelectDefault(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// cleanGoroutine: the spawned goroutine does not inherit the lock.
func cleanGoroutine(sh *shard, b backend) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	go func() {
		_ = b.Sync()
	}()
}

// cleanBranchScoped: a lock taken in one if-arm does not poison the
// code after the branch.
func cleanBranchScoped(sh *shard, b backend, cond bool) error {
	if cond {
		sh.mu.Lock()
		sh.mu.Unlock()
	}
	return b.Sync()
}

// cleanRouteThenHeap is the sharded read discipline: resolve the route
// under smu, release, then read the heap under the shard lock.
func cleanRouteThenHeap(r *Relation, gid int) {
	r.smu.RLock()
	s := gid % len(r.shards)
	r.smu.RUnlock()
	sh := r.shards[s]
	sh.mu.RLock()
	sh.mu.RUnlock()
}

// cleanHeapThenRepublish is the sharded delete discipline: the heap
// mutation and the route re-publish are separate critical sections.
func cleanHeapThenRepublish(r *Relation, sh *relShard) {
	sh.mu.Lock()
	sh.mu.Unlock()
	r.smu.Lock()
	r.smu.Unlock()
}

// --- violations --------------------------------------------------------

// badSyncUnderShard fsyncs with a pool shard locked.
func badSyncUnderShard(sh *shard, b backend) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return b.Sync() // want `backend Sync while holding pool shard mutex`
}

// badWriteUnderWAL writes with the WAL queue mutex held.
func badWriteUnderWAL(w *walState, buf []byte) error {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	_, err := w.backend.WriteAt(buf, 0) // want `backend WriteAt while holding WAL mutex`
	return err
}

// badSyncUnderHeader fsyncs under hmu: WriteAt is exempt there, Sync
// is not (writeHeader leaves fsync ordering to callers).
func badSyncUnderHeader(p *Pager) error {
	p.hmu.Lock()
	defer p.hmu.Unlock()
	return p.backend.Sync() // want `backend Sync while holding header mutex`
}

// badTruncateUnderImu truncates under the frame-index mutex.
func badTruncateUnderImu(w *walState) error {
	w.imu.Lock()
	defer w.imu.Unlock()
	return w.backend.Truncate(0) // want `backend Truncate while holding WAL mutex`
}

// badSendUnderShard blocks on a channel send with a shard locked.
func badSendUnderShard(sh *shard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `blocking channel send while holding pool shard mutex`
	sh.mu.Unlock()
}

// badRecvUnderWAL blocks on a receive with qmu held.
func badRecvUnderWAL(w *walState, ch chan int) int {
	w.qmu.Lock()
	defer w.qmu.Unlock()
	return <-ch // want `blocking channel receive while holding WAL mutex`
}

// badSelectUnderShard: no default, so the select blocks.
func badSelectUnderShard(sh *shard, a, b chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select { // want `blocking select without default while holding pool shard mutex`
	case <-a:
	case <-b:
	}
}

// badRangeUnderShard: ranging over a channel is a receive per loop.
func badRangeUnderShard(sh *shard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for v := range ch { // want `blocking range over channel while holding pool shard mutex`
		_ = v
	}
}

// badOrderHmuUnderShard acquires hmu with a shard already locked.
func badOrderHmuUnderShard(p *Pager, sh *shard) {
	sh.mu.Lock()
	p.hmu.Lock() // want `lock order violation: acquiring header mutex`
	p.hmu.Unlock()
	sh.mu.Unlock()
}

// badOrderShardUnderWAL acquires a pager mutex with qmu held.
func badOrderShardUnderWAL(sh *shard, w *walState) {
	w.qmu.Lock()
	sh.mu.Lock() // want `lock order violation: acquiring pager mutex`
	sh.mu.Unlock()
	w.qmu.Unlock()
}

// badHeapUnderDir takes a shard heap lock with the route directory
// still locked.
func badHeapUnderDir(r *Relation, sh *relShard) {
	r.smu.RLock()
	sh.mu.RLock() // want `lock order violation: acquiring shard heap mutex`
	sh.mu.RUnlock()
	r.smu.RUnlock()
}

// badDirUnderHeap republishes a route without releasing the heap lock.
func badDirUnderHeap(r *Relation, sh *relShard) {
	sh.mu.Lock()
	r.smu.Lock() // want `lock order violation: acquiring shard directory mutex`
	r.smu.Unlock()
	sh.mu.Unlock()
}

// badSyncUnderDir fsyncs with the route directory locked.
func badSyncUnderDir(r *Relation, b backend) error {
	r.smu.Lock()
	defer r.smu.Unlock()
	return b.Sync() // want `backend Sync while holding shard directory mutex`
}

// badSendUnderShardHeap blocks on a channel send with a shard heap
// locked (the absorber handshake must happen outside it).
func badSendUnderShardHeap(sh *relShard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `blocking channel send while holding shard heap mutex`
	sh.mu.Unlock()
}

// releasedBeforeIO unlocks first: no violation.
func releasedBeforeIO(sh *shard, b backend) error {
	sh.mu.Lock()
	sh.mu.Unlock()
	return b.Sync()
}

// suppressedSync demonstrates the directive escape hatch.
func suppressedSync(sh *shard, b backend) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	//lint:ignore locksync fixture: single-writer bootstrap path, no readers exist yet
	return b.Sync()
}

// --- shard-split migration paths (DESIGN.md §16) -----------------------

// cleanSplitMigration is the split swap discipline: copy the record
// under the source heap lock, insert under the destination heap lock,
// then swap the route in its own smu critical section — no two of the
// three ever held together.
func cleanSplitMigration(r *Relation, src, dst *relShard) {
	src.mu.RLock()
	src.mu.RUnlock()
	dst.mu.Lock()
	dst.mu.Unlock()
	r.smu.Lock()
	r.smu.Unlock()
}

// badMigrateSwapUnderHeap swaps the route with the destination heap
// still locked — a reader chasing the fresh route would stall behind
// the whole migration.
func badMigrateSwapUnderHeap(r *Relation, dst *relShard) {
	dst.mu.Lock()
	r.smu.Lock() // want `lock order violation: acquiring shard directory mutex`
	r.smu.Unlock()
	dst.mu.Unlock()
}

// badMigrateCopyUnderDir reads the source heap with the route
// directory still locked.
func badMigrateCopyUnderDir(r *Relation, src *relShard) {
	r.smu.Lock()
	src.mu.RLock() // want `lock order violation: acquiring shard heap mutex`
	src.mu.RUnlock()
	r.smu.Unlock()
}

// badSplitCommitUnderDir makes the split destination durable with the
// route directory locked.
func badSplitCommitUnderDir(r *Relation, b backend) error {
	r.smu.RLock()
	defer r.smu.RUnlock()
	return b.Sync() // want `backend Sync while holding shard directory mutex`
}
