// Package linttest is a self-contained analysistest-style harness for
// the pictdblint analyzers. It loads fixture packages from
// testdata/src/<pkg>, typechecks them against the standard library
// (and against sibling fixture packages, so a fixture can declare a
// minimal "pager" and import it), runs an analyzer plus its Requires
// closure, and compares the diagnostics against `// want "regexp"`
// comments exactly like golang.org/x/tools/go/analysis/analysistest.
//
// The upstream analysistest depends on go/packages, which needs a
// module loader; this harness uses only the standard library
// typechecker so the suite runs hermetically (no network, no module
// resolution) — the fixture convention is identical, so fixtures
// port verbatim if the repo ever vendors the full x/tools.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named fixture package from dir/src/<pkg>, runs the
// analyzer, and checks diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			ld := &loader{
				root:     filepath.Join(dir, "src"),
				fset:     token.NewFileSet(),
				packages: make(map[string]*loaded),
			}
			l, err := ld.load(pkg)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", pkg, err)
			}
			diags := runAnalyzer(t, a, ld.fset, l)
			checkWants(t, ld.fset, l.files, diags)
		})
	}
}

// loaded is one typechecked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	root     string
	fset     *token.FileSet
	packages map[string]*loaded
}

// Import implements types.Importer: fixture-local packages win,
// everything else (the standard library) resolves through the
// compiler's export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if l, ok := ld.packages[path]; ok {
		return l.pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.root, path)); err == nil && fi.IsDir() {
		l, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return l.pkg, nil
	}
	return importer.Default().Import(path)
}

func (ld *loader) load(path string) (*loaded, error) {
	if l, ok := ld.packages[path]; ok {
		return l, nil
	}
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	l := &loaded{pkg: pkg, files: files, info: info}
	ld.packages[path] = l
	return l, nil
}

// runAnalyzer executes a and its Requires closure over the package,
// returning a's diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, l *loaded) []analysis.Diagnostic {
	t.Helper()
	results := make(map[*analysis.Analyzer]interface{})
	var diags []analysis.Diagnostic

	var run func(a *analysis.Analyzer, collect bool)
	run = func(a *analysis.Analyzer, collect bool) {
		if _, done := results[a]; done {
			return
		}
		for _, dep := range a.Requires {
			run(dep, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      l.files,
			Pkg:        l.pkg,
			TypesInfo:  l.info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	run(a, true)
	return diags
}

// wantRe matches the expectation comment: // want "rx" `rx` ...
// The payload must start with a quote so prose that merely mentions
// "want" (doc comments describing the convention) is not parsed.
var wantRe = regexp.MustCompile("//\\s*want\\s+([\"`].*)$")

// expectation is one // want pattern on one line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// splitPatterns tokenizes the payload of a want comment: a sequence of
// double- or back-quoted Go strings.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var q byte = s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want payload must be quoted patterns, got %q", pos, s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == q && (q == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated pattern in want comment: %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	byLine := make(map[[2]interface{}][]*expectation)
	key := func(file string, line int) [2]interface{} { return [2]interface{}{file, line} }
	for _, w := range wants {
		k := key(w.file, w.line)
		byLine[k] = append(byLine[k], w)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range byLine[key(pos.Filename, pos.Line)] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}
