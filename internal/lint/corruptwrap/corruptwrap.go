// Package corruptwrap enforces the typed-corruption-error discipline
// from PR 2: detection sites wrap the sentinels ErrChecksum,
// ErrCorrupt, ErrTruncated, ErrBadMagic with %w so errors.Is (and the
// public IsCorruption predicate) keep seeing them through every layer
// of rewrapping. It reports:
//
//   - a corruption sentinel passed to fmt.Errorf under a %v/%s/%q
//     (or any non-%w) verb — the sentinel's identity is flattened to
//     text and IsCorruption goes blind;
//   - any error value formatted with %v or %s in fmt.Errorf —
//     rewrapping an error that may carry a sentinel without %w severs
//     the chain just as surely (format err.Error() when flattening is
//     really intended);
//   - direct == / != comparisons against a sentinel: every corruption
//     error in this codebase is wrapped at birth, so only errors.Is
//     can match one.
package corruptwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/lint/directive"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "corruptwrap",
	Doc:      "corruption sentinels (ErrChecksum/ErrCorrupt/ErrTruncated/ErrBadMagic) must be wrapped with %w and matched with errors.Is",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var includeTests = false

func init() {
	Analyzer.Flags.BoolVar(&includeTests, "tests", false, "also check _test.go files")
}

// sentinelNames are the typed corruption sentinels of the engine
// (pager.ErrChecksum/ErrTruncated/ErrBadMagic, storage.ErrCorrupt,
// rtree.ErrCorrupt, pictdb's re-export).
var sentinelNames = map[string]bool{
	"ErrChecksum":  true,
	"ErrCorrupt":   true,
	"ErrTruncated": true,
	"ErrBadMagic":  true,
}

// isSentinel reports whether e denotes one of the corruption
// sentinels: a package-level error variable with a sentinel name,
// referenced directly or through a package qualifier.
func isSentinel(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch x := lintutil.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	if !sentinelNames[id.Name] {
		return false
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() == nil {
		return false
	}
	return lintutil.IsErrorType(v.Type()) && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass = directive.Apply(pass, false)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	info := pass.TypesInfo

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		if !includeTests && lintutil.IsTestFile(pass.Fset.Position(n.Pos()).Filename) {
			return
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			checkErrorf(pass, info, x)
		case *ast.BinaryExpr:
			checkComparison(pass, info, x)
		}
	})
	return nil, nil
}

// checkErrorf matches fmt.Errorf verbs to their args and flags
// sentinels (and any error value) formatted with a chain-severing
// verb.
func checkErrorf(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	if !lintutil.PkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constString(info, call.Args[0])
	if !ok {
		return
	}
	verbs := parseVerbs(format)
	args := call.Args[1:]
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		arg := args[i]
		if v == 'w' {
			continue
		}
		if isSentinel(info, arg) {
			pass.Reportf(arg.Pos(), "corruption sentinel %s formatted with %%%c: wrap it with %%w so errors.Is/IsCorruption still match (PR 2 discipline)",
				exprName(arg), v)
			continue
		}
		if (v == 'v' || v == 's') && lintutil.IsErrorType(info.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "error formatted with %%%c in fmt.Errorf: if it carries a corruption sentinel the chain is severed; wrap with %%w (or format err.Error() if flattening is intended)", v)
		}
	}
}

// checkComparison flags err == ErrX / err != ErrX on sentinels.
func checkComparison(pass *analysis.Pass, info *types.Info, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, side := range [...]ast.Expr{bin.X, bin.Y} {
		if isSentinel(info, side) {
			other := bin.X
			if side == bin.X {
				other = bin.Y
			}
			// Comparing the sentinel against nil (or assigning) is fine;
			// comparing an error value against it is the bug.
			if lintutil.IsErrorType(info.TypeOf(other)) {
				pass.Reportf(bin.Pos(), "%s compared with %s: corruption errors are wrapped at birth, use errors.Is (or IsCorruption)",
					exprName(side), bin.Op)
			}
			return
		}
	}
}

func exprName(e ast.Expr) string {
	switch x := lintutil.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if p, ok := x.X.(*ast.Ident); ok {
			return p.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return "sentinel"
}

// constString evaluates e as a constant string.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs extracts the verb letters of a printf format string in
// argument order. Flags, width, precision, and explicit argument
// indexes are skipped well enough for lint purposes ([n] resets are
// not modeled; such formats are vanishingly rare here).
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// skip flags, width, precision, index digits
		for i < len(format) {
			c := format[i]
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == '#' || c == ' ' || c == '*' || c == '[' || c == ']' {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
