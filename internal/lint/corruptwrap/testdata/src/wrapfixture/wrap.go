// Fixture for the corruptwrap analyzer: corruption sentinels must be
// wrapped with %w and matched with errors.Is. Sentinels are recognized
// by name as package-level error variables, so this package declares
// its own (exactly how pager/storage/rtree declare theirs).
package wrapfixture

import (
	"errors"
	"fmt"
)

var (
	ErrChecksum  = errors.New("page checksum mismatch")
	ErrCorrupt   = errors.New("structural corruption")
	ErrTruncated = errors.New("file truncated")
	ErrBadMagic  = errors.New("bad magic")

	// ErrOther is not a corruption sentinel: no diagnostics for it.
	ErrOther = errors.New("other")
)

// --- clean idioms ------------------------------------------------------

// cleanWrap wraps the sentinel with %w: errors.Is keeps matching.
func cleanWrap(page int) error {
	return fmt.Errorf("page %d: %w", page, ErrChecksum)
}

// cleanIs matches through the chain.
func cleanIs(err error) bool {
	return errors.Is(err, ErrCorrupt)
}

// cleanNilCheck compares an error against nil, not a sentinel.
func cleanNilCheck(err error) bool {
	return err != nil
}

// cleanFlattened explicitly flattens with err.Error(): the intent is
// visible, no diagnostic.
func cleanFlattened(err error) string {
	return fmt.Sprintf("warning: %v", err) // Sprintf is not Errorf: out of scope
}

// cleanErrorString formats the string form inside Errorf.
func cleanErrorString(page int, err error) error {
	return fmt.Errorf("page %d failed (%s); continuing", page, err.Error())
}

// --- violations --------------------------------------------------------

// badVerbV flattens the sentinel to text.
func badVerbV(page int) error {
	return fmt.Errorf("page %d: %v", page, ErrChecksum) // want `corruption sentinel ErrChecksum formatted with %v`
}

// badVerbS severs the chain with %s.
func badVerbS() error {
	return fmt.Errorf("load: %s", ErrTruncated) // want `corruption sentinel ErrTruncated formatted with %s`
}

// badRewrap formats an arbitrary error with %v: if it carries a
// sentinel the chain is severed.
func badRewrap(err error) error {
	return fmt.Errorf("while scanning: %v", err) // want `error formatted with %v in fmt.Errorf`
}

// badCompareEq matches by identity: wrapped sentinels never compare
// equal.
func badCompareEq(err error) bool {
	return err == ErrBadMagic // want `ErrBadMagic compared with ==`
}

// badCompareNeq is the inverted form.
func badCompareNeq(err error) bool {
	return err != ErrCorrupt // want `ErrCorrupt compared with !=`
}

// badMidFormat: the sentinel is found under the right verb even with
// trailing text after it.
func badMidFormat() error {
	return fmt.Errorf("verify: %v (data unsafe)", ErrChecksum) // want `corruption sentinel ErrChecksum formatted with %v`
}

// suppressed demonstrates the directive escape hatch.
func suppressed(err error) bool {
	//lint:ignore corruptwrap fixture: comparing against the just-created local, not a wrapped chain
	return err == ErrChecksum
}

// otherSentinelUnflagged: ErrOther is not in the sentinel set and an
// equality check against it is allowed (though errors.Is is still
// better style).
func otherSentinelUnflagged(err error) bool {
	return err == ErrOther
}
