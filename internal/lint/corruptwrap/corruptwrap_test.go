package corruptwrap_test

import (
	"testing"

	"repro/internal/lint/corruptwrap"
	"repro/internal/lint/linttest"
)

func TestCorruptWrap(t *testing.T) {
	linttest.Run(t, "testdata", corruptwrap.Analyzer, "wrapfixture")
}
