package lint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRegistry pins the analyzer roster: the Makefile, CI, and
// DESIGN.md §14 all promise exactly these four run on every build.
func TestRegistry(t *testing.T) {
	want := []string{"pinlifetime", "locksync", "corruptwrap", "benchguard"}
	as := lint.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}

// TestTreeIsLintClean builds the pictdblint multichecker and drives it
// over the whole module through `go vet -vettool`, exactly as `make
// lint` does. A clean tree is the regression test for every invariant
// the suite encodes — and for the driver's vet integration itself.
func TestTreeIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "pictdblint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/pictdblint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building pictdblint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("tree is not lint-clean: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}
