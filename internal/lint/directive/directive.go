// Package directive implements the suppression protocol shared by all
// pictdblint analyzers.
//
// A diagnostic is suppressed by a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line or on the line immediately above
// it. The reason is mandatory: an ignore that does not say why it is
// safe is itself a lint violation (reported by the directive checker
// wired into every analyzer), so suppressions stay auditable.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

const prefix = "//lint:ignore"

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	analyzers map[string]bool // empty+all=true means "all analyzers"
	all       bool
	reason    string
	pos       token.Pos
}

// Index holds the parsed directives of one package, keyed by file and
// line, ready for O(1) lookup at Report time.
type Index struct {
	fset    *token.FileSet
	byLine  map[string]map[int]*ignore // filename -> line -> directive
	invalid []*ignore                  // malformed: missing analyzer list or reason
}

// Build parses every //lint:ignore directive in the pass's files.
func Build(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, byLine: make(map[string]map[int]*ignore)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				ig := parse(rest)
				ig.pos = c.Pos()
				pos := fset.Position(c.Pos())
				if ig.reason == "" || (len(ig.analyzers) == 0 && !ig.all) {
					ix.invalid = append(ix.invalid, ig)
					continue
				}
				m := ix.byLine[pos.Filename]
				if m == nil {
					m = make(map[int]*ignore)
					ix.byLine[pos.Filename] = m
				}
				// The directive covers its own line (trailing comment)
				// and the next line (comment above the flagged code).
				m[pos.Line] = ig
				m[pos.Line+1] = ig
			}
		}
	}
	return ix
}

func parse(rest string) *ignore {
	ig := &ignore{analyzers: make(map[string]bool)}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ig
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name == "*" {
			ig.all = true
		} else if name != "" {
			ig.analyzers[name] = true
		}
	}
	ig.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	return ig
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by an ignore directive.
func (ix *Index) Suppressed(name string, pos token.Pos) bool {
	p := ix.fset.Position(pos)
	ig, ok := ix.byLine[p.Filename][p.Line]
	if !ok {
		return false
	}
	return ig.all || ig.analyzers[name]
}

// Apply wraps pass.Report so diagnostics covered by a valid ignore
// directive are dropped, and reports every malformed directive (an
// ignore without an analyzer list or reason) exactly once per
// analyzer run would be noisy, so only the first analyzer in the
// suite surfaces them — callers pass reportInvalid accordingly.
func Apply(pass *analysis.Pass, reportInvalid bool) *analysis.Pass {
	ix := Build(pass.Fset, pass.Files)
	wrapped := *pass
	orig := pass.Report
	wrapped.Report = func(d analysis.Diagnostic) {
		if ix.Suppressed(pass.Analyzer.Name, d.Pos) {
			return
		}
		orig(d)
	}
	if reportInvalid {
		for _, ig := range ix.invalid {
			orig(analysis.Diagnostic{
				Pos:     ig.pos,
				Message: "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason> (the reason is mandatory)",
			})
		}
	}
	return &wrapped
}
