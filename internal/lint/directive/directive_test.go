package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const src = `package p

func f() {
	//lint:ignore pinlifetime the pin is handed to the caller via the iterator
	a()
	b() //lint:ignore locksync,corruptwrap bootstrap path, single-threaded
	//lint:ignore * everything is fine here, trust me
	c()
	//lint:ignore benchguard
	d()
	//lint:ignore
	e()
}

func a() {}
func b() {}
func c() {}
func d() {}
func e() {}
`

func parseSrc(t *testing.T) (*token.FileSet, *Index) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, Build(fset, []*ast.File{f})
}

func TestSuppressed(t *testing.T) {
	fset, ix := parseSrc(t)
	pos := func(line int) token.Pos {
		return fset.File(token.Pos(1)).LineStart(line)
	}
	cases := []struct {
		name string
		line int
		want bool
	}{
		{"pinlifetime", 5, true},   // directive on line above
		{"locksync", 5, false},     // names another analyzer
		{"locksync", 6, true},      // trailing directive, first listed
		{"corruptwrap", 6, true},   // trailing directive, second listed
		{"pinlifetime", 6, false},  // not listed
		{"benchguard", 8, true},    // wildcard covers every analyzer
		{"benchguard", 10, false},  // malformed: missing reason
		{"pinlifetime", 12, false}, // malformed: no analyzer, no reason
		{"pinlifetime", 15, false}, // no directive at all
	}
	for _, c := range cases {
		if got := ix.Suppressed(c.name, pos(c.line)); got != c.want {
			t.Errorf("Suppressed(%q, line %d) = %v, want %v", c.name, c.line, got, c.want)
		}
	}
}

func TestApplyReportsInvalidOnce(t *testing.T) {
	fset, _ := parseSrc(t)
	f, err := parser.ParseFile(fset, "q.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: &analysis.Analyzer{Name: "pinlifetime"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d analysis.Diagnostic) { got = append(got, d) },
	}
	Apply(pass, true)
	if len(got) != 2 {
		t.Fatalf("reportInvalid=true produced %d diagnostics, want 2 (the two malformed directives): %v", len(got), got)
	}
	got = nil
	Apply(pass, false)
	if len(got) != 0 {
		t.Fatalf("reportInvalid=false produced %d diagnostics, want 0", len(got))
	}
}
