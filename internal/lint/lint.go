// Package lint assembles pictdblint, the engine's own go/analysis
// suite. Each analyzer machine-checks one safety invariant that the
// paper's direct-search advantage rests on (see DESIGN.md §14):
//
//	pinlifetime — DESIGN.md §10 pin lifetime rules
//	locksync    — DESIGN.md §13 WAL/pool locking protocol
//	corruptwrap — PR 2 typed-corruption-error discipline
//	benchguard  — reproducible, error-checked benchmark tooling
//
// False positives are suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or immediately above) the flagged line; the reason is mandatory
// and malformed directives are themselves diagnosed.
package lint

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/lint/benchguard"
	"repro/internal/lint/corruptwrap"
	"repro/internal/lint/locksync"
	"repro/internal/lint/pinlifetime"
)

// Analyzers returns the full pictdblint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		pinlifetime.Analyzer,
		locksync.Analyzer,
		corruptwrap.Analyzer,
		benchguard.Analyzer,
	}
}
