// Package pinlifetime enforces the zero-copy pin lifetime rules of
// DESIGN.md §10 at compile time:
//
//   - Every pager.Pager.Pin view and Pager.Fetch page must be released
//     (View.Unpin / Pager.Unpin) on every path out of the acquiring
//     function, including early error returns — or handed off
//     explicitly (returned, stored, passed along), which transfers the
//     obligation to the new owner.
//   - A View's bytes (View.Data) must not outlive the view: returning
//     them, storing them into a field, or sending them over a channel
//     escapes memory that Unpin (or a remap) may invalidate.
//   - Discarding the result of Pin/Fetch leaks the pin permanently.
//
// The check is intraprocedural over the control-flow graph of each
// function: paths on which the acquisition itself failed (guarded by
// the returned error, while that error variable is still unclobbered)
// are exempt, since a failed Pin returns nothing to release. Paths
// that end in panic or a no-return call (os.Exit, log.Fatal) are
// likewise exempt — unwinding is the crash path, not the leak path.
package pinlifetime

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"repro/internal/lint/directive"
	"repro/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name:     "pinlifetime",
	Doc:      "check that pager pins (Pin views, Fetch pages) are released on all paths and view bytes do not escape the pin",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// IncludeTests is a test hook: fixtures run with test files included.
var includeTests = false

func init() {
	Analyzer.Flags.BoolVar(&includeTests, "tests", false, "also check _test.go files")
}

// resource is one tracked acquisition.
type resource struct {
	assign  *ast.AssignStmt // the acquiring statement
	call    *ast.CallExpr   // the Pin/Fetch call
	obj     types.Object    // the view / page variable
	errObj  types.Object    // the error result variable (nil if blank)
	method  string          // "Pin" or "Fetch"
	release string          // human name of the releasing call
}

func run(pass *analysis.Pass) (interface{}, error) {
	pass = directive.Apply(pass, true)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			// Function literals are visited by Preorder as well; their
			// bodies are analyzed independently (a pin acquired in a
			// closure must be released by the closure).
			body = fn.Body
		}
		if body == nil {
			return
		}
		if !includeTests && lintutil.IsTestFile(pass.Fset.Position(n.Pos()).Filename) {
			return
		}
		checkFunc(pass, body)
	})
	return nil, nil
}

// isPinCall reports whether call is Pager.Pin; isFetchCall likewise.
func acquisitionMethod(info *types.Info, call *ast.CallExpr) string {
	for _, m := range [...]string{"Pin", "Fetch"} {
		if _, recvType, ok := lintutil.MethodCall(info, call, m); ok &&
			lintutil.IsNamed(recvType, "pager", "Pager") {
			return m
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Gather acquisitions in this body, excluding those inside nested
	// function literals (each literal is checked on its own visit).
	var resources []*resource
	skipNested := func(n ast.Node) bool {
		_, lit := n.(*ast.FuncLit)
		return !lit
	}
	inspectShallow(body, skipNested, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			m := acquisitionMethod(info, call)
			if m == "" {
				return
			}
			if len(st.Lhs) == 0 {
				return
			}
			res := &resource{assign: st, call: call, method: m}
			if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				res.obj = lintutil.ObjOf(info, id)
			}
			if len(st.Lhs) > 1 {
				if id, ok := st.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					res.errObj = lintutil.ObjOf(info, id)
				}
			}
			if res.obj == nil {
				pass.Reportf(call.Pos(), "result of %s discarded: the pin can never be released", m)
				return
			}
			if m == "Pin" {
				res.release = "View.Unpin"
			} else {
				res.release = "Pager.Unpin"
			}
			resources = append(resources, res)
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if m := acquisitionMethod(info, call); m != "" {
					pass.Reportf(call.Pos(), "result of %s discarded: the pin can never be released", m)
				}
			}
		}
	})

	if len(resources) > 0 {
		g := cfg.New(body, mayReturn(info))
		// Map each acquisition assign node to its (block, index).
		type loc struct {
			b   *cfg.Block
			idx int
		}
		at := make(map[*ast.AssignStmt]loc)
		for _, b := range g.Blocks {
			for i, n := range b.Nodes {
				if a, ok := n.(*ast.AssignStmt); ok {
					at[a] = loc{b, i}
				}
			}
		}
		for _, res := range resources {
			l, ok := at[res.assign]
			if !ok {
				continue // dead code
			}
			walkPaths(pass, info, res, body, l.b, l.idx+1)
		}
	}

	checkDataEscape(pass, info, body)
}

// inspectShallow walks n but does not descend into nodes rejected by
// descend.
func inspectShallow(n ast.Node, descend func(ast.Node) bool, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m != n && !descend(m) {
			return false
		}
		f(m)
		return true
	})
}

// mayReturn is the CFG callback deciding whether a call can return.
func mayReturn(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		switch fun := lintutil.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name != "panic"
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
				return false
			}
		}
		return true
	}
}

// event classifies what one CFG node does to a tracked resource.
type event int

const (
	evNone event = iota
	evRelease
	evEscape
)

// walkPaths explores every CFG path from the acquisition forward and
// reports paths that reach a return (or fall off the function end)
// without releasing or escaping the resource. The diagnostic is
// anchored at the acquisition so a //lint:ignore on the Pin/Fetch line
// suppresses it (the leaking exit is named in the message instead).
func walkPaths(pass *analysis.Pass, info *types.Info, res *resource, body *ast.BlockStmt, start *cfg.Block, startIdx int) {
	type stateKey struct {
		b        *cfg.Block
		errValid bool
	}
	seen := make(map[stateKey]bool)
	reported := false

	report := func(pos token.Pos, where string) {
		if reported {
			return // one diagnostic per acquisition is enough
		}
		reported = true
		rp := pass.Fset.Position(pos)
		pass.Reportf(res.assign.Pos(), "%s is not released on %s ending at %s:%d (missing %s on that path)",
			res.method, where, shortFile(rp.Filename), rp.Line, res.release)
	}

	var visit func(b *cfg.Block, idx int, errValid bool)
	visit = func(b *cfg.Block, idx int, errValid bool) {
		if reported {
			return
		}
		if idx == 0 {
			k := stateKey{b, errValid}
			if seen[k] {
				return
			}
			seen[k] = true
		}
		for i := idx; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			switch classifyNode(info, res, n) {
			case evRelease, evEscape:
				return // obligation met or transferred on this path
			}
			if res.errObj != nil && reassigns(info, n, res.errObj) {
				errValid = false
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				// go/cfg synthesizes an implicit return at the closing
				// brace for functions that fall off the end.
				if ret.Pos() >= body.Rbrace {
					report(ret.Pos(), "the fall-through path")
				} else {
					report(ret.Pos(), "a return path")
				}
				return
			}
		}
		if len(b.Succs) == 0 {
			// Fell off the end of the function (or a no-return call).
			if terminatesAbnormally(info, b) {
				return
			}
			report(body.Rbrace, "the fall-through path")
			return
		}
		// Conditional on the acquisition's own error: the branch where
		// the error is non-nil carries no resource (Pin/Fetch failed),
		// as long as the error variable still holds that result.
		if len(b.Succs) == 2 && errValid && res.errObj != nil {
			if skip, ok := errBranch(info, b, res.errObj); ok {
				for si, s := range b.Succs {
					if si != skip {
						visit(s, 0, errValid)
					}
				}
				return
			}
		}
		for _, s := range b.Succs {
			visit(s, 0, errValid)
		}
	}
	visit(start, startIdx, res.errObj != nil)
}

// errBranch inspects a two-successor block whose last node is a
// comparison of the tracked error against nil and returns the index
// of the successor taken when the error is non-nil.
func errBranch(info *types.Info, b *cfg.Block, errObj types.Object) (skip int, ok bool) {
	if len(b.Nodes) == 0 {
		return 0, false
	}
	bin, isBin := lintutil.Unparen(asExpr(b.Nodes[len(b.Nodes)-1])).(*ast.BinaryExpr)
	if !isBin {
		return 0, false
	}
	var other ast.Expr
	switch {
	case lintutil.ObjOf(info, bin.X) == errObj:
		other = bin.Y
	case lintutil.ObjOf(info, bin.Y) == errObj:
		other = bin.X
	default:
		return 0, false
	}
	if id, isId := lintutil.Unparen(other).(*ast.Ident); !isId || id.Name != "nil" {
		return 0, false
	}
	switch bin.Op {
	case token.NEQ: // err != nil: true branch (Succs[0]) is the failure path
		return 0, true
	case token.EQL: // err == nil: false branch (Succs[1]) is the failure path
		return 1, true
	}
	return 0, false
}

func asExpr(n ast.Node) ast.Expr {
	if e, ok := n.(ast.Expr); ok {
		return e
	}
	return nil
}

// terminatesAbnormally reports whether the block's last node is a call
// that never returns (panic, os.Exit, log.Fatal, …).
func terminatesAbnormally(info *types.Info, b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	last := b.Nodes[len(b.Nodes)-1]
	abnormal := false
	ast.Inspect(last, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !mayReturn(info)(call) {
			abnormal = true
		}
		return !abnormal
	})
	return abnormal
}

// reassigns reports whether node n assigns a new value to obj.
func reassigns(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if a, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range a.Lhs {
				if lintutil.ObjOf(info, lhs) == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// classifyNode decides what node n does with the resource: releases
// it, escapes it (ownership transfer), or neither. Uses of the
// resource as the receiver of its own methods (v.Data(), pg.MarkDirty)
// are neutral; any other value use is a conservative escape so the
// analyzer never second-guesses an explicit hand-off.
func classifyNode(info *types.Info, res *resource, n ast.Node) event {
	ev := evNone
	parents := parentMap(n)
	ast.Inspect(n, func(m ast.Node) bool {
		if ev == evRelease {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if isRelease(info, res, call) {
				ev = evRelease
				return false
			}
		}
		id, ok := m.(*ast.Ident)
		if !ok || lintutil.ObjOf(info, id) != res.obj {
			return true
		}
		switch use := identUse(parents, id); use {
		case useReceiver, useLHS:
			// method receiver or plain reassignment target: neutral
		case useReleaseArg:
			// handled by isRelease above
		default:
			if ev == evNone {
				ev = evEscape
			}
		}
		return true
	})
	return ev
}

// isRelease matches v.Unpin() (views) and p.Unpin(pg) (pages).
func isRelease(info *types.Info, res *resource, call *ast.CallExpr) bool {
	recv, recvType, ok := lintutil.MethodCall(info, call, "Unpin")
	if !ok {
		return false
	}
	switch res.method {
	case "Pin":
		return lintutil.IsNamed(recvType, "pager", "View") && lintutil.ObjOf(info, recv) == res.obj
	case "Fetch":
		return lintutil.IsNamed(recvType, "pager", "Pager") &&
			len(call.Args) == 1 && lintutil.ObjOf(info, call.Args[0]) == res.obj
	}
	return false
}

type use int

const (
	useValue use = iota
	useReceiver
	useLHS
	useReleaseArg
)

// parentMap builds child->parent links for the subtree rooted at n.
func parentMap(n ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[m] = stack[len(stack)-1]
		}
		stack = append(stack, m)
		return true
	})
	return parents
}

// identUse classifies how the identifier id is used, given parent links.
func identUse(parents map[ast.Node]ast.Node, id *ast.Ident) use {
	p := parents[id]
	if sel, ok := p.(*ast.SelectorExpr); ok && sel.X == id {
		// Any member access — v.Method(...), pg.ID, pg.Data[:] — reads
		// through the pin without moving the pin itself; the release
		// obligation stays put. Only using the identifier directly as a
		// value (call argument, RHS, return, send) is a hand-off.
		return useReceiver
	}
	if a, ok := p.(*ast.AssignStmt); ok {
		for _, l := range a.Lhs {
			if l == id {
				return useLHS
			}
		}
	}
	return useValue
}

// --- View.Data escape ---------------------------------------------------

// checkDataEscape flags view bytes outliving their pin: returning the
// raw Data() slice, assigning it to a field, or sending it on a
// channel. Derived copies (append, copy, decode) are fine — only the
// aliasing slice itself is tracked.
func checkDataEscape(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	// Objects bound directly to a v.Data() result.
	dataObjs := make(map[types.Object]token.Pos)
	isDataCall := func(e ast.Expr) bool {
		call, ok := lintutil.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		_, recvType, ok := lintutil.MethodCall(info, call, "Data")
		return ok && lintutil.IsNamed(recvType, "pager", "View")
	}
	ast.Inspect(body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok || len(a.Lhs) != len(a.Rhs) {
			return true
		}
		for i := range a.Rhs {
			if isDataCall(a.Rhs[i]) {
				if obj := lintutil.ObjOf(info, a.Lhs[i]); obj != nil {
					dataObjs[obj] = a.Pos()
				}
			}
		}
		return true
	})
	escapesData := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		if isDataCall(e) {
			return true
		}
		if obj := lintutil.ObjOf(info, e); obj != nil {
			_, ok := dataObjs[obj]
			return ok
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if escapesData(r) {
					pass.Reportf(r.Pos(), "View.Data bytes escape via return: the slice dies with the view's Unpin (copy it instead)")
				}
			}
		case *ast.SendStmt:
			if escapesData(st.Value) {
				pass.Reportf(st.Value.Pos(), "View.Data bytes escape via channel send: the slice dies with the view's Unpin (copy it instead)")
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i < len(st.Rhs) && escapesData(st.Rhs[i]) {
					if _, isSel := lintutil.Unparen(lhs).(*ast.SelectorExpr); isSel {
						pass.Reportf(st.Rhs[i].Pos(), "View.Data bytes escape into a struct field: the slice dies with the view's Unpin (copy it instead)")
					}
					if _, isIdx := lintutil.Unparen(lhs).(*ast.IndexExpr); isIdx {
						pass.Reportf(st.Rhs[i].Pos(), "View.Data bytes escape into a container: the slice dies with the view's Unpin (copy it instead)")
					}
				}
			}
		}
		return true
	})
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
