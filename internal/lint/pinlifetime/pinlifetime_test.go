package pinlifetime_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/pinlifetime"
)

func TestPinLifetime(t *testing.T) {
	linttest.Run(t, "testdata", pinlifetime.Analyzer, "pinfixture")
}
