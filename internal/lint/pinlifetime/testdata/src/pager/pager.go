// Package pager is a minimal stand-in for repro/internal/pager: the
// pinlifetime analyzer matches types structurally (package base name
// "pager", type names Pager/View/Page, method names Pin/Fetch/Unpin/
// Data), so fixtures exercise exactly the matching used on the real
// tree.
package pager

type PageID uint32

const PageSize = 4096

type Page struct {
	ID   PageID
	Data [PageSize]byte
}

type View struct{ data []byte }

func (v *View) ID() PageID   { return 0 }
func (v *View) Data() []byte { return v.data }
func (v *View) Unpin()       {}

type Pager struct{}

func (p *Pager) Pin(id PageID) (View, error)    { return View{}, nil }
func (p *Pager) Fetch(id PageID) (*Page, error) { return &Page{ID: id}, nil }
func (p *Pager) Unpin(pg *Page)                 {}
