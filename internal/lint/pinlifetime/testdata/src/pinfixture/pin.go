// Fixture for the pinlifetime analyzer: every // want comment marks a
// diagnostic the analyzer must produce; clean functions document the
// sanctioned idioms.
package pinfixture

import (
	"errors"

	"pager"
)

var errBoom = errors.New("boom")

// --- clean idioms ------------------------------------------------------

// cleanDefer releases through defer: every path is covered.
func cleanDefer(p *pager.Pager) error {
	v, err := p.Pin(1)
	if err != nil {
		return err
	}
	defer v.Unpin()
	if len(v.Data()) == 0 {
		return errBoom
	}
	return nil
}

// cleanExplicit unpins on each path by hand.
func cleanExplicit(p *pager.Pager) (int, error) {
	v, err := p.Pin(1)
	if err != nil {
		return 0, err
	}
	n := len(v.Data())
	if n == 0 {
		v.Unpin()
		return 0, errBoom
	}
	v.Unpin()
	return n, nil
}

// cleanLoop pins and releases once per iteration.
func cleanLoop(p *pager.Pager, ids []pager.PageID) int {
	total := 0
	for _, id := range ids {
		v, err := p.Pin(id)
		if err != nil {
			continue
		}
		total += len(v.Data())
		v.Unpin()
	}
	return total
}

// cleanFetch releases a fetched page through Pager.Unpin.
func cleanFetch(p *pager.Pager) error {
	pg, err := p.Fetch(2)
	if err != nil {
		return err
	}
	use(pg.Data[:])
	p.Unpin(pg)
	return nil
}

// cleanHandoff returns the page: ownership transfers to the caller.
func cleanHandoff(p *pager.Pager) (*pager.Page, error) {
	pg, err := p.Fetch(2)
	if err != nil {
		return nil, err
	}
	return pg, nil
}

// cleanDeferClosure releases via a deferred closure.
func cleanDeferClosure(p *pager.Pager) error {
	v, err := p.Pin(1)
	if err != nil {
		return err
	}
	defer func() { v.Unpin() }()
	return validate(v.Data())
}

// cleanErrEqNil uses the inverted guard.
func cleanErrEqNil(p *pager.Pager) int {
	v, err := p.Pin(1)
	if err == nil {
		n := len(v.Data())
		v.Unpin()
		return n
	}
	return 0
}

// cleanPanicPath may panic while pinned: unwinding is the crash path,
// not a leak.
func cleanPanicPath(p *pager.Pager) {
	v, err := p.Pin(1)
	if err != nil {
		panic(err)
	}
	if len(v.Data()) == 0 {
		panic("empty page")
	}
	v.Unpin()
}

// cleanPerShard mirrors the sharded verification fan-out: one pager per
// shard file, each shard's pin released before the next shard's is
// taken.
func cleanPerShard(shards []*pager.Pager) int {
	total := 0
	for _, p := range shards {
		v, err := p.Pin(1)
		if err != nil {
			continue
		}
		total += len(v.Data())
		v.Unpin()
	}
	return total
}

// cleanPerShardWorker: a pin acquired inside a per-shard closure is the
// closure's own obligation, released before it returns.
func cleanPerShardWorker(shards []*pager.Pager) {
	for _, p := range shards {
		p := p
		func() {
			v, err := p.Pin(1)
			if err != nil {
				return
			}
			defer v.Unpin()
			use(v.Data())
		}()
	}
}

// --- violations --------------------------------------------------------

// leakPerShardEarlyBreak leaks the current shard's pin when the scan
// bails out of the fan-out loop early.
func leakPerShardEarlyBreak(shards []*pager.Pager) error {
	for _, p := range shards {
		v, err := p.Pin(1) // want `Pin is not released on a return path ending at pin.go:\d+`
		if err != nil {
			return err
		}
		if len(v.Data()) == 0 {
			return errBoom
		}
		v.Unpin()
	}
	return nil
}

// leakPerShardWorker: the per-shard closure returns without unpinning.
func leakPerShardWorker(shards []*pager.Pager) {
	for _, p := range shards {
		p := p
		func() {
			v, err := p.Pin(1) // want `Pin is not released on the fall-through path ending at pin.go:\d+`
			if err != nil {
				return
			}
			use(v.Data())
		}()
	}
}

// leakOnErrorReturn forgets the view on the validation error path.
func leakOnErrorReturn(p *pager.Pager) error {
	v, err := p.Pin(1) // want `Pin is not released on a return path ending at pin.go:\d+`
	if err != nil {
		return err
	}
	if len(v.Data()) == 0 {
		return errBoom
	}
	v.Unpin()
	return nil
}

// leakFallthrough never unpins at all.
func leakFallthrough(p *pager.Pager) {
	v, err := p.Pin(1) // want `Pin is not released on the fall-through path ending at pin.go:\d+`
	if err != nil {
		return
	}
	use(v.Data())
}

// leakFetch forgets Pager.Unpin on the early return.
func leakFetch(p *pager.Pager) error {
	pg, err := p.Fetch(2) // want `Fetch is not released on a return path ending at pin.go:\d+`
	if err != nil {
		return err
	}
	if pg.ID == 0 {
		return errBoom
	}
	p.Unpin(pg)
	return nil
}

// leakDiscarded throws the view away unreleasably.
func leakDiscarded(p *pager.Pager) {
	_, _ = p.Pin(1) // want `result of Pin discarded`
}

// leakExprStmt calls Pin for effect only.
func leakExprStmt(p *pager.Pager) {
	p.Fetch(3) // want `result of Fetch discarded`
}

// leakStaleErrGuard reuses err for another operation before the guard:
// the branch no longer proves the Pin failed, so the pin leaks there.
func leakStaleErrGuard(p *pager.Pager) error {
	v, err := p.Pin(1) // want `Pin is not released on a return path ending at pin.go:\d+`
	if err != nil {
		return err
	}
	err = validate(nil)
	if err != nil {
		return err
	}
	v.Unpin()
	return nil
}

// suppressed demonstrates the escape hatch: the reason is mandatory.
func suppressed(p *pager.Pager) {
	//lint:ignore pinlifetime fixture: pin intentionally leaked to test the directive
	v, err := p.Pin(1)
	if err != nil {
		return
	}
	use(v.Data())
}

// --- View.Data escapes -------------------------------------------------

// escapeReturnData returns the raw mapped bytes.
func escapeReturnData(p *pager.Pager) []byte {
	v, err := p.Pin(1)
	if err != nil {
		return nil
	}
	d := v.Data()
	v.Unpin()
	return d // want `View.Data bytes escape via return`
}

// escapeFieldData parks view bytes in a struct that outlives the pin.
type holder struct{ b []byte }

func escapeFieldData(p *pager.Pager, h *holder) {
	v, err := p.Pin(1)
	if err != nil {
		return
	}
	h.b = v.Data() // want `View.Data bytes escape into a struct field`
	v.Unpin()
}

// escapeSendData ships the aliasing slice to another goroutine.
func escapeSendData(p *pager.Pager, ch chan []byte) {
	v, err := p.Pin(1)
	if err != nil {
		return
	}
	d := v.Data()
	ch <- d // want `View.Data bytes escape via channel send`
	v.Unpin()
}

// copyData is the sanctioned pattern: copy under the pin.
func copyData(p *pager.Pager) []byte {
	v, err := p.Pin(1)
	if err != nil {
		return nil
	}
	out := append([]byte(nil), v.Data()...)
	v.Unpin()
	return out
}

func use([]byte)            {}
func validate([]byte) error { return nil }
