package picture

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Object wire format, used by the database catalog to persist
// pictures:
//
//	8 bytes  object id
//	1 byte   kind
//	uvarint  label length + bytes
//	uvarint  vertex count, then per vertex 2 x float64
//
// Points store one vertex, segments two, regions all polygon vertices.

// EncodeObject serializes o.
func EncodeObject(o Object) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, uint64(o.ID))
	buf = append(buf, byte(o.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(o.Label)))
	buf = append(buf, o.Label...)
	var pts []geom.Point
	switch o.Kind {
	case KindPoint:
		pts = []geom.Point{o.Point}
	case KindSegment:
		pts = []geom.Point{o.Segment.A, o.Segment.B}
	default:
		pts = o.Region.Vertices
	}
	buf = binary.AppendUvarint(buf, uint64(len(pts)))
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
	}
	return buf
}

// DecodeObject parses a record produced by EncodeObject.
func DecodeObject(rec []byte) (Object, error) {
	if len(rec) < 9 {
		return Object{}, fmt.Errorf("picture: truncated object record")
	}
	var o Object
	o.ID = ObjectID(binary.LittleEndian.Uint64(rec))
	o.Kind = Kind(rec[8])
	pos := 9
	l, w := binary.Uvarint(rec[pos:])
	if w <= 0 || pos+w+int(l) > len(rec) {
		return Object{}, fmt.Errorf("picture: truncated object label")
	}
	pos += w
	o.Label = string(rec[pos : pos+int(l)])
	pos += int(l)
	n, w := binary.Uvarint(rec[pos:])
	if w <= 0 || pos+w+int(n)*16 > len(rec) {
		return Object{}, fmt.Errorf("picture: truncated object geometry")
	}
	pos += w
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(rec[pos:]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(rec[pos+8:]))
		pos += 16
	}
	switch o.Kind {
	case KindPoint:
		if len(pts) != 1 {
			return Object{}, fmt.Errorf("picture: point object with %d vertices", len(pts))
		}
		o.Point = pts[0]
	case KindSegment:
		if len(pts) != 2 {
			return Object{}, fmt.Errorf("picture: segment object with %d vertices", len(pts))
		}
		o.Segment = geom.Seg(pts[0], pts[1])
	case KindRegion:
		o.Region = geom.Polygon{Vertices: pts}
	default:
		return Object{}, fmt.Errorf("picture: unknown object kind %d", o.Kind)
	}
	return o, nil
}

// Restore inserts an object preserving its existing ID — used when
// reloading a persisted picture, since tuples hold loc references to
// these IDs. It returns an error on a duplicate id.
func (p *Picture) Restore(o Object) error {
	if o.ID == 0 {
		return fmt.Errorf("picture: restore of object with zero id")
	}
	if _, dup := p.objects[o.ID]; dup {
		return fmt.Errorf("picture: duplicate object id %d", o.ID)
	}
	p.objects[o.ID] = o
	if o.ID >= p.nextID {
		p.nextID = o.ID + 1
	}
	return nil
}
