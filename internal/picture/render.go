package picture

import (
	"math"
	"strings"

	"repro/internal/geom"
)

// Renderer draws a window of a picture onto a character grid: the
// project's stand-in for the paper's graphics monitor. Points render
// as '*', segments as '·' chains, region boundaries as '#', and each
// object's label is placed near its anchor — "the object names are
// displayed on the picture to assist the user to visualize their
// correspondence" (§2.2).
type Renderer struct {
	// Width and Height are the character-grid dimensions.
	Width, Height int
	// Labels toggles label placement.
	Labels bool
}

// DefaultRenderer returns a renderer with a terminal-friendly grid.
func DefaultRenderer() Renderer { return Renderer{Width: 72, Height: 24, Labels: true} }

// Render draws the given objects as they appear within window.
// Objects wholly outside the window are skipped.
func (r Renderer) Render(window geom.Rect, objects []Object) string {
	if r.Width < 2 || r.Height < 2 || window.IsEmpty() {
		return ""
	}
	grid := make([][]byte, r.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", r.Width))
	}

	sx := float64(r.Width-1) / math.Max(window.Width(), 1e-9)
	sy := float64(r.Height-1) / math.Max(window.Height(), 1e-9)
	toCell := func(p geom.Point) (int, int, bool) {
		if !window.ContainsPoint(p) {
			return 0, 0, false
		}
		cx := int((p.X - window.Min.X) * sx)
		// Screen y grows downward.
		cy := r.Height - 1 - int((p.Y-window.Min.Y)*sy)
		return cx, cy, true
	}
	plot := func(p geom.Point, ch byte) {
		if cx, cy, ok := toCell(p); ok {
			grid[cy][cx] = ch
		}
	}
	drawSeg := func(s geom.Segment, ch byte) {
		steps := int(s.Length()*math.Max(sx, sy)) + 1
		for i := 0; i <= steps; i++ {
			t := float64(i) / float64(steps)
			plot(geom.Pt(s.A.X+(s.B.X-s.A.X)*t, s.A.Y+(s.B.Y-s.A.Y)*t), ch)
		}
	}

	for _, o := range objects {
		switch o.Kind {
		case KindSegment:
			drawSeg(o.Segment, '.')
		case KindRegion:
			vs := o.Region.Vertices
			for i := range vs {
				drawSeg(geom.Seg(vs[i], vs[(i+1)%len(vs)]), '#')
			}
		}
	}
	// Points and labels go last so they stay visible on top of region
	// boundaries.
	for _, o := range objects {
		if o.Kind == KindPoint {
			plot(o.Point, '*')
		}
	}
	if r.Labels {
		for _, o := range objects {
			r.placeLabel(grid, window, toCell, o)
		}
	}

	var b strings.Builder
	border := "+" + strings.Repeat("-", r.Width) + "+\n"
	b.WriteString(border)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString(border)
	return b.String()
}

func (r Renderer) placeLabel(grid [][]byte, window geom.Rect, toCell func(geom.Point) (int, int, bool), o Object) {
	if o.Label == "" {
		return
	}
	cx, cy, ok := toCell(o.Anchor())
	if !ok {
		return
	}
	// Write the label to the right of the anchor, clipped to the grid,
	// skipping the anchor cell itself.
	label := o.Label
	start := cx + 1
	if start+len(label) > r.Width {
		start = r.Width - len(label)
		if start < 0 {
			start = 0
		}
	}
	for i := 0; i < len(label) && start+i < r.Width; i++ {
		if grid[cy][start+i] == ' ' || grid[cy][start+i] == '#' {
			grid[cy][start+i] = label[i]
		}
	}
}
