package picture

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestEncodeDecodeObjectRoundtrip(t *testing.T) {
	objs := []Object{
		{ID: 1, Kind: KindPoint, Label: "a point", Point: geom.Pt(3.5, -7.25)},
		{ID: 42, Kind: KindSegment, Label: "", Segment: geom.Seg(geom.Pt(0, 0), geom.Pt(10, 20))},
		{ID: 9001, Kind: KindRegion, Label: "région", Region: geom.Poly(
			geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4), geom.Pt(-1, 2))},
	}
	for _, o := range objs {
		got, err := DecodeObject(EncodeObject(o))
		if err != nil {
			t.Fatalf("%v: %v", o.Kind, err)
		}
		if got.ID != o.ID || got.Kind != o.Kind || got.Label != o.Label {
			t.Fatalf("metadata lost: %+v vs %+v", got, o)
		}
		if !got.MBR().Eq(o.MBR()) {
			t.Fatalf("geometry changed: %v vs %v", got.MBR(), o.MBR())
		}
	}
}

func TestDecodeObjectCorrupt(t *testing.T) {
	good := EncodeObject(Object{ID: 5, Kind: KindSegment, Label: "x",
		Segment: geom.Seg(geom.Pt(1, 1), geom.Pt(2, 2))})
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeObject(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), good...)
	bad[8] = 99 // bogus kind
	if _, err := DecodeObject(bad); err == nil {
		t.Fatal("bogus kind accepted")
	}
	// A point record claiming two vertices is invalid.
	p := EncodeObject(Object{ID: 1, Kind: KindPoint, Point: geom.Pt(1, 1)})
	seg := EncodeObject(Object{ID: 1, Kind: KindSegment, Segment: geom.Seg(geom.Pt(1, 1), geom.Pt(2, 2))})
	mixed := append([]byte(nil), seg...)
	mixed[8] = byte(KindPoint)
	if _, err := DecodeObject(mixed); err == nil {
		t.Fatal("point with two vertices accepted")
	}
	_ = p
}

func TestRestore(t *testing.T) {
	pic := New("m", geom.R(0, 0, 100, 100))
	obj := Object{ID: 17, Kind: KindPoint, Label: "r", Point: geom.Pt(5, 5)}
	if err := pic.Restore(obj); err != nil {
		t.Fatal(err)
	}
	if err := pic.Restore(obj); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := pic.Restore(Object{Kind: KindPoint}); err == nil {
		t.Fatal("zero id accepted")
	}
	// nextID advanced past restored ids: new objects don't collide.
	nid := pic.AddPoint("new", geom.Pt(1, 1))
	if nid <= 17 {
		t.Fatalf("AddPoint reused id space: %d", nid)
	}
	got, ok := pic.Get(17)
	if !ok || got.Label != "r" {
		t.Fatalf("restored object lost: %+v %v", got, ok)
	}
}

func TestQuickEncodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		var o Object
		o.ID = ObjectID(1 + rng.Intn(1_000_000))
		o.Label = randLabel(rng)
		switch rng.Intn(3) {
		case 0:
			o.Kind = KindPoint
			o.Point = geom.Pt(rng.NormFloat64()*1000, rng.NormFloat64()*1000)
		case 1:
			o.Kind = KindSegment
			o.Segment = geom.Seg(
				geom.Pt(rng.NormFloat64()*1000, rng.NormFloat64()*1000),
				geom.Pt(rng.NormFloat64()*1000, rng.NormFloat64()*1000))
		default:
			o.Kind = KindRegion
			n := 3 + rng.Intn(10)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.NormFloat64()*1000, rng.NormFloat64()*1000)
			}
			o.Region = geom.Polygon{Vertices: pts}
		}
		got, err := DecodeObject(EncodeObject(o))
		if err != nil {
			return false
		}
		if got.ID != o.ID || got.Kind != o.Kind || got.Label != o.Label {
			return false
		}
		switch o.Kind {
		case KindPoint:
			return got.Point.Eq(o.Point)
		case KindSegment:
			return got.Segment.A.Eq(o.Segment.A) && got.Segment.B.Eq(o.Segment.B)
		default:
			if len(got.Region.Vertices) != len(o.Region.Vertices) {
				return false
			}
			for i := range o.Region.Vertices {
				if !got.Region.Vertices[i].Eq(o.Region.Vertices[i]) {
					return false
				}
			}
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randLabel(rng *rand.Rand) string {
	n := rng.Intn(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
