package picture

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestAddAndGet(t *testing.T) {
	p := New("us-map", geom.R(0, 0, 1000, 1000))
	if p.Name() != "us-map" || p.Len() != 0 {
		t.Fatal("fresh picture wrong")
	}
	id1 := p.AddPoint("DC", geom.Pt(770, 380))
	id2 := p.AddSegment("I-95", geom.Seg(geom.Pt(700, 100), geom.Pt(800, 900)))
	id3 := p.AddRegion("MD", geom.Poly(geom.Pt(740, 350), geom.Pt(800, 350), geom.Pt(800, 420), geom.Pt(740, 420)))
	if id1 == id2 || id2 == id3 {
		t.Fatal("ids not unique")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	o, ok := p.Get(id1)
	if !ok || o.Kind != KindPoint || o.Label != "DC" {
		t.Fatalf("Get point = %+v, %v", o, ok)
	}
	if _, ok := p.Get(999); ok {
		t.Fatal("Get of missing id succeeded")
	}
}

func TestObjectMBR(t *testing.T) {
	p := New("m", geom.R(0, 0, 100, 100))
	pt, _ := p.Get(p.AddPoint("p", geom.Pt(5, 5)))
	if !pt.MBR().Eq(geom.Pt(5, 5).Rect()) {
		t.Errorf("point MBR = %v", pt.MBR())
	}
	seg, _ := p.Get(p.AddSegment("s", geom.Seg(geom.Pt(1, 9), geom.Pt(7, 2))))
	if !seg.MBR().Eq(geom.R(1, 2, 7, 9)) {
		t.Errorf("segment MBR = %v", seg.MBR())
	}
	reg, _ := p.Get(p.AddRegion("r", geom.Poly(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 8))))
	if !reg.MBR().Eq(geom.R(0, 0, 10, 8)) {
		t.Errorf("region MBR = %v", reg.MBR())
	}
}

func TestIntersectsWindowRefinement(t *testing.T) {
	p := New("m", geom.R(0, 0, 100, 100))
	// A diagonal segment whose MBR intersects the window but whose
	// geometry does not.
	id := p.AddSegment("diag", geom.Seg(geom.Pt(0, 0), geom.Pt(100, 100)))
	o, _ := p.Get(id)
	w := geom.R(60, 0, 100, 40) // below the diagonal
	if !o.MBR().Intersects(w) {
		t.Fatal("test setup wrong: MBR should intersect")
	}
	if o.IntersectsWindow(w) {
		t.Fatal("exact geometry should not intersect")
	}
	if !o.IntersectsWindow(geom.R(40, 40, 60, 60)) {
		t.Fatal("segment should intersect a window on the diagonal")
	}
}

func TestRemove(t *testing.T) {
	p := New("m", geom.R(0, 0, 10, 10))
	id := p.AddPoint("x", geom.Pt(1, 1))
	if !p.Remove(id) {
		t.Fatal("remove failed")
	}
	if p.Remove(id) {
		t.Fatal("double remove succeeded")
	}
	if p.Len() != 0 {
		t.Fatal("object not removed")
	}
}

func TestObjectsOrdered(t *testing.T) {
	p := New("m", geom.R(0, 0, 10, 10))
	p.AddPoint("c", geom.Pt(3, 3))
	p.AddPoint("a", geom.Pt(1, 1))
	p.AddPoint("b", geom.Pt(2, 2))
	objs := p.Objects()
	if len(objs) != 3 {
		t.Fatalf("Objects = %d", len(objs))
	}
	for i := 1; i < len(objs); i++ {
		if objs[i-1].ID >= objs[i].ID {
			t.Fatal("objects not ordered by id")
		}
	}
}

func TestAnchor(t *testing.T) {
	p := New("m", geom.R(0, 0, 10, 10))
	seg, _ := p.Get(p.AddSegment("s", geom.Seg(geom.Pt(0, 0), geom.Pt(10, 10))))
	if got := seg.Anchor(); !got.Eq(geom.Pt(5, 5)) {
		t.Errorf("segment anchor = %v", got)
	}
	reg, _ := p.Get(p.AddRegion("r", geom.Poly(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))))
	if got := reg.Anchor(); !got.Eq(geom.Pt(2, 2)) {
		t.Errorf("region anchor = %v", got)
	}
}

func TestRenderContainsMarksAndLabels(t *testing.T) {
	p := New("m", geom.R(0, 0, 100, 100))
	p.AddPoint("CITY", geom.Pt(50, 50))
	p.AddRegion("", geom.Poly(geom.Pt(10, 10), geom.Pt(90, 10), geom.Pt(90, 90), geom.Pt(10, 90)))
	r := DefaultRenderer()
	out := r.Render(geom.R(0, 0, 100, 100), p.Objects())
	if !strings.Contains(out, "*") {
		t.Error("render missing point mark")
	}
	if !strings.Contains(out, "#") {
		t.Error("render missing region boundary")
	}
	if !strings.Contains(out, "CITY") {
		t.Error("render missing label")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != r.Height+2 {
		t.Errorf("render has %d lines, want %d", len(lines), r.Height+2)
	}
	for _, ln := range lines {
		if len(ln) != r.Width+2 {
			t.Errorf("render line width %d, want %d", len(ln), r.Width+2)
		}
	}
}

func TestRenderClipsToWindow(t *testing.T) {
	p := New("m", geom.R(0, 0, 100, 100))
	p.AddPoint("OUT", geom.Pt(90, 90))
	r := Renderer{Width: 20, Height: 10, Labels: true}
	out := r.Render(geom.R(0, 0, 50, 50), p.Objects())
	if strings.Contains(out, "*") || strings.Contains(out, "OUT") {
		t.Error("object outside window was rendered")
	}
}

func TestRenderDegenerate(t *testing.T) {
	p := New("m", geom.R(0, 0, 10, 10))
	p.AddPoint("x", geom.Pt(5, 5))
	if out := (Renderer{Width: 1, Height: 1}).Render(geom.R(0, 0, 10, 10), p.Objects()); out != "" {
		t.Error("degenerate renderer should produce empty output")
	}
	if out := DefaultRenderer().Render(geom.EmptyRect(), p.Objects()); out != "" {
		t.Error("empty window should produce empty output")
	}
}
