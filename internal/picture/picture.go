// Package picture models the pictorial side of the database: named
// pictures (maps) holding spatial objects in their analog form. A
// spatial object is a point, line segment, or polygonal region with an
// object identifier and a display label. Relation tuples reference
// objects through loc pointers (picture name + object id), mirroring
// the paper's backward identifiers "which point to the area on the
// picture".
//
// The package also provides the "analog form" output device: an ASCII
// renderer that draws a window of a picture with the qualifying
// objects and their labels, standing in for the paper's graphics
// monitor.
package picture

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// ObjectID identifies a spatial object within one picture.
type ObjectID int64

// Kind classifies a spatial object, the paper's "point", "segment" and
// "region" domains.
type Kind int

const (
	// KindPoint is a point object (cities on a map).
	KindPoint Kind = iota
	// KindSegment is a line-segment object (highway sections).
	KindSegment
	// KindRegion is a polygonal region object (states, lakes,
	// time zones).
	KindRegion
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPoint:
		return "point"
	case KindSegment:
		return "segment"
	case KindRegion:
		return "region"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Object is one spatial object in its analog form.
type Object struct {
	ID    ObjectID
	Kind  Kind
	Label string
	// Exactly one of the following is meaningful, per Kind.
	Point   geom.Point
	Segment geom.Segment
	Region  geom.Polygon
}

// MBR returns the minimal bounding rectangle of the object — what an
// R-tree leaf entry stores for it.
func (o Object) MBR() geom.Rect {
	switch o.Kind {
	case KindPoint:
		return o.Point.Rect()
	case KindSegment:
		return o.Segment.Rect()
	default:
		return o.Region.Rect()
	}
}

// IntersectsWindow reports whether the object's exact geometry (not
// just its MBR) intersects the window — the refinement step after the
// R-tree filter.
func (o Object) IntersectsWindow(w geom.Rect) bool {
	switch o.Kind {
	case KindPoint:
		return w.ContainsPoint(o.Point)
	case KindSegment:
		return o.Segment.IntersectsRect(w)
	default:
		return o.Region.IntersectsRect(w)
	}
}

// Anchor returns a representative point used to place the object's
// label when rendering.
func (o Object) Anchor() geom.Point {
	switch o.Kind {
	case KindPoint:
		return o.Point
	case KindSegment:
		return o.Segment.Midpoint()
	default:
		return o.Region.Centroid()
	}
}

// Picture is a named 2-D extent holding spatial objects: one map of
// the paper's pictorial database.
type Picture struct {
	name    string
	extent  geom.Rect
	objects map[ObjectID]Object
	nextID  ObjectID
}

// New creates an empty picture covering extent.
func New(name string, extent geom.Rect) *Picture {
	return &Picture{
		name:    name,
		extent:  extent,
		objects: make(map[ObjectID]Object),
		nextID:  1,
	}
}

// Name returns the picture's name as used in PSQL on-clauses.
func (p *Picture) Name() string { return p.name }

// Extent returns the picture's full coordinate frame.
func (p *Picture) Extent() geom.Rect { return p.extent }

// Len returns the number of objects on the picture.
func (p *Picture) Len() int { return len(p.objects) }

// AddPoint places a point object and returns its id.
func (p *Picture) AddPoint(label string, pt geom.Point) ObjectID {
	return p.add(Object{Kind: KindPoint, Label: label, Point: pt})
}

// AddSegment places a segment object and returns its id.
func (p *Picture) AddSegment(label string, s geom.Segment) ObjectID {
	return p.add(Object{Kind: KindSegment, Label: label, Segment: s})
}

// AddRegion places a region object and returns its id.
func (p *Picture) AddRegion(label string, poly geom.Polygon) ObjectID {
	return p.add(Object{Kind: KindRegion, Label: label, Region: poly})
}

func (p *Picture) add(o Object) ObjectID {
	o.ID = p.nextID
	p.nextID++
	p.objects[o.ID] = o
	return o.ID
}

// Get returns the object with the given id.
func (p *Picture) Get(id ObjectID) (Object, bool) {
	o, ok := p.objects[id]
	return o, ok
}

// Remove deletes the object with the given id, reporting whether it
// existed.
func (p *Picture) Remove(id ObjectID) bool {
	if _, ok := p.objects[id]; !ok {
		return false
	}
	delete(p.objects, id)
	return true
}

// Objects returns all objects ordered by id (stable for display and
// index building).
func (p *Picture) Objects() []Object {
	out := make([]Object, 0, len(p.objects))
	for _, o := range p.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
