package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/storage"
)

// benchFixture builds a cities relation with nPacked tuples in the
// packed tree and nDelta tuples absorbed by the write side (L0 buffer
// plus delta tree), with every 10th delta-era op deleting a packed
// tuple so tombstone filtering is on the measured path.
func benchFixture(b *testing.B, nPacked, nDelta int) (*Relation, *SpatialIndex) {
	b.Helper()
	p := pager.OpenMem(4096)
	b.Cleanup(func() { p.Close() })
	rel, err := New(p, "cities", citySchema())
	if err != nil {
		b.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	rng := rand.New(rand.NewSource(1985))
	for i := 0; i < nPacked; i++ {
		addBenchCity(b, rel, pic, fmt.Sprintf("p%d", i), rng.Float64()*1000, rng.Float64()*1000)
	}
	if err := rel.AttachPicture(pic, pack.Options{Method: pack.MethodSTR}); err != nil {
		b.Fatal(err)
	}
	si := rel.Spatial("us-map")
	si.SetAutoRepack(false)
	for i := 0; i < nDelta; i++ {
		id := addBenchCity(b, rel, pic, fmt.Sprintf("d%d", i), rng.Float64()*1000, rng.Float64()*1000)
		if i%10 == 9 {
			if err := rel.Delete(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	si.WaitAbsorb()
	return rel, si
}

func addBenchCity(b *testing.B, rel *Relation, pic *picture.Picture, name string, x, y float64) storage.TupleID {
	b.Helper()
	oid := pic.AddPoint(name, geom.Pt(x, y))
	id, err := rel.Insert(Tuple{S(name), S("ST"), I(0), L(pic.Name(), oid)})
	if err != nil {
		b.Fatal(err)
	}
	return id
}

// BenchmarkDeltaMergedSearch measures the two-tier merged window read
// (packed + delta + L0 minus tombstones, canonically ordered) that
// every query pays while writes are pending — the read-amplification
// side of the LSM trade. Run via `make benchcheck`.
func BenchmarkDeltaMergedSearch(b *testing.B) {
	rel, si := benchFixture(b, 5000, 1000)
	if si.DeltaLen() == 0 {
		b.Fatal("fixture has no pending delta")
	}
	windows := make([]geom.Rect, 64)
	rng := rand.New(rand.NewSource(7))
	for i := range windows {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		windows[i] = geom.R(cx-25, cy-25, cx+25, cy+25)
	}
	pred := func(obj, win geom.Rect) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rel.SearchArea("us-map", windows[i%len(windows)], pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackedOnlySearch is the same workload with the write side
// fully repacked — the baseline the merged read is compared against.
func BenchmarkPackedOnlySearch(b *testing.B) {
	rel, si := benchFixture(b, 5000, 1000)
	si.RepackNow(true)
	if si.DeltaLen() != 0 || si.TombstoneCount() != 0 {
		b.Fatal("repack left pending write side")
	}
	windows := make([]geom.Rect, 64)
	rng := rand.New(rand.NewSource(7))
	for i := range windows {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		windows[i] = geom.R(cx-25, cy-25, cx+25, cy+25)
	}
	pred := func(obj, win geom.Rect) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rel.SearchArea("us-map", windows[i%len(windows)], pred); err != nil {
			b.Fatal(err)
		}
	}
}
