package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
)

// shardBenchFixture builds a repacked relation over nShards page files
// (nShards == 0 means unsharded) so the scatter-gather window read can
// be compared against the single-tree baseline. Attach happens before
// the load so placement is Hilbert routing, matching production use.
func shardBenchFixture(b *testing.B, nShards, n int) *Relation {
	b.Helper()
	var rel *Relation
	var err error
	if nShards == 0 {
		p := pager.OpenMem(4096)
		b.Cleanup(func() { p.Close() })
		rel, err = New(p, "cities", citySchema())
	} else {
		pagers := make([]*pager.Pager, nShards)
		for i := range pagers {
			pagers[i] = pager.OpenMem(4096)
		}
		b.Cleanup(func() {
			for _, p := range pagers {
				p.Close()
			}
		})
		rel, err = NewSharded(pagers, "cities", citySchema())
	}
	if err != nil {
		b.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	if err := rel.AttachPicture(pic, pack.Options{Method: pack.MethodSTR}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1985))
	for i := 0; i < n; i++ {
		addBenchCity(b, rel, pic, fmt.Sprintf("p%d", i), rng.Float64()*1000, rng.Float64()*1000)
	}
	if err := rel.RepackPicture("us-map", pack.Options{Method: pack.MethodSTR}); err != nil {
		b.Fatal(err)
	}
	return rel
}

func benchWindows() []geom.Rect {
	windows := make([]geom.Rect, 64)
	rng := rand.New(rand.NewSource(7))
	for i := range windows {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		windows[i] = geom.R(cx-25, cy-25, cx+25, cy+25)
	}
	return windows
}

func runShardSearchBench(b *testing.B, rel *Relation) {
	windows := benchWindows()
	pred := func(obj, win geom.Rect) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rel.SearchArea("us-map", windows[i%len(windows)], pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnshardedSearch is the baseline clustered-window read over
// one packed tree. Compared against BenchmarkShardedSearch by `make
// benchcheck` — the issue's budget is sharded p50 within 1.2x of this.
func BenchmarkUnshardedSearch(b *testing.B) {
	runShardSearchBench(b, shardBenchFixture(b, 0, 6000))
}

// BenchmarkShardedSearch is the same workload scatter-gathered across
// 8 Hilbert-range shards: the directory prunes non-overlapping shards,
// then per-shard result streams merge in ascending sequence order.
func BenchmarkShardedSearch(b *testing.B) {
	runShardSearchBench(b, shardBenchFixture(b, 8, 6000))
}
