package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/storage"
)

func citySchema() Schema {
	return MustSchema("city:string", "state:string", "population:int", "loc:loc")
}

func newCities(t *testing.T) (*Relation, *picture.Picture) {
	t.Helper()
	p := pager.OpenMem(64)
	t.Cleanup(func() { p.Close() })
	rel, err := New(p, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	return rel, pic
}

func addCity(t *testing.T, rel *Relation, pic *picture.Picture, name, state string, pop int64, x, y float64) storage.TupleID {
	t.Helper()
	oid := pic.AddPoint(name, geom.Pt(x, y))
	id, err := rel.Insert(Tuple{S(name), S(state), I(pop), L(pic.Name(), oid)})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSchemaBasics(t *testing.T) {
	s := citySchema()
	if s.Arity() != 4 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.ColumnIndex("population") != 2 || s.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
	if s.LocColumn() != 3 {
		t.Fatal("LocColumn wrong")
	}
	if _, err := NewSchema("bad"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := NewSchema("a:int", "a:string"); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := NewSchema("a:bogus"); err == nil {
		t.Fatal("bogus type accepted")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := citySchema()
	good := Tuple{S("DC"), S("DC"), I(700000), L("us-map", 1)}
	if err := s.Validate(good); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(good[:3]); err == nil {
		t.Fatal("short tuple accepted")
	}
	bad := Tuple{S("DC"), S("DC"), S("not-an-int"), L("us-map", 1)}
	if err := s.Validate(bad); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	tuples := []Tuple{
		{},
		{I(0), I(-1), I(1<<62 + 5)},
		{F(3.14), F(-2.5e300), F(0)},
		{S(""), S("hello world"), S("unicode: héllo")},
		{L("map", 42), L("", 0)},
		{S("mixed"), I(-99), F(0.5), L("pic", 7)},
	}
	for i, tu := range tuples {
		rec := EncodeTuple(tu)
		got, err := DecodeTuple(rec)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if len(got) != len(tu) {
			t.Fatalf("tuple %d: arity %d", i, len(got))
		}
		for j := range tu {
			if !got[j].Eq(tu[j]) {
				t.Fatalf("tuple %d col %d: %v != %v", i, j, got[j], tu[j])
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	good := EncodeTuple(Tuple{S("abc"), I(5)})
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeTuple(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeTuple([]byte{}); err == nil {
		t.Fatal("empty record accepted")
	}
	bad := append([]byte(nil), good...)
	bad[1] = 200 // bogus type tag
	if _, err := DecodeTuple(bad); err == nil {
		t.Fatal("bogus type tag accepted")
	}
}

func TestIndexKeyOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		var a, b Value
		switch rng.Intn(3) {
		case 0:
			a, b = I(rng.Int63()-rng.Int63()), I(rng.Int63()-rng.Int63())
		case 1:
			a, b = F((rng.Float64()-0.5)*1e9), F((rng.Float64()-0.5)*1e9)
		default:
			a, b = S(randWord(rng)), S(randWord(rng))
		}
		ka, kb := IndexKey(a), IndexKey(b)
		cmpKeys := bytesCompare(ka, kb)
		cmpVals := a.Compare(b)
		return sign(cmpKeys) == sign(cmpVals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func randWord(rng *rand.Rand) string {
	n := rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func bytesCompare(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestInsertGetDelete(t *testing.T) {
	rel, pic := newCities(t)
	id := addCity(t, rel, pic, "Washington", "DC", 700000, 770, 390)
	got, err := rel.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Str != "Washington" || got[2].Int != 700000 {
		t.Fatalf("Get = %v", got)
	}
	if rel.Len() != 1 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if err := rel.Delete(id); err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatal("delete did not shrink relation")
	}
	if _, err := rel.Get(id); err == nil {
		t.Fatal("deleted tuple still readable")
	}
}

func TestInsertValidates(t *testing.T) {
	rel, _ := newCities(t)
	if _, err := rel.Insert(Tuple{S("x")}); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestCreateIndexAndLookup(t *testing.T) {
	rel, pic := newCities(t)
	addCity(t, rel, pic, "A", "MD", 100, 1, 1)
	addCity(t, rel, pic, "B", "VA", 200, 2, 2)
	if err := rel.CreateIndex("state"); err != nil {
		t.Fatal(err)
	}
	// Index must cover pre-existing and future tuples.
	addCity(t, rel, pic, "C", "MD", 300, 3, 3)

	ids, err := rel.LookupEqual("state", S("MD"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("MD lookup = %d ids", len(ids))
	}
	names := map[string]bool{}
	for _, id := range ids {
		tu, _ := rel.Get(id)
		names[tu[0].Str] = true
	}
	if !names["A"] || !names["C"] {
		t.Fatalf("MD cities = %v", names)
	}
	// Unindexed column falls back to scan.
	ids, err = rel.LookupEqual("population", I(200))
	if err != nil || len(ids) != 1 {
		t.Fatalf("scan lookup = %v, %v", ids, err)
	}
	// Index errors.
	if err := rel.CreateIndex("state"); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if err := rel.CreateIndex("loc"); err == nil {
		t.Fatal("index on loc column accepted")
	}
	if err := rel.CreateIndex("nope"); err == nil {
		t.Fatal("index on missing column accepted")
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	rel, pic := newCities(t)
	if err := rel.CreateIndex("state"); err != nil {
		t.Fatal(err)
	}
	id := addCity(t, rel, pic, "A", "MD", 100, 1, 1)
	addCity(t, rel, pic, "B", "MD", 200, 2, 2)
	if err := rel.Delete(id); err != nil {
		t.Fatal(err)
	}
	ids, _ := rel.LookupEqual("state", S("MD"))
	if len(ids) != 1 {
		t.Fatalf("after delete, MD lookup = %d ids", len(ids))
	}
}

func TestAttachPictureAndSearchArea(t *testing.T) {
	rel, pic := newCities(t)
	addCity(t, rel, pic, "East1", "AA", 1, 900, 500)
	addCity(t, rel, pic, "East2", "AA", 2, 850, 400)
	addCity(t, rel, pic, "West1", "BB", 3, 100, 500)
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	if rel.Spatial("us-map") == nil {
		t.Fatal("spatial index missing")
	}
	ids, visited, err := rel.SearchArea("us-map", geom.R(800, 0, 1000, 1000), geom.CoveredBy)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("east search = %d tuples", len(ids))
	}
	if visited < 1 {
		t.Fatal("no nodes visited")
	}
	// Direct search on a picture never attached fails.
	if _, _, err := rel.SearchArea("mars-map", geom.R(0, 0, 1, 1), geom.CoveredBy); err == nil {
		t.Fatal("search on missing picture succeeded")
	}
	// Double attach fails.
	if err := rel.AttachPicture(pic, pack.Options{}); err == nil {
		t.Fatal("double attach accepted")
	}
}

func TestSpatialIndexMaintainedByInsertDelete(t *testing.T) {
	rel, pic := newCities(t)
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	// Insert after attach: the paper's §3.4 dynamic maintenance.
	id := addCity(t, rel, pic, "NewCity", "ZZ", 42, 500, 500)
	ids, _, err := rel.SearchArea("us-map", geom.R(490, 490, 510, 510), geom.CoveredBy)
	if err != nil || len(ids) != 1 {
		t.Fatalf("search after insert = %v, %v", ids, err)
	}
	tu, _ := rel.Get(ids[0])
	if tu[0].Str != "NewCity" {
		t.Fatalf("found %q", tu[0].Str)
	}
	if err := rel.Delete(id); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = rel.SearchArea("us-map", geom.R(490, 490, 510, 510), geom.CoveredBy)
	if len(ids) != 0 {
		t.Fatal("deleted tuple still in spatial index")
	}
}

func TestMultiPictureAssociation(t *testing.T) {
	// One relation associated with two pictures: tuples carry loc refs
	// into one picture or the other; each picture gets its own R-tree.
	p := pager.OpenMem(64)
	defer p.Close()
	rel, err := New(p, "landmarks", MustSchema("name:string", "loc:loc"))
	if err != nil {
		t.Fatal(err)
	}
	picA := picture.New("map-a", geom.R(0, 0, 100, 100))
	picB := picture.New("map-b", geom.R(0, 0, 100, 100))
	oa := picA.AddPoint("x", geom.Pt(10, 10))
	ob := picB.AddPoint("y", geom.Pt(90, 90))
	rel.Insert(Tuple{S("onA"), L("map-a", oa)})
	rel.Insert(Tuple{S("onB"), L("map-b", ob)})
	if err := rel.AttachPicture(picA, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := rel.AttachPicture(picB, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	if len(rel.Pictures()) != 2 {
		t.Fatalf("Pictures = %v", rel.Pictures())
	}
	idsA, _, _ := rel.SearchArea("map-a", geom.R(0, 0, 100, 100), geom.CoveredBy)
	idsB, _, _ := rel.SearchArea("map-b", geom.R(0, 0, 100, 100), geom.CoveredBy)
	if len(idsA) != 1 || len(idsB) != 1 {
		t.Fatalf("per-picture search: a=%d b=%d", len(idsA), len(idsB))
	}
}

func TestRepackPicture(t *testing.T) {
	rel, pic := newCities(t)
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	si := rel.Spatial("us-map")
	beforeLive := si.Len()
	if err := rel.RepackPicture("us-map", pack.Options{}); err != nil {
		t.Fatal(err)
	}
	if si != rel.Spatial("us-map") {
		t.Fatal("repack replaced the SpatialIndex object")
	}
	after := si.PackedTree().ComputeMetrics()
	if after.Items != beforeLive {
		t.Fatalf("repack lost items: %d live -> %d packed", beforeLive, after.Items)
	}
	if si.DeltaLen() != 0 || si.TombstoneCount() != 0 {
		t.Fatalf("repack left delta=%d tombs=%d", si.DeltaLen(), si.TombstoneCount())
	}
	if si.Stats() != after {
		t.Fatalf("stats %+v != computed %+v", si.Stats(), after)
	}
	if err := rel.RepackPicture("nope", pack.Options{}); err == nil {
		t.Fatal("repack of missing picture accepted")
	}
}

func TestScanDecodesAll(t *testing.T) {
	rel, pic := newCities(t)
	for i := 0; i < 30; i++ {
		addCity(t, rel, pic, randWord(rand.New(rand.NewSource(int64(i)))), "ST", int64(i), float64(i), float64(i))
	}
	n := 0
	err := rel.Scan(func(_ storage.TupleID, tu Tuple) bool {
		if len(tu) != 4 {
			t.Fatalf("bad arity %d", len(tu))
		}
		n++
		return true
	})
	if err != nil || n != 30 {
		t.Fatalf("scan: n=%d err=%v", n, err)
	}
}

func TestLookupRange(t *testing.T) {
	rel, pic := newCities(t)
	pops := []int64{100, 250, 250, 400, 900, 1200}
	for i, p := range pops {
		addCity(t, rel, pic, string(rune('a'+i)), "ST", p, float64(i), float64(i))
	}
	// Unindexed column: not usable.
	if _, ok := rel.LookupRange("population", nil, nil); ok {
		t.Fatal("LookupRange on unindexed column claimed success")
	}
	if err := rel.CreateIndex("population"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi *Bound
		want   int
	}{
		{nil, nil, 6},
		{&Bound{Value: I(250), Inclusive: true}, nil, 5},
		{&Bound{Value: I(250)}, nil, 3}, // exclusive
		{nil, &Bound{Value: I(250)}, 1},
		{nil, &Bound{Value: I(250), Inclusive: true}, 3},
		{&Bound{Value: I(250), Inclusive: true}, &Bound{Value: I(900), Inclusive: true}, 4},
		{&Bound{Value: I(5000), Inclusive: true}, nil, 0},
	}
	for i, tt := range cases {
		ids, ok := rel.LookupRange("population", tt.lo, tt.hi)
		if !ok {
			t.Fatalf("case %d: index not used", i)
		}
		if len(ids) != tt.want {
			t.Errorf("case %d: %d ids, want %d", i, len(ids), tt.want)
		}
	}
}

func TestRelationOpen(t *testing.T) {
	p := pager.OpenMem(64)
	defer p.Close()
	rel, err := New(p, "r", MustSchema("name:string", "v:int"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if _, err := rel.Insert(Tuple{S("x"), I(i)}); err != nil {
			t.Fatal(err)
		}
	}
	first := rel.HeapFirstPage()

	re, err := Open(p, "r", rel.Schema(), first)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 20 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	if err := re.CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	ids, ok := re.LookupRange("v", &Bound{Value: I(15), Inclusive: true}, nil)
	if !ok || len(ids) != 5 {
		t.Fatalf("range after reopen: %d ids, ok=%v", len(ids), ok)
	}
	cols := re.IndexedColumns()
	if len(cols) != 1 || cols[0] != "v" {
		t.Fatalf("IndexedColumns = %v", cols)
	}
}

func TestDecodeTupleColsLazy(t *testing.T) {
	tu := Tuple{S("Washington"), S("DC"), I(700000), F(2.5), L("us-map", 7)}
	rec := EncodeTuple(tu)

	// nil need == full decode.
	full, err := DecodeTupleCols(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range tu {
		if !full[j].Eq(tu[j]) {
			t.Fatalf("full decode col %d: %v != %v", j, full[j], tu[j])
		}
	}

	// Only columns 1 and 4 materialized; the rest keep type tags with
	// zero payloads.
	part, err := DecodeTupleCols(rec, []bool{false, true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != len(tu) {
		t.Fatalf("lazy arity = %d", len(part))
	}
	if !part[1].Eq(tu[1]) || !part[4].Eq(tu[4]) {
		t.Fatalf("needed columns wrong: %v", part)
	}
	if part[0].Type != TypeString || part[0].Str != "" {
		t.Fatalf("skipped string materialized: %v", part[0])
	}
	if part[2].Type != TypeInt || part[2].Int != 0 {
		t.Fatalf("skipped int materialized: %v", part[2])
	}
	if part[3].Type != TypeFloat || part[3].Float != 0 {
		t.Fatalf("skipped float materialized: %v", part[3])
	}

	// A need slice shorter than the tuple decodes the tail.
	tail, err := DecodeTupleCols(rec, []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if !tail[4].Eq(tu[4]) || tail[0].Str != "" {
		t.Fatalf("short need slice: %v", tail)
	}

	// Lazy decode keeps full validation: truncations still fail even
	// when every column is skipped.
	skipAll := make([]bool, len(tu))
	for cut := 1; cut < len(rec); cut++ {
		if _, err := DecodeTupleCols(rec[:cut], skipAll); err == nil {
			t.Fatalf("truncation at %d accepted with lazy decode", cut)
		}
	}
}

func TestGetBatchMatchesGetRelation(t *testing.T) {
	rel, pic := newCities(t)
	rng := rand.New(rand.NewSource(9))
	var ids []storage.TupleID
	for i := 0; i < 300; i++ {
		ids = append(ids, addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000))
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

	for _, workers := range []int{1, 2, 8, 0} {
		got, err := rel.GetBatch(ids, nil, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			want, err := rel.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if !got[i][j].Eq(want[j]) {
					t.Fatalf("workers=%d id %v col %d: %v != %v", workers, id, j, got[i][j], want[j])
				}
			}
		}
	}

	// Column-lazy batch: population only.
	need := []bool{false, false, true, false}
	got, err := rel.GetBatch(ids, need, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want, _ := rel.Get(id)
		if got[i][2].Int != want[2].Int || got[i][0].Str != "" {
			t.Fatalf("lazy batch id %v: %v", id, got[i])
		}
	}

	// A dead id fails the whole batch.
	if err := rel.Delete(ids[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := rel.GetBatch(ids, nil, 4); err == nil {
		t.Fatal("batch with dead id succeeded")
	}
}

func TestSpatialIndexStats(t *testing.T) {
	rel, pic := newCities(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	si := rel.Spatial("us-map")
	stats := si.Stats()
	if stats.Items != 150 || stats.Nodes < 1 || stats.Depth < 1 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	want := si.PackedTree().ComputeMetrics()
	if stats != want {
		t.Fatalf("stats %+v != computed %+v", stats, want)
	}
}

func TestUpdate(t *testing.T) {
	rel, pic := newCities(t)
	if err := rel.CreateIndex("state"); err != nil {
		t.Fatal(err)
	}
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	id := addCity(t, rel, pic, "Old", "AA", 100, 10, 10)
	// Move the tuple to a new spatial object and new attributes.
	oid2 := pic.AddPoint("New", geom.Pt(900, 900))
	newID, err := rel.Update(id, Tuple{S("New"), S("BB"), I(500), L(pic.Name(), oid2)})
	if err != nil {
		t.Fatal(err)
	}
	// The freed slot may be recycled for the new tuple, so the old id
	// is either dead or now names the new tuple — never the old one.
	if old, err := rel.Get(id); err == nil && old[0].Str == "Old" {
		t.Fatal("old tuple still readable")
	}
	got, err := rel.Get(newID)
	if err != nil || got[0].Str != "New" {
		t.Fatalf("updated tuple = %v, %v", got, err)
	}
	// B-tree index follows the update.
	if ids, _ := rel.LookupEqual("state", S("AA")); len(ids) != 0 {
		t.Fatalf("old index entry survives: %v", ids)
	}
	if ids, _ := rel.LookupEqual("state", S("BB")); len(ids) != 1 {
		t.Fatalf("new index entry missing")
	}
	// Spatial index follows the update.
	if ids, _, _ := rel.SearchArea("us-map", geom.R(0, 0, 100, 100), geom.CoveredBy); len(ids) != 0 {
		t.Fatal("old location still indexed")
	}
	ids, _, _ := rel.SearchArea("us-map", geom.R(800, 800, 1000, 1000), geom.CoveredBy)
	if len(ids) != 1 {
		t.Fatal("new location not indexed")
	}
	// Schema violations leave the relation untouched.
	if _, err := rel.Update(newID, Tuple{S("x")}); err == nil {
		t.Fatal("bad update accepted")
	}
	if rel.Len() != 1 {
		t.Fatalf("Len = %d after failed update", rel.Len())
	}
}
