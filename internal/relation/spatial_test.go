package relation

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// newSpatialFixture builds a cities relation with n initial tuples and
// an attached picture, returning the tracked live coordinates by id.
func newSpatialFixture(t *testing.T, n int, seed int64) (*Relation, *picture.Picture, *rand.Rand) {
	t.Helper()
	p := pager.OpenMem(512)
	t.Cleanup(func() { p.Close() })
	rel, err := New(p, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	return rel, pic, rng
}

// oracleSearch recomputes a window query from the heap: the serial
// naive re-scan the merged read path must be bit-identical to.
func oracleSearch(t *testing.T, rel *Relation, pic *picture.Picture, window geom.Rect, pred func(obj, win geom.Rect) bool) []storage.TupleID {
	t.Helper()
	var out []storage.TupleID
	err := rel.Scan(func(id storage.TupleID, tu Tuple) bool {
		if rect, ok := rel.locMBR(tu, pic); ok && pred(rect, window) {
			out = append(out, id)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Heap scan order is already canonical (page, slot) ascending.
	return out
}

func idsEqual(a, b []storage.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeltaAbsorbsWrites(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 100, 1)
	si := rel.Spatial("us-map")
	si.SetAutoRepack(false)
	packedBefore := si.PackedTree()
	if n := packedBefore.Len(); n != 100 {
		t.Fatalf("packed = %d items", n)
	}
	var fresh []storage.TupleID
	for i := 0; i < 40; i++ {
		fresh = append(fresh, addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000))
	}
	if si.PackedTree() != packedBefore || packedBefore.Len() != 100 {
		t.Fatal("delta writes mutated the packed tree")
	}
	if si.DeltaLen() != 40 || si.Len() != 140 {
		t.Fatalf("delta=%d live=%d", si.DeltaLen(), si.Len())
	}
	// Deleting a delta-resident tuple removes it directly: no tombstone.
	if err := rel.Delete(fresh[0]); err != nil {
		t.Fatal(err)
	}
	if si.TombstoneCount() != 0 || si.DeltaLen() != 39 {
		t.Fatalf("delta delete left tombs=%d delta=%d", si.TombstoneCount(), si.DeltaLen())
	}
	// Deleting a packed tuple tombstones it; the packed tree is untouched.
	var packedID storage.TupleID
	rel.Scan(func(id storage.TupleID, _ Tuple) bool { packedID = id; return false })
	if err := rel.Delete(packedID); err != nil {
		t.Fatal(err)
	}
	if si.TombstoneCount() != 1 || si.PackedTree().Len() != 100 {
		t.Fatalf("packed delete: tombs=%d packedLen=%d", si.TombstoneCount(), si.PackedTree().Len())
	}
	if si.Len() != 138 {
		t.Fatalf("live = %d, want 138", si.Len())
	}
	// Merged reads agree with the oracle, in canonical order.
	window := geom.R(0, 0, 1000, 1000)
	got, _, err := rel.SearchArea("us-map", window, geom.CoveredBy)
	if err != nil {
		t.Fatal(err)
	}
	want := oracleSearch(t, rel, pic, window, geom.CoveredBy)
	if !idsEqual(got, want) {
		t.Fatalf("merged search: got %d ids, oracle %d", len(got), len(want))
	}
	if err := si.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergedSearchMatchesOracle(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 200, 2)
	si := rel.Spatial("us-map")
	si.SetAutoRepack(false)
	var live []storage.TupleID
	rel.Scan(func(id storage.TupleID, _ Tuple) bool { live = append(live, id); return true })
	// Churn: inserts and deletes interleaved, delta and packed victims.
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 && len(live) > 0 {
			k := rng.Intn(len(live))
			if err := rel.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			live = append(live, addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000))
		}
	}
	windows := []geom.Rect{
		geom.R(0, 0, 1000, 1000),
		geom.R(100, 100, 400, 500),
		geom.R(700, 20, 950, 800),
		geom.R(0, 0, 50, 50),
		geom.R(500, 500, 501, 501),
	}
	for _, w := range windows {
		want := oracleSearch(t, rel, pic, w, geom.Overlapping)
		got, _, err := rel.SearchArea("us-map", w, geom.Overlapping)
		if err != nil {
			t.Fatal(err)
		}
		if !idsEqual(got, want) {
			t.Fatalf("window %v: got %v want %v", w, got, want)
		}
	}
	// Batched form is identical at any parallelism.
	for _, par := range []int{1, 2, 8} {
		batches, _, err := rel.SearchAreaBatch("us-map", windows, geom.Overlapping, par)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range windows {
			want := oracleSearch(t, rel, pic, w, geom.Overlapping)
			if !idsEqual(batches[i], want) {
				t.Fatalf("par %d window %d: got %d want %d ids", par, i, len(batches[i]), len(want))
			}
		}
	}
}

func TestAutoRepack(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 100, 3)
	si := rel.Spatial("us-map")
	si.SetDeltaThreshold(32)
	var live []storage.TupleID
	rel.Scan(func(id storage.TupleID, _ Tuple) bool { live = append(live, id); return true })
	for i := 0; i < 400; i++ {
		if rng.Intn(4) == 0 && len(live) > 0 {
			k := rng.Intn(len(live))
			if err := rel.Delete(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			live = append(live, addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000))
		}
	}
	si.WaitRepack()
	if si.Repacks() == 0 {
		t.Fatal("no background repack ran")
	}
	if si.DeltaLen()+si.TombstoneCount() >= 2*32 {
		t.Fatalf("write side not drained: delta=%d tombs=%d", si.DeltaLen(), si.TombstoneCount())
	}
	if si.Len() != len(live) {
		t.Fatalf("live = %d, want %d", si.Len(), len(live))
	}
	if got := si.PackedTree().ComputeMetrics(); got != si.Stats() {
		t.Fatalf("stats not refreshed: %+v vs %+v", si.Stats(), got)
	}
	w := geom.R(0, 0, 1000, 1000)
	got, _, err := rel.SearchArea("us-map", w, geom.CoveredBy)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleSearch(t, rel, pic, w, geom.CoveredBy); !idsEqual(got, want) {
		t.Fatalf("post-repack search: got %d want %d ids", len(got), len(want))
	}
	if err := si.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepackNowStopTheWorld(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 150, 4)
	si := rel.Spatial("us-map")
	si.SetAutoRepack(false)
	for i := 0; i < 80; i++ {
		addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	var victim storage.TupleID
	rel.Scan(func(id storage.TupleID, _ Tuple) bool { victim = id; return false })
	if err := rel.Delete(victim); err != nil {
		t.Fatal(err)
	}
	w := geom.R(0, 0, 1000, 1000)
	before, _, _ := rel.SearchArea("us-map", w, geom.CoveredBy)
	si.RepackNow(true)
	if si.DeltaLen() != 0 || si.TombstoneCount() != 0 {
		t.Fatalf("STW repack left delta=%d tombs=%d", si.DeltaLen(), si.TombstoneCount())
	}
	if si.PackedTree().Len() != si.Len() {
		t.Fatalf("packed %d != live %d", si.PackedTree().Len(), si.Len())
	}
	after, _, _ := rel.SearchArea("us-map", w, geom.CoveredBy)
	if !idsEqual(before, after) {
		t.Fatal("STW repack changed query results")
	}
	if got := si.PackedTree().ComputeMetrics(); got != si.Stats() {
		t.Fatal("STW repack did not refresh stats")
	}
}

// TestFrozenTombstoneFiltering pins the id-lifecycle corner of the
// mid-repack read: tombstones snapshotted at freeze (ts0) filter the
// packed tree only — they are being merged away — while tombstones
// created after the freeze filter both packed and frozen.
func TestFrozenTombstoneFiltering(t *testing.T) {
	si := newSpatialIndex(
		picture.New("p", geom.R(0, 0, 10, 10)),
		pack.Tree(rtree.DefaultParams(), []rtree.Item{
			{Rect: geom.R(1, 1, 2, 2), Data: 1},
			{Rect: geom.R(3, 3, 4, 4), Data: 2},
		}, pack.Options{}),
		pack.Options{}, rtree.DefaultParams(),
	)
	si.SetAutoRepack(false)
	// Pre-freeze: id 1 deleted (tombstone), ids 3,4 inserted (delta).
	si.delete(geom.R(1, 1, 2, 2), 1)
	si.insert(geom.R(5, 5, 6, 6), 3)
	si.insert(geom.R(7, 7, 8, 8), 4)
	// Simulate the freeze step of a repack (delta tree and L0 buffer
	// both freeze; the pre-freeze inserts sit in L0).
	si.mu.Lock()
	si.frozen, si.frozenL0 = si.delta, si.l0
	si.delta, si.l0 = rtree.New(deltaParams), nil
	si.ts0 = map[int64]struct{}{1: {}}
	si.mu.Unlock()
	// Post-freeze: id 2 (packed) and id 3 (frozen) deleted, id 5 born.
	si.delete(geom.R(3, 3, 4, 4), 2)
	si.delete(geom.R(5, 5, 6, 6), 3)
	si.insert(geom.R(9, 9, 10, 10), 5)

	wantLive := []int64{4, 5}
	items, _ := si.query(geom.R(0, 0, 10, 10))
	got := make([]int64, len(items))
	for i, it := range items {
		got[i] = it.Data
	}
	if len(got) != len(wantLive) || got[0] != wantLive[0] || got[1] != wantLive[1] {
		t.Fatalf("mid-repack query = %v, want %v", got, wantLive)
	}
	if si.Len() != 2 {
		t.Fatalf("Len = %d mid-repack, want 2", si.Len())
	}

	// Complete the merge by hand and swap, as repackOnce would.
	si.mu.RLock()
	tree := si.packMerged(si.packed, si.frozen, si.frozenL0, si.ts0)
	si.mu.RUnlock()
	si.mu.Lock()
	si.packed, si.stats = tree, tree.ComputeMetrics()
	delete(si.tombs, 1)
	si.frozen, si.frozenL0, si.ts0 = nil, nil, nil
	si.mu.Unlock()

	items, _ = si.query(geom.R(0, 0, 10, 10))
	got = got[:0]
	for _, it := range items {
		got = append(got, it.Data)
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("post-swap query = %v, want [4 5]", got)
	}
	if err := si.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// addRegion inserts a tuple whose object is a square region, so join
// predicates that imply intersection still find matches.
func addRegion(t *testing.T, rel *Relation, pic *picture.Picture, name string, x, y, half float64) storage.TupleID {
	t.Helper()
	oid := pic.AddRegion(name, geom.Poly(
		geom.Pt(x-half, y-half), geom.Pt(x+half, y-half),
		geom.Pt(x+half, y+half), geom.Pt(x-half, y+half),
	))
	id, err := rel.Insert(Tuple{S(name), S("ST"), I(0), L(pic.Name(), oid)})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestJuxtaposeMergedMatchesOracle(t *testing.T) {
	p := pager.OpenMem(512)
	t.Cleanup(func() { p.Close() })
	mk := func(name string, n int, seed int64) (*Relation, *picture.Picture) {
		rel, err := New(p, name, citySchema())
		if err != nil {
			t.Fatal(err)
		}
		pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			addRegion(t, rel, pic, randWord(rng), rng.Float64()*1000, rng.Float64()*1000, 20+rng.Float64()*40)
		}
		if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
			t.Fatal(err)
		}
		// Post-attach churn so both sides carry deltas and tombstones.
		var ids []storage.TupleID
		rel.Scan(func(id storage.TupleID, _ Tuple) bool { ids = append(ids, id); return true })
		rel.Spatial("us-map").SetAutoRepack(false)
		for i := 0; i < n/2; i++ {
			if rng.Intn(3) == 0 && len(ids) > 0 {
				k := rng.Intn(len(ids))
				if err := rel.Delete(ids[k]); err != nil {
					t.Fatal(err)
				}
				ids = append(ids[:k], ids[k+1:]...)
			} else {
				addRegion(t, rel, pic, randWord(rng), rng.Float64()*1000, rng.Float64()*1000, 20+rng.Float64()*40)
			}
		}
		return rel, pic
	}
	relA, picA := mk("a", 120, 10)
	relB, picB := mk("b", 90, 11)

	// Oracle: nested loop over live heap items. Overlapping implies
	// intersection, so the tree path may prune disjoint subtree pairs.
	pred := geom.Overlapping
	type pr struct{ a, b storage.TupleID }
	var want []pr
	relA.Scan(func(ida storage.TupleID, ta Tuple) bool {
		ra, ok := relA.locMBR(ta, picA)
		if !ok {
			return true
		}
		relB.Scan(func(idb storage.TupleID, tb Tuple) bool {
			rb, ok := relB.locMBR(tb, picB)
			if ok && pred(ra, rb) {
				want = append(want, pr{ida, idb})
			}
			return true
		})
		return true
	})
	if len(want) == 0 {
		t.Fatal("oracle found no pairs; widen the predicate")
	}
	for _, workers := range []int{1, 8} {
		got, _, err := relA.JuxtaposeSpatial("us-map", relB, "us-map", pred, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, oracle %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].A != want[i].a || got[i].B != want[i].b {
				t.Fatalf("workers=%d: pair %d = %v/%v, want %v/%v",
					workers, i, got[i].A, got[i].B, want[i].a, want[i].b)
			}
		}
	}
}

// TestConcurrentWritersReaders is the -race stress test: one writer
// mutates the delta while readers run merged batch searches and
// juxtapositions; at quiesce barriers the merged results must be
// bit-identical (rows and order) to a serial oracle re-scan, at
// parallelism 1 and 8.
func TestConcurrentWritersReaders(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 300, 5)
	si := rel.Spatial("us-map")
	si.SetDeltaThreshold(64) // keep background repacks churning
	windows := []geom.Rect{
		geom.R(0, 0, 1000, 1000),
		geom.R(50, 50, 450, 450),
		geom.R(600, 100, 900, 950),
		geom.R(10, 700, 300, 990),
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				par := 1
				if g%2 == 1 {
					par = 8
				}
				batches, _, err := rel.SearchAreaBatch("us-map", windows, geom.Overlapping, par)
				if err != nil {
					t.Error(err)
					return
				}
				for _, ids := range batches {
					for i := 1; i < len(ids); i++ {
						if !tupleIDLessT(ids[i-1], ids[i]) {
							t.Errorf("reader %d: ids not strictly ascending", g)
							return
						}
					}
				}
				// Self-join exercises the merged juxtaposition under the
				// same churn.
				if _, _, err := rel.JuxtaposeSpatial("us-map", rel, "us-map", geom.Overlapping, par); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	var live []storage.TupleID
	rel.Scan(func(id storage.TupleID, _ Tuple) bool { live = append(live, id); return true })
	next := 0
	for round := 0; round < 8; round++ {
		for i := 0; i < 80; i++ {
			if rng.Intn(4) == 0 && len(live) > 0 {
				k := rng.Intn(len(live))
				if err := rel.Delete(live[k]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:k], live[k+1:]...)
			} else {
				live = append(live, addCity(t, rel, pic, randWord(rng), "ST", int64(next), rng.Float64()*1000, rng.Float64()*1000))
				next++
			}
		}
		// Quiesce barrier: the writer is idle here, so the merged view
		// is stable (background repacks preserve it) and must equal the
		// serial oracle bit-for-bit.
		for _, par := range []int{1, 8} {
			batches, _, err := rel.SearchAreaBatch("us-map", windows, geom.Overlapping, par)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range windows {
				want := oracleSearch(t, rel, pic, w, geom.Overlapping)
				if !idsEqual(batches[i], want) {
					t.Fatalf("round %d par %d window %d: merged %d ids, oracle %d",
						round, par, i, len(batches[i]), len(want))
				}
			}
		}
	}
	close(stop)
	readers.Wait()
	si.WaitRepack()
	if err := si.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if si.Len() != len(live) {
		t.Fatalf("live = %d, tracker %d", si.Len(), len(live))
	}
	t.Logf("stress: %d repacks, %d live, delta=%d tombs=%d",
		si.Repacks(), si.Len(), si.DeltaLen(), si.TombstoneCount())
}

// tupleIDLessT mirrors the psql planner's canonical order for test
// assertions.
func tupleIDLessT(a, b storage.TupleID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}

func TestCostSnapshot(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 100, 6)
	si := rel.Spatial("us-map")
	si.SetAutoRepack(false)
	snap := si.CostSnapshot()
	if snap.DeltaItems != 0 || snap.Tombstones != 0 || snap.InPlace || snap.PendingInserts != 0 {
		t.Fatalf("fresh snapshot not clean: %+v", snap)
	}
	for i := 0; i < 20; i++ {
		addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	var victim storage.TupleID
	rel.Scan(func(id storage.TupleID, _ Tuple) bool { victim = id; return false })
	if err := rel.Delete(victim); err != nil {
		t.Fatal(err)
	}
	snap = si.CostSnapshot()
	// The 20 inserts sit in the L0 buffer: counted as delta items (read
	// amplification is per item there) but contributing no tree nodes.
	if snap.DeltaItems != 20 || snap.DeltaNodes != 0 || snap.Tombstones != 1 {
		t.Fatalf("delta snapshot: %+v", snap)
	}
	if snap.PendingInserts != 20 || snap.PendingDeletes != 1 {
		t.Fatalf("pending counters: %+v", snap)
	}
	// In-place mode: counters keep accruing, flagged InPlace.
	si.SetWritePolicy(WriteInPlace)
	addCity(t, rel, pic, randWord(rng), "ST", 0, 1, 1)
	snap = si.CostSnapshot()
	if !snap.InPlace || snap.PendingInserts != 21 {
		t.Fatalf("in-place snapshot: %+v", snap)
	}
	// Repack clears everything.
	si.SetWritePolicy(WriteDelta)
	si.RepackNow(true)
	snap = si.CostSnapshot()
	if snap.DeltaItems != 0 || snap.Tombstones != 0 || snap.PendingInserts != 0 || snap.PendingDeletes != 0 {
		t.Fatalf("post-repack snapshot: %+v", snap)
	}
}

func TestWriteInPlacePolicy(t *testing.T) {
	rel, pic, rng := newSpatialFixture(t, 50, 7)
	rel.SetSpatialWritePolicy(WriteInPlace)
	si := rel.Spatial("us-map")
	packed := si.PackedTree()
	for i := 0; i < 30; i++ {
		addCity(t, rel, pic, randWord(rng), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	if si.PackedTree() != packed {
		t.Fatal("in-place insert replaced the packed tree")
	}
	if packed.Len() != 80 || si.DeltaLen() != 0 {
		t.Fatalf("in-place: packed=%d delta=%d", packed.Len(), si.DeltaLen())
	}
	w := geom.R(0, 0, 1000, 1000)
	got, _, err := rel.SearchArea("us-map", w, geom.CoveredBy)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleSearch(t, rel, pic, w, geom.CoveredBy); !idsEqual(got, want) {
		t.Fatalf("in-place search: got %d want %d", len(got), len(want))
	}
}
