package relation

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/storage"
)

// shardCounts is the oracle matrix from the issue: sharded results
// must be bit-identical across all of these and row-identical to the
// unsharded execution.
var shardCounts = []int{1, 2, 4, 8}

// newShardedCities builds a sharded cities relation over fresh
// in-memory pagers.
func newShardedCities(t *testing.T, shards int) *Relation {
	t.Helper()
	pagers := make([]*pager.Pager, shards)
	for i := range pagers {
		pagers[i] = pager.OpenMem(512)
	}
	t.Cleanup(func() {
		for _, p := range pagers {
			p.Close()
		}
	})
	rel, err := NewSharded(pagers, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// shardTwins builds one unsharded relation plus sharded twins at every
// shard count, all holding identical tuples over one shared picture.
// Returns the twins and the per-twin insertion-order TupleIDs (index
// aligned across twins: ids[k][i] is the i-th inserted tuple).
func shardTwins(t *testing.T, n int, seed int64) (map[int]*Relation, map[int][]storage.TupleID, *picture.Picture) {
	t.Helper()
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	rng := rand.New(rand.NewSource(seed))
	type city struct {
		name string
		pop  int64
		oid  picture.ObjectID
	}
	cities := make([]city, n)
	for i := range cities {
		// Clustered placement: most points land in Gaussian blobs so
		// Hilbert routing produces uneven, realistic shard extents.
		var x, y float64
		switch i % 3 {
		case 0:
			x, y = 150+rng.NormFloat64()*60, 200+rng.NormFloat64()*60
		case 1:
			x, y = 800+rng.NormFloat64()*80, 700+rng.NormFloat64()*80
		default:
			x, y = rng.Float64()*1000, rng.Float64()*1000
		}
		name := fmt.Sprintf("c%04d-%s", i, randWord(rng))
		// Small regions rather than points so juxtaposition predicates
		// have real overlaps to find.
		x, y = clamp01k(x), clamp01k(y)
		half := 4 + rng.Float64()*18
		oid := pic.AddRegion(name, geom.Poly(
			geom.Pt(x-half, y-half), geom.Pt(x+half, y-half),
			geom.Pt(x+half, y+half), geom.Pt(x-half, y+half),
		))
		cities[i] = city{name: name, pop: int64(i * 37 % 9000), oid: oid}
	}

	twins := make(map[int]*Relation)
	ids := make(map[int][]storage.TupleID)
	// Key 0 is the unsharded oracle.
	p := pager.OpenMem(512)
	t.Cleanup(func() { p.Close() })
	un, err := New(p, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	twins[0] = un
	for _, k := range shardCounts {
		twins[k] = newShardedCities(t, k)
	}
	for k, rel := range twins {
		for _, c := range cities {
			id, err := rel.Insert(Tuple{S(c.name), S("ST"), I(c.pop), L("us-map", c.oid)})
			if err != nil {
				t.Fatalf("twin %d: %v", k, err)
			}
			ids[k] = append(ids[k], id)
		}
		if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
			t.Fatalf("twin %d: %v", k, err)
		}
	}
	return twins, ids, pic
}

func clamp01k(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1000 {
		return 1000
	}
	return v
}

// oracleWindows is a deterministic mix of clustered and broad windows.
var oracleWindows = []geom.Rect{
	geom.R(100, 150, 220, 280),  // inside blob A
	geom.R(700, 600, 950, 850),  // inside blob B
	geom.R(0, 0, 1000, 1000),    // everything
	geom.R(480, 480, 520, 520),  // sparse center
	geom.R(-50, -50, 10, 10),    // nearly empty corner
	geom.R(300, 0, 600, 1000),   // vertical stripe
	geom.R(140, 190, 820, 720),  // spans both blobs
	geom.R(999, 999, 1000, 1000), // boundary sliver
}

// resolveNames materializes result ids into tuple names — the
// cross-twin comparison key (TupleIDs differ between the unsharded
// heap addressing and the sharded sequence numbering, but for these
// workloads both orders are insertion order, so positions align).
func resolveNames(t *testing.T, rel *Relation, ids []storage.TupleID) []string {
	t.Helper()
	out := make([]string, len(ids))
	for i, id := range ids {
		tu, err := rel.Get(id)
		if err != nil {
			t.Fatalf("resolve %v: %v", id, err)
		}
		out[i] = tu[0].Str
	}
	return out
}

func namesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyShardOracle checks every window against the unsharded oracle
// (row-for-row by resolved tuple) and requires bit-identical TupleID
// streams across all sharded twins (sequence ids are shard-count
// independent).
func verifyShardOracle(t *testing.T, twins map[int]*Relation, stage string) {
	t.Helper()
	for wi, w := range oracleWindows {
		oracleIDs, _, err := twins[0].SearchArea("us-map", w, geom.Overlapping)
		if err != nil {
			t.Fatalf("%s window %d: oracle: %v", stage, wi, err)
		}
		want := resolveNames(t, twins[0], oracleIDs)
		var ref []storage.TupleID
		for _, k := range shardCounts {
			ids, _, err := twins[k].SearchArea("us-map", w, geom.Overlapping)
			if err != nil {
				t.Fatalf("%s window %d shards=%d: %v", stage, wi, k, err)
			}
			got := resolveNames(t, twins[k], ids)
			if !namesEqual(got, want) {
				t.Fatalf("%s window %d shards=%d: rows diverge from unsharded\n got %v\nwant %v",
					stage, wi, k, got, want)
			}
			if ref == nil {
				ref = ids
			} else if !idsEqual(ids, ref) {
				t.Fatalf("%s window %d shards=%d: TupleID stream differs from shards=%d",
					stage, wi, k, shardCounts[0])
			}
		}
	}

	// Batched path at parallelism 1 and 8 must match the serial calls.
	for _, par := range []int{1, 8} {
		oracleBatches, _, err := twins[0].SearchAreaBatch("us-map", oracleWindows, geom.Overlapping, par)
		if err != nil {
			t.Fatalf("%s: oracle batch par=%d: %v", stage, par, err)
		}
		for _, k := range shardCounts {
			batches, _, err := twins[k].SearchAreaBatch("us-map", oracleWindows, geom.Overlapping, par)
			if err != nil {
				t.Fatalf("%s shards=%d par=%d: %v", stage, k, par, err)
			}
			for wi := range oracleWindows {
				got := resolveNames(t, twins[k], batches[wi])
				want := resolveNames(t, twins[0], oracleBatches[wi])
				if !namesEqual(got, want) {
					t.Fatalf("%s shards=%d par=%d window %d: batch rows diverge", stage, k, par, wi)
				}
			}
		}
	}

	// Full enumeration (the disjoined path) must align too.
	oracleItems, _, err := twins[0].SpatialItems("us-map")
	if err != nil {
		t.Fatalf("%s: oracle items: %v", stage, err)
	}
	for _, k := range shardCounts {
		items, _, err := twins[k].SpatialItems("us-map")
		if err != nil {
			t.Fatalf("%s shards=%d: items: %v", stage, k, err)
		}
		if len(items) != len(oracleItems) {
			t.Fatalf("%s shards=%d: %d items, unsharded %d", stage, k, len(items), len(oracleItems))
		}
		for i := range items {
			if items[i].Rect != oracleItems[i].Rect {
				t.Fatalf("%s shards=%d: item %d rect %v, unsharded %v",
					stage, k, i, items[i].Rect, oracleItems[i].Rect)
			}
		}
	}
}

// TestShardedSearchOracle is the issue's oracle matrix: identical
// content at shard counts 1/2/4/8 vs the unsharded relation, checked
// fresh, after deletes (all deletes after all inserts, so both
// numbering schemes remain insertion-ordered), and after a repack.
func TestShardedSearchOracle(t *testing.T) {
	twins, ids, _ := shardTwins(t, 600, 42)
	verifyShardOracle(t, twins, "fresh")

	// Delete every 7th tuple — positionally, so every twin loses the
	// same logical rows.
	for k, rel := range twins {
		for i := 0; i < 600; i += 7 {
			if err := rel.Delete(ids[k][i]); err != nil {
				t.Fatalf("twin %d: delete %d: %v", k, i, err)
			}
		}
	}
	verifyShardOracle(t, twins, "deleted")

	// Repack every twin (per-shard repacks for the sharded ones) and
	// re-verify from the swapped roots.
	for k, rel := range twins {
		if err := rel.RepackPicture("us-map", pack.Options{}); err != nil {
			t.Fatalf("twin %d: repack: %v", k, err)
		}
		if got := rel.Len(); got != 600-86 {
			t.Fatalf("twin %d: Len=%d after deletes", k, got)
		}
	}
	verifyShardOracle(t, twins, "repacked")
}

// TestShardedJuxtaposeOracle joins two sharded relations at every
// shard count and requires the pair stream to resolve to the same
// logical pairs as the unsharded join, in the same canonical order.
func TestShardedJuxtaposeOracle(t *testing.T) {
	aTwins, _, _ := shardTwins(t, 180, 7)
	bTwins, _, _ := shardTwins(t, 130, 11)
	for _, par := range []int{1, 8} {
		oracle, _, err := aTwins[0].JuxtaposeSpatial("us-map", bTwins[0], "us-map", geom.Overlapping, par)
		if err != nil {
			t.Fatalf("oracle par=%d: %v", par, err)
		}
		if len(oracle) == 0 {
			t.Fatal("vacuous join")
		}
		var wantA, wantB []storage.TupleID
		for _, p := range oracle {
			wantA = append(wantA, p.A)
			wantB = append(wantB, p.B)
		}
		wantAN := resolveNames(t, aTwins[0], wantA)
		wantBN := resolveNames(t, bTwins[0], wantB)
		for _, k := range shardCounts {
			pairs, _, err := aTwins[k].JuxtaposeSpatial("us-map", bTwins[k], "us-map", geom.Overlapping, par)
			if err != nil {
				t.Fatalf("shards=%d par=%d: %v", k, par, err)
			}
			if len(pairs) != len(oracle) {
				t.Fatalf("shards=%d par=%d: %d pairs, unsharded %d", k, par, len(pairs), len(oracle))
			}
			var gotA, gotB []storage.TupleID
			for _, p := range pairs {
				gotA = append(gotA, p.A)
				gotB = append(gotB, p.B)
			}
			if !namesEqual(resolveNames(t, aTwins[k], gotA), wantAN) ||
				!namesEqual(resolveNames(t, bTwins[k], gotB), wantBN) {
				t.Fatalf("shards=%d par=%d: join pairs diverge from unsharded", k, par)
			}
		}
	}
}

// TestShardedScanAndBatch verifies the non-spatial read paths: Scan
// order, Get/GetBatch resolution, Len, and B-tree lookups over the
// sharded route table.
func TestShardedScanAndBatch(t *testing.T) {
	twins, ids, _ := shardTwins(t, 200, 3)
	for _, k := range shardCounts {
		rel := twins[k]
		if rel.Len() != 200 {
			t.Fatalf("shards=%d: Len=%d", k, rel.Len())
		}
		// Scan must yield ascending insertion order.
		var scanned []storage.TupleID
		if err := rel.Scan(func(id storage.TupleID, _ Tuple) bool {
			scanned = append(scanned, id)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !idsEqual(scanned, ids[k]) {
			t.Fatalf("shards=%d: scan order != insertion order", k)
		}
		// GetBatch at several worker counts, against Get.
		for _, workers := range []int{1, 4} {
			tuples, err := rel.GetBatch(ids[k], nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i, id := range ids[k] {
				want, err := rel.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				if tuples[i][0].Str != want[0].Str {
					t.Fatalf("shards=%d workers=%d: batch[%d] = %q, Get %q",
						k, workers, i, tuples[i][0].Str, want[0].Str)
				}
			}
		}
	}
	// B-tree index over a sharded relation resolves through routes.
	rel := twins[4]
	if err := rel.CreateIndex("city"); err != nil {
		t.Fatal(err)
	}
	want, err := rel.Get(ids[4][17])
	if err != nil {
		t.Fatal(err)
	}
	found, err := rel.LookupEqual("city", want[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0] != ids[4][17] {
		t.Fatalf("LookupEqual(%q) = %v, want [%v]", want[0].Str, found, ids[4][17])
	}
}

// TestShardedReopen drops the in-memory Relation and reattaches via
// OpenSharded over the same pagers: the route table rebuilt from the
// sequence prefixes must reproduce ids, order, and contents exactly.
func TestShardedReopen(t *testing.T) {
	pagers := make([]*pager.Pager, 4)
	for i := range pagers {
		pagers[i] = pager.OpenMem(512)
	}
	t.Cleanup(func() {
		for _, p := range pagers {
			p.Close()
		}
	})
	rel, err := NewSharded(pagers, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	rng := rand.New(rand.NewSource(9))
	var ids []storage.TupleID
	for i := 0; i < 150; i++ {
		ids = append(ids, addCity(t, rel, pic, fmt.Sprintf("c%03d", i), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000))
	}
	for i := 0; i < 150; i += 5 {
		if err := rel.Delete(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	firsts := rel.ShardHeapFirstPages()

	re, err := OpenSharded(pagers, "cities", citySchema(), firsts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != rel.Len() {
		t.Fatalf("reopened Len=%d, want %d", re.Len(), rel.Len())
	}
	var before, after []string
	collect := func(r *Relation, out *[]string) {
		if err := r.Scan(func(id storage.TupleID, tu Tuple) bool {
			*out = append(*out, fmt.Sprintf("%v=%s", id, tu[0].Str))
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	collect(rel, &before)
	collect(re, &after)
	if !namesEqual(before, after) {
		t.Fatalf("reopened scan diverges:\nbefore %v\nafter  %v", before, after)
	}
	if err := re.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
	if err := re.CheckShards(4); err != nil {
		t.Fatal(err)
	}
	// A new insert after reopen continues the sequence: no id reuse.
	nid := addCity(t, re, pic, "fresh", "ST", 1, 500, 500)
	for _, id := range ids {
		if id == nid {
			t.Fatalf("reopened relation reissued id %v", nid)
		}
	}
}

// TestShardedDuplicateSequenceDetected forges the one corruption the
// route rebuild must catch: the same global sequence stored on two
// shards.
func TestShardedDuplicateSequenceDetected(t *testing.T) {
	pagers := []*pager.Pager{pager.OpenMem(64), pager.OpenMem(64)}
	t.Cleanup(func() {
		for _, p := range pagers {
			p.Close()
		}
	})
	rel, err := NewSharded(pagers, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	addCity(t, rel, pic, "one", "ST", 1, 100, 100)

	// Copy shard A's record (with its sequence prefix) into shard B,
	// flipping a payload byte so the two copies differ. A byte-identical
	// duplicate is the legitimate artifact of an interrupted shard split
	// and is repaired on reopen (TestShardedSplitDuplicateRepaired); a
	// differing one is real corruption.
	var rec []byte
	srcShard := -1
	for s, sh := range rel.shardList() {
		sh.heap.Scan(func(_ storage.TupleID, r []byte) bool {
			rec = append([]byte(nil), r...)
			srcShard = s
			return false
		})
		if rec != nil {
			break
		}
	}
	if rec == nil {
		t.Fatal("no record found")
	}
	rec[len(rec)-1] ^= 0xff
	dst := rel.shardList()[1-srcShard]
	if _, err := dst.heap.Insert(rec); err != nil {
		t.Fatal(err)
	}

	_, err = OpenSharded(pagers, "cities", citySchema(), rel.ShardHeapFirstPages(), nil)
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("differing duplicate sequence not reported as corruption: %v", err)
	}
}

// TestShardedSplitDuplicateRepaired forges the durable artifact of a
// shard split that crashed after the destination's commit but before
// the source's deletions: the same sequence byte-identical on two
// shards. Reopen must repair it — adopt the higher shard's copy, drop
// the stale source record — and present each tuple exactly once.
func TestShardedSplitDuplicateRepaired(t *testing.T) {
	pagers := []*pager.Pager{pager.OpenMem(64), pager.OpenMem(64)}
	t.Cleanup(func() {
		for _, p := range pagers {
			p.Close()
		}
	})
	rel, err := NewSharded(pagers, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	addCity(t, rel, pic, "one", "ST", 1, 100, 100)
	addCity(t, rel, pic, "two", "ST", 2, 900, 900)
	addCity(t, rel, pic, "three", "ST", 3, 500, 500)
	want := rel.Len()

	// Copy a record verbatim into the other shard — the migration
	// insert whose matching source delete never became durable. Repair
	// keeps whichever copy lives on the higher shard, so either
	// direction exercises it.
	shards := rel.shardList()
	var rec []byte
	srcShard := -1
	for s, sh := range shards {
		sh.heap.Scan(func(_ storage.TupleID, r []byte) bool {
			rec = append([]byte(nil), r...)
			srcShard = s
			return false
		})
		if rec != nil {
			break
		}
	}
	if rec == nil {
		t.Fatal("no record found")
	}
	if _, err := shards[1-srcShard].heap.Insert(rec); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSharded(pagers, "cities", citySchema(), rel.ShardHeapFirstPages(), nil)
	if err != nil {
		t.Fatalf("byte-identical split duplicate not repaired: %v", err)
	}
	if re.Len() != want {
		t.Fatalf("repaired relation has %d live tuples, want %d", int64(re.Len()), want)
	}
	seen := map[string]int{}
	if err := re.Scan(func(_ storage.TupleID, tu Tuple) bool {
		seen[tu[0].Str]++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"one", "two", "three"} {
		if seen[name] != 1 {
			t.Fatalf("tuple %q seen %d times after repair", name, seen[name])
		}
	}
	// The stale source record is gone from shard 0's heap: a second
	// reopen finds no duplicate to repair and the same live count.
	re2, err := OpenSharded(pagers, "cities", citySchema(), rel.ShardHeapFirstPages(), nil)
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	if re2.Len() != want {
		t.Fatalf("second reopen has %d live tuples, want %d", int64(re2.Len()), want)
	}
}

// TestShardFanoutPruning: a clustered window must scatter to fewer
// shards than the directory holds, while the full extent hits every
// populated shard — the sub-linear fan-out the Hilbert routing buys.
func TestShardFanoutPruning(t *testing.T) {
	rel := newShardedCities(t, 8)
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	// Attach before inserting so routing resolves locations through the
	// picture (Hilbert placement) instead of the hash fallback — tight
	// per-shard MBRs are what make pruning possible.
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	// A dense uniform grid: every shard's key range is populated and
	// shard MBRs stay tight around their Hilbert runs.
	for gy := 0; gy < 40; gy++ {
		for gx := 0; gx < 40; gx++ {
			x, y := float64(gx)*25+12, float64(gy)*25+12
			addCity(t, rel, pic, fmt.Sprintf("g%02d-%02d", gx, gy), "ST", 1, x, y)
		}
	}
	rel.WaitRepacks()
	dir, err := rel.ShardDirectory("us-map")
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 8 {
		t.Fatalf("directory has %d entries", len(dir))
	}
	total := 0
	for s, e := range dir {
		if e.Shard != s {
			t.Fatalf("directory entry %d labeled shard %d", s, e.Shard)
		}
		if s > 0 && dir[s-1].KeyHi != e.KeyLo {
			t.Fatalf("key ranges not contiguous at shard %d: %d != %d", s, dir[s-1].KeyHi, e.KeyLo)
		}
		if e.Items == 0 {
			t.Fatalf("shard %d empty under a uniform grid", s)
		}
		total += e.Items
	}
	if dir[0].KeyLo != 0 || dir[7].KeyHi != 1<<pack.HilbertKeyBits {
		t.Fatalf("key ranges do not cover the key space: [%d, %d)", dir[0].KeyLo, dir[7].KeyHi)
	}
	if total != 1600 {
		t.Fatalf("directory items sum to %d, want 1600", total)
	}

	hit, n, err := rel.ShardFanout("us-map", geom.R(10, 10, 80, 80))
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("fanout total = %d", n)
	}
	if hit >= n {
		t.Fatalf("clustered window hit all %d shards — no pruning", n)
	}
	full, _, err := rel.ShardFanout("us-map", geom.R(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if full != n {
		t.Fatalf("full-extent window hit %d/%d shards", full, n)
	}
	t.Logf("clustered window fan-out: %d/%d shards", hit, n)
}

// TestShardedConcurrentWritersReaders is the -race stress: writers
// drive concurrent inserts (routed across shards) and deletes while
// readers scatter window queries, scans, and batched gets across
// shards. Invariants: no torn reads (every scanned tuple validates),
// queries never error, and the final state checks clean.
func TestShardedConcurrentWritersReaders(t *testing.T) {
	rel := newShardedCities(t, 4)
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	// Seed enough content that readers always see data, then attach so
	// spatial writes flow through the per-shard LSM sides.
	var seeded []storage.TupleID
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		seeded = append(seeded, addCity(t, rel, pic, fmt.Sprintf("seed%03d", i), "ST", int64(i), rng.Float64()*1000, rng.Float64()*1000))
	}
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 150
	const readers = 4
	// Picture mutation is not synchronized — pre-register every object
	// so the goroutines only exercise the relation's own locking.
	oids := make([][]picture.ObjectID, writers)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < perWriter; i++ {
			name := fmt.Sprintf("w%d-%03d", w, i)
			oids[w] = append(oids[w], pic.AddPoint(name, geom.Pt(rng.Float64()*1000, rng.Float64()*1000)))
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("w%d-%03d", w, i)
				id, err := rel.Insert(Tuple{S(name), S("ST"), I(int64(i)), L("us-map", oids[w][i])})
				if err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if i%10 == 5 {
					if err := rel.Delete(id); err != nil {
						errCh <- fmt.Errorf("writer %d: delete: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				switch r % 3 {
				case 0:
					w := geom.R(rng.Float64()*800, rng.Float64()*800, 1000, 1000)
					ids, _, err := rel.SearchArea("us-map", w, geom.Overlapping)
					if err != nil {
						errCh <- fmt.Errorf("reader %d: search: %w", r, err)
						return
					}
					for i := 1; i < len(ids); i++ {
						if ids[i].Int64() <= ids[i-1].Int64() {
							errCh <- fmt.Errorf("reader %d: result ids not ascending", r)
							return
						}
					}
				case 1:
					n := 0
					err := rel.Scan(func(_ storage.TupleID, tu Tuple) bool {
						if len(tu) != 4 {
							errCh <- fmt.Errorf("reader %d: torn tuple", r)
							return false
						}
						n++
						return n < 500
					})
					if err != nil {
						errCh <- fmt.Errorf("reader %d: scan: %w", r, err)
						return
					}
				default:
					if _, err := rel.GetBatch(seeded, nil, 4); err != nil {
						errCh <- fmt.Errorf("reader %d: batch: %w", r, err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	rg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	rel.WaitRepacks()
	if err := rel.Check(); err != nil {
		t.Fatal(err)
	}
	wantLive := 200 + writers*perWriter - writers*(perWriter/10)
	if got := rel.Len(); got != wantLive {
		t.Fatalf("Len=%d after stress, want %d", got, wantLive)
	}
}

// TestShardedCostSnapshotPrunes: the planner's merged snapshot over a
// clustered window must be cheaper than the full merge — only
// overlapping shards contribute.
func TestShardedCostSnapshotPrunes(t *testing.T) {
	rel := newShardedCities(t, 8)
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	for gy := 0; gy < 30; gy++ {
		for gx := 0; gx < 30; gx++ {
			addCity(t, rel, pic, fmt.Sprintf("g%d-%d", gx, gy), "ST", 1, float64(gx)*33+5, float64(gy)*33+5)
		}
	}
	// Pack the LSM deltas so per-shard Items reflects the packed trees.
	if err := rel.RepackPicture("us-map", pack.Options{}); err != nil {
		t.Fatal(err)
	}
	all, ok := rel.SpatialCostSnapshot("us-map", nil)
	if !ok {
		t.Fatal("no snapshot")
	}
	if all.Stats.Items != 900 {
		t.Fatalf("full snapshot items = %d", all.Stats.Items)
	}
	clustered, ok := rel.SpatialCostSnapshot("us-map", []geom.Rect{geom.R(5, 5, 60, 60)})
	if !ok {
		t.Fatal("no clustered snapshot")
	}
	if clustered.Stats.Items >= all.Stats.Items {
		t.Fatalf("clustered snapshot items %d not pruned below %d", clustered.Stats.Items, all.Stats.Items)
	}
}
