package relation

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/picture"
)

// Tuple wire format (heap records):
//
//	uvarint column count, then per column:
//	  byte type tag
//	  int:    8 bytes little-endian two's complement
//	  float:  8 bytes little-endian IEEE-754
//	  string: uvarint length + bytes
//	  loc:    uvarint picture-name length + bytes, 8-byte object id

// EncodeTuple serializes t.
func EncodeTuple(t Tuple) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(t)))
	for _, v := range t {
		buf = append(buf, byte(v.Type))
		switch v.Type {
		case TypeInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int))
		case TypeFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case TypeString:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		case TypeLoc:
			buf = binary.AppendUvarint(buf, uint64(len(v.Loc.Picture)))
			buf = append(buf, v.Loc.Picture...)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Loc.Object))
		}
	}
	return buf
}

// DecodeTuple parses a record produced by EncodeTuple.
func DecodeTuple(rec []byte) (Tuple, error) { return DecodeTupleCols(rec, nil) }

// DecodeTupleCols parses a record, materializing only the columns whose
// need flag is set. Skipped columns keep their type tag but carry a
// zero payload — in particular no string or picture-name bytes are
// copied out of rec, which is what makes batch materialization over
// pinned pages cheap when a query touches a few columns of a wide
// tuple. A nil need (or one shorter than the tuple) decodes the
// remaining columns, so DecodeTupleCols(rec, nil) == DecodeTuple(rec).
// Validation is not relaxed: a corrupt record fails the same way
// whether or not the broken column was needed.
func DecodeTupleCols(rec []byte, need []bool) (Tuple, error) {
	n, off := binary.Uvarint(rec)
	if off <= 0 {
		return nil, fmt.Errorf("relation: corrupt tuple header")
	}
	// Every column takes at least one byte, so a count exceeding the
	// remaining bytes is corrupt — and must be rejected before it sizes
	// an allocation.
	if n > uint64(len(rec)-off) {
		return nil, fmt.Errorf("relation: corrupt tuple header: %d columns in %d bytes", n, len(rec))
	}
	pos := off
	out := make(Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(rec) {
			return nil, fmt.Errorf("relation: truncated tuple at column %d", i)
		}
		want := need == nil || i >= uint64(len(need)) || need[i]
		typ := Type(rec[pos])
		pos++
		var v Value
		v.Type = typ
		switch typ {
		case TypeInt, TypeFloat:
			if pos+8 > len(rec) {
				return nil, fmt.Errorf("relation: truncated numeric column %d", i)
			}
			if want {
				bits := binary.LittleEndian.Uint64(rec[pos:])
				if typ == TypeInt {
					v.Int = int64(bits)
				} else {
					v.Float = math.Float64frombits(bits)
				}
			}
			pos += 8
		case TypeString:
			l, w := binary.Uvarint(rec[pos:])
			// Bound l before converting: a 64-bit length can wrap int
			// and slip past the range check as a negative slice index.
			if w <= 0 || l > uint64(len(rec)) || pos+w+int(l) > len(rec) {
				return nil, fmt.Errorf("relation: truncated string column %d", i)
			}
			pos += w
			if want {
				v.Str = string(rec[pos : pos+int(l)])
			}
			pos += int(l)
		case TypeLoc:
			l, w := binary.Uvarint(rec[pos:])
			if w <= 0 || l > uint64(len(rec)) || pos+w+int(l)+8 > len(rec) {
				return nil, fmt.Errorf("relation: truncated loc column %d", i)
			}
			pos += w
			if want {
				v.Loc.Picture = string(rec[pos : pos+int(l)])
				v.Loc.Object = picture.ObjectID(binary.LittleEndian.Uint64(rec[pos+int(l):]))
			}
			pos += int(l) + 8
		default:
			return nil, fmt.Errorf("relation: unknown type tag %d in column %d", typ, i)
		}
		out = append(out, v)
	}
	return out, nil
}

// IndexKey returns an order-preserving byte encoding of v:
// bytes.Compare on keys matches Value.Compare on values of the same
// type. Used as B-tree keys for alphanumeric indexes.
func IndexKey(v Value) []byte {
	switch v.Type {
	case TypeInt:
		// Flip the sign bit: two's-complement order becomes unsigned
		// byte order.
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.Int)^(1<<63))
		return b[:]
	case TypeFloat:
		bits := math.Float64bits(v.Float)
		// IEEE-754 totally ordered encoding: flip all bits of
		// negatives, flip only the sign bit of non-negatives.
		if bits>>63 == 1 {
			bits = ^bits
		} else {
			bits ^= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return b[:]
	case TypeString:
		return []byte(v.Str)
	case TypeLoc:
		key := append([]byte(v.Loc.Picture), 0)
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.Loc.Object))
		return append(key, b[:]...)
	default:
		return nil
	}
}

// IndexKeySuccessor returns the smallest key strictly greater than
// every key equal to k: used as the exclusive upper bound for
// equality scans.
func IndexKeySuccessor(k []byte) []byte {
	return append(append([]byte(nil), k...), 0)
}
