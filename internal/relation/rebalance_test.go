package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/storage"
)

func TestEvenKeyRangesAndShardForKey(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		ranges := evenKeyRanges(n)
		if len(ranges) != n {
			t.Fatalf("n=%d: %d ranges", n, len(ranges))
		}
		if ranges[0].Lo != 0 || ranges[n-1].Hi != 1<<pack.HilbertKeyBits {
			t.Fatalf("n=%d: ranges do not span the key space: %v", n, ranges)
		}
		for s := 1; s < n; s++ {
			if ranges[s].Lo != ranges[s-1].Hi {
				t.Fatalf("n=%d: gap between shard %d and %d: %v", n, s-1, s, ranges)
			}
		}
		// Every key routes to the shard whose range holds it.
		for s, kr := range ranges {
			if got := shardForKey(ranges, kr.Lo); got != s {
				t.Fatalf("n=%d: key %d -> shard %d, want %d", n, kr.Lo, got, s)
			}
			if got := shardForKey(ranges, kr.Hi-1); got != s {
				t.Fatalf("n=%d: key %d -> shard %d, want %d", n, kr.Hi-1, got, s)
			}
		}
	}
	// An out-of-range key (degenerate extents can quantize past the
	// top) lands on the shard owning the top of the space, even after a
	// split reorders Hi values.
	ranges := []KeyRange{{Lo: 0, Hi: 100}, {Lo: 100, Hi: 1 << 32}, {Lo: 50, Hi: 100}}
	if got := shardForKey(ranges, 1<<32); got != 1 {
		t.Fatalf("overflow key -> shard %d, want 1", got)
	}
}

// newHilbertShardedCities builds a k-shard cities relation with the picture
// attached BEFORE inserts, so routing uses Hilbert keys.
func newHilbertShardedCities(t *testing.T, k int) (*Relation, *picture.Picture) {
	t.Helper()
	pagers := make([]*pager.Pager, k)
	for i := range pagers {
		pagers[i] = pager.OpenMem(64)
	}
	t.Cleanup(func() {
		for _, p := range pagers {
			p.Close()
		}
	})
	rel, err := NewSharded(pagers, "cities", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	return rel, pic
}

func TestShardBalanceAndMostLoaded(t *testing.T) {
	rel, pic := newHilbertShardedCities(t, 4)
	// Clustered corner: everything near the origin shares a narrow
	// Hilbert prefix and lands on one shard.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 120; i++ {
		addCity(t, rel, pic, fmt.Sprintf("c%03d", i), "ST", int64(i), rng.Float64()*80, rng.Float64()*80)
	}
	infos, imbalance := rel.ShardBalance()
	if len(infos) != 4 {
		t.Fatalf("%d balance entries", len(infos))
	}
	total := int64(0)
	for _, in := range infos {
		total += in.Items
	}
	if total != 120 {
		t.Fatalf("balance counts %d tuples, want 120", total)
	}
	if imbalance < 3.0 {
		t.Fatalf("corner cluster imbalance %.2f, want >= 3 (all on one shard)", imbalance)
	}
	s, ok := rel.MostLoadedShard(2.0, 10)
	if !ok {
		t.Fatal("MostLoadedShard found nothing over factor 2")
	}
	if infos[s].Items*2 < total {
		t.Fatalf("most loaded shard %d holds only %d of %d", s, infos[s].Items, total)
	}
	if _, ok := rel.MostLoadedShard(2.0, 1000); ok {
		t.Fatal("minTuples=1000 should suppress the split")
	}
	// Unsharded relations report nothing.
	u, _ := newCities(t)
	if infos, f := u.ShardBalance(); infos != nil || f != 0 {
		t.Fatal("unsharded ShardBalance not empty")
	}
}

// TestSplitShardMovesMedianUpperHalf checks the relation-level split
// contract: ranges partition at the occupancy median, live counts
// follow the moved tuples, results stay identical, and FinishSplit
// leaves the source heap consistent with the route table (Check-clean).
func TestSplitShardMovesMedianUpperHalf(t *testing.T) {
	rel, pic := newHilbertShardedCities(t, 2)
	rng := rand.New(rand.NewSource(9))
	var ids []storage.TupleID
	for i := 0; i < 200; i++ {
		// Hot corner plus a uniform sprinkle.
		x, y := rng.Float64()*100, rng.Float64()*100
		if i%10 == 0 {
			x, y = rng.Float64()*1000, rng.Float64()*1000
		}
		ids = append(ids, addCity(t, rel, pic, fmt.Sprintf("c%03d", i), "ST", int64(i), x, y))
	}
	src, ok := rel.MostLoadedShard(1.2, 10)
	if !ok {
		t.Fatal("no overloaded shard")
	}
	var before []string
	if err := rel.Scan(func(id storage.TupleID, tu Tuple) bool {
		before = append(before, fmt.Sprintf("%v=%s", id, tu[0].Str))
		return true
	}); err != nil {
		t.Fatal(err)
	}

	pgr := pager.OpenMem(64)
	t.Cleanup(func() { pgr.Close() })
	dst, pending, err := rel.SplitShard(src, pgr)
	if err != nil {
		t.Fatal(err)
	}
	if dst != 2 || rel.ShardCount() != 3 {
		t.Fatalf("dst=%d count=%d", dst, rel.ShardCount())
	}
	if pending.Moved() == 0 {
		t.Fatal("split moved nothing")
	}
	infos, _ := rel.ShardBalance()
	if infos[dst].Items != int64(pending.Moved()) {
		t.Fatalf("dst live count %d, moved %d", infos[dst].Items, pending.Moved())
	}
	if infos[src].KeyHi != infos[dst].KeyLo {
		t.Fatalf("ranges do not meet: src.Hi=%d dst.Lo=%d", infos[src].KeyHi, infos[dst].KeyLo)
	}
	if err := rel.FinishSplit(pending); err != nil {
		t.Fatal(err)
	}
	var after []string
	if err := rel.Scan(func(id storage.TupleID, tu Tuple) bool {
		after = append(after, fmt.Sprintf("%v=%s", id, tu[0].Str))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !namesEqual(before, after) {
		t.Fatalf("scan diverged across split:\nbefore %v\nafter  %v", before, after)
	}
	if err := rel.CheckShards(4); err != nil {
		t.Fatal(err)
	}
	// Every Get still resolves through the rewritten routes.
	for i, id := range ids {
		tu, err := rel.Get(id)
		if err != nil {
			t.Fatalf("Get(%v) after split: %v", id, err)
		}
		if tu[0].Str != fmt.Sprintf("c%03d", i) {
			t.Fatalf("Get(%v) = %q", id, tu[0].Str)
		}
	}
}

// TestSplitShardConcurrentReadersAndWriters races a split against
// readers (Get, SearchArea, JuxtaposeSpatial, Scan) and writers
// (Insert, Delete) under -race. Readers must never observe a missing
// or duplicated tuple; the split must reconcile with racing deletes.
func TestSplitShardConcurrentReadersAndWriters(t *testing.T) {
	rel, pic := newHilbertShardedCities(t, 2)
	rng := rand.New(rand.NewSource(21))
	var ids []storage.TupleID
	for i := 0; i < 300; i++ {
		ids = append(ids, addCity(t, rel, pic, fmt.Sprintf("c%03d", i), "ST", int64(i), rng.Float64()*120, rng.Float64()*120))
	}
	// The stable prefix is never deleted: readers assert on it.
	stable := ids[:200]
	window := geom.R(0, 0, 1000, 1000)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	reader := func(seed int64) {
		defer wg.Done()
		r := rand.New(rand.NewSource(seed))
		for !stop.Load() {
			switch r.Intn(4) {
			case 0:
				id := stable[r.Intn(len(stable))]
				if _, err := rel.Get(id); err != nil {
					errs <- fmt.Errorf("Get(%v): %w", id, err)
					return
				}
			case 1:
				got, _, err := rel.SearchArea("us-map", window, func(o, w geom.Rect) bool { return o.Intersects(w) })
				if err != nil {
					errs <- fmt.Errorf("SearchArea: %w", err)
					return
				}
				for i := 1; i < len(got); i++ {
					if !tupleIDLessOrEqual(got[i-1], got[i]) {
						errs <- fmt.Errorf("SearchArea out of order or duplicated: %v then %v", got[i-1], got[i])
						return
					}
				}
				if len(got) < len(stable) {
					errs <- fmt.Errorf("SearchArea returned %d < %d stable tuples", len(got), len(stable))
					return
				}
			case 2:
				pairs, _, err := rel.JuxtaposeSpatial("us-map", rel, "us-map",
					func(a, b geom.Rect) bool { return a.Intersects(b) }, 2)
				if err != nil {
					errs <- fmt.Errorf("Juxtapose: %w", err)
					return
				}
				for i := 1; i < len(pairs); i++ {
					if pairs[i-1] == pairs[i] {
						errs <- fmt.Errorf("duplicate join pair %v", pairs[i])
						return
					}
				}
			default:
				n := 0
				if err := rel.Scan(func(storage.TupleID, Tuple) bool { n++; return true }); err != nil {
					errs <- fmt.Errorf("Scan: %w", err)
					return
				}
				if n < len(stable) {
					errs <- fmt.Errorf("Scan saw %d < %d stable tuples", n, len(stable))
					return
				}
			}
		}
	}
	writer := func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		next := 300
		victims := append([]storage.TupleID(nil), ids[200:]...)
		for !stop.Load() {
			if len(victims) > 0 && r.Intn(2) == 0 {
				v := victims[len(victims)-1]
				victims = victims[:len(victims)-1]
				if err := rel.Delete(v); err != nil {
					errs <- fmt.Errorf("Delete(%v): %w", v, err)
					return
				}
			} else {
				oid := pic.AddPoint(fmt.Sprintf("w%04d", next), geom.Pt(r.Float64()*120, r.Float64()*120))
				if _, err := rel.Insert(Tuple{S(fmt.Sprintf("w%04d", next)), S("ST"), I(int64(next)), L("us-map", oid)}); err != nil {
					errs <- fmt.Errorf("Insert: %w", err)
					return
				}
				next++
			}
		}
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go reader(int64(i) + 1)
	}
	wg.Add(1)
	go writer()

	src, ok := rel.MostLoadedShard(1.2, 10)
	if !ok {
		t.Fatal("no overloaded shard")
	}
	pgr := pager.OpenMem(64)
	t.Cleanup(func() { pgr.Close() })
	dst, pending, err := rel.SplitShard(src, pgr)
	stop.Store(true)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.FinishSplit(pending); err != nil {
		t.Fatal(err)
	}
	rel.WaitRepacks()
	if err := rel.CheckShards(4); err != nil {
		t.Fatal(err)
	}
	infos, _ := rel.ShardBalance()
	if infos[dst].Items == 0 {
		t.Fatal("racing split moved nothing")
	}
	for _, id := range stable {
		if _, err := rel.Get(id); err != nil {
			t.Fatalf("stable id %v lost: %v", id, err)
		}
	}
}

func tupleIDLessOrEqual(a, b storage.TupleID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot <= b.Slot
}

// buildClusteredJoinRel makes a sharded relation of small square
// regions drawn around Gaussian clusters, routed by Hilbert key
// (picture attached before inserts).
func buildClusteredJoinRel(t *testing.T, pic *picture.Picture, shards int, centers [][2]float64, seed int64, n int) *Relation {
	t.Helper()
	pagers := make([]*pager.Pager, shards)
	for i := range pagers {
		pagers[i] = pager.OpenMem(64)
	}
	t.Cleanup(func() {
		for _, p := range pagers {
			p.Close()
		}
	})
	rel, err := NewSharded(pagers, "r", citySchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.AttachPicture(pic, pack.Options{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		x := clamp01k(c[0] + rng.NormFloat64()*20)
		y := clamp01k(c[1] + rng.NormFloat64()*20)
		name := fmt.Sprintf("r%d-%04d", seed, i)
		oid := pic.AddRegion(name, geom.Poly(
			geom.Pt(x-6, y-6), geom.Pt(x+6, y-6), geom.Pt(x+6, y+6), geom.Pt(x-6, y+6)))
		if _, err := rel.Insert(Tuple{S(name), S("ST"), I(int64(i)), L("us-map", oid)}); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// TestScatterJuxtaposePruneIdentical checks the frontier restriction's
// two contracts on clustered data: pruned output is bit-identical to
// the pair-product scatter, and it joins at most half the
// bounds-overlapping shard pair product. The two relations share two
// cluster sites (so the join is non-vacuous) and differ in the rest;
// six even Hilbert ranges over five clusters give L-shaped shard
// regions whose MBRs overlap through empty space — exactly the pairs
// the frontier walk proves empty.
func TestScatterJuxtaposePruneIdentical(t *testing.T) {
	pic := picture.New("us-map", geom.R(0, 0, 1000, 1000))
	ca := [][2]float64{{120, 150}, {850, 200}, {480, 520}, {200, 840}, {880, 870}}
	cb := [][2]float64{{120, 150}, {850, 200}, {700, 650}, {350, 300}, {150, 500}}
	rel := buildClusteredJoinRel(t, pic, 6, ca, 31, 300)
	other := buildClusteredJoinRel(t, pic, 6, cb, 77, 300)
	pred := func(a, b geom.Rect) bool { return a.Intersects(b) }
	pruned, stats, _, err := rel.JuxtaposeSpatialStats("us-map", other, "us-map", pred, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	full, fullStats, _, err := rel.JuxtaposeSpatialStats("us-map", other, "us-map", pred, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != len(full) {
		t.Fatalf("pruned join: %d pairs, full scatter: %d", len(pruned), len(full))
	}
	for i := range pruned {
		if pruned[i] != full[i] {
			t.Fatalf("pair %d diverged: %v vs %v", i, pruned[i], full[i])
		}
	}
	if len(pruned) == 0 {
		t.Fatal("vacuous: no join pairs")
	}
	if fullStats.PairsJoined != fullStats.PairProduct {
		t.Fatalf("unpruned scatter skipped pairs: %+v", fullStats)
	}
	if stats.PairProduct != fullStats.PairProduct {
		t.Fatalf("pair product diverged: %d vs %d", stats.PairProduct, fullStats.PairProduct)
	}
	if stats.PairsJoined*2 > stats.PairProduct {
		t.Fatalf("frontier restriction joined %d of %d pairs, want <= half", stats.PairsJoined, stats.PairProduct)
	}
	// And the planner's no-join estimate agrees with the real join.
	est, err := rel.JoinShardPairEstimate("us-map", other, "us-map")
	if err != nil {
		t.Fatal(err)
	}
	if est != stats {
		t.Fatalf("estimate %+v diverged from join stats %+v", est, stats)
	}
}
