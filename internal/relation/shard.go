package relation

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"repro/internal/btree"
	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// This file implements Hilbert-range sharding (DESIGN.md §15): one
// logical relation split across N independent page files, each with its
// own pager, WAL, buffer pool, heap, and per-picture LSM spatial index.
//
// The contract is that a sharded relation is indistinguishable from an
// unsharded one at the API: queries return the same rows in the same
// canonical order at every shard count. Two mechanisms deliver that:
//
//   - Global TupleIDs are insertion-sequence numbers, not heap
//     addresses. Every shard heap record carries its global sequence as
//     an 8-byte little-endian prefix, so ascending TupleID order ==
//     insertion order regardless of which shard a tuple landed on, and
//     the order is stable across reopen (the route table is rebuilt by
//     scanning the prefixes).
//   - Scatter-gather reads: each shard's spatial index answers locally
//     in ascending-sequence order (the per-tier merge from PR 6), and
//     the gather step k-way-merges the per-shard streams by sequence —
//     bit-identical to one big index.
//
// Placement is a pure heuristic: a tuple is routed by the Hilbert key
// of its loc object's MBR center over the picture extent (contiguous
// key ranges per shard, so spatially clustered windows overlap few
// shard MBRs), but correctness never depends on where a tuple lives —
// the in-memory route table is the single source of truth for
// sequence → (shard, local heap address).

// shardSeqBase is the first global sequence id a sharded relation hands
// out. It decodes to TupleID{Page: 1, Slot: 0}, keeping IsValid true
// and sequence 0 free as the route table's "dead" marker.
const shardSeqBase int64 = 1 << 16

// MaxShards bounds the shard count: the route encoding packs the shard
// number into the bits above the 48-bit local tuple address.
const MaxShards = 256

// relShard is one shard of a sharded relation: an independent page
// file holding a slotted heap of (sequence, tuple) records. mu
// serializes heap access — writers exclusively, readers shared — so
// per-shard writers and cross-shard readers never race on page bytes.
type relShard struct {
	mu   sync.RWMutex
	pgr  *pager.Pager
	heap *storage.Heap
}

// encodeRoute packs a route-table entry: shard number above the 48-bit
// local heap address. Valid entries are never zero (a live local id
// has Page >= 1).
func encodeRoute(shard int, lid storage.TupleID) int64 {
	return int64(shard)<<48 | lid.Int64()
}

// decodeRoute unpacks encodeRoute.
func decodeRoute(v int64) (int, storage.TupleID) {
	return int(v >> 48), storage.TupleIDFromInt64(v & (1<<48 - 1))
}

// NewSharded creates an empty relation sharded across one page file
// per pager. The pagers must be dedicated to this relation (each shard
// heap is created at a fixed page of its own file).
func NewSharded(pagers []*pager.Pager, name string, schema Schema) (*Relation, error) {
	if len(pagers) == 0 || len(pagers) > MaxShards {
		return nil, fmt.Errorf("relation %s: shard count %d out of range [1, %d]", name, len(pagers), MaxShards)
	}
	r := &Relation{
		name:         name,
		schema:       schema,
		indexes:      make(map[string]*btree.Tree),
		shardSpatial: make(map[string][]*SpatialIndex),
		rtreeParams:  rtree.DefaultParams(),
	}
	r.nextSeq.Store(shardSeqBase)
	shards := make([]*relShard, 0, len(pagers))
	for i, p := range pagers {
		h, _, err := storage.Create(p)
		if err != nil {
			return nil, fmt.Errorf("relation %s: shard %d: %w", name, i, err)
		}
		shards = append(shards, &relShard{pgr: p, heap: h})
	}
	r.shards.Store(&shards)
	r.shardRanges = evenKeyRanges(len(shards))
	r.shardLive = make([]int64, len(shards))
	return r, nil
}

// OpenSharded reattaches to a sharded relation whose shard heaps start
// at firsts[i] in pagers[i] — the catalog's reopen path. ranges gives
// each shard's persisted Hilbert key range (nil = the even split a
// never-rebalanced relation uses). The route table is rebuilt by
// scanning every shard heap's sequence prefixes; a malformed sequence
// is reported as corruption. A sequence stored in two shards with
// byte-identical records is the durable artifact of a shard split that
// crashed after the destination committed but before the source's
// deletions did (DESIGN.md §16): repair keeps the higher-numbered
// shard's copy (the migration destination — splits only append shards)
// and deletes the stale source record. Differing payloads remain
// corruption. Indexes are not rebuilt here (the catalog re-creates
// them), matching Open.
func OpenSharded(pagers []*pager.Pager, name string, schema Schema, firsts []pager.PageID, ranges []KeyRange) (*Relation, error) {
	if len(pagers) == 0 || len(pagers) > MaxShards {
		return nil, fmt.Errorf("relation %s: shard count %d out of range [1, %d]", name, len(pagers), MaxShards)
	}
	if len(firsts) != len(pagers) {
		return nil, fmt.Errorf("relation %s: %d shard heap pages for %d shards", name, len(firsts), len(pagers))
	}
	if ranges != nil && len(ranges) != len(pagers) {
		return nil, fmt.Errorf("relation %s: %d shard key ranges for %d shards", name, len(ranges), len(pagers))
	}
	r := &Relation{
		name:         name,
		schema:       schema,
		indexes:      make(map[string]*btree.Tree),
		shardSpatial: make(map[string][]*SpatialIndex),
		rtreeParams:  rtree.DefaultParams(),
	}
	shards := make([]*relShard, 0, len(pagers))
	for i, p := range pagers {
		h, err := storage.Open(p, firsts[i])
		if err != nil {
			return nil, fmt.Errorf("relation %s: shard %d: %w", name, i, err)
		}
		shards = append(shards, &relShard{pgr: p, heap: h})
	}
	r.shards.Store(&shards)
	if ranges == nil {
		ranges = evenKeyRanges(len(shards))
	}
	r.shardRanges = append([]KeyRange(nil), ranges...)
	r.shardLive = make([]int64, len(shards))
	maxSeq := shardSeqBase - 1
	live := int64(0)
	for s, sh := range shards {
		var scanErr error
		err := sh.heap.Scan(func(lid storage.TupleID, rec []byte) bool {
			seq, _, err := splitShardRecord(rec)
			if err != nil {
				scanErr = err
				return false
			}
			i := seq - shardSeqBase
			for int64(len(r.routes)) <= i {
				r.routes = append(r.routes, 0)
			}
			if r.routes[i] != 0 {
				prev, plid := decodeRoute(r.routes[i])
				if prev == s {
					// A split never duplicates within one shard.
					scanErr = fmt.Errorf("%w: sequence %d stored twice in shard %d", storage.ErrCorrupt, seq, s)
					return false
				}
				stale, err := shards[prev].heap.Get(plid)
				if err != nil {
					scanErr = fmt.Errorf("%w: sequence %d stored in both shard %d and shard %d", storage.ErrCorrupt, seq, prev, s)
					return false
				}
				if string(stale) != string(rec) {
					scanErr = fmt.Errorf("%w: sequence %d stored in both shard %d and shard %d with differing records", storage.ErrCorrupt, seq, prev, s)
					return false
				}
				// Interrupted-split duplicate: drop the source copy (the
				// lower shard — shards scan in ascending order, so prev is
				// the split's source) and adopt this one. The deletion
				// becomes durable at the next commit.
				if err := shards[prev].heap.Delete(plid); err != nil {
					scanErr = fmt.Errorf("shard %d: dropping stale split duplicate of sequence %d: %w", prev, seq, err)
					return false
				}
				r.routes[i] = encodeRoute(s, lid)
				r.shardLive[prev]--
				r.shardLive[s]++
				return true
			}
			r.routes[i] = encodeRoute(s, lid)
			r.shardLive[s]++
			if seq > maxSeq {
				maxSeq = seq
			}
			live++
			return true
		})
		if err == nil {
			err = scanErr
		}
		if err != nil {
			return nil, fmt.Errorf("relation %s: shard %d: %w", name, s, err)
		}
	}
	r.nextSeq.Store(maxSeq + 1)
	r.liveCount.Store(live)
	return r, nil
}

// Sharded reports whether the relation is split across shard files.
func (r *Relation) Sharded() bool { return r.shards.Load() != nil }

// ShardCount returns the number of shards (0 when unsharded).
func (r *Relation) ShardCount() int { return len(r.shardList()) }

// ShardPager returns shard s's pager — the handle the database layer
// commits, checkpoints, and closes.
func (r *Relation) ShardPager(s int) *pager.Pager { return r.shardList()[s].pgr }

// ShardHeapFirstPages returns each shard heap's first page, the
// handles the catalog persists to reopen the relation (nil when
// unsharded).
func (r *Relation) ShardHeapFirstPages() []pager.PageID {
	shs := r.shardList()
	if len(shs) == 0 {
		return nil
	}
	out := make([]pager.PageID, len(shs))
	for s, sh := range shs {
		out[s] = sh.heap.FirstPage()
	}
	return out
}

// ShardKeyRanges returns each shard's half-open Hilbert key range —
// the handles the catalog persists so a rebalanced layout routes the
// same way after reopen (nil when unsharded).
func (r *Relation) ShardKeyRanges() []KeyRange {
	if !r.Sharded() {
		return nil
	}
	r.smu.RLock()
	defer r.smu.RUnlock()
	return append([]KeyRange(nil), r.shardRanges...)
}

// ShardHeapPages returns the page ids owned by shard s's heap, for
// per-shard-file ownership accounting during verification.
func (r *Relation) ShardHeapPages(s int) ([]pager.PageID, error) {
	sh := r.shardList()[s]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.heap.Pages()
}

// CommitShards durably commits every shard's pager, fanning out over
// goroutines so each shard's WAL batches and fsyncs independently. The
// first error (by shard order) is returned. The database layer commits
// shards before its main file so the catalog never names shard pages
// that are not yet durable.
func (r *Relation) CommitShards() error {
	shs := r.shardList()
	return forEachShard(len(shs), len(shs), func(s int) error {
		if err := shs[s].pgr.Commit(); err != nil {
			return fmt.Errorf("relation %s: shard %d: %w", r.name, s, err)
		}
		return nil
	})
}

// splitShardRecord splits a shard heap record into its global sequence
// prefix and the encoded tuple payload.
func splitShardRecord(rec []byte) (int64, []byte, error) {
	if len(rec) < 8 {
		return 0, nil, fmt.Errorf("%w: shard record shorter than its sequence header", storage.ErrCorrupt)
	}
	seq := int64(binary.LittleEndian.Uint64(rec))
	if seq < shardSeqBase {
		return 0, nil, fmt.Errorf("%w: shard record sequence %d below base %d", storage.ErrCorrupt, seq, shardSeqBase)
	}
	return seq, rec[8:], nil
}

// decodeShardRecord decodes a shard heap record, verifying its
// sequence prefix matches the id it was looked up under (want < 0
// skips the check).
func decodeShardRecord(rec []byte, want int64) (Tuple, error) {
	seq, payload, err := splitShardRecord(rec)
	if err != nil {
		return nil, err
	}
	if want >= 0 && seq != want {
		return nil, fmt.Errorf("%w: shard record carries sequence %d, route table says %d", storage.ErrCorrupt, seq, want)
	}
	return DecodeTuple(payload)
}

// routeAtLocked returns the route entry for a global id, 0 when the id
// is unknown or dead. Caller holds smu (any mode).
func (r *Relation) routeAtLocked(gid int64) int64 {
	i := gid - shardSeqBase
	if i < 0 || i >= int64(len(r.routes)) {
		return 0
	}
	return r.routes[i]
}

// routesSnapshot copies the route table for lock-free iteration.
func (r *Relation) routesSnapshot() []int64 {
	r.smu.RLock()
	defer r.smu.RUnlock()
	out := make([]int64, len(r.routes))
	copy(out, r.routes)
	return out
}

// routeNow re-reads gid's current route. A reader that snapshotted a
// route v and then failed its heap read classifies the failure here:
// 0 means a delete completed (sequences are never reused, so a cleared
// route stays cleared — report not-found), a value different from v
// means a shard split migrated the tuple (retry against the new
// route), and an unchanged v means the heap really is damaged. Heap
// reads are serialized against deletes and migrations by the shard
// lock, so a bad read implies the move completed first and the recheck
// observes the new route.
func (r *Relation) routeNow(gid int64) int64 {
	r.smu.RLock()
	v := r.routeAtLocked(gid)
	r.smu.RUnlock()
	return v
}

// routeGone reports whether gid's route was cleared (deleted).
func (r *Relation) routeGone(gid int64) bool { return r.routeNow(gid) == 0 }

// routeShard picks the shard a new tuple should land on: the Hilbert
// key of its loc object's MBR center over the attached picture's
// extent, looked up in the per-shard key ranges (contiguous at
// creation, narrowed and split as the rebalancer reacts to skew).
// Tuples whose loc does not resolve (no picture attached yet, foreign
// picture) fall back to a content hash. Placement only affects
// locality — the route table, not the routing rule, resolves reads —
// so attaching a picture after a fallback-routed load is correct, just
// less clustered.
func (r *Relation) routeShard(t Tuple, enc []byte) int {
	r.smu.RLock()
	n := len(r.shardRanges)
	if n == 1 {
		r.smu.RUnlock()
		return 0
	}
	for _, sis := range r.shardSpatial {
		pic := sis[0].Picture
		if rect, ok := r.locMBR(t, pic); ok {
			ext := pic.Extent()
			s := shardForKey(r.shardRanges, pack.HilbertKey(ext, rect.Center()))
			r.smu.RUnlock()
			return s
		}
	}
	r.smu.RUnlock()
	h := fnv.New64a()
	h.Write(enc)
	return int(h.Sum64() % uint64(n))
}

// insertSharded is Insert for sharded relations: assign the next global
// sequence, route the record (sequence-prefixed) to its shard heap,
// publish the route, then update the B-tree and per-shard spatial
// indexes. Safe for concurrent callers: the heap write is under the
// shard's lock, route/index updates under smu, and the spatial insert
// is the LSM O(1) append.
func (r *Relation) insertSharded(t Tuple) (storage.TupleID, error) {
	if err := r.schema.Validate(t); err != nil {
		return storage.TupleID{}, err
	}
	enc := EncodeTuple(t)
	s := r.routeShard(t, enc)
	seq := r.nextSeq.Add(1) - 1
	buf := make([]byte, 8+len(enc))
	binary.LittleEndian.PutUint64(buf, uint64(seq))
	copy(buf[8:], enc)
	sh := r.shardList()[s]
	sh.mu.Lock()
	lid, err := sh.heap.Insert(buf)
	sh.mu.Unlock()
	if err != nil {
		return storage.TupleID{}, fmt.Errorf("relation %s: shard %d: %w", r.name, s, err)
	}
	type target struct {
		si   *SpatialIndex
		rect geom.Rect
	}
	var targets []target
	r.smu.Lock()
	i := seq - shardSeqBase
	for int64(len(r.routes)) <= i {
		r.routes = append(r.routes, 0)
	}
	r.routes[i] = encodeRoute(s, lid)
	r.shardLive[s]++
	for col, idx := range r.indexes {
		ci := r.schema.ColumnIndex(col)
		idx.Insert(IndexKey(t[ci]), seq)
	}
	for _, sis := range r.shardSpatial {
		if rect, ok := r.locMBR(t, sis[0].Picture); ok {
			targets = append(targets, target{sis[s], rect})
		}
	}
	r.smu.Unlock()
	r.liveCount.Add(1)
	for _, tg := range targets {
		tg.si.insert(tg.rect, seq)
	}
	return storage.TupleIDFromInt64(seq), nil
}

// fetchRouted reads the tuple for gid whose route was snapshotted as
// v, chasing migrations: a failed heap read is classified by re-reading
// the route — cleared means a delete completed (ok=false), changed
// means a shard split moved the record (retry at the new location),
// unchanged means the heap really is damaged. Retries terminate
// because a given sequence moves at most once per split and splits are
// finite.
func (r *Relation) fetchRouted(gid, v int64) (Tuple, bool, error) {
	for {
		s, lid := decodeRoute(v)
		sh := r.shardList()[s]
		sh.mu.RLock()
		rec, err := sh.heap.Get(lid)
		sh.mu.RUnlock()
		if err == nil {
			var t Tuple
			t, err = decodeShardRecord(rec, gid)
			if err == nil {
				return t, true, nil
			}
		}
		now := r.routeNow(gid)
		if now == 0 {
			return nil, false, nil
		}
		if now == v {
			return nil, false, fmt.Errorf("relation %s: shard %d: %w", r.name, s, err)
		}
		v = now
	}
}

// getSharded is Get for sharded relations.
func (r *Relation) getSharded(id storage.TupleID) (Tuple, error) {
	gid := id.Int64()
	v := r.routeNow(gid)
	if v == 0 {
		return nil, fmt.Errorf("%w: %v", storage.ErrNotFound, id)
	}
	t, ok, err := r.fetchRouted(gid, v)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %v", storage.ErrNotFound, id)
	}
	return t, nil
}

// getBatchSharded is GetBatch for sharded relations: ids are grouped
// by shard through the route table and the per-shard batches run
// concurrently (each pinning its pages once, like the unsharded path).
// out[i] corresponds to ids[i] at any worker count. A shard split
// migrating tuples mid-batch can invalidate the grouping; the route
// epoch detects that and the whole batch retries against the new
// layout instead of reporting phantom corruption.
func (r *Relation) getBatchSharded(ids []storage.TupleID, need []bool, workers int) ([]Tuple, error) {
	for {
		epoch := r.routeEpoch.Load()
		out, err := r.getBatchShardedOnce(ids, need, workers)
		if err == nil {
			return out, nil
		}
		if r.routeEpoch.Load() == epoch {
			return nil, err
		}
	}
}

func (r *Relation) getBatchShardedOnce(ids []storage.TupleID, need []bool, workers int) ([]Tuple, error) {
	out := make([]Tuple, len(ids))
	if len(ids) == 0 {
		return out, nil
	}
	shs := r.shardList()
	n := len(shs)
	perIDs := make([][]storage.TupleID, n)
	perPos := make([][]int, n)
	r.smu.RLock()
	for i, id := range ids {
		v := r.routeAtLocked(id.Int64())
		if v == 0 {
			r.smu.RUnlock()
			return nil, fmt.Errorf("relation %s: %w: %v", r.name, storage.ErrNotFound, id)
		}
		s, lid := decodeRoute(v)
		perIDs[s] = append(perIDs[s], lid)
		perPos[s] = append(perPos[s], i)
	}
	r.smu.RUnlock()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	err := forEachShard(n, workers, func(s int) error {
		if len(perIDs[s]) == 0 {
			return nil
		}
		sh := shs[s]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.heap.GetBatch(perIDs[s], func(k int, rec []byte) error {
			pos := perPos[s][k]
			seq, payload, err := splitShardRecord(rec)
			if err != nil {
				return fmt.Errorf("relation %s: tuple %v: %w", r.name, ids[pos], err)
			}
			if seq != ids[pos].Int64() {
				return fmt.Errorf("relation %s: tuple %v: %w: shard record carries sequence %d", r.name, ids[pos], storage.ErrCorrupt, seq)
			}
			t, err := DecodeTupleCols(payload, need)
			if err != nil {
				return fmt.Errorf("relation %s: tuple %v: %w", r.name, ids[pos], err)
			}
			out[pos] = t
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// deleteSharded is Delete for sharded relations. Clearing the route is
// the commit point and happens BEFORE the heap record is removed: a
// concurrent reader whose heap read misses can then always attribute
// the miss to a completed or in-flight delete by rechecking the route
// (routeGone), and a second delete of the same id loses the route race
// and reports not-found instead of touching a reused slot.
func (r *Relation) deleteSharded(id storage.TupleID) error {
	gid := id.Int64()
	r.smu.Lock()
	v := r.routeAtLocked(gid)
	if v == 0 {
		r.smu.Unlock()
		return fmt.Errorf("%w: %v", storage.ErrNotFound, id)
	}
	r.routes[gid-shardSeqBase] = 0
	s, lid := decodeRoute(v)
	r.shardLive[s]--
	r.smu.Unlock()
	sh := r.shardList()[s]
	sh.mu.Lock()
	rec, err := sh.heap.Get(lid)
	if err == nil {
		err = sh.heap.Delete(lid)
	}
	sh.mu.Unlock()
	if err != nil {
		return fmt.Errorf("relation %s: shard %d: %w", r.name, s, err)
	}
	t, err := decodeShardRecord(rec, gid)
	if err != nil {
		return err
	}
	type target struct {
		si   *SpatialIndex
		rect geom.Rect
	}
	var targets []target
	r.smu.Lock()
	for col, idx := range r.indexes {
		ci := r.schema.ColumnIndex(col)
		idx.Delete(IndexKey(t[ci]), gid)
	}
	for _, sis := range r.shardSpatial {
		if rect, ok := r.locMBR(t, sis[0].Picture); ok {
			targets = append(targets, target{sis[s], rect})
		}
	}
	r.smu.Unlock()
	r.liveCount.Add(-1)
	for _, tg := range targets {
		tg.si.delete(tg.rect, gid)
	}
	return nil
}

// scanSharded is Scan for sharded relations: global ids ascend in
// insertion order, so the iteration walks the route table — the same
// order an unsharded append-only heap scan yields.
func (r *Relation) scanSharded(fn func(id storage.TupleID, t Tuple) bool) error {
	routes := r.routesSnapshot()
	for i, v := range routes {
		if v == 0 {
			continue
		}
		gid := shardSeqBase + int64(i)
		t, ok, err := r.fetchRouted(gid, v)
		if err != nil {
			return err
		}
		if !ok {
			continue // deleted mid-scan
		}
		if !fn(storage.TupleIDFromInt64(gid), t) {
			return nil
		}
	}
	return nil
}

// shardLocItems scans the relation and buckets (loc MBR, global id)
// items per shard for pic — the build step of AttachPicture and
// RepackPicture in sharded mode. Items come out in ascending sequence
// order per shard.
func (r *Relation) shardLocItems(pic *picture.Picture) ([][]rtree.Item, error) {
	perShard := make([][]rtree.Item, len(r.shardList()))
	routes := r.routesSnapshot()
	for i, v := range routes {
		if v == 0 {
			continue
		}
		gid := shardSeqBase + int64(i)
		s, _ := decodeRoute(v)
		t, ok, err := r.fetchRouted(gid, v)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // deleted mid-build
		}
		if rect, ok := r.locMBR(t, pic); ok {
			perShard[s] = append(perShard[s], rtree.Item{Rect: rect, Data: gid})
		}
	}
	return perShard, nil
}

// attachPictureSharded is AttachPicture for sharded relations: one
// packed R-tree per shard over that shard's tuples.
func (r *Relation) attachPictureSharded(pic *picture.Picture, opts pack.Options) error {
	if r.schema.LocColumn() < 0 {
		return fmt.Errorf("relation %s: schema has no loc column", r.name)
	}
	r.smu.RLock()
	_, dup := r.shardSpatial[pic.Name()]
	r.smu.RUnlock()
	if dup {
		return fmt.Errorf("relation %s: picture %q already attached", r.name, pic.Name())
	}
	perShard, err := r.shardLocItems(pic)
	if err != nil {
		return err
	}
	sis := make([]*SpatialIndex, len(perShard))
	for s := range sis {
		tree := pack.Tree(r.rtreeParams, perShard[s], opts)
		si := newSpatialIndex(pic, tree, opts, r.rtreeParams)
		si.policy = r.spatialPolicy
		sis[s] = si
	}
	r.smu.Lock()
	r.shardSpatial[pic.Name()] = sis
	r.smu.Unlock()
	return nil
}

// repackPictureSharded is RepackPicture for sharded relations: each
// shard's index is rebuilt from that shard's current tuples.
func (r *Relation) repackPictureSharded(pictureName string, opts pack.Options) error {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	perShard, err := r.shardLocItems(sis[0].Picture)
	if err != nil {
		return err
	}
	for s, si := range sis {
		si.rebuild(perShard[s], opts)
	}
	return nil
}

// spatialList returns the spatial indexes answering for pic: the
// per-shard slice when sharded, a one-element slice otherwise, nil when
// the picture is not attached.
func (r *Relation) spatialList(pictureName string) []*SpatialIndex {
	if !r.Sharded() {
		if si := r.spatial[pictureName]; si != nil {
			return []*SpatialIndex{si}
		}
		return nil
	}
	r.smu.RLock()
	defer r.smu.RUnlock()
	return r.shardSpatial[pictureName]
}

// Spatials returns the spatial indexes backing pic — one per shard for
// a sharded relation, a single element otherwise, nil when the picture
// is not attached. Callers tune thresholds or policies through it.
func (r *Relation) Spatials(pictureName string) []*SpatialIndex {
	return r.spatialList(pictureName)
}

// HasSpatial reports whether pic has a spatial index (any mode).
func (r *Relation) HasSpatial(pictureName string) bool {
	return r.spatialList(pictureName) != nil
}

// SpatialOpts returns the pack options pic's index was built with —
// the catalog's mode-agnostic accessor (every shard records the same
// options).
func (r *Relation) SpatialOpts(pictureName string) (pack.Options, bool) {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return pack.Options{}, false
	}
	return sis[0].Opts, true
}

// SpatialCostSnapshot returns the planner's cost view of pic's index.
// For a sharded relation it merges per-shard snapshots over only the
// shards whose bounds overlap the union of the query windows (none
// given = every shard), so estimated costs track the shards a scatter
// would actually visit: sizes, deltas, and areas sum; depth is the
// maximum — the gather visits shard trees independently, not stacked.
func (r *Relation) SpatialCostSnapshot(pictureName string, windows []geom.Rect) (CostSnapshot, bool) {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return CostSnapshot{}, false
	}
	if len(sis) == 1 {
		return sis[0].CostSnapshot(), true
	}
	union := geom.EmptyRect()
	for _, w := range windows {
		union = union.Union(w)
	}
	merged := CostSnapshot{Bounds: geom.EmptyRect()}
	first := true
	for _, si := range sis {
		snap := si.CostSnapshot()
		if snap.Stats.Items == 0 && snap.DeltaItems == 0 {
			continue
		}
		if len(windows) > 0 && !snap.Bounds.Intersects(union) {
			continue
		}
		if first {
			merged = snap
			first = false
			continue
		}
		merged.Stats.Items += snap.Stats.Items
		merged.Stats.Nodes += snap.Stats.Nodes
		merged.Stats.Leaves += snap.Stats.Leaves
		merged.Stats.Coverage += snap.Stats.Coverage
		merged.Stats.Overlap += snap.Stats.Overlap
		merged.Stats.OverlapMeasure += snap.Stats.OverlapMeasure
		if snap.Stats.Depth > merged.Stats.Depth {
			merged.Stats.Depth = snap.Stats.Depth
		}
		if snap.Stats.DeadSpace > merged.Stats.DeadSpace {
			merged.Stats.DeadSpace = snap.Stats.DeadSpace
		}
		merged.Bounds = merged.Bounds.Union(snap.Bounds)
		merged.DeltaItems += snap.DeltaItems
		merged.DeltaNodes += snap.DeltaNodes
		merged.Tombstones += snap.Tombstones
		merged.PendingInserts += snap.PendingInserts
		merged.PendingDeletes += snap.PendingDeletes
		merged.InPlace = merged.InPlace || snap.InPlace
		merged.Repacking = merged.Repacking || snap.Repacking
	}
	return merged, true
}

// ShardInfo is one shard directory entry: the Hilbert key range routed
// to the shard and the live extent of its spatial index for one
// picture. The scatter step prunes shards by Bounds; KeyLo/KeyHi
// document the routing rule (a tuple with key k lands on the shard
// with KeyLo <= k < KeyHi — an even split at creation, narrowed as the
// rebalancer splits hot shards).
type ShardInfo struct {
	Shard        int
	KeyLo, KeyHi uint64
	Items        int
	Bounds       geom.Rect
}

// ShardDirectory returns the shard directory for pic.
func (r *Relation) ShardDirectory(pictureName string) ([]ShardInfo, error) {
	if !r.Sharded() {
		return nil, fmt.Errorf("relation %s: not sharded", r.name)
	}
	sis := r.spatialList(pictureName)
	if sis == nil {
		return nil, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	ranges := r.ShardKeyRanges()
	out := make([]ShardInfo, len(sis))
	for s, si := range sis {
		out[s] = ShardInfo{
			Shard:  s,
			KeyLo:  ranges[s].Lo,
			KeyHi:  ranges[s].Hi,
			Items:  si.Len(),
			Bounds: si.Bounds(),
		}
	}
	return out, nil
}

// shardKeyLo is the smallest Hilbert key an even split routes to shard
// s of n: the least k with k*n >> HilbertKeyBits == s.
func shardKeyLo(s, n uint64) uint64 {
	return (s<<pack.HilbertKeyBits + n - 1) / n
}

// ShardFanout reports how many of pic's shards a window query would
// visit (non-empty shards whose bounds overlap the window) out of the
// total shard count — the scatter-pruning telemetry.
func (r *Relation) ShardFanout(pictureName string, window geom.Rect) (hit, total int, err error) {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return 0, 0, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	for _, si := range sis {
		if si.Len() > 0 && si.Bounds().Intersects(window) {
			hit++
		}
	}
	return hit, len(sis), nil
}

// mergeItemStreams k-way-merges per-shard item streams, each already in
// canonical ascending-TupleID (sequence) order, into one canonical
// stream — the gather step. Shards partition the id space at rest, so
// the merge is normally a strict interleave; during a shard split's
// migration window an entry briefly exists on both the source and
// destination shard (added to the destination before removal from the
// source, so no reader ever misses it), and the merge collapses such
// equal-sequence duplicates to one occurrence.
func mergeItemStreams(streams [][]rtree.Item) []rtree.Item {
	switch len(streams) {
	case 0:
		return nil
	case 1:
		return streams[0]
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]rtree.Item, 0, total)
	cur := make([]int, len(streams))
	emitted := 0
	for emitted < total {
		best := -1
		var bd int64
		for s, c := range cur {
			if c < len(streams[s]) && (best < 0 || streams[s][c].Data < bd) {
				best, bd = s, streams[s][c].Data
			}
		}
		cur[best]++
		emitted++
		if len(out) > 0 && out[len(out)-1].Data == bd {
			continue // migration-window duplicate
		}
		out = append(out, streams[best][cur[best]-1])
	}
	return out
}

// scatterQuery runs window against every overlapping index in sis and
// gathers the streams in canonical order. Pruning by shard bounds is
// only applied when there is more than one index, so the unsharded
// path keeps its exact legacy visit counts.
func scatterQuery(sis []*SpatialIndex, window geom.Rect) ([]rtree.Item, int) {
	if len(sis) == 1 {
		return sis[0].query(window)
	}
	streams := make([][]rtree.Item, 0, len(sis))
	visited := 0
	for _, si := range sis {
		if si.Len() == 0 || !si.Bounds().Intersects(window) {
			continue
		}
		items, v := si.query(window)
		visited += v
		if len(items) > 0 {
			streams = append(streams, items)
		}
	}
	return mergeItemStreams(streams), visited
}

// scatterQueryBatch is scatterQuery over many windows, scattering each
// shard only the windows its bounds overlap and reusing the per-index
// batched read path.
func scatterQueryBatch(sis []*SpatialIndex, windows []geom.Rect, parallelism int) ([][]rtree.Item, int) {
	if len(sis) == 1 {
		return sis[0].queryBatch(windows, parallelism)
	}
	streams := make([][][]rtree.Item, len(windows))
	visited := 0
	for _, si := range sis {
		if si.Len() == 0 {
			continue
		}
		b := si.Bounds()
		var wi []int
		var sub []geom.Rect
		for i, w := range windows {
			if b.Intersects(w) {
				wi = append(wi, i)
				sub = append(sub, w)
			}
		}
		if len(sub) == 0 {
			continue
		}
		res, v := si.queryBatch(sub, parallelism)
		visited += v
		for j, i := range wi {
			if len(res[j]) > 0 {
				streams[i] = append(streams[i], res[j])
			}
		}
	}
	out := make([][]rtree.Item, len(windows))
	for i := range windows {
		out[i] = mergeItemStreams(streams[i])
	}
	return out, visited
}

// scatterItems gathers every live entry across sis in canonical order.
func scatterItems(sis []*SpatialIndex) ([]rtree.Item, int) {
	if len(sis) == 1 {
		return sis[0].items()
	}
	streams := make([][]rtree.Item, 0, len(sis))
	visited := 0
	for _, si := range sis {
		items, v := si.items()
		visited += v
		if len(items) > 0 {
			streams = append(streams, items)
		}
	}
	return mergeItemStreams(streams), visited
}

// JoinShardStats reports how much of the cross-shard pair product a
// juxtaposition actually joined: PairProduct counts the (shard, shard)
// pairs whose root bounds overlap (the work list the pre-PR 10 scatter
// spawned), PairsJoined the pairs whose subtree frontiers intersect —
// the only ones that can contribute result pairs and the only ones
// joined now.
type JoinShardStats struct {
	PairProduct int
	PairsJoined int
}

// JoinShardPairEstimate prices a cross-shard juxtaposition without
// running it: PairProduct counts the shard pairs whose bounds overlap,
// PairsJoined the ones whose frontiers intersect — exactly the pairs
// JuxtaposeSpatial will traverse. The planner divides the two for its
// shard-pair cardinality fraction. Cost: one frontier walk per
// non-empty shard (O(joinFrontierLimit × fanout) nodes), no joins.
func (r *Relation) JoinShardPairEstimate(picA string, s *Relation, picB string) (JoinShardStats, error) {
	as := r.spatialList(picA)
	if as == nil {
		return JoinShardStats{}, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, picA)
	}
	bs := s.spatialList(picB)
	if bs == nil {
		return JoinShardStats{}, fmt.Errorf("relation %s: no spatial index for picture %q", s.name, picB)
	}
	if len(as) == 1 && len(bs) == 1 {
		return JoinShardStats{PairProduct: 1, PairsJoined: 1}, nil
	}
	var stats JoinShardStats
	af := make([][]geom.Rect, len(as))
	bf := make([][]geom.Rect, len(bs))
	frontierOf := func(cache [][]geom.Rect, sis []*SpatialIndex, i int) []geom.Rect {
		if cache[i] == nil {
			cache[i] = sis[i].frontier()
		}
		return cache[i]
	}
	for i, ai := range as {
		if ai.Len() == 0 {
			continue
		}
		ab := ai.Bounds()
		for j, bj := range bs {
			if bj.Len() == 0 || !ab.Intersects(bj.Bounds()) {
				continue
			}
			stats.PairProduct++
			if frontiersIntersect(frontierOf(af, as, i), frontierOf(bf, bs, j)) {
				stats.PairsJoined++
			}
		}
	}
	return stats, nil
}

// scatterJuxtapose joins two index lists: shard pairs whose bounds
// overlap are candidates, and of those only the pairs whose R-tree
// frontiers (a bounded set of subtree MBRs per shard, Gutiérrez-style
// two-tree synchronized descent) actually intersect are juxtaposed
// with the merged-tier machinery. Pruned pairs provably contribute
// nothing: pred implies rectangle intersection and every live entry is
// covered by its side's frontier, so a pair of disjoint frontiers
// admits no qualifying entry pair. The union is sorted canonically by
// (A, B) and migration-window duplicates (an entry transiently on two
// shards during a split) are collapsed, so the result is bit-identical
// to joining two unsharded indexes. prune=false keeps the full
// bounds-overlap pair product — the baseline the benchmarks compare
// against.
func scatterJuxtapose(as, bs []*SpatialIndex, pred func(a, b geom.Rect) bool, workers int, prune bool) ([]rtree.JoinPair, int, JoinShardStats) {
	if len(as) == 1 && len(bs) == 1 {
		ps, v := juxtaposeMerged(as[0], bs[0], pred, workers)
		return ps, v, JoinShardStats{PairProduct: 1, PairsJoined: 1}
	}
	var stats JoinShardStats
	// Frontiers are computed once per shard, lazily: a shard whose
	// bounds overlap nothing never pays for one.
	af := make([][]geom.Rect, len(as))
	bf := make([][]geom.Rect, len(bs))
	frontierOf := func(cache [][]geom.Rect, sis []*SpatialIndex, i int) []geom.Rect {
		if cache[i] == nil {
			cache[i] = sis[i].frontier()
		}
		return cache[i]
	}
	var pairs []rtree.JoinPair
	visited := 0
	for i, ai := range as {
		if ai.Len() == 0 {
			continue
		}
		ab := ai.Bounds()
		for j, bj := range bs {
			if bj.Len() == 0 || !ab.Intersects(bj.Bounds()) {
				continue
			}
			stats.PairProduct++
			if prune && !frontiersIntersect(frontierOf(af, as, i), frontierOf(bf, bs, j)) {
				continue
			}
			stats.PairsJoined++
			ps, v := juxtaposeMerged(ai, bj, pred, workers)
			visited += v
			pairs = append(pairs, ps...)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A.Data != pairs[j].A.Data {
			return pairs[i].A.Data < pairs[j].A.Data
		}
		return pairs[i].B.Data < pairs[j].B.Data
	})
	// Collapse duplicates from migration windows: an entry joined on
	// both its source and destination shard yields the same (A, B) pair
	// twice, adjacent after the sort.
	dedup := pairs[:0]
	for _, p := range pairs {
		if len(dedup) > 0 {
			last := dedup[len(dedup)-1]
			if last.A.Data == p.A.Data && last.B.Data == p.B.Data {
				continue
			}
		}
		dedup = append(dedup, p)
	}
	return dedup, visited, stats
}

// forEachShard runs fn(s) for s in [0, n) with up to par goroutines,
// returning the first error by shard order.
func forEachShard(n, par int, fn func(s int) error) error {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par <= 1 || n <= 1 {
		for s := 0; s < n; s++ {
			if err := fn(s); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			errs[s] = fn(s)
			<-sem
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkSharded is Check for sharded relations: per-shard checks fan
// out over par goroutines (0 = GOMAXPROCS), then the global structures
// (route table cardinality, B-tree indexes) are verified against the
// shards.
func (r *Relation) checkSharded(par int) error {
	routes := r.routesSnapshot()
	nextSeq := r.nextSeq.Load()
	n := len(r.shardList())
	counts := make([]int, n)
	err := forEachShard(n, par, func(s int) error {
		n, err := r.checkShard(s, routes, nextSeq)
		counts[s] = n
		return err
	})
	if err != nil {
		return err
	}
	live := 0
	for _, v := range routes {
		if v != 0 {
			live++
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if live != total {
		return fmt.Errorf("relation %s: %w: route table has %d live entries, shard heaps hold %d records", r.name, storage.ErrCorrupt, live, total)
	}
	for col, idx := range r.indexes {
		if err := idx.CheckInvariants(); err != nil {
			return fmt.Errorf("relation %s: index %q: %w", r.name, col, err)
		}
		var resolveErr error
		idx.Ascend(func(_ []byte, v int64) bool {
			i := v - shardSeqBase
			if i < 0 || i >= int64(len(routes)) || routes[i] == 0 {
				resolveErr = fmt.Errorf("relation %s: index %q: entry %v: %w", r.name, col, storage.TupleIDFromInt64(v), storage.ErrNotFound)
				return false
			}
			return true
		})
		if resolveErr != nil {
			return resolveErr
		}
	}
	return nil
}

// checkShard validates one shard end to end — heap structure, every
// record's sequence header, route-table agreement, tuple decodability
// and schema conformance, and the shard's spatial indexes (structure
// plus entry ownership: every entry's id must route back to this
// shard). It returns the shard's live record count.
func (r *Relation) checkShard(s int, routes []int64, nextSeq int64) (int, error) {
	// Snapshot the shard's spatial indexes before taking the heap lock:
	// smu and a shard heap mutex are never nested (DESIGN.md §15).
	r.smu.RLock()
	lists := make(map[string]*SpatialIndex, len(r.shardSpatial))
	for pic, sis := range r.shardSpatial {
		lists[pic] = sis[s]
	}
	r.smu.RUnlock()
	sh := r.shardList()[s]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	wrap := func(err error) error {
		return fmt.Errorf("relation %s: shard %d: %w", r.name, s, err)
	}
	if err := sh.heap.Check(); err != nil {
		return 0, wrap(err)
	}
	live := 0
	var scanErr error
	err := sh.heap.Scan(func(lid storage.TupleID, rec []byte) bool {
		seq, payload, err := splitShardRecord(rec)
		if err != nil {
			scanErr = err
			return false
		}
		if seq >= nextSeq {
			scanErr = fmt.Errorf("%w: record sequence %d beyond high water %d", storage.ErrCorrupt, seq, nextSeq)
			return false
		}
		if routes[seq-shardSeqBase] != encodeRoute(s, lid) {
			scanErr = fmt.Errorf("%w: record %v sequence %d disagrees with route table", storage.ErrCorrupt, lid, seq)
			return false
		}
		t, err := DecodeTuple(payload)
		if err != nil {
			scanErr = err
			return false
		}
		if err := r.schema.Validate(t); err != nil {
			scanErr = err
			return false
		}
		live++
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return 0, wrap(err)
	}
	for pic, si := range lists {
		if err := si.checkInvariants(); err != nil {
			return 0, fmt.Errorf("relation %s: shard %d: spatial index %q: %w", r.name, s, pic, err)
		}
		items, _ := si.items()
		for _, it := range items {
			i := it.Data - shardSeqBase
			if i < 0 || i >= int64(len(routes)) || routes[i] == 0 {
				return 0, fmt.Errorf("relation %s: shard %d: spatial index %q: entry %v: %w", r.name, s, pic, storage.TupleIDFromInt64(it.Data), storage.ErrNotFound)
			}
			if owner, _ := decodeRoute(routes[i]); owner != s {
				return 0, fmt.Errorf("relation %s: shard %d: spatial index %q: %w: entry %v routes to shard %d", r.name, s, pic, storage.ErrCorrupt, storage.TupleIDFromInt64(it.Data), owner)
			}
		}
	}
	return live, nil
}

// CheckShards is Check with an explicit per-shard parallelism (the
// pictdbcheck -parallel path). It errors on unsharded relations.
func (r *Relation) CheckShards(par int) error {
	if !r.Sharded() {
		return fmt.Errorf("relation %s: not sharded", r.name)
	}
	return r.checkSharded(par)
}
