package relation

import (
	"bytes"
	"testing"
)

// FuzzDecodeTuple feeds arbitrary bytes to the tuple decoder. Seeds
// come from TestDecodeCorrupt: a valid encoding, its truncations, and
// a record with a bogus type tag. Properties: the decoder never
// panics on any input, and any input it accepts re-encodes and
// re-decodes to the same tuple (round-trip stability) — together the
// guarantee Database.Check relies on when it re-decodes every stored
// record.
func FuzzDecodeTuple(f *testing.F) {
	good := EncodeTuple(Tuple{S("abc"), I(5)})
	f.Add(append([]byte(nil), good...))
	for cut := 1; cut < len(good); cut++ {
		f.Add(append([]byte(nil), good[:cut]...))
	}
	f.Add([]byte{})
	bad := append([]byte(nil), good...)
	bad[1] = 200
	f.Add(bad)
	f.Add(EncodeTuple(Tuple{F(3.25), L("map", 7), S("")}))

	f.Fuzz(func(t *testing.T, data []byte) {
		tup, err := DecodeTuple(data)
		if err != nil {
			return // rejecting is always fine; panicking is not
		}
		re := EncodeTuple(tup)
		tup2, err := DecodeTuple(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted input failed to decode: %v (input %x)", err, data)
		}
		if !bytes.Equal(EncodeTuple(tup2), re) {
			t.Fatalf("decode/encode round-trip unstable for input %x", data)
		}
	})
}
