package relation

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/storage"
)

// This file implements skew-adaptive shard rebalancing (DESIGN.md §16):
// when inserts cluster and one shard's Hilbert key range soaks up most
// of the traffic, the shard is split — its range is cut at the
// occupancy median, a new sidecar shard is appended, and the upper
// half's tuples migrate over while readers and writers keep running.
//
// Correctness rests on three rules:
//
//   - The route table stays the single source of truth. Each tuple's
//     move is one atomic route swap under smu; a reader that loses the
//     race chases the route (fetchRouted), a deleter that wins it makes
//     the migration skip the tuple.
//   - Add-before-remove, ascending shard order. A migrating entry is
//     inserted into the destination's heap and spatial index before it
//     leaves the source's, and the destination's shard number is always
//     higher (splits append); readers visit shards in ascending order,
//     so every entry is seen at least once, and the gather merge
//     collapses the at-most-one duplicate.
//   - Destination-before-source durability. The new shard's pages and
//     the catalog record naming them commit before the source's
//     deletions do, so a crash at any fsync boundary leaves every tuple
//     durable in at least one shard; reopen repairs the byte-identical
//     duplicates (OpenSharded).

// KeyRange is the half-open Hilbert key range [Lo, Hi) routed to one
// shard.
type KeyRange struct {
	Lo, Hi uint64
}

// ErrShardNotSplittable reports a shard whose occupancy admits no
// interior split key — all resolvable tuples share one Hilbert key, or
// none resolve at all (hash-routed tuples have no spatial key).
var ErrShardNotSplittable = errors.New("relation: shard not splittable")

// evenKeyRanges divides the Hilbert key space evenly across n shards —
// the layout every relation starts with.
func evenKeyRanges(n int) []KeyRange {
	out := make([]KeyRange, n)
	for s := range out {
		out[s] = KeyRange{Lo: shardKeyLo(uint64(s), uint64(n)), Hi: shardKeyLo(uint64(s)+1, uint64(n))}
	}
	return out
}

// shardForKey returns the shard whose range contains key. Ranges
// partition [0, 1<<HilbertKeyBits), so the scan always lands; a key at
// or beyond every Hi (possible only for degenerate extents) routes to
// the shard owning the top of the key space.
func shardForKey(ranges []KeyRange, key uint64) int {
	for s, kr := range ranges {
		if key >= kr.Lo && key < kr.Hi {
			return s
		}
	}
	top := 0
	for s, kr := range ranges {
		if kr.Hi > ranges[top].Hi {
			top = s
		}
	}
	return top
}

// ShardBalanceInfo is one shard's entry in the balance report.
type ShardBalanceInfo struct {
	Shard        int
	Items        int64
	KeyLo, KeyHi uint64
}

// ShardBalance reports each shard's live tuple count and Hilbert key
// range, plus the imbalance factor: the largest shard's count over the
// mean (1 = perfectly balanced, 0 = empty relation).
func (r *Relation) ShardBalance() ([]ShardBalanceInfo, float64) {
	if !r.Sharded() {
		return nil, 0
	}
	r.smu.RLock()
	out := make([]ShardBalanceInfo, len(r.shardLive))
	total := int64(0)
	maxItems := int64(0)
	for s := range out {
		out[s] = ShardBalanceInfo{
			Shard: s,
			Items: r.shardLive[s],
			KeyLo: r.shardRanges[s].Lo,
			KeyHi: r.shardRanges[s].Hi,
		}
		total += r.shardLive[s]
		if r.shardLive[s] > maxItems {
			maxItems = r.shardLive[s]
		}
	}
	r.smu.RUnlock()
	if total == 0 {
		return out, 0
	}
	mean := float64(total) / float64(len(out))
	return out, float64(maxItems) / mean
}

// MostLoadedShard returns the shard the rebalancer should split next:
// the largest shard, provided the relation's imbalance factor is at
// least factor and that shard holds at least minTuples live tuples.
func (r *Relation) MostLoadedShard(factor float64, minTuples int) (int, bool) {
	infos, imbalance := r.ShardBalance()
	if len(infos) == 0 || imbalance < factor {
		return 0, false
	}
	best := 0
	for s := range infos {
		if infos[s].Items > infos[best].Items {
			best = s
		}
	}
	if infos[best].Items < int64(minTuples) {
		return 0, false
	}
	return best, true
}

// SetSplitHook installs a test probe called once halfway through the
// next split's migration loop, outside all locks — the oracle test's
// mid-migration query point. Not safe to set concurrently with splits.
func (r *Relation) SetSplitHook(fn func()) { r.splitHook = fn }

// SplitPending carries the source-heap cleanup a shard split defers:
// the migrated records still sitting in the source shard. They are
// removed by FinishSplit only after the destination shard and the
// catalog record naming it are durable, so no fsync boundary ever
// strands a tuple with zero durable copies.
type SplitPending struct {
	// Shard is the split's source shard.
	Shard int
	lids  []storage.TupleID
}

// Moved returns how many tuples the split migrated.
func (p *SplitPending) Moved() int {
	if p == nil {
		return 0
	}
	return len(p.lids)
}

// SplitShard splits shard src's Hilbert range at its occupancy median
// and migrates the upper half's tuples into a new shard backed by pgr
// (which must be a dedicated, freshly opened pager; the caller owns
// committing and closing it). The new shard's index is returned.
//
// The split is online: concurrent reads and writes observe bit-identical
// results throughout (see the file comment for the protocol). On return
// the route table, spatial indexes, and live counts are fully switched
// over, but the migrated records still exist in the source heap —
// callers must make the destination durable, then call FinishSplit to
// drop them (the database layer's SplitShard sequences this against the
// catalog checkpoint).
func (r *Relation) SplitShard(src int, pgr *pager.Pager) (int, *SplitPending, error) {
	if !r.Sharded() {
		return 0, nil, fmt.Errorf("relation %s: not sharded", r.name)
	}
	shs := r.shardList()
	if src < 0 || src >= len(shs) {
		return 0, nil, fmt.Errorf("relation %s: split shard %d out of range [0, %d)", r.name, src, len(shs))
	}
	if len(shs) >= MaxShards {
		return 0, nil, fmt.Errorf("relation %s: shard count %d at the %d-shard ceiling", r.name, len(shs), MaxShards)
	}

	r.smu.RLock()
	kr := r.shardRanges[src]
	pics := make([]*picture.Picture, 0, len(r.shardSpatial))
	for _, sis := range r.shardSpatial {
		pics = append(pics, sis[0].Picture)
	}
	r.smu.RUnlock()
	if len(pics) == 0 {
		return 0, nil, fmt.Errorf("%w: relation %s has no attached picture to derive Hilbert keys from", ErrShardNotSplittable, r.name)
	}

	// Collect the source shard's (sequence, Hilbert key) occupancy. The
	// snapshot is advisory — concurrent deletes and inserts are resolved
	// per tuple during migration — so racing traffic only shifts the
	// median, never correctness.
	type occupant struct {
		gid int64
		key uint64
	}
	var occ []occupant
	routes := r.routesSnapshot()
	for i, v := range routes {
		if v == 0 {
			continue
		}
		if s, _ := decodeRoute(v); s != src {
			continue
		}
		gid := shardSeqBase + int64(i)
		t, ok, err := r.fetchRouted(gid, v)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			continue
		}
		for _, pic := range pics {
			if rect, ok := r.locMBR(t, pic); ok {
				occ = append(occ, occupant{gid: gid, key: pack.HilbertKey(pic.Extent(), rect.Center())})
				break
			}
		}
	}

	// Split key: the median of the keys strictly inside (Lo, Hi). Keys
	// at Lo (or below, for stragglers placed before a rebalance) cannot
	// seed a non-empty lower half, so they are not candidates.
	var cands []uint64
	for _, o := range occ {
		if o.key > kr.Lo && o.key < kr.Hi {
			cands = append(cands, o.key)
		}
	}
	if len(cands) == 0 {
		return 0, nil, fmt.Errorf("%w: relation %s shard %d has no interior split key in [%d, %d)", ErrShardNotSplittable, r.name, src, kr.Lo, kr.Hi)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	mid := cands[len(cands)/2]
	var movers []occupant
	for _, o := range occ {
		if o.key >= mid {
			movers = append(movers, o)
		}
	}
	if len(movers) == 0 {
		return 0, nil, fmt.Errorf("%w: relation %s shard %d: split key %d moves nothing", ErrShardNotSplittable, r.name, src, mid)
	}
	sort.Slice(movers, func(i, j int) bool { return movers[i].gid < movers[j].gid })

	heap, _, err := storage.Create(pgr)
	if err != nil {
		return 0, nil, fmt.Errorf("relation %s: creating split shard heap: %w", r.name, err)
	}
	dstShard := &relShard{pgr: pgr, heap: heap}

	// Publish the new shard: grown shard list, narrowed source range,
	// empty per-picture spatial sidecars, zero live count. From here new
	// inserts with keys in [mid, Hi) route straight to the new shard.
	r.smu.Lock()
	grown := make([]*relShard, len(shs), len(shs)+1)
	copy(grown, shs)
	grown = append(grown, dstShard)
	dst := len(grown) - 1
	r.shards.Store(&grown)
	r.shardRanges[src] = KeyRange{Lo: kr.Lo, Hi: mid}
	r.shardRanges = append(r.shardRanges, KeyRange{Lo: mid, Hi: kr.Hi})
	r.shardLive = append(r.shardLive, 0)
	for pic, sis := range r.shardSpatial {
		gsis := make([]*SpatialIndex, len(sis), len(sis)+1)
		copy(gsis, sis)
		r.shardSpatial[pic] = append(gsis, sis[src].emptyClone())
	}
	r.smu.Unlock()

	hook := r.splitHook
	hookAt := (len(movers) + 1) / 2
	pending := &SplitPending{Shard: src}
	srcShard := shs[src]
	for moved, m := range movers {
		if hook != nil && moved == hookAt {
			hook()
		}
		v := r.routeNow(m.gid)
		if v == 0 {
			continue // deleted since the snapshot
		}
		s2, lid := decodeRoute(v)
		if s2 != src {
			continue // already moved (cannot happen today; splits are serialized)
		}
		srcShard.mu.RLock()
		rec, err := srcShard.heap.Get(lid)
		srcShard.mu.RUnlock()
		if err != nil {
			if r.routeNow(m.gid) != v {
				continue // lost a race with a delete
			}
			return 0, nil, fmt.Errorf("relation %s: shard %d: migrating %v: %w", r.name, src, storage.TupleIDFromInt64(m.gid), err)
		}
		t, err := decodeShardRecord(rec, m.gid)
		if err != nil {
			if r.routeNow(m.gid) != v {
				continue
			}
			return 0, nil, err
		}
		dstShard.mu.Lock()
		dlid, err := dstShard.heap.Insert(rec)
		dstShard.mu.Unlock()
		if err != nil {
			return 0, nil, fmt.Errorf("relation %s: shard %d: migrating %v: %w", r.name, dst, storage.TupleIDFromInt64(m.gid), err)
		}
		// The swap: route, live counts, and the spatial move commit
		// together under smu, so a deleter (which reads the route under
		// smu before touching any index) always targets exactly one
		// incarnation. The destination insert precedes the source delete
		// so concurrent readers, which visit shards in ascending order,
		// never miss the entry.
		r.smu.Lock()
		if r.routeAtLocked(m.gid) != v {
			r.smu.Unlock()
			dstShard.mu.Lock()
			_ = dstShard.heap.Delete(dlid)
			dstShard.mu.Unlock()
			continue // deleted between the read and the swap
		}
		r.routes[m.gid-shardSeqBase] = encodeRoute(dst, dlid)
		r.shardLive[src]--
		r.shardLive[dst]++
		r.routeEpoch.Add(1)
		for _, sis := range r.shardSpatial {
			if rect, ok := r.locMBR(t, sis[0].Picture); ok {
				sis[dst].insert(rect, m.gid)
				sis[src].delete(rect, m.gid)
			}
		}
		r.smu.Unlock()
		pending.lids = append(pending.lids, lid)
	}
	return dst, pending, nil
}

// FinishSplit removes the migrated records from the split's source
// heap. The database layer calls it only after the destination shard
// and the catalog record naming it are durable; the deletions become
// durable at the source's next commit. A crash before that commit
// leaves byte-identical duplicates on disk, which OpenSharded repairs.
func (r *Relation) FinishSplit(p *SplitPending) error {
	if p == nil || len(p.lids) == 0 {
		return nil
	}
	sh := r.shardList()[p.Shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, lid := range p.lids {
		if err := sh.heap.Delete(lid); err != nil {
			return fmt.Errorf("relation %s: shard %d: completing split: %w", r.name, p.Shard, err)
		}
	}
	return nil
}
