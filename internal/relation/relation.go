package relation

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/pager"
	"repro/internal/picture"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Relation is one table of the pictorial database: a tuple heap,
// secondary B-tree indexes on alphanumeric columns, and R-tree spatial
// indexes on the loc column, one per associated picture.
type Relation struct {
	name    string
	schema  Schema
	heap    *storage.Heap
	indexes map[string]*btree.Tree
	spatial map[string]*SpatialIndex
	// rtreeParams configures spatial indexes built for this relation.
	rtreeParams rtree.Params
	// spatialPolicy is the write policy applied to spatial indexes
	// attached after the call (zero value: WriteDelta).
	spatialPolicy WritePolicy

	// Sharded mode (DESIGN.md §15, §16). When the shard list is non-nil
	// the relation is split across N page files by Hilbert key range and
	// heap/spatial above stay nil: every access dispatches to the
	// sharded path. Global TupleIDs are insertion sequence numbers (not
	// heap addresses); routes maps sequence - shardSeqBase to a packed
	// (shard, local heap address) entry, 0 = dead. smu guards routes,
	// indexes, shardSpatial, shardRanges, and shardLive against
	// concurrent per-shard writers. The shard list itself is an atomic
	// pointer because a shard split appends to it while readers are in
	// flight: published copy-on-write under smu, loaded lock-free.
	shards       atomic.Pointer[[]*relShard]
	smu          sync.RWMutex
	routes       []int64
	nextSeq      atomic.Int64
	liveCount    atomic.Int64
	shardSpatial map[string][]*SpatialIndex
	// shardRanges holds each shard's half-open Hilbert key range
	// [Lo, Hi); routeShard places new tuples by range lookup. A split
	// narrows the source range and appends the new shard's.
	shardRanges []KeyRange
	// shardLive counts live tuples per shard — the rebalancer's
	// imbalance signal, maintained by insert/delete/migration.
	shardLive []int64
	// routeEpoch increments on every migration route swap; batch readers
	// retry when it moves mid-batch (see getBatchSharded).
	routeEpoch atomic.Int64
	// splitHook, when set, is called once halfway through a shard
	// split's migration loop — the oracle test's mid-migration probe.
	splitHook func()
}

// shardList returns the current shard list (nil when unsharded). The
// list is immutable once published; splits publish a grown copy.
func (r *Relation) shardList() []*relShard {
	p := r.shards.Load()
	if p == nil {
		return nil
	}
	return *p
}

// New creates an empty relation backed by a fresh heap in p.
func New(p *pager.Pager, name string, schema Schema) (*Relation, error) {
	h, _, err := storage.Create(p)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	return &Relation{
		name:        name,
		schema:      schema,
		heap:        h,
		indexes:     make(map[string]*btree.Tree),
		spatial:     make(map[string]*SpatialIndex),
		rtreeParams: rtree.DefaultParams(),
	}, nil
}

// Open reattaches to a relation whose tuple heap starts at first —
// the catalog's reopen path. Indexes are not rebuilt here; callers
// re-create them (CreateIndex, AttachPicture) from the catalog's
// records.
func Open(p *pager.Pager, name string, schema Schema, first pager.PageID) (*Relation, error) {
	h, err := storage.Open(p, first)
	if err != nil {
		return nil, fmt.Errorf("relation %s: %w", name, err)
	}
	return &Relation{
		name:        name,
		schema:      schema,
		heap:        h,
		indexes:     make(map[string]*btree.Tree),
		spatial:     make(map[string]*SpatialIndex),
		rtreeParams: rtree.DefaultParams(),
	}, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// HeapFirstPage returns the first page of the tuple heap, the handle
// the catalog persists to reopen the relation. Sharded relations have
// no heap in the main file (see ShardHeapFirstPages) and report
// InvalidPage.
func (r *Relation) HeapFirstPage() pager.PageID {
	if r.Sharded() {
		return pager.InvalidPage
	}
	return r.heap.FirstPage()
}

// IndexedColumns returns the names of columns with B-tree indexes, in
// unspecified order.
func (r *Relation) IndexedColumns() []string {
	out := make([]string, 0, len(r.indexes))
	for col := range r.indexes {
		out = append(out, col)
	}
	return out
}

// Schema returns the relation schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of stored tuples.
func (r *Relation) Len() int {
	if r.Sharded() {
		return int(r.liveCount.Load())
	}
	return r.heap.Len()
}

// SetRTreeParams overrides the parameters used for spatial indexes
// attached after the call.
func (r *Relation) SetRTreeParams(p rtree.Params) { r.rtreeParams = p }

// SetSpatialWritePolicy sets the write policy for every existing
// spatial index and for indexes attached after the call.
func (r *Relation) SetSpatialWritePolicy(p WritePolicy) {
	r.spatialPolicy = p
	for _, si := range r.spatial {
		si.SetWritePolicy(p)
	}
	r.smu.RLock()
	defer r.smu.RUnlock()
	for _, sis := range r.shardSpatial {
		for _, si := range sis {
			si.SetWritePolicy(p)
		}
	}
}

// WaitRepacks blocks until no spatial index has a background repack in
// flight.
func (r *Relation) WaitRepacks() {
	for _, si := range r.spatial {
		si.WaitRepack()
	}
	r.smu.RLock()
	all := make([]*SpatialIndex, 0, len(r.shardSpatial)*len(r.shardList()))
	for _, sis := range r.shardSpatial {
		all = append(all, sis...)
	}
	r.smu.RUnlock()
	for _, si := range all {
		si.WaitRepack()
	}
}

// Insert validates and stores t, updating every index. It returns the
// tuple's storage id.
func (r *Relation) Insert(t Tuple) (storage.TupleID, error) {
	if r.Sharded() {
		return r.insertSharded(t)
	}
	if err := r.schema.Validate(t); err != nil {
		return storage.TupleID{}, err
	}
	id, err := r.heap.Insert(EncodeTuple(t))
	if err != nil {
		return storage.TupleID{}, err
	}
	for col, idx := range r.indexes {
		ci := r.schema.ColumnIndex(col)
		idx.Insert(IndexKey(t[ci]), id.Int64())
	}
	for _, si := range r.spatial {
		if rect, ok := r.locMBR(t, si.Picture); ok {
			si.insert(rect, id.Int64())
		}
	}
	return id, nil
}

// locMBR resolves t's loc column against pic, returning the object's
// MBR when the tuple is associated with that picture.
func (r *Relation) locMBR(t Tuple, pic *picture.Picture) (geom.Rect, bool) {
	li := r.schema.LocColumn()
	if li < 0 {
		return geom.Rect{}, false
	}
	ref := t[li].Loc
	if ref.Picture != pic.Name() {
		return geom.Rect{}, false
	}
	obj, ok := pic.Get(ref.Object)
	if !ok {
		return geom.Rect{}, false
	}
	return obj.MBR(), true
}

// Get returns the tuple stored under id.
func (r *Relation) Get(id storage.TupleID) (Tuple, error) {
	if r.Sharded() {
		return r.getSharded(id)
	}
	rec, err := r.heap.Get(id)
	if err != nil {
		return nil, err
	}
	return DecodeTuple(rec)
}

// GetBatch materializes the tuples stored under ids, preserving input
// order: out[i] is the tuple for ids[i]. The heap pins each referenced
// page once (sorted page order, zero-copy view when mmap is active) and
// tuples are decoded in place; need selects which columns to
// materialize, as in DecodeTupleCols (nil = all). With workers > 1 (0
// means GOMAXPROCS) the batch is split into contiguous chunks decoded
// concurrently; output is identical at any worker count.
func (r *Relation) GetBatch(ids []storage.TupleID, need []bool, workers int) ([]Tuple, error) {
	if r.Sharded() {
		return r.getBatchSharded(ids, need, workers)
	}
	out := make([]Tuple, len(ids))
	if len(ids) == 0 {
		return out, nil
	}
	decode := func(lo, hi int) error {
		return r.heap.GetBatch(ids[lo:hi], func(i int, rec []byte) error {
			t, err := DecodeTupleCols(rec, need)
			if err != nil {
				return fmt.Errorf("relation %s: tuple %v: %w", r.name, ids[lo+i], err)
			}
			out[lo+i] = t
			return nil
		})
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Chunks below ~32 tuples cost more in goroutine churn and repeat
	// page pins than they save.
	const minChunk = 32
	if max := (len(ids) + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		if err := decode(0, len(ids)); err != nil {
			return nil, err
		}
		return out, nil
	}
	chunk := (len(ids) + workers - 1) / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = decode(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Delete removes the tuple stored under id from the heap and every
// index.
func (r *Relation) Delete(id storage.TupleID) error {
	if r.Sharded() {
		return r.deleteSharded(id)
	}
	t, err := r.Get(id)
	if err != nil {
		return err
	}
	if err := r.heap.Delete(id); err != nil {
		return err
	}
	for col, idx := range r.indexes {
		ci := r.schema.ColumnIndex(col)
		idx.Delete(IndexKey(t[ci]), id.Int64())
	}
	for _, si := range r.spatial {
		if rect, ok := r.locMBR(t, si.Picture); ok {
			si.delete(rect, id.Int64())
		}
	}
	return nil
}

// Update replaces the tuple stored under id with t, maintaining every
// index — the paper's §2.3: "an insertion or modification of a tuple
// should include spatial information for updating each of the spatial
// index associated with the updated relation". Records are immutable
// in the slotted pages, so the update is a delete plus insert; the new
// storage id is returned.
func (r *Relation) Update(id storage.TupleID, t Tuple) (storage.TupleID, error) {
	if err := r.schema.Validate(t); err != nil {
		return storage.TupleID{}, err
	}
	if err := r.Delete(id); err != nil {
		return storage.TupleID{}, err
	}
	return r.Insert(t)
}

// Scan calls fn on every tuple in storage order; returning false stops
// the scan.
func (r *Relation) Scan(fn func(id storage.TupleID, t Tuple) bool) error {
	if r.Sharded() {
		return r.scanSharded(fn)
	}
	var decodeErr error
	err := r.heap.Scan(func(id storage.TupleID, rec []byte) bool {
		t, err := DecodeTuple(rec)
		if err != nil {
			decodeErr = fmt.Errorf("relation %s: tuple %v: %w", r.name, id, err)
			return false
		}
		return fn(id, t)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// CreateIndex builds a B-tree index over the named alphanumeric
// column, indexing existing tuples ("the usual way" of §2.1).
func (r *Relation) CreateIndex(column string) error {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("relation %s: no column %q", r.name, column)
	}
	if r.schema.Columns[ci].Type == TypeLoc {
		return fmt.Errorf("relation %s: column %q is pictorial; use AttachPicture", r.name, column)
	}
	if _, dup := r.indexes[column]; dup {
		return fmt.Errorf("relation %s: column %q already indexed", r.name, column)
	}
	idx := btree.NewDefault()
	err := r.Scan(func(id storage.TupleID, t Tuple) bool {
		idx.Insert(IndexKey(t[ci]), id.Int64())
		return true
	})
	if err != nil {
		return err
	}
	r.rlockShardedW()
	r.indexes[column] = idx
	r.runlockShardedW()
	return nil
}

// rlockShardedW/runlockShardedW are the exclusive counterparts of
// rlockSharded, for index-map writes in sharded mode.
func (r *Relation) rlockShardedW() {
	if r.Sharded() {
		r.smu.Lock()
	}
}

func (r *Relation) runlockShardedW() {
	if r.Sharded() {
		r.smu.Unlock()
	}
}

// Index returns the B-tree index on the named column, or nil.
func (r *Relation) Index(column string) *btree.Tree { return r.indexes[column] }

// LookupEqual returns the storage ids of tuples whose column equals v,
// using the index when one exists and a scan otherwise.
func (r *Relation) LookupEqual(column string, v Value) ([]storage.TupleID, error) {
	ci := r.schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("relation %s: no column %q", r.name, column)
	}
	if idx := r.indexes[column]; idx != nil {
		r.rlockSharded()
		packed := idx.Get(IndexKey(v))
		r.runlockSharded()
		var out []storage.TupleID
		for _, p := range packed {
			out = append(out, storage.TupleIDFromInt64(p))
		}
		return out, nil
	}
	var out []storage.TupleID
	err := r.Scan(func(id storage.TupleID, t Tuple) bool {
		if t[ci].Eq(v) {
			out = append(out, id)
		}
		return true
	})
	return out, err
}

// Bound is one end of a range lookup.
type Bound struct {
	Value Value
	// Inclusive reports whether the bound itself qualifies.
	Inclusive bool
}

// LookupRange returns the storage ids of tuples whose column value v
// satisfies the given bounds (nil = unbounded) using the B-tree index.
// It reports ok=false when the column has no index, leaving the caller
// to scan.
func (r *Relation) LookupRange(column string, lo, hi *Bound) ([]storage.TupleID, bool) {
	idx := r.indexes[column]
	if idx == nil {
		return nil, false
	}
	var loKey []byte
	if lo != nil {
		loKey = IndexKey(lo.Value)
		if !lo.Inclusive {
			loKey = IndexKeySuccessor(loKey)
		}
	}
	var out []storage.TupleID
	collect := func(k []byte, v btree.Value) bool {
		out = append(out, storage.TupleIDFromInt64(v))
		return true
	}
	r.rlockSharded()
	defer r.runlockSharded()
	if hi == nil {
		idx.AscendFrom(loKey, collect)
		return out, true
	}
	hiKey := IndexKey(hi.Value)
	if hi.Inclusive {
		hiKey = IndexKeySuccessor(hiKey)
	}
	idx.AscendRange(loKey, hiKey, collect)
	return out, true
}

// rlockSharded/runlockSharded take the shard-state lock in sharded
// mode only: B-tree index reads must not race the route/index updates
// of concurrent per-shard writers. Unsharded relations keep their
// lock-free read path.
func (r *Relation) rlockSharded() {
	if r.Sharded() {
		r.smu.RLock()
	}
}

func (r *Relation) runlockSharded() {
	if r.Sharded() {
		r.smu.RUnlock()
	}
}

// AttachPicture associates the relation with pic and builds a packed
// R-tree over the loc column using the given packing options. This is
// the paper's initial PACK of a static database; subsequent Insert and
// Delete calls maintain the index dynamically (§3.4).
func (r *Relation) AttachPicture(pic *picture.Picture, opts pack.Options) error {
	if r.Sharded() {
		return r.attachPictureSharded(pic, opts)
	}
	if r.schema.LocColumn() < 0 {
		return fmt.Errorf("relation %s: schema has no loc column", r.name)
	}
	if _, dup := r.spatial[pic.Name()]; dup {
		return fmt.Errorf("relation %s: picture %q already attached", r.name, pic.Name())
	}
	var items []rtree.Item
	err := r.Scan(func(id storage.TupleID, t Tuple) bool {
		if rect, ok := r.locMBR(t, pic); ok {
			items = append(items, rtree.Item{Rect: rect, Data: id.Int64()})
		}
		return true
	})
	if err != nil {
		return err
	}
	tree := pack.Tree(r.rtreeParams, items, opts)
	si := newSpatialIndex(pic, tree, opts, r.rtreeParams)
	si.policy = r.spatialPolicy
	r.spatial[pic.Name()] = si
	return nil
}

// Spatial returns the spatial index for the named picture, or nil.
// Sharded relations have one index per shard, not one — use Spatials,
// HasSpatial, or SpatialCostSnapshot there; Spatial returns nil.
func (r *Relation) Spatial(pictureName string) *SpatialIndex {
	return r.spatial[pictureName]
}

// Pictures returns the names of all attached pictures.
func (r *Relation) Pictures() []string {
	if r.Sharded() {
		r.smu.RLock()
		defer r.smu.RUnlock()
		out := make([]string, 0, len(r.shardSpatial))
		for name := range r.shardSpatial {
			out = append(out, name)
		}
		return out
	}
	out := make([]string, 0, len(r.spatial))
	for name := range r.spatial {
		out = append(out, name)
	}
	return out
}

// SearchArea performs the paper's direct spatial search: it returns
// the storage ids of tuples whose loc object MBR satisfies pred
// against the window, using the R-tree for pruning. pred receives
// (objectMBR, window); use geom.CoveredBy for the paper's "loc
// covered-by W", geom.Overlapping for intersection, etc. The returned
// visit count is the number of R-tree nodes touched (summed across the
// packed and delta trees). Ids are returned in canonical ascending
// TupleID order, merged across packed + delta minus tombstones — the
// answer a single freshly packed tree would give. On a sharded
// relation the query scatters to only the shards whose bounds overlap
// the window and the streams gather-merge in the same canonical order.
func (r *Relation) SearchArea(pictureName string, window geom.Rect, pred func(obj, win geom.Rect) bool) ([]storage.TupleID, int, error) {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return nil, 0, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	items, visited := scatterQuery(sis, window)
	var out []storage.TupleID
	for _, it := range items {
		if pred(it.Rect, window) {
			out = append(out, storage.TupleIDFromInt64(it.Data))
		}
	}
	return out, visited, nil
}

// SpatialItems enumerates every live entry of the named picture's
// spatial index — (object MBR, storage id) pairs in canonical ascending
// TupleID order — along with a node-visit count charging every node of
// the merged trees. It is the executor's access path for predicates the
// R-tree cannot prune (the paper's "disjoined").
func (r *Relation) SpatialItems(pictureName string) ([]rtree.Item, int, error) {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return nil, 0, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	items, visited := scatterItems(sis)
	return items, visited, nil
}

// SearchAreaBatch answers many windows against one spatial index with
// up to parallelism goroutines (0 means GOMAXPROCS), using the
// R-tree's batched read path. results[i] holds the qualifying storage
// ids for windows[i] in canonical ascending-TupleID order — identical
// to calling SearchArea per window — and the visit count is summed
// across the batch and the merged trees. pred is called concurrently
// and must be a pure function of its arguments.
func (r *Relation) SearchAreaBatch(pictureName string, windows []geom.Rect, pred func(obj, win geom.Rect) bool, parallelism int) ([][]storage.TupleID, int, error) {
	sis := r.spatialList(pictureName)
	if sis == nil {
		return nil, 0, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	batches, visited := scatterQueryBatch(sis, windows, parallelism)
	out := make([][]storage.TupleID, len(batches))
	for i, items := range batches {
		var ids []storage.TupleID // nil when empty, like SearchArea
		for _, it := range items {
			if pred(it.Rect, windows[i]) {
				ids = append(ids, storage.TupleIDFromInt64(it.Data))
			}
		}
		out[i] = ids
	}
	return out, visited, nil
}

// SpatialPair is one juxtaposition result: the storage ids of the
// joined tuples, A from the left relation and B from the right.
type SpatialPair struct {
	A, B storage.TupleID
}

// JuxtaposeSpatial performs the paper's geographic join (§4) between
// this relation's spatial index on picA and s's index on picB: a
// simultaneous traversal of the two merged indexes (each constituent
// packed/delta tree pair juxtaposed, tombstoned entries dropped)
// reporting every tuple pair whose object MBRs satisfy pred, fanned
// out over up to workers goroutines (0 means GOMAXPROCS). Pairs are
// returned in canonical ascending (A, B) TupleID order and the
// node-pair visit count is identical at any worker count, so executors
// layered on top stay deterministic. pred must imply rectangle
// intersection (the pruning rule); it is called concurrently and must
// be pure.
func (r *Relation) JuxtaposeSpatial(picA string, s *Relation, picB string, pred func(a, b geom.Rect) bool, workers int) ([]SpatialPair, int, error) {
	out, _, visited, err := r.JuxtaposeSpatialStats(picA, s, picB, pred, workers, true)
	return out, visited, err
}

// JuxtaposeSpatialStats is JuxtaposeSpatial with the cross-shard pair
// telemetry exposed and frontier pruning made optional: with prune set,
// shard pairs whose subtree frontiers are disjoint are skipped (the
// result is provably identical — pred implies rectangle intersection);
// without it every bounds-overlapping pair is joined, the PR 9 baseline
// the benchmarks compare against. For unsharded relations the stats
// report the single 1×1 pair.
func (r *Relation) JuxtaposeSpatialStats(picA string, s *Relation, picB string, pred func(a, b geom.Rect) bool, workers int, prune bool) ([]SpatialPair, JoinShardStats, int, error) {
	as := r.spatialList(picA)
	if as == nil {
		return nil, JoinShardStats{}, 0, fmt.Errorf("relation %s: no spatial index for picture %q", r.name, picA)
	}
	bs := s.spatialList(picB)
	if bs == nil {
		return nil, JoinShardStats{}, 0, fmt.Errorf("relation %s: no spatial index for picture %q", s.name, picB)
	}
	pairs, visited, stats := scatterJuxtapose(as, bs, pred, workers, prune)
	out := make([]SpatialPair, len(pairs))
	for i, p := range pairs {
		out[i] = SpatialPair{
			A: storage.TupleIDFromInt64(p.A.Data),
			B: storage.TupleIDFromInt64(p.B.Data),
		}
	}
	return out, stats, visited, nil
}

// HeapPages returns the page ids of the relation's tuple heap, for
// page-ownership accounting during verification. Sharded relations own
// no pages of the main file (see ShardHeapPages) and return nil.
func (r *Relation) HeapPages() ([]pager.PageID, error) {
	if r.Sharded() {
		return nil, nil
	}
	return r.heap.Pages()
}

// Check validates the relation end to end: the heap's slotted-page
// structure (every page checksum-verified through the pager), every
// tuple's decodability and schema conformance, the structural
// invariants of each B-tree and spatial index, and that every index
// entry resolves to a live tuple. It returns the first problem found.
func (r *Relation) Check() error {
	if r.Sharded() {
		return r.checkSharded(0)
	}
	if err := r.heap.Check(); err != nil {
		return fmt.Errorf("relation %s: %w", r.name, err)
	}
	var decodeErr error
	err := r.heap.Scan(func(id storage.TupleID, rec []byte) bool {
		t, err := DecodeTuple(rec)
		if err != nil {
			decodeErr = fmt.Errorf("relation %s: tuple %v: %w", r.name, id, err)
			return false
		}
		if err := r.schema.Validate(t); err != nil {
			decodeErr = fmt.Errorf("relation %s: tuple %v: %w", r.name, id, err)
			return false
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("relation %s: %w", r.name, err)
	}
	if decodeErr != nil {
		return decodeErr
	}
	for col, idx := range r.indexes {
		if err := idx.CheckInvariants(); err != nil {
			return fmt.Errorf("relation %s: index %q: %w", r.name, col, err)
		}
		var resolveErr error
		idx.Ascend(func(_ []byte, v int64) bool {
			if _, err := r.heap.Get(storage.TupleIDFromInt64(v)); err != nil {
				resolveErr = fmt.Errorf("relation %s: index %q: entry %v: %w", r.name, col, storage.TupleIDFromInt64(v), err)
				return false
			}
			return true
		})
		if resolveErr != nil {
			return resolveErr
		}
	}
	for pic, si := range r.spatial {
		if err := si.checkInvariants(); err != nil {
			return fmt.Errorf("relation %s: spatial index %q: %w", r.name, pic, err)
		}
	}
	return nil
}

// RepackPicture rebuilds the spatial index for the named picture from
// the current tuples — the paper's §3.4 periodic reorganization of a
// drifted index. The index object is rebuilt in place (the SpatialIndex
// pointer stays valid): the new tree is packed from a heap scan with
// opts, and the delta, tombstones, and pending counters are cleared.
func (r *Relation) RepackPicture(pictureName string, opts pack.Options) error {
	if r.Sharded() {
		return r.repackPictureSharded(pictureName, opts)
	}
	si := r.spatial[pictureName]
	if si == nil {
		return fmt.Errorf("relation %s: no spatial index for picture %q", r.name, pictureName)
	}
	var items []rtree.Item
	err := r.Scan(func(id storage.TupleID, t Tuple) bool {
		if rect, ok := r.locMBR(t, si.Picture); ok {
			items = append(items, rtree.Item{Rect: rect, Data: id.Int64()})
		}
		return true
	})
	if err != nil {
		return err
	}
	si.rebuild(items, opts)
	return nil
}
