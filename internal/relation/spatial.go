package relation

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/pack"
	"repro/internal/picture"
	"repro/internal/rtree"
)

// This file implements the LSM-style write path for spatial indexes.
//
// The paper's bet is that PACK's near-optimal static trees beat Guttman
// dynamics on search cost — but a per-tuple Guttman insert into the
// packed tree steadily destroys exactly the coverage/overlap properties
// Table 1 celebrates. So writes are absorbed by the in-memory write
// side — an append-only L0 buffer feeding a small delta R-tree, with a
// tombstone set for deletes — reads merge packed + delta + L0 in
// canonical ascending-TupleID order, and a background repacker folds the
// write side back into a freshly packed tree when it crosses a
// threshold.
//
// The L0 buffer is what makes inserts O(1) on the writer's thread: an
// insert only appends an item, and a background absorber bulk-moves
// L0 entries into the delta R-tree in small batches under the lock.
// Every entry lives in exactly one tier at any instant (all moves
// happen under mu), so merged reads see each item exactly once.
// See DESIGN.md §12 for the lifecycle and its invariants.

// WritePolicy selects where Relation.Insert/Delete land for a spatial
// index.
type WritePolicy int

const (
	// WriteDelta (the default) absorbs writes into the in-memory delta
	// R-tree and tombstone set; the packed tree stays immutable between
	// repacks.
	WriteDelta WritePolicy = iota
	// WriteInPlace is the paper's §3.4 legacy behavior: per-tuple
	// Guttman INSERT/DELETE straight into the packed tree. Kept as the
	// measured baseline for the ingest benchmarks.
	WriteInPlace
)

// String names the policy.
func (p WritePolicy) String() string {
	switch p {
	case WriteDelta:
		return "delta"
	case WriteInPlace:
		return "in-place"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(p))
	}
}

// DefaultDeltaThreshold is the write-side size (L0 + live delta items
// plus pending tombstones) at which a background repack is triggered.
const DefaultDeltaThreshold = 4096

// DefaultAbsorbTrigger is the L0 length at which the background
// absorber starts draining the buffer into the delta R-tree.
const DefaultAbsorbTrigger = 512

// absorbBatch bounds how many L0 entries the absorber moves into the
// delta tree per lock acquisition, so readers and writers are never
// blocked behind a long drain.
const absorbBatch = 128

// deltaParams configures the write-absorbing delta tree. Wide nodes and
// the linear split make inserts cheap; the resulting tree quality does
// not matter much because the delta stays small and is periodically
// repacked away.
var deltaParams = rtree.Params{Max: 32, Min: 8, Split: rtree.SplitLinear}

// spatialSeq hands out lock-ordering ranks for SpatialIndex pairs.
var spatialSeq atomic.Int64

// SpatialIndex is an LSM index over a relation's loc column for one
// associated picture: a packed R-tree (read-optimized, immutable
// between repacks under WriteDelta) plus a write side made of an
// append-only L0 buffer, a small delta R-tree the background absorber
// drains the buffer into, and a tombstone set absorbing deletes. Leaf
// entries carry the MBR of the referenced spatial object and the
// tuple's storage id — the paper's "(I, tuple-identifier)".
//
// All reads merge packed + delta + L0 minus tombstones and return items
// in canonical ascending-TupleID order, bit-identical to a hypothetical
// single-tree execution. A background repacker merges the write side
// into the packed tree with parallel PACK and swaps the root atomically
// under the index lock.
type SpatialIndex struct {
	Picture *picture.Picture
	// Opts records how the index was packed, so a catalog reload can
	// rebuild it identically. Repacks reuse it (with TrimToMultiple
	// forced off so no live item is ever dropped).
	Opts pack.Options

	// params configures both the packed tree (at repack) and matches
	// the relation's rtreeParams at attach time.
	params rtree.Params
	// seq orders lock acquisition when two indexes are locked together
	// (juxtaposition): lower seq first, so no lock cycle can form.
	seq int64

	mu     sync.RWMutex
	packed *rtree.Tree
	// stats captures the packed tree's structural measures (Table 1's
	// node count, depth, coverage, overlap) as of the last pack/repack.
	// Under WriteDelta they describe the packed tree exactly; under
	// WriteInPlace they go stale as writes land (see CostSnapshot).
	stats rtree.Metrics
	// l0 is the append-only write buffer: inserts land here in O(1) and
	// the background absorber bulk-moves entries into delta, keeping
	// R-tree maintenance off the writer's critical path. Reads scan it
	// linearly (it is bounded by the repack threshold).
	l0 []rtree.Item
	// delta absorbs inserts under WriteDelta (via the L0 absorber).
	delta *rtree.Tree
	// frozen/frozenL0 are the previous delta tree and L0 buffer while a
	// background repack is merging them; nil otherwise. Immutable once
	// set.
	frozen   *rtree.Tree
	frozenL0 []rtree.Item
	// tombs holds the storage ids of deleted tuples whose entries still
	// exist in packed (or frozen). An id deleted straight out of the
	// active delta never enters tombs.
	tombs map[int64]struct{}
	// ts0 snapshots tombs at repack freeze time; nil when no repack is
	// in flight. The merging repack removes exactly ts0 from the packed
	// items, so reads filter packed by tombs but frozen only by
	// tombs∖ts0 (a frozen entry is newer than anything ts0 names: ids
	// are only reused after their tombstoned slot is reclaimed).
	ts0 map[int64]struct{}

	policy     WritePolicy
	threshold  int
	autoRepack bool
	// pendingIns/pendingDel count inserts/deletes not yet reflected in
	// stats — the planner's staleness correction. Reset by repacks to
	// whatever remains unabsorbed.
	pendingIns int
	pendingDel int
	repacks    int

	// repacking guards the single background repacker (and RepackNow)
	// via CAS; wg lets WaitRepack block on it.
	repacking atomic.Bool
	wg        sync.WaitGroup
	// absorbing guards the single background L0 absorber via CAS; awg
	// lets WaitAbsorb block on it.
	absorbing atomic.Bool
	awg       sync.WaitGroup
}

// newSpatialIndex wraps a freshly packed tree.
func newSpatialIndex(pic *picture.Picture, tree *rtree.Tree, opts pack.Options, params rtree.Params) *SpatialIndex {
	return &SpatialIndex{
		Picture:    pic,
		Opts:       opts,
		params:     params,
		seq:        spatialSeq.Add(1),
		packed:     tree,
		stats:      tree.ComputeMetrics(),
		delta:      rtree.New(deltaParams),
		tombs:      make(map[int64]struct{}),
		threshold:  DefaultDeltaThreshold,
		autoRepack: true,
	}
}

// CostSnapshot is a consistent view of everything the query planner
// needs to price a direct spatial search: the packed tree's stats, the
// merged bounds, and the live write-side counters. Taken under the
// index lock so the fields are mutually consistent.
type CostSnapshot struct {
	// Stats describes the packed tree as of the last pack/repack.
	Stats rtree.Metrics
	// Bounds is the MBR of everything live (packed ∪ frozen ∪ delta).
	Bounds geom.Rect
	// DeltaItems/DeltaNodes size the unpacked side (delta + frozen):
	// extra read amplification every merged search pays.
	DeltaItems int
	DeltaNodes int
	// Tombstones counts deleted ids still present in packed/frozen.
	Tombstones int
	// PendingInserts/PendingDeletes count writes since Stats was
	// computed. Under WriteDelta they are already covered by DeltaItems
	// and Tombstones; under WriteInPlace they measure how stale Stats
	// is.
	PendingInserts int
	PendingDeletes int
	// InPlace reports WriteInPlace (Stats drift with every write).
	InPlace bool
	// Repacking reports an in-flight background repack.
	Repacking bool
}

// CostSnapshot returns a consistent planner view of the index.
func (si *SpatialIndex) CostSnapshot() CostSnapshot {
	si.mu.RLock()
	defer si.mu.RUnlock()
	snap := CostSnapshot{
		Stats:          si.stats,
		Bounds:         si.packed.Bounds(),
		Tombstones:     len(si.tombs),
		PendingInserts: si.pendingIns,
		PendingDeletes: si.pendingDel,
		InPlace:        si.policy == WriteInPlace,
		Repacking:      si.frozen != nil,
	}
	if si.delta.Len() > 0 {
		snap.DeltaItems += si.delta.Len()
		snap.DeltaNodes += si.delta.NodeCount()
		snap.Bounds = snap.Bounds.Union(si.delta.Bounds())
	}
	if si.frozen != nil && si.frozen.Len() > 0 {
		snap.DeltaItems += si.frozen.Len()
		snap.DeltaNodes += si.frozen.NodeCount()
		snap.Bounds = snap.Bounds.Union(si.frozen.Bounds())
	}
	snap.DeltaItems += len(si.l0) + len(si.frozenL0)
	for _, it := range si.l0 {
		snap.Bounds = snap.Bounds.Union(it.Rect)
	}
	for _, it := range si.frozenL0 {
		snap.Bounds = snap.Bounds.Union(it.Rect)
	}
	return snap
}

// Stats returns the packed tree's structural measures as of the last
// pack/repack. See CostSnapshot for the staleness counters.
func (si *SpatialIndex) Stats() rtree.Metrics {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.stats
}

// PackedTree returns the current packed tree. Under WriteDelta the
// returned tree is immutable (a repack swaps in a new tree rather than
// mutating it), so callers may compute metrics on it concurrently with
// writers; it may be superseded at any moment.
func (si *SpatialIndex) PackedTree() *rtree.Tree {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.packed
}

// Len returns the number of live entries: packed + frozen + L0 + delta
// minus tombstones.
func (si *SpatialIndex) Len() int {
	si.mu.RLock()
	defer si.mu.RUnlock()
	n := si.packed.Len() + si.delta.Len() + len(si.l0) + len(si.frozenL0) - len(si.tombs)
	if si.frozen != nil {
		n += si.frozen.Len()
	}
	return n
}

// DeltaLen returns the number of items in the write-absorbing side (L0
// buffer and active delta, plus any frozen counterparts mid-repack).
func (si *SpatialIndex) DeltaLen() int {
	si.mu.RLock()
	defer si.mu.RUnlock()
	n := si.delta.Len() + len(si.l0) + len(si.frozenL0)
	if si.frozen != nil {
		n += si.frozen.Len()
	}
	return n
}

// TombstoneCount returns the number of pending tombstones.
func (si *SpatialIndex) TombstoneCount() int {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return len(si.tombs)
}

// Repacks returns how many repacks (background or synchronous) have
// completed since the index was built.
func (si *SpatialIndex) Repacks() int {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.repacks
}

// WritePolicy returns the current write policy.
func (si *SpatialIndex) WritePolicy() WritePolicy {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.policy
}

// SetWritePolicy changes where future writes land. Switching to
// WriteInPlace does not flush the delta; reads keep merging it until a
// repack folds it in.
func (si *SpatialIndex) SetWritePolicy(p WritePolicy) {
	si.mu.Lock()
	si.policy = p
	si.mu.Unlock()
}

// SetDeltaThreshold sets the delta size (live delta items + pending
// tombstones) that triggers a background repack. Zero or negative
// restores DefaultDeltaThreshold.
func (si *SpatialIndex) SetDeltaThreshold(n int) {
	if n <= 0 {
		n = DefaultDeltaThreshold
	}
	si.mu.Lock()
	si.threshold = n
	si.mu.Unlock()
}

// SetAutoRepack enables or disables the background repacker. With it
// off the delta grows without bound until RepackNow is called — the
// stop-the-world baseline the benchmarks measure.
func (si *SpatialIndex) SetAutoRepack(on bool) {
	si.mu.Lock()
	si.autoRepack = on
	si.mu.Unlock()
}

// Bounds returns the MBR of everything live in the index.
func (si *SpatialIndex) Bounds() geom.Rect {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.boundsLocked()
}

func (si *SpatialIndex) boundsLocked() geom.Rect {
	b := si.packed.Bounds()
	if si.delta.Len() > 0 {
		b = b.Union(si.delta.Bounds())
	}
	if si.frozen != nil && si.frozen.Len() > 0 {
		b = b.Union(si.frozen.Bounds())
	}
	for _, it := range si.l0 {
		b = b.Union(it.Rect)
	}
	for _, it := range si.frozenL0 {
		b = b.Union(it.Rect)
	}
	return b
}

// insert routes one new entry according to the write policy and
// triggers the background absorber/repacker when their thresholds
// cross. Under WriteDelta the writer's cost is one slice append.
func (si *SpatialIndex) insert(r geom.Rect, id int64) {
	si.mu.Lock()
	if si.policy == WriteInPlace {
		si.packed.Insert(r, id)
	} else {
		si.l0 = append(si.l0, rtree.Item{Rect: r, Data: id})
	}
	si.pendingIns++
	absorb := len(si.l0) >= DefaultAbsorbTrigger
	due := si.repackDueLocked()
	si.mu.Unlock()
	if due {
		si.triggerRepack()
	} else if absorb {
		si.triggerAbsorb()
	}
}

// delete routes one removal: straight out of the L0 buffer or the
// active delta when the entry lives there, a tombstone otherwise.
func (si *SpatialIndex) delete(r geom.Rect, id int64) {
	si.mu.Lock()
	switch {
	case si.policy == WriteInPlace:
		si.packed.Delete(r, id)
	case si.l0Delete(id):
		// The entry never left the L0 buffer; no tombstone needed.
	case si.delta.Delete(r, id):
		// The entry never left the active delta; no tombstone needed.
	default:
		si.tombs[id] = struct{}{}
	}
	si.pendingDel++
	due := si.repackDueLocked()
	si.mu.Unlock()
	if due {
		si.triggerRepack()
	}
}

// l0Delete removes the entry with the given id from the L0 buffer,
// reporting whether it was there. Caller holds mu exclusively.
func (si *SpatialIndex) l0Delete(id int64) bool {
	for i, it := range si.l0 {
		if it.Data == id {
			si.l0 = append(si.l0[:i], si.l0[i+1:]...)
			return true
		}
	}
	return false
}

// repackDueLocked reports whether the write side has outgrown the
// threshold. Caller holds mu (any mode).
func (si *SpatialIndex) repackDueLocked() bool {
	if si.policy != WriteDelta || !si.autoRepack {
		return false
	}
	// Tombstones already being merged away (ts0) don't count as
	// pending.
	pendingTombs := len(si.tombs) - len(si.ts0)
	return si.delta.Len()+len(si.l0)+pendingTombs >= si.threshold
}

// triggerAbsorb starts the background L0 absorber unless one is already
// running. Like triggerRepack it re-checks after releasing the flag so
// a writer racing the handoff cannot strand a full buffer.
func (si *SpatialIndex) triggerAbsorb() {
	if !si.absorbing.CompareAndSwap(false, true) {
		return
	}
	si.awg.Add(1)
	go func() {
		defer si.awg.Done()
		for si.absorbOnce() {
		}
		si.absorbing.Store(false)
		si.mu.RLock()
		again := len(si.l0) >= DefaultAbsorbTrigger
		si.mu.RUnlock()
		if again {
			si.triggerAbsorb()
		}
	}()
}

// absorbOnce moves up to absorbBatch L0 entries into the delta R-tree
// and reports whether the buffer still has entries. The move happens
// under the exclusive lock, so each entry is visible in exactly one
// tier at any instant; the batch bound keeps the lock hold short.
func (si *SpatialIndex) absorbOnce() bool {
	si.mu.Lock()
	defer si.mu.Unlock()
	n := len(si.l0)
	if n == 0 {
		return false
	}
	if n > absorbBatch {
		n = absorbBatch
	}
	for _, it := range si.l0[:n] {
		si.delta.Insert(it.Rect, it.Data)
	}
	if n == len(si.l0) {
		si.l0 = nil
	} else {
		si.l0 = si.l0[n:]
	}
	return len(si.l0) > 0
}

// WaitAbsorb blocks until no background absorber is running. Pending L0
// entries remain readable throughout; this only matters to callers that
// want a quiescent index (benchmarks, tests).
func (si *SpatialIndex) WaitAbsorb() {
	for si.absorbing.Load() {
		si.awg.Wait()
		runtime.Gosched()
	}
}

func (si *SpatialIndex) repackDue() bool {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.repackDueLocked()
}

// triggerRepack starts the background repacker unless one is already
// running. The repacker loops while the (re-filled) delta stays over
// the threshold, then re-checks once after releasing the flag so a
// writer racing the handoff cannot strand an over-threshold delta.
func (si *SpatialIndex) triggerRepack() {
	if !si.repacking.CompareAndSwap(false, true) {
		return
	}
	si.wg.Add(1)
	go func() {
		defer si.wg.Done()
		for si.repackDue() {
			si.repackOnce()
		}
		si.repacking.Store(false)
		if si.repackDue() {
			si.triggerRepack()
		}
	}()
}

// WaitRepack blocks until no background repack is running. It loops
// because a finishing repacker may immediately hand off to a successor.
func (si *SpatialIndex) WaitRepack() {
	for si.repacking.Load() {
		si.wg.Wait()
		runtime.Gosched()
	}
}

// RepackNow synchronously merges the delta into the packed tree. With
// stopTheWorld the whole merge+pack runs under the exclusive index lock
// (readers and writers blocked throughout — the baseline strategy);
// otherwise it runs one background-style repack inline (readers keep
// going, writers only blocked during freeze and swap). Either way any
// in-flight background repack is waited out first, so on return the
// write side is fully absorbed.
func (si *SpatialIndex) RepackNow(stopTheWorld bool) {
	// Take the repacker slot so no background repack interleaves.
	for !si.repacking.CompareAndSwap(false, true) {
		si.wg.Wait()
		runtime.Gosched()
	}
	if stopTheWorld {
		si.repackSTW()
	} else {
		si.repackOnce()
	}
	si.repacking.Store(false)
	if si.repackDue() {
		si.triggerRepack()
	}
}

// repackOnce is one background repack cycle: freeze the write side,
// merge and pack outside the lock, swap the new root in. Caller owns
// the repacking flag.
func (si *SpatialIndex) repackOnce() {
	// Freeze: the active delta and L0 buffer become immutable, fresh
	// ones take writes, and the tombstone set is snapshotted.
	si.mu.Lock()
	if si.delta.Len() == 0 && len(si.l0) == 0 && len(si.tombs) == 0 {
		si.mu.Unlock()
		return
	}
	frozen := si.delta
	frozenL0 := si.l0
	si.delta = rtree.New(deltaParams)
	si.l0 = nil
	ts0 := make(map[int64]struct{}, len(si.tombs))
	for id := range si.tombs {
		ts0[id] = struct{}{}
	}
	si.frozen, si.frozenL0, si.ts0 = frozen, frozenL0, ts0
	packed := si.packed
	si.mu.Unlock()

	// Merge + pack outside the lock: packed and the frozen write side
	// are immutable now, so readers proceed concurrently against the
	// merged view.
	tree := si.packMerged(packed, frozen, frozenL0, ts0)
	stats := tree.ComputeMetrics()

	// Swap: new root in, absorbed tombstones out.
	si.mu.Lock()
	si.packed, si.stats = tree, stats
	for id := range ts0 {
		delete(si.tombs, id)
	}
	si.frozen, si.frozenL0, si.ts0 = nil, nil, nil
	si.pendingIns = si.delta.Len() + len(si.l0)
	si.pendingDel = len(si.tombs)
	si.repacks++
	si.mu.Unlock()
}

// repackSTW collapses packed + frozen + delta into one packed tree
// under the exclusive lock — the stop-the-world baseline.
func (si *SpatialIndex) repackSTW() {
	si.mu.Lock()
	defer si.mu.Unlock()
	items := make([]rtree.Item, 0, si.packed.Len()+si.delta.Len()+len(si.l0))
	for _, it := range si.packed.Items() {
		if _, dead := si.tombs[it.Data]; !dead {
			items = append(items, it)
		}
	}
	if si.frozen != nil {
		for _, it := range si.frozen.Items() {
			if !si.frozenDeadLocked(it.Data) {
				items = append(items, it)
			}
		}
	}
	for _, it := range si.frozenL0 {
		if !si.frozenDeadLocked(it.Data) {
			items = append(items, it)
		}
	}
	items = append(items, si.delta.Items()...)
	items = append(items, si.l0...)
	opts := si.Opts
	opts.TrimToMultiple = false
	tree := pack.Tree(si.params, items, opts)
	si.packed, si.stats = tree, tree.ComputeMetrics()
	si.delta = rtree.New(deltaParams)
	si.l0 = nil
	si.frozen, si.frozenL0, si.ts0 = nil, nil, nil
	si.tombs = make(map[int64]struct{})
	si.pendingIns, si.pendingDel = 0, 0
	si.repacks++
}

// packMerged packs (packed ∖ ts0) ∪ frozen ∪ frozenL0 with the index's
// recorded options, TrimToMultiple forced off so no live item is
// dropped.
func (si *SpatialIndex) packMerged(packed, frozen *rtree.Tree, frozenL0 []rtree.Item, ts0 map[int64]struct{}) *rtree.Tree {
	items := make([]rtree.Item, 0, packed.Len()+frozen.Len()+len(frozenL0))
	for _, it := range packed.Items() {
		if _, dead := ts0[it.Data]; !dead {
			items = append(items, it)
		}
	}
	items = append(items, frozen.Items()...)
	items = append(items, frozenL0...)
	opts := si.Opts
	opts.TrimToMultiple = false
	return pack.Tree(si.params, items, opts)
}

// rebuild replaces the whole index with a fresh pack of items (the
// explicit RepackPicture / catalog path), clearing the write side.
// Takes the repacker slot so no background repack interleaves.
func (si *SpatialIndex) rebuild(items []rtree.Item, opts pack.Options) {
	for !si.repacking.CompareAndSwap(false, true) {
		si.wg.Wait()
		runtime.Gosched()
	}
	tree := pack.Tree(si.params, items, opts)
	stats := tree.ComputeMetrics()
	si.mu.Lock()
	si.Opts = opts
	si.packed, si.stats = tree, stats
	si.delta = rtree.New(deltaParams)
	si.l0 = nil
	si.frozen, si.frozenL0, si.ts0 = nil, nil, nil
	si.tombs = make(map[int64]struct{})
	si.pendingIns, si.pendingDel = 0, 0
	si.repacks++
	si.mu.Unlock()
	si.repacking.Store(false)
}

// frozenDeadLocked reports whether a frozen-delta entry is tombstoned.
// Only tombstones created after the freeze (tombs ∖ ts0) apply: the
// merging repack removes exactly ts0 from packed, and an id in ts0
// cannot name a frozen entry (its delta insert would postdate the
// freeze and land in the active delta). Caller holds mu (any mode).
func (si *SpatialIndex) frozenDeadLocked(id int64) bool {
	if _, dead := si.tombs[id]; !dead {
		return false
	}
	_, absorbed := si.ts0[id]
	return !absorbed
}

// sortItemsByData orders items by ascending data pointer. TupleID's
// int64 encoding (page<<16|slot) is order-preserving, so this is
// canonical ascending-TupleID order.
func sortItemsByData(items []rtree.Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].Data < items[j].Data })
}

// query returns every live item intersecting window, merged across
// packed + frozen + delta minus tombstones, in canonical ascending-
// TupleID order, plus the number of R-tree nodes visited (summed over
// the searched trees).
func (si *SpatialIndex) query(window geom.Rect) ([]rtree.Item, int) {
	si.mu.RLock()
	defer si.mu.RUnlock()
	var out []rtree.Item
	visited := si.packed.Search(window, func(it rtree.Item) bool {
		if _, dead := si.tombs[it.Data]; !dead {
			out = append(out, it)
		}
		return true
	})
	if si.frozen != nil && si.frozen.Len() > 0 {
		visited += si.frozen.Search(window, func(it rtree.Item) bool {
			if !si.frozenDeadLocked(it.Data) {
				out = append(out, it)
			}
			return true
		})
	}
	if si.delta.Len() > 0 {
		visited += si.delta.Search(window, func(it rtree.Item) bool {
			out = append(out, it)
			return true
		})
	}
	for _, it := range si.frozenL0 {
		if it.Rect.Intersects(window) && !si.frozenDeadLocked(it.Data) {
			out = append(out, it)
		}
	}
	for _, it := range si.l0 {
		if it.Rect.Intersects(window) {
			out = append(out, it)
		}
	}
	sortItemsByData(out)
	return out, visited
}

// queryBatch answers many windows with up to parallelism goroutines per
// tree, merging like query. results[i] is canonically ordered.
func (si *SpatialIndex) queryBatch(windows []geom.Rect, parallelism int) ([][]rtree.Item, int) {
	si.mu.RLock()
	defer si.mu.RUnlock()
	res, visited := si.packed.QueryBatch(windows, parallelism)
	if res == nil {
		res = make([][]rtree.Item, len(windows))
	}
	if len(si.tombs) > 0 {
		for i, items := range res {
			live := items[:0]
			for _, it := range items {
				if _, dead := si.tombs[it.Data]; !dead {
					live = append(live, it)
				}
			}
			res[i] = live
		}
	}
	if si.frozen != nil && si.frozen.Len() > 0 {
		fr, v := si.frozen.QueryBatch(windows, parallelism)
		visited += v
		for i := range fr {
			for _, it := range fr[i] {
				if !si.frozenDeadLocked(it.Data) {
					res[i] = append(res[i], it)
				}
			}
		}
	}
	if si.delta.Len() > 0 {
		dr, v := si.delta.QueryBatch(windows, parallelism)
		visited += v
		for i := range dr {
			res[i] = append(res[i], dr[i]...)
		}
	}
	if len(si.frozenL0) > 0 || len(si.l0) > 0 {
		for i, w := range windows {
			for _, it := range si.frozenL0 {
				if it.Rect.Intersects(w) && !si.frozenDeadLocked(it.Data) {
					res[i] = append(res[i], it)
				}
			}
			for _, it := range si.l0 {
				if it.Rect.Intersects(w) {
					res[i] = append(res[i], it)
				}
			}
		}
	}
	for i := range res {
		sortItemsByData(res[i])
	}
	return res, visited
}

// items enumerates every live entry in canonical ascending-TupleID
// order. The visit count charges every node of every searched tree —
// what a Search over the full bounds would visit.
func (si *SpatialIndex) items() ([]rtree.Item, int) {
	si.mu.RLock()
	defer si.mu.RUnlock()
	return si.itemsLocked()
}

func (si *SpatialIndex) itemsLocked() ([]rtree.Item, int) {
	var out []rtree.Item
	visited := si.packed.NodeCount()
	for _, it := range si.packed.Items() {
		if _, dead := si.tombs[it.Data]; !dead {
			out = append(out, it)
		}
	}
	if si.frozen != nil && si.frozen.Len() > 0 {
		visited += si.frozen.NodeCount()
		for _, it := range si.frozen.Items() {
			if !si.frozenDeadLocked(it.Data) {
				out = append(out, it)
			}
		}
	}
	if si.delta.Len() > 0 {
		visited += si.delta.NodeCount()
		out = append(out, si.delta.Items()...)
	}
	for _, it := range si.frozenL0 {
		if !si.frozenDeadLocked(it.Data) {
			out = append(out, it)
		}
	}
	out = append(out, si.l0...)
	sortItemsByData(out)
	return out, visited
}

// sideTree is one live constituent tree of an index plus its
// tombstone filter, for merged juxtaposition.
type sideTree struct {
	tree *rtree.Tree
	dead func(id int64) bool
}

// liveTreesLocked returns the non-empty constituent trees. The L0
// buffers are loaded into throwaway trees so the join machinery (and
// its node-level pruning) applies to every tier uniformly. Caller holds
// mu (any mode), and must hold it for as long as the trees are used.
func (si *SpatialIndex) liveTreesLocked() []sideTree {
	never := func(int64) bool { return false }
	var out []sideTree
	if si.packed.Len() > 0 {
		dead := never
		if len(si.tombs) > 0 {
			dead = func(id int64) bool {
				_, d := si.tombs[id]
				return d
			}
		}
		out = append(out, sideTree{tree: si.packed, dead: dead})
	}
	if si.frozen != nil && si.frozen.Len() > 0 {
		out = append(out, sideTree{tree: si.frozen, dead: si.frozenDeadLocked})
	}
	if si.delta.Len() > 0 {
		out = append(out, sideTree{tree: si.delta, dead: never})
	}
	if len(si.frozenL0) > 0 {
		out = append(out, sideTree{tree: treeOf(si.frozenL0), dead: si.frozenDeadLocked})
	}
	if len(si.l0) > 0 {
		out = append(out, sideTree{tree: treeOf(si.l0), dead: never})
	}
	return out
}

// treeOf loads items into a fresh delta-shaped tree (for joins over the
// L0 buffers; the buffers are bounded by the repack threshold).
func treeOf(items []rtree.Item) *rtree.Tree {
	t := rtree.New(deltaParams)
	for _, it := range items {
		t.Insert(it.Rect, it.Data)
	}
	return t
}

// juxtaposeMerged joins two (possibly identical) indexes: every
// constituent-tree pair is juxtaposed with the PR 4 parallel machinery,
// tombstoned pairs dropped, and the union sorted canonically by
// (A.Data, B.Data) — bit-identical to joining two hypothetical single
// trees. Both indexes are read-locked in seq order so no lock cycle can
// form against another join running the opposite direction.
func juxtaposeMerged(si, sj *SpatialIndex, pred func(a, b geom.Rect) bool, workers int) ([]rtree.JoinPair, int) {
	if si == sj {
		si.mu.RLock()
		defer si.mu.RUnlock()
	} else if si.seq < sj.seq {
		si.mu.RLock()
		defer si.mu.RUnlock()
		sj.mu.RLock()
		defer sj.mu.RUnlock()
	} else {
		sj.mu.RLock()
		defer sj.mu.RUnlock()
		si.mu.RLock()
		defer si.mu.RUnlock()
	}
	aTrees := si.liveTreesLocked()
	bTrees := sj.liveTreesLocked()
	var pairs []rtree.JoinPair
	visited := 0
	for _, ta := range aTrees {
		for _, tb := range bTrees {
			ps, v := rtree.Juxtapose(ta.tree, tb.tree, pred, workers)
			visited += v
			for _, p := range ps {
				if ta.dead(p.A.Data) || tb.dead(p.B.Data) {
					continue
				}
				pairs = append(pairs, p)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A.Data != pairs[j].A.Data {
			return pairs[i].A.Data < pairs[j].A.Data
		}
		return pairs[i].B.Data < pairs[j].B.Data
	})
	return pairs, visited
}

// joinFrontierLimit bounds the per-shard frontier used to prune
// cross-shard juxtaposition pairs: enough rectangles to separate
// clusters the root MBR would smear together, few enough that the
// O(K²) pairwise intersection test stays trivial next to one join.
const joinFrontierLimit = 24

// frontier returns a bounded set of rectangles covering every live
// entry in the index: a breadth-first frontier of each constituent tree
// plus the L0 buffers' item rects (collapsed to their union when
// oversized). Tombstoned entries may still be covered — the frontier is
// conservative, which only costs a pruning opportunity, never a pair.
func (si *SpatialIndex) frontier() []geom.Rect {
	si.mu.RLock()
	defer si.mu.RUnlock()
	out := si.packed.FrontierRects(joinFrontierLimit)
	if si.frozen != nil && si.frozen.Len() > 0 {
		out = append(out, si.frozen.FrontierRects(joinFrontierLimit)...)
	}
	if si.delta.Len() > 0 {
		out = append(out, si.delta.FrontierRects(joinFrontierLimit)...)
	}
	nl0 := len(si.l0) + len(si.frozenL0)
	switch {
	case nl0 == 0:
	case nl0 <= joinFrontierLimit:
		for _, it := range si.frozenL0 {
			out = append(out, it.Rect)
		}
		for _, it := range si.l0 {
			out = append(out, it.Rect)
		}
	default:
		// Too many loose items for per-item rects. A single global
		// union would be the shard's full bounds and erase the
		// frontier's pruning power exactly when the write side is warm,
		// so cover the items with Hilbert-chunked group unions instead:
		// sorted along the curve, spatially-near items share a chunk
		// and the unions stay tight.
		rects := make([]geom.Rect, 0, nl0)
		for _, it := range si.frozenL0 {
			rects = append(rects, it.Rect)
		}
		for _, it := range si.l0 {
			rects = append(rects, it.Rect)
		}
		ext := si.Picture.Extent()
		sort.Slice(rects, func(a, b int) bool {
			return pack.HilbertKey(ext, rects[a].Center()) < pack.HilbertKey(ext, rects[b].Center())
		})
		per := (len(rects) + joinFrontierLimit - 1) / joinFrontierLimit
		for i := 0; i < len(rects); i += per {
			end := i + per
			if end > len(rects) {
				end = len(rects)
			}
			u := rects[i]
			for _, r := range rects[i+1 : end] {
				u = u.Union(r)
			}
			out = append(out, u)
		}
	}
	return out
}

// frontiersIntersect reports whether any rectangle of a intersects any
// of b — the shard-pair admission test for cross-shard juxtaposition.
func frontiersIntersect(a, b []geom.Rect) bool {
	for _, ra := range a {
		for _, rb := range b {
			if ra.Intersects(rb) {
				return true
			}
		}
	}
	return false
}

// emptyClone returns a fresh empty index with the same picture, pack
// options, tree parameters, and write configuration — the spatial
// sidecar a shard split creates for its destination shard.
func (si *SpatialIndex) emptyClone() *SpatialIndex {
	si.mu.RLock()
	opts := si.Opts
	params := si.params
	policy := si.policy
	threshold := si.threshold
	auto := si.autoRepack
	si.mu.RUnlock()
	packOpts := opts
	packOpts.TrimToMultiple = false
	clone := newSpatialIndex(si.Picture, pack.Tree(params, nil, packOpts), opts, params)
	clone.policy = policy
	clone.threshold = threshold
	clone.autoRepack = auto
	return clone
}

// checkInvariants validates every constituent tree plus the LSM
// bookkeeping invariants.
func (si *SpatialIndex) checkInvariants() error {
	si.mu.RLock()
	defer si.mu.RUnlock()
	if err := si.packed.CheckInvariants(); err != nil {
		return fmt.Errorf("packed: %w", err)
	}
	if err := si.delta.CheckInvariants(); err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	if si.frozen != nil {
		if err := si.frozen.CheckInvariants(); err != nil {
			return fmt.Errorf("frozen delta: %w", err)
		}
	}
	for id := range si.ts0 {
		if _, ok := si.tombs[id]; !ok {
			return fmt.Errorf("tombstone snapshot id %d missing from live set", id)
		}
	}
	if si.ts0 != nil && si.frozen == nil {
		return fmt.Errorf("tombstone snapshot present without frozen delta")
	}
	if len(si.frozenL0) > 0 && si.frozen == nil {
		return fmt.Errorf("frozen L0 buffer present without frozen delta")
	}
	// Note: an L0/delta entry may share its id with a tombstone — ids
	// are reused once their tombstoned slot is reclaimed, and the
	// tombstone then names only the packed/frozen incarnation.
	return nil
}
