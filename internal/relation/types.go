// Package relation implements the alphanumeric side of the pictorial
// database and its integration points with the pictorial side:
// schemas over alphanumeric and pictorial domains, binary tuple
// encoding for heap storage, order-preserving key encodings for B-tree
// indexes, and Relation — a heap-backed table with secondary B-tree
// indexes on alphanumeric columns and packed R-tree indexes on its loc
// column, one per associated picture (§2.1 of the paper: "a pictorial
// relation could be associated with more than one picture ... one
// identifier is required for each picture association").
package relation

import (
	"fmt"
	"strings"

	"repro/internal/picture"
)

// Type enumerates the column domains: the usual alphanumeric domains
// plus the pictorial pointer domain of the paper's "loc" columns.
type Type int

const (
	// TypeInt is a 64-bit integer domain.
	TypeInt Type = iota
	// TypeFloat is a float64 domain.
	TypeFloat
	// TypeString is a string domain.
	TypeString
	// TypeLoc is the pictorial pointer domain: values reference a
	// spatial object on a picture.
	TypeLoc
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeLoc:
		return "loc"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column is one schema column.
type Column struct {
	Name string
	Type Type
}

// Schema describes a relation's columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from "name:type" specs, e.g.
// NewSchema("city:string", "population:int", "loc:loc").
func NewSchema(specs ...string) (Schema, error) {
	var s Schema
	for _, spec := range specs {
		name, typ, ok := strings.Cut(spec, ":")
		if !ok {
			return Schema{}, fmt.Errorf("relation: bad column spec %q (want name:type)", spec)
		}
		var t Type
		switch typ {
		case "int":
			t = TypeInt
		case "float":
			t = TypeFloat
		case "string":
			t = TypeString
		case "loc":
			t = TypeLoc
		default:
			return Schema{}, fmt.Errorf("relation: unknown type %q in %q", typ, spec)
		}
		if s.ColumnIndex(name) >= 0 {
			return Schema{}, fmt.Errorf("relation: duplicate column %q", name)
		}
		s.Columns = append(s.Columns, Column{Name: name, Type: t})
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(specs ...string) Schema {
	s, err := NewSchema(specs...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the index of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// LocColumn returns the index of the first loc-typed column, or -1.
func (s Schema) LocColumn() int {
	for i, c := range s.Columns {
		if c.Type == TypeLoc {
			return i
		}
	}
	return -1
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// LocRef is a pictorial pointer: the paper's backward identifier from
// a tuple to the spatial object representing it on a picture.
type LocRef struct {
	Picture string
	Object  picture.ObjectID
}

// IsZero reports whether the ref points nowhere.
func (l LocRef) IsZero() bool { return l.Picture == "" && l.Object == 0 }

// String formats the ref as "picture#id".
func (l LocRef) String() string { return fmt.Sprintf("%s#%d", l.Picture, l.Object) }

// Value is one column value. Exactly the field matching Type is
// meaningful.
type Value struct {
	Type  Type
	Int   int64
	Float float64
	Str   string
	Loc   LocRef
}

// I, F, S and L construct values of each domain.
func I(v int64) Value   { return Value{Type: TypeInt, Int: v} }
func F(v float64) Value { return Value{Type: TypeFloat, Float: v} }
func S(v string) Value  { return Value{Type: TypeString, Str: v} }
func L(pic string, id picture.ObjectID) Value {
	return Value{Type: TypeLoc, Loc: LocRef{Picture: pic, Object: id}}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case TypeInt:
		return fmt.Sprintf("%d", v.Int)
	case TypeFloat:
		return fmt.Sprintf("%g", v.Float)
	case TypeString:
		return v.Str
	case TypeLoc:
		return v.Loc.String()
	default:
		return "?"
	}
}

// Eq reports deep equality of two values.
func (v Value) Eq(w Value) bool { return v == w }

// Compare orders two values of the same type: -1, 0, or +1. Loc
// values order by (picture, object). Comparing values of different
// types returns the type order (a schema violation upstream).
func (v Value) Compare(w Value) int {
	if v.Type != w.Type {
		if v.Type < w.Type {
			return -1
		}
		return 1
	}
	switch v.Type {
	case TypeInt:
		switch {
		case v.Int < w.Int:
			return -1
		case v.Int > w.Int:
			return 1
		}
	case TypeFloat:
		switch {
		case v.Float < w.Float:
			return -1
		case v.Float > w.Float:
			return 1
		}
	case TypeString:
		return strings.Compare(v.Str, w.Str)
	case TypeLoc:
		if c := strings.Compare(v.Loc.Picture, w.Loc.Picture); c != 0 {
			return c
		}
		switch {
		case v.Loc.Object < w.Loc.Object:
			return -1
		case v.Loc.Object > w.Loc.Object:
			return 1
		}
	}
	return 0
}

// Tuple is one row: values positionally matching a schema.
type Tuple []Value

// Validate checks the tuple against the schema.
func (s Schema) Validate(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("relation: tuple arity %d, schema wants %d", len(t), len(s.Columns))
	}
	for i, v := range t {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("relation: column %q wants %v, got %v", s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}
