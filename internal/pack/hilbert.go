package pack

import (
	"repro/internal/geom"
)

// hilbertGrouper orders rectangles by the Hilbert curve value of their
// centers (Kamel & Faloutsos, VLDB 1994) and slices consecutive runs.
// The Hilbert curve preserves locality better than raw x-ordering, so
// consecutive runs tend to be spatially compact without the explicit
// nearest-neighbor step of the paper's PACK.
//
// Hilbert packing is the most parallel-friendly strategy: once the
// bounds are known, every key is an independent pure function of one
// center, so key computation fans out perfectly and only the (also
// parallel) sort remains.
type hilbertGrouper struct{ par int }

func (hilbertGrouper) Name() string { return "hilbert" }

// hilbertOrder is the resolution of the discrete grid the centers are
// quantized onto: the curve has 2^hilbertOrder cells per side.
const hilbertOrder = 16

// HilbertKeyBits is the width of the key space HilbertKey maps into:
// keys lie in [0, 1<<HilbertKeyBits). Hilbert-range sharding divides
// this space into contiguous per-shard ranges.
const HilbertKeyBits = 2 * hilbertOrder

// HilbertKey quantizes p onto the Hilbert curve over bounds and
// returns its 1-D curve distance — the routing key Hilbert-range
// sharding assigns tuples by. Points outside bounds are clamped, so
// every point gets a key and contiguous key ranges stay spatially
// local (Bos & Haverkort's locality bound). The key is a pure function
// of (bounds, p): routing is deterministic across processes and
// reopens as long as the picture extent is stable.
func HilbertKey(bounds geom.Rect, p geom.Point) uint64 {
	side := uint32(1) << hilbertOrder
	x, y := uint32(0), uint32(0)
	if w := bounds.Width(); w > 0 {
		x = quantize((p.X - bounds.Min.X) / w * float64(side-1))
	}
	if h := bounds.Height(); h > 0 {
		y = quantize((p.Y - bounds.Min.Y) / h * float64(side-1))
	}
	return hilbertD(hilbertOrder, x, y)
}

// quantize clamps a scaled coordinate onto the grid.
func quantize(v float64) uint32 {
	if v <= 0 {
		return 0
	}
	max := float64(uint32(1)<<hilbertOrder - 1)
	if v >= max {
		return uint32(max)
	}
	return uint32(v)
}

func (g hilbertGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	if n == 0 {
		return nil
	}
	// Bounds: a chunked union. Rect union is min/max per coordinate,
	// so combining per-chunk partial bounds is order-independent and
	// bit-identical to the sequential scan.
	bounds := parallelBounds(rects, g.par)
	side := uint32(1) << hilbertOrder
	scaleX, scaleY := 0.0, 0.0
	if w := bounds.Width(); w > 0 {
		scaleX = float64(side-1) / w
	}
	if h := bounds.Height(); h > 0 {
		scaleY = float64(side-1) / h
	}
	keys := make([]uint64, n)
	parallelFor(n, g.par, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := rects[i].Center()
			x := uint32((c.X - bounds.Min.X) * scaleX)
			y := uint32((c.Y - bounds.Min.Y) * scaleY)
			keys[i] = hilbertD(hilbertOrder, x, y)
		}
	})
	order := identityOrder(n)
	parallelSortStable(order, g.par, func(a, b int) bool { return keys[a] < keys[b] })
	return slices2(order, max)
}

// parallelBounds unions all rects with up to par goroutines.
func parallelBounds(rects []geom.Rect, par int) geom.Rect {
	n := len(rects)
	if par <= 1 || n < parallelThreshold {
		bounds := geom.EmptyRect()
		for _, r := range rects {
			bounds = bounds.Union(r)
		}
		return bounds
	}
	if par > n {
		par = n
	}
	partial := make([]geom.Rect, par)
	for i := range partial {
		partial[i] = geom.EmptyRect()
	}
	chunk := (n + par - 1) / par
	parallelFor(n, par, func(lo, hi int) {
		b := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			b = b.Union(rects[i])
		}
		partial[lo/chunk] = b
	})
	bounds := geom.EmptyRect()
	for _, b := range partial {
		bounds = bounds.Union(b)
	}
	return bounds
}

// hilbertD maps grid cell (x, y) to its 1-D distance along the Hilbert
// curve of the given order (the classic xy2d conversion).
func hilbertD(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
