package pack

import (
	"repro/internal/geom"
)

// hilbertGrouper orders rectangles by the Hilbert curve value of their
// centers (Kamel & Faloutsos, VLDB 1994) and slices consecutive runs.
// The Hilbert curve preserves locality better than raw x-ordering, so
// consecutive runs tend to be spatially compact without the explicit
// nearest-neighbor step of the paper's PACK.
//
// Hilbert packing is the most parallel-friendly strategy: once the
// bounds are known, every key is an independent pure function of one
// center, so key computation fans out perfectly and only the (also
// parallel) sort remains.
//
// The curve mapping itself lives in geom (geom.HilbertKey and
// friends) so the workload generators can derive curve keys without
// importing pack; the identifiers below re-export it for the sharding
// and routing layers, which historically reach it through pack.
type hilbertGrouper struct{ par int }

func (hilbertGrouper) Name() string { return "hilbert" }

// HilbertKeyBits is the width of the key space HilbertKey maps into:
// keys lie in [0, 1<<HilbertKeyBits). Hilbert-range sharding divides
// this space into contiguous per-shard ranges.
const HilbertKeyBits = geom.HilbertKeyBits

// HilbertKey quantizes p onto the Hilbert curve over bounds and
// returns its 1-D curve distance — the routing key Hilbert-range
// sharding assigns tuples by. See geom.HilbertKey.
func HilbertKey(bounds geom.Rect, p geom.Point) uint64 {
	return geom.HilbertKey(bounds, p)
}

func (g hilbertGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	if n == 0 {
		return nil
	}
	// Bounds: a chunked union. Rect union is min/max per coordinate,
	// so combining per-chunk partial bounds is order-independent and
	// bit-identical to the sequential scan.
	bounds := parallelBounds(rects, g.par)
	side := uint32(1) << geom.HilbertOrder
	scaleX, scaleY := 0.0, 0.0
	if w := bounds.Width(); w > 0 {
		scaleX = float64(side-1) / w
	}
	if h := bounds.Height(); h > 0 {
		scaleY = float64(side-1) / h
	}
	keys := make([]uint64, n)
	parallelFor(n, g.par, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := rects[i].Center()
			x := uint32((c.X - bounds.Min.X) * scaleX)
			y := uint32((c.Y - bounds.Min.Y) * scaleY)
			keys[i] = geom.HilbertD(geom.HilbertOrder, x, y)
		}
	})
	order := identityOrder(n)
	parallelSortStable(order, g.par, func(a, b int) bool { return keys[a] < keys[b] })
	return slices2(order, max)
}

// parallelBounds unions all rects with up to par goroutines.
func parallelBounds(rects []geom.Rect, par int) geom.Rect {
	n := len(rects)
	if par <= 1 || n < parallelThreshold {
		bounds := geom.EmptyRect()
		for _, r := range rects {
			bounds = bounds.Union(r)
		}
		return bounds
	}
	if par > n {
		par = n
	}
	partial := make([]geom.Rect, par)
	for i := range partial {
		partial[i] = geom.EmptyRect()
	}
	chunk := (n + par - 1) / par
	parallelFor(n, par, func(lo, hi int) {
		b := geom.EmptyRect()
		for i := lo; i < hi; i++ {
			b = b.Union(rects[i])
		}
		partial[lo/chunk] = b
	})
	bounds := geom.EmptyRect()
	for _, b := range partial {
		bounds = bounds.Union(b)
	}
	return bounds
}
