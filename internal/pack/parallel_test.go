package pack

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// TestParallelSortStable checks that the parallel merge sort matches
// sort.SliceStable exactly, including tie handling, across sizes that
// hit the sequential bypass, unbalanced chunks, and odd run counts.
func TestParallelSortStable(t *testing.T) {
	defer func(old int) { parallelThreshold = old }(parallelThreshold)
	parallelThreshold = 2

	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 17, 100, 1023, 4096} {
		for _, par := range []int{1, 2, 3, 4, 7, 8, 16} {
			// Few distinct keys => many ties => stability is load-bearing.
			keys := make([]int, n)
			for i := range keys {
				keys[i] = rng.Intn(5)
			}
			want := identityOrder(n)
			sort.SliceStable(want, func(i, j int) bool { return keys[want[i]] < keys[want[j]] })
			got := identityOrder(n)
			parallelSortStable(got, par, func(a, b int) bool { return keys[a] < keys[b] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d par=%d: parallel sort diverges from SliceStable", n, par)
			}
		}
	}
}

// TestParallelPackDeterminism asserts the tentpole guarantee: for every
// packing method, a parallel build groups identically to the
// sequential build, and the resulting disk trees are byte-identical,
// for seeds across J in {10, 100, 900} (plus one size past the real
// fan-out threshold).
func TestParallelPackDeterminism(t *testing.T) {
	defer func(old int) { parallelThreshold = old }(parallelThreshold)
	parallelThreshold = 4

	for _, j := range []int{10, 100, 900, 3000} {
		items := workload.PointItems(workload.UniformPoints(j, int64(j)))
		rects := make([]geom.Rect, len(items))
		for i, it := range items {
			rects[i] = it.Rect
		}
		for _, m := range allMethods() {
			t.Run(fmt.Sprintf("%s/J=%d", m, j), func(t *testing.T) {
				seq := GrouperWith(m, 1).Group(rects, 4)
				for _, par := range []int{2, 4, 8} {
					got := GrouperWith(m, par).Group(rects, 4)
					if !reflect.DeepEqual(got, seq) {
						t.Fatalf("par=%d grouping differs from sequential", par)
					}
				}
				assertDiskIdentical(t, items, m)
			})
		}
	}
}

// assertDiskIdentical bulk-loads two disk trees — sequential grouper
// vs parallel grouper — and compares every page byte for byte.
func assertDiskIdentical(t *testing.T, items []rtree.Item, m Method) {
	t.Helper()
	build := func(par int) *pager.Pager {
		p := pager.OpenMem(4096)
		if _, err := rtree.BulkLoadDisk(p, 8, 4, items, GrouperWith(m, par)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(1), build(8)
	defer a.Close()
	defer b.Close()
	if a.NumPages() != b.NumPages() {
		t.Fatalf("page counts differ: %d vs %d", a.NumPages(), b.NumPages())
	}
	for id := 1; id < a.NumPages(); id++ {
		pa, err := a.Fetch(pager.PageID(id))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Fetch(pager.PageID(id))
		if err != nil {
			t.Fatal(err)
		}
		if pa.Data != pb.Data {
			t.Fatalf("page %d differs between sequential and parallel build", id)
		}
		a.Unpin(pa)
		b.Unpin(pb)
	}
}

// TestParallelTreeMatchesSequential builds in-memory trees at both
// parallelism extremes and checks the full structure (per-level node
// rectangles and leaf item order) matches.
func TestParallelTreeMatchesSequential(t *testing.T) {
	defer func(old int) { parallelThreshold = old }(parallelThreshold)
	parallelThreshold = 4

	params := rtree.Params{Max: 4, Min: 2}
	for _, j := range []int{10, 100, 900} {
		items := workload.PointItems(workload.UniformPoints(j, int64(j)+1))
		for _, m := range allMethods() {
			seq := Tree(params, items, Options{Method: m, Parallelism: 1})
			par := Tree(params, items, Options{Method: m, Parallelism: 8})
			if !reflect.DeepEqual(seq.LevelRects(), par.LevelRects()) {
				t.Fatalf("%s J=%d: level rects differ", m, j)
			}
			if !reflect.DeepEqual(seq.Items(), par.Items()) {
				t.Fatalf("%s J=%d: leaf item order differs", m, j)
			}
		}
	}
}
