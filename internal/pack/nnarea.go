package pack

import (
	"sort"

	"repro/internal/geom"
)

// nnAreaGrouper implements the refinement the paper sketches at the
// end of §3.3: "it may be preferable to select the 4 items
// simultaneously from DLIST such that the area of the resulting
// associated MBR is minimized, but this could be combinatorially
// explosive". The exact version is exponential; this grouper is the
// natural greedy approximation: take the spatially first remaining
// item as the seed, then repeatedly add the remaining item whose
// inclusion enlarges the group MBR least (ties by distance), instead
// of the item nearest to the seed. For point data the two coincide
// often; for extended objects area-greedy grouping avoids the long
// thin groups center-distance grouping can produce.
// Like the paper's PACK, the greedy accumulation is sequential; the
// ordering sort and center computation run on Options.Parallelism
// goroutines.
type nnAreaGrouper struct{ par int }

func (nnAreaGrouper) Name() string { return "nn-area" }

func (g nnAreaGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	centers := centersOf(rects, g.par)
	order := identityOrder(n)
	parallelSortStable(order, g.par, func(a, b int) bool {
		ca, cb := centers[a], centers[b]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return ca.Y < cb.Y
	})
	taken := make([]bool, n)
	remaining := n

	// Candidate pruning: only consider the nearestK closest-by-center
	// remaining items when picking the least-enlargement member, so the
	// greedy step costs O(k) after an O(n) distance pass rather than
	// recomputing areas over everything. k is generous enough that the
	// greedy choice matches the unpruned one in practice.
	const nearestK = 24

	var groups [][]int
	pos := 0
	for remaining > 0 {
		seed := -1
		for pos < len(order) {
			if !taken[order[pos]] {
				seed = order[pos]
				pos++
				break
			}
			pos++
		}
		if seed < 0 {
			break
		}
		taken[seed] = true
		remaining--
		grp := []int{seed}
		mbr := rects[seed]

		for len(grp) < max && remaining > 0 {
			// Gather up to nearestK closest remaining candidates.
			type cand struct {
				idx int
				d   float64
			}
			var cands []cand
			center := mbr.Center()
			for i := 0; i < n; i++ {
				if taken[i] {
					continue
				}
				cands = append(cands, cand{i, rects[i].Center().DistSq(center)})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
			if len(cands) > nearestK {
				cands = cands[:nearestK]
			}
			best, bestEnl, bestD := -1, 0.0, 0.0
			for _, c := range cands {
				enl := mbr.Enlargement(rects[c.idx])
				if best < 0 || enl < bestEnl || (enl == bestEnl && c.d < bestD) {
					best, bestEnl, bestD = c.idx, enl, c.d
				}
			}
			taken[best] = true
			remaining--
			grp = append(grp, best)
			mbr = mbr.Union(rects[best])
		}
		groups = append(groups, grp)
	}
	return groups
}
