package pack

import (
	"repro/internal/geom"
)

// nnGrouper is the paper's PACK grouping (Section 3.3):
//
//	Order objects of DLIST by some spatial criterion
//	  {e.g. ascending x-coordinate};
//	while DLIST is not empty do
//	    I1 := first object from DLIST;
//	    I2 := NN(DLIST, I1); I3 := NN(DLIST, I1); I4 := NN(DLIST, I1);
//	    make a node of I1..I4;
//
// NN(DLIST, I) returns — and removes — the item of DLIST spatially
// closest to I. Distances are between rectangle centers (for the leaf
// level over point data this is the point distance the paper uses).
//
// The greedy pop-nearest consumption is inherently sequential — each
// NN() depends on every prior removal — so parallelism applies only to
// the phases that permit it: center computation and the spatial
// ordering sort.
type nnGrouper struct{ par int }

func (nnGrouper) Name() string { return "nn" }

func (g nnGrouper) Group(rects []geom.Rect, max int) [][]int {
	centers := centersOf(rects, g.par)
	// The paper's example criterion: ascending x-coordinate.
	order := identityOrder(len(rects))
	parallelSortStable(order, g.par, func(a, b int) bool {
		ca, cb := centers[a], centers[b]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return ca.Y < cb.Y
	})

	grid := newNNGrid(centers, order)
	groups := make([][]int, 0, (len(rects)+max-1)/max)
	for {
		seed, ok := grid.popFirst()
		if !ok {
			break
		}
		grp := make([]int, 1, max)
		grp[0] = seed
		for len(grp) < max {
			nn, ok := grid.popNearest(centers[seed])
			if !ok {
				break
			}
			grp = append(grp, nn)
		}
		groups = append(groups, grp)
	}
	return groups
}

// nnGrid accelerates the NN function with a uniform grid over the
// centers, so packing large static databases stays near O(n log n)
// rather than the naive O(n^2). Cells are searched in expanding rings
// around the query point; the search stops once the ring's minimum
// possible distance exceeds the best candidate found.
type nnGrid struct {
	cells     map[[2]int][]int
	centers   []geom.Point
	remaining []int // x-ordered queue of not-yet-consumed indices
	pos       int   // queue head
	taken     []bool
	origin    geom.Point
	cellSize  float64
	side      int // cells per axis
	alive     int
}

func newNNGrid(centers []geom.Point, order []int) *nnGrid {
	bounds := geom.MBR(centers...)
	// Aim for a handful of points per cell.
	n := len(centers)
	side := 1
	for side*side < n/4 {
		side++
	}
	w := bounds.Width()
	h := bounds.Height()
	size := 1.0
	if m := maxf(w, h); m > 0 {
		size = m / float64(side)
	}
	g := &nnGrid{
		cells:     make(map[[2]int][]int, side*side),
		centers:   centers,
		remaining: order,
		taken:     make([]bool, len(centers)),
		origin:    bounds.Min,
		cellSize:  size,
		side:      side,
		alive:     len(centers),
	}
	for _, i := range order {
		c := g.cellOf(centers[i])
		g.cells[c] = append(g.cells[c], i)
	}
	return g
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func (g *nnGrid) cellOf(p geom.Point) [2]int {
	return [2]int{
		int((p.X - g.origin.X) / g.cellSize),
		int((p.Y - g.origin.Y) / g.cellSize),
	}
}

// popFirst consumes the first remaining index in the spatial order.
func (g *nnGrid) popFirst() (int, bool) {
	for g.pos < len(g.remaining) {
		i := g.remaining[g.pos]
		g.pos++
		if !g.taken[i] {
			g.take(i)
			return i, true
		}
	}
	return 0, false
}

func (g *nnGrid) take(i int) {
	g.taken[i] = true
	g.alive--
}

// popNearest consumes and returns the remaining index whose center is
// closest to p. It scans cells in expanding square rings around p's
// cell and stops as soon as the closest possible point of the next
// ring is farther than the best candidate found.
func (g *nnGrid) popNearest(p geom.Point) (int, bool) {
	if g.alive == 0 {
		return 0, false
	}
	center := g.cellOf(p)
	best := -1
	bestD := 0.0
	for ring := 0; ring <= g.side+1; ring++ {
		if best >= 0 {
			// Points in ring r are at least (r-1)*cellSize away.
			minDist := float64(ring-1) * g.cellSize
			if minDist > 0 && minDist*minDist > bestD {
				break
			}
		}
		g.scanRing(center, ring, p, &best, &bestD)
	}
	if best < 0 {
		return 0, false
	}
	g.take(best)
	return best, true
}

// scanRing examines the cells at Chebyshev distance ring from center,
// updating best/bestD; it reports whether any live cell was seen.
func (g *nnGrid) scanRing(center [2]int, ring int, p geom.Point, best *int, bestD *float64) bool {
	seen := false
	visit := func(cx, cy int) {
		cell := g.cells[[2]int{cx, cy}]
		if len(cell) == 0 {
			return
		}
		live := cell[:0]
		for _, i := range cell {
			if g.taken[i] {
				continue
			}
			live = append(live, i)
			seen = true
			d := g.centers[i].DistSq(p)
			if *best < 0 || d < *bestD {
				*best, *bestD = i, d
			}
		}
		// Compact consumed entries so repeated scans stay cheap.
		g.cells[[2]int{cx, cy}] = live
	}
	if ring == 0 {
		visit(center[0], center[1])
		return seen
	}
	for dx := -ring; dx <= ring; dx++ {
		visit(center[0]+dx, center[1]-ring)
		visit(center[0]+dx, center[1]+ring)
	}
	for dy := -ring + 1; dy <= ring-1; dy++ {
		visit(center[0]-ring, center[1]+dy)
		visit(center[0]+ring, center[1]+dy)
	}
	return seen
}
