package pack

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func uniformPoints(n int, seed int64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		items[i] = rtree.Item{Rect: p.Rect(), Data: int64(i)}
	}
	return items
}

func allMethods() []Method {
	return []Method{MethodNN, MethodLowX, MethodSTR, MethodHilbert, MethodRotate, MethodNNArea}
}

func TestPackedTreeValidAllMethods(t *testing.T) {
	for _, m := range allMethods() {
		t.Run(m.String(), func(t *testing.T) {
			for _, n := range []int{0, 1, 3, 4, 5, 16, 17, 100, 321} {
				items := uniformPoints(n, int64(n)+1)
				tr := Tree(rtree.DefaultParams(), items, Options{Method: m})
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if tr.Len() != n {
					t.Fatalf("n=%d: Len=%d", n, tr.Len())
				}
			}
		})
	}
}

func TestPackedTreeFindsEverything(t *testing.T) {
	items := uniformPoints(500, 42)
	for _, m := range allMethods() {
		t.Run(m.String(), func(t *testing.T) {
			tr := Tree(rtree.DefaultParams(), items, Options{Method: m})
			for _, it := range items {
				found, _ := tr.ContainsPoint(it.Rect.Min)
				if !found {
					t.Fatalf("point %v lost by %s packing", it.Rect.Min, m)
				}
			}
		})
	}
}

func TestPackedMatchesBruteForceWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := uniformPoints(400, 8)
	for _, m := range allMethods() {
		tr := Tree(rtree.DefaultParams(), items, Options{Method: m})
		for q := 0; q < 25; q++ {
			w := geom.WindowAt(rng.Float64()*1000, 30+rng.Float64()*150, rng.Float64()*1000, 30+rng.Float64()*150)
			want := 0
			for _, it := range items {
				if it.Rect.Intersects(w) {
					want++
				}
			}
			got, _ := tr.Query(w)
			if len(got) != want {
				t.Fatalf("%s: window %v: got %d, want %d", m, w, len(got), want)
			}
		}
	}
}

func TestTrimToMultiple(t *testing.T) {
	// J=10 with branching 4 trims to 8 points: 2 leaves + root = 3
	// nodes, depth 1 — the paper's Table 1 first row for PACK.
	items := uniformPoints(10, 9)
	tr := Tree(rtree.DefaultParams(), items, Options{Method: MethodNN, TrimToMultiple: true})
	if tr.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tr.Len())
	}
	if tr.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d, want 3", tr.NodeCount())
	}
	if tr.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", tr.Depth())
	}
}

func TestPaperNodeCounts(t *testing.T) {
	// With TrimToMultiple, node counts and depths are fully
	// determined: trim J to a multiple of 4, then each level has
	// ceil(n/4) nodes. These are exactly the paper's Table 1 PACK
	// N and D columns.
	tests := []struct {
		j, wantN, wantD int
	}{
		{10, 3, 1}, {25, 9, 2}, {50, 16, 2}, {75, 26, 3}, {100, 35, 3},
		{125, 42, 3}, {150, 51, 3}, {175, 58, 3}, {200, 68, 3},
		{250, 83, 3}, {300, 102, 4}, {400, 135, 4}, {500, 168, 4},
		{600, 202, 4}, {700, 234, 4}, {800, 268, 4}, {900, 302, 4},
	}
	for _, tt := range tests {
		items := uniformPoints(tt.j, int64(tt.j))
		tr := Tree(rtree.DefaultParams(), items, Options{Method: MethodNN, TrimToMultiple: true})
		if got := tr.NodeCount(); got != tt.wantN {
			t.Errorf("J=%d: N=%d, want %d (paper)", tt.j, got, tt.wantN)
		}
		if got := tr.Depth(); got != tt.wantD {
			t.Errorf("J=%d: D=%d, want %d (paper)", tt.j, got, tt.wantD)
		}
	}
}

func TestPackBeatsInsertTable1Shape(t *testing.T) {
	// The headline claims of Table 1, against the linear-split INSERT
	// baseline (Guttman's own recommended variant; see EXPERIMENTS.md
	// for why a correct modern INSERT is stronger than the paper's
	// 1985 implementation): PACK yields lower coverage, much lower
	// overlap, fewer nodes, and smaller or equal depth.
	// Coverage on uniform point data is seed-noisy (INSERT's
	// half-filled leaves have small per-leaf MBRs), so average the
	// structural metrics over several seeds.
	var oi, op, ci, cp float64
	var ni, np, di, dp int
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		items := uniformPoints(500, 10+s)
		ins := rtree.New(rtree.Params{Max: 4, Min: 2, Split: rtree.SplitLinear})
		for _, it := range items {
			ins.InsertItem(it)
		}
		packed := Tree(rtree.DefaultParams(), items, Options{Method: MethodNN})
		mi := ins.ComputeMetrics()
		mp := packed.ComputeMetrics()
		oi += mi.Overlap
		op += mp.Overlap
		ci += mi.Coverage
		cp += mp.Coverage
		ni += mi.Nodes
		np += mp.Nodes
		if mi.Depth > di {
			di = mi.Depth
		}
		if mp.Depth > dp {
			dp = mp.Depth
		}
	}
	if op >= oi {
		t.Errorf("PACK mean overlap %.0f not below INSERT %.0f", op/seeds, oi/seeds)
	}
	if np >= ni {
		t.Errorf("PACK nodes %d not below INSERT %d", np, ni)
	}
	if dp > di {
		t.Errorf("PACK depth %d above INSERT %d", dp, di)
	}
	// Fully packed leaves mean coverage per *leaf count* is what
	// shrinks; total coverage stays within the same order of
	// magnitude as INSERT's on uniform points.
	if cp > 3*ci {
		t.Errorf("PACK coverage %.0f wildly above INSERT %.0f", cp/seeds, ci/seeds)
	}
}

func TestPackImprovesSearchVisits(t *testing.T) {
	items := uniformPoints(900, 11)
	ins := rtree.New(rtree.Params{Max: 4, Min: 2, Split: rtree.SplitLinear})
	for _, it := range items {
		ins.InsertItem(it)
	}
	packed := Tree(rtree.DefaultParams(), items, Options{Method: MethodNN})
	rng := rand.New(rand.NewSource(12))
	var vi, vp int
	for q := 0; q < 200; q++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		_, a := ins.ContainsPoint(p)
		_, b := packed.ContainsPoint(p)
		vi += a
		vp += b
	}
	if vp >= vi {
		t.Fatalf("packed visits %d not below insert visits %d", vp, vi)
	}
}

func TestRotatePackZeroOverlapRotatedFrame(t *testing.T) {
	// Theorem 3.2: group MBRs computed in the rotated frame are
	// pairwise disjoint for distinct points.
	items := uniformPoints(64, 13)
	rects := make([]geom.Rect, len(items))
	for i, it := range items {
		rects[i] = it.Rect
	}
	alpha := RotatePackAngle(rects)
	groups := rotateGrouper{}.Group(rects, 4)
	var groupMBRs []geom.Rect
	for _, grp := range groups {
		mbr := geom.EmptyRect()
		for _, idx := range grp {
			mbr = mbr.ExtendPoint(rects[idx].Center().Rotate(alpha))
		}
		groupMBRs = append(groupMBRs, mbr)
	}
	if !geom.PairwiseDisjoint(groupMBRs) {
		t.Fatal("rotated-frame leaf MBRs are not disjoint (Theorem 3.2 violated)")
	}
}

func TestQuickTheorem32(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func() bool {
		// Integer grid points: the adversarial case with many shared
		// x-coordinates. Deduplicate (the theorem assumes a set).
		n := 4 * (1 + rng.Intn(8))
		seen := map[geom.Point]bool{}
		var rects []geom.Rect
		for len(rects) < n {
			p := geom.Pt(float64(rng.Intn(40)), float64(rng.Intn(40)))
			if !seen[p] {
				seen[p] = true
				rects = append(rects, p.Rect())
			}
		}
		alpha := RotatePackAngle(rects)
		groups := rotateGrouper{}.Group(rects, 4)
		var mbrs []geom.Rect
		for _, grp := range groups {
			m := geom.EmptyRect()
			for _, idx := range grp {
				m = m.ExtendPoint(rects[idx].Center().Rotate(alpha))
			}
			mbrs = append(mbrs, m)
		}
		return geom.PairwiseDisjoint(mbrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickPackedAlwaysValidAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func() bool {
		n := rng.Intn(200)
		items := uniformPoints(n, rng.Int63())
		m := allMethods()[rng.Intn(len(allMethods()))]
		tr := Tree(rtree.DefaultParams(), items, Options{Method: m})
		if tr.CheckInvariants() != nil || tr.Len() != n {
			return false
		}
		got, _ := tr.Query(geom.R(-1, -1, 1001, 1001))
		return len(got) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPackRectItems(t *testing.T) {
	// Region data (non-zero area) packs fine too; Theorem 3.3 only
	// says zero overlap cannot be guaranteed.
	rng := rand.New(rand.NewSource(16))
	items := make([]rtree.Item, 200)
	for i := range items {
		x, y := rng.Float64()*900, rng.Float64()*900
		items[i] = rtree.Item{Rect: geom.R(x, y, x+rng.Float64()*100, y+rng.Float64()*100), Data: int64(i)}
	}
	for _, m := range allMethods() {
		tr := Tree(rtree.DefaultParams(), items, Options{Method: m})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got, _ := tr.Query(geom.R(0, 0, 1000, 1000))
		if len(got) != len(items) {
			t.Fatalf("%s: found %d of %d rects", m, len(got), len(items))
		}
	}
}

func TestPackIdenticalPoints(t *testing.T) {
	// All points coincident: grouping must still terminate and build a
	// valid tree (coincident points are inseparable per Lemma 3.1's
	// caveat).
	items := make([]rtree.Item, 37)
	for i := range items {
		items[i] = rtree.Item{Rect: geom.Pt(5, 5).Rect(), Data: int64(i)}
	}
	for _, m := range allMethods() {
		tr := Tree(rtree.DefaultParams(), items, Options{Method: m})
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got, _ := tr.Query(geom.Pt(5, 5).Rect())
		if len(got) != 37 {
			t.Fatalf("%s: %d of 37 coincident points found", m, len(got))
		}
	}
}

func TestHilbertDLocality(t *testing.T) {
	// The Hilbert mapping must be a bijection on a small grid and
	// adjacent d values must be adjacent cells (curve continuity).
	const order = 3
	side := 1 << order
	cells := make(map[uint64][2]uint32)
	for x := uint32(0); x < uint32(side); x++ {
		for y := uint32(0); y < uint32(side); y++ {
			d := geom.HilbertD(order, x, y)
			if prev, dup := cells[d]; dup {
				t.Fatalf("duplicate hilbert value %d for %v and %v", d, prev, [2]uint32{x, y})
			}
			cells[d] = [2]uint32{x, y}
		}
	}
	if len(cells) != side*side {
		t.Fatalf("hilbert covered %d of %d cells", len(cells), side*side)
	}
	for d := uint64(0); d+1 < uint64(side*side); d++ {
		a, b := cells[d], cells[d+1]
		dx := int(a[0]) - int(b[0])
		dy := int(a[1]) - int(b[1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("hilbert discontinuity between d=%d %v and d=%d %v", d, a, d+1, b)
		}
	}
}

func TestNNGroupingIsTight(t *testing.T) {
	// Two well-separated clusters of 4: NN grouping must put each
	// cluster in its own group (the Figure 3.4 scenario).
	pts := []geom.Point{
		geom.Pt(1, 1), geom.Pt(2, 1), geom.Pt(1, 2), geom.Pt(2, 2), // cluster A
		geom.Pt(100, 100), geom.Pt(101, 100), geom.Pt(100, 101), geom.Pt(101, 101), // cluster B
	}
	rects := make([]geom.Rect, len(pts))
	for i, p := range pts {
		rects[i] = p.Rect()
	}
	groups := nnGrouper{}.Group(rects, 4)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	for _, grp := range groups {
		lowCluster := rects[grp[0]].Min.X < 50
		for _, idx := range grp {
			if (rects[idx].Min.X < 50) != lowCluster {
				t.Fatalf("NN grouping mixed clusters: %v", groups)
			}
		}
	}
}

func TestGroupersCoverAllIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, m := range allMethods() {
		for _, n := range []int{1, 2, 4, 5, 9, 33, 128} {
			rects := make([]geom.Rect, n)
			for i := range rects {
				rects[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100).Rect()
			}
			groups := Grouper(m).Group(rects, 4)
			seen := make([]bool, n)
			for _, grp := range groups {
				if len(grp) == 0 || len(grp) > 4 {
					t.Fatalf("%s n=%d: bad group size %d", m, n, len(grp))
				}
				for _, idx := range grp {
					if seen[idx] {
						t.Fatalf("%s n=%d: duplicate index %d", m, n, idx)
					}
					seen[idx] = true
				}
			}
			for i, s := range seen {
				if !s {
					t.Fatalf("%s n=%d: index %d not grouped", m, n, i)
				}
			}
		}
	}
}

// naiveNNGroups is the paper's PACK grouping with an O(n^2) NN oracle,
// used to verify the grid-accelerated implementation is exact.
func naiveNNGroups(rects []geom.Rect, max int) [][]int {
	centers := make([]geom.Point, len(rects))
	for i, r := range rects {
		centers[i] = r.Center()
	}
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := centers[order[i]], centers[order[j]]
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	taken := make([]bool, len(rects))
	var groups [][]int
	pos := 0
	for {
		seed := -1
		for pos < len(order) {
			if !taken[order[pos]] {
				seed = order[pos]
				pos++
				break
			}
			pos++
		}
		if seed < 0 {
			break
		}
		taken[seed] = true
		grp := []int{seed}
		for len(grp) < max {
			best, bestD := -1, 0.0
			for _, j := range order {
				if taken[j] {
					continue
				}
				d := centers[j].DistSq(centers[seed])
				if best < 0 || d < bestD {
					best, bestD = j, d
				}
			}
			if best < 0 {
				break
			}
			taken[best] = true
			grp = append(grp, best)
		}
		groups = append(groups, grp)
	}
	return groups
}

// groupCoverage sums group MBR areas for comparing grouping quality.
func groupCoverage(rects []geom.Rect, groups [][]int) float64 {
	sum := 0.0
	for _, grp := range groups {
		m := geom.EmptyRect()
		for _, i := range grp {
			m = m.Union(rects[i])
		}
		sum += m.Area()
	}
	return sum
}

func TestGridNNMatchesNaiveQuality(t *testing.T) {
	// The grid-accelerated NN function must produce groupings with the
	// same total coverage as the O(n^2) reference (ties between
	// equidistant neighbors may break differently, so compare quality,
	// not identity, then assert identity on a tie-free instance).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(300)
		rects := make([]geom.Rect, n)
		for i := range rects {
			rects[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000).Rect()
		}
		fast := nnGrouper{}.Group(rects, 4)
		slow := naiveNNGroups(rects, 4)
		cf, cs := groupCoverage(rects, fast), groupCoverage(rects, slow)
		if cf != cs {
			t.Fatalf("trial %d: grid coverage %.6f != naive %.6f", trial, cf, cs)
		}
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: %d vs %d groups", trial, len(fast), len(slow))
		}
	}
}
