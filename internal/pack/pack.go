// Package pack implements the paper's Section 3.3 PACK algorithm —
// nearest-neighbor bulk loading of R-trees — together with the
// alternatives it anticipates and spawned: plain lowest-x ordering
// (the paper's "order objects of DLIST by some spatial criterion"),
// the rotation packing that constructively realizes Theorem 3.2
// (zero-overlap leaves for point data), and two later descendants,
// Sort-Tile-Recursive (STR) and Hilbert-curve packing, provided as the
// "forthcoming" extensions the conclusion promises.
//
// Each strategy is an rtree.Grouper; rtree.Bulk applies it level by
// level bottom-up, exactly like the recursive PACK of the paper
// ("PACK is then called recursively using the list of leaf MBRs as
// data objects ... until the root is finally reached").
package pack

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Method selects a packing strategy.
type Method int

const (
	// MethodNN is the paper's PACK: order by ascending x, then group
	// each seed with its nearest neighbors.
	MethodNN Method = iota
	// MethodLowX sorts by x-coordinate and slices consecutive runs —
	// the simplest instance of the paper's "order ... by some spatial
	// criterion" step, without the nearest-neighbor refinement.
	MethodLowX
	// MethodSTR is Sort-Tile-Recursive packing (Leutenegger et al.),
	// the direct descendant of this paper's technique.
	MethodSTR
	// MethodHilbert orders objects by the Hilbert value of their
	// centers (Kamel & Faloutsos), another descendant.
	MethodHilbert
	// MethodRotate realizes Theorem 3.2: rotate the frame so all
	// x-coordinates are distinct, slice the rotated order. For point
	// data the resulting leaf MBRs are pairwise disjoint.
	MethodRotate
	// MethodNNArea is the paper's suggested refinement of PACK: group
	// members are chosen greedily by least MBR enlargement rather than
	// center distance (the exact simultaneous-minimum version "could be
	// combinatorially explosive").
	MethodNNArea
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodNN:
		return "nn"
	case MethodLowX:
		return "lowx"
	case MethodSTR:
		return "str"
	case MethodHilbert:
		return "hilbert"
	case MethodRotate:
		return "rotate"
	case MethodNNArea:
		return "nn-area"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a packed build.
type Options struct {
	// Method selects the grouping strategy; the zero value is the
	// paper's nearest-neighbor PACK.
	Method Method
	// TrimToMultiple reproduces the paper's "integral multiple of
	// four" assumption: the item list is truncated to a multiple of
	// the branching factor before packing, so node counts match
	// Table 1 exactly. Trimmed items are NOT indexed; leave this off
	// for real use.
	TrimToMultiple bool
}

// Tree builds a packed R-tree over items with the given parameters.
func Tree(params rtree.Params, items []rtree.Item, opts Options) *rtree.Tree {
	if opts.TrimToMultiple {
		n := len(items) - len(items)%params.Max
		items = items[:n]
	}
	return rtree.Bulk(params, items, Grouper(opts.Method))
}

// Grouper returns the rtree.Grouper implementing the given method.
func Grouper(m Method) rtree.Grouper {
	switch m {
	case MethodLowX:
		return lowXGrouper{}
	case MethodSTR:
		return strGrouper{}
	case MethodHilbert:
		return hilbertGrouper{}
	case MethodRotate:
		return rotateGrouper{}
	case MethodNNArea:
		return nnAreaGrouper{}
	default:
		return nnGrouper{}
	}
}

// lowXGrouper sorts by center x (breaking ties by y) and slices
// consecutive groups of max.
type lowXGrouper struct{}

func (lowXGrouper) Name() string { return "lowx" }

func (lowXGrouper) Group(rects []geom.Rect, max int) [][]int {
	order := sortedByCenter(rects, func(a, b geom.Point) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return slices2(order, max)
}

// sortedByCenter returns the indices of rects ordered by the given
// comparison of their centers.
func sortedByCenter(rects []geom.Rect, less func(a, b geom.Point) bool) []int {
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return less(rects[order[i]].Center(), rects[order[j]].Center())
	})
	return order
}

// slices2 cuts an ordered index list into consecutive groups of max.
func slices2(order []int, max int) [][]int {
	var groups [][]int
	for start := 0; start < len(order); start += max {
		end := start + max
		if end > len(order) {
			end = len(order)
		}
		grp := make([]int, end-start)
		copy(grp, order[start:end])
		groups = append(groups, grp)
	}
	return groups
}
