// Package pack implements the paper's Section 3.3 PACK algorithm —
// nearest-neighbor bulk loading of R-trees — together with the
// alternatives it anticipates and spawned: plain lowest-x ordering
// (the paper's "order objects of DLIST by some spatial criterion"),
// the rotation packing that constructively realizes Theorem 3.2
// (zero-overlap leaves for point data), and two later descendants,
// Sort-Tile-Recursive (STR) and Hilbert-curve packing, provided as the
// "forthcoming" extensions the conclusion promises.
//
// Each strategy is an rtree.Grouper; rtree.Bulk applies it level by
// level bottom-up, exactly like the recursive PACK of the paper
// ("PACK is then called recursively using the list of leaf MBRs as
// data objects ... until the root is finally reached").
package pack

import (
	"fmt"
	"runtime"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Method selects a packing strategy.
type Method int

const (
	// MethodNN is the paper's PACK: order by ascending x, then group
	// each seed with its nearest neighbors.
	MethodNN Method = iota
	// MethodLowX sorts by x-coordinate and slices consecutive runs —
	// the simplest instance of the paper's "order ... by some spatial
	// criterion" step, without the nearest-neighbor refinement.
	MethodLowX
	// MethodSTR is Sort-Tile-Recursive packing (Leutenegger et al.),
	// the direct descendant of this paper's technique.
	MethodSTR
	// MethodHilbert orders objects by the Hilbert value of their
	// centers (Kamel & Faloutsos), another descendant.
	MethodHilbert
	// MethodRotate realizes Theorem 3.2: rotate the frame so all
	// x-coordinates are distinct, slice the rotated order. For point
	// data the resulting leaf MBRs are pairwise disjoint.
	MethodRotate
	// MethodNNArea is the paper's suggested refinement of PACK: group
	// members are chosen greedily by least MBR enlargement rather than
	// center distance (the exact simultaneous-minimum version "could be
	// combinatorially explosive").
	MethodNNArea
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodNN:
		return "nn"
	case MethodLowX:
		return "lowx"
	case MethodSTR:
		return "str"
	case MethodHilbert:
		return "hilbert"
	case MethodRotate:
		return "rotate"
	case MethodNNArea:
		return "nn-area"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a packed build.
type Options struct {
	// Method selects the grouping strategy; the zero value is the
	// paper's nearest-neighbor PACK.
	Method Method
	// TrimToMultiple reproduces the paper's "integral multiple of
	// four" assumption: the item list is truncated to a multiple of
	// the branching factor before packing, so node counts match
	// Table 1 exactly. Trimmed items are NOT indexed; leave this off
	// for real use.
	TrimToMultiple bool
	// Parallelism is the number of goroutines a build may use for
	// spatial-key computation, sorting, and node assembly. Zero means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path. Every
	// level produces output identical to the sequential build, so
	// Table 1 numbers are unchanged at any setting.
	Parallelism int
}

// parallelism resolves the effective worker count.
func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// Tree builds a packed R-tree over items with the given parameters.
func Tree(params rtree.Params, items []rtree.Item, opts Options) *rtree.Tree {
	if opts.TrimToMultiple {
		n := len(items) - len(items)%params.Max
		items = items[:n]
	}
	par := opts.parallelism()
	return rtree.BulkP(params, items, GrouperWith(opts.Method, par), par)
}

// Grouper returns the rtree.Grouper implementing the given method,
// running single-threaded (the paper's sequential PACK).
func Grouper(m Method) rtree.Grouper { return GrouperWith(m, 1) }

// GrouperWith returns the rtree.Grouper for the given method using up
// to par goroutines per level. Grouping output is identical for every
// par; 0 means runtime.GOMAXPROCS(0).
func GrouperWith(m Method, par int) rtree.Grouper {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	switch m {
	case MethodLowX:
		return lowXGrouper{par: par}
	case MethodSTR:
		return strGrouper{par: par}
	case MethodHilbert:
		return hilbertGrouper{par: par}
	case MethodRotate:
		return rotateGrouper{par: par}
	case MethodNNArea:
		return nnAreaGrouper{par: par}
	default:
		return nnGrouper{par: par}
	}
}

// lowXGrouper sorts by center x (breaking ties by y) and slices
// consecutive groups of max.
type lowXGrouper struct{ par int }

func (lowXGrouper) Name() string { return "lowx" }

func (g lowXGrouper) Group(rects []geom.Rect, max int) [][]int {
	order := sortedByCenter(rects, g.par, func(a, b geom.Point) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return slices2(order, max)
}

// centersOf computes all rectangle centers, in parallel chunks when
// par > 1, so comparison functions don't recompute them per probe.
func centersOf(rects []geom.Rect, par int) []geom.Point {
	centers := make([]geom.Point, len(rects))
	parallelFor(len(rects), par, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			centers[i] = rects[i].Center()
		}
	})
	return centers
}

// identityOrder returns [0, 1, ..., n).
func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// sortedByCenter returns the indices of rects ordered by the given
// comparison of their centers, using up to par goroutines.
func sortedByCenter(rects []geom.Rect, par int, less func(a, b geom.Point) bool) []int {
	centers := centersOf(rects, par)
	order := identityOrder(len(rects))
	parallelSortStable(order, par, func(a, b int) bool {
		return less(centers[a], centers[b])
	})
	return order
}

// slices2 cuts an ordered index list into consecutive groups of max.
// All groups share one backing array (capacity-clipped so a later
// append cannot clobber a neighbor), keeping the allocation count
// constant rather than linear in the group count.
func slices2(order []int, max int) [][]int {
	n := len(order)
	if n == 0 {
		return nil
	}
	groups := make([][]int, 0, (n+max-1)/max)
	backing := make([]int, n)
	copy(backing, order)
	for start := 0; start < n; start += max {
		end := start + max
		if end > n {
			end = n
		}
		groups = append(groups, backing[start:end:end])
	}
	return groups
}
