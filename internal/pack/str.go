package pack

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// strGrouper implements Sort-Tile-Recursive packing (Leutenegger,
// Lopez & Edgington, ICDE 1997), the best-known descendant of this
// paper's packing idea: sort by center x, cut into ceil(sqrt(n/max))
// vertical slabs of ~max*slabCount entries each, sort each slab by
// center y, and slice runs of max.
//
// Both sorting dimensions parallelize: the x-sort is a parallel merge
// sort, and the per-slab y-sorts are independent of each other so each
// slab runs on its own goroutine.
type strGrouper struct{ par int }

func (strGrouper) Name() string { return "str" }

func (g strGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	if n == 0 {
		return nil
	}
	centers := centersOf(rects, g.par)
	order := identityOrder(n)
	parallelSortStable(order, g.par, func(a, b int) bool {
		ca, cb := centers[a], centers[b]
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return ca.Y < cb.Y
	})
	nodeCount := (n + max - 1) / max
	slabs := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlab := slabs * max

	// Slabs are disjoint index ranges of the x-order; sort each by y
	// concurrently, then slice every slab into runs of max.
	slabCount := (n + perSlab - 1) / perSlab
	parallelChunks(slabCount, g.par, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			start := s * perSlab
			end := start + perSlab
			if end > n {
				end = n
			}
			slab := order[start:end]
			sort.SliceStable(slab, func(i, j int) bool {
				a, b := centers[slab[i]], centers[slab[j]]
				if a.Y != b.Y {
					return a.Y < b.Y
				}
				return a.X < b.X
			})
		}
	})
	groups := make([][]int, 0, nodeCount)
	for start := 0; start < n; start += perSlab {
		end := start + perSlab
		if end > n {
			end = n
		}
		groups = append(groups, slices2(order[start:end], max)...)
	}
	return groups
}
