package pack

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// strGrouper implements Sort-Tile-Recursive packing (Leutenegger,
// Lopez & Edgington, ICDE 1997), the best-known descendant of this
// paper's packing idea: sort by center x, cut into ceil(sqrt(n/max))
// vertical slabs of ~max*slabCount entries each, sort each slab by
// center y, and slice runs of max.
type strGrouper struct{}

func (strGrouper) Name() string { return "str" }

func (strGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	if n == 0 {
		return nil
	}
	order := sortedByCenter(rects, func(a, b geom.Point) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	nodeCount := (n + max - 1) / max
	slabs := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	perSlab := slabs * max

	var groups [][]int
	for start := 0; start < n; start += perSlab {
		end := start + perSlab
		if end > n {
			end = n
		}
		slab := make([]int, end-start)
		copy(slab, order[start:end])
		sort.SliceStable(slab, func(i, j int) bool {
			a, b := rects[slab[i]].Center(), rects[slab[j]].Center()
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			return a.X < b.X
		})
		groups = append(groups, slices2(slab, max)...)
	}
	return groups
}
