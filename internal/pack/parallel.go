package pack

import (
	"sort"
	"sync"
)

// This file holds the multi-core machinery behind Options.Parallelism.
// Every helper is deterministic: for any parallelism level the results
// are identical to the sequential computation, so parallel PACK builds
// the same tree the paper's single-threaded PACK does (verified by
// TestParallelPackDeterminism). Determinism comes from two properties:
//
//   - parallelFor partitions work by index range and each range writes
//     only its own slots, so the combined output is order-independent;
//   - parallelSortStable is a stable merge sort (stable chunk sorts,
//     left-preferring merges), and a stable sort's output is uniquely
//     determined by the input order and the comparison.

// parallelThreshold is the input size below which goroutine fan-out
// costs more than it saves; smaller inputs run sequentially. A var so
// determinism tests can lower it and exercise the parallel machinery
// on paper-sized inputs.
var parallelThreshold = 2048

// parallelFor runs fn over [0, n) split into at most par contiguous
// chunks, one goroutine each. fn must only write state owned by its
// index range. par <= 1 (or a small n) runs inline.
func parallelFor(n, par int, fn func(lo, hi int)) {
	if n < parallelThreshold {
		par = 1
	}
	parallelChunks(n, par, fn)
}

// parallelChunks is parallelFor without the small-n bypass, for
// coarse-grained units (a slab sort, a node group) where even a few
// units are worth a goroutine each.
func parallelChunks(n, par int, fn func(lo, hi int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + par - 1) / par
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sortScratch pools the merge buffers parallelSortStable needs, so the
// level-by-level sorts of one build (and repeated builds) reuse scratch
// instead of reallocating it.
var sortScratch = sync.Pool{
	New: func() any { return new([]int) },
}

// parallelSortStable stably sorts idx by less (comparing the *values*
// idx holds, not positions) using up to par goroutines. The output is
// identical to sort.SliceStable for every par.
func parallelSortStable(idx []int, par int, less func(a, b int) bool) {
	n := len(idx)
	if par <= 1 || n < parallelThreshold {
		sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
		return
	}
	if par > n {
		par = n
	}
	// Sort par contiguous runs concurrently; each run sort is stable.
	runs := make([]int, 0, par+1) // run boundaries: runs[i]..runs[i+1]
	chunk := (n + par - 1) / par
	for lo := 0; lo <= n; lo += chunk {
		runs = append(runs, lo)
	}
	if runs[len(runs)-1] != n {
		runs = append(runs, n)
	}
	var wg sync.WaitGroup
	for i := 0; i+1 < len(runs); i++ {
		lo, hi := runs[i], runs[i+1]
		wg.Add(1)
		go func(s []int) {
			defer wg.Done()
			sort.SliceStable(s, func(i, j int) bool { return less(s[i], s[j]) })
		}(idx[lo:hi])
	}
	wg.Wait()

	// Merge adjacent run pairs (concurrently) until one run remains.
	// Merges prefer the left run on ties, preserving stability.
	bufp := sortScratch.Get().(*[]int)
	if cap(*bufp) < n {
		*bufp = make([]int, n)
	}
	src, dst := idx, (*bufp)[:n]
	for len(runs) > 2 {
		next := make([]int, 0, len(runs)/2+2)
		var mg sync.WaitGroup
		for i := 0; i+2 < len(runs); i += 2 {
			lo, mid, hi := runs[i], runs[i+1], runs[i+2]
			next = append(next, lo)
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
		}
		// An odd trailing run is copied through unchanged.
		if len(runs)%2 == 0 {
			lo, hi := runs[len(runs)-2], runs[len(runs)-1]
			next = append(next, lo)
			copy(dst[lo:hi], src[lo:hi])
		}
		next = append(next, n)
		mg.Wait()
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &idx[0] {
		copy(idx, src)
	}
	sortScratch.Put(bufp)
}

// mergeRuns merges two sorted runs into out, taking from a when the
// heads compare equal (stability).
func mergeRuns(out, a, b []int, less func(x, y int) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}
