package pack

import (
	"repro/internal/geom"
)

// rotateGrouper constructively realizes the paper's Theorem 3.2: find
// a rotation angle under which all rectangle centers have distinct
// x-coordinates (Lemma 3.1 guarantees one exists for distinct points),
// sort by rotated x, and slice consecutive groups. For point data this
// yields pairwise-disjoint leaf MBRs in the *rotated* frame; the proof
// separates groups by vertical lines between consecutive x-runs.
//
// Note objection (1) of Section 3.2: the database frame itself is not
// rotated — only the ordering is computed in the rotated frame — so
// the disjointness guarantee applies to the rotated-frame MBRs. The
// axis-aligned MBRs stored in the tree may still touch; the
// TestRotatePackZeroOverlap property verifies disjointness in the
// rotated frame, the faithful reading of the theorem.
type rotateGrouper struct{ par int }

func (rotateGrouper) Name() string { return "rotate" }

func (g rotateGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	if n == 0 {
		return nil
	}
	centers := centersOf(rects, g.par)
	// SeparatingAngle inspects all center pairs and stays sequential;
	// applying the rotation is per-point and fans out.
	alpha := geom.SeparatingAngle(centers)
	rotated := make([]geom.Point, n)
	parallelFor(n, g.par, func(lo, hi int) {
		chunk := geom.RotateAll(centers[lo:hi], alpha)
		copy(rotated[lo:hi], chunk)
	})
	order := identityOrder(n)
	parallelSortStable(order, g.par, func(a, b int) bool {
		pa, pb := rotated[a], rotated[b]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	return slices2(order, max)
}

// RotatePackAngle exposes the rotation angle that would be used for
// the given rectangles, so experiments can verify Theorem 3.2 in the
// rotated frame.
func RotatePackAngle(rects []geom.Rect) float64 {
	centers := make([]geom.Point, len(rects))
	for i, r := range rects {
		centers[i] = r.Center()
	}
	return geom.SeparatingAngle(centers)
}
