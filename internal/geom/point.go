// Package geom provides the planar geometry substrate used throughout the
// pictorial database: points, rectangles, line segments and polygonal
// regions, the minimal-bounding-rectangle (MBR) algebra that R-trees are
// built on, the spatial comparison predicates exposed by PSQL (covers,
// covered-by, overlaps, disjoint), and the area measures (coverage and
// overlap) used to evaluate R-tree quality in the paper's Section 3.
//
// All coordinates are float64 in an arbitrary planar frame. The paper's
// experiments use the frame [0,1000] x [0,1000].
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and order-equivalent, so nearest-neighbor searches
// (such as the NN function inside PACK) use it.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Rotate returns p rotated counter-clockwise about the origin by angle
// alpha (radians). Rotation is the device behind the paper's Lemma 3.1:
// any finite point set can be rotated so that all x-coordinates become
// distinct.
func (p Point) Rotate(alpha float64) Point {
	sin, cos := math.Sincos(alpha)
	return Point{
		X: p.X*cos - p.Y*sin,
		Y: p.X*sin + p.Y*cos,
	}
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Rect returns the degenerate rectangle containing only p.
func (p Point) Rect() Rect { return Rect{Min: p, Max: p} }

// String formats the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Cross returns the z-component of the cross product (b-a) x (c-a).
// It is positive when a,b,c turn counter-clockwise, negative when
// clockwise, and zero when collinear.
func Cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Collinear reports whether a, b and c lie on one line within eps.
func Collinear(a, b, c Point, eps float64) bool {
	return math.Abs(Cross(a, b, c)) <= eps
}
