package geom

import "sort"

// This file implements the quality measures of Section 3.1:
//
//	"Coverage" is defined as the total area of all the MBRs of all
//	leaf R-tree nodes, and "overlap" is defined as the total area
//	contained within two or more leaf MBRs.
//
// Coverage is a plain sum of areas. For overlap we provide two
// readings: OverlapPairwise sums the pairwise intersection areas
// (counting multiplicity, which is what reproduces the paper's Table 1
// — its INSERT overlap exceeds the total domain area at J >= 800, which
// a set measure cannot do), and OverlapMeasure computes the exact area
// of the region covered by at least two rectangles via coordinate
// compression.

// CoverageArea returns the sum of the areas of rects — the paper's C.
func CoverageArea(rects []Rect) float64 {
	sum := 0.0
	for _, r := range rects {
		sum += r.Area()
	}
	return sum
}

// OverlapPairwise returns the sum over all unordered pairs of rects of
// their intersection area — the paper's O as reported in Table 1.
func OverlapPairwise(rects []Rect) float64 {
	sum := 0.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			sum += rects[i].Intersection(rects[j]).Area()
		}
	}
	return sum
}

// UnionArea returns the exact area of the union of rects, computed by
// coordinate compression: O(n^2) cells over the n distinct x and y
// boundaries, each tested against every rectangle. Suitable for the
// node counts arising in the paper's experiments (hundreds of leaves).
func UnionArea(rects []Rect) float64 {
	return measureAtLeast(rects, 1)
}

// OverlapMeasure returns the exact area of the region covered by two
// or more of rects — the set-measure reading of the paper's "overlap".
func OverlapMeasure(rects []Rect) float64 {
	return measureAtLeast(rects, 2)
}

// DeadSpace returns coverage minus union area: the amount of leaf MBR
// area counted redundantly, i.e. the "dead space" plus multiple
// counting that packing seeks to eliminate relative to the footprint.
// It uses the O(n log n) sweep so metrics stay cheap on large trees.
func DeadSpace(rects []Rect) float64 {
	return CoverageArea(rects) - UnionAreaSweep(rects)
}

// measureAtLeast returns the area of the region covered by at least k
// of rects.
func measureAtLeast(rects []Rect, k int) float64 {
	var xs, ys []float64
	nonEmpty := rects[:0:0]
	for _, r := range rects {
		if r.IsEmpty() || r.Area() == 0 {
			// Zero-area rectangles contribute nothing to any measure.
			continue
		}
		nonEmpty = append(nonEmpty, r)
		xs = append(xs, r.Min.X, r.Max.X)
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	if len(nonEmpty) < k {
		return 0
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		cx := (xs[i] + xs[i+1]) / 2
		w := xs[i+1] - xs[i]
		// Collect the y-intervals of rectangles spanning this x-slab,
		// then scan the compressed y cells once per slab.
		var active []Rect
		for _, r := range nonEmpty {
			if r.Min.X <= cx && cx <= r.Max.X {
				active = append(active, r)
			}
		}
		if len(active) < k {
			continue
		}
		for j := 0; j+1 < len(ys); j++ {
			cy := (ys[j] + ys[j+1]) / 2
			n := 0
			for _, r := range active {
				if r.Min.Y <= cy && cy <= r.Max.Y {
					n++
					if n >= k {
						break
					}
				}
			}
			if n >= k {
				total += w * (ys[j+1] - ys[j])
			}
		}
	}
	return total
}

func dedupSorted(v []float64) []float64 {
	sort.Float64s(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// PairwiseDisjoint reports whether no two of rects share interior
// area (boundary contact is allowed). It is the property guaranteed by
// Theorem 3.2's rotation packing for point objects.
func PairwiseDisjoint(rects []Rect) bool {
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersection(rects[j]).Area() > 0 {
				return false
			}
		}
	}
	return true
}
