package geom

import "sort"

// This file implements the quality measures of Section 3.1:
//
//	"Coverage" is defined as the total area of all the MBRs of all
//	leaf R-tree nodes, and "overlap" is defined as the total area
//	contained within two or more leaf MBRs.
//
// Coverage is a plain sum of areas. For overlap we provide two
// readings: OverlapPairwise sums the pairwise intersection areas
// (counting multiplicity, which is what reproduces the paper's Table 1
// — its INSERT overlap exceeds the total domain area at J >= 800, which
// a set measure cannot do), and OverlapMeasure computes the exact area
// of the region covered by at least two rectangles via coordinate
// compression.

// CoverageArea returns the sum of the areas of rects — the paper's C.
func CoverageArea(rects []Rect) float64 {
	sum := 0.0
	for _, r := range rects {
		sum += r.Area()
	}
	return sum
}

// OverlapPairwise returns the sum over all unordered pairs of rects of
// their intersection area — the paper's O as reported in Table 1. The
// rectangles are swept in ascending Min.X so only pairs whose
// x-extents overlap are examined: near-linear on packed trees whose
// leaves barely overlap, O(n^2) only when most pairs truly intersect.
func OverlapPairwise(rects []Rect) float64 {
	sorted := make([]Rect, 0, len(rects))
	for _, r := range rects {
		if !r.IsEmpty() {
			sorted = append(sorted, r)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Min.X < sorted[j].Min.X })
	sum := 0.0
	for i, ri := range sorted {
		for _, rj := range sorted[i+1:] {
			if rj.Min.X > ri.Max.X {
				break
			}
			sum += ri.Intersection(rj).Area()
		}
	}
	return sum
}

// UnionArea returns the exact area of the union of rects — the
// coordinate-compression reading used as the reference in tests
// (UnionAreaSweep is the production path via DeadSpace).
func UnionArea(rects []Rect) float64 {
	return measureAtLeast(rects, 1)
}

// OverlapMeasure returns the exact area of the region covered by two
// or more of rects — the set-measure reading of the paper's "overlap".
func OverlapMeasure(rects []Rect) float64 {
	return measureAtLeast(rects, 2)
}

// DeadSpace returns coverage minus union area: the amount of leaf MBR
// area counted redundantly, i.e. the "dead space" plus multiple
// counting that packing seeks to eliminate relative to the footprint.
// It uses the O(n log n) sweep so metrics stay cheap on large trees.
func DeadSpace(rects []Rect) float64 {
	return CoverageArea(rects) - UnionAreaSweep(rects)
}

// measureAtLeast returns the area of the region covered by at least k
// of rects, by a plane sweep over x: between adjacent x boundaries the
// covered-y length is measured from two sorted arrays of the active
// rectangles' y boundaries, maintained incrementally as rectangles
// enter and leave the sweep. No per-slab sorting happens, so the cost
// is O(n x active) — near-linear for tiled packings, where few leaves
// are active at any x.
func measureAtLeast(rects []Rect, k int) float64 {
	var evs []xEvent
	n := 0
	for _, r := range rects {
		if r.IsEmpty() || r.Area() == 0 {
			// Zero-area rectangles contribute nothing to any measure.
			continue
		}
		n++
		evs = append(evs,
			xEvent{x: r.Min.X, d: 1, yLo: r.Min.Y, yHi: r.Max.Y},
			xEvent{x: r.Max.X, d: -1, yLo: r.Min.Y, yHi: r.Max.Y})
	}
	if n < k {
		return 0
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].x < evs[j].x })
	var startsY, endsY []float64
	total := 0.0
	prevX := evs[0].x
	for i := 0; i < len(evs); {
		x := evs[i].x
		if x > prevX && len(startsY) >= k {
			total += (x - prevX) * coveredLength(startsY, endsY, k)
		}
		for i < len(evs) && evs[i].x == x {
			e := evs[i]
			if e.d > 0 {
				startsY = insertSorted(startsY, e.yLo)
				endsY = insertSorted(endsY, e.yHi)
			} else {
				startsY = removeSorted(startsY, e.yLo)
				endsY = removeSorted(endsY, e.yHi)
			}
			i++
		}
		prevX = x
	}
	return total
}

// xEvent is a sweep boundary: at coordinate x a rectangle with
// y-extent [yLo, yHi] enters (d=+1) or leaves (d=-1) the active set.
type xEvent struct {
	x, yLo, yHi float64
	d           int
}

// insertSorted inserts v into ascending-sorted vs.
func insertSorted(vs []float64, v float64) []float64 {
	i := sort.SearchFloat64s(vs, v)
	vs = append(vs, 0)
	copy(vs[i+1:], vs[i:])
	vs[i] = v
	return vs
}

// removeSorted removes one instance of v from ascending-sorted vs.
func removeSorted(vs []float64, v float64) []float64 {
	i := sort.SearchFloat64s(vs, v)
	return append(vs[:i], vs[i+1:]...)
}

// coveredLength returns the total y-length covered by at least k of
// the active intervals, given their start and end coordinates each in
// ascending order (both arrays have equal length).
func coveredLength(startsY, endsY []float64, k int) float64 {
	depth, i, j := 0, 0, 0
	length, prev := 0.0, 0.0
	for i < len(startsY) || j < len(endsY) {
		var y float64
		var d int
		if i < len(startsY) && startsY[i] <= endsY[j] {
			y, d = startsY[i], 1
			i++
		} else {
			y, d = endsY[j], -1
			j++
		}
		if depth >= k {
			length += y - prev
		}
		depth += d
		prev = y
	}
	return length
}

func dedupSorted(v []float64) []float64 {
	sort.Float64s(v)
	out := v[:0]
	for i, x := range v {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// PairwiseDisjoint reports whether no two of rects share interior
// area (boundary contact is allowed). It is the property guaranteed by
// Theorem 3.2's rotation packing for point objects.
func PairwiseDisjoint(rects []Rect) bool {
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersection(rects[j]).Area() > 0 {
				return false
			}
		}
	}
	return true
}
