package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same", Pt(1, 1), Pt(1, 1), 0},
		{"unitX", Pt(0, 0), Pt(1, 0), 1},
		{"pythagorean", Pt(0, 0), Pt(3, 4), 5},
		{"negative", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); got != tt.want {
				t.Errorf("Dist = %g, want %g", got, tt.want)
			}
			if got := tt.p.DistSq(tt.q); got != tt.want*tt.want {
				t.Errorf("DistSq = %g, want %g", got, tt.want*tt.want)
			}
		})
	}
}

func TestPointRotate(t *testing.T) {
	p := Pt(1, 0)
	got := p.Rotate(math.Pi / 2)
	if math.Abs(got.X) > 1e-12 || math.Abs(got.Y-1) > 1e-12 {
		t.Errorf("rotate (1,0) by pi/2 = %v, want (0,1)", got)
	}
	got = p.Rotate(math.Pi)
	if math.Abs(got.X+1) > 1e-12 || math.Abs(got.Y) > 1e-12 {
		t.Errorf("rotate (1,0) by pi = %v, want (-1,0)", got)
	}
}

func TestQuickRotatePreservesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func() bool {
		p := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		q := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		a := rng.Float64() * 2 * math.Pi
		return math.Abs(p.Rotate(a).Dist(q.Rotate(a))-p.Dist(q)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCross(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if Cross(a, b, Pt(1, 1)) <= 0 {
		t.Error("ccw turn should be positive")
	}
	if Cross(a, b, Pt(1, -1)) >= 0 {
		t.Error("cw turn should be negative")
	}
	if Cross(a, b, Pt(2, 0)) != 0 {
		t.Error("collinear should be zero")
	}
	if !Collinear(a, b, Pt(5, 0), 1e-9) {
		t.Error("Collinear failed on collinear points")
	}
	if Collinear(a, b, Pt(5, 1), 1e-9) {
		t.Error("Collinear accepted non-collinear points")
	}
}

func TestVectorOps(t *testing.T) {
	p := Pt(1, 2)
	if got := p.Add(Pt(3, 4)); !got.Eq(Pt(4, 6)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Pt(3, 4)); !got.Eq(Pt(-2, -2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(3); !got.Eq(Pt(3, 6)) {
		t.Errorf("Scale = %v", got)
	}
	if r := p.Rect(); !r.ContainsPoint(p) || r.Area() != 0 {
		t.Errorf("point Rect wrong: %v", r)
	}
}
