package geom

import (
	"fmt"
	"math"
	"sort"
)

// Polygon is a simple polygonal region given by its vertices in order
// (either winding). Regions in the paper — states, time zones, lakes —
// are polygon objects. The polygon is implicitly closed: the last
// vertex connects back to the first.
type Polygon struct {
	Vertices []Point
}

// Poly builds a polygon from its vertices.
func Poly(pts ...Point) Polygon { return Polygon{Vertices: pts} }

// RectPoly returns the polygon form of rectangle r.
func RectPoly(r Rect) Polygon {
	c := r.Corners()
	return Poly(c[0], c[1], c[2], c[3])
}

// Rect returns the minimal bounding rectangle of p. Leaf entries for
// region objects store this MBR; the region itself stays outside the
// R-tree, exactly as the paper prescribes (spatial objects are atomic
// at the leaf level and never decomposed into pictorial primitives).
func (p Polygon) Rect() Rect { return MBR(p.Vertices...) }

// Area returns the enclosed area of p via the shoelace formula,
// independent of winding direction. This implements the paper's
// example pictorial function "area" on region domains.
func (p Polygon) Area() float64 {
	n := len(p.Vertices)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		a, b := p.Vertices[i], p.Vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(sum) / 2
}

// Perimeter returns the total boundary length of p.
func (p Polygon) Perimeter() float64 {
	n := len(p.Vertices)
	if n < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.Vertices[i].Dist(p.Vertices[(i+1)%n])
	}
	return sum
}

// Centroid returns the area centroid of p (the mean vertex for
// degenerate polygons with fewer than three vertices or zero area).
func (p Polygon) Centroid() Point {
	n := len(p.Vertices)
	if n == 0 {
		return Point{}
	}
	a := 0.0
	var cx, cy float64
	for i := 0; i < n; i++ {
		v, w := p.Vertices[i], p.Vertices[(i+1)%n]
		cr := v.X*w.Y - w.X*v.Y
		a += cr
		cx += (v.X + w.X) * cr
		cy += (v.Y + w.Y) * cr
	}
	if math.Abs(a) < 1e-12 {
		var mx, my float64
		for _, v := range p.Vertices {
			mx += v.X
			my += v.Y
		}
		return Point{mx / float64(n), my / float64(n)}
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// ContainsPoint reports whether q lies inside p (boundary inclusive),
// by the even-odd ray-crossing rule.
func (p Polygon) ContainsPoint(q Point) bool {
	n := len(p.Vertices)
	if n < 3 {
		return false
	}
	// Boundary check first: crossing parity is unreliable exactly on
	// the boundary.
	for i := 0; i < n; i++ {
		s := Segment{p.Vertices[i], p.Vertices[(i+1)%n]}
		if Collinear(s.A, s.B, q, 1e-9) && s.onSegment(q) {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := p.Vertices[i], p.Vertices[j]
		if (vi.Y > q.Y) != (vj.Y > q.Y) {
			xCross := (vj.X-vi.X)*(q.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// IntersectsRect reports whether the region p shares at least one
// point with rectangle r: exact refinement for window queries over
// region objects.
func (p Polygon) IntersectsRect(r Rect) bool {
	if r.IsEmpty() || !p.Rect().Intersects(r) {
		return false
	}
	for _, v := range p.Vertices {
		if r.ContainsPoint(v) {
			return true
		}
	}
	if p.ContainsPoint(r.Min) || p.ContainsPoint(r.Max) ||
		p.ContainsPoint(Point{r.Min.X, r.Max.Y}) || p.ContainsPoint(Point{r.Max.X, r.Min.Y}) {
		return true
	}
	n := len(p.Vertices)
	c := r.Corners()
	edges := [4]Segment{{c[0], c[1]}, {c[1], c[2]}, {c[2], c[3]}, {c[3], c[0]}}
	for i := 0; i < n; i++ {
		side := Segment{p.Vertices[i], p.Vertices[(i+1)%n]}
		for _, e := range edges {
			if side.Intersects(e) {
				return true
			}
		}
	}
	return false
}

// String formats the polygon as its vertex list.
func (p Polygon) String() string {
	return fmt.Sprintf("poly%v", p.Vertices)
}

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using the monotone-chain algorithm. The hull is useful when deriving
// compact region outlines from digitized point clouds.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n < 3 {
		out := make([]Point, n)
		copy(out, pts)
		return out
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	hull := make([]Point, 0, 2*n)
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && Cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && Cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}
