package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNormalizesCorners(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want Rect
	}{
		{"ordered", R(1, 2, 3, 4), Rect{Point{1, 2}, Point{3, 4}}},
		{"xSwapped", R(3, 2, 1, 4), Rect{Point{1, 2}, Point{3, 4}}},
		{"ySwapped", R(1, 4, 3, 2), Rect{Point{1, 2}, Point{3, 4}}},
		{"bothSwapped", R(3, 4, 1, 2), Rect{Point{1, 2}, Point{3, 4}}},
		{"degenerate", R(5, 5, 5, 5), Rect{Point{5, 5}, Point{5, 5}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.r != tt.want {
				t.Errorf("got %v, want %v", tt.r, tt.want)
			}
		})
	}
}

func TestWindowAt(t *testing.T) {
	// The paper's example window {4±4, 11±9} = [0,8] x [2,20].
	w := WindowAt(4, 4, 11, 9)
	want := R(0, 2, 8, 20)
	if !w.Eq(want) {
		t.Fatalf("WindowAt(4,4,11,9) = %v, want %v", w, want)
	}
}

func TestRectAreaMarginCenter(t *testing.T) {
	r := R(2, 3, 10, 7)
	if got := r.Area(); got != 32 {
		t.Errorf("Area = %g, want 32", got)
	}
	if got := r.Margin(); got != 12 {
		t.Errorf("Margin = %g, want 12", got)
	}
	if got := r.Center(); !got.Eq(Pt(6, 5)) {
		t.Errorf("Center = %v, want (6,5)", got)
	}
	if e := EmptyRect(); e.Area() != 0 || e.Margin() != 0 {
		t.Errorf("empty rect should have zero area and margin")
	}
}

func TestContainsAndIntersects(t *testing.T) {
	base := R(0, 0, 10, 10)
	tests := []struct {
		name       string
		other      Rect
		contains   bool
		intersects bool
	}{
		{"identical", R(0, 0, 10, 10), true, true},
		{"inside", R(2, 2, 8, 8), true, true},
		{"touchingEdgeInside", R(0, 0, 5, 5), true, true},
		{"straddling", R(5, 5, 15, 15), false, true},
		{"touchingBorder", R(10, 0, 20, 10), false, true},
		{"touchingCorner", R(10, 10, 20, 20), false, true},
		{"disjointRight", R(11, 0, 20, 10), false, false},
		{"disjointAbove", R(0, 11, 10, 20), false, false},
		{"surrounding", R(-5, -5, 15, 15), false, true},
		{"empty", EmptyRect(), true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := base.Contains(tt.other); got != tt.contains {
				t.Errorf("Contains = %v, want %v", got, tt.contains)
			}
			if got := base.Intersects(tt.other); got != tt.intersects {
				t.Errorf("Intersects = %v, want %v", got, tt.intersects)
			}
			if got := tt.other.Intersects(base); got != tt.intersects {
				t.Errorf("Intersects not symmetric: got %v, want %v", got, tt.intersects)
			}
		})
	}
}

func TestContainsPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	in := []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}, {10, 0}, {0, 5}}
	out := []Point{{-0.001, 5}, {10.001, 5}, {5, -1}, {5, 10.5}, {11, 11}}
	for _, p := range in {
		if !r.ContainsPoint(p) {
			t.Errorf("expected %v inside %v", p, r)
		}
	}
	for _, p := range out {
		if r.ContainsPoint(p) {
			t.Errorf("expected %v outside %v", p, r)
		}
	}
}

func TestIntersection(t *testing.T) {
	tests := []struct {
		name string
		a, b Rect
		want Rect
	}{
		{"overlap", R(0, 0, 10, 10), R(5, 5, 15, 15), R(5, 5, 10, 10)},
		{"contained", R(0, 0, 10, 10), R(2, 2, 4, 4), R(2, 2, 4, 4)},
		{"edge", R(0, 0, 10, 10), R(10, 0, 20, 10), R(10, 0, 10, 10)},
		{"disjoint", R(0, 0, 1, 1), R(5, 5, 6, 6), EmptyRect()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Intersection(tt.b)
			if !got.Eq(tt.want) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
			if sym := tt.b.Intersection(tt.a); !sym.Eq(tt.want) {
				t.Errorf("intersection not symmetric: %v vs %v", sym, tt.want)
			}
		})
	}
}

func TestUnionIdentity(t *testing.T) {
	r := R(3, 4, 7, 9)
	if got := EmptyRect().Union(r); !got.Eq(r) {
		t.Errorf("empty ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(EmptyRect()); !got.Eq(r) {
		t.Errorf("r ∪ empty = %v, want %v", got, r)
	}
}

func TestEnlargement(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		name string
		s    Rect
		want float64
	}{
		{"contained", R(1, 1, 2, 2), 0},
		{"extendRight", R(0, 0, 20, 10), 100},
		{"corner", R(10, 10, 20, 20), 300}, // union 20x20=400 - 100
		{"point", Pt(15, 5).Rect(), 50},    // union 15x10=150 - 100
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Enlargement(tt.s); got != tt.want {
				t.Errorf("Enlargement = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestMBR(t *testing.T) {
	got := MBR(Pt(3, 9), Pt(-1, 4), Pt(7, 0))
	want := R(-1, 0, 7, 9)
	if !got.Eq(want) {
		t.Fatalf("MBR = %v, want %v", got, want)
	}
	if !MBR().IsEmpty() {
		t.Fatal("MBR of no points should be empty")
	}
}

func TestMBRRects(t *testing.T) {
	got := MBRRects(R(0, 0, 1, 1), R(5, 5, 6, 8), EmptyRect())
	want := R(0, 0, 6, 8)
	if !got.Eq(want) {
		t.Fatalf("MBRRects = %v, want %v", got, want)
	}
}

func TestSpatialOperators(t *testing.T) {
	big := R(0, 0, 100, 100)
	small := R(10, 10, 20, 20)
	other := R(200, 200, 300, 300)
	partial := R(50, 50, 150, 150)

	if !Covers(big, small) || Covers(small, big) {
		t.Error("covers relation wrong")
	}
	if !CoveredBy(small, big) || CoveredBy(big, small) {
		t.Error("covered-by relation wrong")
	}
	if !Overlapping(big, partial) || Overlapping(big, other) {
		t.Error("overlapping relation wrong")
	}
	if !Disjoined(big, other) || Disjoined(big, partial) {
		t.Error("disjoined relation wrong")
	}
	// covers implies overlapping, and disjoined is its complement.
	if Covers(big, small) && !Overlapping(big, small) {
		t.Error("covers must imply overlapping")
	}
}

// randRect draws a random non-empty rectangle inside [0,1000]^2.
func randRect(rng *rand.Rand) Rect {
	return R(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
}

func TestQuickUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionContainedInBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		in := a.Intersection(b)
		return a.Contains(in) && b.Contains(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickInclusionExclusionArea(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		union := UnionArea([]Rect{a, b})
		want := a.Area() + b.Area() - a.Intersection(b).Area()
		return math.Abs(union-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEnlargementNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		return a.Enlargement(b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsConsistentWithIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		return a.Intersects(b) == !a.Intersection(b).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
