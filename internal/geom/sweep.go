package geom

import "sort"

// UnionAreaSweep computes the exact union area of rects with the
// classic plane sweep: x-sorted edge events over a segment tree on
// compressed y-coordinates, O(n log n) versus the O(n²)-cell
// coordinate-compression grid of UnionArea. Both are kept: the grid
// version also answers ≥k coverage (OverlapMeasure); the sweep is the
// scalable union for large leaf sets, and each property-tests the
// other.
func UnionAreaSweep(rects []Rect) float64 {
	type event struct {
		x      float64
		y1, y2 int // compressed y interval [y1, y2)
		delta  int
	}
	var ys []float64
	for _, r := range rects {
		if r.IsEmpty() || r.Area() == 0 {
			continue
		}
		ys = append(ys, r.Min.Y, r.Max.Y)
	}
	if len(ys) == 0 {
		return 0
	}
	ys = dedupSorted(ys)
	yIndex := make(map[float64]int, len(ys))
	for i, y := range ys {
		yIndex[y] = i
	}

	var events []event
	for _, r := range rects {
		if r.IsEmpty() || r.Area() == 0 {
			continue
		}
		y1, y2 := yIndex[r.Min.Y], yIndex[r.Max.Y]
		events = append(events, event{r.Min.X, y1, y2, +1}, event{r.Max.X, y1, y2, -1})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].x < events[j].x })

	st := newCoverTree(ys)
	total := 0.0
	prevX := events[0].x
	for _, e := range events {
		total += st.covered() * (e.x - prevX)
		prevX = e.x
		st.update(1, 0, len(ys)-1, e.y1, e.y2, e.delta)
	}
	return total
}

// coverTree is a segment tree over y-slabs counting how many intervals
// cover each slab; covered() returns the total covered y-length.
type coverTree struct {
	ys    []float64
	count []int     // cover count of the node's whole range
	cov   []float64 // covered length within the node's range
}

func newCoverTree(ys []float64) *coverTree {
	n := len(ys)
	return &coverTree{ys: ys, count: make([]int, 4*n), cov: make([]float64, 4*n)}
}

func (t *coverTree) covered() float64 {
	if len(t.ys) < 2 {
		return 0
	}
	return t.cov[1]
}

// update adds delta to slabs [lo, hi) within node covering [l, r).
// Node indices are slab indices: node range [l, r) spans ys[l]..ys[r].
func (t *coverTree) update(node, l, r, lo, hi, delta int) {
	if r <= l || hi <= l || r <= lo {
		return
	}
	if lo <= l && r <= hi {
		t.count[node] += delta
	} else {
		mid := (l + r) / 2
		t.update(2*node, l, mid, lo, hi, delta)
		t.update(2*node+1, mid, r, lo, hi, delta)
	}
	switch {
	case t.count[node] > 0:
		t.cov[node] = t.ys[r] - t.ys[l]
	case r-l == 1:
		t.cov[node] = 0
	default:
		t.cov[node] = t.cov[2*node] + t.cov[2*node+1]
	}
}
