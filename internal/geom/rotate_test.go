package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeparatingAngleVerticalPair(t *testing.T) {
	// Two points sharing an x-coordinate: any angle except multiples
	// of pi separates them. SeparatingAngle must find one.
	pts := []Point{{5, 0}, {5, 10}}
	if DistinctX(pts) {
		t.Fatal("test points should share x")
	}
	a := SeparatingAngle(pts)
	if !DistinctX(RotateAll(pts, a)) {
		t.Fatalf("rotation by %g did not separate x-coordinates", a)
	}
}

func TestSeparatingAngleGrid(t *testing.T) {
	// A 4x4 integer grid is maximally collinear: 16 points, many shared
	// x-coordinates and 45-degree alignments.
	var pts []Point
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			pts = append(pts, Pt(float64(i), float64(j)))
		}
	}
	a := SeparatingAngle(pts)
	rot := RotateAll(pts, a)
	if !DistinctX(rot) {
		t.Fatalf("grid not separated: F=%d of %d", CountDistinctX(rot), len(rot))
	}
}

func TestSeparatingAngleAlreadyDistinct(t *testing.T) {
	pts := []Point{{1, 5}, {2, 3}, {4, 8}}
	a := SeparatingAngle(pts)
	if !DistinctX(RotateAll(pts, a)) {
		t.Fatal("rotation broke already-distinct x-coordinates")
	}
}

func TestSeparatingAngleCoincidentPoints(t *testing.T) {
	// Coincident points can never be separated; the function must not
	// panic or loop, and the remaining points must still separate.
	pts := []Point{{1, 1}, {1, 1}, {2, 2}, {1, 3}}
	a := SeparatingAngle(pts)
	rot := RotateAll(pts, a)
	// Expect |S|-1 distinct x (the duplicated point collapses).
	if got := CountDistinctX(rot); got != 3 {
		t.Fatalf("CountDistinctX = %d, want 3", got)
	}
}

func TestCountDistinctX(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want int
	}{
		{"empty", nil, 0},
		{"single", []Point{{1, 2}}, 1},
		{"allDistinct", []Point{{1, 0}, {2, 0}, {3, 0}}, 3},
		{"allSame", []Point{{1, 0}, {1, 5}, {1, 9}}, 1},
		{"mixed", []Point{{1, 0}, {1, 5}, {2, 9}}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CountDistinctX(tt.pts); got != tt.want {
				t.Errorf("got %d, want %d", got, tt.want)
			}
			if want := tt.want == len(tt.pts); DistinctX(tt.pts) != want {
				t.Errorf("DistinctX = %v, want %v", DistinctX(tt.pts), want)
			}
		})
	}
}

// TestQuickLemma31 is the property test of Lemma 3.1: for random point
// sets (including forced duplicates of x-coordinates), SeparatingAngle
// yields a rotation under which all distinct points have distinct
// x-coordinates.
func TestQuickLemma31(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func() bool {
		n := 2 + rng.Intn(20)
		pts := make([]Point, 0, n)
		for i := 0; i < n; i++ {
			// Integer coordinates force many collinear pairs and
			// shared x-coordinates, the hard case of the lemma.
			pts = append(pts, Pt(float64(rng.Intn(10)), float64(rng.Intn(10))))
		}
		distinct := dedupPoints(pts)
		a := SeparatingAngle(distinct)
		return DistinctX(RotateAll(distinct, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func dedupPoints(pts []Point) []Point {
	seen := make(map[Point]struct{}, len(pts))
	out := pts[:0:0]
	for _, p := range pts {
		if _, dup := seen[p]; !dup {
			seen[p] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}
