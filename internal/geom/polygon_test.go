package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Polygon { return Poly(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)) }

func TestPolygonArea(t *testing.T) {
	tests := []struct {
		name string
		p    Polygon
		want float64
	}{
		{"square", unitSquare(), 16},
		{"triangle", Poly(Pt(0, 0), Pt(4, 0), Pt(0, 3)), 6},
		{"clockwiseTriangle", Poly(Pt(0, 3), Pt(4, 0), Pt(0, 0)), 6},
		{"degenerateLine", Poly(Pt(0, 0), Pt(5, 5)), 0},
		{"lShape", Poly(Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)), 12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Area(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Area = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestPolygonPerimeterCentroid(t *testing.T) {
	sq := unitSquare()
	if got := sq.Perimeter(); got != 16 {
		t.Errorf("Perimeter = %g, want 16", got)
	}
	c := sq.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y-2) > 1e-12 {
		t.Errorf("Centroid = %v, want (2,2)", c)
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	l := Poly(Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4))
	in := []Point{{1, 1}, {3, 1}, {1, 3}, {0, 0}, {2, 2}, {4, 1}}
	out := []Point{{3, 3}, {5, 1}, {-1, 0}, {2.5, 2.5}}
	for _, p := range in {
		if !l.ContainsPoint(p) {
			t.Errorf("expected %v inside L-shape", p)
		}
	}
	for _, p := range out {
		if l.ContainsPoint(p) {
			t.Errorf("expected %v outside L-shape", p)
		}
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	tri := Poly(Pt(0, 0), Pt(10, 0), Pt(0, 10))
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"inside", R(1, 1, 2, 2), true},
		{"rectContainsPoly", R(-5, -5, 20, 20), true},
		{"edgeCrossing", R(4, 4, 8, 8), true}, // crosses the hypotenuse
		{"outsideHypotenuse", R(8, 8, 9, 9), false},
		{"farAway", R(50, 50, 60, 60), false},
		{"mbrOverlapsButPolyDoesNot", R(9, 9, 10, 10), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tri.IntersectsRect(tt.r); got != tt.want {
				t.Errorf("IntersectsRect(%v) = %v, want %v", tt.r, got, tt.want)
			}
		})
	}
}

func TestPolygonRect(t *testing.T) {
	tri := Poly(Pt(2, 1), Pt(10, 3), Pt(4, 9))
	want := R(2, 1, 10, 9)
	if got := tri.Rect(); !got.Eq(want) {
		t.Fatalf("Rect = %v, want %v", got, want)
	}
	if got := RectPoly(want).Area(); got != want.Area() {
		t.Fatalf("RectPoly area = %g, want %g", got, want.Area())
	}
}

func TestConvexHull(t *testing.T) {
	pts := []Point{
		{0, 0}, {4, 0}, {4, 4}, {0, 4}, // square corners
		{2, 2}, {1, 1}, {3, 2}, // interior
		{2, 0}, {4, 2}, // on edges
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	hp := Polygon{Vertices: hull}
	if got := hp.Area(); math.Abs(got-16) > 1e-12 {
		t.Fatalf("hull area = %g, want 16", got)
	}
}

func TestConvexHullSmall(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("hull of nothing = %v", got)
	}
	two := []Point{{1, 1}, {2, 2}}
	if got := ConvexHull(two); len(got) != 2 {
		t.Errorf("hull of two points = %v", got)
	}
}

func TestQuickHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	f := func() bool {
		n := 3 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := Polygon{Vertices: ConvexHull(pts)}
		if len(hull.Vertices) < 3 {
			return true // degenerate input
		}
		for _, p := range pts {
			if !hull.ContainsPoint(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPolygonAreaInsideMBR(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		n := 3 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := Polygon{Vertices: ConvexHull(pts)}
		return hull.Area() <= hull.Rect().Area()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if got := s.Length(); got != 5 {
		t.Errorf("Length = %g, want 5", got)
	}
	if got := s.Midpoint(); !got.Eq(Pt(1.5, 2)) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.Rect(); !got.Eq(R(0, 0, 3, 4)) {
		t.Errorf("Rect = %v", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b Segment
		want bool
	}{
		{"crossing", Seg(Pt(0, 0), Pt(4, 4)), Seg(Pt(0, 4), Pt(4, 0)), true},
		{"parallel", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(0, 1), Pt(4, 1)), false},
		{"collinearOverlap", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(6, 0)), true},
		{"collinearDisjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false},
		{"touchingEndpoint", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(2, 2), Pt(4, 0)), true},
		{"tShape", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, -1), Pt(2, 1)), true},
		{"nearMiss", Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, -1), Pt(5, 1)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
			if got := tt.b.Intersects(tt.a); got != tt.want {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"inside", Seg(Pt(1, 1), Pt(2, 2)), true},
		{"crossingThrough", Seg(Pt(-5, 5), Pt(15, 5)), true},
		{"endpointInside", Seg(Pt(5, 5), Pt(20, 20)), true},
		{"outside", Seg(Pt(20, 20), Pt(30, 30)), false},
		{"grazingCorner", Seg(Pt(10, 10), Pt(20, 20)), true},
		{"diagonalMiss", Seg(Pt(11, 0), Pt(20, 9)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.IntersectsRect(r); got != tt.want {
				t.Errorf("IntersectsRect = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},
		{Pt(-4, 3), 5},
		{Pt(13, 4), 5},
		{Pt(5, 0), 0},
	}
	for _, tt := range tests {
		if got := s.DistToPoint(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %g, want %g", tt.p, got, tt.want)
		}
	}
	// Degenerate segment is a point.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if got := d.DistToPoint(Pt(4, 5)); got != 5 {
		t.Errorf("degenerate DistToPoint = %g, want 5", got)
	}
}
