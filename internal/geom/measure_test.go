package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoverageArea(t *testing.T) {
	rects := []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15), EmptyRect()}
	if got := CoverageArea(rects); got != 200 {
		t.Fatalf("CoverageArea = %g, want 200", got)
	}
	if got := CoverageArea(nil); got != 0 {
		t.Fatalf("CoverageArea(nil) = %g, want 0", got)
	}
}

func TestOverlapPairwise(t *testing.T) {
	tests := []struct {
		name  string
		rects []Rect
		want  float64
	}{
		{"disjoint", []Rect{R(0, 0, 1, 1), R(5, 5, 6, 6)}, 0},
		{"pair", []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}, 25},
		// Three identical unit squares: 3 pairs of overlap 1 each.
		{"tripleIdentical", []Rect{R(0, 0, 1, 1), R(0, 0, 1, 1), R(0, 0, 1, 1)}, 3},
		{"touching", []Rect{R(0, 0, 1, 1), R(1, 0, 2, 1)}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := OverlapPairwise(tt.rects); got != tt.want {
				t.Errorf("OverlapPairwise = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestUnionArea(t *testing.T) {
	tests := []struct {
		name  string
		rects []Rect
		want  float64
	}{
		{"empty", nil, 0},
		{"single", []Rect{R(0, 0, 4, 5)}, 20},
		{"disjoint", []Rect{R(0, 0, 1, 1), R(2, 2, 3, 3)}, 2},
		{"overlapPair", []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}, 175},
		{"nested", []Rect{R(0, 0, 10, 10), R(2, 2, 4, 4)}, 100},
		{"identicalTriple", []Rect{R(0, 0, 2, 2), R(0, 0, 2, 2), R(0, 0, 2, 2)}, 4},
		{"cross", []Rect{R(0, 4, 10, 6), R(4, 0, 6, 10)}, 36},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := UnionArea(tt.rects); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("UnionArea = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestOverlapMeasure(t *testing.T) {
	tests := []struct {
		name  string
		rects []Rect
		want  float64
	}{
		{"disjoint", []Rect{R(0, 0, 1, 1), R(2, 2, 3, 3)}, 0},
		{"pair", []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}, 25},
		// Region covered >=2 times is still the same 2x2 square even
		// with three copies — unlike the pairwise sum.
		{"identicalTriple", []Rect{R(0, 0, 2, 2), R(0, 0, 2, 2), R(0, 0, 2, 2)}, 4},
		{"cross", []Rect{R(0, 4, 10, 6), R(4, 0, 6, 10)}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := OverlapMeasure(tt.rects); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("OverlapMeasure = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestDeadSpace(t *testing.T) {
	// Two 10x10 squares overlapping in a 5x5 region: coverage 200,
	// union 175, dead space 25.
	rects := []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}
	if got := DeadSpace(rects); math.Abs(got-25) > 1e-9 {
		t.Fatalf("DeadSpace = %g, want 25", got)
	}
}

func TestPairwiseDisjoint(t *testing.T) {
	if !PairwiseDisjoint([]Rect{R(0, 0, 1, 1), R(2, 0, 3, 1), R(1, 0, 2, 1)}) {
		t.Error("boundary contact should count as disjoint")
	}
	if PairwiseDisjoint([]Rect{R(0, 0, 2, 2), R(1, 1, 3, 3)}) {
		t.Error("interior overlap should not be disjoint")
	}
}

func TestQuickUnionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func() bool {
		n := 2 + rng.Intn(6)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randRect(rng)
		}
		union := UnionArea(rects)
		cover := CoverageArea(rects)
		maxA := 0.0
		for _, r := range rects {
			maxA = math.Max(maxA, r.Area())
		}
		// max single area <= union <= sum of areas.
		return union <= cover+1e-6 && union >= maxA-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapMeasureBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 2 + rng.Intn(6)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randRect(rng)
		}
		om := OverlapMeasure(rects)
		op := OverlapPairwise(rects)
		union := UnionArea(rects)
		// The >=2-covered region is inside the union and never exceeds
		// the pairwise multiplicity sum.
		return om <= union+1e-6 && om <= op+1e-6 && om >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoverageIdentity(t *testing.T) {
	// coverage == union + sum over k>=2 of area covered at least k
	// times; verify the k=2 truncation: union + overlapMeasure <=
	// coverage for sets of at most 2 rectangles, with equality.
	rng := rand.New(rand.NewSource(22))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		rects := []Rect{a, b}
		lhs := UnionArea(rects) + OverlapMeasure(rects)
		return math.Abs(lhs-CoverageArea(rects)) < 1e-6*(1+lhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnionAreaSweepBasics(t *testing.T) {
	tests := []struct {
		name  string
		rects []Rect
		want  float64
	}{
		{"empty", nil, 0},
		{"single", []Rect{R(0, 0, 4, 5)}, 20},
		{"disjoint", []Rect{R(0, 0, 1, 1), R(2, 2, 3, 3)}, 2},
		{"overlapPair", []Rect{R(0, 0, 10, 10), R(5, 5, 15, 15)}, 175},
		{"nested", []Rect{R(0, 0, 10, 10), R(2, 2, 4, 4)}, 100},
		{"identicalTriple", []Rect{R(0, 0, 2, 2), R(0, 0, 2, 2), R(0, 0, 2, 2)}, 4},
		{"cross", []Rect{R(0, 4, 10, 6), R(4, 0, 6, 10)}, 36},
		{"degenerate", []Rect{R(1, 1, 1, 5), R(2, 2, 6, 2)}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := UnionAreaSweep(tt.rects); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("UnionAreaSweep = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestQuickSweepMatchesGrid(t *testing.T) {
	// The O(n log n) sweep and the O(n^2) grid must agree exactly on
	// random rectangle sets — two independent implementations
	// property-testing each other.
	rng := rand.New(rand.NewSource(23))
	f := func() bool {
		n := 1 + rng.Intn(40)
		rects := make([]Rect, n)
		for i := range rects {
			rects[i] = randRect(rng)
		}
		a := UnionArea(rects)
		b := UnionAreaSweep(rects)
		return math.Abs(a-b) < 1e-6*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
