package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, the "minimal bounding rectangle"
// (MBR) of the paper: the region Min.X <= x <= Max.X, Min.Y <= y <= Max.Y.
// A Rect with Min == Max is a point; a Rect is empty (contains nothing)
// when Min.X > Max.X or Min.Y > Max.Y.
type Rect struct {
	Min, Max Point
}

// R builds the rectangle spanning the two corner points (x1,y1) and
// (x2,y2) given in any order.
func R(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{Min: Point{x1, y1}, Max: Point{x2, y2}}
}

// EmptyRect returns the canonical empty rectangle, the identity element
// of Union: Union(EmptyRect, r) == r for every r.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// WindowAt builds a rectangle from the paper's PSQL area syntax
// {cx±dx, cy±dy}: the rectangle centered at (cx, cy) with half-widths
// dx and dy. The paper's example {4±4, 11±9} denotes [0,8] x [2,20].
func WindowAt(cx, dx, cy, dy float64) Rect {
	return R(cx-dx, cy-dy, cx+dx, cy+dy)
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the extent of r along x (zero for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the extent of r along y (zero for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the area of r. Degenerate rectangles (points, horizontal
// or vertical segments) have zero area, as do empty rectangles.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (width + height), the measure
// minimized by some R-tree split heuristics.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Contains reports whether s lies entirely inside r (boundary
// inclusive). Every rectangle contains the empty rectangle.
func (r Rect) Contains(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	if r.IsEmpty() {
		return false
	}
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count). This is the INTERSECTS test of the
// paper's SEARCH procedure: a subtree is visited only if its MBR
// intersects the target window.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersection returns the common rectangle of r and s, or an empty
// rectangle when they are disjoint.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the minimal rectangle enclosing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExtendPoint returns the minimal rectangle enclosing r and p.
func (r Rect) ExtendPoint(p Point) Rect { return r.Union(p.Rect()) }

// Enlargement returns the area increase needed for r to also enclose s.
// Guttman's ChooseLeaf descends into the entry whose rectangle needs
// the least enlargement to include the new object.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Eq reports whether r and s are exactly equal (all empty rectangles
// compare equal to each other).
func (r Rect) Eq(s Rect) bool {
	if r.IsEmpty() && s.IsEmpty() {
		return true
	}
	return r.Min.Eq(s.Min) && r.Max.Eq(s.Max)
}

// Corners returns the four corner points of r in counter-clockwise
// order starting at Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// String formats the rectangle as "[x1,y1 x2,y2]".
func (r Rect) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%g,%g %g,%g]", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// MBR returns the minimal bounding rectangle of a set of points, the
// paper's (P1, P2, ..., Pn): the rectangle bounded by the lines
// x = min xi, x = max xi, y = min yi, y = max yi. It returns the empty
// rectangle for an empty set.
func MBR(pts ...Point) Rect {
	out := EmptyRect()
	for _, p := range pts {
		out = out.ExtendPoint(p)
	}
	return out
}

// MBRRects returns the minimal bounding rectangle of a set of
// rectangles, used when PACK recurses: the MBRs of leaf nodes become
// the data objects of the next level up.
func MBRRects(rs ...Rect) Rect {
	out := EmptyRect()
	for _, r := range rs {
		out = out.Union(r)
	}
	return out
}

// The PSQL spatial comparison operators of Section 2.2. Each receives
// two area specifications and reports whether the spatial relation
// holds on the picture.

// Covers reports whether r covers s: every point of s is a point of r.
func Covers(r, s Rect) bool { return r.Contains(s) }

// CoveredBy reports whether r is covered by s (the paper's
// "loc covered-by {4±4, 11±9}" predicate).
func CoveredBy(r, s Rect) bool { return s.Contains(r) }

// Overlapping reports whether r and s share interior area or touch:
// the paper's "overlapping" operator. Two rectangles overlap when they
// intersect.
func Overlapping(r, s Rect) bool { return r.Intersects(s) }

// Disjoined reports whether r and s have no common point: the paper's
// "disjoined" operator.
func Disjoined(r, s Rect) bool { return !r.Intersects(s) }
