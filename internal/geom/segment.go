package geom

import (
	"fmt"
	"math"
)

// Segment is a line segment between two points. Highway sections in the
// paper's highways relation are segment objects.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Rect returns the minimal bounding rectangle of s. Leaf entries for
// segment objects store this MBR.
func (s Segment) Rect() Rect { return MBR(s.A, s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// String formats the segment as "(x1,y1)-(x2,y2)".
func (s Segment) String() string {
	return fmt.Sprintf("%v-%v", s.A, s.B)
}

// onSegment reports whether point p, known to be collinear with s,
// lies within s's bounding box.
func (s Segment) onSegment(p Point) bool {
	return p.X >= math.Min(s.A.X, s.B.X)-1e-12 && p.X <= math.Max(s.A.X, s.B.X)+1e-12 &&
		p.Y >= math.Min(s.A.Y, s.B.Y)-1e-12 && p.Y <= math.Max(s.A.Y, s.B.Y)+1e-12
}

// Intersects reports whether segments s and t share at least one point.
func (s Segment) Intersects(t Segment) bool {
	d1 := Cross(t.A, t.B, s.A)
	d2 := Cross(t.A, t.B, s.B)
	d3 := Cross(s.A, s.B, t.A)
	d4 := Cross(s.A, s.B, t.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && t.onSegment(s.A):
		return true
	case d2 == 0 && t.onSegment(s.B):
		return true
	case d3 == 0 && s.onSegment(t.A):
		return true
	case d4 == 0 && s.onSegment(t.B):
		return true
	}
	return false
}

// IntersectsRect reports whether segment s shares at least one point
// with rectangle r. Window queries over segment objects refine the MBR
// test with this exact test.
func (s Segment) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	c := r.Corners()
	edges := [4]Segment{
		{c[0], c[1]}, {c[1], c[2]}, {c[2], c[3]}, {c[3], c[0]},
	}
	for _, e := range edges {
		if s.Intersects(e) {
			return true
		}
	}
	return false
}

// DistToPoint returns the minimal distance from p to any point of s.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(s.A)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	proj := s.A.Add(ab.Scale(t))
	return p.Dist(proj)
}
