package geom

// The Hilbert curve mapping lives in geom — below pack and workload —
// so both the packing strategies and the skewed-workload generators
// can derive curve keys without importing each other.

// HilbertOrder is the resolution of the discrete grid points are
// quantized onto: the curve has 2^HilbertOrder cells per side.
const HilbertOrder = 16

// HilbertKeyBits is the width of the key space HilbertKey maps into:
// keys lie in [0, 1<<HilbertKeyBits). Hilbert-range sharding divides
// this space into contiguous per-shard ranges.
const HilbertKeyBits = 2 * HilbertOrder

// HilbertKey quantizes p onto the Hilbert curve over bounds and
// returns its 1-D curve distance — the routing key Hilbert-range
// sharding assigns tuples by. Points outside bounds are clamped, so
// every point gets a key and contiguous key ranges stay spatially
// local (Bos & Haverkort's locality bound). The key is a pure function
// of (bounds, p): routing is deterministic across processes and
// reopens as long as the picture extent is stable.
func HilbertKey(bounds Rect, p Point) uint64 {
	side := uint32(1) << HilbertOrder
	x, y := uint32(0), uint32(0)
	if w := bounds.Width(); w > 0 {
		x = hilbertQuantize((p.X - bounds.Min.X) / w * float64(side-1))
	}
	if h := bounds.Height(); h > 0 {
		y = hilbertQuantize((p.Y - bounds.Min.Y) / h * float64(side-1))
	}
	return HilbertD(HilbertOrder, x, y)
}

// hilbertQuantize clamps a scaled coordinate onto the grid.
func hilbertQuantize(v float64) uint32 {
	if v <= 0 {
		return 0
	}
	max := float64(uint32(1)<<HilbertOrder - 1)
	if v >= max {
		return uint32(max)
	}
	return uint32(v)
}

// HilbertD maps grid cell (x, y) to its 1-D distance along the Hilbert
// curve of the given order (the classic xy2d conversion).
func HilbertD(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
