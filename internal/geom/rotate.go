package geom

import (
	"math"
	"sort"
)

// This file implements the machinery behind the paper's Lemma 3.1 and
// Theorem 3.2. Lemma 3.1: for any finite point set S there exists a
// rotation angle alpha such that all rotated points have distinct
// x-coordinates (F_alpha(S) = |S|). Theorem 3.2 then slices the rotated,
// x-sorted points into groups of the branching factor, producing leaf
// MBRs that are pairwise disjoint in the rotated frame.

// DistinctX reports whether every point of pts has a distinct
// x-coordinate, i.e. whether F(S) = |S| in the paper's notation.
func DistinctX(pts []Point) bool {
	seen := make(map[float64]struct{}, len(pts))
	for _, p := range pts {
		if _, dup := seen[p.X]; dup {
			return false
		}
		seen[p.X] = struct{}{}
	}
	return true
}

// CountDistinctX returns F(S): the number of distinct x-coordinates
// among pts.
func CountDistinctX(pts []Point) int {
	seen := make(map[float64]struct{}, len(pts))
	for _, p := range pts {
		seen[p.X] = struct{}{}
	}
	return len(seen)
}

// badAngles returns, for each unordered pair of distinct points, the
// angle in [0, pi) whose rotation makes the pair share an x-coordinate.
// A rotation by alpha maps the direction of the segment to vertical
// exactly when alpha = pi/2 - atan2(dy, dx) (mod pi). Lemma 3.1's proof
// observes there are at most |S| choose 2 such angles, so any other
// angle yields distinct x-coordinates.
func badAngles(pts []Point) []float64 {
	var out []float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dx := pts[j].X - pts[i].X
			dy := pts[j].Y - pts[i].Y
			if dx == 0 && dy == 0 {
				continue // coincident points: no rotation separates them
			}
			a := math.Pi/2 - math.Atan2(dy, dx)
			a = math.Mod(a, math.Pi)
			if a < 0 {
				a += math.Pi
			}
			out = append(out, a)
		}
	}
	sort.Float64s(out)
	return out
}

// SeparatingAngle returns an angle alpha such that rotating pts
// counter-clockwise by alpha gives all points distinct x-coordinates,
// constructively realizing Lemma 3.1. Coincident points can never be
// separated; they are tolerated (the caller's grouping simply places
// them together). The returned angle is the midpoint of the widest gap
// between consecutive "bad" angles, maximizing numerical robustness.
func SeparatingAngle(pts []Point) float64 {
	bad := badAngles(pts)
	if len(bad) == 0 {
		return 0
	}
	// Find the widest gap on the circle of period pi.
	bestGap := (bad[0] + math.Pi) - bad[len(bad)-1]
	best := math.Mod(bad[len(bad)-1]+bestGap/2, math.Pi)
	for i := 1; i < len(bad); i++ {
		gap := bad[i] - bad[i-1]
		if gap > bestGap {
			bestGap = gap
			best = bad[i-1] + gap/2
		}
	}
	return best
}

// RotateAll returns pts rotated counter-clockwise about the origin by
// alpha.
func RotateAll(pts []Point, alpha float64) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = p.Rotate(alpha)
	}
	return out
}
