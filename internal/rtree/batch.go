package rtree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// This file adds the batched query entry points: many windows answered
// against one tree by a pool of worker goroutines. Single-query search
// is recursive descent with no shared mutable state (see the
// concurrency note on Tree), so batching needs no per-node locking —
// workers pull windows from an atomic cursor and write results into
// preassigned slots, making the output independent of goroutine
// scheduling: results[i] always answers windows[i], in tree order.

// batchWorkers normalizes a parallelism request: <= 0 means
// GOMAXPROCS, and there is never a reason to run more workers than
// windows.
func batchWorkers(parallelism, n int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// QueryBatch answers every window against the tree, fanning the
// windows out over up to parallelism goroutines (0 or negative means
// runtime.GOMAXPROCS(0)). results[i] holds the items intersecting
// windows[i] in tree order — identical to calling Query(windows[i])
// sequentially — and the second return is the total number of node
// visits across the batch (the paper's measure A, summed).
func (t *Tree) QueryBatch(windows []geom.Rect, parallelism int) ([][]Item, int) {
	n := len(windows)
	if n == 0 {
		return nil, 0
	}
	results := make([][]Item, n)
	workers := batchWorkers(parallelism, n)
	if workers == 1 {
		visited := 0
		for i, w := range windows {
			var v int
			results[i], v = t.Query(w)
			visited += v
		}
		return results, visited
	}

	var cursor atomic.Int64
	var visits atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				items, v := t.Query(windows[i])
				results[i] = items
				visits.Add(int64(v))
			}
		}()
	}
	wg.Wait()
	return results, int(visits.Load())
}

// QueryBatch answers every window against the disk tree with up to
// parallelism worker goroutines sharing the (sharded, thread-safe)
// buffer pool. results[i] answers windows[i]; the int is total node
// pages visited. The first error encountered aborts remaining work.
func (t *DiskTree) QueryBatch(windows []geom.Rect, parallelism int) ([][]Item, int, error) {
	n := len(windows)
	if n == 0 {
		return nil, 0, nil
	}
	results := make([][]Item, n)
	workers := batchWorkers(parallelism, n)
	if workers == 1 {
		visited := 0
		for i, w := range windows {
			items, v, err := t.Query(w)
			if err != nil {
				return nil, 0, err
			}
			results[i] = items
			visited += v
		}
		return results, visited, nil
	}

	var cursor, visits atomic.Int64
	var failed atomic.Bool
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				items, v, err := t.Query(windows[i])
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						errCh <- err
					}
					return
				}
				results[i] = items
				visits.Add(int64(v))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, 0, err
	}
	return results, int(visits.Load()), nil
}
