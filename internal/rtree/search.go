package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// This file implements the paper's Section 3.1 SEARCH procedure and its
// variants. Every search returns the number of R-tree nodes visited —
// the paper's measure A — so experiments can report search cost
// structurally, independent of hardware.
//
// Visit counts are returned to the caller (never accumulated into
// shared per-query state) and additionally folded into the tree's
// atomic cumulative counter, so any number of goroutines may search
// one tree concurrently without racing on instrumentation; see the
// concurrency note on Tree.

// Search visits every item whose rectangle intersects window and calls
// fn on it; returning false from fn stops the search early. It returns
// the number of nodes visited. This is the INTERSECTS/visit form of
// the paper's SEARCH: a subtree is descended only when its bounding
// rectangle intersects the target window.
func (t *Tree) Search(window geom.Rect, fn func(Item) bool) int {
	visited := 0
	var walk func(n *node) bool
	walk = func(n *node) bool {
		visited++
		for _, e := range n.entries {
			if !e.rect.Intersects(window) {
				continue
			}
			if n.leaf {
				if !fn(e.item()) {
					return false
				}
			} else if !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	t.visits.Add(int64(visited))
	return visited
}

// SearchWithin visits every item whose rectangle is wholly contained
// in window (the paper's WITHIN predicate at the leaves: "List all
// points and regions within target window"). Internal nodes are still
// pruned by intersection, since an object within the window may live
// in a leaf whose MBR merely intersects it. Returns nodes visited.
func (t *Tree) SearchWithin(window geom.Rect, fn func(Item) bool) int {
	visited := 0
	var walk func(n *node) bool
	walk = func(n *node) bool {
		visited++
		for _, e := range n.entries {
			if n.leaf {
				if window.Contains(e.rect) && !fn(e.item()) {
					return false
				}
			} else if e.rect.Intersects(window) && !walk(e.child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	t.visits.Add(int64(visited))
	return visited
}

// Query returns all items intersecting window, in tree order, along
// with the number of nodes visited.
func (t *Tree) Query(window geom.Rect) ([]Item, int) {
	var out []Item
	visited := t.Search(window, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out, visited
}

// ContainsPoint answers the paper's Table 1 query "Is point (x,y)
// contained in the database?": it reports whether any stored item's
// rectangle contains p, along with the nodes visited. For point data
// the item rectangles are degenerate, so this is an exact-match probe.
func (t *Tree) ContainsPoint(p geom.Point) (bool, int) {
	window := p.Rect()
	found := false
	visited := t.Search(window, func(Item) bool {
		found = true
		return false
	})
	return found, visited
}

// Items returns every stored item in leaf order.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for _, e := range n.entries {
				out = append(out, e.item())
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return out
}

// NearestNeighbor returns the item whose rectangle is closest to p
// (minimal distance from p to the rectangle; an item containing p has
// distance 0), using branch-and-bound descent ordered by rectangle
// distance. The boolean is false when the tree is empty. The visit
// count is returned for cost accounting. This query is not in the 1985
// paper but became the canonical R-tree NN search (Roussopoulos,
// Kelley & Vincent, SIGMOD 1995) and PSQL-style languages need it for
// "nearest object" functions.
func (t *Tree) NearestNeighbor(p geom.Point) (Item, bool, int) {
	if t.size == 0 {
		return Item{}, false, 0
	}
	best := Item{}
	bestDist := -1.0
	visited := 0
	var walk func(n *node)
	walk = func(n *node) {
		visited++
		if n.leaf {
			for _, e := range n.entries {
				d := rectPointDist(e.rect, p)
				if bestDist < 0 || d < bestDist {
					best, bestDist = e.item(), d
				}
			}
			return
		}
		// Order children by distance; prune those no closer than best.
		type cand struct {
			d float64
			c *node
		}
		cands := make([]cand, 0, len(n.entries))
		for _, e := range n.entries {
			cands = append(cands, cand{rectPointDist(e.rect, p), e.child})
		}
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		for _, c := range cands {
			if bestDist >= 0 && c.d > bestDist {
				break
			}
			walk(c.c)
		}
	}
	walk(t.root)
	t.visits.Add(int64(visited))
	return best, true, visited
}

// NearestNeighbors returns the k items whose rectangles are closest
// to p, ordered nearest first, with the number of nodes visited. It
// generalizes NearestNeighbor with the same branch-and-bound descent,
// pruning subtrees farther than the current k-th best (Roussopoulos,
// Kelley & Vincent, SIGMOD 1995). Fewer than k items are returned when
// the tree is smaller than k.
func (t *Tree) NearestNeighbors(p geom.Point, k int) ([]Item, int) {
	if k <= 0 || t.size == 0 {
		return nil, 0
	}
	// best is a sorted slice of at most k candidates (small k assumed).
	type scored struct {
		it Item
		d  float64
	}
	var best []scored
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[len(best)-1].d
	}
	add := func(it Item, d float64) {
		i := len(best)
		for i > 0 && best[i-1].d > d {
			i--
		}
		best = append(best, scored{})
		copy(best[i+1:], best[i:])
		best[i] = scored{it: it, d: d}
		if len(best) > k {
			best = best[:k]
		}
	}
	visited := 0
	var walk func(n *node)
	walk = func(n *node) {
		visited++
		if n.leaf {
			for _, e := range n.entries {
				if d := rectPointDist(e.rect, p); d < worst() {
					add(e.item(), d)
				}
			}
			return
		}
		type cand struct {
			d float64
			c *node
		}
		cands := make([]cand, 0, len(n.entries))
		for _, e := range n.entries {
			cands = append(cands, cand{rectPointDist(e.rect, p), e.child})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		for _, c := range cands {
			if c.d > worst() {
				break
			}
			walk(c.c)
		}
	}
	walk(t.root)
	t.visits.Add(int64(visited))
	out := make([]Item, len(best))
	for i, s := range best {
		out[i] = s.it
	}
	return out, visited
}

// rectPointDist returns the minimal distance from p to rectangle r
// (zero when r contains p).
func rectPointDist(r geom.Rect, p geom.Point) float64 {
	dx := 0.0
	if p.X < r.Min.X {
		dx = r.Min.X - p.X
	} else if p.X > r.Max.X {
		dx = p.X - r.Max.X
	}
	dy := 0.0
	if p.Y < r.Min.Y {
		dy = r.Min.Y - p.Y
	} else if p.Y > r.Max.Y {
		dy = p.Y - r.Max.Y
	}
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return geom.Pt(0, 0).Dist(geom.Pt(dx, dy))
}

// JoinPairs performs the paper's juxtaposition primitive: a
// simultaneous traversal of two R-trees that reports every pair of
// items (a from t, b from u) whose rectangles satisfy pred, pruning
// subtree pairs whose MBRs do not intersect. pred receives the two
// item rectangles. It returns the number of node pairs visited, the
// cost unit for comparing against the nested-loop baseline.
//
// The intersection pruning rule is sound for any predicate that
// implies intersection (covered-by, covering, overlapping); for
// "disjoined" use a nested loop instead, since disjoint pairs are
// exactly the ones pruned.
func JoinPairs(t, u *Tree, pred func(a, b geom.Rect) bool, fn func(a, b Item) bool) int {
	visited := 0
	var walk func(n, m *node) bool
	walk = func(n, m *node) bool {
		visited++
		switch {
		case n.leaf && m.leaf:
			for _, ea := range n.entries {
				for _, eb := range m.entries {
					if pred(ea.rect, eb.rect) {
						if !fn(ea.item(), eb.item()) {
							return false
						}
					}
				}
			}
		case n.leaf:
			nm := n.mbr()
			for _, eb := range m.entries {
				if nm.Intersects(eb.rect) {
					if !walk(n, eb.child) {
						return false
					}
				}
			}
		case m.leaf:
			mm := m.mbr()
			for _, ea := range n.entries {
				if ea.rect.Intersects(mm) {
					if !walk(ea.child, m) {
						return false
					}
				}
			}
		default:
			for _, ea := range n.entries {
				for _, eb := range m.entries {
					if ea.rect.Intersects(eb.rect) {
						if !walk(ea.child, eb.child) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if t.size > 0 && u.size > 0 {
		walk(t.root, u.root)
	}
	return visited
}
