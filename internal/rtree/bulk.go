package rtree

import (
	"fmt"
	"sync"

	"repro/internal/geom"
)

// Grouper is the pluggable heart of packing: it partitions one R-tree
// level's rectangles into node groups of at most max entries. The PACK
// algorithm of the paper, and its descendants (lowx sort, STR,
// Hilbert), are Groupers; Bulk applies one level by level, bottom-up,
// exactly as the paper's recursive PACK does ("PACK is then called
// recursively using the list of leaf MBRs as data objects ... until
// the root is finally reached").
type Grouper interface {
	// Name identifies the grouping strategy in reports.
	Name() string
	// Group partitions the indices 0..len(rects)-1 into groups of
	// size at most max. Every index must appear in exactly one group
	// and no group may be empty.
	Group(rects []geom.Rect, max int) [][]int
}

// Bulk builds a packed R-tree over items using grouper g at every
// level. Underfull trailing groups (possible when the item count is
// not a multiple of the branching factor) are rebalanced with a donor
// group so the result satisfies the same m-fill invariants as a
// dynamically built tree. Bulk panics if g violates its contract (a
// programming error in the grouper, not a data error).
func Bulk(params Params, items []Item, g Grouper) *Tree {
	return BulkP(params, items, g, 1)
}

// BulkP is Bulk with a worker budget: node assembly and per-level MBR
// computation run on up to parallelism goroutines (the grouper g
// manages its own internal parallelism). The resulting tree is
// identical to Bulk's for every parallelism value, because groups are
// assembled into preassigned slots and every per-node computation is
// independent. parallelism <= 1 is the sequential path.
func BulkP(params Params, items []Item, g Grouper, parallelism int) *Tree {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	t := &Tree{params: params}
	if len(items) == 0 {
		t.root = newNode(true, params.Max+1)
		return t
	}

	// Build the leaf level.
	rects := make([]geom.Rect, len(items))
	bulkChunks(len(items), parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rects[i] = items[i].Rect
		}
	})
	groups := checkedGroups(g, rects, params)
	level := make([]*node, len(groups))
	bulkChunks(len(groups), parallelism, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			n := newNode(true, params.Max+1)
			for _, idx := range groups[gi] {
				n.addEntry(entry{rect: items[idx].Rect, data: items[idx].Data})
			}
			level[gi] = n
		}
	})

	// Build internal levels until a single node remains.
	height := 0
	for len(level) > 1 {
		rects = rects[:len(level)]
		bulkChunks(len(level), parallelism, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rects[i] = level[i].mbr()
			}
		})
		groups = checkedGroups(g, rects, params)
		next := make([]*node, len(groups))
		bulkChunks(len(groups), parallelism, func(lo, hi int) {
			for gi := lo; gi < hi; gi++ {
				n := newNode(false, params.Max+1)
				for _, idx := range groups[gi] {
					n.addEntry(entry{rect: rects[idx], child: level[idx]})
				}
				next[gi] = n
			}
		})
		level = next
		height++
	}
	t.root = level[0]
	t.height = height
	t.size = len(items)
	return t
}

// bulkChunks fans fn out over [0, n) in contiguous ranges on up to par
// goroutines; par <= 1 runs inline. Each range writes only its own
// slots, so results are independent of scheduling.
func bulkChunks(n, par int, fn func(lo, hi int)) {
	if par > n {
		par = n
	}
	if par <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + par - 1) / par
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// checkedGroups runs the grouper, validates its output, and rebalances
// undersized groups.
func checkedGroups(g Grouper, rects []geom.Rect, params Params) [][]int {
	groups := g.Group(rects, params.Max)
	seen := make([]bool, len(rects))
	total := 0
	for _, grp := range groups {
		if len(grp) == 0 {
			panic(fmt.Sprintf("rtree: grouper %q produced an empty group", g.Name()))
		}
		if len(grp) > params.Max {
			panic(fmt.Sprintf("rtree: grouper %q produced a group of %d > max %d", g.Name(), len(grp), params.Max))
		}
		for _, idx := range grp {
			if idx < 0 || idx >= len(rects) || seen[idx] {
				panic(fmt.Sprintf("rtree: grouper %q produced invalid or duplicate index %d", g.Name(), idx))
			}
			seen[idx] = true
			total++
		}
	}
	if total != len(rects) {
		panic(fmt.Sprintf("rtree: grouper %q covered %d of %d rects", g.Name(), total, len(rects)))
	}
	return rebalance(groups, params)
}

// rebalance fixes groups smaller than the minimum fill by borrowing
// entries from a larger group, so packed trees satisfy the same
// invariants a dynamic tree does. A single group (the future root) is
// exempt.
func rebalance(groups [][]int, params Params) [][]int {
	if len(groups) < 2 {
		return groups
	}
	for i, grp := range groups {
		if len(grp) >= params.Min {
			continue
		}
		need := params.Min - len(grp)
		// Borrow from the group with the most entries; grouping
		// strategies order groups spatially, so prefer a neighbor.
		donor := -1
		for _, j := range []int{i - 1, i + 1} {
			if j >= 0 && j < len(groups) && len(groups[j])-need >= params.Min {
				donor = j
				break
			}
		}
		if donor < 0 {
			for j := range groups {
				if j != i && len(groups[j])-need >= params.Min {
					donor = j
					break
				}
			}
		}
		if donor < 0 {
			// No donor can spare entries, so every other group holds
			// fewer than Min+need <= 2*Min <= Max entries; merging with
			// a neighbor therefore cannot overflow Max.
			j := i - 1
			if j < 0 {
				j = i + 1
			}
			groups[j] = append(groups[j], grp...)
			groups = append(groups[:i], groups[i+1:]...)
			return rebalance(groups, params)
		}
		d := groups[donor]
		groups[i] = append(groups[i], d[len(d)-need:]...)
		groups[donor] = d[:len(d)-need]
	}
	return groups
}
