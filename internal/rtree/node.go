// Package rtree implements Guttman's R-tree — the "two-dimensional
// B-tree" the paper builds on — with the dynamic INSERT and DELETE
// algorithms of [Guttman 1984], the recursive window SEARCH of the
// paper's Section 3.1, instrumented node-visit counting, the structural
// quality metrics of Section 3.1 (coverage, overlap, depth, node
// count), and a bulk-build entry point that the packing algorithms of
// package pack plug into.
//
// The tree stores Items: a minimal bounding rectangle plus an opaque
// int64 data pointer (in the pictorial database, a tuple identifier —
// the paper's "(I, tuple-identifier)" leaf entries).
package rtree

import (
	"fmt"
	"sync/atomic"

	"repro/internal/geom"
)

// Item is one spatial data object: its minimal bounding rectangle and
// the tuple identifier it indexes.
type Item struct {
	Rect geom.Rect
	Data int64
}

// entry is one slot of a node: a bounding rectangle plus either a child
// node (internal entries) or a data pointer (leaf entries), mirroring
// the paper's ENTRY record.
type entry struct {
	rect  geom.Rect
	child *node // non-nil for internal entries
	data  int64 // valid for leaf entries
}

func (e entry) item() Item { return Item{Rect: e.rect, Data: e.data} }

// node is an R-tree node, the paper's NODE record: CLASS is the leaf
// flag, DESC the entry array, VALID its length.
type node struct {
	leaf    bool
	entries []entry
	parent  *node
}

func newNode(leaf bool, capacity int) *node {
	return &node{leaf: leaf, entries: make([]entry, 0, capacity)}
}

// mbr returns the minimal bounding rectangle of all entries of n.
func (n *node) mbr() geom.Rect {
	out := geom.EmptyRect()
	for _, e := range n.entries {
		out = out.Union(e.rect)
	}
	return out
}

func (n *node) addEntry(e entry) {
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
}

// removeEntryAt deletes entry i, preserving order of the rest.
func (n *node) removeEntryAt(i int) {
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
}

// entryIndex returns the index of the entry pointing at child, or -1.
func (n *node) entryIndex(child *node) int {
	for i, e := range n.entries {
		if e.child == child {
			return i
		}
	}
	return -1
}

// SplitKind selects Guttman's node-splitting heuristic.
type SplitKind int

const (
	// SplitQuadratic is Guttman's quadratic-cost split (his default and
	// the variant assumed for the paper's INSERT baseline).
	SplitQuadratic SplitKind = iota
	// SplitLinear is Guttman's linear-cost split.
	SplitLinear
	// SplitExhaustive tries every 2-partition of the M+1 entries and
	// keeps the one with minimal total area; exponential in M, only
	// sensible for small branching factors such as the paper's 4.
	SplitExhaustive
)

// String names the split kind.
func (k SplitKind) String() string {
	switch k {
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	case SplitExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("SplitKind(%d)", int(k))
	}
}

// Params configures an R-tree. The paper's experiments use a branching
// factor of four: Max=4, Min=2.
type Params struct {
	// Max is M, the maximum entries per node (branching factor).
	Max int
	// Min is m, the minimum entries per non-root node; must satisfy
	// 1 <= Min <= Max/2.
	Min int
	// Split selects the overflow splitting heuristic.
	Split SplitKind
}

// DefaultParams returns the paper's configuration: branching factor 4
// with m = 2 and the quadratic split.
func DefaultParams() Params { return Params{Max: 4, Min: 2, Split: SplitQuadratic} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Max < 2 {
		return fmt.Errorf("rtree: Max must be at least 2, got %d", p.Max)
	}
	if p.Min < 1 || p.Min > p.Max/2 {
		return fmt.Errorf("rtree: Min must satisfy 1 <= Min <= Max/2, got Min=%d Max=%d", p.Min, p.Max)
	}
	return nil
}

// Tree is an in-memory R-tree.
//
// Concurrency: all read operations (Search, SearchWithin, Query,
// QueryBatch, ContainsPoint, NearestNeighbor(s), Items, the metrics
// walkers) are safe for any number of concurrent readers — they touch
// only immutable node state and per-query local counters, and the one
// piece of shared instrumentation, the cumulative visit counter, is
// atomic. Mutations (Insert, Delete) require exclusive access: callers
// interleaving writes with reads must serialize externally, the usual
// R-tree contract.
type Tree struct {
	params Params
	root   *node
	height int // depth: edges from root to leaves; 0 when root is a leaf
	size   int // number of stored items

	// visits accumulates nodes visited across all searches — the
	// paper's A, aggregated. Atomic so concurrent queries on one tree
	// never race (each query also returns its own count locally).
	visits atomic.Int64
}

// TotalNodeVisits returns the cumulative number of nodes visited by
// every search run against this tree since the last reset. Safe to
// call concurrently with searches.
func (t *Tree) TotalNodeVisits() int64 { return t.visits.Load() }

// ResetNodeVisits zeroes the cumulative visit counter (between
// experiment phases).
func (t *Tree) ResetNodeVisits() { t.visits.Store(0) }

// New returns an empty R-tree with the given parameters. It panics if
// the parameters are invalid (a programming error, not a data error).
func New(params Params) *Tree {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &Tree{
		params: params,
		root:   newNode(true, params.Max+1),
	}
}

// Params returns the tree's configuration.
func (t *Tree) Params() Params { return t.params }

// Len returns the number of items stored in the tree.
func (t *Tree) Len() int { return t.size }

// Depth returns the paper's D: the number of edges from the root down
// to the leaf level. A tree whose root is a leaf has depth 0.
func (t *Tree) Depth() int { return t.height }

// Bounds returns the MBR of everything in the tree (empty when the
// tree is empty).
func (t *Tree) Bounds() geom.Rect { return t.root.mbr() }
