package rtree

import "repro/internal/geom"

// This file implements Guttman's DELETE: FindLeaf locates the leaf
// holding the record, the entry is removed, and CondenseTree
// eliminates underfull nodes, reinserting their orphaned entries at
// the appropriate level. Section 3.4 of the paper argues INSERT and
// DELETE keep working on PACKed trees, which the cartography example
// and the update-drift experiment exercise.

// Delete removes one item matching (r, data) exactly. It reports
// whether an item was found and removed.
func (t *Tree) Delete(r geom.Rect, data int64) bool {
	leaf, idx := t.findLeaf(t.root, r, data)
	if leaf == nil {
		return false
	}
	leaf.removeEntryAt(idx)
	t.size--
	t.condenseTree(leaf)
	// If the root is an internal node with a single child, shorten the
	// tree.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
		t.height--
	}
	return true
}

// findLeaf returns the leaf containing the exact entry and its index,
// descending only into subtrees whose rectangle contains r.
func (t *Tree) findLeaf(n *node, r geom.Rect, data int64) (*node, int) {
	if n.leaf {
		for i, e := range n.entries {
			if e.data == data && e.rect.Eq(r) {
				return n, i
			}
		}
		return nil, -1
	}
	for _, e := range n.entries {
		if e.rect.Contains(r) {
			if leaf, i := t.findLeaf(e.child, r, data); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

// condenseTree walks from leaf n to the root: underfull nodes are
// removed from their parents and their entries queued; covering
// rectangles are tightened. Queued leaf entries are reinserted at the
// leaf level and queued subtrees at their original level, preserving
// leaf depth.
func (t *Tree) condenseTree(n *node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	level := 0
	for n != t.root {
		p := n.parent
		if len(n.entries) < t.params.Min {
			if i := p.entryIndex(n); i >= 0 {
				p.removeEntryAt(i)
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: level})
			}
		} else if i := p.entryIndex(n); i >= 0 {
			p.entries[i].rect = n.mbr()
		}
		n = p
		level++
	}
	for _, o := range orphans {
		if o.level == 0 {
			t.insertEntry(o.e, 0)
		} else {
			// Reinsert a whole subtree at its original level so its
			// leaves stay at leaf depth.
			t.insertEntry(o.e, o.level)
		}
	}
}
