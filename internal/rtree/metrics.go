package rtree

import "repro/internal/geom"

// This file computes the structural quality measures of the paper's
// Section 3.1 and Table 1.

// Metrics aggregates the paper's Table 1 columns for one tree.
type Metrics struct {
	Coverage       float64 // C: total area of all leaf-node MBRs
	Overlap        float64 // O: pairwise intersection area of leaf MBRs
	OverlapMeasure float64 // set-measure variant of O (area covered >= 2x)
	Depth          int     // D: edges from root to leaves
	Nodes          int     // N: total nodes including the root
	Leaves         int     // leaf nodes only
	Items          int     // stored data objects
	DeadSpace      float64 // leaf coverage minus union of leaf MBRs
}

// LeafRects returns the MBR of every leaf node. A tree whose root is a
// leaf has exactly one leaf rectangle (empty trees have none).
func (t *Tree) LeafRects() []geom.Rect {
	var out []geom.Rect
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if len(n.entries) > 0 {
				out = append(out, n.mbr())
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return out
}

// NodeCount returns the paper's N: every node in the tree including
// the root.
func (t *Tree) NodeCount() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		count++
		if n.leaf {
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return count
}

// LeafCount returns the number of leaf nodes.
func (t *Tree) LeafCount() int {
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			count++
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return count
}

// Coverage returns the paper's C: the total area of all leaf MBRs.
func (t *Tree) Coverage() float64 { return geom.CoverageArea(t.LeafRects()) }

// Overlap returns the paper's O: the total pairwise intersection area
// of leaf MBRs (multiplicity counted; see DESIGN.md).
func (t *Tree) Overlap() float64 { return geom.OverlapPairwise(t.LeafRects()) }

// ComputeMetrics gathers all structural measures in one pass over the
// leaf rectangles.
func (t *Tree) ComputeMetrics() Metrics {
	leaves := t.LeafRects()
	return Metrics{
		Coverage:       geom.CoverageArea(leaves),
		Overlap:        geom.OverlapPairwise(leaves),
		OverlapMeasure: geom.OverlapMeasure(leaves),
		Depth:          t.Depth(),
		Nodes:          t.NodeCount(),
		Leaves:         len(leaves),
		Items:          t.Len(),
		DeadSpace:      geom.DeadSpace(leaves),
	}
}

// FrontierRects returns a bounded covering frontier of the tree: a
// cut of at most limit nodes, refined adaptively from the root by
// repeatedly replacing the largest-area internal node of the cut with
// its children while the cut stays within limit. Area-first refinement
// spends the rectangle budget where coverage is coarsest — the big
// empty-spanning subtrees whose MBRs cause spurious shard-pair
// overlap — instead of descending whole levels in lockstep. Every
// stored item lies inside some returned rectangle, so two trees whose
// frontiers are pairwise disjoint cannot produce any join pair — the
// cross-shard juxtaposition pruning test. Touches only
// O(limit × fanout) nodes.
func (t *Tree) FrontierRects(limit int) []geom.Rect {
	if t.size == 0 {
		return nil
	}
	if limit < 1 {
		limit = 1
	}
	frontier := []*node{t.root}
	for {
		// Pick the internal node with the largest MBR area.
		best, bestArea := -1, -1.0
		for i, n := range frontier {
			if n.leaf {
				continue
			}
			if a := n.mbr().Area(); a > bestArea {
				best, bestArea = i, a
			}
		}
		if best < 0 {
			break // all leaves
		}
		children := frontier[best].entries
		if len(frontier)-1+len(children) > limit {
			break
		}
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, e := range children {
			frontier = append(frontier, e.child)
		}
	}
	out := make([]geom.Rect, 0, len(frontier))
	for _, n := range frontier {
		if len(n.entries) > 0 {
			out = append(out, n.mbr())
		}
	}
	return out
}

// LevelRects returns, for each level from the root (level 0) down to
// the leaves, the covering rectangles of the nodes at that level. The
// packviz tool renders these to show how PACK arranges each level
// (the paper's Figures 3.8b/3.8c).
func (t *Tree) LevelRects() [][]geom.Rect {
	if t.size == 0 {
		return nil
	}
	out := make([][]geom.Rect, t.height+1)
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		out[level] = append(out[level], n.mbr())
		if n.leaf {
			return
		}
		for _, e := range n.entries {
			walk(e.child, level+1)
		}
	}
	walk(t.root, 0)
	return out
}
