package rtree

import "repro/internal/geom"

// This file implements Guttman's INSERT: ChooseLeaf descends into the
// entry needing least enlargement, the new object is added to a leaf,
// overflowing nodes are split (see split.go), and AdjustTree propagates
// rectangle updates and splits toward the root. This is the dynamic
// baseline the paper compares PACK against (Table 1, "GUTTMAN'S
// INSERT").

// Insert adds an item with the given rectangle and data pointer.
func (t *Tree) Insert(r geom.Rect, data int64) {
	t.insertEntry(entry{rect: r, data: data}, 0)
	t.size++
}

// InsertItem adds it to the tree.
func (t *Tree) InsertItem(it Item) { t.Insert(it.Rect, it.Data) }

// insertEntry places e at the given level above the leaves (level 0 =
// leaf). Reinsertion during CondenseTree uses level > 0 for orphaned
// subtrees.
func (t *Tree) insertEntry(e entry, level int) {
	n := t.chooseNode(e.rect, level)
	n.addEntry(e)
	var split *node
	if len(n.entries) > t.params.Max {
		split = t.splitNode(n)
	}
	t.adjustTree(n, split)
}

// chooseNode is Guttman's ChooseLeaf generalized to a target level:
// descend from the root, at each step picking the entry whose
// rectangle needs the least enlargement to include r, breaking ties by
// smallest area.
func (t *Tree) chooseNode(r geom.Rect, level int) *node {
	n := t.root
	depth := t.height
	for !n.leaf && depth > level {
		best := 0
		bestEnl := n.entries[0].rect.Enlargement(r)
		bestArea := n.entries[0].rect.Area()
		for i := 1; i < len(n.entries); i++ {
			enl := n.entries[i].rect.Enlargement(r)
			area := n.entries[i].rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
		depth--
	}
	return n
}

// adjustTree is Guttman's AdjustTree: walk from n to the root, fixing
// covering rectangles; when a split produced a new node nn, install
// its entry in the parent, splitting again on overflow. A root split
// grows the tree one level.
func (t *Tree) adjustTree(n, nn *node) {
	for n != t.root {
		p := n.parent
		// Fix the covering rectangle of n's entry in its parent.
		if i := p.entryIndex(n); i >= 0 {
			p.entries[i].rect = n.mbr()
		}
		if nn != nil {
			p.addEntry(entry{rect: nn.mbr(), child: nn})
			nn = nil
			if len(p.entries) > t.params.Max {
				nn = t.splitNode(p)
			}
		}
		n = p
	}
	if nn != nil {
		// Root split: create a new root pointing at both halves.
		newRoot := newNode(false, t.params.Max+1)
		newRoot.addEntry(entry{rect: n.mbr(), child: n})
		newRoot.addEntry(entry{rect: nn.mbr(), child: nn})
		t.root = newRoot
		t.height++
	}
}
