package rtree

import (
	"math"

	"repro/internal/geom"
)

// This file implements Guttman's SplitNode heuristics. All three take
// an overflowing node (M+1 entries), leave one group in place and
// return the new sibling holding the other group, respecting the
// minimum fill m.

// splitNode splits the overflowing node n in place and returns the new
// sibling node.
func (t *Tree) splitNode(n *node) *node {
	var groupA, groupB []entry
	switch t.params.Split {
	case SplitLinear:
		groupA, groupB = t.splitLinear(n.entries)
	case SplitExhaustive:
		groupA, groupB = t.splitExhaustive(n.entries)
	default:
		groupA, groupB = t.splitQuadratic(n.entries)
	}
	sibling := newNode(n.leaf, t.params.Max+1)
	n.entries = n.entries[:0]
	for _, e := range groupA {
		n.addEntry(e)
	}
	for _, e := range groupB {
		sibling.addEntry(e)
	}
	return sibling
}

// splitQuadratic is Guttman's quadratic split: PickSeeds chooses the
// pair wasting the most area if grouped together; PickNext repeatedly
// assigns the entry with the greatest difference of enlargement
// between the two groups.
func (t *Tree) splitQuadratic(entries []entry) (a, b []entry) {
	m := t.params.Min
	// PickSeeds: maximize d = area(J) - area(E1) - area(E2).
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}
	a = append(a, entries[seedA])
	b = append(b, entries[seedB])
	rectA, rectB := entries[seedA].rect, entries[seedB].rect
	remaining := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			remaining = append(remaining, e)
		}
	}
	for len(remaining) > 0 {
		// If one group must take all remaining entries to reach m, do so.
		if len(a)+len(remaining) == m {
			a = append(a, remaining...)
			break
		}
		if len(b)+len(remaining) == m {
			b = append(b, remaining...)
			break
		}
		// PickNext: entry with maximum |d1 - d2|.
		next, maxDiff := 0, -1.0
		for i, e := range remaining {
			d1 := rectA.Enlargement(e.rect)
			d2 := rectB.Enlargement(e.rect)
			if diff := math.Abs(d1 - d2); diff > maxDiff {
				maxDiff, next = diff, i
			}
		}
		e := remaining[next]
		remaining = append(remaining[:next], remaining[next+1:]...)
		d1 := rectA.Enlargement(e.rect)
		d2 := rectB.Enlargement(e.rect)
		// Prefer least enlargement; tie-break by area, then count.
		addToA := d1 < d2
		if d1 == d2 {
			if rectA.Area() != rectB.Area() {
				addToA = rectA.Area() < rectB.Area()
			} else {
				addToA = len(a) <= len(b)
			}
		}
		if addToA {
			a = append(a, e)
			rectA = rectA.Union(e.rect)
		} else {
			b = append(b, e)
			rectB = rectB.Union(e.rect)
		}
	}
	return a, b
}

// splitLinear is Guttman's linear split: LinearPickSeeds chooses the
// two entries with the greatest normalized separation along either
// dimension; the rest are assigned by least enlargement in arrival
// order.
func (t *Tree) splitLinear(entries []entry) (a, b []entry) {
	m := t.params.Min
	seedA, seedB := linearPickSeeds(entries)
	a = append(a, entries[seedA])
	b = append(b, entries[seedB])
	rectA, rectB := entries[seedA].rect, entries[seedB].rect
	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for i, e := range rest {
		remaining := len(rest) - i // including e
		switch {
		case len(a)+remaining <= m:
			a = append(a, e)
			rectA = rectA.Union(e.rect)
			continue
		case len(b)+remaining <= m:
			b = append(b, e)
			rectB = rectB.Union(e.rect)
			continue
		}
		d1 := rectA.Enlargement(e.rect)
		d2 := rectB.Enlargement(e.rect)
		if d1 < d2 || (d1 == d2 && len(a) <= len(b)) {
			a = append(a, e)
			rectA = rectA.Union(e.rect)
		} else {
			b = append(b, e)
			rectB = rectB.Union(e.rect)
		}
	}
	return a, b
}

// linearPickSeeds returns the indices of the two entries with the
// greatest normalized separation along x or y.
func linearPickSeeds(entries []entry) (int, int) {
	type extreme struct {
		highLow  int // entry with the highest low side
		lowHigh  int // entry with the lowest high side
		sep      float64
		validSep bool
	}
	pick := func(lo func(geom.Rect) float64, hi func(geom.Rect) float64) extreme {
		minLo, maxLo := math.Inf(1), math.Inf(-1)
		minHi, maxHi := math.Inf(1), math.Inf(-1)
		hlIdx, lhIdx := 0, 0
		for i, e := range entries {
			l, h := lo(e.rect), hi(e.rect)
			if l > maxLo {
				maxLo, hlIdx = l, i
			}
			if l < minLo {
				minLo = l
			}
			if h < minHi {
				minHi, lhIdx = h, i
			}
			if h > maxHi {
				maxHi = h
			}
		}
		width := maxHi - minLo
		ex := extreme{highLow: hlIdx, lowHigh: lhIdx}
		if width > 0 && hlIdx != lhIdx {
			ex.sep = (maxLo - minHi) / width
			ex.validSep = true
		}
		return ex
	}
	ex := pick(func(r geom.Rect) float64 { return r.Min.X }, func(r geom.Rect) float64 { return r.Max.X })
	ey := pick(func(r geom.Rect) float64 { return r.Min.Y }, func(r geom.Rect) float64 { return r.Max.Y })
	best := ex
	if !best.validSep || (ey.validSep && ey.sep > best.sep) {
		best = ey
	}
	if best.highLow == best.lowHigh || !best.validSep {
		// Degenerate (all rectangles identical): fall back to the
		// first two entries.
		return 0, 1
	}
	return best.highLow, best.lowHigh
}

// splitExhaustive enumerates every 2-partition honoring the minimum
// fill and keeps the one with least total covering area, breaking ties
// by least overlap between the two covering rectangles. Cost is
// O(2^(M+1)); usable only for small M such as the paper's 4.
func (t *Tree) splitExhaustive(entries []entry) (a, b []entry) {
	m := t.params.Min
	n := len(entries)
	bestMask := -1
	bestArea := math.Inf(1)
	bestOverlap := math.Inf(1)
	// Fix entry 0 in group A to halve the symmetric search space.
	for mask := 0; mask < 1<<(n-1); mask++ {
		full := mask << 1 // bit i set => entry i in group B
		cntB := 0
		rectA, rectB := geom.EmptyRect(), geom.EmptyRect()
		for i := 0; i < n; i++ {
			if full&(1<<i) != 0 {
				cntB++
				rectB = rectB.Union(entries[i].rect)
			} else {
				rectA = rectA.Union(entries[i].rect)
			}
		}
		if cntB < m || n-cntB < m {
			continue
		}
		area := rectA.Area() + rectB.Area()
		ov := rectA.Intersection(rectB).Area()
		if area < bestArea || (area == bestArea && ov < bestOverlap) {
			bestArea, bestOverlap, bestMask = area, ov, full
		}
	}
	for i := 0; i < n; i++ {
		if bestMask&(1<<i) != 0 {
			b = append(b, entries[i])
		} else {
			a = append(a, entries[i])
		}
	}
	return a, b
}
