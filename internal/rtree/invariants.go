package rtree

import "fmt"

// CheckInvariants validates the R-tree structural invariants of
// [Guttman 1984] §2: covering rectangles are exactly the MBR of the
// entries below them, every non-root node holds between m and M
// entries (the root at least 2 unless it is a leaf), all leaves lie at
// the same depth, parent links are consistent, and the recorded size
// and height match the structure. Bulk-built (packed) trees may be
// checked with requireMinFill=false at the last group of each level,
// so packing checks use the same function. It returns nil when the
// tree is valid.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	if !t.root.leaf && len(t.root.entries) < 2 {
		return fmt.Errorf("rtree: internal root has %d entries, want >= 2", len(t.root.entries))
	}
	if t.root.parent != nil {
		return fmt.Errorf("rtree: root has a parent")
	}
	items := 0
	leafDepth := -1
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n != t.root {
			if len(n.entries) < t.params.Min {
				return fmt.Errorf("rtree: node at depth %d underfull: %d < m=%d", depth, len(n.entries), t.params.Min)
			}
		}
		if len(n.entries) > t.params.Max {
			return fmt.Errorf("rtree: node at depth %d overfull: %d > M=%d", depth, len(n.entries), t.params.Max)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at differing depths %d and %d", leafDepth, depth)
			}
			items += len(n.entries)
			for _, e := range n.entries {
				if e.child != nil {
					return fmt.Errorf("rtree: leaf entry has a child pointer")
				}
			}
			return nil
		}
		for i, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry %d has no child", i)
			}
			if e.child.parent != n {
				return fmt.Errorf("rtree: child at depth %d has wrong parent link", depth+1)
			}
			if got := e.child.mbr(); !got.Eq(e.rect) {
				return fmt.Errorf("rtree: entry rect %v != child MBR %v at depth %d", e.rect, got, depth)
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if items != t.size {
		return fmt.Errorf("rtree: size %d but %d items found", t.size, items)
	}
	wantDepth := leafDepth
	if t.size == 0 {
		wantDepth = 0
	}
	if t.height != wantDepth {
		return fmt.Errorf("rtree: height %d but leaves at depth %d", t.height, wantDepth)
	}
	return nil
}
