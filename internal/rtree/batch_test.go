package rtree

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

// batchWindows generates n query windows over the [0,1000]^2 extent.
func batchWindows(n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		out[i] = geom.WindowAt(rng.Float64()*1000, 5+rng.Float64()*60, rng.Float64()*1000, 5+rng.Float64()*60)
	}
	return out
}

// TestQueryBatchMatchesSequential checks that the batched path returns
// exactly what per-window Query calls return — same items, same order,
// same total visit count — at every parallelism level.
func TestQueryBatchMatchesSequential(t *testing.T) {
	tr := New(DefaultParams())
	insertAll(tr, uniformRectItems(1500, 41))
	windows := batchWindows(64, 42)

	wantResults := make([][]Item, len(windows))
	wantVisits := 0
	for i, w := range windows {
		var v int
		wantResults[i], v = tr.Query(w)
		wantVisits += v
	}
	for _, par := range []int{0, 1, 2, 4, 8} {
		got, visits := tr.QueryBatch(windows, par)
		if !reflect.DeepEqual(got, wantResults) {
			t.Fatalf("par=%d: batch results differ from sequential queries", par)
		}
		if visits != wantVisits {
			t.Fatalf("par=%d: visits = %d, want %d", par, visits, wantVisits)
		}
	}
	if res, v := tr.QueryBatch(nil, 4); res != nil || v != 0 {
		t.Fatalf("empty batch: got %v, %d", res, v)
	}
}

// TestDiskQueryBatchMatchesSequential does the same for the disk tree,
// where workers share the sharded buffer pool.
func TestDiskQueryBatchMatchesSequential(t *testing.T) {
	p := pager.OpenMem(256)
	defer p.Close()
	dt, err := BulkLoadDisk(p, 16, 8, uniformRectItems(1200, 43), xSortGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	windows := batchWindows(48, 44)

	wantResults := make([][]Item, len(windows))
	wantVisits := 0
	for i, w := range windows {
		items, v, err := dt.Query(w)
		if err != nil {
			t.Fatal(err)
		}
		wantResults[i] = items
		wantVisits += v
	}
	for _, par := range []int{0, 1, 3, 8} {
		got, visits, err := dt.QueryBatch(windows, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, wantResults) {
			t.Fatalf("par=%d: disk batch results differ", par)
		}
		if visits != wantVisits {
			t.Fatalf("par=%d: visits = %d, want %d", par, visits, wantVisits)
		}
	}
}

// TestTotalNodeVisits checks the cumulative counter accumulates across
// batched and single queries and resets to zero.
func TestTotalNodeVisits(t *testing.T) {
	tr := New(DefaultParams())
	insertAll(tr, uniformRectItems(500, 45))
	tr.ResetNodeVisits()
	windows := batchWindows(16, 46)
	_, batchVisits := tr.QueryBatch(windows, 4)
	if got := tr.TotalNodeVisits(); got != int64(batchVisits) {
		t.Fatalf("TotalNodeVisits = %d, batch reported %d", got, batchVisits)
	}
	_, v := tr.Query(windows[0])
	if got := tr.TotalNodeVisits(); got != int64(batchVisits+v) {
		t.Fatalf("TotalNodeVisits = %d after extra query, want %d", got, batchVisits+v)
	}
	tr.ResetNodeVisits()
	if got := tr.TotalNodeVisits(); got != 0 {
		t.Fatalf("reset left %d", got)
	}
}

// TestConcurrentMixedReads is the read-path stress test: one shared
// in-memory tree and one shared disk tree (one pager) hammered by
// QueryBatch, point probes, nearest-neighbor searches, and disk
// searches at once. Run under -race (make check) this certifies the
// concurrent-reader contract end to end.
func TestConcurrentMixedReads(t *testing.T) {
	items := uniformRectItems(2000, 47)
	tr := New(DefaultParams())
	insertAll(tr, items)

	p := pager.OpenMem(128) // smaller than the tree: eviction under concurrency
	defer p.Close()
	dt, err := BulkLoadDisk(p, 16, 8, items, xSortGrouper{})
	if err != nil {
		t.Fatal(err)
	}

	oracle := func(w geom.Rect) map[int64]bool { return bruteSearch(items, w) }

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	fail := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 30; q++ {
				switch q % 3 {
				case 0: // batched window queries vs brute force
					windows := batchWindows(8, seed*1000+int64(q))
					results, _ := tr.QueryBatch(windows, 4)
					for i, w := range windows {
						want := oracle(w)
						if len(results[i]) != len(want) {
							fail("QueryBatch result size mismatch")
							return
						}
						for _, it := range results[i] {
							if !want[it.Data] {
								fail("QueryBatch returned wrong item")
								return
							}
						}
					}
				case 1: // point probes and NN
					pt := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
					tr.ContainsPoint(pt)
					if _, ok, _ := tr.NearestNeighbor(pt); !ok {
						fail("NearestNeighbor found nothing in a full tree")
						return
					}
				case 2: // disk-tree search through the shared pager
					w := geom.WindowAt(rng.Float64()*1000, 40, rng.Float64()*1000, 40)
					want := oracle(w)
					got := 0
					if _, err := dt.Search(w, func(it Item) bool {
						if !want[it.Data] {
							fail("disk search returned wrong item")
							return false
						}
						got++
						return true
					}); err != nil {
						fail(err.Error())
						return
					}
					if got != len(want) {
						fail("disk search result size mismatch")
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
