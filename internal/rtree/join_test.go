package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

// joinFixture builds two in-memory trees over overlapping random
// rectangle sets.
func joinFixture(t testing.TB, n int, seed int64) (*Tree, *Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	randRect := func() geom.Rect {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		return geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+rng.Float64()*20, y+rng.Float64()*20)}
	}
	a := New(Params{Max: 8, Min: 4})
	b := New(Params{Max: 8, Min: 4})
	for i := 0; i < n; i++ {
		a.Insert(randRect(), int64(i))
		b.Insert(randRect(), int64(1000000+i))
	}
	return a, b
}

// TestJuxtaposeMatchesJoinPairs: for every worker count, the parallel
// join must reproduce the serial JoinPairs emission exactly — same
// pairs, same order, same node-pair visit count.
func TestJuxtaposeMatchesJoinPairs(t *testing.T) {
	a, b := joinFixture(t, 800, 42)
	pred := func(x, y geom.Rect) bool { return x.Intersects(y) }

	var want []JoinPair
	wantVisited := JoinPairs(a, b, pred, func(x, y Item) bool {
		want = append(want, JoinPair{A: x, B: y})
		return true
	})
	if len(want) == 0 {
		t.Fatal("fixture produced no join pairs")
	}

	for _, workers := range []int{1, 2, 4, 8, 16} {
		got, visited := Juxtapose(a, b, pred, workers)
		if visited != wantVisited {
			t.Errorf("workers=%d: visited %d node pairs, serial visited %d", workers, visited, wantVisited)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestJuxtaposeCoveredBy exercises a non-symmetric predicate (the
// paper's covered-by) so task boundaries cannot hide an argument swap.
func TestJuxtaposeCoveredBy(t *testing.T) {
	a, b := joinFixture(t, 400, 7)
	pred := func(x, y geom.Rect) bool { return y.Contains(x) }
	var want []JoinPair
	wantVisited := JoinPairs(a, b, pred, func(x, y Item) bool {
		want = append(want, JoinPair{A: x, B: y})
		return true
	})
	got, visited := Juxtapose(a, b, pred, 4)
	if visited != wantVisited || len(got) != len(want) {
		t.Fatalf("workers=4: %d pairs / %d visits, want %d / %d", len(got), visited, len(want), wantVisited)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestJuxtaposeEmpty: joins touching an empty tree produce nothing and
// visit nothing.
func TestJuxtaposeEmpty(t *testing.T) {
	a, _ := joinFixture(t, 50, 3)
	empty := New(Params{Max: 8, Min: 4})
	if pairs, visited := Juxtapose(a, empty, func(x, y geom.Rect) bool { return x.Intersects(y) }, 4); len(pairs) != 0 || visited != 0 {
		t.Fatalf("join with empty tree: %d pairs, %d visits", len(pairs), visited)
	}
	if pairs, visited := Juxtapose(empty, a, func(x, y geom.Rect) bool { return x.Intersects(y) }, 4); len(pairs) != 0 || visited != 0 {
		t.Fatalf("join from empty tree: %d pairs, %d visits", len(pairs), visited)
	}
}

// diskJoinFixture builds two disk trees over the same random sets used
// by joinFixture, sharing one pager.
func diskJoinFixture(t testing.TB, n int, seed int64, pool int) (*DiskTree, *DiskTree, *pager.Pager) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	randRect := func() geom.Rect {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		return geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+rng.Float64()*20, y+rng.Float64()*20)}
	}
	itemsA := make([]Item, n)
	itemsB := make([]Item, n)
	for i := 0; i < n; i++ {
		itemsA[i] = Item{Rect: randRect(), Data: int64(i)}
		itemsB[i] = Item{Rect: randRect(), Data: int64(1000000 + i)}
	}
	p := pager.OpenMem(pool)
	da, err := BulkLoadDisk(p, 16, 8, itemsA, tileGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := BulkLoadDisk(p, 16, 8, itemsB, tileGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	return da, db, p
}

// TestDiskJuxtaposeParallelMatchesSerial: the disk join at every
// worker count reproduces the serial disk join exactly.
func TestDiskJuxtaposeParallelMatchesSerial(t *testing.T) {
	da, db, p := diskJoinFixture(t, 1500, 99, 1024)
	defer p.Close()
	pred := func(x, y geom.Rect) bool { return x.Intersects(y) }

	want, wantVisited, err := da.Juxtapose(db, pred, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no join pairs")
	}
	for _, workers := range []int{2, 4, 8} {
		got, visited, err := da.Juxtapose(db, pred, workers)
		if err != nil {
			t.Fatal(err)
		}
		if visited != wantVisited {
			t.Errorf("workers=%d: visited %d node pairs, serial visited %d", workers, visited, wantVisited)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDiskJuxtaposeMatchesMemorySet: the disk join finds the same pair
// set (keyed by item data) as the in-memory join over the same items —
// tree shapes differ, so only the sets are comparable.
func TestDiskJuxtaposeMatchesMemorySet(t *testing.T) {
	da, db, p := diskJoinFixture(t, 600, 5, 1024)
	defer p.Close()
	pred := func(x, y geom.Rect) bool { return x.Intersects(y) }
	diskPairs, _, err := da.Juxtapose(db, pred, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the same items in memory (same seed and generator as
	// diskJoinFixture).
	rng := rand.New(rand.NewSource(5))
	randRect := func() geom.Rect {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		return geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+rng.Float64()*20, y+rng.Float64()*20)}
	}
	ma := New(Params{Max: 8, Min: 4})
	mb := New(Params{Max: 8, Min: 4})
	for i := 0; i < 600; i++ {
		ma.Insert(randRect(), int64(i))
		mb.Insert(randRect(), int64(1000000+i))
	}
	memPairs, _ := Juxtapose(ma, mb, pred, 1)

	key := func(p JoinPair) [2]int64 { return [2]int64{p.A.Data, p.B.Data} }
	set := make(map[[2]int64]bool, len(memPairs))
	for _, pr := range memPairs {
		set[key(pr)] = true
	}
	if len(diskPairs) != len(memPairs) {
		t.Fatalf("disk join %d pairs, memory join %d", len(diskPairs), len(memPairs))
	}
	for _, pr := range diskPairs {
		if !set[key(pr)] {
			t.Fatalf("disk pair %+v not found by memory join", pr)
		}
	}
}

// TestDiskSearchZeroAllocs asserts the zero-copy claim: a warm
// DiskTree search performs no per-entry or per-node allocations.
func TestDiskSearchZeroAllocs(t *testing.T) {
	da, _, p := diskJoinFixture(t, 2000, 11, 2048)
	defer p.Close()
	window := geom.Rect{Min: geom.Pt(100, 100), Max: geom.Pt(300, 300)}
	// Warm the pool and the stack pool.
	if _, err := da.Search(window, func(Item) bool { return true }); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := da.Search(window, func(Item) bool { return true }); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm DiskTree.Search allocates %.1f objects/op, want 0", allocs)
	}
}

// TestDiskQueryPreallocAllocs asserts Query's size-hinted
// preallocation: after a warm-up query establishes the hint, a repeat
// of the same window allocates only the result slice.
func TestDiskQueryPreallocAllocs(t *testing.T) {
	da, _, p := diskJoinFixture(t, 2000, 11, 2048)
	defer p.Close()
	window := geom.Rect{Min: geom.Pt(100, 100), Max: geom.Pt(300, 300)}
	res, _, err := da.Query(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("window matched nothing; fixture broken")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := da.Query(window); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("warm DiskTree.Query allocates %.1f objects/op, want 1 (the result slice)", allocs)
	}
}
