package rtree

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// uniformItems generates n random point items in [0,1000]^2, the
// paper's workload.
func uniformItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		items[i] = Item{Rect: p.Rect(), Data: int64(i)}
	}
	return items
}

// uniformRectItems generates n random small rectangles in [0,1000]^2.
func uniformRectItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64()*950, rng.Float64()*950
		w, h := rng.Float64()*50, rng.Float64()*50
		items[i] = Item{Rect: geom.R(x, y, x+w, y+h), Data: int64(i)}
	}
	return items
}

// bruteSearch is the oracle: all items intersecting window.
func bruteSearch(items []Item, window geom.Rect) map[int64]bool {
	out := make(map[int64]bool)
	for _, it := range items {
		if it.Rect.Intersects(window) {
			out[it.Data] = true
		}
	}
	return out
}

func insertAll(t *Tree, items []Item) {
	for _, it := range items {
		t.InsertItem(it)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(DefaultParams())
	if tr.Len() != 0 || tr.Depth() != 0 || tr.NodeCount() != 1 {
		t.Fatalf("empty tree: len=%d depth=%d nodes=%d", tr.Len(), tr.Depth(), tr.NodeCount())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	items, visited := tr.Query(geom.R(0, 0, 1000, 1000))
	if len(items) != 0 || visited != 1 {
		t.Fatalf("query on empty tree: %d items, %d visited", len(items), visited)
	}
	if !tr.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds should be empty")
	}
}

func TestNewValidatesParams(t *testing.T) {
	bad := []Params{
		{Max: 1, Min: 1},
		{Max: 4, Min: 0},
		{Max: 4, Min: 3}, // m > M/2
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", p)
				}
			}()
			New(p)
		}()
	}
}

func TestInsertSingle(t *testing.T) {
	tr := New(DefaultParams())
	tr.Insert(geom.R(10, 10, 20, 20), 7)
	if tr.Len() != 1 || tr.Depth() != 0 {
		t.Fatalf("len=%d depth=%d", tr.Len(), tr.Depth())
	}
	got, _ := tr.Query(geom.R(0, 0, 100, 100))
	if len(got) != 1 || got[0].Data != 7 {
		t.Fatalf("query = %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGrowsTree(t *testing.T) {
	tr := New(DefaultParams())
	items := uniformItems(100, 1)
	insertAll(tr, items)
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() < 2 {
		t.Fatalf("Depth = %d, expected >= 2 for 100 items with M=4", tr.Depth())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	for _, split := range []SplitKind{SplitQuadratic, SplitLinear, SplitExhaustive} {
		t.Run(split.String(), func(t *testing.T) {
			tr := New(Params{Max: 4, Min: 2, Split: split})
			items := uniformRectItems(300, 2)
			insertAll(tr, items)
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			for q := 0; q < 50; q++ {
				w := geom.WindowAt(rng.Float64()*1000, rng.Float64()*100, rng.Float64()*1000, rng.Float64()*100)
				want := bruteSearch(items, w)
				got, _ := tr.Query(w)
				if len(got) != len(want) {
					t.Fatalf("query %v: got %d items, want %d", w, len(got), len(want))
				}
				for _, it := range got {
					if !want[it.Data] {
						t.Fatalf("query %v returned unexpected item %d", w, it.Data)
					}
				}
			}
		})
	}
}

func TestSearchWithin(t *testing.T) {
	tr := New(DefaultParams())
	tr.Insert(geom.R(10, 10, 20, 20), 1) // wholly inside window
	tr.Insert(geom.R(40, 40, 60, 60), 2) // straddles window edge
	tr.Insert(geom.R(80, 80, 90, 90), 3) // outside
	w := geom.R(0, 0, 50, 50)
	var within []int64
	tr.SearchWithin(w, func(it Item) bool {
		within = append(within, it.Data)
		return true
	})
	if len(within) != 1 || within[0] != 1 {
		t.Fatalf("SearchWithin = %v, want [1]", within)
	}
	// Search (intersects) should see items 1 and 2.
	got, _ := tr.Query(w)
	if len(got) != 2 {
		t.Fatalf("Query = %v, want 2 items", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(DefaultParams())
	insertAll(tr, uniformItems(200, 4))
	count := 0
	tr.Search(geom.R(0, 0, 1000, 1000), func(Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d items, want 5", count)
	}
}

func TestContainsPoint(t *testing.T) {
	tr := New(DefaultParams())
	items := uniformItems(500, 5)
	insertAll(tr, items)
	// Every stored point must be found.
	for _, it := range items[:50] {
		found, visited := tr.ContainsPoint(it.Rect.Min)
		if !found {
			t.Fatalf("stored point %v not found", it.Rect.Min)
		}
		if visited < 1 {
			t.Fatalf("visited = %d", visited)
		}
	}
	// A point far outside is not found.
	if found, _ := tr.ContainsPoint(geom.Pt(-500, -500)); found {
		t.Fatal("found a point that was never inserted")
	}
}

func TestItemsReturnsAll(t *testing.T) {
	tr := New(DefaultParams())
	items := uniformItems(137, 6)
	insertAll(tr, items)
	got := tr.Items()
	if len(got) != len(items) {
		t.Fatalf("Items returned %d, want %d", len(got), len(items))
	}
	seen := make(map[int64]bool)
	for _, it := range got {
		seen[it.Data] = true
	}
	for _, it := range items {
		if !seen[it.Data] {
			t.Fatalf("item %d missing from Items()", it.Data)
		}
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New(DefaultParams())
	items := uniformItems(50, 7)
	insertAll(tr, items)
	if !tr.Delete(items[13].Rect, items[13].Data) {
		t.Fatal("delete of existing item failed")
	}
	if tr.Delete(items[13].Rect, items[13].Data) {
		t.Fatal("second delete of same item should fail")
	}
	if tr.Len() != 49 {
		t.Fatalf("Len = %d, want 49", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found, _ := tr.ContainsPoint(items[13].Rect.Min)
	// The point may coincide with another random point; verify via query payloads.
	got, _ := tr.Query(items[13].Rect)
	for _, it := range got {
		if it.Data == items[13].Data {
			t.Fatal("deleted item still present")
		}
	}
	_ = found
}

func TestDeleteAllThenReuse(t *testing.T) {
	for _, split := range []SplitKind{SplitQuadratic, SplitLinear, SplitExhaustive} {
		t.Run(split.String(), func(t *testing.T) {
			tr := New(Params{Max: 4, Min: 2, Split: split})
			items := uniformItems(120, 8)
			insertAll(tr, items)
			// Delete in a scrambled order, verifying invariants as the
			// tree condenses.
			order := rand.New(rand.NewSource(9)).Perm(len(items))
			for k, idx := range order {
				if !tr.Delete(items[idx].Rect, items[idx].Data) {
					t.Fatalf("delete %d failed", idx)
				}
				if k%10 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("after %d deletes: %v", k+1, err)
					}
				}
			}
			if tr.Len() != 0 || tr.Depth() != 0 {
				t.Fatalf("after deleting all: len=%d depth=%d", tr.Len(), tr.Depth())
			}
			// The tree must be fully reusable.
			insertAll(tr, items[:30])
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != 30 {
				t.Fatalf("Len after reuse = %d", tr.Len())
			}
		})
	}
}

func TestDeleteNonexistent(t *testing.T) {
	tr := New(DefaultParams())
	insertAll(tr, uniformItems(40, 10))
	if tr.Delete(geom.R(2000, 2000, 2001, 2001), 999) {
		t.Fatal("delete of never-inserted rect succeeded")
	}
	// Same rect as an existing item but wrong data pointer.
	items := tr.Items()
	if tr.Delete(items[0].Rect, -12345) {
		t.Fatal("delete with wrong data pointer succeeded")
	}
	if tr.Len() != 40 {
		t.Fatalf("Len changed to %d", tr.Len())
	}
}

func TestDuplicateItems(t *testing.T) {
	tr := New(DefaultParams())
	r := geom.R(5, 5, 6, 6)
	for i := 0; i < 10; i++ {
		tr.Insert(r, int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, _ := tr.Query(r)
	if len(got) != 10 {
		t.Fatalf("found %d duplicates, want 10", len(got))
	}
	// Delete a specific duplicate by data pointer.
	if !tr.Delete(r, 7) {
		t.Fatal("failed to delete duplicate 7")
	}
	got, _ = tr.Query(r)
	if len(got) != 9 {
		t.Fatalf("found %d after delete, want 9", len(got))
	}
	for _, it := range got {
		if it.Data == 7 {
			t.Fatal("deleted duplicate still present")
		}
	}
}

func TestLargerBranchingFactors(t *testing.T) {
	for _, max := range []int{8, 16, 64} {
		tr := New(Params{Max: max, Min: max / 2, Split: SplitQuadratic})
		items := uniformItems(500, int64(max))
		insertAll(tr, items)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("M=%d: %v", max, err)
		}
		w := geom.R(100, 100, 300, 300)
		want := bruteSearch(items, w)
		got, _ := tr.Query(w)
		if len(got) != len(want) {
			t.Fatalf("M=%d: got %d, want %d", max, len(got), len(want))
		}
	}
}

func TestMetrics(t *testing.T) {
	tr := New(DefaultParams())
	items := uniformItems(200, 11)
	insertAll(tr, items)
	m := tr.ComputeMetrics()
	if m.Items != 200 {
		t.Errorf("Items = %d", m.Items)
	}
	if m.Nodes != tr.NodeCount() || m.Depth != tr.Depth() {
		t.Errorf("metrics inconsistent with tree accessors")
	}
	if m.Leaves != tr.LeafCount() {
		t.Errorf("Leaves = %d, want %d", m.Leaves, tr.LeafCount())
	}
	if m.Coverage <= 0 {
		t.Errorf("Coverage = %g", m.Coverage)
	}
	if m.OverlapMeasure > m.Overlap+1e-9 {
		t.Errorf("set-measure overlap %g exceeds pairwise %g", m.OverlapMeasure, m.Overlap)
	}
	if m.DeadSpace < -1e-9 {
		t.Errorf("DeadSpace = %g", m.DeadSpace)
	}
	// Leaf MBRs of a valid tree all lie within the tree bounds.
	bounds := tr.Bounds()
	for _, r := range tr.LeafRects() {
		if !bounds.Contains(r) {
			t.Errorf("leaf rect %v outside bounds %v", r, bounds)
		}
	}
}

func TestLevelRects(t *testing.T) {
	tr := New(DefaultParams())
	insertAll(tr, uniformItems(100, 12))
	levels := tr.LevelRects()
	if len(levels) != tr.Depth()+1 {
		t.Fatalf("levels = %d, want depth+1 = %d", len(levels), tr.Depth()+1)
	}
	if len(levels[0]) != 1 {
		t.Fatalf("root level has %d rects", len(levels[0]))
	}
	if len(levels[len(levels)-1]) != tr.LeafCount() {
		t.Fatalf("leaf level has %d rects, want %d", len(levels[len(levels)-1]), tr.LeafCount())
	}
	// Each level's union is contained in the level above's union.
	for i := 1; i < len(levels); i++ {
		upper := geom.MBRRects(levels[i-1]...)
		lower := geom.MBRRects(levels[i]...)
		if !upper.Contains(lower) {
			t.Errorf("level %d MBR %v not within level %d MBR %v", i, lower, i-1, upper)
		}
	}
}

func TestNearestNeighbor(t *testing.T) {
	tr := New(DefaultParams())
	items := uniformItems(300, 13)
	insertAll(tr, items)
	rng := rand.New(rand.NewSource(14))
	for q := 0; q < 30; q++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got, ok, _ := tr.NearestNeighbor(p)
		if !ok {
			t.Fatal("NN on non-empty tree returned !ok")
		}
		// Oracle: brute-force minimum distance.
		best := -1.0
		for _, it := range items {
			d := it.Rect.Min.Dist(p)
			if best < 0 || d < best {
				best = d
			}
		}
		if gotD := got.Rect.Min.Dist(p); gotD > best+1e-9 {
			t.Fatalf("NN(%v) = dist %g, oracle %g", p, gotD, best)
		}
	}
	empty := New(DefaultParams())
	if _, ok, _ := empty.NearestNeighbor(geom.Pt(0, 0)); ok {
		t.Fatal("NN on empty tree returned ok")
	}
}

func TestQuickInsertDeleteInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func() bool {
		tr := New(DefaultParams())
		n := 1 + rng.Intn(60)
		items := uniformItems(n, rng.Int63())
		insertAll(tr, items)
		if tr.CheckInvariants() != nil {
			return false
		}
		// Delete a random half.
		for _, idx := range rng.Perm(n)[:n/2] {
			if !tr.Delete(items[idx].Rect, items[idx].Data) {
				return false
			}
		}
		return tr.CheckInvariants() == nil && tr.Len() == n-n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSearchNeverMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	f := func() bool {
		n := 1 + rng.Intn(150)
		items := uniformRectItems(n, rng.Int63())
		tr := New(DefaultParams())
		insertAll(tr, items)
		w := geom.WindowAt(rng.Float64()*1000, 50+rng.Float64()*200, rng.Float64()*1000, 50+rng.Float64()*200)
		want := bruteSearch(items, w)
		got, _ := tr.Query(w)
		if len(got) != len(want) {
			return false
		}
		for _, it := range got {
			if !want[it.Data] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestJoinPairsMatchesNestedLoop(t *testing.T) {
	a := New(DefaultParams())
	b := New(DefaultParams())
	itemsA := uniformRectItems(80, 17)
	itemsB := uniformRectItems(90, 18)
	insertAll(a, itemsA)
	insertAll(b, itemsB)

	pred := geom.Overlapping
	want := make(map[[2]int64]bool)
	for _, ia := range itemsA {
		for _, ib := range itemsB {
			if pred(ia.Rect, ib.Rect) {
				want[[2]int64{ia.Data, ib.Data}] = true
			}
		}
	}
	got := make(map[[2]int64]bool)
	JoinPairs(a, b, pred, func(x, y Item) bool {
		got[[2]int64{x.Data, y.Data}] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, nested loop %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("join missed pair %v", k)
		}
	}
}

func TestJoinPairsCoveredBy(t *testing.T) {
	// Cities covered by regions: the paper's juxtaposition example.
	cities := New(DefaultParams())
	regions := New(DefaultParams())
	cities.Insert(geom.Pt(5, 5).Rect(), 1)
	cities.Insert(geom.Pt(15, 15).Rect(), 2)
	cities.Insert(geom.Pt(50, 50).Rect(), 3)
	regions.Insert(geom.R(0, 0, 10, 10), 100)   // covers city 1
	regions.Insert(geom.R(10, 10, 20, 20), 200) // covers city 2
	var pairs [][2]int64
	JoinPairs(cities, regions, geom.CoveredBy, func(c, r Item) bool {
		pairs = append(pairs, [2]int64{c.Data, r.Data})
		return true
	})
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestJoinEarlyStop(t *testing.T) {
	a := New(DefaultParams())
	b := New(DefaultParams())
	insertAll(a, uniformRectItems(50, 19))
	insertAll(b, uniformRectItems(50, 20))
	count := 0
	JoinPairs(a, b, geom.Overlapping, func(_, _ Item) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop count = %d", count)
	}
}

func TestVisitCountPrunes(t *testing.T) {
	// A small window on a large tree must visit far fewer nodes than
	// the whole tree — the point of having an R-tree at all.
	tr := New(DefaultParams())
	insertAll(tr, uniformItems(900, 21))
	total := tr.NodeCount()
	_, visited := tr.Query(geom.R(10, 10, 30, 30))
	if visited >= total/2 {
		t.Fatalf("small window visited %d of %d nodes — no pruning", visited, total)
	}
}

func TestConcurrentSearches(t *testing.T) {
	// R-tree searches are read-only; many readers may run in parallel
	// on a static (packed-style) tree — the paper's deployment mode.
	tr := New(DefaultParams())
	items := uniformItems(2000, 30)
	insertAll(tr, items)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 200; q++ {
				w := geom.WindowAt(rng.Float64()*1000, 30, rng.Float64()*1000, 30)
				got, _ := tr.Query(w)
				for _, it := range got {
					if !it.Rect.Intersects(w) {
						errs <- "result outside window"
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
