package rtree

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pager"
)

// nnLikeGrouper is a simple x-sort grouper for disk bulk-load tests
// (the real packing strategies live in package pack; rtree tests only
// need a valid Grouper).
type xSortGrouper struct{}

func (xSortGrouper) Name() string { return "xsort" }

func (xSortGrouper) Group(rects []geom.Rect, max int) [][]int {
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && rects[order[j]].Min.X < rects[order[j-1]].Min.X; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var groups [][]int
	for s := 0; s < len(order); s += max {
		e := s + max
		if e > len(order) {
			e = len(order)
		}
		groups = append(groups, append([]int(nil), order[s:e]...))
	}
	return groups
}

// tileGrouper is an STR-style two-pass grouper (sort by x, slab, sort
// slabs by y) so packed disk leaves are square-ish tiles rather than
// full-height slivers.
type tileGrouper struct{}

func (tileGrouper) Name() string { return "tile" }

func (tileGrouper) Group(rects []geom.Rect, max int) [][]int {
	n := len(rects)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return rects[order[i]].Center().X < rects[order[j]].Center().X
	})
	slabs := int(math.Ceil(math.Sqrt(float64((n + max - 1) / max))))
	perSlab := slabs * max
	var groups [][]int
	for s := 0; s < n; s += perSlab {
		e := s + perSlab
		if e > n {
			e = n
		}
		slab := append([]int(nil), order[s:e]...)
		sort.SliceStable(slab, func(i, j int) bool {
			return rects[slab[i]].Center().Y < rects[slab[j]].Center().Y
		})
		for gs := 0; gs < len(slab); gs += max {
			ge := gs + max
			if ge > len(slab) {
				ge = len(slab)
			}
			groups = append(groups, append([]int(nil), slab[gs:ge]...))
		}
	}
	return groups
}

func TestDiskBulkLoadAndSearch(t *testing.T) {
	p := pager.OpenMem(64)
	defer p.Close()
	items := uniformItems(1000, 1)
	dt, err := BulkLoadDisk(p, 0, 0, items, xSortGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	if dt.Len() != 1000 {
		t.Fatalf("Len = %d", dt.Len())
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With page-filling fanout (102), 1000 items need depth 1.
	if dt.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", dt.Depth())
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 30; q++ {
		w := geom.WindowAt(rng.Float64()*1000, rng.Float64()*120, rng.Float64()*1000, rng.Float64()*120)
		want := bruteSearch(items, w)
		got, visited, err := dt.Query(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("window %v: got %d want %d", w, len(got), len(want))
		}
		if visited < 1 {
			t.Fatal("no pages visited")
		}
	}
}

func TestDiskEmptyTree(t *testing.T) {
	p := pager.OpenMem(8)
	defer p.Close()
	dt, err := NewDisk(p, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, visited, err := dt.Query(geom.R(0, 0, 1000, 1000))
	if err != nil || len(got) != 0 || visited != 1 {
		t.Fatalf("empty query: %v %d %v", got, visited, err)
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFanoutValidation(t *testing.T) {
	p := pager.OpenMem(8)
	defer p.Close()
	for _, bad := range [][2]int{{1, 1}, {8, 5}, {DiskMaxEntries + 1, 4}} {
		if _, err := NewDisk(p, bad[0], bad[1]); err == nil {
			t.Errorf("NewDisk(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

func TestDiskInsertDynamic(t *testing.T) {
	p := pager.OpenMem(256)
	defer p.Close()
	dt, err := NewDisk(p, 8, 4) // small fanout to force deep splits
	if err != nil {
		t.Fatal(err)
	}
	items := uniformItems(500, 3)
	for i, it := range items {
		if err := dt.Insert(it.Rect, it.Data); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if dt.Len() != 500 {
		t.Fatalf("Len = %d", dt.Len())
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if dt.Depth() < 2 {
		t.Fatalf("Depth = %d, want >= 2 with fanout 8", dt.Depth())
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 25; q++ {
		w := geom.WindowAt(rng.Float64()*1000, rng.Float64()*100, rng.Float64()*1000, rng.Float64()*100)
		want := bruteSearch(items, w)
		got, _, err := dt.Query(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("window %v: got %d want %d", w, len(got), len(want))
		}
	}
}

func TestDiskInsertAfterBulkLoad(t *testing.T) {
	// The §3.4 regime on disk: pack first, then keep inserting.
	p := pager.OpenMem(256)
	defer p.Close()
	initial := uniformItems(300, 5)
	dt, err := BulkLoadDisk(p, 16, 8, initial, xSortGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	extra := uniformItems(200, 6)
	for _, it := range extra {
		it.Data += 10_000
		if err := dt.Insert(it.Rect, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all := append(append([]Item(nil), initial...), func() []Item {
		out := make([]Item, len(extra))
		for i, it := range extra {
			it.Data += 10_000
			out[i] = it
		}
		return out
	}()...)
	got, _, err := dt.Query(geom.R(-1, -1, 1001, 1001))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("found %d of %d items", len(got), len(all))
	}
}

func TestDiskMetrics(t *testing.T) {
	p := pager.OpenMem(64)
	defer p.Close()
	items := uniformItems(400, 7)
	dt, err := BulkLoadDisk(p, 32, 16, items, xSortGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dt.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Items != 400 || m.Leaves == 0 || m.Coverage <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Nodes < m.Leaves {
		t.Fatalf("nodes %d < leaves %d", m.Nodes, m.Leaves)
	}
}

func TestDiskPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rtree.db")
	p, err := pager.Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	items := uniformItems(600, 8)
	dt, err := BulkLoadDisk(p, 0, 0, items, xSortGrouper{})
	if err != nil {
		t.Fatal(err)
	}
	meta := dt.Meta()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := pager.Open(path, 8) // tiny pool: force real page I/O
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	dt2 := OpenDisk(p2, meta)
	if err := dt2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	w := geom.R(200, 200, 400, 400)
	want := bruteSearch(items, w)
	got, _, err := dt2.Query(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened query: got %d want %d", len(got), len(want))
	}
	if s := p2.Stats(); s.Misses == 0 {
		t.Error("expected pager misses with a cold pool")
	}
}

func TestDiskPackedFewerIOThanDynamic(t *testing.T) {
	// The paper's bottom line on disk: a packed tree touches fewer
	// pages per query than a dynamically grown one.
	items := uniformItems(2000, 9)
	queries := make([]geom.Rect, 200)
	rng := rand.New(rand.NewSource(10))
	for i := range queries {
		queries[i] = geom.WindowAt(rng.Float64()*1000, 25, rng.Float64()*1000, 25)
	}

	measure := func(build func(p *pager.Pager) *DiskTree) int {
		p := pager.OpenMem(512)
		defer p.Close()
		dt := build(p)
		total := 0
		for _, w := range queries {
			_, v, err := dt.Query(w)
			if err != nil {
				t.Fatal(err)
			}
			total += v
		}
		return total
	}

	packedVisits := measure(func(p *pager.Pager) *DiskTree {
		dt, err := BulkLoadDisk(p, 16, 8, items, tileGrouper{})
		if err != nil {
			t.Fatal(err)
		}
		return dt
	})
	dynamicVisits := measure(func(p *pager.Pager) *DiskTree {
		dt, err := NewDisk(p, 16, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			if err := dt.Insert(it.Rect, it.Data); err != nil {
				t.Fatal(err)
			}
		}
		return dt
	})
	if packedVisits >= dynamicVisits {
		t.Fatalf("packed visits %d >= dynamic %d", packedVisits, dynamicVisits)
	}
}

func TestDiskDelete(t *testing.T) {
	p := pager.OpenMem(256)
	defer p.Close()
	dt, err := NewDisk(p, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	items := uniformItems(400, 11)
	for _, it := range items {
		if err := dt.Insert(it.Rect, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a scrambled half, checking invariants periodically.
	order := rand.New(rand.NewSource(12)).Perm(len(items))
	for k, idx := range order[:200] {
		ok, err := dt.Delete(items[idx].Rect, items[idx].Data)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete %d failed", idx)
		}
		if k%25 == 0 {
			if err := dt.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
		}
	}
	if dt.Len() != 200 {
		t.Fatalf("Len = %d", dt.Len())
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deleted items are gone; survivors remain findable.
	deleted := map[int64]bool{}
	for _, idx := range order[:200] {
		deleted[items[idx].Data] = true
	}
	got, _, err := dt.Query(geom.R(-1, -1, 1001, 1001))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("query found %d, want 200", len(got))
	}
	for _, it := range got {
		if deleted[it.Data] {
			t.Fatalf("deleted item %d still present", it.Data)
		}
	}
	// Double delete fails cleanly.
	idx := order[0]
	if ok, err := dt.Delete(items[idx].Rect, items[idx].Data); err != nil || ok {
		t.Fatalf("double delete: ok=%v err=%v", ok, err)
	}
}

func TestDiskDeleteAll(t *testing.T) {
	p := pager.OpenMem(128)
	defer p.Close()
	dt, err := NewDisk(p, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	items := uniformItems(120, 13)
	for _, it := range items {
		if err := dt.Insert(it.Rect, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items {
		ok, err := dt.Delete(it.Rect, it.Data)
		if err != nil || !ok {
			t.Fatalf("delete: %v %v", ok, err)
		}
	}
	if dt.Len() != 0 || dt.Depth() != 0 {
		t.Fatalf("after deleting all: len=%d depth=%d", dt.Len(), dt.Depth())
	}
	// Tree stays usable.
	for _, it := range items[:50] {
		if err := dt.Insert(it.Rect, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := dt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskKNNAgainstMemory(t *testing.T) {
	// DiskTree has no KNN; this cross-checks the in-memory KNN against
	// a brute-force oracle instead (placed here to share uniformItems).
	items := uniformItems(500, 14)
	tr := New(DefaultParams())
	insertAll(tr, items)
	rng := rand.New(rand.NewSource(15))
	for q := 0; q < 20; q++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		got, visited := tr.NearestNeighbors(p, k)
		if len(got) != k {
			t.Fatalf("k=%d returned %d items", k, len(got))
		}
		if visited < 1 {
			t.Fatal("no nodes visited")
		}
		// Oracle: sort distances.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Rect.Min.Dist(p)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := it.Rect.Min.Dist(p)
			if d > dists[i]+1e-9 {
				t.Fatalf("k=%d neighbor %d at dist %g, oracle %g", k, i, d, dists[i])
			}
		}
		// Result must be sorted nearest-first.
		for i := 1; i < len(got); i++ {
			if got[i].Rect.Min.Dist(p) < got[i-1].Rect.Min.Dist(p)-1e-9 {
				t.Fatal("KNN result not sorted")
			}
		}
	}
	// Edge cases.
	if out, _ := tr.NearestNeighbors(geom.Pt(0, 0), 0); out != nil {
		t.Fatal("k=0 should return nil")
	}
	if out, _ := tr.NearestNeighbors(geom.Pt(0, 0), 10000); len(out) != tr.Len() {
		t.Fatalf("k>n returned %d items", len(out))
	}
}

func TestQuickDiskRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		p := pager.OpenMem(256)
		dt, err := NewDisk(p, 6, 3)
		if err != nil {
			t.Fatal(err)
		}
		live := map[int64]geom.Rect{}
		next := int64(0)
		ops := 150 + rng.Intn(250)
		for op := 0; op < ops; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				r := geom.Pt(rng.Float64()*1000, rng.Float64()*1000).Rect()
				if err := dt.Insert(r, next); err != nil {
					t.Fatal(err)
				}
				live[next] = r
				next++
			} else {
				for id, r := range live {
					ok, err := dt.Delete(r, id)
					if err != nil || !ok {
						t.Fatalf("delete %d: %v %v", id, ok, err)
					}
					delete(live, id)
					break
				}
			}
		}
		if err := dt.CheckInvariants(); err != nil {
			t.Fatalf("trial %d after %d ops: %v", trial, ops, err)
		}
		if dt.Len() != len(live) {
			t.Fatalf("trial %d: len %d, want %d", trial, dt.Len(), len(live))
		}
		got, _, err := dt.Query(geom.R(-1, -1, 1001, 1001))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(live) {
			t.Fatalf("trial %d: query %d, want %d", trial, len(got), len(live))
		}
		for _, it := range got {
			if _, ok := live[it.Data]; !ok {
				t.Fatalf("trial %d: ghost item %d", trial, it.Data)
			}
		}
		p.Close()
	}
}
