package rtree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/pager"
)

// This file parallelizes the paper's juxtaposition primitive (§4): the
// simultaneous traversal of two R-trees. The traversal is a DFS over
// the *product tree* whose nodes are pairs (n, m) with intersecting
// MBRs. To fan it out without changing the answer, the product tree's
// frontier is first expanded breadth-first — each expansion step
// replaces a pair with its intersecting child pairs, in the exact
// order the serial DFS would descend — until it is wide enough to feed
// the workers. Each frontier pair then becomes an independent task: a
// serial DFS over its subtree pair. Because (a) the frontier preserves
// left-to-right DFS order and (b) the full DFS emission is the
// concatenation of the subtree emissions in that order, stitching the
// per-task results back together in frontier order reproduces the
// serial join bit for bit — including the node-pair visit count, since
// every pair is counted exactly once (during expansion, or at task-DFS
// entry).

// JoinPair is one joined result: item A from the first tree, item B
// from the second.
type JoinPair struct {
	A, B Item
}

// frontierFactor is the target number of tasks per worker. More tasks
// than workers smooths load imbalance between subtree pairs of very
// different sizes; 8 keeps the expansion shallow while leaving the
// atomic-cursor work stealing enough slack.
const frontierFactor = 8

// joinWorkers normalizes a parallelism request for a join: <= 0 means
// GOMAXPROCS.
func joinWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// Juxtapose joins two in-memory trees with up to workers goroutines,
// returning every pair of items whose rectangles satisfy pred plus the
// number of node pairs visited. The result is identical — same pairs,
// same order, same visit count — to running the serial JoinPairs and
// collecting its emissions. workers <= 0 means GOMAXPROCS; workers ==
// 1 runs the serial traversal directly. The pruning rule is the same
// as JoinPairs: pred must imply rectangle intersection.
func Juxtapose(t, u *Tree, pred func(a, b geom.Rect) bool, workers int) ([]JoinPair, int) {
	if t.size == 0 || u.size == 0 {
		return nil, 0
	}
	workers = joinWorkers(workers)
	if workers == 1 {
		var out []JoinPair
		visited := JoinPairs(t, u, pred, func(a, b Item) bool {
			out = append(out, JoinPair{A: a, B: b})
			return true
		})
		return out, visited
	}

	type task struct{ n, m *node }
	frontier := []task{{t.root, u.root}}
	visited := 0
	for len(frontier) < workers*frontierFactor {
		next := make([]task, 0, 2*len(frontier))
		expanded := false
		for _, pr := range frontier {
			if pr.n.leaf && pr.m.leaf {
				// Sealed: cannot expand; stays in position so task
				// concatenation preserves DFS emission order. Its visit
				// is counted when the worker walks it.
				next = append(next, pr)
				continue
			}
			expanded = true
			visited++ // this pair is visited here, during expansion
			switch {
			case pr.n.leaf:
				nm := pr.n.mbr()
				for _, eb := range pr.m.entries {
					if nm.Intersects(eb.rect) {
						next = append(next, task{pr.n, eb.child})
					}
				}
			case pr.m.leaf:
				mm := pr.m.mbr()
				for _, ea := range pr.n.entries {
					if ea.rect.Intersects(mm) {
						next = append(next, task{ea.child, pr.m})
					}
				}
			default:
				for _, ea := range pr.n.entries {
					for _, eb := range pr.m.entries {
						if ea.rect.Intersects(eb.rect) {
							next = append(next, task{ea.child, eb.child})
						}
					}
				}
			}
		}
		frontier = next
		if !expanded || len(frontier) == 0 {
			break
		}
	}

	results := make([][]JoinPair, len(frontier))
	var cursor, visits atomic.Int64
	var wg sync.WaitGroup
	if workers > len(frontier) {
		workers = len(frontier)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				var out []JoinPair
				visits.Add(int64(joinWalk(frontier[i].n, frontier[i].m, pred, &out)))
				results[i] = out
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]JoinPair, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, visited + int(visits.Load())
}

// joinWalk is the serial simultaneous descent over one subtree pair,
// collecting matches into out. It returns the node pairs visited.
func joinWalk(n, m *node, pred func(a, b geom.Rect) bool, out *[]JoinPair) int {
	visited := 1
	switch {
	case n.leaf && m.leaf:
		for _, ea := range n.entries {
			for _, eb := range m.entries {
				if pred(ea.rect, eb.rect) {
					*out = append(*out, JoinPair{A: ea.item(), B: eb.item()})
				}
			}
		}
	case n.leaf:
		nm := n.mbr()
		for _, eb := range m.entries {
			if nm.Intersects(eb.rect) {
				visited += joinWalk(n, eb.child, pred, out)
			}
		}
	case m.leaf:
		mm := m.mbr()
		for _, ea := range n.entries {
			if ea.rect.Intersects(mm) {
				visited += joinWalk(ea.child, m, pred, out)
			}
		}
	default:
		for _, ea := range n.entries {
			for _, eb := range m.entries {
				if ea.rect.Intersects(eb.rect) {
					visited += joinWalk(ea.child, eb.child, pred, out)
				}
			}
		}
	}
	return visited
}

// Juxtapose joins two disk trees (which may share a pager or use two)
// with up to workers goroutines, returning matching item pairs plus
// node-page pairs visited. Same contract as the in-memory Juxtapose:
// output and visit count are identical to the serial descent
// regardless of worker count. Traversal is zero-copy — node pages are
// pinned and MBRs read in place. The first page error aborts the join.
func (t *DiskTree) Juxtapose(u *DiskTree, pred func(a, b geom.Rect) bool, workers int) ([]JoinPair, int, error) {
	if t.size == 0 || u.size == 0 {
		return nil, 0, nil
	}
	workers = joinWorkers(workers)
	if workers == 1 {
		var out []JoinPair
		visited, err := t.joinWalk(u, t.root, u.root, pred, &out)
		if err != nil {
			return nil, visited, err
		}
		return out, visited, nil
	}

	type task struct{ a, b pager.PageID }
	frontier := []task{{t.root, u.root}}
	visited := 0
	for len(frontier) < workers*frontierFactor {
		next := make([]task, 0, 2*len(frontier))
		expanded := false
		for _, pr := range frontier {
			leafA, leafB, err := t.pairKinds(u, pr.a, pr.b)
			if err != nil {
				return nil, visited, err
			}
			if leafA && leafB {
				next = append(next, pr)
				continue
			}
			expanded = true
			visited++
			children, err := t.expandPair(u, pr.a, pr.b)
			if err != nil {
				return nil, visited, err
			}
			for _, c := range children {
				next = append(next, task{c[0], c[1]})
			}
		}
		frontier = next
		if !expanded || len(frontier) == 0 {
			break
		}
	}

	results := make([][]JoinPair, len(frontier))
	var cursor, visits atomic.Int64
	var failed atomic.Bool
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	if workers > len(frontier) {
		workers = len(frontier)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= len(frontier) {
					return
				}
				var out []JoinPair
				v, err := t.joinWalk(u, frontier[i].a, frontier[i].b, pred, &out)
				visits.Add(int64(v))
				if err != nil {
					if failed.CompareAndSwap(false, true) {
						errCh <- err
					}
					return
				}
				results[i] = out
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, visited + int(visits.Load()), err
	}

	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]JoinPair, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out, visited + int(visits.Load()), nil
}

// pairKinds reports whether each side of a node-page pair is a leaf.
func (t *DiskTree) pairKinds(u *DiskTree, a, b pager.PageID) (leafA, leafB bool, err error) {
	va, err := t.p.Pin(a)
	if err != nil {
		return false, false, err
	}
	leafA = nodeIsLeaf(va.Data())
	va.Unpin()
	vb, err := u.p.Pin(b)
	if err != nil {
		return false, false, err
	}
	leafB = nodeIsLeaf(vb.Data())
	vb.Unpin()
	return leafA, leafB, nil
}

// expandPair generates the intersecting child pairs of (a, b) in the
// order the serial descent would visit them. At least one side is
// internal.
func (t *DiskTree) expandPair(u *DiskTree, a, b pager.PageID) ([][2]pager.PageID, error) {
	va, err := t.p.Pin(a)
	if err != nil {
		return nil, err
	}
	defer va.Unpin()
	vb, err := u.p.Pin(b)
	if err != nil {
		return nil, err
	}
	defer vb.Unpin()
	da, db := va.Data(), vb.Data()
	if err := validNode(a, da); err != nil {
		return nil, err
	}
	if err := validNode(b, db); err != nil {
		return nil, err
	}
	na, nb := nodeCount(da), nodeCount(db)
	var out [][2]pager.PageID
	switch {
	case nodeIsLeaf(da):
		nm := nodeMBRData(da, na)
		for j := 0; j < nb; j++ {
			if nm.Intersects(entryRect(db, j)) {
				out = append(out, [2]pager.PageID{a, pager.PageID(entryPtr(db, j))})
			}
		}
	case nodeIsLeaf(db):
		mm := nodeMBRData(db, nb)
		for i := 0; i < na; i++ {
			if entryRect(da, i).Intersects(mm) {
				out = append(out, [2]pager.PageID{pager.PageID(entryPtr(da, i)), b})
			}
		}
	default:
		for i := 0; i < na; i++ {
			ra := entryRect(da, i)
			for j := 0; j < nb; j++ {
				if ra.Intersects(entryRect(db, j)) {
					out = append(out, [2]pager.PageID{pager.PageID(entryPtr(da, i)), pager.PageID(entryPtr(db, j))})
				}
			}
		}
	}
	return out, nil
}

// joinWalk is the serial simultaneous descent over one disk subtree
// pair, zero-copy over pinned views. Returns node-page pairs visited.
// Both views stay pinned across the recursion; the pin count is
// bounded by the sum of the two tree heights.
func (t *DiskTree) joinWalk(u *DiskTree, a, b pager.PageID, pred func(a, b geom.Rect) bool, out *[]JoinPair) (int, error) {
	va, err := t.p.Pin(a)
	if err != nil {
		return 0, err
	}
	defer va.Unpin()
	vb, err := u.p.Pin(b)
	if err != nil {
		return 0, err
	}
	defer vb.Unpin()
	da, db := va.Data(), vb.Data()
	if err := validNode(a, da); err != nil {
		return 0, err
	}
	if err := validNode(b, db); err != nil {
		return 0, err
	}
	visited := 1
	na, nb := nodeCount(da), nodeCount(db)
	switch {
	case nodeIsLeaf(da) && nodeIsLeaf(db):
		for i := 0; i < na; i++ {
			ra := entryRect(da, i)
			for j := 0; j < nb; j++ {
				rb := entryRect(db, j)
				if pred(ra, rb) {
					*out = append(*out, JoinPair{
						A: Item{Rect: ra, Data: entryPtr(da, i)},
						B: Item{Rect: rb, Data: entryPtr(db, j)},
					})
				}
			}
		}
	case nodeIsLeaf(da):
		nm := nodeMBRData(da, na)
		for j := 0; j < nb; j++ {
			if nm.Intersects(entryRect(db, j)) {
				v, err := t.joinWalk(u, a, pager.PageID(entryPtr(db, j)), pred, out)
				visited += v
				if err != nil {
					return visited, err
				}
			}
		}
	case nodeIsLeaf(db):
		mm := nodeMBRData(db, nb)
		for i := 0; i < na; i++ {
			if entryRect(da, i).Intersects(mm) {
				v, err := t.joinWalk(u, pager.PageID(entryPtr(da, i)), b, pred, out)
				visited += v
				if err != nil {
					return visited, err
				}
			}
		}
	default:
		for i := 0; i < na; i++ {
			ra := entryRect(da, i)
			for j := 0; j < nb; j++ {
				if ra.Intersects(entryRect(db, j)) {
					v, err := t.joinWalk(u, pager.PageID(entryPtr(da, i)), pager.PageID(entryPtr(db, j)), pred, out)
					visited += v
					if err != nil {
						return visited, err
					}
				}
			}
		}
	}
	return visited, nil
}

// nodeMBRData computes a node's MBR in place from pinned page bytes.
func nodeMBRData(data []byte, n int) geom.Rect {
	out := geom.EmptyRect()
	for i := 0; i < n; i++ {
		out = out.Union(entryRect(data, i))
	}
	return out
}
